// Command promcheck validates a Prometheus text exposition (version 0.0.4)
// read from a file or stdin — a promtool-style format check in pure Go, so
// CI can lint a live /metrics scrape without the Prometheus toolchain. It
// also requires a minimum sample count so an accidentally empty exposition
// fails loudly.
//
// Usage:
//
//	curl -s localhost:9090/metrics | promcheck [-min 1]
//	promcheck [-min 1] scrape.txt
//
// Exit status: 0 valid, 1 malformed or below -min samples, 2 usage error.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"parm/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable CLI body.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("promcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	min := fs.Int("min", 1, "fail when the exposition has fewer than this many samples")
	fs.Usage = func() {
		fprintf(stderr, "usage: promcheck [-min n] [file]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 1 {
		fs.Usage()
		return 2
	}

	src := stdin
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fprintf(stderr, "promcheck: %v\n", err)
			return 2
		}
		defer f.Close() //parm:errok read-only close
		src = f
	}

	// Count samples while validating: tee the stream through a counter.
	samples := 0
	var buf strings.Builder
	sc := bufio.NewScanner(io.TeeReader(src, &buf))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" && !strings.HasPrefix(line, "#") {
			samples++
		}
	}
	if err := sc.Err(); err != nil {
		fprintf(stderr, "promcheck: reading input: %v\n", err)
		return 2
	}
	if err := obs.ValidateExposition(strings.NewReader(buf.String())); err != nil {
		fprintf(stderr, "promcheck: %v\n", err)
		return 1
	}
	if samples < *min {
		fprintf(stderr, "promcheck: %d samples, want at least %d\n", samples, *min)
		return 1
	}
	fprintf(stdout, "promcheck: ok (%d samples)\n", samples)
	return 0
}

// fprintf drops the write error: CLI output to stdout/stderr has no recovery
// path.
func fprintf(w io.Writer, format string, args ...interface{}) {
	//parm:errok
	fmt.Fprintf(w, format, args...)
}
