package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCheck(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(args, strings.NewReader(stdin), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestValidExpositionFromStdin(t *testing.T) {
	text := "# TYPE parm_x counter\nparm_x 3\n"
	code, out, stderr := runCheck(t, text)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "ok (1 samples)") {
		t.Errorf("stdout = %q", out)
	}
}

func TestMalformedExpositionFails(t *testing.T) {
	code, _, stderr := runCheck(t, "9bad 1\n")
	if code != 1 || stderr == "" {
		t.Errorf("exit %d stderr %q, want 1 with a diagnostic", code, stderr)
	}
}

func TestBelowMinSamplesFails(t *testing.T) {
	code, _, stderr := runCheck(t, "parm_x 1\n", "-min", "5")
	if code != 1 || !strings.Contains(stderr, "want at least 5") {
		t.Errorf("exit %d stderr %q", code, stderr)
	}
}

func TestFileArgument(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scrape.txt")
	if err := os.WriteFile(path, []byte("parm_y 2\nparm_z 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, stderr := runCheck(t, "", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "2 samples") {
		t.Errorf("stdout = %q", out)
	}
	if code, _, _ := runCheck(t, "", filepath.Join(t.TempDir(), "none.txt")); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
}
