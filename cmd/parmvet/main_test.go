package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"parm/internal/analysis"
	"parm/internal/analysis/driver"
	"parm/internal/analysis/parmvet"
)

func fakeRules(names ...string) []driver.Rule {
	out := make([]driver.Rule, len(names))
	for i, n := range names {
		out[i] = driver.Rule{Analyzer: &analysis.Analyzer{Name: n}}
	}
	return out
}

func TestSelectRulesEmptyFilterKeepsAll(t *testing.T) {
	rules := fakeRules("a", "b", "c")
	got, err := selectRules(rules, "")
	if err != nil {
		t.Fatalf("selectRules: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d rules, want 3", len(got))
	}
}

func TestSelectRulesSubsetAndOrder(t *testing.T) {
	rules := fakeRules("a", "b", "c")
	got, err := selectRules(rules, "c, a")
	if err != nil {
		t.Fatalf("selectRules: %v", err)
	}
	if len(got) != 2 || got[0].Analyzer.Name != "c" || got[1].Analyzer.Name != "a" {
		t.Fatalf("got %v, want [c a]", names(got))
	}
}

func TestSelectRulesUnknownName(t *testing.T) {
	_, err := selectRules(fakeRules("b", "a"), "nosuch")
	if err == nil {
		t.Fatal("expected error for unknown analyzer name")
	}
	// The error must list the valid names, sorted, so a typo is self-serve.
	if !strings.Contains(err.Error(), "valid names: a, b") {
		t.Fatalf("error %q does not list the valid analyzer names", err)
	}
}

func TestSelectRulesAllCommas(t *testing.T) {
	if _, err := selectRules(fakeRules("a"), ",,"); err == nil {
		t.Fatal("expected error for a filter selecting nothing")
	}
}

func names(rules []driver.Rule) []string {
	out := make([]string, len(rules))
	for i, r := range rules {
		out[i] = r.Analyzer.Name
	}
	return out
}

func sampleFindings() []driver.Finding {
	return []driver.Finding{
		{
			Analyzer: "errsink",
			Pos:      token.Position{Filename: "a.go", Line: 3, Column: 7},
			Message:  "error dropped",
		},
		{
			Analyzer: "hotalloc",
			Pos:      token.Position{Filename: "b.go", Line: 11, Column: 2},
			Message:  "make allocates in hot loop",
		},
	}
}

func TestWriteFindingsPlain(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFindings(&buf, sampleFindings(), false); err != nil {
		t.Fatalf("writeFindings: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	if want := "a.go:3:7: error dropped (errsink)"; lines[0] != want {
		t.Fatalf("line 0 = %q, want %q", lines[0], want)
	}
}

func TestWriteFindingsJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFindings(&buf, sampleFindings(), true); err != nil {
		t.Fatalf("writeFindings: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var jf jsonFinding
	if err := json.Unmarshal([]byte(lines[0]), &jf); err != nil {
		t.Fatalf("line 0 is not valid JSON: %v\n%s", err, lines[0])
	}
	want := jsonFinding{File: "a.go", Line: 3, Col: 7, Analyzer: "errsink", Message: "error dropped"}
	if jf != want {
		t.Fatalf("got %+v, want %+v", jf, want)
	}
}

func TestWriteFindingsEmptyWritesNothing(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFindings(&buf, nil, true); err != nil {
		t.Fatalf("writeFindings: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("expected no output, got %q", buf.String())
	}
}

func TestRunRejectsUnknownAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-run", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Fatalf("stderr missing explanation:\n%s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "racecheck") {
		t.Fatalf("stderr does not list the valid analyzer names:\n%s", errOut.String())
	}
}

func TestSuiteHasThirteenAnalyzers(t *testing.T) {
	want := map[string]bool{
		"detrange": true, "poolgo": true, "unitsafe": true, "floateq": true,
		"hotalloc": true, "lockhold": true, "errsink": true, "simclock": true,
		"obsreg": true, "detflow": true, "maporder": true,
		"racecheck": true, "atomicmix": true,
	}
	rules := parmvet.Rules()
	if len(rules) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(rules), len(want))
	}
	for _, r := range rules {
		if !want[r.Analyzer.Name] {
			t.Fatalf("unexpected analyzer %q in suite", r.Analyzer.Name)
		}
	}
}
