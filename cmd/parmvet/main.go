// Command parmvet is the project's static-analysis suite: thirteen
// analyzers that mechanically enforce the invariants the PARM measurement
// pipeline's bit-identical-metrics guarantee rests on (see DESIGN.md §7),
// including the whole-program determinism-taint pair detflow/maporder
// (§7.4) and the whole-program concurrency pair racecheck/atomicmix (§7.5).
//
// Usage:
//
//	go run ./cmd/parmvet [-json] [-tests] [-run analyzer,...] [-baseline file | -baseline-write file] [packages]
//
// It prints findings sorted by (file, line, column, analyzer), one per line
// in file:line:col form (or, with -json, one JSON object per line), and
// exits nonzero when any analyzer fires. -run restricts the suite to a
// comma-separated subset of analyzers; -tests extends the analysis to
// _test.go files (off by default, on in CI). -baseline filters findings
// through an accepted-findings JSON file and errors on stale entries
// (accepted findings that no longer fire); -baseline-write regenerates
// that file from the current run.
// Suppressions are //parm:orderfree, //parm:floateq, //parm:unitless,
// //parm:pool, //parm:alloc, //parm:hold, //parm:errok, //parm:wallclock,
// //parm:det, and //parm:conc comments on or directly above the flagged
// line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"parm/internal/analysis/driver"
	"parm/internal/analysis/parmvet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI body: it parses flags, runs the (possibly
// filtered) suite, and returns the process exit code — 0 clean, 1 findings,
// 2 usage or load error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("parmvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "print findings as one JSON object per line")
	runFilter := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	withTests := fs.Bool("tests", false, "also analyze _test.go files")
	baseline := fs.String("baseline", "", "filter findings through this accepted-findings JSON file; stale entries are an error")
	baselineWrite := fs.String("baseline-write", "", "write the current findings to this baseline file and exit clean")
	fs.Usage = func() {
		fprintf(stderr, "usage: parmvet [-json] [-tests] [-run analyzer,...] [-baseline file | -baseline-write file] [packages]\n\n")
		fprintf(stderr, "Analyzers:\n")
		for _, r := range parmvet.Rules() {
			fprintf(stderr, "  %-10s %s\n", r.Analyzer.Name, r.Analyzer.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rules, err := selectRules(parmvet.Rules(), *runFilter)
	if err != nil {
		fprintf(stderr, "parmvet: %v\n", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := driver.RunDirOpts("", patterns, rules, driver.Options{Tests: *withTests})
	if err != nil {
		fprintf(stderr, "parmvet: %v\n", err)
		return 2
	}
	// The driver returns findings sorted, but re-assert the emission
	// contract here: both outputs promise (file, line, column, analyzer).
	driver.Sort(findings)
	if *baselineWrite != "" {
		if err := driver.WriteBaseline(*baselineWrite, findings); err != nil {
			fprintf(stderr, "parmvet: %v\n", err)
			return 2
		}
		fprintf(stderr, "parmvet: wrote %d finding(s) to %s\n", len(findings), *baselineWrite)
		return 0
	}
	if *baseline != "" {
		entries, err := driver.LoadBaseline(*baseline)
		if err != nil {
			fprintf(stderr, "parmvet: %v\n", err)
			return 2
		}
		var stale []driver.BaselineEntry
		findings, stale = driver.ApplyBaseline(findings, entries)
		if len(stale) > 0 {
			for _, e := range stale {
				fprintf(stderr, "parmvet: stale baseline entry: %s %s %q (%d unmatched)\n", e.File, e.Analyzer, e.Message, e.Count)
			}
			fprintf(stderr, "parmvet: baseline %s is stale; regenerate with -baseline-write\n", *baseline)
			return 2
		}
	}
	if err := writeFindings(stdout, findings, *jsonOut); err != nil {
		fprintf(stderr, "parmvet: %v\n", err)
		return 2
	}
	if len(findings) > 0 {
		fprintf(stderr, "parmvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// selectRules filters the suite down to the comma-separated analyzer names
// in filter; an empty filter keeps every rule, an unknown name is an error.
func selectRules(rules []driver.Rule, filter string) ([]driver.Rule, error) {
	if filter == "" {
		return rules, nil
	}
	byName := make(map[string]driver.Rule, len(rules))
	for _, r := range rules {
		byName[r.Analyzer.Name] = r
	}
	var out []driver.Rule
	for _, name := range strings.Split(filter, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		r, ok := byName[name]
		if !ok {
			valid := make([]string, 0, len(byName))
			for n := range byName {
				valid = append(valid, n)
			}
			sort.Strings(valid)
			return nil, fmt.Errorf("unknown analyzer %q; valid names: %s", name, strings.Join(valid, ", "))
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-run %q selects no analyzers", filter)
	}
	return out, nil
}

// jsonFinding is the -json wire form: one object per line.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeFindings renders findings to w, one per line, in the plain
// file:line:col form or as JSON objects.
func writeFindings(w io.Writer, findings []driver.Finding, asJSON bool) error {
	enc := json.NewEncoder(w)
	for _, f := range findings {
		if asJSON {
			jf := jsonFinding{
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			}
			if err := enc.Encode(jf); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintln(w, f); err != nil {
			return err
		}
	}
	return nil
}

// fprintf writes best-effort CLI chrome; a failed write to a closed stderr
// pipe is not actionable.
func fprintf(w io.Writer, format string, args ...interface{}) {
	//parm:errok
	fmt.Fprintf(w, format, args...)
}
