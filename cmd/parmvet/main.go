// Command parmvet is the project's static-analysis suite: four analyzers
// that mechanically enforce the invariants the PARM measurement pipeline's
// bit-identical-metrics guarantee rests on (see DESIGN.md §7).
//
// Usage:
//
//	go run ./cmd/parmvet ./...
//
// It prints one finding per line in file:line:col form and exits nonzero
// when any analyzer fires. Suppressions are //parm:orderfree,
// //parm:floateq, //parm:unitless, and //parm:pool comments on or directly
// above the flagged line.
package main

import (
	"flag"
	"fmt"
	"os"

	"parm/internal/analysis/parmvet"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: parmvet [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzers:\n")
		for _, r := range parmvet.Rules() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", r.Analyzer.Name, r.Analyzer.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := parmvet.Check(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parmvet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "parmvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
