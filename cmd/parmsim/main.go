// Command parmsim runs one PARM simulation: a workload sequence executed on
// the modeled 60-core 7nm CMP under a chosen mapping framework and NoC
// routing scheme, printing run metrics and per-application outcomes.
//
// Usage:
//
//	parmsim -mapper PARM -routing PANR -workload mixed -apps 20 -gap 0.1 -seed 42 [-soft] [-v]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof" // registered handlers serve only when -pprof is set
	"os"

	"parm/internal/appmodel"
	"parm/internal/core"
	"parm/internal/obs"
	"parm/internal/obs/obshttp"
	"parm/internal/power"
	"parm/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("parmsim: ")

	var (
		mapper   = flag.String("mapper", "PARM", "mapping framework: PARM or HM")
		routing  = flag.String("routing", "PANR", "NoC routing: XY, WestFirst, ICON, or PANR")
		workload = flag.String("workload", "mixed", "workload kind: compute, comm, or mixed")
		numApps  = flag.Int("apps", 20, "number of applications in the sequence")
		gap      = flag.Float64("gap", 0.1, "inter-application arrival gap in seconds")
		seed     = flag.Int64("seed", 42, "workload generation seed")
		soft     = flag.Bool("soft", false, "advisory deadlines: never drop applications")
		dspb     = flag.Float64("dspb", 65, "dark silicon power budget in watts")
		verbose  = flag.Bool("v", false, "print per-application outcomes")
		jsonOut  = flag.Bool("json", false, "emit metrics as JSON instead of tables")
		traceCSV = flag.String("trace", "", "write the PSN time series as CSV to this file")
		loadPath = flag.String("load", "", "load the workload from a JSON file instead of generating it")
		explain  = flag.Bool("explain", false, "print Algorithm 1's selection trace for the first application")
		savePath = flag.String("save", "", "save the generated workload as JSON to this file")
		nocMode  = flag.String("noc", "cycle", "NoC measurement mode: cycle (exact), auto (analytic fast path below saturation), or analytic")

		metricsOut   = flag.String("metrics-out", "", "write the telemetry counter snapshot as JSON to this file")
		timelineOut  = flag.String("timeline", "", "write the engine event timeline as Chrome trace JSON to this file (load at ui.perfetto.dev)")
		decisionsOut = flag.String("decisions-out", "", "write the mapper decision provenance log as JSON to this file")
		serveAddr    = flag.String("serve", "", "serve live telemetry on this address (e.g. :9090): /metrics, /healthz, /snapshot, /decisions, /trace, /debug/pprof/")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); off when empty")
		psnWorkers   = flag.Int("psnworkers", 0, "PSN solver workers per sample (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	fw, err := core.Combo(*mapper, *routing)
	if err != nil {
		log.Fatal(err)
	}
	node := power.MustParams(power.Node7)

	var w *appmodel.Workload
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			log.Fatal(err)
		}
		w, err = appmodel.ReadWorkloadJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
	} else {
		kind, err := parseKind(*workload)
		if err != nil {
			log.Fatal(err)
		}
		w, err = appmodel.Generate(appmodel.WorkloadConfig{
			Kind: kind, NumApps: *numApps, ArrivalGap: *gap, Node: node, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := w.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	cfg := core.Config{SoftDeadlines: *soft}
	cfg.Chip.DsPB = power.Watts(*dspb)
	cfg.Chip.PSNWorkers = *psnWorkers
	cfg.NoCMode, err = core.ParseNoCMode(*nocMode)
	if err != nil {
		log.Fatal(err)
	}
	if *explain {
		steps, err := core.ExplainOnEmptyChip(cfg, fw, w.Apps[0])
		if err != nil {
			log.Fatal(err)
		}
		et := report.NewTable(fmt.Sprintf("Algorithm 1 selection trace for %s (deadline %.1f ms)",
			w.Apps[0], w.Apps[0].RelDeadline*1e3),
			"vdd(V)", "dop", "wcet(ms)", "deadline", "power(W)", "dspb", "mapping", "chosen")
		mark := func(ok bool) string {
			if ok {
				return "ok"
			}
			return "fail"
		}
		for _, st := range steps {
			if st.Skipped {
				et.AddRow(st.Vdd, st.DoP, st.WCET*1e3, "skipped", "-", "-", "-", "")
				continue
			}
			if !st.DeadlineOK {
				et.AddRow(st.Vdd, st.DoP, st.WCET*1e3, "fail", "-", "-", "-", "")
				continue
			}
			chosen := ""
			if st.Chosen {
				chosen = "<== selected"
			}
			mapping := "-"
			if st.MappingTried {
				mapping = mark(st.MappingOK)
			}
			et.AddRow(st.Vdd, st.DoP, st.WCET*1e3, "ok", st.PowerW, mark(st.PowerOK), mapping, chosen)
		}
		if err := et.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	eng, err := core.NewEngine(cfg, fw)
	if err != nil {
		log.Fatal(err)
	}
	var trace *core.Trace
	if *traceCSV != "" {
		trace = eng.EnableTrace()
	}
	// -serve implies the full telemetry set so every endpoint has data.
	var registry *obs.Registry
	if *metricsOut != "" || *serveAddr != "" {
		registry = obs.NewRegistry()
		eng.EnableTelemetry(registry)
	}
	var timeline *obs.Timeline
	if *timelineOut != "" || *serveAddr != "" {
		timeline = obs.NewTimeline(1 << 16)
		eng.AttachTimeline(timeline)
	}
	var decisions *obs.DecisionLog
	if *decisionsOut != "" || *serveAddr != "" {
		decisions = obs.NewDecisionLog(1 << 14)
		eng.AttachDecisions(decisions)
	}
	if *serveAddr != "" {
		srv, err := obshttp.Serve(*serveAddr, obshttp.Config{
			Registry: registry, Timeline: timeline, Decisions: decisions,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("telemetry listening on http://%s/metrics", srv.Addr())
	}
	m, err := eng.Run(w)
	if err != nil {
		log.Fatal(err)
	}
	eng.CollectCacheStats(m)
	if registry != nil && *metricsOut != "" {
		if err := writeFile(*metricsOut, registry.WriteSnapshot); err != nil {
			log.Fatal(err)
		}
	}
	if timeline != nil && *timelineOut != "" {
		if timeline.Dropped() > 0 {
			log.Printf("timeline: %d events dropped (buffer full); earliest events are missing", timeline.Dropped())
		}
		if timeline.SpanDropped() > 0 {
			log.Printf("timeline: %d spans dropped (ring full); earliest spans are missing", timeline.SpanDropped())
		}
		if err := writeFile(*timelineOut, timeline.WriteChromeTrace); err != nil {
			log.Fatal(err)
		}
	}
	if decisions != nil && *decisionsOut != "" {
		if err := writeFile(*decisionsOut, decisions.WriteJSON); err != nil {
			log.Fatal(err)
		}
	}
	if *traceCSV != "" {
		f, err := os.Create(*traceCSV)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *jsonOut {
		if err := m.WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	t := report.NewTable(fmt.Sprintf("%s on %s workload (%d apps, seed %d)",
		m.Framework, m.Workload, len(w.Apps), *seed), "metric", "value")
	t.AddRow("total execution time (s)", m.TotalTime)
	t.AddRow("peak PSN (%)", m.PeakPSN*100)
	t.AddRow("average PSN (%)", m.AvgPSN*100)
	t.AddRow("applications completed", m.Completed)
	t.AddRow("applications dropped", m.Dropped)
	t.AddRow("voltage emergencies", m.TotalVEs)
	t.AddRow("mean packet latency (cycles)", m.MeanPacketLatency)
	t.AddRow("total energy (J)", m.TotalEnergyJ)
	if m.PDNCache != nil {
		t.AddRow("PDN solve-cache hits / misses", fmt.Sprintf("%d / %d", m.PDNCache.Hits, m.PDNCache.Misses))
		t.AddRow("PDN solve-cache clears", m.PDNCache.Clears)
		t.AddRow("PDN solve-cache evicted", m.PDNCache.Evicted)
	}
	if m.NoCMemo != nil {
		t.AddRow("NoC memo hits / misses", fmt.Sprintf("%d / %d", m.NoCMemo.Hits, m.NoCMemo.Misses))
	}
	if err := t.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if *verbose {
		fmt.Println()
		pt := report.NewTable("per-application outcomes",
			"app", "bench", "state", "vdd(V)", "dop", "wait(ms)", "turnaround(ms)", "VEs", "deadlineMet")
		for _, o := range m.Apps {
			turn := 0.0
			if o.State == core.StateCompleted {
				turn = (o.CompletedAt - o.App.Arrival) * 1e3
			}
			pt.AddRow(o.App.ID, o.App.Bench.Name, o.State.String(), o.Vdd, o.DoP,
				o.WaitTime*1e3, turn, o.VEs, o.DeadlineMet)
		}
		if err := pt.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

// writeFile creates path and streams write into it, folding the close error
// into the result.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func parseKind(s string) (appmodel.WorkloadKind, error) {
	switch s {
	case "compute":
		return appmodel.WorkloadCompute, nil
	case "comm":
		return appmodel.WorkloadComm, nil
	case "mixed":
		return appmodel.WorkloadMixed, nil
	default:
		return 0, fmt.Errorf("unknown workload %q (want compute, comm, or mixed)", s)
	}
}
