// Command experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated platform. See DESIGN.md for the
// per-experiment index and EXPERIMENTS.md for recorded paper-vs-measured
// results.
//
// Usage:
//
//	experiments                 # everything
//	experiments -fig 6          # just Fig 6 (and 7, which shares runs)
//	experiments -fig 1,3a,3b    # the characterization figures
//	experiments -apps 12 -csv   # scaled down, CSV output
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"parm/internal/expr"
	"parm/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		figs     = flag.String("fig", "all", "comma-separated figures: 1, 3a, 3b, 6, 7, 8, overhead, darksilicon, profiles, or all")
		numApps  = flag.Int("apps", 20, "applications per sequence for Figs 6-8")
		seed     = flag.Int64("seed", 42, "workload generation seed")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		quiet    = flag.Bool("q", false, "suppress progress output")
		bench    = flag.Bool("bench", false, "run the solver/engine benchmark harness instead of the figures")
		benchOut = flag.String("benchout", "BENCH_parm.json", "benchmark JSON output path (with -bench)")
	)
	flag.Parse()

	if *bench {
		verbose := func(format string, args ...interface{}) {
			if !*quiet {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			}
		}
		if err := runBench(*benchOut, *numApps, *seed, verbose); err != nil {
			log.Fatal(err)
		}
		return
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]

	opt := expr.Options{NumApps: *numApps, Seed: *seed}
	if !*quiet {
		opt.Verbose = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	emit := func(t *report.Table) {
		var err error
		if *csv {
			fmt.Printf("# %s\n", t.Title)
			err = t.WriteCSV(os.Stdout)
		} else {
			err = t.Write(os.Stdout)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	if all || want["1"] {
		t, err := expr.Fig1()
		if err != nil {
			log.Fatal(err)
		}
		emit(t)
	}
	if all || want["3a"] {
		t, err := expr.Fig3a()
		if err != nil {
			log.Fatal(err)
		}
		emit(t)
	}
	if all || want["3b"] {
		t, err := expr.Fig3b()
		if err != nil {
			log.Fatal(err)
		}
		emit(t)
	}
	if all || want["6"] || want["7"] {
		t6, t7, err := expr.Fig6and7(opt)
		if err != nil {
			log.Fatal(err)
		}
		if all || want["6"] {
			emit(t6)
		}
		if all || want["7"] {
			emit(t7)
		}
	}
	if all || want["8"] {
		t, err := expr.Fig8(opt)
		if err != nil {
			log.Fatal(err)
		}
		emit(t)
	}
	if all || want["overhead"] {
		emit(expr.OverheadTable())
	}
	if all || want["darksilicon"] {
		emit(expr.DarkSiliconTable())
	}
	if all || want["profiles"] {
		emit(expr.BenchmarkProfileTable())
	}
}
