// Command experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated platform. See DESIGN.md for the
// per-experiment index and EXPERIMENTS.md for recorded paper-vs-measured
// results.
//
// Usage:
//
//	experiments                 # everything
//	experiments -fig 6          # just Fig 6 (and 7, which shares runs)
//	experiments -fig 1,3a,3b    # the characterization figures
//	experiments -apps 12 -csv   # scaled down, CSV output
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof" // registered handlers serve only when -pprof is set
	"os"
	"strings"

	"parm/internal/core"
	"parm/internal/expr"
	"parm/internal/obs"
	"parm/internal/obs/obshttp"
	"parm/internal/reliability"
	"parm/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		figs     = flag.String("fig", "all", "comma-separated figures: 1, 3a, 3b, 6, 7, 8, overhead, darksilicon, profiles, or all; reliability is opt-in (not part of all)")
		numApps  = flag.Int("apps", 20, "applications per sequence for Figs 6-8")
		seed     = flag.Int64("seed", 42, "workload generation seed")
		trials   = flag.Int("trials", 20, "Monte-Carlo fault trials per scheme (with -fig reliability)")
		relOut   = flag.String("relout", "", "write the reliability campaign result as JSON to this file (with -fig reliability)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		quiet    = flag.Bool("q", false, "suppress progress output")
		bench    = flag.Bool("bench", false, "run the solver/engine benchmark harness instead of the figures")
		benchOut = flag.String("benchout", "BENCH_parm.json", "benchmark JSON output path (with -bench)")
		nocMode  = flag.String("noc", "cycle", "NoC measurement mode: cycle (exact), auto (analytic fast path below saturation), or analytic")

		metricsOut   = flag.String("metrics-out", "", "write the aggregated telemetry snapshot as JSON to this file")
		timelineOut  = flag.String("timeline", "", "write engine events as Chrome trace JSON to this file (runs interleave across parallel cells)")
		decisionsOut = flag.String("decisions-out", "", "write the mapper decision provenance log as JSON to this file (runs interleave across parallel cells)")
		serveAddr    = flag.String("serve", "", "serve live telemetry on this address (e.g. :9090): /metrics, /healthz, /snapshot, /decisions, /trace, /debug/pprof/")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); off when empty")
	)
	flag.Parse()

	mode, err := core.ParseNoCMode(*nocMode)
	if err != nil {
		log.Fatal(err)
	}

	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	if *bench {
		verbose := func(format string, args ...interface{}) {
			if !*quiet {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			}
		}
		if err := runBench(*benchOut, *numApps, *seed, verbose); err != nil {
			log.Fatal(err)
		}
		return
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]

	opt := expr.Options{NumApps: *numApps, Seed: *seed}
	opt.Engine.NoCMode = mode
	if !*quiet {
		opt.Verbose = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	// -serve implies the full telemetry set so every endpoint has data.
	if *metricsOut != "" || *serveAddr != "" {
		opt.Telemetry = obs.NewRegistry()
	}
	if *timelineOut != "" || *serveAddr != "" {
		opt.Timeline = obs.NewTimeline(1 << 16)
	}
	if *decisionsOut != "" || *serveAddr != "" {
		opt.Decisions = obs.NewDecisionLog(1 << 14)
	}
	if *serveAddr != "" {
		srv, err := obshttp.Serve(*serveAddr, obshttp.Config{
			Registry: opt.Telemetry, Timeline: opt.Timeline, Decisions: opt.Decisions,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("telemetry listening on http://%s/metrics", srv.Addr())
	}

	emit := func(t *report.Table) {
		var err error
		if *csv {
			fmt.Printf("# %s\n", t.Title)
			err = t.WriteCSV(os.Stdout)
		} else {
			err = t.Write(os.Stdout)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	if all || want["1"] {
		t, err := expr.Fig1()
		if err != nil {
			log.Fatal(err)
		}
		emit(t)
	}
	if all || want["3a"] {
		t, err := expr.Fig3a()
		if err != nil {
			log.Fatal(err)
		}
		emit(t)
	}
	if all || want["3b"] {
		t, err := expr.Fig3b()
		if err != nil {
			log.Fatal(err)
		}
		emit(t)
	}
	if all || want["6"] || want["7"] {
		t6, t7, err := expr.Fig6and7(opt)
		if err != nil {
			log.Fatal(err)
		}
		if all || want["6"] {
			emit(t6)
		}
		if all || want["7"] {
			emit(t7)
		}
	}
	if all || want["8"] {
		t, err := expr.Fig8(opt)
		if err != nil {
			log.Fatal(err)
		}
		emit(t)
	}
	if all || want["overhead"] {
		emit(expr.OverheadTable())
	}
	if all || want["darksilicon"] {
		emit(expr.DarkSiliconTable())
	}
	if all || want["profiles"] {
		emit(expr.BenchmarkProfileTable())
	}
	if want["reliability"] {
		// Opt-in: 4 schemes x trials full engine runs with fault injection
		// (which forces fresh NoC measurements) is far heavier than the
		// figure sweeps, so "all" does not include it.
		if !*quiet {
			fmt.Fprintf(os.Stderr, "reliability: %d trials x 4 schemes, seed %d\n", *trials, *seed)
		}
		res, err := reliability.Run(reliability.Config{
			Trials:    *trials,
			Seed:      *seed,
			Telemetry: opt.Telemetry,
		})
		if err != nil {
			log.Fatal(err)
		}
		emit(res.Table())
		if *relOut != "" {
			if err := writeFile(*relOut, res.WriteJSON); err != nil {
				log.Fatal(err)
			}
		}
	}
	if opt.Telemetry != nil && *metricsOut != "" {
		if err := writeFile(*metricsOut, opt.Telemetry.WriteSnapshot); err != nil {
			log.Fatal(err)
		}
	}
	if opt.Timeline != nil && *timelineOut != "" {
		if n := opt.Timeline.Dropped(); n > 0 {
			log.Printf("timeline: %d events dropped (buffer full); earliest events are missing", n)
		}
		if n := opt.Timeline.SpanDropped(); n > 0 {
			log.Printf("timeline: %d spans dropped (ring full); earliest spans are missing", n)
		}
		if err := writeFile(*timelineOut, opt.Timeline.WriteChromeTrace); err != nil {
			log.Fatal(err)
		}
	}
	if opt.Decisions != nil && *decisionsOut != "" {
		if err := writeFile(*decisionsOut, opt.Decisions.WriteJSON); err != nil {
			log.Fatal(err)
		}
	}
}

// writeFile creates path and streams write into it, folding the close error
// into the result.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
