package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"parm/internal/appmodel"
	"parm/internal/core"
	"parm/internal/geom"
	"parm/internal/noc"
	"parm/internal/pdn"
	"parm/internal/power"
)

// The -bench harness measures the key solver and engine hot paths with
// wall-clock timing and writes them to a JSON trajectory file
// (BENCH_parm.json), so CI can archive one point per commit and perf
// regressions show up as a series, not an anecdote. The numbers are
// machine-dependent; the derived ratios (phasor speedup, cache-hit speedup)
// are the portable signal.
//
// Wall-clock time is fine here: this is cmd/ territory, outside the
// simulated-time discipline the simclock analyzer enforces on internal/.

// benchResult is one measured benchmark.
type benchResult struct {
	// Name identifies the benchmark (testing-style slash-separated).
	Name string `json:"name"`
	// Iters is the number of timed iterations.
	Iters int `json:"iters"`
	// NsPerOp is the mean wall-clock cost of one iteration.
	NsPerOp float64 `json:"ns_per_op"`
}

// benchReport is the BENCH_parm.json schema.
type benchReport struct {
	Schema string `json:"schema"`
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	// Results holds the raw timings in measurement order.
	Results []benchResult `json:"results"`
	// Derived holds machine-portable ratios computed from Results.
	Derived map[string]float64 `json:"derived"`
}

// measure times fn until it has both a minimum duration and a minimum
// iteration count, testing.B style but without the testing machinery (the
// harness runs under `go run`).
func measure(name string, minIters int, minTime time.Duration, fn func() error) (benchResult, error) {
	// One untimed warm-up to populate scratch buffers and caches.
	if err := fn(); err != nil {
		return benchResult{}, fmt.Errorf("%s: %w", name, err)
	}
	iters := 0
	var elapsed time.Duration
	for iters < minIters || elapsed < minTime {
		start := time.Now()
		if err := fn(); err != nil {
			return benchResult{}, fmt.Errorf("%s: %w", name, err)
		}
		elapsed += time.Since(start)
		iters++
	}
	return benchResult{
		Name:    name,
		Iters:   iters,
		NsPerOp: float64(elapsed.Nanoseconds()) / float64(iters),
	}, nil
}

// benchLoads is the fully loaded mixed-class domain BenchmarkDomainSolve
// uses: the inner-loop input of chip-wide PSN sampling.
func benchLoads(p power.NodeParams) [pdn.DomainTiles]pdn.TileLoad {
	var occ [pdn.DomainTiles]pdn.TileOccupant
	for i := range occ {
		class := pdn.High
		if i%2 == 1 {
			class = pdn.Low
		}
		occ[i] = pdn.TileOccupant{IAvg: p.TileCurrent(0.5, 0.9, 0.4), Class: class, Staggered: true}
	}
	return pdn.BuildLoads(occ)
}

// benchNoCFlows is a Fig 6-shaped flow set: many flows, each far below link
// capacity, matching the sparse traffic the engine's measurement windows
// actually see during the paper workloads.
func benchNoCFlows() []noc.Flow {
	rates := []float64{0.004, 0.002, 0.008, 0.001, 0.006}
	var flows []noc.Flow
	for i := 0; i < 50; i++ {
		src := geom.TileID((i * 7) % 60)
		dst := geom.TileID((i*13 + 5) % 60)
		if src == dst {
			dst = (dst + 1) % 60
		}
		flows = append(flows, noc.Flow{App: i % 8, Src: src, Dst: dst, Rate: rates[i%len(rates)]})
	}
	return flows
}

// runBench measures the trajectory benchmarks and writes the JSON report to
// outPath. seed and numApps shape the engine workload (flags shared with
// the figure experiments).
func runBench(outPath string, numApps int, seed int64, verbose func(string, ...interface{})) error {
	p := power.MustParams(power.Node7)
	loads := benchLoads(p)
	rep := benchReport{
		Schema:  "parm-bench/v1",
		GoOS:    runtime.GOOS,
		GoArch:  runtime.GOARCH,
		CPUs:    runtime.GOMAXPROCS(0),
		Derived: map[string]float64{},
	}
	add := func(r benchResult, err error) error {
		if err != nil {
			return err
		}
		rep.Results = append(rep.Results, r)
		verbose("  %-34s %10.0f ns/op  (%d iters)", r.Name, r.NsPerOp, r.Iters)
		return nil
	}
	lookup := func(name string) float64 {
		for _, r := range rep.Results {
			if r.Name == name {
				return r.NsPerOp
			}
		}
		return 0
	}

	// Domain solve, cache-miss path, per mode: the BenchmarkDomainSolve
	// counterpart (uncached Solver, warm scratch + electrical caches).
	verbose("bench: domain solve (cache miss)")
	for _, m := range []pdn.Mode{pdn.ModeRK4, pdn.ModeExpm, pdn.ModePhasor} {
		cfg := pdn.Config{Params: p, Vdd: 0.5, Mode: m}
		s := pdn.NewSolver(nil)
		err := add(measure("domain_solve/"+m.String(), 50, 300*time.Millisecond, func() error {
			_, err := s.SimulateDomain(cfg, loads)
			return err
		}))
		if err != nil {
			return err
		}
	}

	// Domain solve, cache-hit path: what repeated candidate evaluations in
	// Algorithm 1 actually pay once a signature has been solved.
	verbose("bench: domain solve (cache hit)")
	{
		cfg := pdn.Config{Params: p, Vdd: 0.5}
		s := pdn.NewSolver(pdn.NewSolveCache())
		err := add(measure("domain_solve/cache_hit", 1000, 100*time.Millisecond, func() error {
			_, err := s.SimulateDomain(cfg, loads)
			return err
		}))
		if err != nil {
			return err
		}
	}

	// NoC measurement window, cache-miss path, per strategy, on the Fig
	// 6-shaped sparse fixture: the dense reference sweep (the seed ticking
	// loop), the active-set cycle path, and the analytic closed form that
	// auto mode uses below saturation.
	verbose("bench: noc window (sparse Fig 6 fixture)")
	{
		flows := benchNoCFlows()
		cycleWindow := func(s noc.Stepping) func() error {
			return func() error {
				env := &noc.Env{PSN: make([]float64, 60)}
				n, err := noc.NewNetwork(noc.Config{Stepping: s}, noc.PANR{}, flows, env)
				if err != nil {
					return err
				}
				n.Run(1500)
				n.Measure(8000)
				return nil
			}
		}
		if err := add(measure("noc_window/dense", 10, 500*time.Millisecond, cycleWindow(noc.SteppingDense))); err != nil {
			return err
		}
		if err := add(measure("noc_window/cycle", 10, 500*time.Millisecond, cycleWindow(noc.SteppingActive))); err != nil {
			return err
		}
		err := add(measure("noc_window/analytic", 100, 300*time.Millisecond, func() error {
			env := &noc.Env{PSN: make([]float64, 60)}
			_, _, err := noc.AnalyticMeasure(noc.Config{}, noc.PANR{}, flows, env, 8000)
			return err
		}))
		if err != nil {
			return err
		}
	}

	// Full engine run (the Fig. 6 cell): PARM+PANR over a mixed sequence,
	// serial PSN measurement vs the default parallel fan-out.
	verbose("bench: engine run (PARM+PANR, %d mixed apps)", numApps)
	engineRun := func(workers int, mode core.NoCMode) func() error {
		return func() error {
			w, err := appmodel.Generate(appmodel.WorkloadConfig{
				Kind: appmodel.WorkloadMixed, NumApps: numApps, ArrivalGap: 0.06,
				Node: p, Seed: seed,
			})
			if err != nil {
				return err
			}
			cfg := core.Config{SoftDeadlines: true, NoCMode: mode}
			cfg.Chip.PSNWorkers = workers
			eng, err := core.NewEngine(cfg, core.MustCombo("PARM", "PANR"))
			if err != nil {
				return err
			}
			_, err = eng.Run(w)
			return err
		}
	}
	if err := add(measure("engine_run/serial", 3, 2*time.Second, engineRun(1, core.NoCModeCycle))); err != nil {
		return err
	}
	if err := add(measure("engine_run/parallel", 3, 2*time.Second, engineRun(0, core.NoCModeCycle))); err != nil {
		return err
	}
	if err := add(measure("engine_run/noc_auto", 3, 2*time.Second, engineRun(0, core.NoCModeAuto))); err != nil {
		return err
	}

	if rk4, ph := lookup("domain_solve/rk4"), lookup("domain_solve/phasor"); ph > 0 {
		rep.Derived["speedup_phasor_vs_rk4"] = rk4 / ph
	}
	if rk4, ex := lookup("domain_solve/rk4"), lookup("domain_solve/expm"); ex > 0 {
		rep.Derived["speedup_expm_vs_rk4"] = rk4 / ex
	}
	if ph, hit := lookup("domain_solve/phasor"), lookup("domain_solve/cache_hit"); hit > 0 {
		rep.Derived["speedup_cache_hit_vs_phasor"] = ph / hit
	}
	if ser, par := lookup("engine_run/serial"), lookup("engine_run/parallel"); par > 0 {
		rep.Derived["speedup_engine_parallel_vs_serial"] = ser / par
	}
	if dense, cyc := lookup("noc_window/dense"), lookup("noc_window/cycle"); cyc > 0 {
		rep.Derived["speedup_noc_cycle_vs_dense"] = dense / cyc
	}
	if dense, ana := lookup("noc_window/dense"), lookup("noc_window/analytic"); ana > 0 {
		rep.Derived["speedup_noc_analytic_vs_dense"] = dense / ana
	}
	if par, auto := lookup("engine_run/parallel"), lookup("engine_run/noc_auto"); auto > 0 {
		rep.Derived["speedup_engine_noc_auto_vs_cycle"] = par / auto
	}

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(&rep)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	verbose("bench: wrote %s (phasor speedup %.1fx over rk4)",
		outPath, rep.Derived["speedup_phasor_vs_rk4"])
	return nil
}
