// Command benchdiff compares two BENCH_parm.json reports (parm-bench/v1,
// produced by experiments -bench) and fails when the new report regressed
// past tolerance. It is the CI regression gate: raw ns/op results gate with
// -tol, the machine-portable derived speedup ratios with -dtol, and
// individual benchmarks can carry their own threshold via -over.
//
// Usage:
//
//	benchdiff [-tol 1.30] [-dtol 1.35] [-over name=ratio,...] old.json new.json
//
// Exit status: 0 within tolerance, 1 regression or missing benchmark,
// 2 usage or parse error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// benchReport mirrors the parm-bench/v1 document written by
// cmd/experiments -bench (see cmd/experiments/bench.go).
type benchReport struct {
	Schema  string `json:"schema"`
	GOOS    string `json:"goos"`
	GOARCH  string `json:"goarch"`
	CPUs    int    `json:"cpus"`
	Results []struct {
		Name    string  `json:"name"`
		Iters   int     `json:"iters"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"results"`
	Derived map[string]float64 `json:"derived"`
}

// run is the testable CLI body.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tol := fs.Float64("tol", 1.30, "fail when new ns/op exceeds old by more than this ratio")
	dtol := fs.Float64("dtol", 1.35, "fail when a derived speedup ratio shrinks by more than this factor")
	over := fs.String("over", "", "per-benchmark tolerance overrides, name=ratio comma-separated")
	fs.Usage = func() {
		fprintf(stderr, "usage: benchdiff [-tol ratio] [-dtol ratio] [-over name=ratio,...] old.json new.json\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	overrides, err := parseOverrides(*over)
	if err != nil {
		fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	old, err := readReport(fs.Arg(0))
	if err != nil {
		fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	cur, err := readReport(fs.Arg(1))
	if err != nil {
		fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}

	var b strings.Builder
	failed := diff(&b, old, cur, *tol, *dtol, overrides)
	if _, err := io.WriteString(stdout, b.String()); err != nil {
		fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	if failed {
		return 1
	}
	return 0
}

// diff renders the comparison into b and reports whether any benchmark
// regressed past its tolerance or disappeared from the new report.
func diff(b *strings.Builder, old, cur *benchReport, tol, dtol float64, overrides map[string]float64) bool {
	curNs := make(map[string]float64, len(cur.Results))
	for _, r := range cur.Results {
		curNs[r.Name] = r.NsPerOp
	}
	if old.GOOS != cur.GOOS || old.GOARCH != cur.GOARCH || old.CPUs != cur.CPUs {
		fmt.Fprintf(b, "note: comparing across machines (%s/%s cpus=%d vs %s/%s cpus=%d); ns/op ratios are indicative only\n",
			old.GOOS, old.GOARCH, old.CPUs, cur.GOOS, cur.GOARCH, cur.CPUs)
	}

	failed := false
	fmt.Fprintf(b, "%-40s %14s %14s %7s %9s\n", "benchmark", "old ns/op", "new ns/op", "ratio", "status")
	for _, r := range old.Results {
		limit := tol
		if o, ok := overrides[r.Name]; ok {
			limit = o
		}
		nw, ok := curNs[r.Name]
		if !ok {
			fmt.Fprintf(b, "%-40s %14.0f %14s %7s %9s\n", r.Name, r.NsPerOp, "-", "-", "MISSING")
			failed = true
			continue
		}
		if r.NsPerOp <= 0 || nw <= 0 {
			fmt.Fprintf(b, "%-40s %14.0f %14.0f %7s %9s\n", r.Name, r.NsPerOp, nw, "-", "INVALID")
			failed = true
			continue
		}
		ratio := nw / r.NsPerOp
		status := "ok"
		switch {
		case ratio > limit:
			status = "REGRESSED"
			failed = true
		case ratio < 1/limit:
			status = "improved"
		}
		fmt.Fprintf(b, "%-40s %14.0f %14.0f %7.2f %9s\n", r.Name, r.NsPerOp, nw, ratio, status)
	}
	for _, r := range cur.Results {
		found := false
		for _, o := range old.Results {
			if o.Name == r.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(b, "%-40s %14s %14.0f %7s %9s\n", r.Name, "-", r.NsPerOp, "-", "new")
		}
	}

	// Derived speedup ratios are "bigger is better" and machine-portable:
	// a shrink past dtol fails even across hosts.
	names := make([]string, 0, len(old.Derived))
	for name := range old.Derived {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ov := old.Derived[name]
		nv, ok := cur.Derived[name]
		if !ok {
			fmt.Fprintf(b, "%-40s %14.2f %14s %7s %9s\n", "derived/"+name, ov, "-", "-", "MISSING")
			failed = true
			continue
		}
		if ov <= 0 || nv <= 0 {
			fmt.Fprintf(b, "%-40s %14.2f %14.2f %7s %9s\n", "derived/"+name, ov, nv, "-", "INVALID")
			failed = true
			continue
		}
		limit := dtol
		if o, ok := overrides["derived/"+name]; ok {
			limit = o
		}
		ratio := ov / nv // >1 means the speedup shrank
		status := "ok"
		switch {
		case ratio > limit:
			status = "REGRESSED"
			failed = true
		case ratio < 1/limit:
			status = "improved"
		}
		fmt.Fprintf(b, "%-40s %14.2f %14.2f %7.2f %9s\n", "derived/"+name, ov, nv, ratio, status)
	}
	if failed {
		fmt.Fprintf(b, "\nFAIL: regression past tolerance (ns/op tol %.2f, derived tol %.2f)\n", tol, dtol)
	}
	return failed
}

// readReport loads and validates one parm-bench/v1 document.
func readReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != "parm-bench/v1" {
		return nil, fmt.Errorf("%s: unknown schema %q (want parm-bench/v1)", path, rep.Schema)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return &rep, nil
}

// parseOverrides parses "name=ratio,name=ratio" per-benchmark tolerances.
func parseOverrides(s string) (map[string]float64, error) {
	out := map[string]float64{}
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad override %q (want name=ratio)", part)
		}
		ratio, err := strconv.ParseFloat(val, 64)
		if err != nil || ratio <= 1 {
			return nil, fmt.Errorf("bad override ratio %q for %s (want a float > 1)", val, name)
		}
		out[name] = ratio
	}
	return out, nil
}

// fprintf drops the write error: CLI output to stdout/stderr has no recovery
// path.
func fprintf(w io.Writer, format string, args ...interface{}) {
	//parm:errok
	fmt.Fprintf(w, format, args...)
}
