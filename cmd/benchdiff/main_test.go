package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeReport serializes a minimal parm-bench/v1 document to a temp file.
func writeReport(t *testing.T, name string, ns map[string]float64, derived map[string]float64) string {
	t.Helper()
	type result struct {
		Name    string  `json:"name"`
		Iters   int     `json:"iters"`
		NsPerOp float64 `json:"ns_per_op"`
	}
	doc := struct {
		Schema  string             `json:"schema"`
		GOOS    string             `json:"goos"`
		GOARCH  string             `json:"goarch"`
		CPUs    int                `json:"cpus"`
		Results []result           `json:"results"`
		Derived map[string]float64 `json:"derived"`
	}{Schema: "parm-bench/v1", GOOS: "linux", GOARCH: "amd64", CPUs: 4, Derived: derived}
	// Deterministic result order for stable output assertions.
	names := make([]string, 0, len(ns))
	for n := range ns {
		names = append(names, n)
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, n := range names {
		doc.Results = append(doc.Results, result{Name: n, Iters: 100, NsPerOp: ns[n]})
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runDiff(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestWithinToleranceExitsZero(t *testing.T) {
	old := writeReport(t, "old.json", map[string]float64{"a": 100, "b": 200}, map[string]float64{"s": 4})
	cur := writeReport(t, "new.json", map[string]float64{"a": 110, "b": 190}, map[string]float64{"s": 3.9})
	code, out, _ := runDiff(t, old, cur)
	if code != 0 {
		t.Fatalf("exit %d, want 0:\n%s", code, out)
	}
	if strings.Contains(out, "REGRESSED") || strings.Contains(out, "FAIL") {
		t.Errorf("clean diff reports a failure:\n%s", out)
	}
}

func TestRegressionExitsOne(t *testing.T) {
	old := writeReport(t, "old.json", map[string]float64{"a": 100, "b": 200}, nil)
	cur := writeReport(t, "new.json", map[string]float64{"a": 250, "b": 200}, nil)
	code, out, _ := runDiff(t, old, cur)
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "FAIL") {
		t.Errorf("regression not reported:\n%s", out)
	}
	// b stayed flat and must not be flagged.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "b ") && strings.Contains(line, "REGRESSED") {
			t.Errorf("unregressed benchmark flagged: %s", line)
		}
	}
}

func TestImprovementExitsZero(t *testing.T) {
	old := writeReport(t, "old.json", map[string]float64{"a": 300}, nil)
	cur := writeReport(t, "new.json", map[string]float64{"a": 100}, nil)
	code, out, _ := runDiff(t, old, cur)
	if code != 0 {
		t.Fatalf("exit %d, want 0:\n%s", code, out)
	}
	if !strings.Contains(out, "improved") {
		t.Errorf("3x improvement not marked:\n%s", out)
	}
}

func TestMissingBenchmarkExitsOne(t *testing.T) {
	old := writeReport(t, "old.json", map[string]float64{"a": 100, "gone": 50}, nil)
	cur := writeReport(t, "new.json", map[string]float64{"a": 100}, nil)
	code, out, _ := runDiff(t, old, cur)
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "MISSING") {
		t.Errorf("missing benchmark not reported:\n%s", out)
	}
}

func TestNewBenchmarkIsInformational(t *testing.T) {
	old := writeReport(t, "old.json", map[string]float64{"a": 100}, nil)
	cur := writeReport(t, "new.json", map[string]float64{"a": 100, "fresh": 10}, nil)
	code, out, _ := runDiff(t, old, cur)
	if code != 0 {
		t.Fatalf("exit %d, want 0 (new benchmarks are not failures):\n%s", code, out)
	}
	if !strings.Contains(out, "fresh") || !strings.Contains(out, "new") {
		t.Errorf("new benchmark not listed:\n%s", out)
	}
}

func TestDerivedRatioGate(t *testing.T) {
	old := writeReport(t, "old.json", map[string]float64{"a": 100}, map[string]float64{"speedup": 6})
	cur := writeReport(t, "new.json", map[string]float64{"a": 100}, map[string]float64{"speedup": 2})
	code, out, _ := runDiff(t, old, cur)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (speedup shrank 3x):\n%s", code, out)
	}
	if !strings.Contains(out, "derived/speedup") {
		t.Errorf("derived regression not named:\n%s", out)
	}
	// The same shrink passes under a loose -dtol.
	code, out, _ = runDiff(t, "-dtol", "4", old, cur)
	if code != 0 {
		t.Fatalf("exit %d with -dtol 4, want 0:\n%s", code, out)
	}
}

func TestPerBenchOverride(t *testing.T) {
	old := writeReport(t, "old.json", map[string]float64{"noisy": 100, "stable": 100}, nil)
	cur := writeReport(t, "new.json", map[string]float64{"noisy": 180, "stable": 100}, nil)
	code, out, _ := runDiff(t, old, cur)
	if code != 1 {
		t.Fatalf("exit %d, want 1 under default tol:\n%s", code, out)
	}
	code, out, _ = runDiff(t, "-over", "noisy=2.0", old, cur)
	if code != 0 {
		t.Fatalf("exit %d with override, want 0:\n%s", code, out)
	}
	if _, _, stderr := runDiff(t, "-over", "bad=0.5", old, cur); stderr == "" {
		t.Error("override ratio <= 1 accepted")
	}
}

func TestUsageAndParseErrorsExitTwo(t *testing.T) {
	old := writeReport(t, "old.json", map[string]float64{"a": 100}, nil)
	if code, _, _ := runDiff(t, old); code != 2 {
		t.Errorf("one argument: exit %d, want 2", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := runDiff(t, old, bad); code != 2 || !strings.Contains(stderr, "schema") {
		t.Errorf("wrong schema: exit %d stderr %q, want 2 with schema error", code, stderr)
	}
	if code, _, _ := runDiff(t, old, filepath.Join(t.TempDir(), "absent.json")); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
}

// The committed BENCH_parm.json gates against itself: identity must pass.
func TestSelfCompareOnCommittedReport(t *testing.T) {
	path := filepath.Join("..", "..", "BENCH_parm.json")
	if _, err := os.Stat(path); err != nil {
		t.Skip("no committed BENCH_parm.json")
	}
	code, out, stderr := runDiff(t, path, path)
	if code != 0 {
		t.Fatalf("self-compare exit %d:\n%s%s", code, out, stderr)
	}
}
