// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), plus ablation benches for the design choices called out
// in DESIGN.md. Each figure bench regenerates a (scaled-down) version of
// the experiment per iteration and reports the headline quantities via
// b.ReportMetric, so `go test -bench=. -benchmem` both times the pipeline
// and reproduces the result shapes. cmd/experiments prints the full-size
// tables.
package parm

import (
	"testing"

	"parm/internal/appmodel"
	"parm/internal/chip"
	"parm/internal/core"
	"parm/internal/expr"
	"parm/internal/geom"
	"parm/internal/mapping"
	"parm/internal/noc"
	"parm/internal/pdn"
	"parm/internal/power"
)

// benchApps is the scaled-down sequence length used by the runtime benches
// (the paper uses 20; cmd/experiments runs full size).
const benchApps = 6

// BenchmarkFig1TechNodePSN regenerates Fig. 1: peak PSN at near-threshold
// voltage across technology nodes (45nm..7nm).
func BenchmarkFig1TechNodePSN(b *testing.B) {
	var last *pdn.Result
	for i := 0; i < b.N; i++ {
		for _, n := range power.Nodes {
			p := power.MustParams(n)
			var occ [pdn.DomainTiles]pdn.TileOccupant
			for k := range occ {
				occ[k] = pdn.TileOccupant{IAvg: p.TileCurrent(p.VNTC, 0.9, 0.4), Class: pdn.High}
			}
			res, err := pdn.SimulateDomain(pdn.Config{Params: p, Vdd: p.VNTC}, pdn.BuildLoads(occ))
			if err != nil {
				b.Fatal(err)
			}
			last = &res
			if n == power.Node7 {
				b.ReportMetric(res.DomainPeak()*100, "peakPSN7nm_%")
			}
		}
	}
	_ = last
}

// BenchmarkFig3aPSNvsVdd regenerates Fig. 3a: peak PSN versus supply
// voltage at 7nm.
func BenchmarkFig3aPSNvsVdd(b *testing.B) {
	p := power.MustParams(power.Node7)
	for i := 0; i < b.N; i++ {
		for _, v := range p.VddLevels(0.1) {
			var occ [pdn.DomainTiles]pdn.TileOccupant
			for k := range occ {
				occ[k] = pdn.TileOccupant{IAvg: p.TileCurrent(v, 0.9, 0.4), Class: pdn.High}
			}
			res, err := pdn.SimulateDomain(pdn.Config{Params: p, Vdd: v}, pdn.BuildLoads(occ))
			if err != nil {
				b.Fatal(err)
			}
			switch v {
			case 0.4:
				b.ReportMetric(res.DomainPeak()*100, "peak@0.4V_%")
			case 0.8:
				b.ReportMetric(res.DomainPeak()*100, "peak@0.8V_%")
			}
		}
	}
}

// BenchmarkFig3bInterference regenerates Fig. 3b: normalized PSN
// interference between task pairs of different switching activity at 1 and
// 2 hop separation.
func BenchmarkFig3bInterference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := expr.Fig3b()
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) != 6 {
			b.Fatalf("unexpected table shape: %d rows", len(tbl.Rows))
		}
	}
}

// runtimeBench runs one scaled (framework, workload, gap) cell per
// iteration and reports the metrics the corresponding figure plots.
func runtimeBench(b *testing.B, mapper, routing string, kind appmodel.WorkloadKind, gap float64, soft bool) {
	fw := core.MustCombo(mapper, routing)
	for i := 0; i < b.N; i++ {
		node := power.MustParams(power.Node7)
		w, err := appmodel.Generate(appmodel.WorkloadConfig{
			Kind: kind, NumApps: benchApps, ArrivalGap: gap, Node: node, Seed: 42,
		})
		if err != nil {
			b.Fatal(err)
		}
		eng, err := core.NewEngine(core.Config{SoftDeadlines: soft}, fw)
		if err != nil {
			b.Fatal(err)
		}
		m, err := eng.Run(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(m.TotalTime, "totalTime_s")
		b.ReportMetric(m.PeakPSN*100, "peakPSN_%")
		b.ReportMetric(float64(m.Completed), "completed")
	}
}

// BenchmarkFig6ExecutionTime regenerates Fig. 6 (total execution time) for
// the paper's six framework combinations on the mixed workload.
func BenchmarkFig6ExecutionTime(b *testing.B) {
	for _, combo := range [][2]string{
		{"HM", "XY"}, {"HM", "ICON"}, {"HM", "PANR"},
		{"PARM", "XY"}, {"PARM", "ICON"}, {"PARM", "PANR"},
	} {
		b.Run(combo[0]+"+"+combo[1], func(b *testing.B) {
			runtimeBench(b, combo[0], combo[1], appmodel.WorkloadMixed, 0.05, true)
		})
	}
}

// BenchmarkEngineRunFig6Cell times one Fig. 6 cell (PARM+PANR, mixed
// workload) end to end under the serial reference pipeline versus the
// parallel, cached measurement pipeline. Both produce bit-identical metrics
// (see core.TestPipelineSerialParallelDeterministic); the cell is the
// evaluation's unit of work, so the ratio of these two is the speedup every
// figure regeneration sees.
func BenchmarkEngineRunFig6Cell(b *testing.B) {
	run := func(b *testing.B, cfg core.Config) {
		fw := core.MustCombo("PARM", "PANR")
		node := power.MustParams(power.Node7)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w, err := appmodel.Generate(appmodel.WorkloadConfig{
				Kind: appmodel.WorkloadMixed, NumApps: benchApps, ArrivalGap: 0.05,
				Node: node, Seed: 42,
			})
			if err != nil {
				b.Fatal(err)
			}
			eng, err := core.NewEngine(cfg, fw)
			if err != nil {
				b.Fatal(err)
			}
			m, err := eng.Run(w)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(m.TotalTime, "totalTime_s")
		}
	}
	b.Run("serial", func(b *testing.B) {
		run(b, core.Config{
			SoftDeadlines:   true,
			DisableNoCCache: true,
			Chip:            chip.Config{PSNWorkers: 1, DisablePSNCache: true},
		})
	})
	b.Run("parallel", func(b *testing.B) {
		run(b, core.Config{SoftDeadlines: true})
	})
}

// BenchmarkFig7PSN regenerates Fig. 7 (peak and average PSN) for the two
// extreme frameworks on the communication-intensive workload.
func BenchmarkFig7PSN(b *testing.B) {
	for _, combo := range [][2]string{{"HM", "XY"}, {"PARM", "PANR"}} {
		b.Run(combo[0]+"+"+combo[1], func(b *testing.B) {
			runtimeBench(b, combo[0], combo[1], appmodel.WorkloadComm, 0.05, true)
		})
	}
}

// BenchmarkFig8Completed regenerates Fig. 8 (applications completed under
// oversubscription) across arrival gaps for HM+XY and PARM+PANR.
func BenchmarkFig8Completed(b *testing.B) {
	for _, combo := range [][2]string{{"HM", "XY"}, {"PARM", "PANR"}} {
		for _, gap := range []float64{0.2, 0.1, 0.05} {
			name := combo[0] + "+" + combo[1] + "/gap=" + map[float64]string{0.2: "0.2s", 0.1: "0.1s", 0.05: "0.05s"}[gap]
			b.Run(name, func(b *testing.B) {
				runtimeBench(b, combo[0], combo[1], appmodel.WorkloadCompute, gap, false)
			})
		}
	}
}

// BenchmarkTableOverhead regenerates the §4.4 PANR router overhead
// accounting.
func BenchmarkTableOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := noc.PANROverhead()
		b.ReportMetric(o.PowerMilliwatts, "power_mW")
		b.ReportMetric(o.AreaUm2, "area_um2")
	}
}

// BenchmarkAblationClustering compares PARM's same-activity clustering with
// communication-only clustering: the PSN cost of ignoring activity classes
// (DESIGN.md §5).
func BenchmarkAblationClustering(b *testing.B) {
	bench := appmodel.Benchmarks()[1] // fft: mixed High/Low tasks
	p := power.MustParams(power.Node7)
	run := func(b *testing.B, mapper mapping.Mapper) {
		for i := 0; i < b.N; i++ {
			c, err := chipForBench()
			if err != nil {
				b.Fatal(err)
			}
			g := bench.Graph(16)
			pl, ok := mapper.Map(c, g)
			if !ok {
				b.Fatal("mapping failed")
			}
			for _, d := range pl.Domains {
				if err := c.AssignDomain(d, 1, 0.5); err != nil {
					b.Fatal(err)
				}
			}
			for task, tile := range pl.TaskTile {
				if err := c.PlaceTask(tile, 1, int(task), g.Tasks[task].Activity); err != nil {
					b.Fatal(err)
				}
			}
			s, err := c.SamplePSN(nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(s.ChipPeak()*100, "peakPSN_%")
			b.ReportMetric(mapping.CommCost(c.Mesh, g, pl)/1e9, "commCost_GBhop")
		}
	}
	_ = p
	b.Run("activityAware", func(b *testing.B) { run(b, mapping.PARM{}) })
	b.Run("commOnly", func(b *testing.B) { run(b, mapping.PARM{IgnoreActivity: true}) })
}

// BenchmarkAblationSearchOrder compares Algorithm 1's lowest-Vdd-first
// search with a highest-Vdd-first variant: the power and PSN cost of
// greedily taking the fastest operating point.
func BenchmarkAblationSearchOrder(b *testing.B) {
	for _, tc := range []struct {
		name         string
		highVddFirst bool
	}{{"lowVddFirst", false}, {"highVddFirst", true}} {
		b.Run(tc.name, func(b *testing.B) {
			fw := core.MustCombo("PARM", "PANR")
			fw.HighVddFirst = tc.highVddFirst
			for i := 0; i < b.N; i++ {
				node := power.MustParams(power.Node7)
				w, err := appmodel.Generate(appmodel.WorkloadConfig{
					Kind: appmodel.WorkloadCompute, NumApps: benchApps, ArrivalGap: 0.05,
					Node: node, Seed: 42,
				})
				if err != nil {
					b.Fatal(err)
				}
				eng, err := core.NewEngine(core.Config{SoftDeadlines: true}, fw)
				if err != nil {
					b.Fatal(err)
				}
				m, err := eng.Run(w)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(m.PeakPSN*100, "peakPSN_%")
				b.ReportMetric(float64(m.TotalVEs), "VEs")
			}
		})
	}
}

// BenchmarkAblationPANRThreshold sweeps PANR's buffer-occupancy threshold B
// around the paper's 50% operating point (§5.1).
func BenchmarkAblationPANRThreshold(b *testing.B) {
	for _, th := range []float64{0.25, 0.5, 0.75} {
		name := map[float64]string{0.25: "B=25%", 0.5: "B=50%", 0.75: "B=75%"}[th]
		b.Run(name, func(b *testing.B) {
			flows := hotspotFlows()
			env := &noc.Env{PSN: make([]float64, 60)}
			for _, hot := range []int{22, 23, 32, 33} {
				env.PSN[hot] = 0.07
			}
			for i := 0; i < b.N; i++ {
				n, err := noc.NewNetwork(noc.Config{}, noc.PANR{Threshold: th}, flows, env)
				if err != nil {
					b.Fatal(err)
				}
				n.Run(1500)
				res := n.Measure(6000)
				lat, cnt := 0.0, 0
				for _, fs := range res.Flows {
					if fs.DeliveredPackets > 0 {
						lat += fs.AvgPacketLatency()
						cnt++
					}
				}
				b.ReportMetric(lat/float64(cnt), "avgLatency_cyc")
			}
		})
	}
}

// BenchmarkAblationSensorBits sweeps the PSN sensor quantization used by
// PANR's hop selection.
func BenchmarkAblationSensorBits(b *testing.B) {
	for _, bits := range []uint{3, 6, 10} {
		name := map[uint]string{3: "3bit", 6: "6bit", 10: "10bit"}[bits]
		b.Run(name, func(b *testing.B) {
			fw := core.MustCombo("PARM", "PANR")
			for i := 0; i < b.N; i++ {
				node := power.MustParams(power.Node7)
				w, err := appmodel.Generate(appmodel.WorkloadConfig{
					Kind: appmodel.WorkloadComm, NumApps: benchApps, ArrivalGap: 0.05,
					Node: node, Seed: 42,
				})
				if err != nil {
					b.Fatal(err)
				}
				eng, err := core.NewEngine(core.Config{SoftDeadlines: true, SensorBits: bits}, fw)
				if err != nil {
					b.Fatal(err)
				}
				m, err := eng.Run(w)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(m.PeakPSN*100, "peakPSN_%")
			}
		})
	}
}

// hotspotFlows builds the synthetic crossing traffic used by the NoC-level
// benches.
func hotspotFlows() []noc.Flow {
	var flows []noc.Flow
	for i := 0; i < 40; i++ {
		src := geom.TileID((i * 7) % 60)
		dst := geom.TileID((i*11 + 29) % 60)
		if src == dst {
			dst = (dst + 1) % 60
		}
		flows = append(flows, noc.Flow{App: i % 3, Src: src, Dst: dst, Rate: 0.12})
	}
	return flows
}

// chipForBench builds a fresh default chip for mapping benches.
func chipForBench() (*chip.Chip, error) {
	return chip.New(chip.Config{})
}
