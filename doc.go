// Package parm is a simulation framework reproducing "PARM: Power Supply
// Noise Aware Resource Management for NoC based Multicore Systems in the
// Dark Silicon Era" (Raparti & Pasricha, DAC 2018).
//
// The library models a 60-core 7nm FinFET chip multiprocessor with 2x2-tile
// power-supply domains, a cycle-level wormhole network-on-chip, an RLC
// power-delivery-network transient solver, and the PARM runtime resource
// manager: joint supply-voltage / degree-of-parallelism selection
// (Algorithm 1), PSN-aware task clustering and mapping (Algorithm 2), and
// PSN- and congestion-aware NoC routing (PANR, Algorithm 3), evaluated
// against the harmonic-mapping (HM), XY, and ICON baselines.
//
// Entry points:
//
//   - cmd/parmsim runs one workload under a chosen framework;
//   - cmd/experiments regenerates every figure of the paper's evaluation;
//   - examples/ contains runnable walkthroughs of each subsystem;
//   - bench_test.go holds the per-figure benchmark harness.
//
// See DESIGN.md for the system inventory and per-experiment index, and
// EXPERIMENTS.md for recorded paper-vs-measured results.
package parm

// Version identifies this reproduction release.
const Version = "1.0.0"
