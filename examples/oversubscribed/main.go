// Oversubscribed: the scenario of the paper's Fig. 8 — applications arrive
// faster than the chip can drain them, and the resource manager decides who
// runs and who is dropped. Compares the HM baseline against PARM across
// arrival rates on a communication-intensive sequence.
package main

import (
	"fmt"
	"log"
	"os"

	"parm/internal/appmodel"
	"parm/internal/core"
	"parm/internal/power"
	"parm/internal/report"
)

func main() {
	log.SetFlags(0)

	node := power.MustParams(power.Node7)
	frameworks := []core.Framework{
		core.MustCombo("HM", "XY"),
		core.MustCombo("PARM", "XY"),
		core.MustCombo("PARM", "PANR"),
	}
	gaps := []float64{0.2, 0.1, 0.05}

	t := report.NewTable("applications completed out of 20 (communication-intensive)",
		"framework", "0.2s gap", "0.1s gap", "0.05s gap", "peakPSN@0.05s(%)")
	for _, fw := range frameworks {
		var done []interface{}
		var peak float64
		for _, gap := range gaps {
			w, err := appmodel.Generate(appmodel.WorkloadConfig{
				Kind: appmodel.WorkloadComm, NumApps: 20, ArrivalGap: gap, Node: node, Seed: 42,
			})
			if err != nil {
				log.Fatal(err)
			}
			eng, err := core.NewEngine(core.Config{}, fw)
			if err != nil {
				log.Fatal(err)
			}
			m, err := eng.Run(w)
			if err != nil {
				log.Fatal(err)
			}
			done = append(done, m.Completed)
			peak = m.PeakPSN * 100
		}
		t.AddRow(append([]interface{}{fw.Name}, append(done, peak)...)...)
	}
	if err := t.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPARM fits more applications by lowering Vdd and widening DoP within the")
	fmt.Println("dark-silicon budget; HM's fixed parallelism forces higher voltages and power.")
}
