// Pdnsweep: exercise the power-delivery-network transient solver directly —
// the experiment behind the paper's Figs. 1 and 3. Sweeps supply voltage
// and technology node, and demonstrates the task-pair interference effect
// (High-Low adjacency is noisier than High-High or Low-Low, and 2-hop
// separation interferes less than 1-hop).
package main

import (
	"fmt"
	"log"
	"os"

	"parm/internal/pdn"
	"parm/internal/power"
	"parm/internal/report"
)

func main() {
	log.SetFlags(0)

	// Peak PSN at near-threshold voltage across technology nodes (Fig 1).
	t1 := report.NewTable("peak PSN at NTC across technology nodes (unmanaged domain)",
		"node", "vdd(V)", "peakPSN(%)")
	for _, n := range power.Nodes {
		p := power.MustParams(n)
		res, err := pdn.SimulateDomain(pdn.Config{Params: p, Vdd: p.VNTC}, fullDomain(p, p.VNTC, false))
		if err != nil {
			log.Fatal(err)
		}
		t1.AddRow(n.String(), p.VNTC, res.DomainPeak()*100)
	}
	must(t1.Write(os.Stdout))
	fmt.Println()

	// Vdd sweep at 7nm, managed (staggered) vs unmanaged (Fig 3a).
	p := power.MustParams(power.Node7)
	t2 := report.NewTable("peak PSN vs Vdd at 7nm", "vdd(V)", "unmanaged(%)", "staggered(%)")
	for _, v := range p.VddLevels(0.1) {
		un, err := pdn.SimulateDomain(pdn.Config{Params: p, Vdd: v}, fullDomain(p, v, false))
		if err != nil {
			log.Fatal(err)
		}
		st, err := pdn.SimulateDomain(pdn.Config{Params: p, Vdd: v}, fullDomain(p, v, true))
		if err != nil {
			log.Fatal(err)
		}
		t2.AddRow(v, un.DomainPeak()*100, st.DomainPeak()*100)
	}
	must(t2.Write(os.Stdout))
	fmt.Println()

	// Task-pair interference (Fig 3b): observe the raw domain peaks.
	t3 := report.NewTable("task-pair peak PSN at 0.5V (7nm)", "pair", "peakPSN(%)")
	for _, pr := range []struct {
		name   string
		a, b   pdn.Class
		sa, sb int
	}{
		{"High-High adjacent", pdn.High, pdn.High, 0, 1},
		{"High-Low adjacent", pdn.High, pdn.Low, 0, 1},
		{"Low-Low adjacent", pdn.Low, pdn.Low, 0, 1},
		{"High-Low diagonal", pdn.High, pdn.Low, 0, 3},
	} {
		var occ [pdn.DomainTiles]pdn.TileOccupant
		occ[pr.sa] = occupant(p, 0.5, pr.a)
		occ[pr.sb] = occupant(p, 0.5, pr.b)
		res, err := pdn.SimulateDomain(pdn.Config{Params: p, Vdd: 0.5}, pdn.BuildLoads(occ))
		if err != nil {
			log.Fatal(err)
		}
		t3.AddRow(pr.name, res.DomainPeak()*100)
	}
	must(t3.Write(os.Stdout))
}

func occupant(p power.NodeParams, vdd power.Volts, class pdn.Class) pdn.TileOccupant {
	act := 0.9
	if class == pdn.Low {
		act = 0.35
	}
	return pdn.TileOccupant{IAvg: p.TileCurrent(vdd, act, 0.3), Class: class}
}

func fullDomain(p power.NodeParams, vdd power.Volts, staggered bool) [pdn.DomainTiles]pdn.TileLoad {
	var occ [pdn.DomainTiles]pdn.TileOccupant
	for i := range occ {
		occ[i] = pdn.TileOccupant{
			IAvg:      p.TileCurrent(vdd, 0.9, 0.4),
			Class:     pdn.High,
			Staggered: staggered,
		}
	}
	return pdn.BuildLoads(occ)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
