// Chipview: drive the mapping layer directly — place two applications on
// the chip with PARM and HM and print ASCII views of the occupancy, the
// domain assignments, and the resulting PSN heatmap. Uppercase letters are
// High-activity tasks, lowercase Low; '*' marks tiles beyond the 5%
// voltage-emergency margin.
package main

import (
	"fmt"
	"log"

	"parm/internal/appmodel"
	"parm/internal/chip"
	"parm/internal/mapping"
	"parm/internal/power"
)

func main() {
	log.SetFlags(0)

	c, err := chip.New(chip.Config{})
	if err != nil {
		log.Fatal(err)
	}

	place := func(m mapping.Mapper, appID int, bench string, dop int, vdd power.Volts) {
		b, err := appmodel.BenchmarkByName(bench)
		if err != nil {
			log.Fatal(err)
		}
		g := b.Graph(dop)
		pl, ok := m.Map(c, g)
		if !ok {
			log.Fatalf("%s could not map %s at DoP %d", m.Name(), bench, dop)
		}
		for _, d := range pl.Domains {
			if err := c.AssignDomain(d, appID, vdd); err != nil {
				log.Fatal(err)
			}
		}
		for task, tile := range pl.TaskTile {
			if err := c.PlaceTask(tile, appID, int(task), g.Tasks[task].Activity); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%s mapped %s (DoP %d) at %.1f V onto domains %v; comm cost %.1f GB*hop\n",
			m.Name(), bench, dop, vdd, pl.Domains, mapping.CommCost(c.Mesh, g, pl)/1e9)
	}

	// App 0: fft, PSN-aware clustering at near-threshold voltage.
	place(mapping.PARM{}, 0, "fft", 16, 0.4)
	// App 1: swaptions, harmonic mapping at nominal voltage.
	place(mapping.HM{}, 1, "swaptions", 16, 0.8)

	fmt.Println("\ntile occupancy (A/a = app 0, B/b = app 1; upper = High activity):")
	fmt.Println(c.View())
	fmt.Println("domain assignments:")
	fmt.Println(c.DomainView())

	sample, err := c.SamplePSN(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PSN heatmap (digits ~ % of Vdd in half-percent steps, '*' = emergency):")
	fmt.Println(c.PSNView(sample.TilePeak))
	fmt.Printf("chip peak PSN: %.2f%% — the harmonically-scattered nominal-voltage app\n", sample.ChipPeak()*100)
	fmt.Println("dominates the noise; the PARM-clustered NTC app stays quiet.")
}
