// Noccompare: drive the cycle-level NoC simulator directly with a synthetic
// hotspot traffic pattern and compare the four routing schemes of the paper
// (XY, west-first, ICON, PANR) on latency, throughput, and — the quantity
// PANR optimizes — switching activity at the routers of noisy tiles.
package main

import (
	"fmt"
	"log"
	"os"

	"parm/internal/geom"
	"parm/internal/noc"
	"parm/internal/report"
)

func main() {
	log.SetFlags(0)

	// Three "applications" with crossing flows over the 10x6 mesh.
	var flows []noc.Flow
	patterns := []struct{ s, d, n int }{{0, 59, 20}, {5, 50, 20}, {9, 30, 20}}
	for ai, p := range patterns {
		for k := 0; k < p.n; k++ {
			src := geom.TileID((p.s + k*7) % 60)
			dst := geom.TileID((p.d + k*11) % 60)
			if src == dst {
				dst = (dst + 1) % 60
			}
			flows = append(flows, noc.Flow{App: ai, Src: src, Dst: dst, Rate: 0.15})
		}
	}

	// Two active power domains read 7% PSN on their noise sensors; the
	// rest of the chip is quiet.
	env := &noc.Env{PSN: make([]float64, 60)}
	for _, hot := range []int{22, 23, 32, 33, 26, 27, 36, 37} {
		env.PSN[hot] = 0.07
	}

	t := report.NewTable("routing schemes under hotspot traffic (10k-cycle window)",
		"scheme", "delivered(flits)", "avgLatency(cyc)", "stalledCyc", "hotTileActivity")
	for _, alg := range []noc.Algorithm{noc.XY{}, noc.WestFirst{}, noc.ICON{}, noc.PANR{}} {
		n, err := noc.NewNetwork(noc.Config{}, alg, flows, env)
		if err != nil {
			log.Fatal(err)
		}
		n.Run(2000) // warmup
		res := n.Measure(10000)

		delivered, stalled, lat, nlat := 0, 0, 0.0, 0
		for _, fs := range res.Flows {
			delivered += fs.DeliveredFlits
			stalled += fs.StalledCycles
			if fs.DeliveredPackets > 0 {
				lat += fs.AvgPacketLatency()
				nlat++
			}
		}
		hot := 0
		for i, fw := range res.RouterForwarded {
			if env.PSN[i] > 0.05 {
				hot += fw
			}
		}
		t.AddRow(alg.Name(), delivered, lat/float64(nlat), stalled, hot)
	}
	if err := t.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPANR steers flits away from tiles whose sensors report high supply noise,")
	fmt.Println("cutting router switching activity exactly where cores are already struggling.")

	o := noc.PANROverhead()
	fmt.Printf("\nPANR hardware overhead (7nm): +%.1f mW (%.1f%%), +%.0f um^2 (%.1f%%) per router\n",
		o.PowerMilliwatts, o.PowerPercent, o.AreaUm2, o.AreaPercent)
}
