// Quickstart: map a single application with the PARM framework and inspect
// what the runtime chose — supply voltage, degree of parallelism, the
// power-supply domains it claimed, and the resulting power supply noise.
package main

import (
	"fmt"
	"log"

	"parm/internal/appmodel"
	"parm/internal/core"
	"parm/internal/power"
)

func main() {
	log.SetFlags(0)

	// The platform of the paper: 10x6 mesh at 7nm FinFET, 65 W dark
	// silicon power budget, Vdd levels 0.4-0.8 V.
	node := power.MustParams(power.Node7)

	// One fft instance arriving at t=0 with its profiled deadline.
	w, err := appmodel.Generate(appmodel.WorkloadConfig{
		Kind: appmodel.WorkloadComm, NumApps: 1, ArrivalGap: 0.1, Node: node, Seed: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	app := w.Apps[0]
	fmt.Printf("application: %s, deadline %.1f ms\n", app, app.RelDeadline*1e3)

	// Run it under PARM mapping + PANR routing.
	eng, err := core.NewEngine(core.Config{}, core.MustCombo("PARM", "PANR"))
	if err != nil {
		log.Fatal(err)
	}
	m, err := eng.Run(w)
	if err != nil {
		log.Fatal(err)
	}

	o := m.Apps[0]
	fmt.Printf("outcome:     %s\n", o.State)
	fmt.Printf("operating point: Vdd=%.1f V (f=%.2f GHz), DoP=%d threads\n",
		o.Vdd, node.Frequency(o.Vdd)/1e9, o.DoP)
	fmt.Printf("turnaround:  %.1f ms (deadline met: %v)\n",
		(o.CompletedAt-o.App.Arrival)*1e3, o.DeadlineMet)
	fmt.Printf("peak PSN:    %.2f%% of Vdd (voltage-emergency margin is 5%%)\n", m.PeakPSN*100)
	fmt.Printf("average PSN: %.2f%%\n", m.AvgPSN*100)
	fmt.Printf("voltage emergencies: %d\n", m.TotalVEs)
	fmt.Printf("mean NoC packet latency: %.1f cycles\n", m.MeanPacketLatency)
}
