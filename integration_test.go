package parm

import (
	"strings"
	"testing"

	"parm/internal/appmodel"
	"parm/internal/chip"
	"parm/internal/core"
	"parm/internal/mapping"
	"parm/internal/pdn"
	"parm/internal/power"
)

// End-to-end determinism: the full pipeline (workload generation, mapping,
// NoC measurement, PDN sampling, VE accounting) produces bitwise-identical
// metrics across runs.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() *core.Metrics {
		node := power.MustParams(power.Node7)
		w, err := appmodel.Generate(appmodel.WorkloadConfig{
			Kind: appmodel.WorkloadMixed, NumApps: 5, ArrivalGap: 0.07, Node: node, Seed: 77,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := core.NewEngine(core.Config{}, core.MustCombo("PARM", "PANR"))
		if err != nil {
			t.Fatal(err)
		}
		m, err := eng.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.TotalTime != b.TotalTime || a.PeakPSN != b.PeakPSN ||
		a.TotalVEs != b.TotalVEs || a.TotalEnergyJ != b.TotalEnergyJ {
		t.Errorf("runs differ:\n%+v\n%+v", a, b)
	}
}

// A saved workload replays to the same outcome as the original.
func TestWorkloadReplayEquivalence(t *testing.T) {
	node := power.MustParams(power.Node7)
	w1, err := appmodel.Generate(appmodel.WorkloadConfig{
		Kind: appmodel.WorkloadComm, NumApps: 4, ArrivalGap: 0.1, Node: node, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := w1.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	w2, err := appmodel.ReadWorkloadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	run := func(w *appmodel.Workload) *core.Metrics {
		eng, err := core.NewEngine(core.Config{}, core.MustCombo("PARM", "XY"))
		if err != nil {
			t.Fatal(err)
		}
		m, err := eng.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(w1), run(w2)
	if a.TotalTime != b.TotalTime || a.Completed != b.Completed || a.PeakPSN != b.PeakPSN {
		t.Errorf("replay differs: %+v vs %+v", a, b)
	}
}

// The cross-layer invariant behind the whole paper: on the same chip, a
// PARM placement of a mixed-activity application produces lower peak PSN
// than an HM placement of the same application at the same voltage.
func TestMappingPSNOrdering(t *testing.T) {
	bench, err := appmodel.BenchmarkByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	g := bench.Graph(16)
	peakFor := func(m mapping.Mapper) float64 {
		c, err := chip.New(chip.Config{})
		if err != nil {
			t.Fatal(err)
		}
		pl, ok := m.Map(c, g)
		if !ok {
			t.Fatalf("%s failed to map", m.Name())
		}
		for _, d := range pl.Domains {
			if err := c.AssignDomain(d, 0, 0.5); err != nil {
				t.Fatal(err)
			}
		}
		for task, tile := range pl.TaskTile {
			if err := c.PlaceTask(tile, 0, int(task), g.Tasks[task].Activity); err != nil {
				t.Fatal(err)
			}
		}
		s, err := c.SamplePSN(nil)
		if err != nil {
			t.Fatal(err)
		}
		return s.ChipPeak()
	}
	parm := peakFor(mapping.PARM{})
	hm := peakFor(mapping.HM{})
	if parm >= hm {
		t.Errorf("PARM peak %g not below HM %g for the same app", parm, hm)
	}
}

// The voltage-emergency margin is consistent across layers: pdn defines it,
// the runtime charges rollbacks above it.
func TestVEThresholdConsistency(t *testing.T) {
	if pdn.VEThreshold != 0.05 {
		t.Fatalf("VE threshold = %g, paper uses 5%%", pdn.VEThreshold)
	}
}

// Version sanity for the release.
func TestVersion(t *testing.T) {
	if Version == "" {
		t.Fatal("empty version")
	}
}
