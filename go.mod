module parm

go 1.22
