package noc

import "parm/internal/geom"

// noOwner marks an output port with no wormhole channel allocated.
const noOwner = -1

// port indices: cardinal directions map via dirIndex; Local is index 4.
func dirIndex(d geom.Dir) int {
	switch d {
	case geom.East:
		return 0
	case geom.West:
		return 1
	case geom.North:
		return 2
	case geom.South:
		return 3
	case geom.Local:
		return 4
	default:
		return -1
	}
}

var indexDir = [geom.NumPorts]geom.Dir{geom.East, geom.West, geom.North, geom.South, geom.Local}

// fifo is one input buffer: a fixed-capacity ring of flits. A ring keeps the
// hot loop allocation-free — the slice-and-append FIFO it replaces leaked
// front capacity on every pop and forced a reallocation per packet.
type fifo struct {
	buf  []flit
	head int
	n    int
}

func (q *fifo) len() int { return q.n }

// front returns the flit at the head of the queue; the caller must have
// checked len() > 0. The pointer stays valid until the next pop.
func (q *fifo) front() *flit { return &q.buf[q.head] }

func (q *fifo) push(f flit) {
	i := q.head + q.n
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	q.buf[i] = f
	q.n++
}

func (q *fifo) pop() flit {
	f := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.n--
	return f
}

// router is one 5-port input-buffered wormhole router.
type router struct {
	tile geom.TileID

	// inputs[p] is the FIFO of flits waiting at input port p.
	inputs [geom.NumPorts]fifo
	// buffered is the total flit count across all input ports; a router
	// with buffered == 0 has no routing or switching work this cycle.
	buffered int
	// owner[p] is the input port that holds the wormhole channel to output
	// port p, or noOwner.
	owner [geom.NumPorts]int
	// rrPtr[p] is the round-robin arbitration pointer of output port p.
	rrPtr [geom.NumPorts]int

	// forwarded counts flits that traversed the crossbar (all outputs).
	forwarded int
	// recvCycle/recvCount sample flits written into any input buffer during
	// one cycle (noteReceive); recvCycle is -1 until the first receive.
	recvCycle int
	recvCount int
	// incomingRate is an exponentially weighted moving average of received
	// flits per cycle; adaptive routing reads it from neighbors. rateCycle
	// is the first cycle not yet folded into it — idle-cycle decay is
	// applied lazily (catchUpRate), eagerly under SteppingDense.
	incomingRate float64
	rateCycle    int
}

// occupancy returns the fill fraction of input port p's buffer.
func (r *router) occupancy(p int, capacity int) float64 {
	if capacity <= 0 {
		return 0
	}
	return float64(r.inputs[p].len()) / float64(capacity)
}

// pendingArrival records a flit crossing a link this cycle, applied after
// all routers have been stepped so a flit moves at most one hop per cycle.
type pendingArrival struct {
	to   geom.TileID
	port int
	f    flit
}
