package noc

import "parm/internal/geom"

// noOwner marks an output port with no wormhole channel allocated.
const noOwner = -1

// port indices: cardinal directions map via dirIndex; Local is index 4.
func dirIndex(d geom.Dir) int {
	switch d {
	case geom.East:
		return 0
	case geom.West:
		return 1
	case geom.North:
		return 2
	case geom.South:
		return 3
	case geom.Local:
		return 4
	default:
		return -1
	}
}

var indexDir = [geom.NumPorts]geom.Dir{geom.East, geom.West, geom.North, geom.South, geom.Local}

// router is one 5-port input-buffered wormhole router.
type router struct {
	tile geom.TileID

	// inputs[p] is the FIFO of flits waiting at input port p.
	inputs [geom.NumPorts][]flit
	// owner[p] is the input port that holds the wormhole channel to output
	// port p, or noOwner.
	owner [geom.NumPorts]int
	// rrPtr[p] is the round-robin arbitration pointer of output port p.
	rrPtr [geom.NumPorts]int

	// forwarded counts flits that traversed the crossbar (all outputs).
	forwarded int
	// received counts flits written into any input buffer; lastReceived is
	// the previous cycle's total, for per-cycle rate sampling.
	received     int
	lastReceived int64
	// incomingRate is an exponentially weighted moving average of received
	// flits per cycle; adaptive routing reads it from neighbors.
	incomingRate float64
}

// occupancy returns the fill fraction of input port p's buffer.
func (r *router) occupancy(p int, capacity int) float64 {
	if capacity <= 0 {
		return 0
	}
	return float64(len(r.inputs[p])) / float64(capacity)
}

// pendingArrival records a flit crossing a link this cycle, applied after
// all routers have been stepped so a flit moves at most one hop per cycle.
type pendingArrival struct {
	to   geom.TileID
	port int
	f    flit
}
