package noc

import (
	"testing"

	"parm/internal/geom"
)

func benchFlows() []Flow {
	var flows []Flow
	for i := 0; i < 36; i++ {
		src := geom.TileID((i * 7) % 60)
		dst := geom.TileID((i*13 + 17) % 60)
		if src == dst {
			dst = (dst + 1) % 60
		}
		flows = append(flows, Flow{App: i % 4, Src: src, Dst: dst, Rate: 0.1})
	}
	return flows
}

// BenchmarkNetworkStep times one simulated cycle of a moderately loaded
// 10x6 mesh — the inner loop of every NoC measurement window.
func BenchmarkNetworkStep(b *testing.B) {
	for _, alg := range []Algorithm{XY{}, PANR{}} {
		b.Run(alg.Name(), func(b *testing.B) {
			env := &Env{PSN: make([]float64, 60)}
			n, err := NewNetwork(Config{}, alg, benchFlows(), env)
			if err != nil {
				b.Fatal(err)
			}
			n.Run(2000) // reach steady state
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.Step()
			}
		})
	}
}

// BenchmarkNoCRingAllocs pins the //parm:hot contract dynamically: once the
// mesh reaches steady state (ring buffers filled, packet-start map at its
// working size), a cycle step must run allocation-free. hotalloc enforces
// the same property statically.
func BenchmarkNoCRingAllocs(b *testing.B) {
	env := &Env{PSN: make([]float64, 60)}
	n, err := NewNetwork(Config{}, PANR{}, benchFlows(), env)
	if err != nil {
		b.Fatal(err)
	}
	n.Run(8000) // fill buffers and grow the packet-start map to steady state
	allocs := testing.AllocsPerRun(1000, n.Step)
	if allocs != 0 {
		b.Fatalf("steady-state Step allocates %.3f times per run, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step()
	}
}

// BenchmarkMeasureWindow times a full measurement window (the per-mapping-
// event cost in the runtime engine).
func BenchmarkMeasureWindow(b *testing.B) {
	env := &Env{PSN: make([]float64, 60)}
	for i := 0; i < b.N; i++ {
		n, err := NewNetwork(Config{}, PANR{}, benchFlows(), env)
		if err != nil {
			b.Fatal(err)
		}
		n.Run(1500)
		n.Measure(8000)
	}
}
