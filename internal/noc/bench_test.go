package noc

import (
	"testing"

	"parm/internal/geom"
)

func benchFlows() []Flow {
	var flows []Flow
	for i := 0; i < 36; i++ {
		src := geom.TileID((i * 7) % 60)
		dst := geom.TileID((i*13 + 17) % 60)
		if src == dst {
			dst = (dst + 1) % 60
		}
		flows = append(flows, Flow{App: i % 4, Src: src, Dst: dst, Rate: 0.1})
	}
	return flows
}

// sparseFlows is a Fig 6-shaped flow set: many flows, each far below link
// capacity, leaving most routers idle most cycles. This is the regime the
// engine actually measures (probed chip-wide offered load during the paper
// workloads is 0.1-2 flits/cycle across 60 tiles) and the one the active
// stepping path is built for.
func sparseFlows() []Flow {
	rates := []float64{0.004, 0.002, 0.008, 0.001, 0.006}
	var flows []Flow
	for i := 0; i < 50; i++ {
		src := geom.TileID((i * 7) % 60)
		dst := geom.TileID((i*13 + 5) % 60)
		if src == dst {
			dst = (dst + 1) % 60
		}
		flows = append(flows, Flow{App: i % 8, Src: src, Dst: dst, Rate: rates[i%len(rates)]})
	}
	return flows
}

// BenchmarkNetworkStep times one simulated cycle of a moderately loaded
// 10x6 mesh — the inner loop of every NoC measurement window.
func BenchmarkNetworkStep(b *testing.B) {
	for _, alg := range []Algorithm{XY{}, PANR{}} {
		b.Run(alg.Name(), func(b *testing.B) {
			env := &Env{PSN: make([]float64, 60)}
			n, err := NewNetwork(Config{}, alg, benchFlows(), env)
			if err != nil {
				b.Fatal(err)
			}
			n.Run(2000) // reach steady state
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.Step()
			}
		})
	}
}

// BenchmarkNoCStepAllocs pins the //parm:hot contract dynamically: once the
// mesh reaches steady state (ring buffers filled, wake heap and packet-start
// logs at their working sizes), a cycle step must run allocation-free under
// both stepping strategies. hotalloc enforces the same property statically.
func BenchmarkNoCStepAllocs(b *testing.B) {
	for _, tc := range []struct {
		name     string
		stepping Stepping
	}{{"active", SteppingActive}, {"dense", SteppingDense}} {
		b.Run(tc.name, func(b *testing.B) {
			env := &Env{PSN: make([]float64, 60)}
			n, err := NewNetwork(Config{Stepping: tc.stepping}, PANR{}, benchFlows(), env)
			if err != nil {
				b.Fatal(err)
			}
			n.Run(8000) // fill buffers and grow per-flow logs to steady state
			allocs := testing.AllocsPerRun(1000, n.Step)
			if allocs != 0 {
				b.Fatalf("steady-state Step allocates %.3f times per run, want 0", allocs)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.Step()
			}
		})
	}
}

// BenchmarkMeasureWindow times a full measurement window (the per-mapping-
// event cost in the runtime engine) on the saturated benchFlows fixture.
func BenchmarkMeasureWindow(b *testing.B) {
	env := &Env{PSN: make([]float64, 60)}
	for i := 0; i < b.N; i++ {
		n, err := NewNetwork(Config{}, PANR{}, benchFlows(), env)
		if err != nil {
			b.Fatal(err)
		}
		n.Run(1500)
		n.Measure(8000)
	}
}

// BenchmarkSparseWindow compares the window strategies on the Fig 6-shaped
// sparse fixture: the dense reference sweep, the active-set cycle path, and
// the analytic closed form. These are the per-strategy costs behind the
// noc_window entries of BENCH_parm.json.
func BenchmarkSparseWindow(b *testing.B) {
	flows := sparseFlows()
	b.Run("dense", func(b *testing.B) {
		env := &Env{PSN: make([]float64, 60)}
		for i := 0; i < b.N; i++ {
			n, err := NewNetwork(Config{Stepping: SteppingDense}, PANR{}, flows, env)
			if err != nil {
				b.Fatal(err)
			}
			n.Run(1500)
			n.Measure(8000)
		}
	})
	b.Run("active", func(b *testing.B) {
		env := &Env{PSN: make([]float64, 60)}
		for i := 0; i < b.N; i++ {
			n, err := NewNetwork(Config{Stepping: SteppingActive}, PANR{}, flows, env)
			if err != nil {
				b.Fatal(err)
			}
			n.Run(1500)
			n.Measure(8000)
		}
	})
	b.Run("analytic", func(b *testing.B) {
		env := &Env{PSN: make([]float64, 60)}
		for i := 0; i < b.N; i++ {
			if _, _, err := AnalyticMeasure(Config{}, PANR{}, flows, env, 8000); err != nil {
				b.Fatal(err)
			}
		}
	})
}
