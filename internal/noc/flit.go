// Package noc is a cycle-level simulator of the 2D-mesh wormhole
// network-on-chip that connects the CMP tiles (paper §3.1), together with
// the four routing schemes evaluated in §5.2: deterministic XY, adaptive
// west-first, ICON (NoC-activity-aware, core-agnostic, modeling ref [22]),
// and the paper's PANR (PSN- and congestion-aware, Algorithm 3).
//
// Routers are input-buffered with credit-based flow control and single-VC
// wormhole switching: a head flit acquires an output port, body flits
// follow, and the tail flit releases it. Each output port forwards at most
// one flit per cycle and links take one cycle. Traffic is injected by
// flows — mapped APG edges — at configured demand rates; the simulator
// measures per-flow latency and throughput and per-router switching
// activity, which feed the execution-time model and the PDN solver.
package noc

import "parm/internal/geom"

// FlitKind distinguishes the positions of a flit inside a packet.
type FlitKind int

// Flit kinds. Single-flit packets use KindHeadTail.
const (
	KindHead FlitKind = iota
	KindBody
	KindTail
	KindHeadTail
)

// flit is one flow-control unit in flight.
type flit struct {
	kind   FlitKind
	flow   int // index into the simulation's flow table
	packet int // packet sequence number within the flow
	dst    geom.TileID
	outDir geom.Dir // assigned output at current router (head decides)
	born   int      // cycle the packet's head was injected
	routed bool     // head flit: output direction already computed
	// noise is the worst PSN sensor reading on the route so far, carried by
	// head flits for the fault model's corruption check; unused (zero) when
	// no fault model is installed.
	noise float64
}

// Flow is one traffic stream: the mapped image of an APG edge. Src and Dst
// are tiles; Rate is the demand in flits per cycle (may exceed 1 only in
// aggregate across flows; a single flow is capped at 1 flit/cycle by the
// injection port).
type Flow struct {
	// App is the owning application ID (used to aggregate app latency).
	App int
	// Src and Dst are the mapped source and destination tiles.
	Src, Dst geom.TileID
	// Rate is the injection demand in flits per cycle.
	Rate float64
}

// FlowStats reports what one flow achieved during a measurement window.
type FlowStats struct {
	// InjectedFlits and DeliveredFlits count flits entering the source
	// router and leaving at the destination.
	InjectedFlits  int
	DeliveredFlits int
	// DeliveredPackets counts fully ejected packets.
	DeliveredPackets int
	// TotalPacketLatency sums, over delivered packets, the cycles from
	// head injection to tail ejection.
	TotalPacketLatency int
	// StalledCycles counts cycles injection was blocked by backpressure.
	StalledCycles int

	// The remaining counters are populated only when a fault model is
	// installed (Network.SetFaultModel); they are always zero otherwise.
	//
	// DroppedPackets counts packets that reached the destination corrupted
	// by supply noise and were discarded.
	DroppedPackets int
	// RetransmittedPackets counts dropped packets the source NIC re-staged.
	RetransmittedPackets int
	// RecoveredPackets counts deliveries that repaid an earlier drop's
	// retransmission debt.
	RecoveredPackets int
	// LostPackets counts dropped packets that could not be retransmitted
	// (stage queue full): unrecoverable losses.
	LostPackets int
}

// AvgPacketLatency returns the mean packet latency in cycles, or 0 when
// nothing was delivered.
func (s FlowStats) AvgPacketLatency() float64 {
	if s.DeliveredPackets == 0 {
		return 0
	}
	return float64(s.TotalPacketLatency) / float64(s.DeliveredPackets)
}

// Throughput returns delivered flits per cycle over a window of n cycles.
func (s FlowStats) Throughput(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(s.DeliveredFlits) / float64(n)
}
