package noc

import (
	"fmt"

	"parm/internal/geom"
)

// This file is the closed-form window model of DESIGN.md §11: when every
// network resource is offered less load than the saturation threshold, a
// measurement window's aggregate statistics are computed analytically from
// the flows' zero-load routes instead of simulated cycle by cycle.

// AnalyticReport describes how the closed-form model applied to a flow set.
type AnalyticReport struct {
	// MaxLoad is the highest offered load in flits/cycle on any network
	// resource: a crossbar output port (links and ejection) or a source
	// NIC's injection port.
	MaxLoad float64
	// Saturated reports that some resource's offered load exceeded the
	// configured SatLinkLoad threshold. The closed form is unreliable in
	// that regime — backpressure, stalls, and adaptive rerouting dominate —
	// so callers must fall back to cycle simulation.
	Saturated bool
}

// maxTraceHops bounds route tracing; every shipped algorithm is minimal so
// a trace longer than the mesh diameter indicates a routing bug.
func maxTraceHops(m geom.Mesh) int { return m.Width + m.Height + 2 }

// AnalyticMeasure computes the Result an uncongested measurement window of
// the given cycle count would produce, without running the cycle loop. It
// is a pure, deterministic function of (cfg, alg, flows, env).
//
// The model: each flow's route is traced through the real routing algorithm
// against an idle network (zero occupancy and incoming rates, the actual
// PSN environment), which is exact below saturation because every shipped
// algorithm routes minimally and reads only state that is quiescent at low
// load. Per-flow latency is the wormhole zero-load latency (hops +
// serialization) plus an M/D/1-style contention term per traversed output
// port; throughput is the offered load. The report's Saturated flag tells
// the caller when any resource exceeds cfg.SatLinkLoad and the closed form
// must not be used.
func AnalyticMeasure(cfg Config, alg Algorithm, flows []Flow, env *Env, cycles int) (*Result, AnalyticReport, error) {
	cfg = cfg.withDefaults()
	// The throwaway network supplies RouteCtx's view of an idle fabric; it
	// is never stepped, so occupancy and incoming rates read as zero.
	n, err := NewNetwork(cfg, alg, flows, env)
	if err != nil {
		return nil, AnalyticReport{}, err
	}
	mesh := n.mesh
	numTiles := mesh.NumTiles()
	lp := dirIndex(geom.Local)

	// Trace every flow's route once, accumulating offered load per crossbar
	// output port and per source NIC, and remembering the port sequence for
	// the latency pass.
	outLoad := make([]float64, numTiles*geom.NumPorts)
	injLoad := make([]float64, numTiles)
	ports := make([]int32, 0, len(flows)*8) // flattened per-flow port lists
	portOff := make([]int, len(flows)+1)
	tiles := make([]int32, 0, len(flows)*8) // flattened per-flow tile paths
	tileOff := make([]int, len(flows)+1)
	for i, f := range flows {
		portOff[i] = len(ports)
		tileOff[i] = len(tiles)
		if f.Src == f.Dst || f.Rate <= 0 {
			continue
		}
		at, inDir := f.Src, geom.Local
		tiles = append(tiles, int32(f.Src))
		for hop := 0; ; hop++ {
			if hop > maxTraceHops(mesh) {
				return nil, AnalyticReport{}, fmt.Errorf("noc: %s route %d->%d exceeds %d hops", alg.Name(), f.Src, f.Dst, maxTraceHops(mesh))
			}
			dir := alg.Route(RouteCtx{Net: n, At: at, Dst: f.Dst, InDir: inDir})
			if dir == geom.Local {
				break
			}
			port := int(at)*geom.NumPorts + dirIndex(dir)
			outLoad[port] += f.Rate
			ports = append(ports, int32(port))
			next, ok := mesh.Neighbor(at, dir)
			if !ok {
				return nil, AnalyticReport{}, fmt.Errorf("noc: %s routed %d->%d off-mesh at %d", alg.Name(), f.Src, f.Dst, at)
			}
			inDir = dir.Opposite()
			at = next
			tiles = append(tiles, int32(at))
		}
		eject := int(f.Dst)*geom.NumPorts + lp
		outLoad[eject] += f.Rate
		ports = append(ports, int32(eject))
		injLoad[f.Src] += f.Rate
	}
	portOff[len(flows)] = len(ports)
	tileOff[len(flows)] = len(tiles)

	var rep AnalyticReport
	for _, l := range outLoad {
		if l > rep.MaxLoad {
			rep.MaxLoad = l
		}
	}
	for _, l := range injLoad {
		if l > rep.MaxLoad {
			rep.MaxLoad = l
		}
	}
	rep.Saturated = rep.MaxLoad > cfg.SatLinkLoad

	// Closed-form window statistics. Throughput is the offered load (below
	// saturation the network delivers what is injected); latency is
	// zero-load serialization plus per-port contention. The M/D/1-style
	// waiting term rho*fpp/(2*(1-rho)) models a head flit finding the port
	// busy with a competing worm of fpp flits.
	fpp := cfg.FlitsPerPacket
	res := &Result{
		Cycles:          cycles,
		Flows:           make([]FlowStats, len(flows)),
		RouterForwarded: make([]int, numTiles),
		RouterUtil:      make([]float64, numTiles),
	}
	for i, f := range flows {
		if f.Src == f.Dst || f.Rate <= 0 {
			continue
		}
		// The NIC stages whole packets, so a window ships the offered flit
		// credit rounded down to packet granularity (the in-flight remainder
		// rides across window boundaries in either direction).
		packets := int(f.Rate*float64(cycles)) / fpp
		flits := packets * fpp
		hops := tileOff[i+1] - tileOff[i] - 1
		wait := waitInject(injLoad[f.Src], f.Rate, fpp)
		for _, p := range ports[portOff[i]:portOff[i+1]] {
			wait += waitMD1(outLoad[p], fpp)
		}
		lat := float64(hops+fpp) + wait
		res.Flows[i] = FlowStats{
			InjectedFlits:      flits,
			DeliveredFlits:     flits,
			DeliveredPackets:   packets,
			TotalPacketLatency: int(lat*float64(packets) + 0.5),
		}
		for _, t := range tiles[tileOff[i]:tileOff[i+1]] {
			res.RouterForwarded[t] += flits
		}
	}
	for t := range res.RouterForwarded {
		res.RouterUtil[t] = float64(res.RouterForwarded[t]) / float64(cycles) / float64(geom.NumPorts)
	}
	return res, rep, nil
}

// waitMD1 is the M/D/1-style waiting term for a port offered rho flits/cycle
// by worms of fpp flits. rho is clamped at 0.95: above SatLinkLoad the model
// is out of its validity range anyway (NoCModeAuto falls back to cycle
// simulation there), and the clamp keeps NoCModeAnalytic's answers finite and
// monotone instead of diverging as rho -> 1.
func waitMD1(rho float64, fpp int) float64 {
	if rho <= 0 {
		return 0
	}
	if rho > 0.95 {
		rho = 0.95
	}
	return rho * float64(fpp) / (2 * (1 - rho))
}

// waitInject is the source-NIC serialization wait: flows sharing one
// injection port queue behind each other's worms. Own load is excluded — a
// flow never queues behind itself at its own NIC.
func waitInject(total, own float64, fpp int) float64 {
	return waitMD1(total-own, fpp)
}
