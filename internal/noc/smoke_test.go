package noc

import (
	"fmt"
	"testing"

	"parm/internal/geom"
)

func TestSmokeTraffic(t *testing.T) {
	for _, alg := range []Algorithm{XY{}, WestFirst{}, ICON{}, PANR{}} {
		flows := []Flow{
			{App: 0, Src: 0, Dst: 9, Rate: 0.3},
			{App: 0, Src: 9, Dst: 0, Rate: 0.3},
			{App: 1, Src: 12, Dst: 47, Rate: 0.5},
			{App: 1, Src: 47, Dst: 13, Rate: 0.5},
			{App: 1, Src: 22, Dst: 25, Rate: 0.8},
			{App: 1, Src: 23, Dst: 25, Rate: 0.8},
			{App: 1, Src: 24, Dst: 25, Rate: 0.8},
		}
		n, err := NewNetwork(Config{}, alg, flows, &Env{})
		if err != nil {
			t.Fatal(err)
		}
		res := n.Measure(10000)
		tot, lat := 0, 0.0
		for i, fs := range res.Flows {
			tot += fs.DeliveredFlits
			lat += fs.AvgPacketLatency()
			if fs.DeliveredPackets == 0 {
				t.Errorf("%s: flow %d delivered nothing", alg.Name(), i)
			}
		}
		maxUtil := 0.0
		for _, u := range res.RouterUtil {
			if u > maxUtil {
				maxUtil = u
			}
		}
		fmt.Printf("%-10s delivered=%d avgLatSum=%.1f maxUtil=%.3f\n", alg.Name(), tot, lat/float64(len(flows)), maxUtil)
		_ = geom.TileID(0)
	}
}
