package noc

import (
	"fmt"
	"sort"

	"parm/internal/geom"
)

// Config parameterizes the NoC simulation.
type Config struct {
	// Width and Height are the mesh dimensions. Zero selects 10x6.
	Width, Height int
	// BufferFlits is the input buffer capacity per port. Zero selects 8.
	BufferFlits int
	// FlitsPerPacket is the packet size. Zero selects 5 (head + 4 payload).
	FlitsPerPacket int
	// StagedPackets bounds the per-flow source queue; when full, demand is
	// counted as stalled cycles instead of growing without bound. Zero
	// selects 4.
	StagedPackets int
	// OccupancyThreshold is PANR's buffer-occupancy threshold B as a
	// fraction; zero selects 0.5 (paper §5.1).
	OccupancyThreshold float64
	// RateEWMA is the smoothing constant of the incoming-data-rate
	// estimator in (0,1]; zero selects 0.05, the value every recorded
	// experiment was calibrated against (TestConfigDefaults pins doc and
	// code together).
	RateEWMA float64
}

func (c Config) withDefaults() Config {
	// Each dimension defaults independently, so a config that sets only one
	// (e.g. Width: 8) gets a real mesh instead of a degenerate zero-tile one.
	if c.Width == 0 {
		c.Width = 10
	}
	if c.Height == 0 {
		c.Height = 6
	}
	if c.BufferFlits == 0 {
		c.BufferFlits = 8
	}
	if c.FlitsPerPacket == 0 {
		c.FlitsPerPacket = 5
	}
	if c.StagedPackets == 0 {
		c.StagedPackets = 4
	}
	if c.OccupancyThreshold == 0 {
		c.OccupancyThreshold = 0.5
	}
	if c.RateEWMA == 0 {
		c.RateEWMA = 0.05
	}
	return c
}

// Env is the cross-layer state adaptive routing reads: the latest quantized
// PSN sensor reading per tile (paper Algorithm 3 input). A nil or short
// slice reads as zero noise.
type Env struct {
	PSN []float64
}

// psnAt returns the sensor reading for tile t, or 0 when unavailable.
func (e *Env) psnAt(t geom.TileID) float64 {
	if e == nil || int(t) >= len(e.PSN) || t < 0 {
		return 0
	}
	return e.PSN[t]
}

// Network is one NoC simulation instance.
type Network struct {
	cfg     Config
	mesh    geom.Mesh
	alg     Algorithm
	env     *Env
	routers []router
	flows   []Flow
	stats   []FlowStats

	// per-flow injection state
	acc     []float64 // fractional flit credit accumulated from Rate
	staged  []int     // whole packets waiting at the source NIC
	nextSeq []int     // next packet sequence number
	// partial[t] tracks, per tile, the flow whose packet is mid-injection
	// and how many flits remain, so packets enter the local port contiguously.
	partialFlow  []int
	partialLeft  []int
	injectRR     []int // round-robin pointer over flows per source tile
	flowsBySrc   [][]int
	srcTiles     []int // tiles with at least one flow source, ascending
	packetStarts map[[2]int]int // (flow, seq) -> injection cycle of head

	// per-cycle scratch, reused to avoid allocation in the hot loop
	arrivalScratch []pendingArrival
	inFlight       [][geom.NumPorts]int

	// faults, when non-nil, injects noise-induced packet losses at ejection
	// (SetFaultModel). pendingRecovery[f] counts flow f's retransmissions
	// still owed a delivery; packetNoise parks each head flit's accumulated
	// path noise until the tail closes the packet.
	faults          FaultModel
	pendingRecovery []int
	packetNoise     map[[2]int]float64

	cycle int
}

// NewNetwork builds a network for the given routing algorithm, flow set,
// and environment. It returns an error for non-positive mesh dimensions,
// or when a flow references a tile outside the mesh or has a negative rate.
func NewNetwork(cfg Config, alg Algorithm, flows []Flow, env *Env) (*Network, error) {
	cfg = cfg.withDefaults()
	if alg == nil {
		return nil, fmt.Errorf("noc: nil routing algorithm")
	}
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("noc: non-positive mesh dimensions %dx%d", cfg.Width, cfg.Height)
	}
	mesh := geom.NewMesh(cfg.Width, cfg.Height)
	n := &Network{
		cfg:          cfg,
		mesh:         mesh,
		alg:          alg,
		env:          env,
		routers:      make([]router, mesh.NumTiles()),
		flows:        flows,
		stats:        make([]FlowStats, len(flows)),
		acc:          make([]float64, len(flows)),
		staged:       make([]int, len(flows)),
		nextSeq:      make([]int, len(flows)),
		partialFlow:  make([]int, mesh.NumTiles()),
		partialLeft:  make([]int, mesh.NumTiles()),
		injectRR:     make([]int, mesh.NumTiles()),
		flowsBySrc:   make([][]int, mesh.NumTiles()),
		packetStarts: make(map[[2]int]int),
		// Preallocated to their steady-state bounds so the cycle loop never
		// grows them: at most one arrival per (tile, port) per cycle.
		arrivalScratch: make([]pendingArrival, 0, mesh.NumTiles()*geom.NumPorts),
		inFlight:       make([][geom.NumPorts]int, mesh.NumTiles()),
	}
	// One backing array for every input buffer keeps the rings contiguous.
	bufs := make([]flit, mesh.NumTiles()*geom.NumPorts*cfg.BufferFlits)
	for i := range n.routers {
		n.routers[i].tile = geom.TileID(i)
		for p := range n.routers[i].owner {
			n.routers[i].owner[p] = noOwner
			off := (i*geom.NumPorts + p) * cfg.BufferFlits
			n.routers[i].inputs[p].buf = bufs[off : off+cfg.BufferFlits]
		}
		n.partialFlow[i] = -1
	}
	for i, f := range flows {
		if !mesh.ValidTile(f.Src) || !mesh.ValidTile(f.Dst) {
			return nil, fmt.Errorf("noc: flow %d endpoints (%d,%d) outside mesh", i, f.Src, f.Dst)
		}
		if f.Rate < 0 {
			return nil, fmt.Errorf("noc: flow %d has negative rate %g", i, f.Rate)
		}
		if f.Src != f.Dst {
			if len(n.flowsBySrc[f.Src]) == 0 {
				n.srcTiles = append(n.srcTiles, int(f.Src))
			}
			n.flowsBySrc[f.Src] = append(n.flowsBySrc[f.Src], i)
		}
	}
	sort.Ints(n.srcTiles)
	return n, nil
}

// Mesh returns the mesh geometry.
func (n *Network) Mesh() geom.Mesh { return n.mesh }

// SetFaultModel installs fm as the network's packet-loss model: every
// packet reaching its destination is checked against the worst PSN sensor
// reading on its route, and dropped packets are retransmitted from the
// source NIC while its stage queue has room. Call before the first Step.
// A nil model (the default) delivers every packet and leaves the hot loop
// untouched.
func (n *Network) SetFaultModel(fm FaultModel) {
	n.faults = fm
	if fm != nil && n.pendingRecovery == nil {
		n.pendingRecovery = make([]int, len(n.flows))
		n.packetNoise = make(map[[2]int]float64)
	}
}

// IncomingRate returns the EWMA incoming flit rate of tile t's router.
func (n *Network) IncomingRate(t geom.TileID) float64 {
	return n.routers[t].incomingRate
}

// SensorPSN returns the environment's PSN reading at tile t.
func (n *Network) SensorPSN(t geom.TileID) float64 { return n.env.psnAt(t) }

// Step advances the simulation by one cycle.
//
//parm:hot
func (n *Network) Step() {
	n.inject()
	n.routeCompute()
	arrivals := n.switchTraversal()
	n.applyArrivals(arrivals)
	n.arrivalScratch = arrivals[:0]
	n.updateRates()
	n.cycle++
}

// Run advances the simulation by the given number of cycles.
func (n *Network) Run(cycles int) {
	for i := 0; i < cycles; i++ {
		n.Step()
	}
}

// inject moves demand into source NICs and NIC flits into local input ports.
//
//parm:hot
func (n *Network) inject() {
	// Accrue demand and stage whole packets.
	for i := range n.flows {
		if n.flows[i].Src == n.flows[i].Dst {
			continue // local communication bypasses the NoC
		}
		n.acc[i] += n.flows[i].Rate
		for n.acc[i] >= float64(n.cfg.FlitsPerPacket) {
			if n.staged[i] >= n.cfg.StagedPackets {
				n.stats[i].StalledCycles++
				// Drop the accrued packet's credit: the source is
				// backpressured and the demand is deferred.
				n.acc[i] -= float64(n.cfg.FlitsPerPacket)
				break
			}
			n.acc[i] -= float64(n.cfg.FlitsPerPacket)
			n.staged[i]++
		}
	}
	// One flit per cycle enters each source tile's local input port (only
	// tiles with flows can ever inject).
	lp := dirIndex(geom.Local)
	for _, t := range n.srcTiles {
		r := &n.routers[t]
		if r.inputs[lp].len() >= n.cfg.BufferFlits {
			continue
		}
		fi := n.pickInjection(t)
		if fi < 0 {
			continue
		}
		k := n.flitToInject(t, fi)
		if n.faults != nil && (k.kind == KindHead || k.kind == KindHeadTail) {
			// Path-noise accounting starts at the injection router.
			k.noise = n.env.psnAt(geom.TileID(t))
		}
		r.inputs[lp].push(k)
		r.buffered++
		r.received++
		n.stats[fi].InjectedFlits++
	}
}

// pickInjection selects which flow injects at tile t this cycle: the
// in-progress packet if any, else round-robin over staged flows.
//
//parm:hot
func (n *Network) pickInjection(t int) int {
	if n.partialFlow[t] >= 0 {
		return n.partialFlow[t]
	}
	flows := n.flowsBySrc[t]
	if len(flows) == 0 {
		return -1
	}
	for k := 0; k < len(flows); k++ {
		fi := flows[(n.injectRR[t]+k)%len(flows)]
		if n.staged[fi] > 0 {
			n.injectRR[t] = (n.injectRR[t] + k + 1) % len(flows)
			return fi
		}
	}
	return -1
}

// flitToInject produces the next flit of flow fi's current packet at tile t
// and updates the partial-packet bookkeeping.
//
//parm:hot
func (n *Network) flitToInject(t, fi int) flit {
	fpp := n.cfg.FlitsPerPacket
	if n.partialFlow[t] < 0 {
		// Start a new packet.
		seq := n.nextSeq[fi]
		n.nextSeq[fi]++
		n.staged[fi]--
		n.packetStarts[[2]int{fi, seq}] = n.cycle
		if fpp == 1 {
			return flit{kind: KindHeadTail, flow: fi, packet: seq, dst: n.flows[fi].Dst, born: n.cycle}
		}
		n.partialFlow[t] = fi
		n.partialLeft[t] = fpp - 1
		return flit{kind: KindHead, flow: fi, packet: seq, dst: n.flows[fi].Dst, born: n.cycle}
	}
	seq := n.nextSeq[fi] - 1
	n.partialLeft[t]--
	kind := KindBody
	if n.partialLeft[t] == 0 {
		kind = KindTail
		n.partialFlow[t] = -1
	}
	return flit{kind: kind, flow: fi, packet: seq, dst: n.flows[fi].Dst, born: n.cycle}
}

// routeCompute assigns output directions to unrouted head flits at the
// front of input buffers.
//
//parm:hot
func (n *Network) routeCompute() {
	for t := range n.routers {
		r := &n.routers[t]
		if r.buffered == 0 {
			continue
		}
		for p := range r.inputs {
			if r.inputs[p].len() == 0 {
				continue
			}
			f := r.inputs[p].front()
			if f.routed || (f.kind != KindHead && f.kind != KindHeadTail) {
				continue
			}
			ctx := RouteCtx{
				Net:            n,
				At:             geom.TileID(t),
				Dst:            f.dst,
				InDir:          indexDir[p],
				InputOccupancy: r.occupancy(p, n.cfg.BufferFlits),
			}
			f.outDir = n.alg.Route(ctx)
			f.routed = true
		}
	}
}

// switchTraversal performs output arbitration and moves at most one flit
// per output port, collecting link crossings to apply after the sweep.
//
//parm:hot
func (n *Network) switchTraversal() []pendingArrival {
	arrivals := n.arrivalScratch[:0]
	for t := range n.routers {
		r := &n.routers[t]
		if r.buffered == 0 {
			continue // no flits: arbitration and traversal are no-ops
		}
		// Output arbitration: free outputs pick a requesting input.
		for out := 0; out < geom.NumPorts; out++ {
			if r.owner[out] != noOwner {
				continue
			}
			for k := 0; k < geom.NumPorts; k++ {
				in := (r.rrPtr[out] + k) % geom.NumPorts
				if r.inputs[in].len() == 0 {
					continue
				}
				f := r.inputs[in].front()
				if !f.routed || dirIndex(f.outDir) != out {
					continue
				}
				r.owner[out] = in
				r.rrPtr[out] = (in + 1) % geom.NumPorts
				break
			}
		}
		// Traversal: each owned output forwards its input's front flit.
		for out := 0; out < geom.NumPorts; out++ {
			in := r.owner[out]
			if in == noOwner || r.inputs[in].len() == 0 {
				continue
			}
			if out == dirIndex(geom.Local) {
				// Ejection: infinite sink.
				f := r.inputs[in].pop()
				r.buffered--
				r.forwarded++
				n.eject(f)
				if f.kind == KindTail || f.kind == KindHeadTail {
					r.owner[out] = noOwner
				}
				continue
			}
			dir := indexDir[out]
			next, ok := n.mesh.Neighbor(geom.TileID(t), dir)
			if !ok {
				// Misrouting off-mesh cannot happen with a sane algorithm;
				// drop the channel to avoid wedging the port forever.
				r.owner[out] = noOwner
				continue
			}
			dstPort := dirIndex(dir.Opposite())
			nr := &n.routers[next]
			if nr.inputs[dstPort].len()+n.inFlight[next][dstPort] >= n.cfg.BufferFlits {
				continue // no downstream credit
			}
			n.inFlight[next][dstPort]++
			f := r.inputs[in].pop()
			r.buffered--
			r.forwarded++
			// Body/tail flits follow the worm without route computation.
			moved := f
			moved.routed = false
			moved.outDir = geom.DirInvalid
			// Bounded by the scratch capacity NewNetwork preallocated: one
			// arrival per (tile, port) per cycle.
			//parm:alloc
			arrivals = append(arrivals, pendingArrival{to: next, port: dstPort, f: moved})
			if f.kind == KindTail || f.kind == KindHeadTail {
				r.owner[out] = noOwner
			}
		}
	}
	return arrivals
}

// eject records delivery statistics for a flit leaving the network. With a
// fault model installed, the tail flit closes the packet with a corruption
// check against the head's accumulated path noise: a dropped packet is
// retransmitted from the source NIC while its stage queue has room, and a
// later delivery of the flow repays the debt as a recovery.
//
//parm:hot
func (n *Network) eject(f flit) {
	st := &n.stats[f.flow]
	st.DeliveredFlits++
	if n.faults != nil && f.kind == KindHead {
		// Park the head's path noise until the tail closes the packet.
		n.packetNoise[[2]int{f.flow, f.packet}] = f.noise
	}
	if f.kind != KindTail && f.kind != KindHeadTail {
		return
	}
	key := [2]int{f.flow, f.packet}
	if n.faults != nil {
		noise := f.noise
		if f.kind == KindTail {
			noise = n.packetNoise[key]
			delete(n.packetNoise, key)
		}
		if n.faults.DropPacket(noise) {
			st.DroppedPackets++
			delete(n.packetStarts, key)
			if n.staged[f.flow] < n.cfg.StagedPackets {
				n.staged[f.flow]++
				n.pendingRecovery[f.flow]++
				st.RetransmittedPackets++
			} else {
				st.LostPackets++
			}
			return
		}
		if n.pendingRecovery[f.flow] > 0 {
			n.pendingRecovery[f.flow]--
			st.RecoveredPackets++
		}
	}
	st.DeliveredPackets++
	if born, ok := n.packetStarts[key]; ok {
		st.TotalPacketLatency += n.cycle - born + 1
		delete(n.packetStarts, key)
	}
}

// applyArrivals lands link crossings into downstream input buffers. It also
// clears the inFlight credit holds — every nonzero entry corresponds to
// exactly one arrival, so this leaves the whole table zero for the next
// sweep without a full rezeroing pass.
//
//parm:hot
func (n *Network) applyArrivals(arrivals []pendingArrival) {
	for i := range arrivals {
		a := &arrivals[i]
		if n.faults != nil && (a.f.kind == KindHead || a.f.kind == KindHeadTail) {
			if p := n.env.psnAt(a.to); p > a.f.noise {
				a.f.noise = p
			}
		}
		r := &n.routers[a.to]
		r.inputs[a.port].push(a.f)
		r.buffered++
		r.received++
		n.inFlight[a.to][a.port] = 0
	}
}

// updateRates advances the per-router incoming-rate EWMAs.
//
//parm:hot
func (n *Network) updateRates() {
	alpha := n.cfg.RateEWMA
	for t := range n.routers {
		r := &n.routers[t]
		// received accumulates within the cycle; convert to a per-cycle
		// sample by diffing against the running total.
		sample := float64(r.received - int(r.lastReceived))
		r.incomingRate = (1-alpha)*r.incomingRate + alpha*sample
		r.lastReceived = int64(r.received)
	}
}

// Result summarizes a measurement window.
type Result struct {
	// Cycles is the window length.
	Cycles int
	// Flows holds per-flow statistics, parallel to the input flow slice.
	Flows []FlowStats
	// RouterForwarded counts crossbar traversals per tile.
	RouterForwarded []int
	// RouterUtil is forwarded flits per cycle per port, in [0,1].
	RouterUtil []float64
}

// Measure runs the network for the given number of cycles from its current
// state and returns aggregate statistics.
func (n *Network) Measure(cycles int) *Result {
	startForwarded := make([]int, len(n.routers))
	for i := range n.routers {
		startForwarded[i] = n.routers[i].forwarded
	}
	startStats := make([]FlowStats, len(n.stats))
	copy(startStats, n.stats)

	n.Run(cycles)

	res := &Result{
		Cycles:          cycles,
		Flows:           make([]FlowStats, len(n.stats)),
		RouterForwarded: make([]int, len(n.routers)),
		RouterUtil:      make([]float64, len(n.routers)),
	}
	for i := range n.stats {
		res.Flows[i] = FlowStats{
			InjectedFlits:        n.stats[i].InjectedFlits - startStats[i].InjectedFlits,
			DeliveredFlits:       n.stats[i].DeliveredFlits - startStats[i].DeliveredFlits,
			DeliveredPackets:     n.stats[i].DeliveredPackets - startStats[i].DeliveredPackets,
			TotalPacketLatency:   n.stats[i].TotalPacketLatency - startStats[i].TotalPacketLatency,
			StalledCycles:        n.stats[i].StalledCycles - startStats[i].StalledCycles,
			DroppedPackets:       n.stats[i].DroppedPackets - startStats[i].DroppedPackets,
			RetransmittedPackets: n.stats[i].RetransmittedPackets - startStats[i].RetransmittedPackets,
			RecoveredPackets:     n.stats[i].RecoveredPackets - startStats[i].RecoveredPackets,
			LostPackets:          n.stats[i].LostPackets - startStats[i].LostPackets,
		}
	}
	for i := range n.routers {
		fw := n.routers[i].forwarded - startForwarded[i]
		res.RouterForwarded[i] = fw
		res.RouterUtil[i] = float64(fw) / float64(cycles) / float64(geom.NumPorts)
	}
	return res
}
