package noc

import (
	"fmt"
	"math/bits"
	"sort"

	"parm/internal/geom"
)

// Stepping selects the cycle-loop implementation.
type Stepping int

const (
	// SteppingActive is the event-driven default: only routers holding
	// flits and tiles with staged or mid-packet injections are visited each
	// cycle, dormant flows accrue demand via scheduled wakeups, and fully
	// idle stretches are skipped in one jump (DESIGN.md §11).
	SteppingActive Stepping = iota
	// SteppingDense is the reference loop: every flow and every router is
	// ticked every cycle, as the pre-fast-path simulator did. It shares the
	// per-tile micro-step helpers with the active path and exists for the
	// cycle-exact equivalence tests; both implementations produce
	// bit-identical metrics.
	SteppingDense
)

// Config parameterizes the NoC simulation.
type Config struct {
	// Width and Height are the mesh dimensions. Zero selects 10x6.
	Width, Height int
	// BufferFlits is the input buffer capacity per port. Zero selects 8.
	BufferFlits int
	// FlitsPerPacket is the packet size. Zero selects 5 (head + 4 payload).
	FlitsPerPacket int
	// StagedPackets bounds the per-flow source queue; when full, demand is
	// counted as stalled cycles instead of growing without bound. Zero
	// selects 4.
	StagedPackets int
	// OccupancyThreshold is PANR's buffer-occupancy threshold B as a
	// fraction; zero selects 0.5 (paper §5.1).
	OccupancyThreshold float64
	// RateEWMA is the smoothing constant of the incoming-data-rate
	// estimator in (0,1]; zero selects 0.05, the value every recorded
	// experiment was calibrated against (TestConfigDefaults pins doc and
	// code together).
	RateEWMA float64
	// Stepping selects the cycle-loop implementation; the zero value is the
	// event-driven active-set path, SteppingDense the full-sweep reference.
	Stepping Stepping
	// SatLinkLoad is the per-link offered load (flits per cycle, injection
	// and ejection ports included) above which AnalyticMeasure declares the
	// network congested and callers must fall back to cycle simulation.
	// Zero selects 0.6 (DESIGN.md §11 derives the value).
	SatLinkLoad float64
}

func (c Config) withDefaults() Config {
	// Each dimension defaults independently, so a config that sets only one
	// (e.g. Width: 8) gets a real mesh instead of a degenerate zero-tile one.
	if c.Width == 0 {
		c.Width = 10
	}
	if c.Height == 0 {
		c.Height = 6
	}
	if c.BufferFlits == 0 {
		c.BufferFlits = 8
	}
	if c.FlitsPerPacket == 0 {
		c.FlitsPerPacket = 5
	}
	if c.StagedPackets == 0 {
		c.StagedPackets = 4
	}
	if c.OccupancyThreshold == 0 {
		c.OccupancyThreshold = 0.5
	}
	if c.RateEWMA == 0 {
		c.RateEWMA = 0.05
	}
	if c.SatLinkLoad == 0 {
		c.SatLinkLoad = 0.6
	}
	return c
}

// Env is the cross-layer state adaptive routing reads: the latest quantized
// PSN sensor reading per tile (paper Algorithm 3 input). A nil or short
// slice reads as zero noise.
type Env struct {
	PSN []float64
}

// psnAt returns the sensor reading for tile t, or 0 when unavailable.
func (e *Env) psnAt(t geom.TileID) float64 {
	if e == nil || int(t) >= len(e.PSN) || t < 0 {
		return 0
	}
	return e.PSN[t]
}

// Network is one NoC simulation instance.
type Network struct {
	cfg     Config
	mesh    geom.Mesh
	alg     Algorithm
	env     *Env
	routers []router
	flows   []Flow
	stats   []FlowStats

	// per-flow injection state
	acc     []float64 // fractional flit credit accumulated from Rate
	staged  []int     // whole packets waiting at the source NIC
	nextSeq []int     // next packet sequence number
	// accCycle[i] is the last cycle whose demand accrual has been replayed
	// into acc[i]; the active path advances it lazily at wakeups, the dense
	// path every cycle.
	accCycle []int
	// partial[t] tracks, per tile, the flow whose packet is mid-injection
	// and how many flits remain, so packets enter the local port contiguously.
	partialFlow []int
	partialLeft []int
	injectRR    []int // round-robin pointer over flows per source tile
	flowsBySrc  [][]int
	srcTiles    []int     // tiles with at least one flow source, ascending
	starts      []flowLog // per-flow packet-start log: seq -> head injection cycle

	// active-set stepping state: which routers hold flits, which tiles have
	// staged or mid-packet injection work, and when each dormant flow next
	// needs demand accrual.
	activeRouters tileSet
	activeTiles   tileSet
	stagedFlows   []int // per tile, count of flows with staged > 0
	wake          wakeHeap
	nextWake      []int // latest scheduled wake per flow; -1 when dormant
	rated         []int // tiles that received flits this cycle (deduplicated)

	// per-cycle scratch, reused to avoid allocation in the hot loop
	arrivalScratch []pendingArrival
	inFlight       [][geom.NumPorts]int

	// faults, when non-nil, injects noise-induced packet losses at ejection
	// (SetFaultModel). pendingRecovery[f] counts flow f's retransmissions
	// still owed a delivery; headNoise[f] parks the head flit's accumulated
	// path noise until the tail closes the packet (ejection is contiguous
	// per packet, so one slot per flow suffices).
	faults          FaultModel
	pendingRecovery []int
	headNoise       []float64

	cycle int
}

// NewNetwork builds a network for the given routing algorithm, flow set,
// and environment. It returns an error for non-positive mesh dimensions,
// or when a flow references a tile outside the mesh or has a negative rate.
func NewNetwork(cfg Config, alg Algorithm, flows []Flow, env *Env) (*Network, error) {
	cfg = cfg.withDefaults()
	if alg == nil {
		return nil, fmt.Errorf("noc: nil routing algorithm")
	}
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("noc: non-positive mesh dimensions %dx%d", cfg.Width, cfg.Height)
	}
	mesh := geom.NewMesh(cfg.Width, cfg.Height)
	n := &Network{
		cfg:           cfg,
		mesh:          mesh,
		alg:           alg,
		env:           env,
		routers:       make([]router, mesh.NumTiles()),
		flows:         flows,
		stats:         make([]FlowStats, len(flows)),
		acc:           make([]float64, len(flows)),
		staged:        make([]int, len(flows)),
		nextSeq:       make([]int, len(flows)),
		accCycle:      make([]int, len(flows)),
		partialFlow:   make([]int, mesh.NumTiles()),
		partialLeft:   make([]int, mesh.NumTiles()),
		injectRR:      make([]int, mesh.NumTiles()),
		flowsBySrc:    make([][]int, mesh.NumTiles()),
		starts:        make([]flowLog, len(flows)),
		activeRouters: newTileSet(mesh.NumTiles()),
		activeTiles:   newTileSet(mesh.NumTiles()),
		stagedFlows:   make([]int, mesh.NumTiles()),
		nextWake:      make([]int, len(flows)),
		// Preallocated to their steady-state bounds so the cycle loop never
		// grows them: at most one arrival per (tile, port) per cycle, one
		// rated entry per tile per cycle, one live wakeup per flow.
		rated:          make([]int, 0, mesh.NumTiles()),
		wake:           make(wakeHeap, 0, len(flows)),
		arrivalScratch: make([]pendingArrival, 0, mesh.NumTiles()*geom.NumPorts),
		inFlight:       make([][geom.NumPorts]int, mesh.NumTiles()),
	}
	// One backing array for every input buffer keeps the rings contiguous.
	bufs := make([]flit, mesh.NumTiles()*geom.NumPorts*cfg.BufferFlits)
	for i := range n.routers {
		n.routers[i].tile = geom.TileID(i)
		n.routers[i].recvCycle = -1
		for p := range n.routers[i].owner {
			n.routers[i].owner[p] = noOwner
			off := (i*geom.NumPorts + p) * cfg.BufferFlits
			n.routers[i].inputs[p].buf = bufs[off : off+cfg.BufferFlits]
		}
		n.partialFlow[i] = -1
	}
	for i, f := range flows {
		if !mesh.ValidTile(f.Src) || !mesh.ValidTile(f.Dst) {
			return nil, fmt.Errorf("noc: flow %d endpoints (%d,%d) outside mesh", i, f.Src, f.Dst)
		}
		if f.Rate < 0 {
			return nil, fmt.Errorf("noc: flow %d has negative rate %g", i, f.Rate)
		}
		n.accCycle[i] = -1
		n.nextWake[i] = -1
		if f.Src != f.Dst {
			if len(n.flowsBySrc[f.Src]) == 0 {
				n.srcTiles = append(n.srcTiles, int(f.Src))
			}
			n.flowsBySrc[f.Src] = append(n.flowsBySrc[f.Src], i)
		}
	}
	sort.Ints(n.srcTiles)
	if cfg.Stepping == SteppingActive {
		for i, f := range flows {
			if f.Src != f.Dst {
				n.scheduleWake(i)
			}
		}
	}
	return n, nil
}

// Mesh returns the mesh geometry.
func (n *Network) Mesh() geom.Mesh { return n.mesh }

// SetFaultModel installs fm as the network's packet-loss model: every
// packet reaching its destination is checked against the worst PSN sensor
// reading on its route, and dropped packets are retransmitted from the
// source NIC while its stage queue has room. Call before the first Step.
// A nil model (the default) delivers every packet and leaves the hot loop
// untouched.
func (n *Network) SetFaultModel(fm FaultModel) {
	n.faults = fm
	if fm != nil && n.pendingRecovery == nil {
		n.pendingRecovery = make([]int, len(n.flows))
		n.headNoise = make([]float64, len(n.flows))
	}
}

// IncomingRate returns the EWMA incoming flit rate of tile t's router,
// folding any pending idle-cycle decay first (see catchUpRate).
func (n *Network) IncomingRate(t geom.TileID) float64 {
	r := &n.routers[t]
	n.catchUpRate(r, n.cycle-1)
	return r.incomingRate
}

// SensorPSN returns the environment's PSN reading at tile t.
func (n *Network) SensorPSN(t geom.TileID) float64 { return n.env.psnAt(t) }

// Step advances the simulation by one cycle. The active path visits only
// tiles with injection work and routers holding flits; every micro-step it
// performs is identical, in the same ascending-tile order, to what the
// dense reference sweep would have done — the skipped tiles are exactly
// those for which the dense body is a no-op.
//
//parm:hot
func (n *Network) Step() {
	if n.cfg.Stepping == SteppingDense {
		n.stepDense()
		return
	}
	n.processWakeups()
	// Injection sweep over tiles with staged packets or a mid-packet worm.
	for wi, w := range n.activeTiles.words {
		base := wi << 6
		for w != 0 {
			n.injectAtTile(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	// Route compute, then switch traversal, over routers holding flits.
	// Traversal must sweep in ascending tile order: a downstream pop earlier
	// in the sweep frees a credit an upstream router sees the same cycle.
	for wi, w := range n.activeRouters.words {
		base := wi << 6
		for w != 0 {
			n.routeComputeRouter(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	arrivals := n.arrivalScratch[:0]
	for wi, w := range n.activeRouters.words {
		base := wi << 6
		for w != 0 {
			arrivals = n.traverseRouter(base+bits.TrailingZeros64(w), arrivals)
			w &= w - 1
		}
	}
	n.applyArrivals(arrivals)
	n.arrivalScratch = arrivals[:0]
	n.foldRates()
	n.cycle++
}

// stepDense is the reference cycle: every flow accrues and every router is
// swept, whether or not it has work. It shares the per-tile micro-step
// helpers with the active path, so the equivalence tests compare genuinely
// different sweep structures over identical building blocks.
func (n *Network) stepDense() {
	for i := range n.flows {
		if n.flows[i].Src == n.flows[i].Dst {
			continue // local communication bypasses the NoC
		}
		n.advanceAccrual(i, n.cycle)
	}
	// One flit per cycle enters each source tile's local input port (only
	// tiles with flows can ever inject).
	for _, t := range n.srcTiles {
		n.injectAtTile(t)
	}
	for t := range n.routers {
		if n.routers[t].buffered == 0 {
			continue
		}
		n.routeComputeRouter(t)
	}
	arrivals := n.arrivalScratch[:0]
	for t := range n.routers {
		if n.routers[t].buffered == 0 {
			continue // no flits: arbitration and traversal are no-ops
		}
		arrivals = n.traverseRouter(t, arrivals)
	}
	n.applyArrivals(arrivals)
	n.arrivalScratch = arrivals[:0]
	n.foldRatesDense()
	n.cycle++
}

// Run advances the simulation by the given number of cycles. On the active
// path, stretches where no router holds a flit and no tile has injection
// work are skipped in one jump to the next flow wakeup: no per-cycle state
// changes in between (rate decay and demand accrual are lazy, credits are
// clear between cycles), so the jump is exact.
func (n *Network) Run(cycles int) {
	end := n.cycle + cycles
	for n.cycle < end {
		if n.cfg.Stepping == SteppingActive && n.activeRouters.empty() && n.activeTiles.empty() {
			next := end
			if len(n.wake) > 0 && n.wake[0].cycle < next {
				next = n.wake[0].cycle
			}
			if next > n.cycle {
				n.cycle = next
				continue
			}
		}
		n.Step()
	}
}

// processWakeups replays demand accrual for every flow whose wakeup is due,
// then books the next one. Wakeups are scheduled at or before each credit
// crossing, so accrual state is always current by the time it can matter.
//
//parm:hot
func (n *Network) processWakeups() {
	for len(n.wake) > 0 && n.wake[0].cycle <= n.cycle {
		w := n.wake.pop()
		if n.nextWake[w.flow] != w.cycle {
			continue // superseded booking
		}
		n.advanceAccrual(w.flow, n.cycle)
		n.scheduleWake(w.flow)
	}
}

// advanceAccrual replays flow i's per-cycle demand accrual up to and
// including cycle through, exactly as the dense loop would have: one
// floating-point add per cycle, stagings and stall accounting at the
// precise crossing cycles. Replaying the adds (rather than closing the sum
// into k*rate) keeps the float trajectory bit-identical to the reference.
//
//parm:hot
func (n *Network) advanceAccrual(i, through int) {
	if through <= n.accCycle[i] {
		return
	}
	// Locals keep the replay loop in registers; the adds and compares are
	// the same float operations in the same order as the per-cycle form.
	rate := n.flows[i].Rate
	fpp := float64(n.cfg.FlitsPerPacket)
	acc := n.acc[i]
	for c := n.accCycle[i] + 1; c <= through; c++ {
		acc += rate
		for acc >= fpp {
			if n.staged[i] >= n.cfg.StagedPackets {
				n.stats[i].StalledCycles++
				// Drop the accrued packet's credit: the source is
				// backpressured and the demand is deferred.
				acc -= fpp
				break
			}
			acc -= fpp
			n.incStaged(i)
		}
	}
	n.acc[i] = acc
	n.accCycle[i] = through
}

// scheduleWake books flow i's next accrual wakeup: a conservative lower
// bound on its next credit crossing. Waking early is always safe (the flow
// advances and re-estimates); waking late would miss a staging cycle, so
// the estimate subtracts a margin covering the worst-case rounding drift of
// k replayed additions (O(k^2) ulps around the crossing) and falls back to
// geometric halving when the margin would swallow the whole estimate.
func (n *Network) scheduleWake(i int) {
	r := n.flows[i].Rate
	if r <= 0 {
		n.nextWake[i] = -1
		return
	}
	deficit := float64(n.cfg.FlitsPerPacket) - n.acc[i]
	est := deficit / r
	if est > 1<<50 {
		est = 1 << 50
	}
	k := int(est)
	margin := 2 + int(float64(k)*float64(k)*4e-15)
	step := k - margin
	if half := k / 2; step < half {
		step = half
	}
	if step < 1 {
		step = 1
	}
	wake := n.accCycle[i] + step
	n.nextWake[i] = wake
	n.wake.push(flowWake{cycle: wake, flow: i})
}

// incStaged stages one packet of flow fi and keeps the per-tile staged-flow
// count and injection active set in sync.
//
//parm:hot
func (n *Network) incStaged(fi int) {
	n.staged[fi]++
	if n.staged[fi] == 1 {
		src := int(n.flows[fi].Src)
		n.stagedFlows[src]++
		n.activeTiles.set(src)
	}
}

// decStaged consumes one staged packet of flow fi.
//
//parm:hot
func (n *Network) decStaged(fi int) {
	n.staged[fi]--
	if n.staged[fi] == 0 {
		src := int(n.flows[fi].Src)
		n.stagedFlows[src]--
		if n.stagedFlows[src] == 0 {
			n.updateTileActivity(src)
		}
	}
}

// updateTileActivity recomputes tile t's membership in the injection active
// set: it has work while a packet is mid-injection or any of its flows has
// staged packets.
//
//parm:hot
func (n *Network) updateTileActivity(t int) {
	if n.partialFlow[t] >= 0 || n.stagedFlows[t] > 0 {
		n.activeTiles.set(t)
	} else {
		n.activeTiles.clear(t)
	}
}

// injectAtTile moves at most one NIC flit into tile t's local input port.
//
//parm:hot
func (n *Network) injectAtTile(t int) {
	lp := dirIndex(geom.Local)
	r := &n.routers[t]
	if r.inputs[lp].len() >= n.cfg.BufferFlits {
		return
	}
	fi := n.pickInjection(t)
	if fi < 0 {
		return
	}
	k := n.flitToInject(t, fi)
	if n.faults != nil && (k.kind == KindHead || k.kind == KindHeadTail) {
		// Path-noise accounting starts at the injection router.
		k.noise = n.env.psnAt(geom.TileID(t))
	}
	r.inputs[lp].push(k)
	r.buffered++
	n.activeRouters.set(t)
	n.noteReceive(r, t)
	n.stats[fi].InjectedFlits++
}

// pickInjection selects which flow injects at tile t this cycle: the
// in-progress packet if any, else round-robin over staged flows.
//
//parm:hot
func (n *Network) pickInjection(t int) int {
	if n.partialFlow[t] >= 0 {
		return n.partialFlow[t]
	}
	flows := n.flowsBySrc[t]
	if len(flows) == 0 {
		return -1
	}
	for k := 0; k < len(flows); k++ {
		fi := flows[(n.injectRR[t]+k)%len(flows)]
		if n.staged[fi] > 0 {
			n.injectRR[t] = (n.injectRR[t] + k + 1) % len(flows)
			return fi
		}
	}
	return -1
}

// flitToInject produces the next flit of flow fi's current packet at tile t
// and updates the partial-packet bookkeeping.
//
//parm:hot
func (n *Network) flitToInject(t, fi int) flit {
	fpp := n.cfg.FlitsPerPacket
	if n.partialFlow[t] < 0 {
		// Start a new packet.
		seq := n.nextSeq[fi]
		n.nextSeq[fi]++
		n.decStaged(fi)
		n.starts[fi].record(seq, n.cycle)
		if fpp == 1 {
			return flit{kind: KindHeadTail, flow: fi, packet: seq, dst: n.flows[fi].Dst, born: n.cycle}
		}
		n.partialFlow[t] = fi
		n.partialLeft[t] = fpp - 1
		n.activeTiles.set(t)
		return flit{kind: KindHead, flow: fi, packet: seq, dst: n.flows[fi].Dst, born: n.cycle}
	}
	seq := n.nextSeq[fi] - 1
	n.partialLeft[t]--
	kind := KindBody
	if n.partialLeft[t] == 0 {
		kind = KindTail
		n.partialFlow[t] = -1
		n.updateTileActivity(t)
	}
	return flit{kind: kind, flow: fi, packet: seq, dst: n.flows[fi].Dst, born: n.cycle}
}

// routeComputeRouter assigns output directions to unrouted head flits at
// the front of router t's input buffers.
//
//parm:hot
func (n *Network) routeComputeRouter(t int) {
	r := &n.routers[t]
	for p := range r.inputs {
		if r.inputs[p].len() == 0 {
			continue
		}
		f := r.inputs[p].front()
		if f.routed || (f.kind != KindHead && f.kind != KindHeadTail) {
			continue
		}
		ctx := RouteCtx{
			Net:            n,
			At:             geom.TileID(t),
			Dst:            f.dst,
			InDir:          indexDir[p],
			InputOccupancy: r.occupancy(p, n.cfg.BufferFlits),
		}
		f.outDir = n.alg.Route(ctx)
		f.routed = true
	}
}

// traverseRouter performs output arbitration and moves at most one flit per
// output port of router t, appending link crossings to arrivals. When the
// router drains completely it leaves the active set.
//
//parm:hot
func (n *Network) traverseRouter(t int, arrivals []pendingArrival) []pendingArrival {
	r := &n.routers[t]
	// Output arbitration: free outputs pick a requesting input.
	for out := 0; out < geom.NumPorts; out++ {
		if r.owner[out] != noOwner {
			continue
		}
		for k := 0; k < geom.NumPorts; k++ {
			in := (r.rrPtr[out] + k) % geom.NumPorts
			if r.inputs[in].len() == 0 {
				continue
			}
			f := r.inputs[in].front()
			if !f.routed || dirIndex(f.outDir) != out {
				continue
			}
			r.owner[out] = in
			r.rrPtr[out] = (in + 1) % geom.NumPorts
			break
		}
	}
	// Traversal: each owned output forwards its input's front flit.
	for out := 0; out < geom.NumPorts; out++ {
		in := r.owner[out]
		if in == noOwner || r.inputs[in].len() == 0 {
			continue
		}
		if out == dirIndex(geom.Local) {
			// Ejection: infinite sink.
			f := r.inputs[in].pop()
			r.buffered--
			r.forwarded++
			n.eject(f)
			if f.kind == KindTail || f.kind == KindHeadTail {
				r.owner[out] = noOwner
			}
			continue
		}
		dir := indexDir[out]
		next, ok := n.mesh.Neighbor(geom.TileID(t), dir)
		if !ok {
			// Misrouting off-mesh cannot happen with a sane algorithm;
			// drop the channel to avoid wedging the port forever.
			r.owner[out] = noOwner
			continue
		}
		dstPort := dirIndex(dir.Opposite())
		nr := &n.routers[next]
		if nr.inputs[dstPort].len()+n.inFlight[next][dstPort] >= n.cfg.BufferFlits {
			continue // no downstream credit
		}
		n.inFlight[next][dstPort]++
		f := r.inputs[in].pop()
		r.buffered--
		r.forwarded++
		// Body/tail flits follow the worm without route computation.
		moved := f
		moved.routed = false
		moved.outDir = geom.DirInvalid
		// Bounded by the scratch capacity NewNetwork preallocated: one
		// arrival per (tile, port) per cycle.
		//parm:alloc
		arrivals = append(arrivals, pendingArrival{to: next, port: dstPort, f: moved})
		if f.kind == KindTail || f.kind == KindHeadTail {
			r.owner[out] = noOwner
		}
	}
	if r.buffered == 0 {
		n.activeRouters.clear(t)
	}
	return arrivals
}

// eject records delivery statistics for a flit leaving the network. With a
// fault model installed, the tail flit closes the packet with a corruption
// check against the head's accumulated path noise: a dropped packet is
// retransmitted from the source NIC while its stage queue has room, and a
// later delivery of the flow repays the debt as a recovery.
//
//parm:hot
func (n *Network) eject(f flit) {
	st := &n.stats[f.flow]
	st.DeliveredFlits++
	if n.faults != nil && f.kind == KindHead {
		// Park the head's path noise until the tail closes the packet. One
		// slot per flow suffices: the local output port's owner is held from
		// head to tail, so a flow's packets eject contiguously.
		n.headNoise[f.flow] = f.noise
	}
	if f.kind != KindTail && f.kind != KindHeadTail {
		return
	}
	if n.faults != nil {
		noise := f.noise
		if f.kind == KindTail {
			noise = n.headNoise[f.flow]
		}
		if n.faults.DropPacket(noise) {
			st.DroppedPackets++
			n.starts[f.flow].take(f.packet)
			if n.staged[f.flow] < n.cfg.StagedPackets {
				n.incStaged(f.flow)
				n.pendingRecovery[f.flow]++
				st.RetransmittedPackets++
			} else {
				st.LostPackets++
			}
			return
		}
		if n.pendingRecovery[f.flow] > 0 {
			n.pendingRecovery[f.flow]--
			st.RecoveredPackets++
		}
	}
	st.DeliveredPackets++
	if born, ok := n.starts[f.flow].take(f.packet); ok {
		st.TotalPacketLatency += n.cycle - born + 1
	}
}

// applyArrivals lands link crossings into downstream input buffers. It also
// clears the inFlight credit holds — every nonzero entry corresponds to
// exactly one arrival, so this leaves the whole table zero for the next
// sweep without a full rezeroing pass.
//
//parm:hot
func (n *Network) applyArrivals(arrivals []pendingArrival) {
	for i := range arrivals {
		a := &arrivals[i]
		if n.faults != nil && (a.f.kind == KindHead || a.f.kind == KindHeadTail) {
			if p := n.env.psnAt(a.to); p > a.f.noise {
				a.f.noise = p
			}
		}
		r := &n.routers[a.to]
		r.inputs[a.port].push(a.f)
		r.buffered++
		n.activeRouters.set(int(a.to))
		n.noteReceive(r, int(a.to))
		n.inFlight[a.to][a.port] = 0
	}
}

// noteReceive counts a flit entering any of router r's input buffers this
// cycle and enrolls the tile in the per-cycle rated list (once).
//
//parm:hot
func (n *Network) noteReceive(r *router, t int) {
	if r.recvCycle != n.cycle {
		r.recvCycle = n.cycle
		r.recvCount = 0
		// Bounded by the rated capacity NewNetwork preallocated: one entry
		// per tile per cycle.
		//parm:alloc
		n.rated = append(n.rated, t)
	}
	r.recvCount++
}

// ewmaStep is the one incoming-rate update everybody shares. Keeping eager,
// lazy, and catch-up updates on this exact expression guarantees they round
// identically whether or not the compiler fuses the multiply-add.
//
//parm:hot
func ewmaStep(rate, alpha, sample float64) float64 {
	return (1-alpha)*rate + alpha*sample
}

// catchUpRate folds router r's pending idle-cycle rate decay through the
// given cycle. Every cycle with a receive is folded eagerly at its own end
// (foldRates), so all pending cycles here sampled zero flits; a zero rate
// then stays zero, which lets long-idle routers skip the replay outright.
//
//parm:hot
func (n *Network) catchUpRate(r *router, through int) {
	if r.rateCycle > through {
		return
	}
	// Exact shortcut, not a tolerance: ewmaStep(0, alpha, 0) == 0.
	//parm:floateq
	if r.incomingRate == 0 {
		r.rateCycle = through + 1
		return
	}
	alpha := n.cfg.RateEWMA
	rate := r.incomingRate
	for c := r.rateCycle; c <= through; c++ {
		next := ewmaStep(rate, alpha, 0)
		// Deep-subnormal rates reach a rounding fixed point where the decay
		// is exactly idempotent; the remaining replay is then a no-op. Exact
		// comparison, not a tolerance.
		//parm:floateq
		if next == rate {
			break
		}
		rate = next
	}
	r.incomingRate = rate
	r.rateCycle = through + 1
}

// foldRates advances the incoming-rate EWMA of every router that received
// flits this cycle (the rated list); routers that received nothing keep a
// pending decay that catchUpRate folds lazily on first read.
//
//parm:hot
func (n *Network) foldRates() {
	alpha := n.cfg.RateEWMA
	for _, t := range n.rated {
		r := &n.routers[t]
		n.catchUpRate(r, n.cycle-1)
		r.incomingRate = ewmaStep(r.incomingRate, alpha, float64(r.recvCount))
		r.rateCycle = n.cycle + 1
	}
	n.rated = n.rated[:0]
}

// foldRatesDense advances every router's incoming-rate EWMA eagerly, as the
// reference loop did each cycle.
func (n *Network) foldRatesDense() {
	alpha := n.cfg.RateEWMA
	for t := range n.routers {
		r := &n.routers[t]
		sample := 0.0
		if r.recvCycle == n.cycle {
			sample = float64(r.recvCount)
		}
		r.incomingRate = ewmaStep(r.incomingRate, alpha, sample)
		r.rateCycle = n.cycle + 1
	}
	n.rated = n.rated[:0]
}

// Result summarizes a measurement window.
type Result struct {
	// Cycles is the window length.
	Cycles int
	// Flows holds per-flow statistics, parallel to the input flow slice.
	Flows []FlowStats
	// RouterForwarded counts crossbar traversals per tile.
	RouterForwarded []int
	// RouterUtil is forwarded flits per cycle per port, in [0,1].
	RouterUtil []float64
}

// Measure runs the network for the given number of cycles from its current
// state and returns aggregate statistics.
func (n *Network) Measure(cycles int) *Result {
	startForwarded := make([]int, len(n.routers))
	for i := range n.routers {
		startForwarded[i] = n.routers[i].forwarded
	}
	startStats := make([]FlowStats, len(n.stats))
	copy(startStats, n.stats)

	n.Run(cycles)

	res := &Result{
		Cycles:          cycles,
		Flows:           make([]FlowStats, len(n.stats)),
		RouterForwarded: make([]int, len(n.routers)),
		RouterUtil:      make([]float64, len(n.routers)),
	}
	for i := range n.stats {
		res.Flows[i] = FlowStats{
			InjectedFlits:        n.stats[i].InjectedFlits - startStats[i].InjectedFlits,
			DeliveredFlits:       n.stats[i].DeliveredFlits - startStats[i].DeliveredFlits,
			DeliveredPackets:     n.stats[i].DeliveredPackets - startStats[i].DeliveredPackets,
			TotalPacketLatency:   n.stats[i].TotalPacketLatency - startStats[i].TotalPacketLatency,
			StalledCycles:        n.stats[i].StalledCycles - startStats[i].StalledCycles,
			DroppedPackets:       n.stats[i].DroppedPackets - startStats[i].DroppedPackets,
			RetransmittedPackets: n.stats[i].RetransmittedPackets - startStats[i].RetransmittedPackets,
			RecoveredPackets:     n.stats[i].RecoveredPackets - startStats[i].RecoveredPackets,
			LostPackets:          n.stats[i].LostPackets - startStats[i].LostPackets,
		}
	}
	for i := range n.routers {
		fw := n.routers[i].forwarded - startForwarded[i]
		res.RouterForwarded[i] = fw
		res.RouterUtil[i] = float64(fw) / float64(cycles) / float64(geom.NumPorts)
	}
	return res
}
