package noc

// Overhead quantifies the hardware cost of PANR's adaptive machinery over a
// baseline wormhole router, reproducing the analytic accounting of paper
// §4.4 at the 7nm node: registers holding the neighbors' noise and traffic
// levels, the wires that carry them, and two 64-bit comparator trees that
// find the minimum PSN and minimum incoming rate among permitted directions.
type Overhead struct {
	// RegisterBits is the added storage: two values (PSN, rate) per
	// neighbor direction.
	RegisterBits int
	// ComparatorCount is the number of 64-bit comparators per router.
	ComparatorCount int
	// PowerMilliwatts is the added router power at 1 GHz.
	PowerMilliwatts float64
	// PowerPercent is that power relative to the baseline router.
	PowerPercent float64
	// AreaUm2 is the added area in square micrometers.
	AreaUm2 float64
	// AreaPercent is that area relative to the baseline router (~71300 µm²
	// at 7nm, paper §4.4).
	AreaPercent float64
	// SensorNetworkAreaUm2 is the area of the digital PSN sensor network
	// per tile (paper: ~413 µm², negligible beside a ~4 mm² core).
	SensorNetworkAreaUm2 float64
	// HopSelectionCycles is the latency of the hop-selection step; it is
	// masked by running in parallel with route computation, so the
	// effective added latency is zero.
	HopSelectionCycles int
}

// Baseline router figures at 7nm from §4.4.
const (
	BaselineRouterAreaUm2    = 71300.0
	BaselineRouterPowerMw7nm = 33.0 // ~1 mW is ~3% of the baseline router
	CoreAreaUm2              = 4.0e6
)

// PANROverhead returns the 7nm overhead accounting of §4.4.
func PANROverhead() Overhead {
	const (
		regBitsPerValue = 64
		valuesPerDir    = 2 // PSN level + incoming data rate
		neighborDirs    = 4
	)
	powerMw := 1.0
	areaUm2 := 115.0
	return Overhead{
		RegisterBits:         regBitsPerValue * valuesPerDir * neighborDirs,
		ComparatorCount:      2,
		PowerMilliwatts:      powerMw,
		PowerPercent:         powerMw / BaselineRouterPowerMw7nm * 100,
		AreaUm2:              areaUm2,
		AreaPercent:          areaUm2 / BaselineRouterAreaUm2 * 100,
		SensorNetworkAreaUm2: 413,
		HopSelectionCycles:   1,
	}
}
