package noc

import (
	"fmt"
	"testing"

	"parm/internal/geom"
)

// Heavy scattered traffic: does routing algorithm choice matter?
func TestCongestionDifferentiation(t *testing.T) {
	var flows []Flow
	// 3 apps x 24 flows crossing the chip, aggregate ~12 flits/cycle.
	seeds := []struct{ s, d, n int }{{0, 59, 24}, {5, 50, 24}, {9, 30, 24}}
	for ai, sd := range seeds {
		for k := 0; k < sd.n; k++ {
			src := (sd.s + k*7) % 60
			dst := (sd.d + k*11) % 60
			if src == dst {
				dst = (dst + 1) % 60
			}
			flows = append(flows, Flow{App: ai, Src: geom.TileID(src), Dst: geom.TileID(dst), Rate: 0.17})
		}
	}
	// Realistic environment: a few hot 2x2 domains (active apps) amid
	// quiet tiles, as the engine produces.
	env := &Env{PSN: make([]float64, 60)}
	for _, hot := range [][]int{{22, 23, 32, 33}, {26, 27, 36, 37}, {2, 3, 12, 13}} {
		for _, t := range hot {
			env.PSN[t] = 0.07
		}
	}
	for _, alg := range []Algorithm{XY{}, WestFirst{}, ICON{}, PANR{}} {
		n, err := NewNetwork(Config{}, alg, flows, env)
		if err != nil {
			t.Fatal(err)
		}
		n.Run(1500)
		res := n.Measure(8000)
		totDel, totInj, lat, nlat, stall := 0, 0, 0.0, 0, 0
		worstCPF := 0.0
		for i, fs := range res.Flows {
			totDel += fs.DeliveredFlits
			totInj += fs.InjectedFlits
			stall += fs.StalledCycles
			if fs.DeliveredPackets > 0 {
				lat += fs.AvgPacketLatency()
				nlat++
			}
			ach := float64(fs.DeliveredFlits) / float64(res.Cycles)
			if ach > 0 && flows[i].Rate/ach > worstCPF {
				worstCPF = flows[i].Rate / ach
			}
		}
		maxU := 0.0
		for _, u := range res.RouterUtil {
			if u > maxU {
				maxU = u
			}
		}
		hotFw := 0
		for i, fw := range res.RouterForwarded {
			if env.PSN[i] > 0.05 {
				hotFw += fw
			}
		}
		fmt.Printf("%-10s delivered=%d/%d stallCyc=%d avgLat=%.1f worstCPF=%.2f maxUtil=%.3f hotFw=%d\n",
			alg.Name(), totDel, totInj, stall, lat/float64(nlat), worstCPF, maxU, hotFw)
	}
}
