package noc

import "math/rand"

// FaultModel decides whether a packet that physically reached its
// destination was corrupted by power supply noise along its path and must
// be discarded. It is the NoC half of the fault-injection subsystem: a
// router operating under deep supply noise mis-latches flits, which a CRC
// at the destination NIC detects, triggering a retransmission from the
// source. The network asks the model once per arriving packet with the
// worst PSN sensor reading seen on the packet's route (injection router
// included), in ejection order — a deterministic sequence, so a seeded
// model replays bit-identically.
type FaultModel interface {
	// DropPacket reports whether a packet whose worst per-hop PSN sensor
	// reading was maxPSN is lost to corruption.
	DropPacket(maxPSN float64) bool
}

// NoiseDropModel is the standard FaultModel: a packet is dropped with
// probability scale·(maxPSN/threshold − 1), capped at maxProb, once the
// path's worst PSN exceeds the threshold. Below the threshold packets are
// never dropped and no randomness is consumed.
type NoiseDropModel struct {
	threshold float64
	scale     float64
	maxProb   float64
	rng       *rand.Rand
}

// NewNoiseDropModel returns a seeded drop model. threshold is the PSN
// fraction below which packets are never lost (callers pass the VE
// threshold); scale converts exceedance to drop probability (zero selects
// 0.5); maxProb caps the probability (zero selects 0.75).
func NewNoiseDropModel(seed int64, threshold, scale, maxProb float64) *NoiseDropModel {
	if scale <= 0 {
		scale = 0.5
	}
	if maxProb <= 0 {
		maxProb = 0.75
	}
	if maxProb > 1 {
		maxProb = 1
	}
	return &NoiseDropModel{
		threshold: threshold,
		scale:     scale,
		maxProb:   maxProb,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// DropPacket implements FaultModel.
func (m *NoiseDropModel) DropPacket(maxPSN float64) bool {
	if m.threshold <= 0 || maxPSN <= m.threshold {
		return false
	}
	p := m.scale * (maxPSN/m.threshold - 1)
	if p > m.maxProb {
		p = m.maxProb
	}
	return m.rng.Float64() < p
}
