package noc

import (
	"math"
	"reflect"
	"testing"

	"parm/internal/geom"
)

// This file pins the equivalence contract of DESIGN.md §11: the active-set
// stepping path (bitsets, wakeup heap, lazy EWMA decay) must be cycle-exact
// against the dense reference sweep — same Measure results, same observable
// rate estimates, bit for bit — and the analytic closed form must stay within
// its documented drift bounds on uncongested fixtures.

// equivFixtures covers the regimes the engine produces: Fig 6-shaped sparse
// traffic, the saturated bench fixture, a hotspot, single-flit packets, and
// an empty-then-bursty corner with one dominant flow.
func equivFixtures() map[string]struct {
	cfg   Config
	flows []Flow
} {
	hotspot := make([]Flow, 0, 8)
	for i := 1; i <= 8; i++ {
		hotspot = append(hotspot, Flow{App: i, Src: geom.TileID(i * 6), Dst: 30, Rate: 0.15})
	}
	return map[string]struct {
		cfg   Config
		flows []Flow
	}{
		"sparse":    {Config{}, sparseFlows()},
		"saturated": {Config{}, benchFlows()},
		"hotspot":   {Config{}, hotspot},
		"fpp1":      {Config{FlitsPerPacket: 1}, sparseFlows()[:20]},
		"single":    {Config{}, []Flow{{Src: 0, Dst: 59, Rate: 0.3}}},
	}
}

// measureBoth runs the same fixture under both stepping strategies and
// returns the two networks after an identical warmup+measure schedule.
// newFM builds a fresh fault model per network — a stateful (seeded-RNG)
// model must not be shared, or the second run would continue the first
// run's random stream.
func measureBoth(t *testing.T, cfg Config, alg Algorithm, flows []Flow, env *Env, newFM func() FaultModel) (a, d *Network, ra, rd *Result) {
	t.Helper()
	mk := func(s Stepping) (*Network, *Result) {
		c := cfg
		c.Stepping = s
		n, err := NewNetwork(c, alg, flows, env)
		if err != nil {
			t.Fatal(err)
		}
		if newFM != nil {
			n.SetFaultModel(newFM())
		}
		n.Run(1500)
		return n, n.Measure(6000)
	}
	a, ra = mk(SteppingActive)
	d, rd = mk(SteppingDense)
	return a, d, ra, rd
}

// requireIdentical asserts two runs are observably bit-identical: Measure
// results via DeepEqual and every router's IncomingRate estimate bitwise
// (//parm:floateq — this is an exactness check, not a tolerance check).
func requireIdentical(t *testing.T, name string, a, d *Network, ra, rd *Result) {
	t.Helper()
	if !reflect.DeepEqual(ra, rd) {
		t.Errorf("%s: active Measure diverged from dense:\nactive: %+v\ndense:  %+v", name, ra, rd)
	}
	for tile := 0; tile < 60 && tile < len(a.routers); tile++ {
		ia, id := a.IncomingRate(geom.TileID(tile)), d.IncomingRate(geom.TileID(tile))
		//parm:floateq
		if ia != id {
			t.Errorf("%s: tile %d IncomingRate active=%g dense=%g (diff %g)", name, tile, ia, id, ia-id)
		}
	}
}

// TestActiveDenseEquivalence is the headline exactness test: for every
// routing scheme and fixture, the event-driven path and the dense reference
// produce bit-identical measurements and rate estimates.
func TestActiveDenseEquivalence(t *testing.T) {
	for fxName, fx := range equivFixtures() {
		for _, alg := range []Algorithm{XY{}, WestFirst{}, ICON{}, PANR{}} {
			name := fxName + "/" + alg.Name()
			env := &Env{PSN: make([]float64, 60)}
			a, d, ra, rd := measureBoth(t, fx.cfg, alg, fx.flows, env, nil)
			requireIdentical(t, name, a, d, ra, rd)
		}
	}
}

// TestActiveDenseEquivalenceFaulted repeats the check with a fault model
// installed (noisy PSN environment, drops, retransmissions, recovery) —
// the fault path shares the same injection and ejection bookkeeping.
func TestActiveDenseEquivalenceFaulted(t *testing.T) {
	env := noisyEnv(0.08)
	for _, tc := range []struct {
		name  string
		newFM func() FaultModel
	}{
		{"deterministic", func() FaultModel { return dropAbove{threshold: 0.05} }},
		{"seeded-rng", func() FaultModel { return NewNoiseDropModel(17, 0.05, 0, 0) }},
	} {
		a, d, ra, rd := measureBoth(t, Config{}, PANR{}, benchFlows(), env, tc.newFM)
		requireIdentical(t, "faulted/"+tc.name, a, d, ra, rd)
	}
}

// TestActiveDenseLockstep steps both strategies cycle by cycle and compares
// after every single cycle, so a divergence is caught at the cycle it first
// appears rather than smeared over a window.
func TestActiveDenseLockstep(t *testing.T) {
	env := &Env{PSN: make([]float64, 60)}
	flows := sparseFlows()[:25]
	mk := func(s Stepping) *Network {
		n, err := NewNetwork(Config{Stepping: s}, PANR{}, flows, env)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	a, d := mk(SteppingActive), mk(SteppingDense)
	for c := 0; c < 3000; c++ {
		a.Step()
		d.Step()
		for tile := 0; tile < 60; tile++ {
			ia, id := a.IncomingRate(geom.TileID(tile)), d.IncomingRate(geom.TileID(tile))
			//parm:floateq
			if ia != id {
				t.Fatalf("cycle %d tile %d: IncomingRate active=%g dense=%g", c, tile, ia, id)
			}
		}
		if c%500 == 499 {
			if !reflect.DeepEqual(a.stats, d.stats) {
				t.Fatalf("cycle %d: flow stats diverged\nactive: %+v\ndense:  %+v", c, a.stats, d.stats)
			}
			for tile := range a.routers {
				if a.routers[tile].forwarded != d.routers[tile].forwarded {
					t.Fatalf("cycle %d tile %d: forwarded active=%d dense=%d", c, tile, a.routers[tile].forwarded, d.routers[tile].forwarded)
				}
			}
		}
	}
}

// TestAnalyticDrift bounds the closed form against the cycle simulation on
// uncongested fixtures. These are the documented drift bounds of the model
// (DESIGN.md §11): per-flow throughput within ±2 packets of window
// quantization, aggregate router utilization within 10%, mean packet latency
// within 35% (per-flow latency is NOT bounded here — deterministic
// phase-locked worm collisions between commensurate-rate flows are a
// cycle-sim artifact no load-based model reproduces).
func TestAnalyticDrift(t *testing.T) {
	for _, alg := range []Algorithm{XY{}, PANR{}} {
		env := &Env{PSN: make([]float64, 60)}
		flows := sparseFlows()
		cfg := Config{}.withDefaults()
		n, err := NewNetwork(cfg, alg, flows, env)
		if err != nil {
			t.Fatal(err)
		}
		n.Run(1500)
		ref := n.Measure(8000)
		res, rep, err := AnalyticMeasure(cfg, alg, flows, env, 8000)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Saturated {
			t.Fatalf("%s: sparse fixture reported saturated (MaxLoad %g)", alg.Name(), rep.MaxLoad)
		}

		var latRef, latAna float64
		var pktRef, pktAna int
		var utilRef, utilAna float64
		for i := range flows {
			fr, fa := ref.Flows[i], res.Flows[i]
			if d := fa.DeliveredPackets - fr.DeliveredPackets; d < -2 || d > 2 {
				t.Errorf("%s flow %d: analytic packets %d, cycle %d (drift > 2)", alg.Name(), i, fa.DeliveredPackets, fr.DeliveredPackets)
			}
			latRef += float64(fr.TotalPacketLatency)
			latAna += float64(fa.TotalPacketLatency)
			pktRef += fr.DeliveredPackets
			pktAna += fa.DeliveredPackets
		}
		for tile := range ref.RouterUtil {
			utilRef += ref.RouterUtil[tile]
			utilAna += res.RouterUtil[tile]
		}
		meanRef, meanAna := latRef/float64(pktRef), latAna/float64(pktAna)
		if rel := math.Abs(meanAna-meanRef) / meanRef; rel > 0.35 {
			t.Errorf("%s: analytic mean latency %g, cycle %g (rel drift %.3f > 0.35)", alg.Name(), meanAna, meanRef, rel)
		}
		if rel := math.Abs(utilAna-utilRef) / utilRef; rel > 0.10 {
			t.Errorf("%s: analytic aggregate util %g, cycle %g (rel drift %.3f > 0.10)", alg.Name(), utilAna, utilRef, rel)
		}
	}
}

// TestAnalyticZeroLoadExact pins the exact corner: a single flow on an
// otherwise idle mesh has the textbook zero-load latency hops+fpp, and the
// closed form must reproduce the cycle simulation's per-packet latency
// exactly there.
func TestAnalyticZeroLoadExact(t *testing.T) {
	env := &Env{PSN: make([]float64, 60)}
	flows := []Flow{{Src: 0, Dst: 9, Rate: 0.002}}
	cfg := Config{}.withDefaults()
	res, rep, err := AnalyticMeasure(cfg, XY{}, flows, env, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Saturated {
		t.Fatal("single sparse flow reported saturated")
	}
	fs := res.Flows[0]
	if fs.DeliveredPackets == 0 {
		t.Fatal("analytic window delivered nothing")
	}
	// 9 hops + 5 flits serialization, no contention terms.
	if got := fs.AvgPacketLatency(); got != 14 {
		t.Errorf("zero-load analytic latency = %g, want 14", got)
	}
}

// TestAnalyticSaturationDetection checks the guard the auto mode relies on:
// a hotspot whose ejection port is offered more than SatLinkLoad must be
// flagged, a sparse fixture must not.
func TestAnalyticSaturationDetection(t *testing.T) {
	env := &Env{PSN: make([]float64, 60)}
	cfg := Config{}.withDefaults()
	hot := make([]Flow, 0, 8)
	for i := 1; i <= 8; i++ {
		hot = append(hot, Flow{Src: geom.TileID(i), Dst: 30, Rate: 0.2})
	}
	_, rep, err := AnalyticMeasure(cfg, XY{}, hot, env, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Saturated {
		t.Errorf("hotspot not flagged saturated (MaxLoad %g, threshold %g)", rep.MaxLoad, cfg.SatLinkLoad)
	}
	if rep.MaxLoad < 1.0 {
		t.Errorf("hotspot MaxLoad = %g, want >= 1.0 (8 flows x 0.2 on one ejection port)", rep.MaxLoad)
	}
	_, rep, err = AnalyticMeasure(cfg, XY{}, sparseFlows(), env, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Saturated {
		t.Errorf("sparse fixture flagged saturated (MaxLoad %g)", rep.MaxLoad)
	}
}
