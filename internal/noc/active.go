package noc

// This file holds the data structures behind the event-driven stepping fast
// path (DESIGN.md §11): the active-tile bitsets that let Step visit only
// routers and source NICs with work, the wakeup heap that replaces per-cycle
// demand accrual for dormant flows, and the slice-backed packet-start log
// that replaced the (flow, seq) map in the cycle loop.

// tileSet is a fixed-capacity bitset over tile indices. Iteration is in
// ascending tile order — the same order the dense reference sweeps routers,
// which the switch-traversal credit chain depends on (an upstream router
// observes the pops its downstream neighbors performed earlier in the same
// ascending sweep).
type tileSet struct {
	words []uint64
}

func newTileSet(n int) tileSet { return tileSet{words: make([]uint64, (n+63)/64)} }

func (s *tileSet) set(t int)   { s.words[t>>6] |= 1 << uint(t&63) }
func (s *tileSet) clear(t int) { s.words[t>>6] &^= 1 << uint(t&63) }

// empty reports whether no tile is set. The scan is a handful of words even
// on a 32x32 mesh, so idle cycles cost O(tiles/64), not O(tiles).
//
//parm:hot
func (s *tileSet) empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// flowWake is one pending accrual wakeup: flow's source NIC needs per-cycle
// attention no later than cycle (its next possible packet staging).
type flowWake struct {
	cycle int
	flow  int
}

// wakeHeap is a typed binary min-heap of flow wakeups ordered by (cycle,
// flow). The flow tie-break keeps the heap layout reproducible; processing
// order at equal cycles cannot affect results because demand accrual touches
// only per-flow state.
type wakeHeap []flowWake

func (h wakeHeap) less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].flow < h[j].flow
}

//parm:hot
func (h *wakeHeap) push(w flowWake) {
	// Amortized zero-alloc: the heap grows to one live entry per flow during
	// warmup and is stable afterwards.
	//parm:alloc
	*h = append(*h, w)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

//parm:hot
func (h *wakeHeap) pop() flowWake {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && s.less(right, left) {
			child = right
		}
		if !s.less(child, i) {
			break
		}
		s[i], s[child] = s[child], s[i]
		i = child
	}
	return top
}

// flowLog maps one flow's in-flight packet sequence numbers to their head
// injection cycles. Sequence numbers are recorded in increasing order (the
// NIC allocates them monotonically) but may be taken out of order: under
// adaptive routing, consecutive packets of one flow can follow different
// paths and eject reordered. The ring therefore tolerates holes — a taken
// slot is marked consumed and the base advances over the consumed prefix.
//
// This replaced the packetStarts map[[2]int]int of the seed loop: the ring
// grows (amortized, during warmup) to the flow's in-flight high-water mark
// and then runs allocation-free, where the map hashed on every head
// injection and tail ejection.
type flowLog struct {
	base int   // sequence number stored at buf[head]
	head int   // ring index of base
	n    int   // live span: sequences [base, base+n) occupy the ring
	buf  []int // injection cycles; -1 marks a consumed slot
}

// record stores the injection cycle of sequence seq. seq is always the
// flow's next unrecorded sequence number.
//
//parm:hot
func (l *flowLog) record(seq, cycle int) {
	if len(l.buf) == 0 {
		l.buf = make([]int, 4)
	}
	if l.n == 0 {
		l.base = seq
		l.head = 0
		l.buf[0] = cycle
		l.n = 1
		return
	}
	if l.n == len(l.buf) {
		// Grow and linearize. Amortized: stops once the ring reaches the
		// flow's steady-state in-flight packet count.
		//parm:alloc
		grown := make([]int, 2*len(l.buf))
		for i := 0; i < l.n; i++ {
			grown[i] = l.buf[(l.head+i)%len(l.buf)]
		}
		l.buf = grown
		l.head = 0
	}
	i := l.head + l.n
	if i >= len(l.buf) {
		i -= len(l.buf)
	}
	l.buf[i] = cycle
	l.n++
}

// take removes and returns the recorded injection cycle of sequence seq,
// reporting whether it was present.
//
//parm:hot
func (l *flowLog) take(seq int) (int, bool) {
	if l.n == 0 || seq < l.base || seq >= l.base+l.n {
		return 0, false
	}
	idx := l.head + (seq - l.base)
	if idx >= len(l.buf) {
		idx -= len(l.buf)
	}
	c := l.buf[idx]
	if c < 0 {
		return 0, false
	}
	l.buf[idx] = -1
	// Compact the consumed prefix so the live span stays tight.
	for l.n > 0 && l.buf[l.head] < 0 {
		l.head++
		if l.head == len(l.buf) {
			l.head = 0
		}
		l.base++
		l.n--
	}
	return c, true
}
