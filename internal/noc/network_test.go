package noc

import (
	"testing"

	"parm/internal/geom"
)

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(Config{}, nil, nil, &Env{}); err == nil {
		t.Error("nil algorithm accepted")
	}
	if _, err := NewNetwork(Config{}, XY{}, []Flow{{Src: -1, Dst: 5, Rate: 0.1}}, &Env{}); err == nil {
		t.Error("negative source tile accepted")
	}
	if _, err := NewNetwork(Config{}, XY{}, []Flow{{Src: 0, Dst: 600, Rate: 0.1}}, &Env{}); err == nil {
		t.Error("out-of-mesh destination accepted")
	}
	if _, err := NewNetwork(Config{}, XY{}, []Flow{{Src: 0, Dst: 5, Rate: -1}}, &Env{}); err == nil {
		t.Error("negative rate accepted")
	}
}

// TestConfigDefaults pins the withDefaults values the documentation
// promises, so doc comments and code cannot drift apart again (the RateEWMA
// comment once claimed 0.02 while the code selected 0.05).
func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Width != 10 || c.Height != 6 {
		t.Errorf("default mesh = %dx%d, want 10x6", c.Width, c.Height)
	}
	if c.BufferFlits != 8 {
		t.Errorf("BufferFlits = %d, want 8", c.BufferFlits)
	}
	if c.FlitsPerPacket != 5 {
		t.Errorf("FlitsPerPacket = %d, want 5", c.FlitsPerPacket)
	}
	if c.StagedPackets != 4 {
		t.Errorf("StagedPackets = %d, want 4", c.StagedPackets)
	}
	if c.OccupancyThreshold != 0.5 {
		t.Errorf("OccupancyThreshold = %g, want 0.5", c.OccupancyThreshold)
	}
	if c.RateEWMA != 0.05 {
		t.Errorf("RateEWMA = %g, want 0.05", c.RateEWMA)
	}
	if c.SatLinkLoad != 0.6 {
		t.Errorf("SatLinkLoad = %g, want 0.6", c.SatLinkLoad)
	}
	if c.Stepping != SteppingActive {
		t.Errorf("Stepping = %d, want SteppingActive", c.Stepping)
	}
}

// Each mesh dimension defaults independently: setting only Width must not
// zero out Height (a Config{Width: 8} once built a degenerate 0-tile mesh).
func TestMeshDimensionDefaults(t *testing.T) {
	c := Config{Width: 8}.withDefaults()
	if c.Width != 8 || c.Height != 6 {
		t.Errorf("Config{Width:8} = %dx%d, want 8x6", c.Width, c.Height)
	}
	c = Config{Height: 4}.withDefaults()
	if c.Width != 10 || c.Height != 4 {
		t.Errorf("Config{Height:4} = %dx%d, want 10x4", c.Width, c.Height)
	}
	n, err := NewNetwork(Config{Width: 8}, XY{}, []Flow{{Src: 0, Dst: 47, Rate: 0.1}}, &Env{})
	if err != nil {
		t.Fatalf("Config{Width:8}: %v", err)
	}
	if got := len(n.routers); got != 48 {
		t.Errorf("router count = %d, want 48", got)
	}
	if _, err := NewNetwork(Config{Width: -3, Height: 4}, XY{}, nil, &Env{}); err == nil {
		t.Error("negative width accepted")
	}
	if _, err := NewNetwork(Config{Width: 4, Height: -1}, XY{}, nil, &Env{}); err == nil {
		t.Error("negative height accepted")
	}
}

// A single packet over XY arrives with the zero-load latency: hops for the
// head plus serialization of the remaining flits, plus injection/ejection.
func TestZeroLoadLatency(t *testing.T) {
	flows := []Flow{{Src: 0, Dst: 9, Rate: 0.002}} // sparse packets
	n, err := NewNetwork(Config{}, XY{}, flows, &Env{})
	if err != nil {
		t.Fatal(err)
	}
	res := n.Measure(5000)
	fs := res.Flows[0]
	if fs.DeliveredPackets == 0 {
		t.Fatal("nothing delivered")
	}
	lat := fs.AvgPacketLatency()
	// 9 hops + 5 flits serialization + ~2 injection/ejection overhead.
	if lat < 13 || lat > 25 {
		t.Errorf("zero-load latency = %g cycles, want ~14-20", lat)
	}
}

// Flit conservation: everything injected is eventually delivered once the
// sources go quiet.
func TestFlitConservation(t *testing.T) {
	flows := []Flow{
		{Src: 0, Dst: 59, Rate: 0.2},
		{Src: 59, Dst: 0, Rate: 0.2},
		{Src: 12, Dst: 47, Rate: 0.3},
	}
	n, err := NewNetwork(Config{}, XY{}, flows, &Env{})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(4000)
	// Stop injection and drain.
	for i := range n.flows {
		n.flows[i].Rate = 0
	}
	n.Run(2000)
	for i, fs := range n.stats {
		if fs.DeliveredFlits != fs.InjectedFlits {
			t.Errorf("flow %d: injected %d, delivered %d", i, fs.InjectedFlits, fs.DeliveredFlits)
		}
		if fs.DeliveredFlits%n.cfg.FlitsPerPacket != 0 {
			t.Errorf("flow %d: partial packet delivered", i)
		}
	}
}

// Input buffers never exceed their configured capacity.
func TestBufferBound(t *testing.T) {
	flows := []Flow{
		{Src: 0, Dst: 59, Rate: 0.9},
		{Src: 10, Dst: 59, Rate: 0.9},
		{Src: 20, Dst: 59, Rate: 0.9},
		{Src: 50, Dst: 9, Rate: 0.9},
	}
	cfg := Config{BufferFlits: 4}
	n, err := NewNetwork(cfg, XY{}, flows, &Env{})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3000; c++ {
		n.Step()
		for r := range n.routers {
			for p := range n.routers[r].inputs {
				if got := n.routers[r].inputs[p].len(); got > 4 {
					t.Fatalf("cycle %d: router %d port %d holds %d flits (cap 4)", c, r, p, got)
				}
			}
		}
	}
}

// Wormhole integrity: packets of one flow eject in order and contiguously
// (monotone packet sequence at the destination).
func TestPacketOrdering(t *testing.T) {
	flows := []Flow{{Src: 3, Dst: 56, Rate: 0.4}}
	n, err := NewNetwork(Config{}, XY{}, flows, &Env{})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(3000)
	fs := n.stats[0]
	// Every delivered packet had its start recorded and removed exactly
	// once; out-of-order or duplicated ejection would corrupt latency
	// accounting into negatives.
	if fs.DeliveredPackets <= 0 || fs.TotalPacketLatency <= 0 {
		t.Fatalf("stats corrupt: %+v", fs)
	}
	if avg := fs.AvgPacketLatency(); avg < 10 {
		t.Errorf("impossibly low latency %g", avg)
	}
}

// Deterministic: identical runs produce identical statistics.
func TestNetworkDeterministic(t *testing.T) {
	mk := func() *Result {
		flows := []Flow{
			{Src: 0, Dst: 59, Rate: 0.5},
			{Src: 9, Dst: 50, Rate: 0.5},
			{Src: 30, Dst: 35, Rate: 0.7},
		}
		env := &Env{PSN: make([]float64, 60)}
		n, err := NewNetwork(Config{}, PANR{}, flows, env)
		if err != nil {
			t.Fatal(err)
		}
		return n.Measure(4000)
	}
	r1, r2 := mk(), mk()
	for i := range r1.Flows {
		if r1.Flows[i] != r2.Flows[i] {
			t.Fatalf("flow %d stats differ between identical runs", i)
		}
	}
	for i := range r1.RouterForwarded {
		if r1.RouterForwarded[i] != r2.RouterForwarded[i] {
			t.Fatalf("router %d activity differs between identical runs", i)
		}
	}
}

// All four algorithms make progress under sustained heavy load (deadlock
// freedom smoke test): delivered flits keep growing.
func TestNoDeadlockUnderLoad(t *testing.T) {
	var flows []Flow
	for i := 0; i < 30; i++ {
		flows = append(flows, Flow{
			Src:  geom.TileID((i * 17) % 60),
			Dst:  geom.TileID((i*23 + 31) % 60),
			Rate: 0.6,
		})
	}
	for i := range flows {
		if flows[i].Src == flows[i].Dst {
			flows[i].Dst = (flows[i].Dst + 1) % 60
		}
	}
	env := &Env{PSN: make([]float64, 60)}
	for _, alg := range []Algorithm{XY{}, WestFirst{}, ICON{}, PANR{}} {
		n, err := NewNetwork(Config{BufferFlits: 4}, alg, flows, env)
		if err != nil {
			t.Fatal(err)
		}
		n.Run(2000)
		first := n.Measure(2000)
		second := n.Measure(2000)
		d1, d2 := 0, 0
		for i := range first.Flows {
			d1 += first.Flows[i].DeliveredFlits
			d2 += second.Flows[i].DeliveredFlits
		}
		if d1 == 0 || d2 == 0 {
			t.Errorf("%s: network wedged under load (%d, %d delivered)", alg.Name(), d1, d2)
		}
	}
}

// Local (src == dst) flows bypass the network entirely.
func TestLocalFlowBypassesNoC(t *testing.T) {
	flows := []Flow{{Src: 7, Dst: 7, Rate: 0.9}}
	n, err := NewNetwork(Config{}, XY{}, flows, &Env{})
	if err != nil {
		t.Fatal(err)
	}
	res := n.Measure(1000)
	if res.Flows[0].InjectedFlits != 0 || res.Flows[0].DeliveredFlits != 0 {
		t.Errorf("local flow touched the network: %+v", res.Flows[0])
	}
}

// Backpressure: with more demand than ejection bandwidth, stalls are
// recorded and throughput saturates near 1 flit/cycle at the sink.
func TestSaturationAtHotspot(t *testing.T) {
	flows := []Flow{
		{Src: 24, Dst: 25, Rate: 0.8},
		{Src: 26, Dst: 25, Rate: 0.8},
		{Src: 35, Dst: 25, Rate: 0.8},
	}
	n, err := NewNetwork(Config{}, XY{}, flows, &Env{})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(1000)
	res := n.Measure(6000)
	total := 0
	stalls := 0
	for _, fs := range res.Flows {
		total += fs.DeliveredFlits
		stalls += fs.StalledCycles
	}
	thr := float64(total) / float64(res.Cycles)
	if thr > 1.05 {
		t.Errorf("sink throughput %g exceeds ejection bandwidth", thr)
	}
	if thr < 0.8 {
		t.Errorf("sink throughput %g far below saturation", thr)
	}
	if stalls == 0 {
		t.Error("oversubscribed sources recorded no stalls")
	}
}

// Router utilization is normalized per port and bounded by 1.
func TestRouterUtilBounds(t *testing.T) {
	flows := []Flow{{Src: 0, Dst: 59, Rate: 0.9}, {Src: 9, Dst: 50, Rate: 0.9}}
	n, err := NewNetwork(Config{}, XY{}, flows, &Env{})
	if err != nil {
		t.Fatal(err)
	}
	res := n.Measure(3000)
	for i, u := range res.RouterUtil {
		if u < 0 || u > 1 {
			t.Errorf("router %d util %g out of [0,1]", i, u)
		}
	}
	if res.RouterUtil[0] == 0 {
		t.Error("source router shows no activity")
	}
}

func TestFlowStatsHelpers(t *testing.T) {
	fs := FlowStats{DeliveredFlits: 100, DeliveredPackets: 20, TotalPacketLatency: 400}
	if fs.AvgPacketLatency() != 20 {
		t.Errorf("AvgPacketLatency = %g", fs.AvgPacketLatency())
	}
	if fs.Throughput(1000) != 0.1 {
		t.Errorf("Throughput = %g", fs.Throughput(1000))
	}
	var empty FlowStats
	if empty.AvgPacketLatency() != 0 || empty.Throughput(0) != 0 {
		t.Error("empty stats not zero")
	}
}

// Incoming-rate EWMA responds to traffic and decays when it stops.
func TestIncomingRateEWMA(t *testing.T) {
	flows := []Flow{{Src: 0, Dst: 9, Rate: 0.8}}
	n, err := NewNetwork(Config{}, XY{}, flows, &Env{})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(2000)
	mid := n.IncomingRate(5)
	if mid <= 0 {
		t.Fatal("no measured rate on the path")
	}
	n.flows[0].Rate = 0
	n.Run(2000)
	if after := n.IncomingRate(5); after > mid/4 {
		t.Errorf("rate EWMA did not decay: %g -> %g", mid, after)
	}
}
