package noc

import (
	"testing"
	"testing/quick"

	"parm/internal/geom"
)

func mkNet(t *testing.T, alg Algorithm, flows []Flow, env *Env) *Network {
	t.Helper()
	n, err := NewNetwork(Config{}, alg, flows, env)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestAlgorithmByName(t *testing.T) {
	for _, name := range []string{"XY", "WestFirst", "ICON", "PANR"} {
		alg, ok := AlgorithmByName(name)
		if !ok || alg.Name() != name {
			t.Errorf("AlgorithmByName(%q) = %v, %v", name, alg, ok)
		}
	}
	if _, ok := AlgorithmByName("bogus"); ok {
		t.Error("unknown algorithm accepted")
	}
}

func TestDirIndexRoundTrip(t *testing.T) {
	for i, d := range indexDir {
		if dirIndex(d) != i {
			t.Errorf("dirIndex(indexDir[%d]) = %d", i, dirIndex(d))
		}
	}
	if dirIndex(geom.DirInvalid) != -1 {
		t.Error("invalid direction has a port index")
	}
}

// West-first turn model invariants: a packet needing to travel west goes
// west only; otherwise every permitted direction is productive.
func TestWestFirstPermittedProperties(t *testing.T) {
	m := geom.NewMesh(10, 6)
	f := func(a, b uint8) bool {
		src := geom.TileID(int(a) % 60)
		dst := geom.TileID(int(b) % 60)
		perm, cnt := westFirstPermitted(m, src, dst)
		dirs := perm[:cnt]
		cs, cd := m.CoordOf(src), m.CoordOf(dst)
		if src == dst {
			return len(dirs) == 0
		}
		if cd.X < cs.X {
			return len(dirs) == 1 && dirs[0] == geom.West
		}
		if len(dirs) == 0 {
			return false
		}
		d0 := m.ManhattanDist(src, dst)
		for _, d := range dirs {
			n, ok := m.Neighbor(src, d)
			if !ok || m.ManhattanDist(n, dst) != d0-1 {
				return false
			}
			if d == geom.West {
				return false // west is never adaptive
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Every algorithm must return a productive (distance-reducing) direction,
// or Local at the destination — this is what guarantees minimal paths and,
// with the turn model, deadlock freedom.
func TestAllAlgorithmsProductive(t *testing.T) {
	flows := []Flow{{Src: 0, Dst: 59, Rate: 0.1}}
	env := &Env{PSN: make([]float64, 60)}
	for i := range env.PSN {
		env.PSN[i] = float64((i*13)%7) * 0.01
	}
	for _, alg := range []Algorithm{XY{}, WestFirst{}, ICON{}, PANR{}} {
		n := mkNet(t, alg, flows, env)
		m := n.Mesh()
		for src := geom.TileID(0); int(src) < 60; src++ {
			for dst := geom.TileID(0); int(dst) < 60; dst++ {
				ctx := RouteCtx{Net: n, At: src, Dst: dst, InDir: geom.Local}
				got := alg.Route(ctx)
				if src == dst {
					if got != geom.Local {
						t.Fatalf("%s: Route(%d,%d) = %v, want Local", alg.Name(), src, dst, got)
					}
					continue
				}
				nb, ok := m.Neighbor(src, got)
				if !ok {
					t.Fatalf("%s: Route(%d,%d) = %v leaves the mesh", alg.Name(), src, dst, got)
				}
				if m.ManhattanDist(nb, dst) != m.ManhattanDist(src, dst)-1 {
					t.Fatalf("%s: Route(%d,%d) = %v not productive", alg.Name(), src, dst, got)
				}
			}
		}
	}
}

// XY routes X hops before Y hops.
func TestXYDimensionOrder(t *testing.T) {
	flows := []Flow{{Src: 0, Dst: 59, Rate: 0.1}}
	n := mkNet(t, XY{}, flows, &Env{})
	// From (0,0) to (9,5): east first.
	if d := (XY{}).Route(RouteCtx{Net: n, At: 0, Dst: 59}); d != geom.East {
		t.Errorf("XY first hop = %v, want E", d)
	}
	// From (9,0) to (9,5): north.
	if d := (XY{}).Route(RouteCtx{Net: n, At: 9, Dst: 59}); d != geom.North {
		t.Errorf("XY aligned hop = %v, want N", d)
	}
	// Westward: west first.
	if d := (XY{}).Route(RouteCtx{Net: n, At: 59, Dst: 0}); d != geom.West {
		t.Errorf("XY west hop = %v, want W", d)
	}
}

// PANR prefers low-PSN neighbors when uncongested; the deviation requires
// beating the default by a full sensor step.
func TestPANRPrefersQuietTiles(t *testing.T) {
	flows := []Flow{{Src: 0, Dst: 59, Rate: 0.01}}
	env := &Env{PSN: make([]float64, 60)}
	// From tile 0, permitted dirs to 59 are E (tile 1) and N (tile 10).
	env.PSN[1] = 0.08 // east neighbor noisy
	env.PSN[10] = 0.0 // north neighbor quiet
	n := mkNet(t, PANR{}, flows, env)
	if d := (PANR{}).Route(RouteCtx{Net: n, At: 0, Dst: 59}); d != geom.North {
		t.Errorf("PANR chose %v through the noisy tile", d)
	}
	// Below one sensor step of difference, stick to the default (E).
	env.PSN[1] = 0.002
	if d := (PANR{}).Route(RouteCtx{Net: n, At: 0, Dst: 59}); d != geom.East {
		t.Errorf("PANR deviated for a sub-step difference: %v", d)
	}
}

// Above the buffer-occupancy threshold B, PANR switches to congestion mode
// (Algorithm 3 line 4-5) and follows incoming data rate instead of PSN.
func TestPANRCongestionModeSwitch(t *testing.T) {
	flows := []Flow{{Src: 0, Dst: 59, Rate: 0.01}}
	env := &Env{PSN: make([]float64, 60)}
	env.PSN[1] = 0.08 // east (the dimension-ordered default) noisy and busy
	env.PSN[10] = 0.0 // north quiet and idle
	n := mkNet(t, PANR{}, flows, env)
	n.routers[1].incomingRate = 2.0
	n.routers[10].incomingRate = 0.0
	// Quiet input: PSN decides -> north (quiet, idle alternative).
	if d := (PANR{}).Route(RouteCtx{Net: n, At: 0, Dst: 59, InputOccupancy: 0.1}); d != geom.North {
		t.Errorf("uncongested PANR chose %v", d)
	}
	// Congested input: data rate decides -> north (far less incoming).
	if d := (PANR{}).Route(RouteCtx{Net: n, At: 0, Dst: 59, InputOccupancy: 0.9}); d != geom.North {
		t.Errorf("congested PANR chose %v", d)
	}
	// A busy alternative is not worth deviating to: north busy, east noisy.
	n.routers[1].incomingRate = 0.0
	n.routers[10].incomingRate = 2.0
	if d := (PANR{}).Route(RouteCtx{Net: n, At: 0, Dst: 59, InputOccupancy: 0.1}); d != geom.East {
		t.Errorf("PANR deviated onto a saturated router: %v", d)
	}
}

// ICON follows router activity and ignores PSN entirely.
func TestICONIgnoresPSN(t *testing.T) {
	flows := []Flow{{Src: 0, Dst: 59, Rate: 0.01}}
	env := &Env{PSN: make([]float64, 60)}
	env.PSN[10] = 0.15 // very noisy north tile
	n := mkNet(t, ICON{}, flows, env)
	n.routers[1].incomingRate = 1.0 // busy east router
	n.routers[10].incomingRate = 0.0
	if d := (ICON{}).Route(RouteCtx{Net: n, At: 0, Dst: 59}); d != geom.North {
		t.Errorf("ICON chose %v; it should follow router activity, not PSN", d)
	}
}

func TestPANRCustomThreshold(t *testing.T) {
	flows := []Flow{{Src: 0, Dst: 59, Rate: 0.01}}
	env := &Env{PSN: make([]float64, 60)}
	env.PSN[1] = 0.08
	n := mkNet(t, PANR{Threshold: 0.9}, flows, env)
	// Occupancy 0.6 is below the custom 0.9 threshold: PSN mode steers to
	// the quiet, idle north neighbor.
	if d := (PANR{Threshold: 0.9}).Route(RouteCtx{Net: n, At: 0, Dst: 59, InputOccupancy: 0.6}); d != geom.North {
		t.Errorf("custom threshold ignored: %v", d)
	}
}

func TestEnvNilSafety(t *testing.T) {
	var e *Env
	if e.psnAt(3) != 0 {
		t.Error("nil env did not read as quiet")
	}
	e = &Env{PSN: []float64{0.1}}
	if e.psnAt(0) != 0.1 || e.psnAt(5) != 0 || e.psnAt(-1) != 0 {
		t.Error("env bounds handling wrong")
	}
}

func TestPANROverheadNumbers(t *testing.T) {
	o := PANROverhead()
	if o.PowerMilliwatts != 1.0 {
		t.Errorf("power overhead %g mW, want ~1", o.PowerMilliwatts)
	}
	if o.AreaUm2 != 115 {
		t.Errorf("area overhead %g um2, want 115", o.AreaUm2)
	}
	if o.ComparatorCount != 2 {
		t.Errorf("%d comparators, want 2", o.ComparatorCount)
	}
	if o.HopSelectionCycles != 1 {
		t.Errorf("hop selection %d cycles, want 1 (masked)", o.HopSelectionCycles)
	}
	if o.PowerPercent <= 0 || o.PowerPercent > 10 {
		t.Errorf("power percent %g implausible", o.PowerPercent)
	}
	if o.SensorNetworkAreaUm2 != 413 {
		t.Errorf("sensor area %g, want 413", o.SensorNetworkAreaUm2)
	}
}
