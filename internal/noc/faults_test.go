package noc

import (
	"testing"

	"parm/internal/geom"
)

// dropAbove is a deterministic FaultModel for tests: it drops every packet
// whose path noise exceeds the threshold.
type dropAbove struct{ threshold float64 }

func (d dropAbove) DropPacket(maxPSN float64) bool { return maxPSN > d.threshold }

// noisyEnv returns an Env with the given PSN at every tile of a 10x6 mesh.
func noisyEnv(psn float64) *Env {
	e := &Env{PSN: make([]float64, 60)}
	for i := range e.PSN {
		e.PSN[i] = psn
	}
	return e
}

func runWindow(t *testing.T, fm FaultModel, env *Env) (*Network, *Result) {
	t.Helper()
	flows := []Flow{{Src: 0, Dst: 9, Rate: 0.2}, {Src: 13, Dst: 41, Rate: 0.1}}
	n, err := NewNetwork(Config{}, XY{}, flows, env)
	if err != nil {
		t.Fatal(err)
	}
	n.SetFaultModel(fm)
	n.Run(500)
	return n, n.Measure(4000)
}

func TestFaultModelDropsAndRetransmits(t *testing.T) {
	_, res := runWindow(t, dropAbove{threshold: 0.05}, noisyEnv(0.08))
	var delivered, dropped, retrans, recovered, lost int
	for _, fs := range res.Flows {
		delivered += fs.DeliveredPackets
		dropped += fs.DroppedPackets
		retrans += fs.RetransmittedPackets
		recovered += fs.RecoveredPackets
		lost += fs.LostPackets
	}
	if dropped == 0 {
		t.Fatal("no packets dropped under an always-drop model")
	}
	if delivered != 0 {
		t.Errorf("%d packets delivered although every path exceeds the threshold", delivered)
	}
	if retrans+lost != dropped {
		t.Errorf("retransmitted %d + lost %d != dropped %d", retrans, lost, dropped)
	}
	if recovered != 0 {
		t.Errorf("%d recoveries although nothing can deliver", recovered)
	}
}

func TestFaultModelQuietPathsUntouched(t *testing.T) {
	// Below the threshold nothing is dropped and the stats match a run with
	// no fault model at all.
	_, withFM := runWindow(t, dropAbove{threshold: 0.05}, noisyEnv(0.01))
	_, without := runWindow(t, nil, noisyEnv(0.01))
	for i := range withFM.Flows {
		a, b := withFM.Flows[i], without.Flows[i]
		if a.DroppedPackets != 0 || a.LostPackets != 0 || a.RetransmittedPackets != 0 {
			t.Errorf("flow %d dropped/lost/retransmitted under quiet PSN: %+v", i, a)
		}
		if a.DeliveredPackets != b.DeliveredPackets || a.DeliveredFlits != b.DeliveredFlits ||
			a.TotalPacketLatency != b.TotalPacketLatency {
			t.Errorf("flow %d diverged from the fault-free run: %+v vs %+v", i, a, b)
		}
	}
}

func TestFaultModelRecoveryAccounting(t *testing.T) {
	// A model that drops the first k packets it sees: the retransmissions
	// eventually deliver and must be counted as recoveries. The drops land
	// in the first few hundred cycles, so read cumulative stats rather than
	// a measurement-window diff.
	fm := &dropFirstK{k: 3}
	n, _ := runWindow(t, fm, noisyEnv(0.08))
	var dropped, retrans, recovered int
	for _, fs := range n.stats {
		dropped += fs.DroppedPackets
		retrans += fs.RetransmittedPackets
		recovered += fs.RecoveredPackets
	}
	if dropped != 3 {
		t.Fatalf("dropped = %d, want 3", dropped)
	}
	if retrans == 0 {
		t.Fatal("nothing retransmitted")
	}
	if recovered != retrans {
		t.Errorf("recovered %d != retransmitted %d (all retransmissions should deliver)", recovered, retrans)
	}
}

type dropFirstK struct{ k, seen int }

func (d *dropFirstK) DropPacket(maxPSN float64) bool {
	if maxPSN <= 0.05 {
		return false
	}
	if d.seen < d.k {
		d.seen++
		return true
	}
	return false
}

func TestNoiseDropModelDeterministic(t *testing.T) {
	run := func() *Result {
		_, res := runWindow(t, NewNoiseDropModel(17, 0.05, 0, 0), noisyEnv(0.08))
		return res
	}
	a, b := run(), run()
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatalf("flow %d diverged across identically seeded runs:\n%+v\n%+v",
				i, a.Flows[i], b.Flows[i])
		}
	}
}

func TestNoiseDropModelThreshold(t *testing.T) {
	m := NewNoiseDropModel(1, 0.05, 0.5, 0.75)
	for i := 0; i < 1000; i++ {
		if m.DropPacket(0.05) || m.DropPacket(0.01) || m.DropPacket(0) {
			t.Fatal("dropped a packet at or below the threshold")
		}
	}
	drops := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if m.DropPacket(0.06) { // exceedance 0.2 -> p = 0.1
			drops++
		}
	}
	got := float64(drops) / trials
	if got < 0.08 || got > 0.12 {
		t.Errorf("drop rate at 6%% PSN = %g, want ~0.1", got)
	}
	// Far above the threshold the probability saturates at maxProb.
	drops = 0
	for i := 0; i < trials; i++ {
		if m.DropPacket(10) {
			drops++
		}
	}
	got = float64(drops) / trials
	if got < 0.73 || got > 0.77 {
		t.Errorf("saturated drop rate = %g, want ~0.75", got)
	}
}

func TestFaultNoiseTracksPath(t *testing.T) {
	// Only the destination tile is noisy: the path max must still pick it
	// up, so every packet is dropped by a threshold just below it.
	env := &Env{PSN: make([]float64, 60)}
	env.PSN[9] = 0.10
	flows := []Flow{{Src: 0, Dst: 9, Rate: 0.05}}
	n, err := NewNetwork(Config{}, XY{}, flows, env)
	if err != nil {
		t.Fatal(err)
	}
	n.SetFaultModel(dropAbove{threshold: 0.05})
	n.Run(2000)
	st := n.stats[0]
	if st.DeliveredPackets != 0 || st.DroppedPackets == 0 {
		t.Errorf("delivered=%d dropped=%d; destination noise not seen on path",
			st.DeliveredPackets, st.DroppedPackets)
	}
	_ = geom.TileID(0)
}
