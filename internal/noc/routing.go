package noc

import "parm/internal/geom"

// RouteCtx is the per-head-flit routing context handed to an Algorithm.
type RouteCtx struct {
	// Net gives access to neighbor state (incoming data rates, PSN sensor
	// readings) — the registers and wires of paper §4.4.
	Net *Network
	// At is the current router's tile; Dst the destination tile.
	At, Dst geom.TileID
	// InDir is the port the flit arrived on (Local for injections).
	InDir geom.Dir
	// InputOccupancy is the fill fraction of the input channel's buffer,
	// the quantity PANR compares against the threshold B (Algorithm 3).
	InputOccupancy float64
}

// Algorithm selects the output direction for each head flit.
type Algorithm interface {
	// Name identifies the scheme in reports ("XY", "PANR", ...).
	Name() string
	// Route returns the output direction; geom.Local ejects.
	Route(ctx RouteCtx) geom.Dir
}

// XY is dimension-ordered deterministic routing: all X hops, then all Y
// hops. It is deadlock-free and the baseline of §5.2.
type XY struct{}

// Name implements Algorithm.
func (XY) Name() string { return "XY" }

// Route implements Algorithm.
func (XY) Route(ctx RouteCtx) geom.Dir {
	m := ctx.Net.Mesh()
	cs, cd := m.CoordOf(ctx.At), m.CoordOf(ctx.Dst)
	switch {
	case cd.X > cs.X:
		return geom.East
	case cd.X < cs.X:
		return geom.West
	case cd.Y > cs.Y:
		return geom.North
	case cd.Y < cs.Y:
		return geom.South
	default:
		return geom.Local
	}
}

// westFirstPermitted returns the output directions the west-first turn
// model allows from src toward dst (paper ref [32]): a packet that must
// travel west does all west hops first (turns into West are prohibited);
// afterwards it may choose adaptively among the remaining productive
// directions. A zero count means the flit has arrived. The fixed-size
// return keeps route computation off the heap — it runs once per packet
// inside the cycle loop, and the permitted set never exceeds two entries
// (East plus one of North/South).
//
//parm:hot
func westFirstPermitted(m geom.Mesh, src, dst geom.TileID) (dirs [3]geom.Dir, n int) {
	cs, cd := m.CoordOf(src), m.CoordOf(dst)
	if cd.X < cs.X {
		dirs[0] = geom.West
		return dirs, 1
	}
	if cd.X > cs.X {
		dirs[n] = geom.East
		n++
	}
	if cd.Y > cs.Y {
		dirs[n] = geom.North
		n++
	}
	if cd.Y < cs.Y {
		dirs[n] = geom.South
		n++
	}
	return dirs, n
}

// WestFirst is minimal adaptive west-first routing with a deterministic
// tie-break (first permitted direction in E,N,S order). It is the base
// scheme PANR builds on.
type WestFirst struct{}

// Name implements Algorithm.
func (WestFirst) Name() string { return "WestFirst" }

// Route implements Algorithm.
func (WestFirst) Route(ctx RouteCtx) geom.Dir {
	dirs, cnt := westFirstPermitted(ctx.Net.Mesh(), ctx.At, ctx.Dst)
	if cnt == 0 {
		return geom.Local
	}
	return dirs[0]
}

// ICON models the NoC-noise-aware routing of ref [22] (IcoNoClast): among
// the deadlock-free permitted directions it always picks the neighbor whose
// router shows the least switching activity (incoming data rate), spreading
// NoC power noise — but it is agnostic of core activity, the weakness §5.2
// demonstrates.
type ICON struct{}

// Name implements Algorithm.
func (ICON) Name() string { return "ICON" }

// Route implements Algorithm.
func (ICON) Route(ctx RouteCtx) geom.Dir {
	dirs, cnt := westFirstPermitted(ctx.Net.Mesh(), ctx.At, ctx.Dst)
	switch cnt {
	case 0:
		return geom.Local
	case 1:
		return dirs[0]
	}
	return minBy(ctx, dirs[:cnt], func(n geom.TileID) float64 {
		return ctx.Net.IncomingRate(n)
	})
}

// PANR is the paper's PSN- and congestion-aware routing (Algorithm 3):
// west-first permitted directions, then — if the input channel is congested
// beyond threshold B — the neighbor with the least incoming data rate,
// otherwise the neighbor with the least PSN sensor reading.
type PANR struct {
	// Threshold overrides the buffer-occupancy threshold B; zero uses the
	// network's configured value (default 0.5).
	Threshold float64
}

// Name implements Algorithm.
func (PANR) Name() string { return "PANR" }

// Route implements Algorithm.
func (p PANR) Route(ctx RouteCtx) geom.Dir {
	perm, cnt := westFirstPermitted(ctx.Net.Mesh(), ctx.At, ctx.Dst)
	switch cnt {
	case 0:
		return geom.Local
	case 1:
		return perm[0]
	}
	dirs := perm[:cnt]
	b := p.Threshold
	if b <= 0 {
		b = ctx.Net.cfg.OccupancyThreshold
	}
	// The default is the dimension-ordered (XY-like) choice; the adaptive
	// alternative is taken only when its metric is meaningfully better.
	// Without this hysteresis every worm herds onto the momentarily
	// quietest tile, and a single-VC wormhole network loses more to worm
	// coupling than it gains from adaptivity.
	def := dirs[0]
	if ctx.InputOccupancy > b {
		// Congested: steer toward the neighbor with the least incoming
		// data rate if it undercuts the default by 40% of a flit/cycle —
		// a wide margin, because in a single-VC wormhole network an
		// adaptive turn couples worms across dimensions and usually costs
		// more than a mildly busier but straight path.
		return pickWithHysteresis(ctx, dirs, def, 1.2, func(n geom.TileID) float64 {
			return ctx.Net.IncomingRate(n) + ctx.Net.SensorPSN(n)*1e-3
		})
	}
	// Deviate for noise only when the default path is actually approaching
	// the voltage-emergency margin AND some alternative is genuinely below
	// it; routing around quiet tiles buys no VE reduction, and detouring
	// from one noisy tile to another pays the adaptivity tax for nothing.
	if defN, ok := ctx.Net.Mesh().Neighbor(ctx.At, def); ok {
		defPSN := ctx.Net.SensorPSN(defN)
		if defPSN < 0.04 {
			return def
		}
		quietAltExists := false
		for _, d := range dirs {
			if d == def {
				continue
			}
			n, ok := ctx.Net.Mesh().Neighbor(ctx.At, d)
			if ok && ctx.Net.SensorPSN(n) < 0.04 && ctx.Net.IncomingRate(n) < 0.35 {
				quietAltExists = true
				break
			}
		}
		if !quietAltExists {
			return def
		}
	}
	// Quiet: steer toward the neighbor with the lowest PSN sensor reading
	// if it beats the default by at least two sensor steps (~0.6% Vdd).
	// A congestion penalty keeps the PSN preference from detouring worms
	// into near-saturated routers (every 0.1 flit/cycle above half
	// capacity costs about one sensor step), and the wide margin keeps
	// deviations rare: in a single-VC wormhole network, adaptive turns
	// couple worms across dimensions, so PANR only pays that cost where a
	// genuinely noisy tile can be avoided.
	const sensorStep = 0.003
	return pickWithHysteresis(ctx, dirs, def, 2*sensorStep, func(n geom.TileID) float64 {
		rate := ctx.Net.IncomingRate(n)
		penalty := 0.0
		if rate > 0.5 {
			penalty = (rate - 0.5) * 0.03
		}
		return ctx.Net.SensorPSN(n) + penalty + rate*1e-4
	})
}

// pickWithHysteresis returns the default direction unless an alternative's
// score beats the default's by more than margin (and is the minimum among
// such alternatives).
func pickWithHysteresis(ctx RouteCtx, dirs []geom.Dir, def geom.Dir, margin float64, score func(geom.TileID) float64) geom.Dir {
	defN, ok := ctx.Net.Mesh().Neighbor(ctx.At, def)
	if !ok {
		return def
	}
	threshold := score(defN) - margin
	best := def
	bestScore := threshold
	for _, d := range dirs {
		if d == def {
			continue
		}
		n, ok := ctx.Net.Mesh().Neighbor(ctx.At, d)
		if !ok {
			continue
		}
		if s := score(n); s < bestScore {
			best = d
			bestScore = s
		}
	}
	return best
}

// minBy returns the permitted direction whose neighbor minimizes score,
// breaking ties by listed order for determinism.
func minBy(ctx RouteCtx, dirs []geom.Dir, score func(geom.TileID) float64) geom.Dir {
	best := dirs[0]
	bestScore := 0.0
	for i, d := range dirs {
		n, ok := ctx.Net.Mesh().Neighbor(ctx.At, d)
		if !ok {
			continue // permitted dirs are always in-mesh; defensive
		}
		s := score(n)
		if i == 0 || s < bestScore {
			best = d
			bestScore = s
		}
	}
	return best
}

// AlgorithmByName returns the routing scheme for a CLI name, or false for
// an unknown name. Recognized: "XY", "WestFirst", "ICON", "PANR"
// (case-sensitive, as printed by Name).
func AlgorithmByName(name string) (Algorithm, bool) {
	switch name {
	case "XY":
		return XY{}, true
	case "WestFirst":
		return WestFirst{}, true
	case "ICON":
		return ICON{}, true
	case "PANR":
		return PANR{}, true
	default:
		return nil, false
	}
}
