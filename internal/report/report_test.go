package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("short", 1)
	tb.AddRow("a-much-longer-name", 2.5)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "== demo ==") {
		t.Errorf("title line = %q", lines[0])
	}
	// Header and rows align: the "value" column starts at the same offset.
	idx := strings.Index(lines[1], "value")
	if idx < 0 {
		t.Fatal("no value column")
	}
	if lines[3][idx-2:idx] != "  " && lines[4][idx-2:idx] != "  " {
		t.Error("columns misaligned")
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(3.14159265)
	tb.AddRow(float32(2.5))
	tb.AddRow(42)
	tb.AddRow("text")
	if tb.Rows[0][0] != "3.142" {
		t.Errorf("float64 formatted as %q", tb.Rows[0][0])
	}
	if tb.Rows[1][0] != "2.5" {
		t.Errorf("float32 formatted as %q", tb.Rows[1][0])
	}
	if tb.Rows[2][0] != "42" || tb.Rows[3][0] != "text" {
		t.Error("non-float formatting wrong")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow(1, 2)
	tb.AddRow("x", "y")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\nx,y\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "x")
	tb.AddRow(1)
	if strings.Contains(tb.String(), "==") {
		t.Error("untitled table printed a title banner")
	}
}
