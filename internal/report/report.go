// Package report renders experiment results as aligned text tables and CSV,
// the output format of cmd/experiments and the benchmark harness.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table with a title.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v, floats with 4
// significant digits.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Write(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

// WriteCSV renders the table as CSV (no quoting needed: cells are numeric
// or simple identifiers).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
