package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is a promtool-style lint of the Prometheus text exposition
// format, in pure Go, so CI can validate a live /metrics scrape without
// installing the Prometheus toolchain. It checks the line grammar (comments,
// samples with optional labels), metric-name syntax, at most one TYPE per
// family declared before its samples, float-parsable values, and histogram
// shape: every histogram family must carry a le="+Inf" bucket whose
// cumulative count equals _count, with bucket counts non-decreasing in le.

// expoFamily accumulates what the validator learns about one metric family.
type expoFamily struct {
	typ      string
	samples  int
	buckets  map[float64]float64 // le -> cumulative count (histograms)
	hasInf   bool
	infCount float64
	sum      bool
	count    bool
	countVal float64
}

// ValidateExposition checks that r is well-formed Prometheus text format
// (version 0.0.4) and returns the first violation found, annotated with its
// line number. A nil return means every line parsed and every histogram
// family is internally consistent.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fams := map[string]*expoFamily{}
	fam := func(name string) *expoFamily {
		f, ok := fams[name]
		if !ok {
			f = &expoFamily{buckets: map[float64]float64{}}
			fams[name] = f
		}
		return f
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkComment(line, fam); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := checkSample(line, fam); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading exposition: %w", err)
	}
	return checkHistograms(fams)
}

// checkComment validates a # line: HELP and TYPE carry a metric name, TYPE
// additionally a known type declared at most once and before any sample.
func checkComment(line string, fam func(string) *expoFamily) error {
	fields := strings.Fields(line)
	if len(fields) < 2 || fields[0] != "#" {
		return fmt.Errorf("malformed comment %q", line)
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("HELP without a valid metric name: %q", line)
		}
	case "TYPE":
		if len(fields) != 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		f := fam(fields[2])
		if f.typ != "" {
			return fmt.Errorf("duplicate TYPE for %s", fields[2])
		}
		if f.samples > 0 {
			return fmt.Errorf("TYPE for %s after its samples", fields[2])
		}
		f.typ = fields[3]
	}
	// Other # lines are free-form comments, allowed by the format.
	return nil
}

// checkSample validates one sample line and records it against its family
// (histogram _bucket/_sum/_count series attach to the base family).
func checkSample(line string, fam func(string) *expoFamily) error {
	name, labels, rest, err := splitSample(line)
	if err != nil {
		return err
	}
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("want 'value [timestamp]' after %q, got %q", name, rest)
	}
	val, err := parseExpoValue(fields[0])
	if err != nil {
		return fmt.Errorf("sample %s: %w", name, err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("sample %s: bad timestamp %q", name, fields[1])
		}
	}
	base, kind := histSeries(name)
	f := fam(base)
	f.samples++
	switch kind {
	case "bucket":
		le, ok := labels["le"]
		if !ok {
			return fmt.Errorf("%s without an le label", name)
		}
		if le == "+Inf" {
			f.hasInf = true
			f.infCount = val
			return nil
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("%s: bad le bound %q", name, le)
		}
		f.buckets[bound] = val
	case "sum":
		f.sum = true
	case "count":
		f.count = true
		f.countVal = val
	}
	return nil
}

// histSeries splits a sample name into its family base and histogram series
// kind ("bucket", "sum", "count", or "" for a plain sample). The suffix is
// only meaningful when the base family is declared a histogram; for other
// families checkHistograms ignores the recorded pieces.
func histSeries(name string) (base, kind string) {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suffix) {
			return strings.TrimSuffix(name, suffix), suffix[1:]
		}
	}
	return name, ""
}

// checkHistograms verifies every declared histogram family has the full
// bucket chain: a +Inf bucket matching _count, _sum present, and cumulative
// counts non-decreasing in le.
func checkHistograms(fams map[string]*expoFamily) error {
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if f.typ != "histogram" {
			continue
		}
		if !f.hasInf {
			return fmt.Errorf("histogram %s has no le=\"+Inf\" bucket", n)
		}
		if !f.sum || !f.count {
			return fmt.Errorf("histogram %s is missing _sum or _count", n)
		}
		// Integer-valued observation counts: exact comparison intended.
		//parm:floateq
		if f.countVal != f.infCount {
			return fmt.Errorf("histogram %s: _count %v != +Inf bucket %v", n, f.countVal, f.infCount)
		}
		bounds := make([]float64, 0, len(f.buckets))
		for b := range f.buckets {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)
		prev := 0.0
		for _, b := range bounds {
			c := f.buckets[b]
			if c < prev {
				return fmt.Errorf("histogram %s: bucket counts decrease at le=%v", n, b)
			}
			prev = c
		}
		if f.infCount < prev {
			return fmt.Errorf("histogram %s: +Inf bucket below the last finite bucket", n)
		}
	}
	return nil
}

// splitSample separates "name{labels} value [ts]" into its parts. labels is
// nil when the sample carries none.
func splitSample(line string) (name string, labels map[string]string, rest string, err error) {
	brace := strings.IndexByte(line, '{')
	if brace < 0 {
		sp := strings.IndexAny(line, " \t")
		if sp < 0 {
			return "", nil, "", fmt.Errorf("sample %q has no value", line)
		}
		return line[:sp], nil, line[sp:], nil
	}
	name = line[:brace]
	end := strings.IndexByte(line[brace:], '}')
	if end < 0 {
		return "", nil, "", fmt.Errorf("unterminated label set in %q", line)
	}
	labels, err = parseLabels(line[brace+1 : brace+end])
	if err != nil {
		return "", nil, "", err
	}
	return name, labels, line[brace+end+1:], nil
}

// parseLabels parses a comma-separated label list: name="value" pairs with
// backslash-escaped quotes inside values.
func parseLabels(s string) (map[string]string, error) {
	labels := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '=' in %q", s)
		}
		lname := strings.TrimSpace(s[:eq])
		if !validLabelName(lname) {
			return nil, fmt.Errorf("invalid label name %q", lname)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("unquoted label value for %q", lname)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				val.WriteByte(s[i])
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value for %q", lname)
		}
		labels[lname] = val.String()
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return labels, nil
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// validLabelName reports whether s matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// parseExpoValue parses a sample value: a Go float, or the Prometheus
// spellings of the special values.
func parseExpoValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN", "Nan":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}
