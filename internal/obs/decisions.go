package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Decision is the provenance record of one Algorithm 1 scheduling attempt:
// what the mapper scanned, why candidates were rejected, and what it chose.
// TS is simulated seconds. It turns "why was this app dropped" from a
// re-run-under-debugger question into a lookup.
type Decision struct {
	// TS is the simulated time of the decision.
	TS float64 `json:"ts"`
	// App and Bench identify the application under decision.
	App   int    `json:"app"`
	Bench string `json:"bench,omitempty"`
	// Outcome is "mapped", "stalled", or "dropped".
	Outcome string `json:"outcome"`
	// Candidates counts the (Vdd, DoP) points scanned in this attempt.
	Candidates int `json:"candidates"`
	// RejDeadline/RejBudget/RejRegion break down why candidates of this
	// attempt were rejected: WCET past the deadline, dark-silicon power
	// budget, or no viable region from the mapping heuristic.
	RejDeadline int `json:"rej_deadline"`
	RejBudget   int `json:"rej_budget"`
	RejRegion   int `json:"rej_region"`
	// Vdd, DoP, and Domains describe the chosen operating point and region
	// (mapped outcomes only).
	Vdd     float64 `json:"vdd,omitempty"`
	DoP     int     `json:"dop,omitempty"`
	Domains []int   `json:"domains,omitempty"`
	// WaitS is the queue time accumulated when the decision was taken.
	WaitS float64 `json:"wait_s"`
}

// DecisionLog is a bounded ring buffer of mapper decisions. When full,
// Record overwrites the oldest decision and counts the loss in Dropped. A
// nil DecisionLog discards records, so instrumented code records
// unconditionally — the same contract as Timeline.
type DecisionLog struct {
	mu      sync.Mutex
	buf     []Decision
	start   int // index of the oldest decision
	n       int // number of live decisions
	dropped uint64
}

// NewDecisionLog returns a log holding at most capacity decisions
// (minimum 1).
func NewDecisionLog(capacity int) *DecisionLog {
	if capacity < 1 {
		capacity = 1
	}
	return &DecisionLog{buf: make([]Decision, capacity)}
}

// Record appends d, overwriting the oldest decision when the buffer is
// full.
func (l *DecisionLog) Record(d Decision) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.n < len(l.buf) {
		l.buf[(l.start+l.n)%len(l.buf)] = d
		l.n++
	} else {
		l.buf[l.start] = d
		l.start = (l.start + 1) % len(l.buf)
		l.dropped++
	}
	l.mu.Unlock()
}

// Len returns the number of buffered decisions.
func (l *DecisionLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Dropped returns how many decisions were overwritten after the buffer
// filled.
func (l *DecisionLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Decisions returns the buffered decisions oldest-first as a fresh slice.
func (l *DecisionLog) Decisions() []Decision {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Decision, l.n)
	for i := 0; i < l.n; i++ {
		out[i] = l.buf[(l.start+i)%len(l.buf)]
	}
	return out
}

// decisionsJSON is the /decisions and -decisions-out document.
type decisionsJSON struct {
	Dropped   uint64     `json:"dropped"`
	Decisions []Decision `json:"decisions"`
}

// WriteJSON writes the buffered decisions (oldest-first) plus the drop
// count as an indented JSON document. A nil log writes an empty document,
// so the serving path needs no enabled/disabled branch.
func (l *DecisionLog) WriteJSON(w io.Writer) error {
	doc := decisionsJSON{Dropped: l.Dropped(), Decisions: l.Decisions()}
	if doc.Decisions == nil {
		doc.Decisions = []Decision{}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshaling decisions: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("obs: writing decisions: %w", err)
	}
	return nil
}
