package obs

import "testing"

// BenchmarkObsCounterAllocs pins the zero-allocation contract of the
// hot-path update methods: pre-registered counter/gauge/histogram updates
// must not allocate, whether the metric is live or nil (telemetry off).
func BenchmarkObsCounterAllocs(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench/counter")
	g := r.Gauge("bench/gauge")
	h := r.Histogram("bench/hist", []float64{0.25, 0.5, 0.75, 1})
	var nilC *Counter
	var nilG *Gauge
	var nilH *Histogram

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		c.Add(2)
		g.Set(int64(i))
		g.Add(-1)
		h.Observe(float64(i&3) / 4)
		nilC.Inc()
		nilG.Set(1)
		nilH.Observe(0.5)
	}
}

func TestCounterUpdatesZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc/counter")
	g := r.Gauge("alloc/gauge")
	h := r.Histogram("alloc/hist", []float64{1, 2, 3})
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(7)
		g.Add(1)
		h.Observe(1.5)
	}); n != 0 {
		t.Fatalf("metric updates allocate %v allocs/op, want 0", n)
	}
	var nilC *Counter
	var nilG *Gauge
	var nilH *Histogram
	if n := testing.AllocsPerRun(100, func() {
		nilC.Inc()
		nilG.Add(1)
		nilH.Observe(0.1)
	}); n != 0 {
		t.Fatalf("nil metric updates allocate %v allocs/op, want 0", n)
	}
}
