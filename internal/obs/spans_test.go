package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// buildSpanTimeline records the span shape of one scheduling window:
// window > psn_sample > domain_solve, then window > mapper_decide with two
// instantaneous noc_measure children sharing the decision's timestamp.
func buildSpanTimeline() *Timeline {
	tl := NewTimeline(64)
	win := tl.StartSpan("window", 0, -1)
	ps := tl.StartSpan("psn_sample", 0.001, -1)
	ds := tl.StartSpan("domain_solve", 0.001, -1)
	tl.EndSpan(ds, 0.001)
	tl.EndSpan(ps, 0.001)
	md := tl.StartSpan("mapper_decide", 0.002, 3)
	nm1 := tl.StartSpan("noc_measure", 0.002, 3)
	tl.EndSpan(nm1, 0.002)
	nm2 := tl.StartSpan("noc_measure", 0.002, 3)
	tl.EndSpan(nm2, 0.002)
	tl.EndSpan(md, 0.002)
	tl.EndSpan(win, 0.005)
	tl.Record(TimelineEvent{Name: "map", TS: 0.002, App: 3, Arg: 4})
	return tl
}

// Parent attribution follows the open-span stack, and the rollup aggregates
// completed spans per name.
func TestSpanNestingAndStats(t *testing.T) {
	tl := buildSpanTimeline()
	spans := tl.Spans()
	if len(spans) != 6 {
		t.Fatalf("got %d spans, want 6", len(spans))
	}
	byName := map[string]Span{}
	for _, sp := range spans {
		if sp.Name != "noc_measure" || byName["noc_measure"].ID == 0 {
			byName[sp.Name] = sp
		}
	}
	if byName["window"].Parent != 0 {
		t.Errorf("window has parent %d, want root", byName["window"].Parent)
	}
	if got, want := byName["psn_sample"].Parent, byName["window"].ID; got != want {
		t.Errorf("psn_sample parent = %d, want window (%d)", got, want)
	}
	if got, want := byName["domain_solve"].Parent, byName["psn_sample"].ID; got != want {
		t.Errorf("domain_solve parent = %d, want psn_sample (%d)", got, want)
	}
	if got, want := byName["mapper_decide"].Parent, byName["window"].ID; got != want {
		t.Errorf("mapper_decide parent = %d, want window (%d)", got, want)
	}
	if got, want := byName["noc_measure"].Parent, byName["mapper_decide"].ID; got != want {
		t.Errorf("noc_measure parent = %d, want mapper_decide (%d)", got, want)
	}
	for _, sp := range spans {
		if sp.Open {
			t.Errorf("span %s (%d) still open", sp.Name, sp.ID)
		}
	}

	stats := tl.SpanStats()
	byStat := map[string]SpanStat{}
	for _, st := range stats {
		byStat[st.Name] = st
	}
	if st := byStat["noc_measure"]; st.Count != 2 {
		t.Errorf("noc_measure count = %d, want 2", st.Count)
	}
	if st := byStat["window"]; st.Count != 1 || st.TotalS != 0.005 || st.MaxS != 0.005 {
		t.Errorf("window rollup = %+v, want count 1, total/max 0.005", st)
	}
	if len(stats) != 5 {
		t.Errorf("got %d stat names, want 5", len(stats))
	}
}

// The span ring evicts oldest-first and counts the losses; orphaned children
// export as roots rather than vanishing.
func TestSpanRingEviction(t *testing.T) {
	tl := NewTimeline(2)
	a := tl.StartSpan("a", 0, -1)
	b := tl.StartSpan("b", 1, -1)
	c := tl.StartSpan("c", 2, -1) // evicts a
	tl.EndSpan(c, 3)
	tl.EndSpan(b, 4)
	tl.EndSpan(a, 5) // a's slot now holds c: must be a no-op
	if got := tl.SpanDropped(); got != 1 {
		t.Errorf("SpanDropped = %d, want 1", got)
	}
	spans := tl.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d live spans, want 2", len(spans))
	}
	for _, sp := range spans {
		if sp.Name == "c" && (sp.Open || sp.End != 3) {
			t.Errorf("span c corrupted by EndSpan on evicted ID: %+v", sp)
		}
	}
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	// b's parent (a) was evicted, so b must still appear as a root pair.
	if !bytes.Contains(buf.Bytes(), []byte(`"name": "b"`)) {
		t.Errorf("evicted-parent span b missing from trace:\n%s", buf.String())
	}
}

// Nil timelines accept the whole span API as no-ops.
func TestSpanNilTimeline(t *testing.T) {
	var tl *Timeline
	id := tl.StartSpan("x", 0, -1)
	if id != 0 {
		t.Errorf("nil StartSpan returned %d, want 0", id)
	}
	tl.EndSpan(id, 1)
	if tl.Spans() != nil || tl.SpanStats() != nil || tl.SpanDropped() != 0 {
		t.Error("nil timeline span accessors not empty")
	}
}

// The exported Chrome trace is pinned byte-for-byte: B/E pairs in
// depth-first order on the span track, so Perfetto renders the hierarchy
// even though most spans are instantaneous in simulated time.
func TestWriteChromeTraceGolden(t *testing.T) {
	tl := buildSpanTimeline()
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	// Whatever else, the golden must be valid JSON of the expected shape.
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	golden := filepath.Join("testdata", "span_trace.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace differs from golden (run with -update to regenerate)\ngot:\n%s\nwant:\n%s",
			buf.String(), string(want))
	}
}

// Span starts deeper than the stack bound still record (with the stack top
// as parent) without corrupting the stack.
func TestSpanDepthOverflow(t *testing.T) {
	tl := NewTimeline(2 * maxSpanDepth)
	ids := make([]SpanID, 0, maxSpanDepth+4)
	for i := 0; i < maxSpanDepth+4; i++ {
		ids = append(ids, tl.StartSpan("deep", float64(i), -1))
	}
	for i := len(ids) - 1; i >= 0; i-- {
		tl.EndSpan(ids[i], float64(len(ids)))
	}
	spans := tl.Spans()
	if len(spans) != maxSpanDepth+4 {
		t.Fatalf("got %d spans, want %d", len(spans), maxSpanDepth+4)
	}
	closed := 0
	for _, sp := range spans {
		if !sp.Open {
			closed++
		}
	}
	if closed != len(spans) {
		t.Errorf("%d of %d spans closed, want all", closed, len(spans))
	}
}
