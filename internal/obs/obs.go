// Package obs is the unified telemetry layer of the simulator: a
// stdlib-only registry of zero-allocation counters, gauges, and fixed-bucket
// histograms, plus a bounded ring-buffer event timeline (timeline.go) that
// exports Chrome trace-event JSON.
//
// The design contract, enforced by the obsreg analyzer and the
// BenchmarkObsCounterAllocs guard, splits telemetry into two phases:
//
//   - Registration (Registry.Counter/Gauge/Histogram) allocates and takes a
//     lock. It happens once, at startup, outside every //parm:hot loop.
//   - Updates (Inc/Add/Set/Observe) are single atomic operations on
//     pre-registered metrics: 0 allocs/op, safe for concurrent use, cheap
//     enough for the measurement hot paths.
//
// Every update method is nil-receiver safe and degrades to a no-op, so
// instrumented code paths need no "telemetry enabled?" branches: a subsystem
// that was never instrumented carries nil metric pointers and pays one
// predictable branch per update. Telemetry is strictly observational — it
// must never alter simulation behavior (runs with telemetry on and off stay
// byte-identical in their metrics output).
//
// Metric names are slash-separated paths ("pdn/cache/hits"); the snapshot
// (WriteSnapshot) nests them into a hierarchical JSON document with
// deterministically sorted keys. Names must be unique and prefix-free (no
// name may also be a path prefix of another).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; a nil Counter discards updates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//parm:hot
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
//
//parm:hot
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous signed level (queue depth, pool occupancy). The
// zero value is ready to use; a nil Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current level.
//
//parm:hot
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add shifts the level by d (use a negative d to decrease).
//
//parm:hot
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current level (0 for a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is an instantaneous float-valued level (simulated time, a
// utilization ratio). The zero value is ready to use; a nil FloatGauge
// discards updates.
type FloatGauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores the current level.
//
//parm:hot
func (g *FloatGauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current level (0 for a nil FloatGauge).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. An observation lands in the
// first bucket whose upper bound is >= the value (upper bounds are
// inclusive, mirroring Prometheus "le" semantics); values above the last
// bound land in the implicit +Inf bucket. Bounds are fixed at registration,
// so Observe is allocation-free. A nil Histogram discards updates.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// newHistogram copies and sorts the bounds.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
//
//parm:hot
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// BucketCount returns the count of bucket i, where i indexes the sorted
// upper bounds and i == len(bounds) is the +Inf bucket.
func (h *Histogram) BucketCount(i int) uint64 {
	if h == nil {
		return 0
	}
	return h.counts[i].Load()
}

// histBucketJSON is one bucket in the snapshot: the inclusive upper bound
// ("inf" for the overflow bucket) and its observation count.
type histBucketJSON struct {
	Le    interface{} `json:"le"`
	Count uint64      `json:"count"`
}

// histJSON is the snapshot form of a histogram.
type histJSON struct {
	Count   uint64           `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets []histBucketJSON `json:"buckets"`
}

func (h *Histogram) snapshot() histJSON {
	out := histJSON{Count: h.count.Load(), Sum: math.Float64frombits(h.sum.Load())}
	for i := range h.counts {
		b := histBucketJSON{Count: h.counts[i].Load()}
		if i < len(h.bounds) {
			b.Le = h.bounds[i]
		} else {
			b.Le = "inf"
		}
		out.Buckets = append(out.Buckets, b)
	}
	return out
}

// Registry holds the pre-registered metrics of one run. The zero value is
// not usable; call NewRegistry. A nil *Registry is the disabled-telemetry
// mode: every registration returns a nil metric whose updates are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	fgauges  map[string]*FloatGauge
	hists    map[string]*Histogram
	attached map[string]func() interface{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		fgauges:  make(map[string]*FloatGauge),
		hists:    make(map[string]*Histogram),
		attached: make(map[string]func() interface{}),
	}
}

// Counter registers (or returns the already-registered) counter under name.
// Registration locks and may allocate: call it at startup, never inside a
// hot loop (the obsreg analyzer enforces this).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge registers (or returns the already-registered) gauge under name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge registers (or returns the already-registered) float gauge
// under name.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.fgauges[name]
	if !ok {
		g = &FloatGauge{}
		r.fgauges[name] = g
	}
	return g
}

// Attach registers fn to be evaluated at snapshot time and inserted at the
// slash-separated name, letting externally-owned state (timeline drop
// counters, span rollups) appear in the snapshot without copying it on
// every update. fn must return a JSON-marshalable value and be safe to call
// concurrently with the rest of the program; numeric leaves (including
// nested map[string]interface{} trees of numbers) also reach the Prometheus
// exposition as untyped families. Attaching the same name again replaces
// the previous collector. Names share the metric namespace and must keep it
// prefix-free.
func (r *Registry) Attach(name string, fn func() interface{}) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.attached[name] = fn
}

// Histogram registers (or returns the already-registered) histogram under
// name. bounds are the inclusive bucket upper bounds; they are copied,
// sorted, and fixed for the histogram's lifetime. The bounds of the first
// registration win.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot returns the current metric values as a hierarchical document:
// slash-separated name segments become nested objects, leaves are counter
// and gauge values (numbers) and histogram summaries (count/sum/buckets).
// It is safe to call concurrently with updates; values are read atomically
// per metric (the snapshot is not a cross-metric consistent cut).
func (r *Registry) Snapshot() map[string]interface{} {
	root := make(map[string]interface{})
	if r == nil {
		return root
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		insert(root, name, c.Value())
	}
	for name, g := range r.gauges {
		insert(root, name, g.Value())
	}
	for name, g := range r.fgauges {
		insert(root, name, g.Value())
	}
	for name, h := range r.hists {
		insert(root, name, h.snapshot())
	}
	// Attached collectors run outside the registry lock path of their own
	// data (each guards its own state); the map itself is guarded here.
	for name, fn := range r.attached {
		insert(root, name, fn())
	}
	return root
}

// insert places value at the slash-separated path in the nested map.
func insert(root map[string]interface{}, name string, value interface{}) {
	parts := strings.Split(name, "/")
	m := root
	for _, p := range parts[:len(parts)-1] {
		child, ok := m[p].(map[string]interface{})
		if !ok {
			child = make(map[string]interface{})
			m[p] = child
		}
		m = child
	}
	m[parts[len(parts)-1]] = value
}

// WriteSnapshot writes the hierarchical snapshot as indented JSON with
// deterministically sorted keys (encoding/json sorts map keys).
func (r *Registry) WriteSnapshot(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshaling snapshot: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("obs: writing snapshot: %w", err)
	}
	return nil
}
