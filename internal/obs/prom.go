package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file renders the registry in the Prometheus text exposition format
// (version 0.0.4), the wire format scraped from /metrics. Slash-separated
// metric paths become parm_-prefixed underscore names ("pdn/cache/hits" ->
// "parm_pdn_cache_hits"); counters, gauges, and float gauges render as one
// sample per family, histograms render with cumulative _bucket series plus
// _sum and _count, and attached collectors contribute their numeric leaves
// as untyped families. Output is deterministic: families are sorted by
// name, histogram buckets by bound.

// ExpositionContentType is the Content-Type of the rendered text format.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName maps a slash-separated metric path to a Prometheus metric name:
// parm_ prefix, path separators and any character outside [a-zA-Z0-9_:]
// replaced with underscores.
func promName(path string) string {
	var b strings.Builder
	b.Grow(len("parm_") + len(path))
	b.WriteString("parm_")
	for _, r := range path {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promFamily is one rendered metric family: the TYPE header plus its
// sample lines, ready to write in name order.
type promFamily struct {
	name  string // Prometheus name, the sort key
	path  string // original slash path, used as the HELP text
	typ   string // counter, gauge, histogram, untyped
	lines []string
}

// WritePrometheus renders every registered metric (and the numeric leaves
// of attached collectors) in the Prometheus text exposition format. It is
// safe to call concurrently with updates; like Snapshot, values are read
// atomically per metric, not as a cross-metric consistent cut.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var fams []promFamily
	if r != nil {
		r.mu.Lock()
		for path, c := range r.counters {
			name := promName(path)
			fams = append(fams, promFamily{name: name, path: path, typ: "counter",
				lines: []string{name + " " + strconv.FormatUint(c.Value(), 10)}})
		}
		for path, g := range r.gauges {
			name := promName(path)
			fams = append(fams, promFamily{name: name, path: path, typ: "gauge",
				lines: []string{name + " " + strconv.FormatInt(g.Value(), 10)}})
		}
		for path, g := range r.fgauges {
			name := promName(path)
			fams = append(fams, promFamily{name: name, path: path, typ: "gauge",
				lines: []string{name + " " + formatFloat(g.Value())}})
		}
		for path, h := range r.hists {
			fams = append(fams, histFamily(path, h))
		}
		for path, fn := range r.attached {
			fams = append(fams, untypedFamilies(path, fn())...)
		}
		r.mu.Unlock()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.path)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, line := range f.lines {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("obs: writing exposition: %w", err)
	}
	return nil
}

// histFamily renders one histogram: cumulative buckets (Prometheus le
// semantics, always ending in +Inf), then _sum and _count. A histogram with
// zero observations renders the identical bucket schema with zero counts,
// so the scrape schema is stable from the first scrape.
func histFamily(path string, h *Histogram) promFamily {
	name := promName(path)
	f := promFamily{name: name, path: path, typ: "histogram"}
	cum := uint64(0)
	for i := range h.counts {
		cum += h.BucketCount(i)
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		f.lines = append(f.lines, fmt.Sprintf("%s_bucket{le=%q} %d", name, le, cum))
	}
	f.lines = append(f.lines,
		fmt.Sprintf("%s_sum %s", name, formatFloat(h.Sum())),
		fmt.Sprintf("%s_count %d", name, h.Count()))
	return f
}

// untypedFamilies flattens an attached collector's value into untyped
// families: numeric leaves become samples, nested map[string]interface{}
// levels extend the path, and everything else (strings, slices) is left to
// the JSON snapshot alone.
func untypedFamilies(path string, v interface{}) []promFamily {
	var fams []promFamily
	switch val := v.(type) {
	case map[string]interface{}:
		keys := make([]string, 0, len(val))
		for k := range val {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fams = append(fams, untypedFamilies(path+"/"+k, val[k])...)
		}
	case float64, uint64, int64, int, uint, int32, uint32:
		name := promName(path)
		fams = append(fams, promFamily{name: name, path: path, typ: "untyped",
			lines: []string{name + " " + formatFloat(toFloat(val))}})
	}
	return fams
}

// toFloat widens the numeric leaf types untypedFamilies accepts.
func toFloat(v interface{}) float64 {
	switch n := v.(type) {
	case float64:
		return n
	case uint64:
		return float64(n)
	case int64:
		return float64(n)
	case int:
		return float64(n)
	case uint:
		return float64(n)
	case int32:
		return float64(n)
	case uint32:
		return float64(n)
	}
	return 0
}
