package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// The ring keeps the newest decisions, counts overwrites, and returns
// oldest-first.
func TestDecisionLogRing(t *testing.T) {
	l := NewDecisionLog(3)
	for i := 0; i < 5; i++ {
		l.Record(Decision{App: i, Outcome: "mapped"})
	}
	if l.Len() != 3 {
		t.Errorf("Len = %d, want 3", l.Len())
	}
	if l.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", l.Dropped())
	}
	ds := l.Decisions()
	for i, want := range []int{2, 3, 4} {
		if ds[i].App != want {
			t.Errorf("decision %d is app %d, want %d", i, ds[i].App, want)
		}
	}
}

// WriteJSON emits the documented schema; empty and nil logs produce an
// empty decisions array, not null.
func TestDecisionLogWriteJSON(t *testing.T) {
	l := NewDecisionLog(4)
	l.Record(Decision{
		TS: 0.25, App: 1, Bench: "ferret", Outcome: "dropped",
		Candidates: 12, RejDeadline: 7, RejBudget: 3, RejRegion: 2, WaitS: 0.1,
	})
	l.Record(Decision{
		TS: 0.5, App: 2, Outcome: "mapped", Candidates: 4,
		Vdd: 0.9, DoP: 4, Domains: []int{1, 2}, WaitS: 0,
	})
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Dropped   uint64     `json:"dropped"`
		Decisions []Decision `json:"decisions"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("decisions JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(doc.Decisions) != 2 {
		t.Fatalf("round-tripped %d decisions, want 2", len(doc.Decisions))
	}
	d := doc.Decisions[0]
	if d.Outcome != "dropped" || d.Candidates != 12 || d.RejDeadline != 7 || d.Bench != "ferret" {
		t.Errorf("decision 0 round-trip mismatch: %+v", d)
	}
	if got := doc.Decisions[1]; got.Vdd != 0.9 || got.DoP != 4 || len(got.Domains) != 2 {
		t.Errorf("mapped decision lost operating point: %+v", got)
	}
	// Mapped-only fields are omitted for non-mapped outcomes.
	if bytes.Contains(buf.Bytes(), []byte(`"vdd": 0,`)) {
		t.Errorf("zero vdd not omitted:\n%s", buf.String())
	}

	for _, tc := range []struct {
		name string
		log  *DecisionLog
	}{{"nil", nil}, {"empty", NewDecisionLog(2)}} {
		name, log := tc.name, tc.log
		var b bytes.Buffer
		if err := log.WriteJSON(&b); err != nil {
			t.Fatalf("%s log WriteJSON: %v", name, err)
		}
		var raw map[string]json.RawMessage
		if err := json.Unmarshal(b.Bytes(), &raw); err != nil {
			t.Fatalf("%s log JSON does not parse: %v", name, err)
		}
		if string(raw["decisions"]) == "null" {
			t.Errorf("%s log emits null decisions, want []", name)
		}
	}
}

// Nil logs absorb the full API.
func TestDecisionLogNil(t *testing.T) {
	var l *DecisionLog
	l.Record(Decision{App: 1})
	if l.Len() != 0 || l.Dropped() != 0 || l.Decisions() != nil {
		t.Error("nil DecisionLog accessors not empty")
	}
}
