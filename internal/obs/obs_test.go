package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []float64{1})
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil metrics must read zero: %d %d %d %g", c.Value(), g.Value(), h.Count(), h.Sum())
	}
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("nil registry snapshot = %v, want empty", got)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a/b")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if c2 := r.Counter("a/b"); c2 != c {
		t.Fatal("re-registration must return the same counter")
	}
	g := r.Gauge("a/g")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	// Bounds given unsorted on purpose: registration sorts them.
	h := r.Histogram("h", []float64{10, 1, 5})
	// Upper bounds are inclusive: v <= bound lands in that bucket.
	cases := []struct {
		v    float64
		want int // bucket index after sorting: [1, 5, 10, +Inf]
	}{
		{0.5, 0}, {1, 0}, {1.0001, 1}, {5, 1}, {7, 2}, {10, 2}, {10.5, 3}, {1e9, 3},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	want := []uint64{2, 2, 2, 2}
	for i, w := range want {
		if got := h.BucketCount(i); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if got := h.Count(); got != uint64(len(cases)) {
		t.Errorf("count = %d, want %d", got, len(cases))
	}
	sum := 0.0
	for _, c := range cases {
		sum += c.v
	}
	if got := h.Sum(); got != sum {
		t.Errorf("sum = %g, want %g", got, sum)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Registration and updates race with each other and with
			// Snapshot; -race must stay clean.
			c := r.Counter("shared/counter")
			g := r.Gauge("shared/gauge")
			h := r.Histogram("shared/hist", []float64{0.25, 0.5, 0.75})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%4) / 4)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				r.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	if got := r.Counter("shared/counter").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("shared/gauge").Value(); got != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("shared/hist", nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestSnapshotHierarchy(t *testing.T) {
	r := NewRegistry()
	r.Counter("pdn/cache/hits").Add(3)
	r.Counter("pdn/cache/misses").Add(1)
	r.Gauge("mapper/queue_depth").Set(2)
	r.Histogram("mapper/wait_s", []float64{0.1}).Observe(0.05)

	var buf bytes.Buffer
	if err := r.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	pdn, ok := doc["pdn"].(map[string]interface{})
	if !ok {
		t.Fatalf("missing pdn subtree in %s", buf.String())
	}
	cache, ok := pdn["cache"].(map[string]interface{})
	if !ok {
		t.Fatalf("missing pdn/cache subtree in %s", buf.String())
	}
	if got := cache["hits"].(float64); got != 3 {
		t.Errorf("pdn/cache/hits = %v, want 3", got)
	}
	mapper := doc["mapper"].(map[string]interface{})
	if got := mapper["queue_depth"].(float64); got != 2 {
		t.Errorf("mapper/queue_depth = %v, want 2", got)
	}
	hist, ok := mapper["wait_s"].(map[string]interface{})
	if !ok {
		t.Fatalf("missing mapper/wait_s histogram in %s", buf.String())
	}
	if got := hist["count"].(float64); got != 1 {
		t.Errorf("mapper/wait_s count = %v, want 1", got)
	}

	// Determinism: two snapshots of the same state are byte-identical.
	var buf2 bytes.Buffer
	if err := r.WriteSnapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("repeated snapshots of identical state differ")
	}
}
