package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The exposition renders every metric kind with parm_-prefixed names,
// cumulative histogram buckets, and passes its own validator.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("pdn/cache/hits").Add(3)
	r.Gauge("mapper/queue_depth").Set(2)
	r.FloatGauge("engine/sim_time_s").Set(1.25)
	h := r.Histogram("mapper/wait_s", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.Attach("obs/timeline_dropped", func() interface{} { return uint64(7) })
	r.Attach("obs/spans", func() interface{} {
		return map[string]interface{}{"window": map[string]interface{}{"count": uint64(2), "total_s": 0.5}}
	})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE parm_pdn_cache_hits counter",
		"parm_pdn_cache_hits 3",
		"# TYPE parm_mapper_queue_depth gauge",
		"parm_mapper_queue_depth 2",
		"# TYPE parm_engine_sim_time_s gauge",
		"parm_engine_sim_time_s 1.25",
		"# TYPE parm_mapper_wait_s histogram",
		`parm_mapper_wait_s_bucket{le="0.1"} 2`,
		`parm_mapper_wait_s_bucket{le="1"} 3`,
		`parm_mapper_wait_s_bucket{le="+Inf"} 4`,
		"parm_mapper_wait_s_count 4",
		"# TYPE parm_obs_timeline_dropped untyped",
		"parm_obs_timeline_dropped 7",
		"parm_obs_spans_window_count 2",
		"parm_obs_spans_window_total_s 0.5",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition is missing %q:\n%s", want, text)
		}
	}
	if err := ValidateExposition(strings.NewReader(text)); err != nil {
		t.Errorf("exposition fails its own validator: %v\n%s", err, text)
	}

	// Deterministic: a second render of the same state is byte-identical.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("repeated expositions of identical state differ")
	}
}

// A histogram with zero observations must render the identical bucket
// schema as a populated one — in the exposition and in the JSON snapshot —
// so the scrape schema is stable from the first scrape.
func TestZeroObservationHistogramSchemaStable(t *testing.T) {
	bounds := []float64{0.01, 0.1, 1}
	empty := NewRegistry()
	empty.Histogram("mapper/wait_s", bounds)
	full := NewRegistry()
	full.Histogram("mapper/wait_s", bounds).Observe(0.5)

	schema := func(r *Registry) []string {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, line := range strings.Split(buf.String(), "\n") {
			if line == "" {
				continue
			}
			if strings.HasPrefix(line, "#") {
				names = append(names, line)
				continue
			}
			// Keep the series name and label set, drop the value.
			names = append(names, line[:strings.LastIndexByte(line, ' ')])
		}
		return names
	}
	got, want := schema(empty), schema(full)
	if len(got) != len(want) {
		t.Fatalf("zero-observation schema has %d lines, populated has %d:\nempty: %v\nfull:  %v",
			len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("schema line %d: zero-observation %q != populated %q", i, got[i], want[i])
		}
	}

	// The JSON snapshot emits the same bucket array for both.
	buckets := func(r *Registry) []interface{} {
		doc := r.Snapshot()
		hist := doc["mapper"].(map[string]interface{})["wait_s"].(histJSON)
		out := make([]interface{}, len(hist.Buckets))
		for i, b := range hist.Buckets {
			out[i] = b.Le
		}
		return out
	}
	eb, fb := buckets(empty), buckets(full)
	if len(eb) != len(fb) || len(eb) != len(bounds)+1 {
		t.Fatalf("snapshot buckets: empty %d, full %d, want %d", len(eb), len(fb), len(bounds)+1)
	}
	for i := range eb {
		if eb[i] != fb[i] {
			t.Errorf("snapshot bucket %d: empty le=%v, full le=%v", i, eb[i], fb[i])
		}
	}

	// And the snapshot JSON of the empty histogram round-trips with the
	// full bucket chain present.
	var buf bytes.Buffer
	if err := empty.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	hist := doc["mapper"].(map[string]interface{})["wait_s"].(map[string]interface{})
	if bs := hist["buckets"].([]interface{}); len(bs) != len(bounds)+1 {
		t.Errorf("empty-histogram snapshot has %d buckets, want %d", len(bs), len(bounds)+1)
	}
}

// Nil registries render an empty exposition without panicking.
func TestWritePrometheusNil(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil registry rendered %q", buf.String())
	}
}

// The validator rejects the malformed expositions it exists to catch.
func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name, text string
	}{
		{"bad metric name", "9bad_name 1\n"},
		{"missing value", "parm_x\n"},
		{"bad value", "parm_x notafloat\n"},
		{"unknown type", "# TYPE parm_x frobnicator\n"},
		{"duplicate type", "# TYPE parm_x counter\n# TYPE parm_x counter\n"},
		{"type after samples", "parm_x 1\n# TYPE parm_x counter\n"},
		{"histogram without inf", "# TYPE parm_h histogram\nparm_h_bucket{le=\"1\"} 1\nparm_h_sum 1\nparm_h_count 1\n"},
		{"histogram count mismatch", "# TYPE parm_h histogram\nparm_h_bucket{le=\"+Inf\"} 2\nparm_h_sum 1\nparm_h_count 3\n"},
		{"decreasing buckets", "# TYPE parm_h histogram\nparm_h_bucket{le=\"1\"} 5\nparm_h_bucket{le=\"2\"} 3\nparm_h_bucket{le=\"+Inf\"} 5\nparm_h_sum 1\nparm_h_count 5\n"},
		{"unterminated labels", "parm_x{le=\"1\" 1\n"},
	}
	for _, tc := range cases {
		if err := ValidateExposition(strings.NewReader(tc.text)); err == nil {
			t.Errorf("%s: validator accepted %q", tc.name, tc.text)
		}
	}
	if err := ValidateExposition(strings.NewReader("# just a comment\nparm_ok{le=\"0.5\",app=\"3\"} 42 1700000000\n")); err != nil {
		t.Errorf("validator rejected a well-formed sample: %v", err)
	}
}
