// Package obshttp embeds a telemetry HTTP server into a running simulation:
// /metrics in the Prometheus text format, /healthz liveness with the last
// simulated-time progress mark, /snapshot and /decisions as JSON, /trace as
// Chrome trace-event JSON, and the standard net/http/pprof handlers under
// /debug/pprof/. The server only reads the obs structures — it shares the
// same observational contract as the registry itself, so scraping a live
// run cannot perturb its results.
package obshttp

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"parm/internal/obs"
)

// Health is the /healthz document. Status is "ok" while the process serves;
// SimTimeS is the engine's last published simulated time and Events its
// event-loop iteration count, so a stalled run is visible as a frozen
// SimTimeS across scrapes even though the process answers.
type Health struct {
	Status   string  `json:"status"`
	SimTimeS float64 `json:"sim_time_s"`
	Events   uint64  `json:"events"`
}

// Config wires the telemetry sources into the server. Every field is
// optional: a nil Registry serves an empty exposition, a nil Timeline an
// empty trace, a nil Decisions an empty decision list. Health overrides the
// default liveness probe, which reads the engine/sim_time_s gauge and
// engine/events counter from Registry.
type Config struct {
	Registry  *obs.Registry
	Timeline  *obs.Timeline
	Decisions *obs.DecisionLog
	Health    func() Health
}

// NewHandler returns the telemetry mux for cfg. It is exported separately
// from Serve so tests can drive it through httptest and embedders can mount
// it under their own server.
func NewHandler(cfg Config) http.Handler {
	health := cfg.Health
	if health == nil {
		health = func() Health {
			h := Health{Status: "ok"}
			if cfg.Registry != nil {
				h.SimTimeS = cfg.Registry.FloatGauge("engine/sim_time_s").Value()
				h.Events = cfg.Registry.Counter("engine/events").Value()
			}
			return h
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", obs.ExpositionContentType)
		if err := cfg.Registry.WritePrometheus(w); err != nil {
			// Headers are gone; all we can do is log the broken scrape.
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, health())
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := cfg.Registry.WriteSnapshot(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/decisions", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := cfg.Decisions.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if cfg.Timeline == nil {
			fmt.Fprintln(w, `{"traceEvents":[]}`) //parm:errok http response
			return
		}
		if err := cfg.Timeline.WriteChromeTrace(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	// net/http/pprof registers on DefaultServeMux at import; mount the same
	// handlers explicitly so this mux stays self-contained.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeJSON writes v as an indented JSON response.
func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	data = append(data, '\n')
	w.Write(data) //parm:errok http response
}

// Server is a running telemetry listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (e.g. ":9090" or "127.0.0.1:0") and serves the telemetry
// mux on a background goroutine. The bind itself is synchronous so a bad
// addr fails fast at startup instead of silently after the run began.
func Serve(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obshttp: listening on %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: NewHandler(cfg)}}
	go func() {
		// ErrServerClosed on Close is the expected shutdown path.
		s.srv.Serve(ln) //parm:errok background server
	}()
	return s, nil
}

// Addr returns the bound listen address, with the real port when addr was
// ":0".
func (s *Server) Addr() string {
	return s.ln.Addr().String()
}

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error {
	return s.srv.Close()
}
