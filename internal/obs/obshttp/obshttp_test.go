package obshttp_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"parm/internal/obs"
	"parm/internal/obs/obshttp"
)

// Every endpoint answers over real HTTP with the right content type, and
// the /metrics body passes the exposition validator.
func TestHandlerRoundTrip(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("engine/events").Add(42)
	r.FloatGauge("engine/sim_time_s").Set(1.5)
	r.Histogram("mapper/wait_s", []float64{0.1, 1}).Observe(0.2)
	tl := obs.NewTimeline(16)
	sp := tl.StartSpan("window", 0, -1)
	tl.EndSpan(sp, 0.5)
	dl := obs.NewDecisionLog(8)
	dl.Record(obs.Decision{TS: 0.2, App: 1, Outcome: "mapped", Candidates: 3})

	srv := httptest.NewServer(obshttp.NewHandler(obshttp.Config{
		Registry: r, Timeline: tl, Decisions: dl,
	}))
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if ctype != obs.ExpositionContentType {
		t.Errorf("/metrics Content-Type = %q, want %q", ctype, obs.ExpositionContentType)
	}
	if err := obs.ValidateExposition(strings.NewReader(metrics)); err != nil {
		t.Errorf("/metrics body fails validation: %v\n%s", err, metrics)
	}
	for _, want := range []string{"parm_engine_events 42", "parm_mapper_wait_s_bucket"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	healthz, _ := get("/healthz")
	var h obshttp.Health
	if err := json.Unmarshal([]byte(healthz), &h); err != nil {
		t.Fatalf("/healthz does not parse: %v\n%s", err, healthz)
	}
	if h.Status != "ok" || h.SimTimeS != 1.5 || h.Events != 42 {
		t.Errorf("/healthz = %+v, want ok/1.5/42", h)
	}

	snapshot, ctype := get("/snapshot")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/snapshot Content-Type = %q", ctype)
	}
	var snap map[string]interface{}
	if err := json.Unmarshal([]byte(snapshot), &snap); err != nil {
		t.Fatalf("/snapshot does not parse: %v", err)
	}
	if _, ok := snap["engine"]; !ok {
		t.Errorf("/snapshot missing engine subtree: %s", snapshot)
	}

	decisions, _ := get("/decisions")
	var dec struct {
		Decisions []obs.Decision `json:"decisions"`
	}
	if err := json.Unmarshal([]byte(decisions), &dec); err != nil {
		t.Fatalf("/decisions does not parse: %v", err)
	}
	if len(dec.Decisions) != 1 || dec.Decisions[0].Outcome != "mapped" {
		t.Errorf("/decisions = %s, want the one recorded decision", decisions)
	}

	trace, _ := get("/trace")
	if !strings.Contains(trace, `"traceEvents"`) || !strings.Contains(trace, `"window"`) {
		t.Errorf("/trace missing span events: %s", trace)
	}

	pprofIdx, _ := get("/debug/pprof/")
	if !strings.Contains(pprofIdx, "goroutine") {
		t.Error("/debug/pprof/ index does not list profiles")
	}
}

// A config with every source nil still serves: empty exposition, empty
// decision list, empty trace — no panics, no 500s.
func TestHandlerNilSources(t *testing.T) {
	srv := httptest.NewServer(obshttp.NewHandler(obshttp.Config{}))
	defer srv.Close()
	for path, want := range map[string]string{
		"/metrics":   "",
		"/decisions": `"decisions": []`,
		"/trace":     `"traceEvents"`,
		"/healthz":   `"status": "ok"`,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s with nil sources: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), want) {
			t.Errorf("GET %s = %q, want it to contain %q", path, body, want)
		}
	}
}

// Serve binds synchronously, reports its real address, and stops on Close.
func TestServeLifecycle(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("engine/events").Add(1)
	s, err := obshttp.Serve("127.0.0.1:0", obshttp.Config{Registry: r})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("scraping live server: %v", err)
	}
	io.Copy(io.Discard, resp.Body) //parm:errok test drain
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("live /metrics status %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/metrics"); err == nil {
		t.Error("server still answering after Close")
	}

	if _, err := obshttp.Serve("256.0.0.1:99999", obshttp.Config{}); err == nil {
		t.Error("Serve accepted an unusable address")
	}
}
