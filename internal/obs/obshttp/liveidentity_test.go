package obshttp_test

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"parm/internal/appmodel"
	"parm/internal/core"
	"parm/internal/obs"
	"parm/internal/obs/obshttp"
	"parm/internal/power"
)

// Serving telemetry and scraping it while the engine runs must not perturb
// the simulation: the Metrics JSON is byte-identical to a bare run with no
// telemetry at all.
func TestServeMidRunScrapeByteIdentity(t *testing.T) {
	w, err := appmodel.Generate(appmodel.WorkloadConfig{
		Kind: appmodel.WorkloadMixed, NumApps: 8, ArrivalGap: 0.06,
		Node: power.MustParams(power.Node7), Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	newEngine := func() *core.Engine {
		eng, err := core.NewEngine(core.Config{}, core.MustCombo("PARM", "PANR"))
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	metricsJSON := func(eng *core.Engine) []byte {
		m, err := eng.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// Reference: no telemetry, no server.
	want := metricsJSON(newEngine())

	// Telemetered run with the HTTP server up, scraped continuously from a
	// second goroutine for the whole duration of Run.
	r := obs.NewRegistry()
	eng := newEngine()
	eng.EnableTelemetry(r)
	eng.AttachTimeline(obs.NewTimeline(1 << 12))
	eng.AttachDecisions(obs.NewDecisionLog(1 << 10))
	srv, err := obshttp.Serve("127.0.0.1:0", obshttp.Config{Registry: r})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	scrapes := make(chan int, 1)
	go func() {
		n := 0
		for {
			select {
			case <-stop:
				scrapes <- n
				return
			default:
			}
			resp, err := http.Get("http://" + srv.Addr() + "/metrics")
			if err != nil {
				continue
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err == nil && resp.StatusCode == http.StatusOK {
				if verr := obs.ValidateExposition(bytes.NewReader(body)); verr == nil {
					n++
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	got := metricsJSON(eng)
	close(stop)
	n := <-scrapes

	if n == 0 {
		t.Error("no successful mid-run scrape landed; the test exercised nothing")
	}
	if !bytes.Equal(got, want) {
		t.Error("run scraped over HTTP diverged from the bare reference run")
	}

	// The post-run exposition carries the engine metric families.
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"parm_mapper_mapped", "parm_engine_events", "parm_obs_spans_window_count"} {
		if !strings.Contains(buf.String(), fam) {
			t.Errorf("post-run exposition missing %s", fam)
		}
	}
}
