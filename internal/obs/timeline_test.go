package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestTimelineNil(t *testing.T) {
	var tl *Timeline
	tl.Record(TimelineEvent{Name: "x"})
	if tl.Len() != 0 || tl.Dropped() != 0 || tl.Events() != nil {
		t.Fatal("nil timeline must discard events")
	}
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil timeline trace: %v", err)
	}
}

func TestTimelineWraparound(t *testing.T) {
	tl := NewTimeline(4)
	for i := 0; i < 10; i++ {
		tl.Record(TimelineEvent{Name: "e", TS: float64(i), App: i})
	}
	if got := tl.Len(); got != 4 {
		t.Fatalf("len = %d, want 4", got)
	}
	if got := tl.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	evs := tl.Events()
	for i, ev := range evs {
		if want := float64(6 + i); ev.TS != want {
			t.Errorf("event %d ts = %g, want %g (oldest-first most-recent window)", i, ev.TS, want)
		}
	}
	// Recording after wraparound keeps overwriting the oldest slot.
	tl.Record(TimelineEvent{Name: "e", TS: 10})
	if evs := tl.Events(); evs[0].TS != 7 || evs[3].TS != 10 {
		t.Errorf("post-wrap window = [%g..%g], want [7..10]", evs[0].TS, evs[3].TS)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tl := NewTimeline(8)
	tl.Record(TimelineEvent{Name: "app", TS: 0.01, Dur: 0.25, App: 3})
	tl.Record(TimelineEvent{Name: "sample", TS: 0.02, App: -1, Arg: 5})
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
			PID   int     `json:"pid"`
			TID   int     `json:"tid"`
			Scope string  `json:"s"`
			Args  map[string]interface{}
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("traceEvents = %d, want 2", len(doc.TraceEvents))
	}
	span := doc.TraceEvents[0]
	if span.Phase != "X" || span.TS != 0.01*1e6 || span.Dur != 0.25*1e6 || span.TID != 3 {
		t.Errorf("span event = %+v, want complete X slice at 1e4µs for 2.5e5µs on tid 3", span)
	}
	if got := span.Args["app"].(float64); got != 3 {
		t.Errorf("span app arg = %v, want 3", got)
	}
	inst := doc.TraceEvents[1]
	if inst.Phase != "i" || inst.Scope != "g" || inst.Dur != 0 {
		t.Errorf("instant event = %+v, want global instant", inst)
	}
	if got := inst.Args["arg"].(float64); got != 5 {
		t.Errorf("instant arg = %v, want 5", got)
	}
}
