package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// TimelineEvent is one entry in the engine's event timeline. TS and Dur are
// simulated seconds from the engine clock — the recorder never reads the
// wall clock, so timelines are as deterministic as the run itself. A zero
// Dur marks an instantaneous event; App < 0 marks a global (non-app) event.
type TimelineEvent struct {
	Name string  // static event name ("map", "app", "drop", "sample", "ve")
	TS   float64 // simulated start time, seconds
	Dur  float64 // simulated duration, seconds (0 = instant)
	App  int     // application ID, or -1 for chip-global events
	Arg  int64   // event-specific payload (VE count, queue depth, ...)
}

// SpanID identifies one span returned by StartSpan. IDs are assigned
// sequentially from 1; the zero SpanID is invalid (it is what a nil
// timeline returns) and EndSpan ignores it.
type SpanID uint64

// Span is one hierarchical sim-clock interval: a StartSpan/EndSpan pair
// with the parent span that was open when it started. Like TimelineEvent,
// timestamps are simulated seconds — never wall clock — so span traces
// replay deterministically.
type Span struct {
	ID     SpanID
	Parent SpanID // 0 for root spans (or spans whose parent was evicted)
	Name   string
	Start  float64 // simulated start time, seconds
	End    float64 // simulated end time; == Start until EndSpan
	App    int     // application ID, or -1 for chip-global spans
	Open   bool    // true until EndSpan lands
}

// spanStat aggregates the completed spans of one name.
type spanStat struct {
	count uint64
	total float64
	max   float64
}

// SpanStat is the rollup of one span name's completed spans: how many
// ended, and the total and maximum simulated duration.
type SpanStat struct {
	Name   string
	Count  uint64
	TotalS float64
	MaxS   float64
}

// maxSpanDepth bounds the open-span parent stack. Deeper starts still
// record, with the stack top as parent, but are not tracked for nesting.
const maxSpanDepth = 64

// Timeline is a bounded ring buffer of TimelineEvents plus a bounded ring
// of hierarchical spans. When full, Record overwrites the oldest event and
// counts the loss in Dropped (spans likewise in SpanDropped), so a long run
// keeps its most recent window instead of growing without bound. A nil
// Timeline discards events and spans, which lets instrumented code record
// unconditionally.
type Timeline struct {
	mu      sync.Mutex
	buf     []TimelineEvent
	start   int // index of the oldest event
	n       int // number of live events
	dropped uint64

	spans       []Span // ring indexed by (id-1) % cap
	spanNext    uint64 // last assigned span ID
	spanDropped uint64
	stack       [maxSpanDepth]SpanID
	depth       int
	stats       map[string]*spanStat
}

// NewTimeline returns a timeline holding at most capacity events and
// capacity spans (minimum 1).
func NewTimeline(capacity int) *Timeline {
	if capacity < 1 {
		capacity = 1
	}
	return &Timeline{
		buf:   make([]TimelineEvent, capacity),
		spans: make([]Span, capacity),
		stats: make(map[string]*spanStat),
	}
}

// Record appends ev, overwriting the oldest event when the buffer is full.
//
//parm:hot
func (t *Timeline) Record(ev TimelineEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.n < len(t.buf) {
		t.buf[(t.start+t.n)%len(t.buf)] = ev
		t.n++
	} else {
		t.buf[t.start] = ev
		t.start = (t.start + 1) % len(t.buf)
		t.dropped++
	}
	t.mu.Unlock()
}

// Len returns the number of buffered events.
func (t *Timeline) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped returns how many events were overwritten after the buffer filled.
func (t *Timeline) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// StartSpan opens a hierarchical span at simulated time ts, parented to the
// innermost span still open. The returned ID is passed to EndSpan; spans
// live in a bounded ring, so on very long runs an old span may be evicted
// (counted in SpanDropped) before it ends. Safe for concurrent use, but
// parent attribution assumes the single-threaded engine loop: concurrent
// starters would interleave on one stack.
//
//parm:hot
func (t *Timeline) StartSpan(name string, ts float64, app int) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	t.spanNext++
	id := SpanID(t.spanNext)
	slot := &t.spans[int((t.spanNext-1)%uint64(len(t.spans)))]
	if slot.ID != 0 {
		t.spanDropped++ // ring full: the oldest span is overwritten
	}
	var parent SpanID
	if t.depth > 0 {
		parent = t.stack[t.depth-1]
	}
	*slot = Span{ID: id, Parent: parent, Name: name, Start: ts, End: ts, App: app, Open: true}
	if t.depth < len(t.stack) {
		t.stack[t.depth] = id
		t.depth++
	}
	t.mu.Unlock()
	return id
}

// EndSpan closes the span at simulated time ts and folds its duration into
// the per-name rollup (SpanStats). Ending a zero ID, an already-ended span,
// or a span the ring has evicted is a no-op.
//
//parm:hot
func (t *Timeline) EndSpan(id SpanID, ts float64) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	slot := &t.spans[int((uint64(id)-1)%uint64(len(t.spans)))]
	if slot.ID == id && slot.Open {
		slot.End = ts
		slot.Open = false
		st := t.stats[slot.Name]
		if st == nil {
			// First completion of this name: registration-style allocation,
			// amortized to zero on the steady state.
			st = &spanStat{}
			t.stats[slot.Name] = st
		}
		st.count++
		d := ts - slot.Start
		st.total += d
		if d > st.max {
			st.max = d
		}
	}
	if t.depth > 0 && t.stack[t.depth-1] == id {
		t.depth--
	}
	t.mu.Unlock()
}

// SpanDropped returns how many spans were overwritten after the span ring
// filled.
func (t *Timeline) SpanDropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spanDropped
}

// Spans returns the buffered spans in start (ID) order as a fresh slice.
func (t *Timeline) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.spans))
	for i := range t.spans {
		if t.spans[i].ID != 0 {
			out = append(out, t.spans[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SpanStats returns the per-name rollup of completed spans, sorted by name.
func (t *Timeline) SpanStats() []SpanStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanStat, 0, len(t.stats))
	for name, st := range t.stats {
		out = append(out, SpanStat{Name: name, Count: st.count, TotalS: st.total, MaxS: st.max})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Events returns the buffered events oldest-first as a fresh slice.
func (t *Timeline) Events() []TimelineEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TimelineEvent, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(t.start+i)%len(t.buf)]
	}
	return out
}

// traceEvent is one entry of the Chrome trace-event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Timestamps and durations are microseconds; we map simulated seconds
// directly to trace microseconds so one trace-second equals one
// simulated millisecond — a comfortable zoom range for Perfetto.
type traceEvent struct {
	Name  string                 `json:"name"`
	Phase string                 `json:"ph"`
	TS    float64                `json:"ts"`
	Dur   float64                `json:"dur,omitempty"`
	PID   int                    `json:"pid"`
	TID   int                    `json:"tid"`
	Scope string                 `json:"s,omitempty"`
	Args  map[string]interface{} `json:"args,omitempty"`
}

// traceFile is the top-level JSON object Perfetto expects.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// spanTrackPID is the trace process row carrying the hierarchical spans.
// Spans share one track: the engine records them from its single-threaded
// event loop, so the whole tree is one LIFO slice stack, and Perfetto nests
// B/E pairs per track.
const spanTrackPID = 1

// WriteChromeTrace writes the buffered events and spans as Chrome
// trace-event JSON, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Events with a duration become complete ("X") slices;
// instantaneous events become global instants ("i"). Each app gets its own
// track (tid = app ID); global events land on tid 0 of a separate process
// row. Spans render as properly nested duration ("B"/"E") pairs on the
// dedicated span process row (pid 1): children are emitted inside their
// parent's pair, so the hierarchy survives even when a whole subtree is
// instantaneous in simulated time.
func (t *Timeline) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	spans := t.Spans()
	out := traceFile{TraceEvents: make([]traceEvent, 0, len(events)+2*len(spans)), DisplayTimeUnit: "ms"}
	for _, ev := range events {
		te := traceEvent{
			Name: ev.Name,
			TS:   ev.TS * 1e6, // simulated s -> trace µs
			PID:  0,
			Args: map[string]interface{}{"arg": ev.Arg},
		}
		if ev.App >= 0 {
			te.TID = ev.App
			te.Args["app"] = ev.App
		}
		if ev.Dur > 0 {
			te.Phase = "X"
			te.Dur = ev.Dur * 1e6
		} else {
			te.Phase = "i"
			te.Scope = "g"
		}
		out.TraceEvents = append(out.TraceEvents, te)
	}
	out.TraceEvents = appendSpanEvents(out.TraceEvents, spans)
	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return fmt.Errorf("obs: marshaling trace: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("obs: writing trace: %w", err)
	}
	return nil
}

// appendSpanEvents emits the span forest as B/E pairs in depth-first order:
// B(parent), children recursively, E(parent). Emission order carries the
// nesting — trace viewers resolve same-timestamp B/E pairs by array order —
// so zero-sim-duration subtrees still display as a proper stack. Spans
// whose parent was evicted from the ring become roots; spans still open at
// export get a B with no E, which viewers extend to the end of the trace.
func appendSpanEvents(dst []traceEvent, spans []Span) []traceEvent {
	byID := make(map[SpanID]int, len(spans))
	for i := range spans {
		byID[spans[i].ID] = i
	}
	children := make(map[SpanID][]int, len(spans))
	var roots []int
	for i := range spans {
		p := spans[i].Parent
		if _, ok := byID[p]; p != 0 && ok {
			children[p] = append(children[p], i)
		} else {
			roots = append(roots, i)
		}
	}
	var emit func(i int)
	emit = func(i int) {
		sp := spans[i]
		b := traceEvent{
			Name:  sp.Name,
			Phase: "B",
			TS:    sp.Start * 1e6, // simulated s -> trace µs
			PID:   spanTrackPID,
			Args:  map[string]interface{}{"id": uint64(sp.ID)},
		}
		if sp.App >= 0 {
			b.Args["app"] = sp.App
		}
		dst = append(dst, b)
		for _, c := range children[sp.ID] {
			emit(c)
		}
		if !sp.Open {
			dst = append(dst, traceEvent{Name: sp.Name, Phase: "E", TS: sp.End * 1e6, PID: spanTrackPID})
		}
	}
	for _, r := range roots {
		emit(r)
	}
	return dst
}
