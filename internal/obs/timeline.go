package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// TimelineEvent is one entry in the engine's event timeline. TS and Dur are
// simulated seconds from the engine clock — the recorder never reads the
// wall clock, so timelines are as deterministic as the run itself. A zero
// Dur marks an instantaneous event; App < 0 marks a global (non-app) event.
type TimelineEvent struct {
	Name string  // static event name ("map", "app", "drop", "sample", "ve")
	TS   float64 // simulated start time, seconds
	Dur  float64 // simulated duration, seconds (0 = instant)
	App  int     // application ID, or -1 for chip-global events
	Arg  int64   // event-specific payload (VE count, queue depth, ...)
}

// Timeline is a bounded ring buffer of TimelineEvents. When full, Record
// overwrites the oldest event and counts the loss in Dropped, so a long run
// keeps its most recent window instead of growing without bound. A nil
// Timeline discards events, which lets instrumented code record
// unconditionally.
type Timeline struct {
	mu      sync.Mutex
	buf     []TimelineEvent
	start   int // index of the oldest event
	n       int // number of live events
	dropped uint64
}

// NewTimeline returns a timeline holding at most capacity events
// (minimum 1).
func NewTimeline(capacity int) *Timeline {
	if capacity < 1 {
		capacity = 1
	}
	return &Timeline{buf: make([]TimelineEvent, capacity)}
}

// Record appends ev, overwriting the oldest event when the buffer is full.
//
//parm:hot
func (t *Timeline) Record(ev TimelineEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.n < len(t.buf) {
		t.buf[(t.start+t.n)%len(t.buf)] = ev
		t.n++
	} else {
		t.buf[t.start] = ev
		t.start = (t.start + 1) % len(t.buf)
		t.dropped++
	}
	t.mu.Unlock()
}

// Len returns the number of buffered events.
func (t *Timeline) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped returns how many events were overwritten after the buffer filled.
func (t *Timeline) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns the buffered events oldest-first as a fresh slice.
func (t *Timeline) Events() []TimelineEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TimelineEvent, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(t.start+i)%len(t.buf)]
	}
	return out
}

// traceEvent is one entry of the Chrome trace-event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Timestamps and durations are microseconds; we map simulated seconds
// directly to trace microseconds so one trace-second equals one
// simulated millisecond — a comfortable zoom range for Perfetto.
type traceEvent struct {
	Name  string                 `json:"name"`
	Phase string                 `json:"ph"`
	TS    float64                `json:"ts"`
	Dur   float64                `json:"dur,omitempty"`
	PID   int                    `json:"pid"`
	TID   int                    `json:"tid"`
	Scope string                 `json:"s,omitempty"`
	Args  map[string]interface{} `json:"args,omitempty"`
}

// traceFile is the top-level JSON object Perfetto expects.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the buffered events as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Events with a
// duration become complete ("X") slices; instantaneous events become global
// instants ("i"). Each app gets its own track (tid = app ID); global events
// land on tid 0 of a separate process row.
func (t *Timeline) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	out := traceFile{TraceEvents: make([]traceEvent, 0, len(events)), DisplayTimeUnit: "ms"}
	for _, ev := range events {
		te := traceEvent{
			Name: ev.Name,
			TS:   ev.TS * 1e6, // simulated s -> trace µs
			PID:  0,
			Args: map[string]interface{}{"arg": ev.Arg},
		}
		if ev.App >= 0 {
			te.TID = ev.App
			te.Args["app"] = ev.App
		}
		if ev.Dur > 0 {
			te.Phase = "X"
			te.Dur = ev.Dur * 1e6
		} else {
			te.Phase = "i"
			te.Scope = "g"
		}
		out.TraceEvents = append(out.TraceEvents, te)
	}
	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return fmt.Errorf("obs: marshaling trace: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("obs: writing trace: %w", err)
	}
	return nil
}
