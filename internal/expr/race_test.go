package expr

import (
	"testing"

	"parm/internal/appmodel"
	"parm/internal/core"
)

// The runCells worker pool executes independent engine simulations on
// GOMAXPROCS goroutines which all share the package-level appmodel WCET
// cache and, per engine, the chip's PSN solve cache. Running the same cell
// grid twice must give identical metrics in input order; under -race this
// also proves the shared caches are data-race free.
func TestRunCellsConcurrentDeterministic(t *testing.T) {
	opt := Options{NumApps: 2, Seed: 9}
	cells := []cell{
		{fw: core.MustCombo("PARM", "PANR"), kind: appmodel.WorkloadMixed, gap: 0.1},
		{fw: core.MustCombo("PARM", "XY"), kind: appmodel.WorkloadComm, gap: 0.1},
		{fw: core.MustCombo("HM", "XY"), kind: appmodel.WorkloadCompute, gap: 0.1},
		{fw: core.MustCombo("HM", "PANR"), kind: appmodel.WorkloadMixed, gap: 0.1},
	}
	first, err := runCells(opt, cells)
	if err != nil {
		t.Fatal(err)
	}
	second, err := runCells(opt, cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(cells) || len(second) != len(cells) {
		t.Fatalf("result lengths %d/%d, want %d", len(first), len(second), len(cells))
	}
	for i := range cells {
		a, b := first[i], second[i]
		if a.Framework != cells[i].fw.Name {
			t.Errorf("cell %d out of order: got %s", i, a.Framework)
		}
		if a.TotalTime != b.TotalTime || a.PeakPSN != b.PeakPSN ||
			a.AvgPSN != b.AvgPSN || a.Completed != b.Completed ||
			a.TotalVEs != b.TotalVEs {
			t.Errorf("cell %d not reproducible across pool runs:\n first %+v\nsecond %+v", i, a, b)
		}
	}
}
