// Package expr reproduces every figure of the paper's evaluation (§5) on
// the simulated platform: Fig. 1 (peak PSN across technology nodes),
// Fig. 3a (peak PSN vs Vdd), Fig. 3b (task-pair interference), Fig. 6
// (total execution time), Fig. 7 (peak and average PSN), Fig. 8
// (applications completed across arrival rates), and the §4.4 router
// overhead table. Each experiment returns a report.Table whose rows are the
// series the paper plots.
package expr

import (
	"fmt"
	"runtime"

	"parm/internal/appmodel"
	"parm/internal/chip"
	"parm/internal/core"
	"parm/internal/noc"
	"parm/internal/obs"
	"parm/internal/pdn"
	"parm/internal/power"
	"parm/internal/report"
)

// Options scales the runtime experiments (Figs. 6-8).
type Options struct {
	// NumApps is the sequence length. Zero selects the paper's 20.
	NumApps int
	// Seed selects the workload sequences. The paper uses three random
	// sequences; we report one deterministic sequence per kind.
	Seed int64
	// Engine overrides the engine configuration (zero fields default).
	Engine core.Config
	// Verbose, when non-nil, receives progress lines.
	Verbose func(format string, args ...interface{})
	// Telemetry, when non-nil, is attached to every engine an experiment
	// creates. The registry is concurrency-safe, so counters aggregate
	// across the parallel cells of a sweep.
	Telemetry *obs.Registry
	// Timeline, when non-nil, receives engine events from every cell.
	// Cells run concurrently, so events from different runs interleave in
	// the buffer; attach a timeline when per-run ordering matters only for
	// single-cell invocations.
	Timeline *obs.Timeline
	// Decisions, when non-nil, receives mapper Algorithm 1 decision
	// provenance from every cell. Like Timeline, records from parallel
	// cells interleave.
	Decisions *obs.DecisionLog
}

func (o Options) withDefaults() Options {
	if o.NumApps == 0 {
		o.NumApps = 20
	}
	if o.Verbose == nil {
		o.Verbose = func(string, ...interface{}) {}
	}
	return o
}

// highLoads builds a domain fully loaded with High-activity tasks at vdd,
// unmanaged (aligned phases): the stress pattern behind Figs. 1 and 3a.
func highLoads(p power.NodeParams, vdd power.Volts, staggered bool) [pdn.DomainTiles]pdn.TileLoad {
	var occ [pdn.DomainTiles]pdn.TileOccupant
	for i := range occ {
		occ[i] = pdn.TileOccupant{
			IAvg:      p.TileCurrent(vdd, appmodel.HighCoreActivity, 0.4),
			Class:     pdn.High,
			Staggered: staggered,
		}
	}
	return pdn.BuildLoads(occ)
}

// commLoads builds a communication-intensive domain: lower core activity
// but high router utilization.
func commLoads(p power.NodeParams, vdd power.Volts) [pdn.DomainTiles]pdn.TileLoad {
	var occ [pdn.DomainTiles]pdn.TileOccupant
	for i := range occ {
		class := pdn.Low
		if i%2 == 0 {
			class = pdn.High
		}
		occ[i] = pdn.TileOccupant{
			IAvg:  p.TileCurrent(vdd, appmodel.ActivityFactor(class), 0.8),
			Class: class,
		}
	}
	return pdn.BuildLoads(occ)
}

// Fig1 reproduces Fig. 1: peak supply noise percentage, relative to the
// nominal near-threshold supply voltage, across technology nodes, for a
// fully loaded unmanaged domain.
func Fig1() (*report.Table, error) {
	t := report.NewTable("Fig 1: peak PSN (% of NTC Vdd) across technology nodes",
		"node", "vntc(V)", "peakPSN(%)", "margin(%)")
	for _, n := range power.Nodes {
		p := power.MustParams(n)
		res, err := pdn.SimulateDomain(pdn.Config{Params: p, Vdd: p.VNTC}, highLoads(p, p.VNTC, false))
		if err != nil {
			return nil, fmt.Errorf("fig1 %s: %w", n, err)
		}
		t.AddRow(n.String(), p.VNTC, res.DomainPeak()*100, pdn.VEThreshold*100)
	}
	return t, nil
}

// Fig3a reproduces Fig. 3a: peak PSN (as % of supply voltage) observed in a
// domain versus Vdd, for communication- and compute-intensive workloads.
func Fig3a() (*report.Table, error) {
	p := power.MustParams(power.Node7)
	t := report.NewTable("Fig 3a: peak PSN (%) in a domain vs Vdd (7nm)",
		"vdd(V)", "compute(%)", "comm(%)")
	for _, v := range p.VddLevels(0.1) {
		rc, err := pdn.SimulateDomain(pdn.Config{Params: p, Vdd: v}, highLoads(p, v, false))
		if err != nil {
			return nil, err
		}
		rm, err := pdn.SimulateDomain(pdn.Config{Params: p, Vdd: v}, commLoads(p, v))
		if err != nil {
			return nil, err
		}
		t.AddRow(v, rc.DomainPeak()*100, rm.DomainPeak()*100)
	}
	return t, nil
}

// Fig3b reproduces Fig. 3b: normalized PSN due to interference between
// pairs of tasks of different switching activity (High/Low), separated by
// Manhattan distances of 1 and 2 hops inside a domain. Interference is the
// relative increase of a tile's peak PSN over running its task alone,
// normalized to the worst pair (High-Low at 1 hop).
func Fig3b() (*report.Table, error) {
	p := power.MustParams(power.Node7)
	const vdd = 0.5
	cfg := pdn.Config{Params: p, Vdd: vdd}

	load := func(class pdn.Class) pdn.TileOccupant {
		return pdn.TileOccupant{
			IAvg:  p.TileCurrent(vdd, appmodel.ActivityFactor(class), 0.3),
			Class: class,
		}
	}
	solo := func(class pdn.Class, slot int) (float64, error) {
		var occ [pdn.DomainTiles]pdn.TileOccupant
		occ[slot] = load(class)
		r, err := pdn.SimulateDomain(cfg, pdn.BuildLoads(occ))
		return r.PeakPSN[slot], err
	}
	interference := func(a, b pdn.Class, sa, sb int) (float64, error) {
		var occ [pdn.DomainTiles]pdn.TileOccupant
		occ[sa], occ[sb] = load(a), load(b)
		r, err := pdn.SimulateDomain(cfg, pdn.BuildLoads(occ))
		if err != nil {
			return 0, err
		}
		soloA, err := solo(a, sa)
		if err != nil {
			return 0, err
		}
		soloB, err := solo(b, sb)
		if err != nil {
			return 0, err
		}
		relA := (r.PeakPSN[sa] - soloA) / soloA
		relB := (r.PeakPSN[sb] - soloB) / soloB
		if relB > relA {
			relA = relB
		}
		if relA < 0 {
			relA = 0
		}
		return relA, nil
	}

	type pair struct {
		name   string
		a, b   pdn.Class
		sa, sb int
	}
	pairs := []pair{
		{"High-High 1hop", pdn.High, pdn.High, 0, 1},
		{"High-Low 1hop", pdn.High, pdn.Low, 0, 1},
		{"Low-Low 1hop", pdn.Low, pdn.Low, 0, 1},
		{"High-High 2hop", pdn.High, pdn.High, 0, 3},
		{"High-Low 2hop", pdn.High, pdn.Low, 0, 3},
		{"Low-Low 2hop", pdn.Low, pdn.Low, 0, 3},
	}
	raw := make([]float64, len(pairs))
	maxV := 0.0
	for i, pr := range pairs {
		v, err := interference(pr.a, pr.b, pr.sa, pr.sb)
		if err != nil {
			return nil, err
		}
		raw[i] = v
		if v > maxV {
			maxV = v
		}
	}
	t := report.NewTable("Fig 3b: normalized PSN interference between task pairs (7nm, 0.5V)",
		"pair", "normalizedPSN")
	for i, pr := range pairs {
		norm := 0.0
		if maxV > 0 {
			norm = raw[i] / maxV
		}
		t.AddRow(pr.name, norm)
	}
	return t, nil
}

// RunMetrics executes one (framework, workload kind, arrival gap) cell and
// returns the metrics.
func RunMetrics(opt Options, fw core.Framework, kind appmodel.WorkloadKind, gap float64) (*core.Metrics, error) {
	opt = opt.withDefaults()
	node := opt.Engine.Chip.Node
	if node.Node == 0 {
		node = power.MustParams(power.Node7)
	}
	w, err := appmodel.Generate(appmodel.WorkloadConfig{
		Kind: kind, NumApps: opt.NumApps, ArrivalGap: gap, Node: node, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(opt.Engine, fw)
	if err != nil {
		return nil, err
	}
	if opt.Telemetry != nil {
		eng.EnableTelemetry(opt.Telemetry)
	}
	if opt.Timeline != nil {
		eng.AttachTimeline(opt.Timeline)
	}
	if opt.Decisions != nil {
		eng.AttachDecisions(opt.Decisions)
	}
	return eng.Run(w)
}

// cell identifies one (framework, workload, gap) simulation in a parallel
// sweep.
type cell struct {
	fw   core.Framework
	kind appmodel.WorkloadKind
	gap  float64
}

// runCells executes the cells concurrently (each simulation is independent
// and deterministic) and returns the metrics in input order. The worker
// count is bounded so a laptop is not oversubscribed.
func runCells(opt Options, cells []cell) ([]*core.Metrics, error) {
	type result struct {
		idx int
		m   *core.Metrics
		err error
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cells) {
		workers = len(cells)
	}
	jobs := make(chan int)
	results := make(chan result)
	for w := 0; w < workers; w++ {
		go func() {
			// Audited: each job is a pure function of its index, writes a
			// fresh Metrics, and is re-keyed by idx on collection, so worker
			// scheduling order cannot reach any output.
			//parm:det
			for idx := range jobs {
				c := cells[idx]
				m, err := RunMetrics(opt, c.fw, c.kind, c.gap)
				results <- result{idx: idx, m: m, err: err}
			}
		}()
	}
	go func() {
		for i := range cells {
			jobs <- i
		}
		close(jobs)
	}()
	out := make([]*core.Metrics, len(cells))
	errs := make([]error, len(cells))
	for range cells {
		r := <-results
		errs[r.idx] = r.err
		out[r.idx] = r.m
	}
	// Report the failure of the lowest-index cell, not of whichever worker
	// happened to finish first: the chosen error must not depend on
	// scheduling (detflow caught the earlier first-arrival version).
	for i, err := range errs {
		if err != nil {
			c := cells[i]
			return nil, fmt.Errorf("%s/%s/%g: %w", c.fw.Name, c.kind, c.gap, err)
		}
	}
	return out, nil
}

// Fig6and7 runs the six frameworks over the three workload kinds at the
// paper's oversubscribed arrival rate and returns the Fig. 6 table (total
// execution time) and the Fig. 7 table (peak and average PSN).
func Fig6and7(opt Options) (*report.Table, *report.Table, error) {
	opt = opt.withDefaults()
	t6 := report.NewTable(fmt.Sprintf("Fig 6: total execution time (s) of %d apps", opt.NumApps),
		"framework", "compute", "comm", "mixed")
	t7 := report.NewTable("Fig 7: peak / average PSN (%)",
		"framework", "compute-peak", "compute-avg", "comm-peak", "comm-avg", "mixed-peak", "mixed-avg")
	// Fig 6/7 measure the time to execute every application: deadlines are
	// advisory here (no drops); Fig 8 studies drops separately.
	opt.Engine.SoftDeadlines = true
	kinds := appmodel.WorkloadKinds
	fws := core.EvaluationFrameworks()
	var cells []cell
	for _, fw := range fws {
		for _, k := range kinds {
			cells = append(cells, cell{fw: fw, kind: k, gap: 0.05})
		}
	}
	ms, err := runCells(opt, cells)
	if err != nil {
		return nil, nil, err
	}
	for i, fw := range fws {
		times := make([]float64, 0, len(kinds))
		psn := make([]float64, 0, 2*len(kinds))
		for j, k := range kinds {
			m := ms[i*len(kinds)+j]
			opt.Verbose("fig6/7 %s %s: total=%.3fs peak=%.2f%% avg=%.2f%% done=%d/%d ves=%d",
				fw.Name, k, m.TotalTime, m.PeakPSN*100, m.AvgPSN*100, m.Completed, len(m.Apps), m.TotalVEs)
			times = append(times, m.TotalTime)
			psn = append(psn, m.PeakPSN*100, m.AvgPSN*100)
		}
		t6.AddRow(fw.Name, times[0], times[1], times[2])
		t7.AddRow(fw.Name, psn[0], psn[1], psn[2], psn[3], psn[4], psn[5])
	}
	return t6, t7, nil
}

// Fig8 runs the four frameworks the paper compares across arrival rates
// (0.2, 0.1, 0.05 s) and two workload kinds, reporting applications
// completed successfully.
func Fig8(opt Options) (*report.Table, error) {
	opt = opt.withDefaults()
	fws := []core.Framework{
		core.MustCombo("HM", "XY"),
		core.MustCombo("PARM", "XY"),
		core.MustCombo("PARM", "ICON"),
		core.MustCombo("PARM", "PANR"),
	}
	gaps := []float64{0.2, 0.1, 0.05}
	kinds := []appmodel.WorkloadKind{appmodel.WorkloadCompute, appmodel.WorkloadComm}
	var cells []cell
	for _, fw := range fws {
		for _, k := range kinds {
			for _, g := range gaps {
				cells = append(cells, cell{fw: fw, kind: k, gap: g})
			}
		}
	}
	ms, err := runCells(opt, cells)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(fmt.Sprintf("Fig 8: applications completed (of %d) per arrival rate", opt.NumApps),
		"framework", "workload", "0.2s", "0.1s", "0.05s")
	idx := 0
	for _, fw := range fws {
		for _, k := range kinds {
			var done []int
			for _, g := range gaps {
				m := ms[idx]
				idx++
				opt.Verbose("fig8 %s %s gap=%.2fs: done=%d/%d", fw.Name, k, g, m.Completed, len(m.Apps))
				done = append(done, m.Completed)
			}
			t.AddRow(fw.Name, k.String(), done[0], done[1], done[2])
		}
	}
	return t, nil
}

// OverheadTable reproduces the §4.4 router overhead accounting.
func OverheadTable() *report.Table {
	o := noc.PANROverhead()
	t := report.NewTable("PANR router overhead at 7nm (paper §4.4)",
		"quantity", "value")
	t.AddRow("register bits per router", o.RegisterBits)
	t.AddRow("64-bit comparators per router", o.ComparatorCount)
	t.AddRow("added power (mW)", o.PowerMilliwatts)
	t.AddRow("added power (%)", o.PowerPercent)
	t.AddRow("added area (um^2)", o.AreaUm2)
	t.AddRow("added area (%)", o.AreaPercent)
	t.AddRow("sensor network area (um^2)", o.SensorNetworkAreaUm2)
	t.AddRow("hop selection latency (cycles, masked)", o.HopSelectionCycles)
	return t
}

// DefaultChipConfig returns the paper's platform configuration (§5.1):
// 10x6 mesh at 7nm, DsPB 65 W.
func DefaultChipConfig() chip.Config {
	return chip.Config{Width: 10, Height: 6, Node: power.MustParams(power.Node7), DsPB: 65}
}
