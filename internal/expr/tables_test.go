package expr

import (
	"strconv"
	"testing"
)

// The dark-silicon table must show the paper's premise: substantial dark
// fraction at nominal voltage, none near threshold.
func TestDarkSiliconTableShape(t *testing.T) {
	tbl := DarkSiliconTable()
	if len(tbl.Rows) != 5 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	first := tbl.Rows[0]
	last := tbl.Rows[len(tbl.Rows)-1]
	darkNTC, err := strconv.ParseFloat(first[4], 64)
	if err != nil {
		t.Fatal(err)
	}
	darkNom, err := strconv.ParseFloat(last[4], 64)
	if err != nil {
		t.Fatal(err)
	}
	if darkNTC != 0 {
		t.Errorf("dark fraction at NTC = %g%%, want 0", darkNTC)
	}
	if darkNom < 30 {
		t.Errorf("dark fraction at nominal = %g%%, want substantial", darkNom)
	}
}

func TestBenchmarkProfileTable(t *testing.T) {
	tbl := BenchmarkProfileTable()
	if len(tbl.Rows) != 13 {
		t.Fatalf("%d rows, want 13 benchmarks", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		w32, err := strconv.ParseFloat(row[2], 64)
		if err != nil || w32 <= 0 {
			t.Errorf("%s: bad wcet %q", row[0], row[2])
		}
		if row[1] != "compute" && row[1] != "comm" {
			t.Errorf("%s: bad class %q", row[0], row[1])
		}
	}
}
