package expr

import (
	"parm/internal/appmodel"
	"parm/internal/pdn"
	"parm/internal/power"
	"parm/internal/report"
)

// DarkSiliconTable quantifies the platform's dark-silicon constraint
// (paper §1-§3): how many of the 60 tiles can be lit at each supply
// voltage under the 65 W budget. At nominal voltage roughly half the chip
// must stay dark; near threshold everything fits — the headroom PARM
// spends on extra parallelism.
func DarkSiliconTable() *report.Table {
	p := power.MustParams(power.Node7)
	t := report.NewTable("Dark silicon at 7nm: tiles lit under the 65 W budget",
		"vdd(V)", "f(GHz)", "tilePower(W)", "litTiles(of 60)", "darkFraction(%)")
	for _, v := range p.VddLevels(0.1) {
		tp := p.TilePower(v, appmodel.HighCoreActivity, 0.4)
		lit := int(65 / tp)
		if lit > 60 {
			lit = 60
		}
		t.AddRow(v, p.Frequency(v)/1e9, tp, lit, float64(60-lit)/60*100)
	}
	return t
}

// BenchmarkProfileTable dumps the offline profile data the runtime
// consumes (paper §5.1's workload characterization): per benchmark, the
// class, WCET at two reference operating points, the DoP-32 power at NTC,
// and the total communication volume.
func BenchmarkProfileTable() *report.Table {
	p := power.MustParams(power.Node7)
	t := report.NewTable("Benchmark profiles (7nm)",
		"benchmark", "class", "wcet(0.4V,32)ms", "wcet(0.8V,16)ms", "power(0.4V,32)W", "commTotal(MB)", "highTasks(32)")
	for _, b := range appmodel.Benchmarks() {
		g := b.Graph(32)
		high := 0
		for _, task := range g.Tasks {
			if task.Activity == pdn.High {
				high++
			}
		}
		t.AddRow(
			b.Name,
			b.Kind.String(),
			b.WCETEstimate(p, 0.4, 32)*1e3,
			b.WCETEstimate(p, 0.8, 16)*1e3,
			b.PowerEstimate(p, 0.4, 32),
			b.CommMBTotal,
			high,
		)
	}
	return t
}
