package expr

import (
	"strconv"
	"strings"
	"testing"

	"parm/internal/appmodel"
	"parm/internal/core"
	"parm/internal/pdn"
)

func cellVal(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("non-numeric cell %q", s)
	}
	return v
}

// Fig 1: one row per technology node, peak PSN strictly increasing, with
// only the sub-10nm nodes above the 5% margin.
func TestFig1Shape(t *testing.T) {
	tbl, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(tbl.Rows))
	}
	prev := 0.0
	for i, row := range tbl.Rows {
		peak := cellVal(t, row[2])
		if peak <= prev {
			t.Errorf("row %d (%s): peak %g not increasing", i, row[0], peak)
		}
		prev = peak
	}
	if first := cellVal(t, tbl.Rows[0][2]); first >= 5 {
		t.Errorf("45nm already above margin: %g%%", first)
	}
	if last := cellVal(t, tbl.Rows[5][2]); last <= 5 {
		t.Errorf("7nm below margin: %g%%", last)
	}
}

// Fig 3a: peak PSN grows with Vdd for both workload types.
func TestFig3aShape(t *testing.T) {
	tbl, err := Fig3a()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("%d rows, want 5 Vdd levels", len(tbl.Rows))
	}
	prevC, prevM := 0.0, 0.0
	for _, row := range tbl.Rows {
		c, m := cellVal(t, row[1]), cellVal(t, row[2])
		if c <= prevC || m <= prevM {
			t.Errorf("PSN not increasing at vdd=%s: compute %g comm %g", row[0], c, m)
		}
		prevC, prevM = c, m
	}
}

// Fig 3b: High-Low at 1 hop is the worst pair (normalized 1.0); its 2-hop
// variant interferes less; High-High and Low-Low interfere less than
// High-Low.
func TestFig3bShape(t *testing.T) {
	tbl, err := Fig3b()
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, row := range tbl.Rows {
		vals[row[0]] = cellVal(t, row[1])
	}
	if vals["High-Low 1hop"] != 1 {
		t.Errorf("High-Low 1hop = %g, want 1 (the normalization reference)", vals["High-Low 1hop"])
	}
	if vals["High-High 1hop"] >= vals["High-Low 1hop"] {
		t.Error("High-High interferes as much as High-Low")
	}
	if vals["Low-Low 1hop"] >= vals["High-Low 1hop"] {
		t.Error("Low-Low interferes as much as High-Low")
	}
	if vals["High-Low 2hop"] >= vals["High-Low 1hop"] {
		t.Error("2-hop High-Low not below 1-hop")
	}
}

// A scaled-down Fig 6/7 run: tables have one row per framework, PARM+PANR
// beats HM+XY on every workload, and PARM's PSN is lower.
func TestFig6and7SmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime experiment")
	}
	opt := Options{NumApps: 8, Seed: 11}
	t6, t7, err := Fig6and7(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(t6.Rows) != 6 || len(t7.Rows) != 6 {
		t.Fatalf("rows: fig6=%d fig7=%d", len(t6.Rows), len(t7.Rows))
	}
	row := func(tbl [][]string, name string) []string {
		for _, r := range tbl {
			if r[0] == name {
				return r
			}
		}
		t.Fatalf("row %s missing", name)
		return nil
	}
	hm6 := row(t6.Rows, "HM+XY")
	pp6 := row(t6.Rows, "PARM+PANR")
	for col := 1; col <= 3; col++ {
		if cellVal(t, pp6[col]) >= cellVal(t, hm6[col]) {
			t.Errorf("Fig6 col %d: PARM+PANR %s not below HM+XY %s", col, pp6[col], hm6[col])
		}
	}
	hm7 := row(t7.Rows, "HM+XY")
	pp7 := row(t7.Rows, "PARM+PANR")
	for col := 1; col <= 6; col++ {
		if cellVal(t, pp7[col]) >= cellVal(t, hm7[col]) {
			t.Errorf("Fig7 col %d: PARM+PANR PSN %s not below HM+XY %s", col, pp7[col], hm7[col])
		}
	}
}

// A scaled-down Fig 8 run: completion counts never exceed the sequence
// length and never increase as arrivals accelerate.
func TestFig8SmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime experiment")
	}
	opt := Options{NumApps: 8, Seed: 11}
	tbl, err := Fig8(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 { // 4 frameworks x 2 workloads
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		a, b, c := cellVal(t, row[2]), cellVal(t, row[3]), cellVal(t, row[4])
		for _, v := range []float64{a, b, c} {
			if v < 0 || v > 8 {
				t.Errorf("%s/%s: completion %g out of range", row[0], row[1], v)
			}
		}
		if a < c {
			t.Errorf("%s/%s: faster arrivals completed more (%g < %g)", row[0], row[1], a, c)
		}
	}
}

func TestOverheadTable(t *testing.T) {
	tbl := OverheadTable()
	if len(tbl.Rows) != 8 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	if !strings.Contains(tbl.Title, "7nm") {
		t.Error("overhead table title missing node")
	}
}

func TestRunMetricsErrors(t *testing.T) {
	opt := Options{NumApps: -1}
	if _, err := RunMetrics(opt, core.MustCombo("PARM", "XY"), appmodel.WorkloadMixed, 0.1); err == nil {
		t.Error("negative app count accepted")
	}
}

func TestDefaultChipConfig(t *testing.T) {
	cfg := DefaultChipConfig()
	if cfg.Width != 10 || cfg.Height != 6 || cfg.DsPB != 65 {
		t.Errorf("config = %+v", cfg)
	}
}

// The Fig 1 stress load exceeds the VE threshold at 7nm NTC while the
// managed (staggered) equivalent stays below it — the central premise that
// runtime management pays off.
func TestManagementPremise(t *testing.T) {
	p := DefaultChipConfig().Node
	unmanaged, err := pdn.SimulateDomain(pdn.Config{Params: p, Vdd: p.VNTC}, highLoads(p, p.VNTC, false))
	if err != nil {
		t.Fatal(err)
	}
	managed, err := pdn.SimulateDomain(pdn.Config{Params: p, Vdd: p.VNTC}, highLoads(p, p.VNTC, true))
	if err != nil {
		t.Fatal(err)
	}
	if unmanaged.DomainPeak() <= pdn.VEThreshold {
		t.Errorf("unmanaged peak %g below threshold; nothing to manage", unmanaged.DomainPeak())
	}
	if managed.DomainPeak() >= pdn.VEThreshold {
		t.Errorf("managed peak %g above threshold; management insufficient", managed.DomainPeak())
	}
}
