package expr

import (
	"fmt"
	"os"
	"testing"
)

// TestFullFigures runs the paper-scale experiments (20 apps). Skipped in
// -short mode; this is the data-generation path of cmd/experiments.
func TestFullFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("full figures take minutes")
	}
	opt := Options{NumApps: 20, Seed: 42, Verbose: func(f string, a ...interface{}) { fmt.Fprintf(os.Stderr, f+"\n", a...) }}
	t6, t7, err := Fig6and7(opt)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(t6)
	fmt.Println(t7)
	t8, err := Fig8(opt)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(t8)
}
