package reliability

import (
	"bytes"
	"math"
	"testing"

	"parm/internal/appmodel"
	"parm/internal/obs"
)

func TestWilson(t *testing.T) {
	// Degenerate inputs.
	if iv := Wilson(0, 0, z95); iv != (Interval{}) {
		t.Errorf("Wilson(0,0) = %+v", iv)
	}
	// Known value: 8/10 at 95% is approximately [0.490, 0.943].
	iv := Wilson(8, 10, z95)
	if math.Abs(iv.P-0.8) > 1e-12 {
		t.Errorf("p = %g", iv.P)
	}
	if math.Abs(iv.Lo-0.4902) > 5e-4 || math.Abs(iv.Hi-0.9433) > 5e-4 {
		t.Errorf("interval [%g, %g], want ~[0.4902, 0.9433]", iv.Lo, iv.Hi)
	}
	// Bounds stay in [0,1] even at the extremes, where the normal
	// approximation would escape.
	for _, tc := range []struct{ s, n int }{{0, 5}, {5, 5}, {1, 1}, {0, 1}} {
		iv := Wilson(tc.s, tc.n, z95)
		if iv.Lo < 0 || iv.Hi > 1 || iv.Lo > iv.P || iv.Hi < iv.P {
			t.Errorf("Wilson(%d,%d) = %+v out of order", tc.s, tc.n, iv)
		}
	}
	// More trials tighten the interval.
	narrow := Wilson(80, 100, z95)
	if narrow.Hi-narrow.Lo >= iv.Hi-iv.Lo {
		t.Error("interval did not tighten with more trials")
	}
}

func smallCampaign(workers int) Config {
	return Config{
		Schemes:    []string{"XY", "PANR"},
		Trials:     2,
		NumApps:    4,
		ArrivalGap: 0.04,
		Kind:       appmodel.WorkloadCompute,
		Seed:       11,
		Workers:    workers,
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	enc := func(workers int) []byte {
		res, err := Run(smallCampaign(workers))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := enc(1)
	if rerun := enc(1); !bytes.Equal(rerun, base) {
		t.Error("two serial campaigns diverged")
	}
	if par := enc(4); !bytes.Equal(par, base) {
		t.Error("4-worker campaign diverged from the serial reference")
	}
}

func TestRunAggregates(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := smallCampaign(2)
	cfg.Telemetry = reg
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schemes) != 2 {
		t.Fatalf("%d schemes", len(res.Schemes))
	}
	for _, s := range res.Schemes {
		if s.Trials != 2 {
			t.Errorf("%s trials = %d", s.Scheme, s.Trials)
		}
		if s.TotalApps != 2*4 {
			t.Errorf("%s total apps = %d, want 8", s.Scheme, s.TotalApps)
		}
		if s.Retransmitted+s.Lost != s.Dropped {
			t.Errorf("%s retransmitted %d + lost %d != dropped %d",
				s.Scheme, s.Retransmitted, s.Lost, s.Dropped)
		}
		for _, iv := range []Interval{s.DeliveryRate, s.RecoveryRate, s.DeadlineMissRate} {
			if iv.Lo < 0 || iv.Hi > 1 || iv.P < iv.Lo || iv.P > iv.Hi {
				t.Errorf("%s interval %+v out of order", s.Scheme, iv)
			}
		}
		if s.TotalRollbacks != s.TotalVEs {
			t.Errorf("%s rollbacks %d != VEs %d", s.Scheme, s.TotalRollbacks, s.TotalVEs)
		}
	}
	tbl := res.Table()
	if len(tbl.Rows) != 2 {
		t.Errorf("table has %d rows", len(tbl.Rows))
	}
	if got := reg.Counter("reliability/trials").Value(); got != 4 {
		t.Errorf("reliability/trials = %d, want 4", got)
	}
}

func TestRunRejectsUnknownScheme(t *testing.T) {
	cfg := smallCampaign(1)
	cfg.Schemes = []string{"NoSuchScheme"}
	if _, err := Run(cfg); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestDefaultSchemes(t *testing.T) {
	c := Config{}.withDefaults()
	if len(c.Schemes) != 4 {
		t.Fatalf("%d default schemes", len(c.Schemes))
	}
	want := []string{"XY", "WestFirst", "ICON", "PANR"}
	for i, s := range want {
		if c.Schemes[i] != s {
			t.Errorf("scheme %d = %s, want %s", i, c.Schemes[i], s)
		}
	}
	if c.Mapper != "PARM" || c.Trials != 20 || c.Seed != 1 {
		t.Errorf("defaults: %+v", c)
	}
}
