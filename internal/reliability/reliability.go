// Package reliability is a Monte-Carlo harness over the engine's
// fault-injection machinery: it replays the same workload sequences under
// many seeded fault plans for each of the four routing schemes evaluated in
// the paper (deterministic XY, adaptive west-first, ICON and PANR) and
// reports per-scheme packet delivery rates, drop-recovery rates and
// application deadline-miss probabilities with Wilson 95% confidence
// intervals. Every trial runs the engine in VERollback mode with NoC packet
// fault injection (core.Config), so checkpoint/rollback costs and
// noise-induced packet losses both vary across trials while staying a
// deterministic function of the campaign seed: the same Config yields
// byte-identical Result JSON on every execution, regardless of worker
// count.
package reliability

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"

	"parm/internal/appmodel"
	"parm/internal/core"
	"parm/internal/obs"
	"parm/internal/power"
	"parm/internal/report"
)

// DefaultSchemes are the four routing schemes of the paper's evaluation.
var DefaultSchemes = []string{"XY", "WestFirst", "ICON", "PANR"}

// Config parameterizes a reliability campaign.
type Config struct {
	// Schemes lists the routing schemes to compare. Nil selects the four
	// evaluated ones.
	Schemes []string
	// Mapper names the mapping heuristic every scheme runs under. Empty
	// selects "PARM".
	Mapper string
	// Trials is the number of Monte-Carlo fault plans per scheme. Zero
	// selects 20. Trial t uses the same workload and fault seeds across
	// schemes, so per-scheme differences are paired.
	Trials int
	// NumApps and ArrivalGap shape each trial's workload. Zero selects 8
	// applications every 0.05 s (oversubscribed, so the PDN is stressed).
	NumApps    int
	ArrivalGap float64
	// Kind selects the benchmark pool (zero value is compute-intensive).
	Kind appmodel.WorkloadKind
	// Seed is the campaign seed. Zero selects 1.
	Seed int64
	// DropScale and DropCap parameterize the NoC packet-drop model (zero
	// selects the noc defaults, 0.5 and 0.75).
	DropScale, DropCap float64
	// Engine is the base engine configuration. The campaign overrides the
	// fault-injection knobs (VEModel, FaultSeed, NoCFaultInjection) and
	// forces SoftDeadlines, so deadline misses are observed rather than
	// turned into drops.
	Engine core.Config
	// Workers bounds the parallel trial runs. Zero selects GOMAXPROCS.
	// Results are aggregated in input order, so the worker count never
	// changes the output.
	Workers int
	// Telemetry, when non-nil, receives the campaign counters
	// (reliability/trials, reliability/dropped_packets) alongside each
	// engine's own instrumented metrics.
	Telemetry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Schemes == nil {
		c.Schemes = DefaultSchemes
	}
	if c.Mapper == "" {
		c.Mapper = "PARM"
	}
	if c.Trials <= 0 {
		c.Trials = 20
	}
	if c.NumApps <= 0 {
		c.NumApps = 8
	}
	if c.ArrivalGap <= 0 {
		c.ArrivalGap = 0.05
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Interval is a proportion with its Wilson score confidence bounds.
type Interval struct {
	P  float64 `json:"p"`
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// Wilson returns the Wilson score interval for successes out of total at
// critical value z (1.96 for 95%). Unlike the normal approximation it stays
// inside [0,1] and behaves at proportions near 0 and 1, where reliability
// rates live. A zero total yields the zero interval.
func Wilson(successes, total int, z float64) Interval {
	if total <= 0 {
		return Interval{}
	}
	n := float64(total)
	p := float64(successes) / n
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z*z/(4*n*n))
	lo, hi := center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Interval{P: p, Lo: lo, Hi: hi}
}

// SchemeStats aggregates one routing scheme's trials.
type SchemeStats struct {
	Scheme string `json:"scheme"`
	Trials int    `json:"trials"`

	// Packet counters summed over all trials' measurement windows.
	Delivered     int `json:"delivered"`
	Dropped       int `json:"dropped"`
	Retransmitted int `json:"retransmitted"`
	Recovered     int `json:"recovered"`
	Lost          int `json:"lost"`

	// Application counters summed over all trials.
	TotalApps     int `json:"total_apps"`
	CompletedApps int `json:"completed_apps"`
	DeadlinesMet  int `json:"deadlines_met"`

	// Rollback accounting summed over all trials.
	TotalVEs            int     `json:"total_ves"`
	TotalRollbacks      int     `json:"total_rollbacks"`
	TotalRollbackDelayS float64 `json:"total_rollback_delay_s"`

	// DeliveryRate is delivered/(delivered+lost): the fraction of packets
	// that ultimately arrived intact, retransmissions included.
	DeliveryRate Interval `json:"delivery_rate"`
	// RecoveryRate is recovered/dropped: the fraction of noise-corrupted
	// packets whose retransmission made it through.
	RecoveryRate Interval `json:"recovery_rate"`
	// DeadlineMissRate is the per-application probability of missing the
	// deadline (unfinished applications count as misses).
	DeadlineMissRate Interval `json:"deadline_miss_rate"`
}

// Result is one campaign's outcome, schemes in configuration order.
type Result struct {
	Mapper  string        `json:"mapper"`
	Trials  int           `json:"trials"`
	NumApps int           `json:"num_apps"`
	Seed    int64         `json:"seed"`
	Schemes []SchemeStats `json:"schemes"`
}

// z95 is the 95% two-sided normal critical value used for every interval.
const z95 = 1.96

// trialSeeds derives the workload and fault seeds of trial t. The strides
// are primes so the two streams never collide across trials; both depend
// only on (campaign seed, trial), never on the scheme, keeping per-scheme
// comparisons paired.
func (c Config) trialSeeds(t int) (workload, fault int64) {
	return c.Seed + int64(t)*7919, c.Seed + int64(t)*104729 + 13
}

// Run executes the campaign: Trials × len(Schemes) independent engine runs,
// each with its own seeded fault plan and packet-drop model, aggregated per
// scheme in input order.
func Run(c Config) (*Result, error) {
	c = c.withDefaults()
	var trialsCtr, droppedCtr *obs.Counter
	if c.Telemetry != nil {
		trialsCtr = c.Telemetry.Counter("reliability/trials")
		droppedCtr = c.Telemetry.Counter("reliability/dropped_packets")
	}

	node := c.Engine.Chip.Node
	if node.Node == 0 {
		node = power.MustParams(power.Node7)
	}

	type job struct{ scheme, trial int }
	jobs := make([]job, 0, len(c.Schemes)*c.Trials)
	for s := range c.Schemes {
		for t := 0; t < c.Trials; t++ {
			jobs = append(jobs, job{scheme: s, trial: t})
		}
	}

	runTrial := func(j job) (*core.Metrics, error) {
		wSeed, fSeed := c.trialSeeds(j.trial)
		w, err := appmodel.Generate(appmodel.WorkloadConfig{
			Kind: c.Kind, NumApps: c.NumApps, ArrivalGap: c.ArrivalGap,
			Node: node, Seed: wSeed,
		})
		if err != nil {
			return nil, err
		}
		fw, err := core.Combo(c.Mapper, c.Schemes[j.scheme])
		if err != nil {
			return nil, err
		}
		cfg := c.Engine
		cfg.SoftDeadlines = true
		cfg.VEModel = core.VERollback
		cfg.FaultSeed = fSeed
		cfg.NoCFaultInjection = true // forces DisableNoCCache
		cfg.NoCDropScale = c.DropScale
		cfg.NoCDropCap = c.DropCap
		eng, err := core.NewEngine(cfg, fw)
		if err != nil {
			return nil, err
		}
		if c.Telemetry != nil {
			eng.EnableTelemetry(c.Telemetry)
		}
		return eng.Run(w)
	}

	type outcome struct {
		m   *core.Metrics
		err error
	}
	results := make([]outcome, len(jobs))
	sem := make(chan struct{}, c.Workers)
	done := make(chan int)
	for i := range jobs {
		go func(i int) {
			sem <- struct{}{}
			m, err := runTrial(jobs[i])
			results[i] = outcome{m: m, err: err}
			<-sem
			done <- i
		}(i)
	}
	for range jobs {
		<-done
	}

	res := &Result{Mapper: c.Mapper, Trials: c.Trials, NumApps: c.NumApps, Seed: c.Seed}
	for s, scheme := range c.Schemes {
		st := SchemeStats{Scheme: scheme, Trials: c.Trials}
		for t := 0; t < c.Trials; t++ {
			o := results[s*c.Trials+t]
			if o.err != nil {
				return nil, fmt.Errorf("reliability %s trial %d: %w", scheme, t, o.err)
			}
			m := o.m
			trialsCtr.Inc()
			if f := m.NoCFaults; f != nil {
				st.Delivered += f.Delivered
				st.Dropped += f.Dropped
				st.Retransmitted += f.Retransmitted
				st.Recovered += f.Recovered
				st.Lost += f.Lost
				droppedCtr.Add(uint64(f.Dropped))
			}
			st.TotalApps += len(m.Apps)
			st.CompletedApps += m.Completed
			for _, a := range m.Apps {
				if a.State == core.StateCompleted && a.DeadlineMet {
					st.DeadlinesMet++
				}
			}
			st.TotalVEs += m.TotalVEs
			st.TotalRollbacks += m.TotalRollbacks
			st.TotalRollbackDelayS += m.TotalRollbackDelayS
		}
		st.DeliveryRate = Wilson(st.Delivered, st.Delivered+st.Lost, z95)
		st.RecoveryRate = Wilson(st.Recovered, st.Dropped, z95)
		st.DeadlineMissRate = Wilson(st.TotalApps-st.DeadlinesMet, st.TotalApps, z95)
		res.Schemes = append(res.Schemes, st)
	}
	return res, nil
}

// Table renders the campaign as the experiments report table.
func (r *Result) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Reliability: %d seeded fault trials per scheme, %d apps, 95%% Wilson CI",
			r.Trials, r.NumApps),
		"scheme", "delivery", "dlo", "dhi", "recovery", "rlo", "rhi",
		"miss", "mlo", "mhi", "rollbacks", "rbDelay(s)")
	for _, s := range r.Schemes {
		t.AddRow(s.Scheme,
			s.DeliveryRate.P, s.DeliveryRate.Lo, s.DeliveryRate.Hi,
			s.RecoveryRate.P, s.RecoveryRate.Lo, s.RecoveryRate.Hi,
			s.DeadlineMissRate.P, s.DeadlineMissRate.Lo, s.DeadlineMissRate.Hi,
			s.TotalRollbacks, s.TotalRollbackDelayS)
	}
	return t
}

// WriteJSON emits the result as indented JSON. The document is a pure
// function of the Config, so byte-comparing two executions is a valid
// determinism check (the CI reliability smoke job does exactly that).
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
