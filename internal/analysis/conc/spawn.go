package conc

import (
	"go/ast"
	"go/token"
	"go/types"

	"parm/internal/analysis/callgraph"
)

// engine is one whole-program run.
type engine struct {
	g        *callgraph.Graph
	cfg      Config
	progPkgs map[string]bool

	// sites lists every spawn site in deterministic (package, position)
	// discovery order.
	sites []*spawnSite
	// spawnTargets maps a function to the sites that spawn it.
	spawnTargets map[*callgraph.Node][]*spawnSite
	// gctx is the goroutine-reachability context: the spawn sites each
	// function may execute under.
	gctx map[*callgraph.Node]map[*spawnSite]bool

	// locs canonicalizes shared locations by declaration position.
	locs map[token.Pos]*Loc
	// varLoc maps a variable's declaration position to its shared location:
	// captured variables and the roots of values passed into goroutines.
	varLoc map[token.Pos]*Loc
	// escRoot marks objects whose fields and elements are shared (the value
	// they hold flows into a goroutine).
	escRoot map[token.Pos]bool
	// alias maps a spawned function's parameter to the location of the
	// caller value it binds (go f(&x): f's p aliases x).
	alias map[token.Pos]*Loc

	units map[*callgraph.Node]*unit
	// unitList orders units deterministically (graph node order).
	unitList []*unit
	sums     map[*callgraph.Node]summary
	changed  bool
}

// spawnSite is one goroutine creation point: a `go` statement, or a call of
// a spawn wrapper with a concrete function argument.
type spawnSite struct {
	// at anchors the site (the GoStmt or the wrapper CallExpr).
	at ast.Node
	// owner is the function containing the site.
	owner *callgraph.Node
	// targets are the functions the site may start.
	targets []*callgraph.Node
	// wgDone holds the sync.WaitGroup objects (by declaration position) the
	// spawned body calls Done on: Wait on one is a join.
	wgDone map[token.Pos]bool
	// sends holds the channel objects the body sends on or closes: a
	// receive from one is a join.
	sends map[token.Pos]bool
	// multi marks sites that can run more than one goroutine instance at
	// once: the `go` sits in a loop, or the spawning function is itself
	// goroutine-reachable.
	multi bool
}

func newEngine(g *callgraph.Graph, cfg Config) *engine {
	e := &engine{
		g:            g,
		cfg:          cfg,
		progPkgs:     make(map[string]bool, len(g.Packages)),
		spawnTargets: make(map[*callgraph.Node][]*spawnSite),
		gctx:         make(map[*callgraph.Node]map[*spawnSite]bool),
		locs:         make(map[token.Pos]*Loc),
		varLoc:       make(map[token.Pos]*Loc),
		escRoot:      make(map[token.Pos]bool),
		alias:        make(map[token.Pos]*Loc),
		units:        make(map[*callgraph.Node]*unit),
		sums:         make(map[*callgraph.Node]summary),
	}
	for _, p := range g.Packages {
		e.progPkgs[p.Path] = true
	}
	return e
}

// findSpawns discovers spawn sites — `go` statements and spawn-wrapper
// calls — their targets, and their join primitives, then computes the
// goroutine-reachability contexts.
func (e *engine) findSpawns() {
	// Wrapper detection first: a function that go-calls one of its own
	// func-typed parameters spawns its argument.
	wrappers := e.findWrappers()

	for _, n := range e.g.Nodes {
		body := n.Body()
		if body == nil || n.Lit != nil {
			// Literal bodies are scanned through their enclosing declaration
			// below, so a site's owner is always the declared function whose
			// CFG region contains it... except literals themselves spawning:
			// those GoStmts belong to the literal's own execution.
			continue
		}
		e.scanSpawns(n, body)
	}
	// Literals spawn too (a goroutine body that launches more goroutines).
	for _, n := range e.g.Nodes {
		if n.Lit != nil {
			e.scanSpawns(n, n.Lit.Body)
		}
	}
	e.applyWrapperSites(wrappers)

	// Goroutine reachability: seed each target with its sites, propagate to
	// callees over Static/Interface/Lit edges.
	work := make([]*callgraph.Node, 0, len(e.spawnTargets))
	for _, s := range e.sites {
		for _, t := range s.targets {
			if e.addGctx(t, s) {
				work = append(work, t)
			}
		}
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, edge := range n.Out {
			if edge.Kind == callgraph.Ref {
				continue
			}
			grew := false
			for s := range e.gctx[n] {
				if e.addGctx(edge.Callee, s) {
					grew = true
				}
			}
			if grew {
				work = append(work, edge.Callee)
			}
		}
	}
}

func (e *engine) addGctx(n *callgraph.Node, s *spawnSite) bool {
	m := e.gctx[n]
	if m == nil {
		m = make(map[*spawnSite]bool)
		e.gctx[n] = m
	}
	if m[s] {
		return false
	}
	m[s] = true
	return true
}

// scanSpawns walks one function body for GoStmts, attributing each to
// owner. Nested literal bodies are skipped — they are other nodes' regions.
func (e *engine) scanSpawns(owner *callgraph.Node, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Literal bodies are scanned as their own nodes; only the
			// region directly owned by this node is walked here.
			return false
		case *ast.GoStmt:
			e.addGoSite(owner, n)
		}
		return true
	})
}

// addGoSite records one `go` statement as a spawn site. A dynamic go-call
// (func-typed variable) yields no targets — no body to attribute — but the
// site still opens a concurrent region in the spawner.
func (e *engine) addGoSite(owner *callgraph.Node, g *ast.GoStmt) {
	s := &spawnSite{at: g, owner: owner}
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if t := e.g.NodeOfLit(fun); t != nil {
			s.targets = append(s.targets, t)
		}
	default:
		for _, t := range e.g.CalleesAt(g.Call) {
			s.targets = append(s.targets, t)
		}
	}
	e.scanJoins(s)
	e.translateJoins(owner.Pkg.Info, s, g.Call)
	e.sites = append(e.sites, s)
	for _, t := range s.targets {
		e.spawnTargets[t] = append(e.spawnTargets[t], s)
	}
}

// translateJoins maps join primitives recorded under a declared target's
// parameter objects (go worker(&wg, done): Done and sends name the params)
// back to the spawner's argument roots, so the spawner's wg.Wait() or
// <-done matches them.
func (e *engine) translateJoins(info *types.Info, s *spawnSite, call *ast.CallExpr) {
	for _, t := range s.targets {
		if t.Decl == nil {
			continue
		}
		params := paramObjects(t.Pkg.Info, t.Decl)
		for i, arg := range call.Args {
			if i >= len(params) || params[i] == nil {
				continue
			}
			root := refRoot(info, arg)
			if root == nil {
				continue
			}
			if s.wgDone[params[i].Pos()] {
				s.wgDone[root.Pos()] = true
			}
			if s.sends[params[i].Pos()] {
				s.sends[root.Pos()] = true
			}
		}
	}
}

// scanJoins records the WaitGroups each target calls Done on and the
// channels it sends on or closes: the site's join primitives.
func (e *engine) scanJoins(s *spawnSite) {
	s.wgDone = make(map[token.Pos]bool)
	s.sends = make(map[token.Pos]bool)
	for _, t := range s.targets {
		body := t.Body()
		if body == nil {
			continue
		}
		info := t.Pkg.Info
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				if obj := refRoot(info, n.Chan); obj != nil {
					s.sends[obj.Pos()] = true
				}
			case *ast.CallExpr:
				switch fun := ast.Unparen(n.Fun).(type) {
				case *ast.Ident:
					if b, ok := info.Uses[fun].(*types.Builtin); ok && b.Name() == "close" && len(n.Args) == 1 {
						if obj := refRoot(info, n.Args[0]); obj != nil {
							s.sends[obj.Pos()] = true
						}
					}
				case *ast.SelectorExpr:
					if fun.Sel.Name != "Done" {
						return true
					}
					if tv, ok := info.Types[fun.X]; ok && isSyncKind(tv.Type, "WaitGroup") {
						if obj := selObject(info, fun.X); obj != nil {
							s.wgDone[obj.Pos()] = true
						}
					}
				}
			}
			return true
		})
	}
}

// wrapper is one spawn-wrapper function: calling it go-runs the argument at
// the given parameter indexes.
type wrapper struct {
	node   *callgraph.Node
	params map[int]bool
}

// findWrappers locates functions that `go`-call one of their own func-typed
// parameters.
func (e *engine) findWrappers() map[*callgraph.Node]*wrapper {
	out := make(map[*callgraph.Node]*wrapper)
	for _, n := range e.g.Nodes {
		if n.Decl == nil || n.Decl.Body == nil {
			continue
		}
		info := n.Pkg.Info
		params := paramObjects(info, n.Decl)
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			g, ok := x.(*ast.GoStmt)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(g.Call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			for i, p := range params {
				if p != nil && p == obj {
					w := out[n]
					if w == nil {
						w = &wrapper{node: n, params: make(map[int]bool)}
						out[n] = w
					}
					w.params[i] = true
				}
			}
			return true
		})
	}
	return out
}

// applyWrapperSites turns calls of spawn wrappers with concrete function
// arguments into spawn sites at the call.
func (e *engine) applyWrapperSites(wrappers map[*callgraph.Node]*wrapper) {
	if len(wrappers) == 0 {
		return
	}
	for _, caller := range e.g.Nodes {
		body := caller.Body()
		if body == nil {
			continue
		}
		info := caller.Pkg.Info
		scan := func(x ast.Node) bool {
			if lit, ok := x.(*ast.FuncLit); ok && (caller.Lit == nil || lit != caller.Lit) {
				return false
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, callee := range e.g.CalleesAt(call) {
				w := wrappers[callee]
				if w == nil {
					continue
				}
				// Receiver-bearing callees shift the parameter index by one
				// relative to call.Args; wrapper params are decl params only,
				// so args index directly for functions and methods alike.
				s := &spawnSite{at: call, owner: caller}
				for i := range w.params {
					argIdx := i
					if callee.Decl != nil && callee.Decl.Recv != nil {
						argIdx = i - len(recvObjects(info, callee.Decl))
					}
					if argIdx < 0 || argIdx >= len(call.Args) {
						continue
					}
					switch arg := ast.Unparen(call.Args[argIdx]).(type) {
					case *ast.FuncLit:
						if t := e.g.NodeOfLit(arg); t != nil {
							s.targets = append(s.targets, t)
						}
					case *ast.Ident:
						if fn, ok := info.Uses[arg].(*types.Func); ok {
							if t := e.g.NodeOf(fn); t != nil {
								s.targets = append(s.targets, t)
							}
						}
					}
				}
				if len(s.targets) > 0 {
					e.scanJoins(s)
					e.sites = append(e.sites, s)
					for _, t := range s.targets {
						e.spawnTargets[t] = append(e.spawnTargets[t], s)
					}
				}
			}
			return true
		}
		if caller.Lit != nil {
			ast.Inspect(caller.Lit.Body, scan)
		} else {
			ast.Inspect(body, scan)
		}
	}
}

// paramObjects lists a declaration's receiver-then-parameter objects in
// order, receivers first (matching summary parameter indexing); here only
// the declared parameters are returned, receiver excluded.
func paramObjects(info *types.Info, decl *ast.FuncDecl) []types.Object {
	var out []types.Object
	if decl.Type.Params != nil {
		for _, f := range decl.Type.Params.List {
			if len(f.Names) == 0 {
				out = append(out, nil)
				continue
			}
			for _, name := range f.Names {
				out = append(out, info.Defs[name])
			}
		}
	}
	return out
}

// recvObjects lists a declaration's receiver objects (zero or one).
func recvObjects(info *types.Info, decl *ast.FuncDecl) []types.Object {
	var out []types.Object
	if decl.Recv != nil {
		for _, f := range decl.Recv.List {
			for _, name := range f.Names {
				out = append(out, info.Defs[name])
			}
		}
	}
	return out
}

// refRoot resolves the base object of an expression, stripping wrappers.
func refRoot(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.UnaryExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// selObject resolves a selector-or-ident lock/waitgroup expression to its
// identifying object: the variable for `wg`, the field for `c.wg`.
func selObject(info *types.Info, x ast.Expr) types.Object {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok {
			return s.Obj()
		}
		return info.Uses[x.Sel]
	case *ast.UnaryExpr:
		return selObject(info, x.X)
	case *ast.StarExpr:
		return selObject(info, x.X)
	}
	return nil
}

// isSyncKind reports whether t (or *t) is sync.<name>.
func isSyncKind(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
