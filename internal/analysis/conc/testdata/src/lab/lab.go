// Package lab is the engine-level fixture: one spawn site exercising every
// access classification the conc engine distinguishes — a racy package
// variable, a mutex-guarded one, an atomic/plain mix, and a sharded slice.
package lab

import (
	"sync"
	"sync/atomic"
)

var (
	total   int   // written by goroutines and read by the spawner: racy
	guarded int   // every access under mu: clean
	hits    int64 // atomic in goroutines, plain read while live: mixed
	mu      sync.Mutex
)

// Spawn fans out four workers and touches every shared location from both
// sides of the spawn.
func Spawn() []int {
	var wg sync.WaitGroup
	shard := make([]int, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			total++
			atomic.AddInt64(&hits, 1)
			mu.Lock()
			guarded++
			mu.Unlock()
			shard[i] = i
		}(i)
	}
	sink := total // read while the workers are live
	sink += int(hits)
	wg.Wait()
	mu.Lock()
	sink += guarded
	mu.Unlock()
	return append(shard, sink)
}
