// Package conc is a whole-program static concurrency engine over the
// callgraph layer: it proves (over-approximately) which shared-state
// accesses of the program may execute concurrently and which locks guard
// them, feeding the racecheck and atomicmix analyzers.
//
// The engine runs four passes:
//
//  1. Spawn analysis finds every goroutine creation point: `go` statements
//     (function literals and declared functions) and spawn wrappers —
//     functions that `go`-call one of their own func-typed parameters, so a
//     call of the wrapper spawns its argument. Each spawn site records the
//     join primitives that can retire it: the sync.WaitGroups its body
//     calls Done on, and the channels its body sends on (a `<-done` style
//     join receive).
//
//  2. Escape analysis decides which storage is shared. Package-level
//     variables of the loaded program always are. A variable captured by a
//     spawned closure is shared between the spawner and its goroutines. A
//     pointer-like value (pointer, slice, map) captured by or passed into a
//     spawned function makes the *fields* reachable through it shared;
//     escape marks propagate through call arguments and assignments to a
//     fixpoint, mirroring the taint engine's summary machinery (a callee
//     parameter fed an escaped root is itself an escaped root everywhere).
//
//  3. A summary-based lockset analysis runs over every function body on the
//     cfg.ForwardMust fixpoint: Lock/RLock gen a (lock, mode) fact,
//     Unlock/RUnlock kill it, facts intersect at joins (a lock guards an
//     access only when it is held on every path). Each function's summary
//     lists the shared accesses it or its callees perform, each with the
//     intersection of the locksets over all call chains reaching it and a
//     lexicographically minimal witness path. Accesses in a goroutine are
//     the spawn target's summary; accesses on the spawning side are
//     collected flow-sensitively in the region where a spawn is live —
//     after the `go` statement and before the matching WaitGroup.Wait or
//     join receive kills it (the happens-before edges modeled).
//
//  4. Pairing: two accesses to the same location conflict when at least one
//     writes, their contexts can overlap (different spawn sites; the same
//     site spawned in a loop or itself reachable from another spawn; or a
//     goroutine against its spawner's live region), and no common lock
//     synchronizes them — a shared RWMutex held in read mode on both sides
//     does not. Indexed accesses whose index is function-local on both
//     sides (results[j] with j a per-goroutine variable) are assumed
//     element-disjoint — the repository's sanctioned fan-out idiom — and do
//     not conflict with each other.
//
// Known, deliberate unsoundness (DESIGN.md §7.5): ad-hoc channel protocols
// other than a join receive are not happens-before edges; calls through
// plain func-typed variables are unresolved, so their bodies' accesses are
// attributed to the enclosing function; values flowing through sync.Pool or
// interface conversions lose their escape marks; accesses outside any
// spawning function or goroutine are treated as ordered; element-disjoint
// indexing is assumed, not proved. The //parm:conc escape hatch and the
// dynamic -race tests cover the remainder.
package conc

import (
	"go/token"
	"sort"

	"parm/internal/analysis"
	"parm/internal/analysis/callgraph"
)

// LocKind classifies a shared location.
type LocKind int

const (
	// PkgVar is a package-level variable of a loaded program package.
	PkgVar LocKind = iota
	// Captured is a function-local variable captured by a spawned closure.
	Captured
	// Field is a struct field reached through a value that escaped into a
	// goroutine (field-based: instances are conflated).
	Field
)

// String names the kind for diagnostics.
func (k LocKind) String() string {
	switch k {
	case PkgVar:
		return "package variable"
	case Captured:
		return "captured variable"
	default:
		return "field"
	}
}

// Loc is one shared storage location, canonical per declaration position.
type Loc struct {
	Kind LocKind
	// Pos is the declaration position of the variable or field.
	Pos token.Pos
	// Name is the display name, e.g. "results" or "Worker.sum".
	Name string

	// sites are the spawn sites that share this location (the sites whose
	// goroutines capture or receive it). Captured locations are
	// per-invocation storage of their declaring function: a context from an
	// unrelated site means another *instance* of that function, which has
	// its own variable, so pairing considers only these sites. nil means no
	// filtering (package variables are one instance program-wide).
	sites map[*spawnSite]bool
}

// addSite marks one spawn site as sharing the location.
func (l *Loc) addSite(s *spawnSite) {
	if l.sites == nil {
		l.sites = make(map[*spawnSite]bool)
	}
	l.sites[s] = true
}

// filterCtx drops contexts from sites that do not share the location.
func (l *Loc) filterCtx(c ctxSet) ctxSet {
	if l.sites == nil {
		return c
	}
	out := make(ctxSet, len(c))
	for k := range c {
		if l.sites[k.site] {
			out[k] = true
		}
	}
	return out
}

// Mode is how a lock is held.
type Mode int

const (
	// WriteLock is Mutex.Lock or RWMutex.Lock.
	WriteLock Mode = iota
	// ReadLock is RWMutex.RLock.
	ReadLock
)

// lockTok is one held-lock fact: the lock's identity (declaration position
// of the mutex variable or field, so instances and type-check runs unify)
// plus the hold mode.
type lockTok struct {
	pos  token.Pos
	mode Mode
}

// lockset is a small set of held locks.
type lockset map[lockTok]bool

func (s lockset) clone() lockset {
	out := make(lockset, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// union returns s ∪ t without mutating either.
func (s lockset) union(t lockset) lockset {
	if len(t) == 0 {
		return s
	}
	out := s.clone()
	for k := range t {
		out[k] = true
	}
	return out
}

// intersect returns s ∩ t, reporting whether the result is smaller than s.
func (s lockset) intersect(t lockset) (lockset, bool) {
	out := make(lockset, len(s))
	shrunk := false
	for k := range s {
		if t[k] {
			out[k] = true
		} else {
			shrunk = true
		}
	}
	return out, shrunk
}

// synchronized reports whether a common lock orders two accesses: a shared
// lock synchronizes unless both sides hold it only in read mode.
func synchronized(a, b lockset) bool {
	for ta := range a {
		for tb := range b {
			if ta.pos != tb.pos {
				continue
			}
			if ta.mode == WriteLock || tb.mode == WriteLock {
				return true
			}
		}
	}
	return false
}

// ctxKey is one concurrency context of an access: the spawn site it may run
// under, on the goroutine side (Spawner false) or on the spawning
// goroutine while the site is live (Spawner true).
type ctxKey struct {
	site    *spawnSite
	spawner bool
}

// ctxSet is the set of contexts an access may execute in.
type ctxSet map[ctxKey]bool

// Access is one shared-location access site.
type Access struct {
	Loc *Loc
	Pos token.Pos
	// Write is a store (or read-modify-write); false is a plain load.
	Write bool
	// Atomic marks sync/atomic operations (calls or atomic-type methods).
	Atomic bool
	// Sharded marks indexed accesses whose index is local to the accessing
	// function: container[j] with per-goroutine j, assumed element-disjoint.
	Sharded bool
	// Locks is the intersection of the locksets over every call chain that
	// reaches the access.
	Locks lockset
	// Path is the lexicographically minimal call chain from a context root
	// (spawn target or spawning function) to the access, function names
	// inclusive.
	Path []string

	ctx ctxSet
}

// Race is one conflicting pair on a location: the lexicographically
// minimal two-site witness among the location's conflicting pairs.
type Race struct {
	Loc *Loc
	// First and Second are the witness accesses, position-ordered.
	First, Second *Access
}

// Mix is one location accessed both atomically and by plain loads/stores.
type Mix struct {
	Loc *Loc
	// Plain is the minimal concurrently-reachable non-atomic access.
	Plain *Access
	// Atomic is the minimal atomic access.
	Atomic *Access
}

// Config parameterizes a run.
type Config struct {
	// Suppress drops accesses at audited positions (//parm:conc).
	Suppress func(token.Pos) bool
}

// Result is the outcome of one whole-program run.
type Result struct {
	// Races lists the conflicting locations, one minimal witness each,
	// sorted by (first, second) witness position.
	Races []Race
	// Mixes lists atomic/plain mixed locations sorted by plain-access
	// position.
	Mixes []Mix
}

// Analyze builds the call graph of the program and runs the engine.
func Analyze(pass *analysis.ProgramPass, cfg Config) *Result {
	g := callgraph.Build(pass.Fset, pass.Packages)
	return AnalyzeGraph(g, cfg)
}

// AnalyzeGraph runs the engine over a prebuilt call graph.
func AnalyzeGraph(g *callgraph.Graph, cfg Config) *Result {
	e := newEngine(g, cfg)
	e.findSpawns()
	e.markEscapes()
	e.buildUnits()
	e.solveSummaries()
	return pair(e.collect())
}

// pair groups accesses by location and extracts race and mix witnesses.
func pair(accesses []*Access) *Result {
	byLoc := make(map[*Loc][]*Access)
	var locOrder []*Loc
	for _, a := range accesses {
		if _, ok := byLoc[a.Loc]; !ok {
			locOrder = append(locOrder, a.Loc)
		}
		byLoc[a.Loc] = append(byLoc[a.Loc], a)
	}
	sort.Slice(locOrder, func(i, j int) bool { return locOrder[i].Pos < locOrder[j].Pos })

	res := &Result{}
	for _, loc := range locOrder {
		as := byLoc[loc]
		sort.Slice(as, func(i, j int) bool {
			if as[i].Pos != as[j].Pos {
				return as[i].Pos < as[j].Pos
			}
			// A write at the same position (x += 1 reads and writes) wins so
			// witnesses prefer the stronger conflict.
			return as[i].Write && !as[j].Write
		})
		if r, ok := minimalRace(loc, as); ok {
			res.Races = append(res.Races, r)
		}
		if m, ok := minimalMix(loc, as); ok {
			res.Mixes = append(res.Mixes, m)
		}
	}
	sort.Slice(res.Races, func(i, j int) bool {
		if res.Races[i].First.Pos != res.Races[j].First.Pos {
			return res.Races[i].First.Pos < res.Races[j].First.Pos
		}
		return res.Races[i].Second.Pos < res.Races[j].Second.Pos
	})
	sort.Slice(res.Mixes, func(i, j int) bool {
		return res.Mixes[i].Plain.Pos < res.Mixes[j].Plain.Pos
	})
	return res
}

// minimalRace scans the position-sorted accesses of one location for the
// lexicographically minimal conflicting pair.
func minimalRace(loc *Loc, as []*Access) (Race, bool) {
	for i := 0; i < len(as); i++ {
		for j := i; j < len(as); j++ {
			if conflicts(as[i], as[j]) {
				return Race{Loc: loc, First: as[i], Second: as[j]}, true
			}
		}
	}
	return Race{}, false
}

// conflicts reports whether two accesses (possibly the same site) race.
func conflicts(a, b *Access) bool {
	if !a.Write && !b.Write {
		return false
	}
	if a.Atomic || b.Atomic {
		// atomic/atomic is synchronized; atomic/plain is atomicmix's report.
		return false
	}
	if a.Sharded && b.Sharded {
		// Both sides index with a function-local variable: the sanctioned
		// element-disjoint fan-out (results[j] per worker).
		return false
	}
	if !concurrent(a.Loc.filterCtx(a.ctx), b.Loc.filterCtx(b.ctx)) {
		return false
	}
	return !synchronized(a.Locks, b.Locks)
}

// concurrent reports whether two context sets can overlap in time. Spawner
// contexts only express concurrency against their own site's goroutines:
// two spawner-side accesses are serial code and stay ordered, and an access
// in some other function's live region is ordered against an unrelated
// goroutine unless goroutine reachability tagged it too.
func concurrent(a, b ctxSet) bool {
	for ka := range a {
		for kb := range b {
			switch {
			case !ka.spawner && !kb.spawner:
				// goroutine vs goroutine: different sites overlap; one site
				// overlaps itself only when several instances can be in
				// flight (spawned in a loop, or the spawner is itself a
				// goroutine).
				if ka.site != kb.site || ka.site.multi {
					return true
				}
			case ka.site == kb.site && ka.spawner != kb.spawner:
				// A goroutine against its own spawner's live region.
				return true
			}
		}
	}
	return false
}

// minimalMix scans for the minimal (plain, atomic) witness: a location
// accessed atomically and, concurrently with that, by a plain load or store
// (one side writing). A plain store before any goroutine exists (pre-spawn
// initialization) is ordered and stays silent.
func minimalMix(loc *Loc, as []*Access) (Mix, bool) {
	for _, p := range as {
		if p.Atomic {
			continue
		}
		for _, at := range as {
			if !at.Atomic || (!p.Write && !at.Write) {
				continue
			}
			if concurrent(loc.filterCtx(p.ctx), loc.filterCtx(at.ctx)) {
				return Mix{Loc: loc, Plain: p, Atomic: at}, true
			}
		}
	}
	return Mix{}, false
}
