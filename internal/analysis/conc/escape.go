package conc

import (
	"go/ast"
	"go/token"
	"go/types"

	"parm/internal/analysis/callgraph"
)

// markEscapes decides which storage is shared: variables captured by
// spawned closures, and the roots (and transitive flow) of values passed
// into goroutines. Package-level variables need no marking — they are
// shared by definition and resolved at access time.
func (e *engine) markEscapes() {
	for _, s := range e.sites {
		for _, t := range s.targets {
			if t.Lit != nil {
				e.markCaptures(s, t)
			}
		}
		e.markSpawnArgs(s)
	}
	e.propagateEscapes()
}

// markCaptures marks every variable a spawned literal references but does
// not declare: shared between the spawner and the goroutine.
func (e *engine) markCaptures(s *spawnSite, t *callgraph.Node) {
	info := t.Pkg.Info
	lo, hi := t.Lit.Pos(), t.Lit.End()
	ast.Inspect(t.Lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || isPkgLevel(v) {
			return true
		}
		if v.Pos() >= lo && v.Pos() < hi {
			return true // declared inside the goroutine: per-instance
		}
		if !trackableType(v.Type()) {
			return true
		}
		loc := e.locAt(Captured, v.Pos(), v.Name())
		loc.addSite(s)
		e.varLoc[v.Pos()] = loc
		if refType(v.Type()) {
			e.escRoot[v.Pos()] = true
		}
		return true
	})
}

// markSpawnArgs marks the argument and receiver roots of a `go` call on the
// spawner side, and aliases the target's parameters to them on the callee
// side, so both sides resolve to one location.
func (e *engine) markSpawnArgs(s *spawnSite) {
	g, ok := s.at.(*ast.GoStmt)
	if !ok {
		return
	}
	info := s.owner.Pkg.Info
	call := g.Call

	// Receiver of `go w.Run()`.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if ts, ok := info.Selections[sel]; ok && ts.Kind() == types.MethodVal {
			if loc := e.markArgRoot(s, info, sel.X); loc != nil {
				for _, t := range s.targets {
					if t.Decl != nil {
						for _, obj := range recvObjects(t.Pkg.Info, t.Decl) {
							e.aliasParam(obj, loc)
						}
					}
				}
			}
		}
	}
	for i, arg := range call.Args {
		tv, ok := info.Types[arg]
		if !ok || !refType(tv.Type) {
			continue
		}
		loc := e.markArgRoot(s, info, arg)
		if loc == nil {
			continue
		}
		for _, t := range s.targets {
			if t.Decl == nil {
				continue
			}
			params := paramObjects(t.Pkg.Info, t.Decl)
			if i < len(params) && params[i] != nil {
				e.aliasParam(params[i], loc)
			}
		}
	}
}

// markArgRoot marks the root variable of a value flowing into a goroutine
// and returns its location.
func (e *engine) markArgRoot(s *spawnSite, info *types.Info, arg ast.Expr) *Loc {
	obj := refRoot(info, arg)
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || !trackableType(v.Type()) {
		return nil
	}
	e.escRoot[v.Pos()] = true
	if isPkgLevel(v) {
		return nil // resolved as a PkgVar at access time
	}
	loc := e.locAt(Captured, v.Pos(), v.Name())
	loc.addSite(s)
	e.varLoc[v.Pos()] = loc
	return loc
}

// aliasParam binds a spawned function's parameter to the caller location it
// receives, and marks its fields shared.
func (e *engine) aliasParam(obj types.Object, loc *Loc) {
	if obj == nil {
		return
	}
	e.alias[obj.Pos()] = loc
	e.escRoot[obj.Pos()] = true
}

// propagateEscapes spreads escape-root marks through reference-typed call
// arguments, receivers, and local aliases until fixpoint: a callee
// parameter bound to an escaped value is itself an escape root (its field
// accesses are shared), and a local alias of an escaped variable shares its
// mark.
func (e *engine) propagateEscapes() {
	for pass := 0; pass < 32; pass++ {
		grew := false
		for _, n := range e.g.Nodes {
			body := n.Body()
			if body == nil {
				continue
			}
			info := n.Pkg.Info
			scan := func(x ast.Node) bool {
				if _, ok := x.(*ast.FuncLit); ok {
					return false
				}
				switch x := x.(type) {
				case *ast.AssignStmt:
					if len(x.Lhs) != len(x.Rhs) {
						return true
					}
					for i := range x.Lhs {
						src := refRoot(info, x.Rhs[i])
						if src == nil || !e.escRoot[src.Pos()] {
							continue
						}
						dst, ok := refRoot(info, x.Lhs[i]).(*types.Var)
						if !ok || dst.IsField() || !refType(dst.Type()) {
							continue
						}
						if !e.escRoot[dst.Pos()] {
							e.escRoot[dst.Pos()] = true
							grew = true
						}
					}
				case *ast.CallExpr:
					for _, callee := range e.g.CalleesAt(x) {
						if callee.Decl == nil {
							continue
						}
						params := paramObjects(callee.Pkg.Info, callee.Decl)
						for i, arg := range x.Args {
							if i >= len(params) || params[i] == nil {
								continue
							}
							src := refRoot(info, arg)
							if src == nil || !e.escRoot[src.Pos()] {
								continue
							}
							if !refType(params[i].Type()) {
								continue
							}
							if !e.escRoot[params[i].Pos()] {
								e.escRoot[params[i].Pos()] = true
								grew = true
							}
						}
						if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
							if ts, ok := info.Selections[sel]; ok && ts.Kind() == types.MethodVal {
								src := refRoot(info, sel.X)
								if src != nil && e.escRoot[src.Pos()] {
									for _, obj := range recvObjects(callee.Pkg.Info, callee.Decl) {
										if obj != nil && !e.escRoot[obj.Pos()] {
											e.escRoot[obj.Pos()] = true
											grew = true
										}
									}
								}
							}
						}
					}
				}
				return true
			}
			if n.Lit != nil {
				ast.Inspect(n.Lit.Body, scan)
			} else {
				ast.Inspect(body, scan)
			}
		}
		if !grew {
			return
		}
	}
}

// locAt returns the canonical location at a declaration position.
func (e *engine) locAt(kind LocKind, pos token.Pos, name string) *Loc {
	if l, ok := e.locs[pos]; ok {
		return l
	}
	l := &Loc{Kind: kind, Pos: pos, Name: name}
	e.locs[pos] = l
	return l
}

// isPkgLevel reports whether v is a package-scope variable.
func isPkgLevel(v *types.Var) bool {
	return v.Parent() != nil && v.Parent().Parent() == types.Universe
}

// progPkgVar reports whether v is a package-level variable of a loaded
// program package (stdlib globals are not the lint's problem).
func (e *engine) progPkgVar(v *types.Var) bool {
	return isPkgLevel(v) && v.Pkg() != nil && e.progPkgs[v.Pkg().Path()]
}

// trackableType reports whether a variable of type t is worth tracking as a
// shared location. Synchronization primitives are excluded: mutexes,
// WaitGroups and friends are the locks themselves, and channels are
// modeled as happens-before edges, not storage.
func trackableType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, isChan := t.Underlying().(*types.Chan); isChan {
		return false
	}
	for _, n := range [...]string{"Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map", "Locker"} {
		if isSyncKind(t, n) {
			return false
		}
	}
	return true
}

// refType reports whether values of t are reference-like: sharing one
// shares the storage reachable through it.
func refType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Interface:
		return true
	}
	return false
}
