package conc

import (
	"go/ast"
	"go/token"
	"go/types"

	"parm/internal/analysis/callgraph"
	"parm/internal/analysis/cfg"
)

// unit is one function body under analysis — a declared function or a
// function literal. Unlike the taint engine, literals get their own units:
// a literal's body may run on another goroutine, so it must not share the
// creator's lockset or live-spawn state.
type unit struct {
	e    *engine
	node *callgraph.Node
	info *types.Info
	name string

	g     *cfg.Graph
	loops map[*cfg.Block]bool
	// locksIn is the must-held lockset at each block entry.
	locksIn map[*cfg.Block]cfg.Facts[lockTok]
	// liveIn is the may-live spawn-site set at each block entry: goroutines
	// started and not yet joined.
	liveIn map[*cfg.Block]cfg.Facts[*spawnSite]
	// goCalls are call expressions run via `go`: never lifted as
	// synchronous calls.
	goCalls map[*ast.CallExpr]bool
	// snaps records the lockset and live contexts at every synchronous call
	// site and literal creation, in replay order, for summary lifting.
	snaps []snap

	// Replay cursor state (phase A): the lockset and live-spawn facts at the
	// statement being extracted, and the unit's goroutine contexts.
	curLocks cfg.Facts[lockTok]
	curLive  cfg.Facts[*spawnSite]
	gorCtx   ctxSet
}

// snap is the engine state at one summary-lift point.
type snap struct {
	// site is the CallExpr (synchronous call) or FuncLit (creation).
	site ast.Node
	// callees are the lift targets.
	callees []*callgraph.Node
	locks   lockset
	live    ctxSet
}

// buildUnits constructs a unit per bodied function and solves its two
// dataflow fixpoints, then derives each spawn site's multiplicity.
func (e *engine) buildUnits() {
	// siteAt indexes sites by their anchoring statement for the transfer
	// functions.
	for _, n := range e.g.Nodes {
		body := n.Body()
		if body == nil {
			continue
		}
		u := &unit{
			e:       e,
			node:    n,
			info:    n.Pkg.Info,
			name:    n.Name(),
			g:       cfg.New(body),
			goCalls: make(map[*ast.CallExpr]bool),
		}
		u.loops = u.g.LoopBlocks()
		for _, s := range e.sites {
			if s.owner != n {
				continue
			}
			if g, ok := s.at.(*ast.GoStmt); ok {
				u.goCalls[g.Call] = true
			}
		}
		u.locksIn = cfg.ForwardMust(u.g, u.lockUniverse(), u.lockTransfer)
		u.liveIn = cfg.Forward(u.g, u.liveTransfer)
		e.units[n] = u
		e.unitList = append(e.unitList, u)
		e.sums[n] = make(summary)
	}
	e.setMulti()
}

// setMulti marks spawn sites that can have several goroutine instances in
// flight at once: the spawn statement sits on a control-flow cycle, or the
// spawning function itself runs under a goroutine.
func (e *engine) setMulti() {
	for _, s := range e.sites {
		if len(e.gctx[s.owner]) > 0 {
			s.multi = true
			continue
		}
		u := e.units[s.owner]
		if u == nil {
			continue
		}
		pos := s.at.Pos()
		for b := range u.loops {
			for _, n := range b.Nodes {
				if n.Pos() <= pos && pos < n.End() {
					s.multi = true
				}
			}
		}
	}
}

// ---- lockset must-analysis ----

// lockUniverse scans the unit's own region for every lock fact it can gen.
func (u *unit) lockUniverse() []lockTok {
	var out []lockTok
	seen := make(map[lockTok]bool)
	for _, b := range u.g.Blocks {
		for _, n := range b.Nodes {
			shallowInspect(n, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				if tok, op, ok := u.lockOp(call); ok && (op == "Lock" || op == "RLock" || op == "TryLock" || op == "TryRLock") {
					if !seen[tok] {
						seen[tok] = true
						out = append(out, tok)
					}
				}
				return true
			})
		}
	}
	return out
}

// lockOp classifies one call as a mutex operation, returning the lock fact
// it gens or kills.
func (u *unit) lockOp(call *ast.CallExpr) (lockTok, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockTok{}, "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return lockTok{}, "", false
	}
	tv, ok := u.info.Types[sel.X]
	if !ok || (!isSyncKind(tv.Type, "Mutex") && !isSyncKind(tv.Type, "RWMutex")) {
		return lockTok{}, "", false
	}
	obj := selObject(u.info, sel.X)
	if obj == nil {
		return lockTok{}, "", false
	}
	mode := WriteLock
	if name == "RLock" || name == "RUnlock" || name == "TryRLock" {
		mode = ReadLock
	}
	return lockTok{pos: obj.Pos(), mode: mode}, name, true
}

func (u *unit) lockTransfer(b *cfg.Block, in cfg.Facts[lockTok]) cfg.Facts[lockTok] {
	out := in.Clone()
	for _, n := range b.Nodes {
		u.lockStep(n, out)
	}
	return out
}

// lockStep applies one statement's lock effects. Deferred unlocks run at
// function exit, so a DeferStmt has no effect here — the lock stays held
// for the statements that follow, which is exactly the
// Lock-defer-Unlock-then-access idiom.
func (u *unit) lockStep(n ast.Node, facts cfg.Facts[lockTok]) {
	shallowInspect(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		tok, op, ok := u.lockOp(call)
		if !ok {
			return true
		}
		switch op {
		case "Lock", "RLock", "TryLock", "TryRLock":
			facts.Add(tok)
		case "Unlock", "RUnlock":
			facts.Delete(tok)
		}
		return true
	})
}

// ---- live-spawn may-analysis ----

func (u *unit) liveTransfer(b *cfg.Block, in cfg.Facts[*spawnSite]) cfg.Facts[*spawnSite] {
	out := in.Clone()
	for _, n := range b.Nodes {
		u.liveStep(n, out)
	}
	return out
}

// liveStep gens spawn sites at their statements and kills them at joins:
// Wait on a WaitGroup the goroutine body calls Done on, or a receive from
// (or range over) a channel the body sends on.
func (u *unit) liveStep(n ast.Node, facts cfg.Facts[*spawnSite]) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		if tv, ok := u.info.Types[rs.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				u.killJoin(facts, joinRecv, refRoot(u.info, rs.X))
			}
		}
	}
	shallowInspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt:
			if s := u.siteOf(x); s != nil {
				facts.Add(s)
			}
			// The go-call's arguments are evaluated by the spawner, but hold
			// no joins; nothing below matters for liveness.
			return false
		case *ast.CallExpr:
			if s := u.siteOf(x); s != nil {
				facts.Add(s) // spawn-wrapper call
			}
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if tv, ok := u.info.Types[sel.X]; ok && isSyncKind(tv.Type, "WaitGroup") {
					u.killJoin(facts, joinWait, selObject(u.info, sel.X))
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				u.killJoin(facts, joinRecv, refRoot(u.info, x.X))
			}
		}
		return true
	})
}

type joinKind int

const (
	joinWait joinKind = iota
	joinRecv
)

// killJoin removes every live site the join retires.
func (u *unit) killJoin(facts cfg.Facts[*spawnSite], kind joinKind, obj types.Object) {
	if obj == nil {
		return
	}
	var dead []*spawnSite
	for s := range facts {
		switch kind {
		case joinWait:
			if s.wgDone[obj.Pos()] {
				dead = append(dead, s)
			}
		case joinRecv:
			if s.sends[obj.Pos()] {
				dead = append(dead, s)
			}
		}
	}
	for _, s := range dead {
		facts.Delete(s)
	}
}

// siteOf returns the spawn site anchored at n (owned by this unit), or nil.
func (u *unit) siteOf(n ast.Node) *spawnSite {
	for _, s := range u.e.sites {
		if s.at == n && s.owner == u.node {
			return s
		}
	}
	return nil
}

// shallowInspect walks a block node without descending into function
// literals (separate units, separate schedules) or deferred calls (whose
// effects land at function exit, not here). RangeStmt roots are visited
// shallowly, mirroring cfg.Inspect.
func shallowInspect(n ast.Node, fn func(ast.Node) bool) {
	if n == nil {
		return
	}
	cfg.Inspect(n, func(x ast.Node) bool {
		switch x.(type) {
		case *ast.FuncLit:
			fn(x)
			return false
		case *ast.DeferStmt:
			return false
		}
		return fn(x)
	})
}
