package conc

import (
	"go/token"
	"path/filepath"
	"testing"

	"parm/internal/analysis/analysistest"
	"parm/internal/analysis/callgraph"
)

func analyzeLab(t *testing.T, cfg Config) *Result {
	t.Helper()
	fset, pkgs := analysistest.LoadPackages(t, filepath.Join("testdata", "src"))
	return AnalyzeGraph(callgraph.Build(fset, pkgs), cfg)
}

// The lab fixture holds four shared locations with one spawn site: the
// engine must race exactly the unguarded variable, mix exactly the
// atomic/plain one, and exempt the guarded and sharded ones.
func TestEngineClassifiesLabAccesses(t *testing.T) {
	res := analyzeLab(t, Config{})
	if len(res.Races) != 1 {
		names := make([]string, len(res.Races))
		for i, r := range res.Races {
			names[i] = r.Loc.Name
		}
		t.Fatalf("races = %d (%v), want exactly one on total", len(res.Races), names)
	}
	r := res.Races[0]
	if r.Loc.Name != "total" || r.Loc.Kind != PkgVar {
		t.Fatalf("race on %s %q, want package variable total", r.Loc.Kind, r.Loc.Name)
	}
	if !r.First.Write && !r.Second.Write {
		t.Error("race witness has no write side")
	}
	// The minimal witness here is total++ against itself: the loop spawns
	// several instances of the same goroutine body (site.multi).
	if r.First.Pos > r.Second.Pos {
		t.Error("witness accesses are not position-ordered")
	}
	if len(r.Second.Path) == 0 || r.Second.Path[len(r.Second.Path)-1] == "" {
		t.Errorf("witness path %v is not a usable call chain", r.Second.Path)
	}
	if len(r.First.Locks) != 0 {
		t.Errorf("racy access carries lockset %v, want empty", r.First.Locks)
	}

	if len(res.Mixes) != 1 {
		t.Fatalf("mixes = %d, want exactly one on hits", len(res.Mixes))
	}
	m := res.Mixes[0]
	if m.Loc.Name != "hits" || m.Loc.Kind != PkgVar {
		t.Fatalf("mix on %s %q, want package variable hits", m.Loc.Kind, m.Loc.Name)
	}
	if m.Plain.Atomic || !m.Atomic.Atomic {
		t.Error("mix witness sides are mislabeled")
	}
}

// A Suppress hook that accepts every position must silence the engine
// completely — this is the layer //parm:conc rides on.
func TestEngineSuppressAll(t *testing.T) {
	res := analyzeLab(t, Config{Suppress: func(token.Pos) bool { return true }})
	if len(res.Races) != 0 || len(res.Mixes) != 0 {
		t.Fatalf("suppressed run still reports %d race(s), %d mix(es)", len(res.Races), len(res.Mixes))
	}
}

func lk(pos int, m Mode) lockTok { return lockTok{pos: token.Pos(pos), mode: m} }

func TestSynchronized(t *testing.T) {
	w, r := lk(10, WriteLock), lk(10, ReadLock)
	other := lk(20, WriteLock)
	cases := []struct {
		name string
		a, b lockset
		want bool
	}{
		{"no common lock", lockset{w: true}, lockset{other: true}, false},
		{"common write lock", lockset{w: true}, lockset{w: true}, true},
		{"write vs read of same lock", lockset{w: true}, lockset{r: true}, true},
		{"read vs read does not order", lockset{r: true}, lockset{r: true}, false},
		{"empty side", lockset{w: true}, lockset{}, false},
	}
	for _, c := range cases {
		if got := synchronized(c.a, c.b); got != c.want {
			t.Errorf("%s: synchronized = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestLocksetIntersectReportsShrink(t *testing.T) {
	a := lockset{lk(1, WriteLock): true, lk(2, WriteLock): true}
	b := lockset{lk(1, WriteLock): true}
	got, shrunk := a.intersect(b)
	if !shrunk || len(got) != 1 || !got[lk(1, WriteLock)] {
		t.Fatalf("intersect = %v (shrunk=%v), want {1} shrunk", got, shrunk)
	}
	same, shrunk := a.intersect(a)
	if shrunk || len(same) != 2 {
		t.Fatalf("self-intersect = %v (shrunk=%v), want unchanged", same, shrunk)
	}
}
