package conc

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"parm/internal/analysis/callgraph"
	"parm/internal/analysis/cfg"
)

// recKey identifies one access record: the shared location and the source
// position of the access site.
type recKey struct {
	loc token.Pos
	pos token.Pos
}

// summary is one function's interprocedural access behavior: every shared
// access it or its (synchronous) callees perform, with merged locksets,
// contexts, and lexicographically minimal witness paths.
type summary map[recKey]*Access

// solveSummaries runs the local extraction pass over every unit, then
// propagates callee summaries into callers until fixpoint. Locksets only
// shrink (intersection), contexts only grow (union), and witness paths only
// lex-decrease, so iteration terminates; the cap is a defensive backstop.
func (e *engine) solveSummaries() {
	for _, u := range e.unitList {
		u.replay()
	}
	for iter := 0; iter < 64; iter++ {
		e.changed = false
		for _, u := range e.unitList {
			dst := e.sums[u.node]
			for _, sn := range u.snaps {
				for _, callee := range sn.callees {
					src := e.sums[callee]
					for key, acc := range src {
						e.mergeInto(dst, key, acc, sn.locks, sn.live, u.name)
					}
				}
			}
		}
		if !e.changed {
			break
		}
	}
}

// mergeInto folds one access record into a summary, optionally adding
// call-site locks and contexts and prefixing the witness path.
func (e *engine) mergeInto(dst summary, key recKey, src *Access, extraLocks lockset, extraCtx ctxSet, pathHead string) {
	candLocks := src.Locks.union(extraLocks)
	candPath := src.Path
	if pathHead != "" {
		candPath = append([]string{pathHead}, src.Path...)
	}
	ex := dst[key]
	if ex == nil {
		cc := make(ctxSet, len(src.ctx)+len(extraCtx))
		for k := range src.ctx {
			cc[k] = true
		}
		for k := range extraCtx {
			cc[k] = true
		}
		dst[key] = &Access{
			Loc: src.Loc, Pos: src.Pos,
			Write: src.Write, Atomic: src.Atomic, Sharded: src.Sharded,
			Locks: candLocks.clone(),
			Path:  append([]string(nil), candPath...),
			ctx:   cc,
		}
		e.changed = true
		return
	}
	if inter, shrunk := ex.Locks.intersect(candLocks); shrunk {
		ex.Locks = inter
		e.changed = true
	}
	for k := range src.ctx {
		if !ex.ctx[k] {
			ex.ctx[k] = true
			e.changed = true
		}
	}
	for k := range extraCtx {
		if !ex.ctx[k] {
			ex.ctx[k] = true
			e.changed = true
		}
	}
	if lessPath(candPath, ex.Path) {
		ex.Path = append([]string(nil), candPath...)
		e.changed = true
	}
}

// lessPath orders witness call chains: shorter first, then lexicographic.
func lessPath(a, b []string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// collect gathers the program's access records at the execution roots —
// functions nothing in the program calls synchronously, plus every spawn
// target (a goroutine entry runs without its spawner's locks) — and merges
// them into one deterministic list.
func (e *engine) collect() []*Access {
	global := make(summary)
	for _, u := range e.unitList {
		if !e.isRoot(u.node) {
			continue
		}
		for key, acc := range e.sums[u.node] {
			e.mergeInto(global, key, acc, nil, nil, "")
		}
	}
	out := make([]*Access, 0, len(global))
	for _, acc := range global {
		out = append(out, acc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Loc.Pos != out[j].Loc.Pos {
			return out[i].Loc.Pos < out[j].Loc.Pos
		}
		return out[i].Pos < out[j].Pos
	})
	return out
}

// isRoot reports whether records are collected directly from n's summary.
// Non-spawned literals are excluded: their records are lifted into the
// creator at the creation point, where the creator's locks apply.
func (e *engine) isRoot(n *callgraph.Node) bool {
	if len(e.spawnTargets[n]) > 0 {
		return true
	}
	if n.Lit != nil {
		return false
	}
	for _, edge := range n.In {
		if edge.Kind == callgraph.Static || edge.Kind == callgraph.Interface {
			return false
		}
	}
	return true
}

// ---- local extraction (phase A) ----

// replay walks every block from its dataflow fixpoint inputs, extracting
// shared accesses and lift snapshots with the lockset and live-spawn state
// current at each statement.
func (u *unit) replay() {
	u.gorCtx = make(ctxSet, len(u.e.gctx[u.node]))
	for s := range u.e.gctx[u.node] {
		u.gorCtx[ctxKey{site: s, spawner: false}] = true
	}
	for _, b := range u.g.Blocks {
		u.curLocks = u.locksIn[b].Clone()
		u.curLive = u.liveIn[b].Clone()
		for _, n := range b.Nodes {
			u.extract(n)
			u.lockStep(n, u.curLocks)
			u.liveStep(n, u.curLive)
		}
	}
}

// extract dispatches one block node to the access walker.
func (u *unit) extract(n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, r := range n.Rhs {
			u.readExpr(r)
		}
		for _, l := range n.Lhs {
			u.lval(l, true, false, false)
		}
	case *ast.IncDecStmt:
		u.lval(n.X, true, false, false)
	case *ast.SendStmt:
		u.readExpr(n.Value)
		u.readExpr(n.Chan)
	case *ast.ExprStmt:
		u.readExpr(n.X)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			u.readExpr(r)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						u.readExpr(v)
					}
				}
			}
		}
	case *ast.GoStmt:
		u.callOperands(n.Call)
	case *ast.DeferStmt:
		// Argument and receiver expressions evaluate now; the call itself
		// runs at exit and is deliberately not lifted (unknown lock state).
		u.callOperands(n.Call)
	case *ast.RangeStmt:
		// X lives in the predecessor block as its own node; only the
		// per-iteration bindings matter here.
		if n.Tok == token.ASSIGN {
			u.lval(n.Key, true, false, false)
			u.lval(n.Value, true, false, false)
		}
	case *ast.SelectStmt, *ast.BranchStmt:
		// Comm statements and case bodies live in their own blocks.
	default:
		if expr, ok := n.(ast.Expr); ok {
			u.readExpr(expr)
		}
	}
}

// callOperands reads a go/defer call's operands — evaluated by the current
// goroutine at the statement — without lifting the call.
func (u *unit) callOperands(call *ast.CallExpr) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		u.readExpr(sel.X)
	}
	for _, a := range call.Args {
		u.readExpr(a)
	}
}

// lval records an access through an lvalue-shaped expression path.
func (u *unit) lval(e ast.Expr, write, sharded, atomic bool) {
	if e == nil {
		return
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		u.emitIdent(x, write, sharded, atomic)
	case *ast.SelectorExpr:
		if ts, ok := u.info.Selections[x]; ok && ts.Kind() == types.FieldVal {
			u.emitField(ts, x, write, sharded, atomic)
			u.readExpr(x.X)
			return
		}
		if v, ok := u.info.Uses[x.Sel].(*types.Var); ok {
			u.emitVar(v, x.Sel.Pos(), write, sharded, atomic)
		}
	case *ast.IndexExpr:
		u.readExpr(x.Index)
		u.lval(x.X, write, sharded || u.localIndex(x.Index), atomic)
	case *ast.StarExpr:
		u.lval(x.X, write, sharded, atomic)
	default:
		u.readExpr(e)
	}
}

// readExpr walks one expression for shared reads, call lifts, and literal
// creations.
func (u *unit) readExpr(e ast.Expr) {
	if e == nil {
		return
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		u.emitIdent(x, false, false, false)
	case *ast.SelectorExpr:
		if ts, ok := u.info.Selections[x]; ok {
			switch ts.Kind() {
			case types.FieldVal:
				u.emitField(ts, x, false, false, false)
			}
			u.readExpr(x.X)
			return
		}
		if v, ok := u.info.Uses[x.Sel].(*types.Var); ok {
			u.emitVar(v, x.Sel.Pos(), false, false, false)
		}
	case *ast.CallExpr:
		u.call(x)
	case *ast.IndexExpr:
		u.readExpr(x.Index)
		u.lval(x.X, false, u.localIndex(x.Index), false)
	case *ast.StarExpr:
		u.lval(x.X, false, false, false)
	case *ast.UnaryExpr:
		u.readExpr(x.X)
	case *ast.BinaryExpr:
		u.readExpr(x.X)
		u.readExpr(x.Y)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				u.readExpr(kv.Key)
				u.readExpr(kv.Value)
				continue
			}
			u.readExpr(elt)
		}
	case *ast.TypeAssertExpr:
		u.readExpr(x.X)
	case *ast.SliceExpr:
		u.readExpr(x.X)
		u.readExpr(x.Low)
		u.readExpr(x.High)
		u.readExpr(x.Max)
	case *ast.IndexListExpr:
		u.readExpr(x.X)
	case *ast.FuncLit:
		u.litSnap(x)
	}
}

// localIndex reports whether every variable an index expression reads is
// local to this function — the element-disjoint fan-out assumption
// (results[j] with per-goroutine j, results[s*trials+t] on the aggregation
// side). A constant index has no local variable and is not sharded.
func (u *unit) localIndex(index ast.Expr) bool {
	var lo, hi token.Pos
	if u.node.Lit != nil {
		lo, hi = u.node.Lit.Pos(), u.node.Lit.End()
	} else if u.node.Decl != nil {
		lo, hi = u.node.Decl.Pos(), u.node.Decl.End()
	} else {
		return false
	}
	found, local := false, true
	ast.Inspect(index, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := u.info.Uses[id]
		if obj == nil {
			obj = u.info.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if isPkgLevel(v) || v.Pos() < lo || v.Pos() >= hi {
			local = false
			return true
		}
		found = true
		return true
	})
	return found && local
}

// call interprets one synchronous call: sync/atomic operations become
// atomic accesses, everything else reads its operands and records a lift
// snapshot for program callees.
func (u *unit) call(x *ast.CallExpr) {
	if fn := staticCalleeFn(u.info, x); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
		if recvOf(fn) == nil {
			// Package function: atomic.AddInt64(&x, 1).
			if len(x.Args) > 0 {
				target := ast.Unparen(x.Args[0])
				if un, ok := target.(*ast.UnaryExpr); ok && un.Op == token.AND {
					target = un.X
				}
				u.lval(target, atomicWrites(fn.Name()), false, true)
				for _, a := range x.Args[1:] {
					u.readExpr(a)
				}
				return
			}
		} else if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			// Method on an atomic type: next.Add(1).
			u.lval(sel.X, atomicWrites(fn.Name()), false, true)
			for _, a := range x.Args {
				u.readExpr(a)
			}
			return
		}
	}
	u.readExpr(x.Fun)
	for _, a := range x.Args {
		u.readExpr(a)
	}
	callees := u.e.g.CalleesAt(x)
	if len(callees) > 0 && !u.goCalls[x] {
		u.snaps = append(u.snaps, snap{
			site:    x,
			callees: callees,
			locks:   locksetOf(u.curLocks),
			live:    u.spawnerCtx(),
		})
	}
}

// atomicWrites reports whether a sync/atomic operation name stores.
func atomicWrites(name string) bool {
	return !strings.HasPrefix(name, "Load")
}

// litSnap records a non-spawned literal creation: its body is assumed to
// run where it is created, under the current locks and live contexts.
func (u *unit) litSnap(lit *ast.FuncLit) {
	t := u.e.g.NodeOfLit(lit)
	if t == nil || len(u.e.spawnTargets[t]) > 0 {
		return
	}
	u.snaps = append(u.snaps, snap{
		site:    lit,
		callees: []*callgraph.Node{t},
		locks:   locksetOf(u.curLocks),
		live:    u.spawnerCtx(),
	})
}

// emitIdent resolves one identifier access.
func (u *unit) emitIdent(id *ast.Ident, write, sharded, atomic bool) {
	obj := u.info.Uses[id]
	if obj == nil {
		obj = u.info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return
	}
	u.emitVar(v, id.Pos(), write, sharded, atomic)
}

// emitVar records an access to a variable when it is a shared location:
// captured, spawn-aliased, or a program package-level variable.
func (u *unit) emitVar(v *types.Var, pos token.Pos, write, sharded, atomic bool) {
	if loc := u.e.varLoc[v.Pos()]; loc != nil {
		u.record(loc, pos, write, atomic, sharded)
		return
	}
	if loc := u.e.alias[v.Pos()]; loc != nil {
		u.record(loc, pos, write, atomic, sharded)
		return
	}
	if u.e.progPkgVar(v) && trackableType(v.Type()) {
		u.record(u.e.locAt(PkgVar, v.Pos(), v.Name()), pos, write, atomic, sharded)
	}
}

// emitField records a field access when the base value is shared: the root
// escaped into a goroutine, is itself a shared variable, or is a program
// package-level variable.
func (u *unit) emitField(ts *types.Selection, x *ast.SelectorExpr, write, sharded, atomic bool) {
	fv, ok := ts.Obj().(*types.Var)
	if !ok || !trackableType(fv.Type()) {
		return
	}
	root := refRoot(u.info, x.X)
	if !u.sharedRoot(root) {
		return
	}
	name := typeDisplay(ts.Recv()) + "." + fv.Name()
	u.record(u.e.locAt(Field, fv.Pos(), name), x.Sel.Pos(), write, atomic, sharded)
}

// sharedRoot reports whether storage reached through obj is shared.
func (u *unit) sharedRoot(obj types.Object) bool {
	if obj == nil {
		return false
	}
	if u.e.escRoot[obj.Pos()] || u.e.varLoc[obj.Pos()] != nil || u.e.alias[obj.Pos()] != nil {
		return true
	}
	v, ok := obj.(*types.Var)
	return ok && !v.IsField() && u.e.progPkgVar(v)
}

// record merges one access into the unit's summary.
func (u *unit) record(loc *Loc, pos token.Pos, write, atomic, sharded bool) {
	if loc == nil || !pos.IsValid() {
		return
	}
	if sup := u.e.cfg.Suppress; sup != nil && (sup(pos) || sup(loc.Pos)) {
		return
	}
	key := recKey{loc: loc.Pos, pos: pos}
	sum := u.e.sums[u.node]
	acc := sum[key]
	if acc == nil {
		sum[key] = &Access{
			Loc: loc, Pos: pos,
			Write: write, Atomic: atomic, Sharded: sharded,
			Locks: locksetOf(u.curLocks),
			Path:  []string{u.name},
			ctx:   u.ctxNow(),
		}
		return
	}
	acc.Write = acc.Write || write
	acc.Atomic = acc.Atomic || atomic
	acc.Sharded = acc.Sharded && sharded
	if inter, shrunk := acc.Locks.intersect(locksetOf(u.curLocks)); shrunk {
		acc.Locks = inter
	}
	for k := range u.ctxNow() {
		acc.ctx[k] = true
	}
}

// spawnerCtx converts the current live-spawn facts to spawner contexts.
func (u *unit) spawnerCtx() ctxSet {
	out := make(ctxSet, len(u.curLive))
	for s := range u.curLive {
		out[ctxKey{site: s, spawner: true}] = true
	}
	return out
}

// ctxNow is the full context set of an access at the current point.
func (u *unit) ctxNow() ctxSet {
	out := u.spawnerCtx()
	for k := range u.gorCtx {
		out[k] = true
	}
	return out
}

// locksetOf converts lock facts to a stored lockset.
func locksetOf(facts cfg.Facts[lockTok]) lockset {
	out := make(lockset, len(facts))
	for k := range facts {
		out[k] = true
	}
	return out
}

// staticCalleeFn resolves a syntactically direct callee, or nil.
func staticCalleeFn(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// recvOf returns fn's receiver, or nil.
func recvOf(fn *types.Func) *types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	return sig.Recv()
}

// typeDisplay renders a receiver type's bare name for location display.
func typeDisplay(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
