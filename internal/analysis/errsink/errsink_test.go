package errsink_test

import (
	"testing"

	"parm/internal/analysis/analysistest"
	"parm/internal/analysis/errsink"
)

func TestErrsink(t *testing.T) {
	analysistest.Run(t, "testdata", errsink.Analyzer)
}
