// Package errsink flags swallowed errors: an error-returning call used as a
// bare statement, or an error result assigned to the blank identifier. A
// dropped Close or Flush error silently truncates the Fig-6/Fig-7 CSV
// artifacts this module exists to produce, so errors must be checked or
// deliberately waved through.
//
// Call sites whose errors are documented never to occur are exempt:
//
//   - fmt.Print/Printf/Println (stdout convention);
//   - fmt.Fprint/Fprintf/Fprintln writing to os.Stdout, os.Stderr, a
//     *strings.Builder, or a *bytes.Buffer;
//   - methods on strings.Builder and bytes.Buffer (Write* return nil error
//     by contract);
//   - methods on hash-package digests (hash.Hash.Write never fails).
//
// Deferred calls are not flagged: `defer f.Close()` on a read-only file is
// idiomatic, and rewriting it to capture the error is a judgement call the
// linter should not force.
//
// Suppression is //parm:errok on the flagged line or the line above it, for
// a site where dropping the error is a considered decision.
package errsink

import (
	"go/ast"
	"go/types"

	"parm/internal/analysis"
)

// Analyzer flags dropped error results.
var Analyzer = &analysis.Analyzer{
	Name: "errsink",
	Doc:  "flags error results dropped at call statements or assigned to _",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				return false
			case *ast.ExprStmt:
				checkExprStmt(pass, f, n)
			case *ast.AssignStmt:
				checkAssign(pass, f, n)
			}
			return true
		})
	}
	return nil
}

// checkExprStmt flags a bare call statement that discards an error result.
func checkExprStmt(pass *analysis.Pass, f *ast.File, s *ast.ExprStmt) {
	call, ok := s.X.(*ast.CallExpr)
	if !ok || exemptCall(pass, call) {
		return
	}
	if !returnsError(pass, call) {
		return
	}
	if pass.Suppressed(f, call.Pos(), "errok") {
		return
	}
	pass.Reportf(call.Pos(), "error result of %s dropped; check it or annotate //parm:errok", calleeName(call))
}

// checkAssign flags error values assigned to the blank identifier.
func checkAssign(pass *analysis.Pass, f *ast.File, s *ast.AssignStmt) {
	// Tuple form: a, _ := call().
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if ok && exemptCall(pass, call) {
			return
		}
		tv, ok2 := pass.TypesInfo.Types[s.Rhs[0]]
		if !ok2 {
			return
		}
		tuple, ok2 := tv.Type.(*types.Tuple)
		if !ok2 {
			return
		}
		for i, lhs := range s.Lhs {
			if !isBlank(lhs) || i >= tuple.Len() {
				continue
			}
			if !isErrorType(tuple.At(i).Type()) {
				continue
			}
			if pass.Suppressed(f, lhs.Pos(), "errok") {
				continue
			}
			what := "call"
			if ok {
				what = calleeName(call)
			}
			pass.Reportf(lhs.Pos(), "error from %s assigned to _; check it or annotate //parm:errok", what)
		}
		return
	}
	// Parallel form: _ = expr (per position).
	for i, lhs := range s.Lhs {
		if !isBlank(lhs) || i >= len(s.Rhs) {
			continue
		}
		rhs := s.Rhs[i]
		if call, ok := rhs.(*ast.CallExpr); ok && exemptCall(pass, call) {
			continue
		}
		tv, ok := pass.TypesInfo.Types[rhs]
		if !ok || tv.Type == nil || !isErrorType(tv.Type) {
			continue
		}
		if pass.Suppressed(f, lhs.Pos(), "errok") {
			continue
		}
		pass.Reportf(lhs.Pos(), "error value assigned to _; check it or annotate //parm:errok")
	}
}

// returnsError reports whether any result of the call has type error.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// exemptCall reports whether the call's error is documented never to occur
// (see the package comment's table).
func exemptCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name

	// Package-level fmt printers.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
			switch name {
			case "Print", "Printf", "Println":
				return true
			case "Fprint", "Fprintf", "Fprintln":
				return len(call.Args) > 0 && exemptWriter(pass, call.Args[0])
			}
			return false
		}
	}

	// Methods on never-failing receivers.
	recv := pass.TypesInfo.Types[sel.X].Type
	if recv == nil {
		return false
	}
	return neverFailingReceiver(recv)
}

// exemptWriter reports whether w is os.Stdout/os.Stderr or an in-memory
// buffer, for which fmt.Fprint* errors cannot meaningfully occur.
func exemptWriter(pass *analysis.Pass, w ast.Expr) bool {
	if sel, ok := w.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "os" {
				if sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr" {
					return true
				}
			}
		}
	}
	tv := pass.TypesInfo.Types[w].Type
	return tv != nil && neverFailingReceiver(tv)
}

// neverFailingReceiver reports whether t (or *t) is strings.Builder,
// bytes.Buffer, or a type declared in a hash package.
func neverFailingReceiver(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path, tname := obj.Pkg().Path(), obj.Name()
	switch {
	case path == "strings" && tname == "Builder":
		return true
	case path == "bytes" && tname == "Buffer":
		return true
	case path == "hash" || len(path) > 5 && path[:5] == "hash/":
		return true
	}
	return false
}

// calleeName renders the call target for diagnostics.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
