// Fixture for the errsink analyzer: dropped error results fire; checked
// errors, exempt writers, deferred calls, and //parm:errok sites do not.
package fixture

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"strings"
)

func failing() error               { return nil }
func failingPair() (int, error)    { return 0, nil }
func valueOnly() int               { return 0 }
type closer struct{}
func (closer) Close() error        { return nil }

func droppedCallStatement(c closer) {
	failing()  // want `error result of failing dropped`
	c.Close()  // want `error result of c.Close dropped`
	valueOnly() // no error result: no finding
}

func droppedBlankAssign() {
	_ = failing() // want `error value assigned to _`
	n, _ := failingPair() // want `error from failingPair assigned to _`
	_ = n
	err := failing() // checked below: no finding
	if err != nil {
		panic(err)
	}
}

func exemptPrinters(buf *bytes.Buffer, sb *strings.Builder) {
	fmt.Println("status")                  // stdout convention: no finding
	fmt.Printf("%d\n", 1)                  // no finding
	fmt.Fprintf(os.Stderr, "warn\n")       // no finding
	fmt.Fprintf(os.Stdout, "out\n")        // no finding
	fmt.Fprintf(buf, "cell,%d\n", 2)       // in-memory buffer: no finding
	fmt.Fprintln(sb, "row")                // no finding
	buf.WriteString("x")                   // Buffer writes never fail: no finding
	sb.WriteString("y")                    // no finding
	h := fnv.New64a()
	h.Write([]byte("key"))                 // hash.Hash.Write never fails: no finding
	_ = h.Sum64()
}

func deferredCloseIsIdiomatic(c closer) {
	defer c.Close() // no finding
	_ = strconv.FormatInt(3, 10)
}

func suppressedDrop(c closer) {
	// Best-effort cleanup on the failure path; the original error wins.
	//parm:errok
	c.Close()
	_ = valueOnly()
}
