// Package callgraph builds a whole-program call graph over the packages a
// ProgramPass carries, on the standard library alone. It is the reachability
// layer under the interprocedural analyzers (detflow, maporder): function
// summaries propagate along its edges.
//
// Resolution is deliberately an over-approximation, which is the safe
// direction for the determinism lints built on top (a spurious edge can at
// worst produce a finding a human audits; a missing edge hides one):
//
//   - direct calls of declared functions and methods become Static edges;
//   - calls through an interface become one Interface edge per concrete
//     type declared anywhere in the program that implements the interface
//     (method sets computed per type, pointer receivers included);
//   - a function or method value that escapes into a variable, field, or
//     argument becomes a Ref edge from the function that takes the value —
//     the graph assumes it may be called from there;
//   - a function literal becomes its own node with a Lit edge from the
//     enclosing function, again assumed callable.
//
// Calls of plain func-typed variables are not resolved (the Ref edges of
// the values that could reach them keep their targets reachable), and
// reflection is out of scope.
//
// Node identity is canonical by types.Func.FullName, so two type-check runs
// over the same source (the -tests augmented variant of a package) resolve
// to one node.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"parm/internal/analysis"
)

// EdgeKind classifies how a call edge was resolved.
type EdgeKind int

const (
	// Static is a direct call of a declared function or concrete method.
	Static EdgeKind = iota
	// Interface is one candidate of an interface-dispatched call.
	Interface
	// Ref marks a function value taken without being called; the holder may
	// call it later.
	Ref
	// Lit links a function to a literal it creates (incl. goroutine bodies).
	Lit
)

// String names the kind for diagnostics and tests.
func (k EdgeKind) String() string {
	switch k {
	case Static:
		return "static"
	case Interface:
		return "interface"
	case Ref:
		return "ref"
	default:
		return "lit"
	}
}

// Node is one function in the program: a declared function or method
// (Fn/Decl set) or a function literal (Lit set, Fn nil).
type Node struct {
	// Fn is the canonical object of a declared function; nil for literals.
	Fn *types.Func
	// Decl is the declaration carrying the body; nil for literals and for
	// functions declared without a body (assembly stubs).
	Decl *ast.FuncDecl
	// Lit is the literal for anonymous-function nodes.
	Lit *ast.FuncLit
	// Pkg is the package whose Info type-checked the node's body.
	Pkg *analysis.ProgramPackage
	// Out and In are the call edges, in deterministic build order.
	Out []*Edge
	In  []*Edge

	name string
}

// Name returns the canonical display name: types.Func.FullName for declared
// functions, "<owner>$litN" for literals.
func (n *Node) Name() string { return n.name }

// Body returns the node's function body, or nil when no source is loaded.
func (n *Node) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	if n.Lit != nil {
		return n.Lit.Body
	}
	return nil
}

// Edge is one resolved (or assumed) call from Caller to Callee.
type Edge struct {
	Caller, Callee *Node
	// Site anchors the edge in source: the CallExpr for Static/Interface,
	// the value expression for Ref, the literal for Lit.
	Site ast.Node
	Kind EdgeKind
}

// Graph is the whole-program call graph.
type Graph struct {
	Fset *token.FileSet
	// Packages is the program the graph was built from, in load order.
	Packages []*analysis.ProgramPackage
	// Nodes lists every function in deterministic order: declared functions
	// in (package, position) order, then literals in discovery order.
	Nodes []*Node

	byName map[string]*Node
	byLit  map[*ast.FuncLit]*Node
	// bySite indexes call edges by their CallExpr for the taint layer.
	bySite map[ast.Node][]*Edge
}

// NodeOf returns the node of a declared function (matching by canonical
// FullName, so objects from different type-check runs unify), or nil.
func (g *Graph) NodeOf(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.byName[fn.FullName()]
}

// NodeOfLit returns the node of a function literal, or nil.
func (g *Graph) NodeOfLit(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// CalleesAt returns the candidate callees of one call expression, in
// deterministic order. Unresolved (dynamic) calls return nil.
func (g *Graph) CalleesAt(call *ast.CallExpr) []*Node {
	edges := g.bySite[call]
	out := make([]*Node, 0, len(edges))
	for _, e := range edges {
		out = append(out, e.Callee)
	}
	return out
}

// concreteType is one named non-interface type, a dispatch candidate.
type concreteType struct {
	pkgPath string
	name    string
	typ     *types.Named
}

// Build constructs the call graph of the given program.
func Build(fset *token.FileSet, pkgs []*analysis.ProgramPackage) *Graph {
	g := &Graph{
		Fset:     fset,
		Packages: pkgs,
		byName:   make(map[string]*Node),
		byLit:    make(map[*ast.FuncLit]*Node),
		bySite:   make(map[ast.Node][]*Edge),
	}

	// Pass 1: one node per declared function, and the concrete-type index
	// interface dispatch draws candidates from.
	var concrete []concreteType
	seenType := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := fn.FullName()
				if g.byName[key] != nil {
					continue
				}
				n := &Node{Fn: fn, Decl: fd, Pkg: pkg, name: key}
				g.byName[key] = n
				g.Nodes = append(g.Nodes, n)
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			key := pkg.Path + "." + name
			if seenType[key] {
				continue
			}
			seenType[key] = true
			concrete = append(concrete, concreteType{pkgPath: pkg.Path, name: name, typ: named})
		}
	}
	sort.Slice(concrete, func(i, j int) bool {
		if concrete[i].pkgPath != concrete[j].pkgPath {
			return concrete[i].pkgPath < concrete[j].pkgPath
		}
		return concrete[i].name < concrete[j].name
	})

	// Pass 2: walk every body, resolving call sites and value references.
	b := &graphBuilder{g: g, concrete: concrete}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := g.byName[fn.FullName()]
				if n.Decl != fd {
					// A second type-check run over a file already walked.
					continue
				}
				b.walk(n, pkg, fd.Body)
			}
		}
	}
	return g
}

// graphBuilder carries the per-walk state of Build's second pass.
type graphBuilder struct {
	g        *Graph
	concrete []concreteType
	litSeq   int
	// callPos marks expressions that are the operator of an enclosing call,
	// so the reference scan below them does not double-report a Ref edge.
	callPos map[ast.Node]bool
}

func (b *graphBuilder) addEdge(caller, callee *Node, site ast.Node, kind EdgeKind) {
	if caller == nil || callee == nil {
		return
	}
	e := &Edge{Caller: caller, Callee: callee, Site: site, Kind: kind}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
	if call, ok := site.(*ast.CallExpr); ok && (kind == Static || kind == Interface) {
		b.g.bySite[call] = append(b.g.bySite[call], e)
	}
}

// walk traverses one function body, attributing edges to owner. Function
// literals become child nodes and are walked with themselves as owner.
func (b *graphBuilder) walk(owner *Node, pkg *analysis.ProgramPackage, body ast.Node) {
	if b.callPos == nil {
		b.callPos = make(map[ast.Node]bool)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			b.litSeq++
			lit := &Node{Lit: n, Pkg: pkg, name: fmt.Sprintf("%s$lit%d", owner.Name(), b.litSeq)}
			b.g.byLit[n] = lit
			b.g.Nodes = append(b.g.Nodes, lit)
			b.addEdge(owner, lit, n, Lit)
			b.walk(lit, pkg, n.Body)
			return false
		case *ast.CallExpr:
			fun := ast.Unparen(n.Fun)
			b.callPos[fun] = true
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				b.callPos[sel.Sel] = true
			}
			b.resolveCall(owner, pkg, n, fun)
			return true
		case *ast.Ident:
			if b.callPos[n] {
				return true
			}
			if fn, ok := pkg.Info.Uses[n].(*types.Func); ok {
				b.addEdge(owner, b.g.NodeOf(fn), n, Ref)
			}
			return true
		case *ast.SelectorExpr:
			if b.callPos[n] {
				return true
			}
			// A method value (x.M taken, not called): assume the holder may
			// invoke it. Interface method values fan out like dispatch.
			if sel, ok := pkg.Info.Selections[n]; ok && sel.Kind() == types.MethodVal {
				b.methodEdges(owner, n, sel, Ref)
				b.callPos[n.Sel] = true // the leaf ident repeats the object
			}
			return true
		}
		return true
	})
}

// resolveCall adds the edges of one call expression.
func (b *graphBuilder) resolveCall(owner *Node, pkg *analysis.ProgramPackage, call *ast.CallExpr, fun ast.Expr) {
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			b.addEdge(owner, b.g.NodeOf(fn), call, Static)
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal {
				b.methodEdges(owner, call, sel, Static)
			}
			// MethodExpr (T.M) resolves through Uses below; FieldVal is a
			// dynamic call through a func-typed field — unresolved.
			if sel.Kind() != types.MethodExpr {
				return
			}
		}
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			// Package-qualified call or method expression.
			b.addEdge(owner, b.g.NodeOf(fn), call, Static)
		}
	}
}

// methodEdges resolves a method selection: a Static (or Ref) edge for a
// concrete receiver, one Interface edge per implementing type otherwise.
func (b *graphBuilder) methodEdges(owner *Node, site ast.Node, sel *types.Selection, kind EdgeKind) {
	fn, ok := sel.Obj().(*types.Func)
	if !ok {
		return
	}
	iface, isIface := sel.Recv().Underlying().(*types.Interface)
	if !isIface {
		b.addEdge(owner, b.g.NodeOf(fn), site, kind)
		return
	}
	dispatchKind := Interface
	if kind == Ref {
		dispatchKind = Ref
	}
	for _, ct := range b.concrete {
		if !types.Implements(ct.typ, iface) && !types.Implements(types.NewPointer(ct.typ), iface) {
			continue
		}
		// The pointer method set is the superset; look the method up there.
		ms := types.NewMethodSet(types.NewPointer(ct.typ))
		found := ms.Lookup(fn.Pkg(), fn.Name())
		if found == nil {
			continue
		}
		impl, ok := found.Obj().(*types.Func)
		if !ok {
			continue
		}
		b.addEdge(owner, b.g.NodeOf(impl), site, dispatchKind)
	}
}
