// Package shapes is a callgraph fixture: one interface with two
// implementers, one with a value and one with a pointer receiver, so
// dispatch resolution has to consult both method sets.
package shapes

// Shape is the dispatch interface under test.
type Shape interface{ Area() float64 }

// Circle implements Shape with a value receiver.
type Circle struct{ R float64 }

// Area returns an area-ish number.
func (c Circle) Area() float64 { return 3 * c.R * c.R }

// Square implements Shape with a pointer receiver.
type Square struct{ S float64 }

// Area returns the square's area.
func (s *Square) Area() float64 { return s.S * s.S }

// NewCircle is the cross-package static-call target.
func NewCircle(r float64) Circle { return Circle{R: r} }
