// Package app is a callgraph fixture exercising recursion, cross-package
// static calls, interface dispatch, method values, and function literals.
package app

import "example/shapes"

// Fact recurses: the graph must carry a Fact -> Fact static edge.
func Fact(n int) int {
	if n <= 1 {
		return 1
	}
	return n * Fact(n-1)
}

// Total dispatches through the Shape interface: edges to every implementer.
func Total(ss []shapes.Shape) float64 {
	t := 0.0
	for _, s := range ss {
		t += s.Area()
	}
	return t
}

// Use takes a method value and spawns a goroutine literal.
func Use() float64 {
	c := shapes.NewCircle(2)
	f := c.Area
	go func() {
		_ = Fact(3)
	}()
	return f()
}
