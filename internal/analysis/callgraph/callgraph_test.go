package callgraph_test

import (
	"strings"
	"testing"

	"parm/internal/analysis/analysistest"
	"parm/internal/analysis/callgraph"
)

// buildFixture loads the two-package fixture module and builds its graph.
func buildFixture(t *testing.T) *callgraph.Graph {
	t.Helper()
	fset, pkgs := analysistest.LoadPackages(t, "testdata/src")
	return callgraph.Build(fset, pkgs)
}

// hasEdge reports whether the graph holds an edge caller -> callee of the
// given kind, matching node names exactly.
func hasEdge(g *callgraph.Graph, caller, callee string, kind callgraph.EdgeKind) bool {
	for _, n := range g.Nodes {
		if n.Name() != caller {
			continue
		}
		for _, e := range n.Out {
			if e.Callee.Name() == callee && e.Kind == kind {
				return true
			}
		}
	}
	return false
}

func edgeDump(g *callgraph.Graph) string {
	var b strings.Builder
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			b.WriteString(n.Name() + " -[" + e.Kind.String() + "]-> " + e.Callee.Name() + "\n")
		}
	}
	return b.String()
}

func TestRecursionEdge(t *testing.T) {
	g := buildFixture(t)
	if !hasEdge(g, "example/app.Fact", "example/app.Fact", callgraph.Static) {
		t.Errorf("missing recursive static edge Fact -> Fact\n%s", edgeDump(g))
	}
}

func TestCrossPackageStaticEdge(t *testing.T) {
	g := buildFixture(t)
	if !hasEdge(g, "example/app.Use", "example/shapes.NewCircle", callgraph.Static) {
		t.Errorf("missing cross-package static edge Use -> NewCircle\n%s", edgeDump(g))
	}
}

func TestInterfaceDispatchReachesEveryImplementer(t *testing.T) {
	g := buildFixture(t)
	for _, impl := range []string{
		"(example/shapes.Circle).Area",
		"(*example/shapes.Square).Area",
	} {
		if !hasEdge(g, "example/app.Total", impl, callgraph.Interface) {
			t.Errorf("interface dispatch missing candidate %s\n%s", impl, edgeDump(g))
		}
	}
}

func TestMethodValueRefEdge(t *testing.T) {
	g := buildFixture(t)
	if !hasEdge(g, "example/app.Use", "(example/shapes.Circle).Area", callgraph.Ref) {
		t.Errorf("missing method-value ref edge Use -> Circle.Area\n%s", edgeDump(g))
	}
}

func TestGoroutineLiteralNode(t *testing.T) {
	g := buildFixture(t)
	// Use spawns one literal; the literal calls Fact.
	var lit string
	for _, n := range g.Nodes {
		if strings.HasPrefix(n.Name(), "example/app.Use$lit") {
			lit = n.Name()
		}
	}
	if lit == "" {
		t.Fatalf("no literal node under Use\n%s", edgeDump(g))
	}
	if !hasEdge(g, "example/app.Use", lit, callgraph.Lit) {
		t.Errorf("missing lit edge Use -> %s\n%s", lit, edgeDump(g))
	}
	if !hasEdge(g, lit, "example/app.Fact", callgraph.Static) {
		t.Errorf("missing static edge %s -> Fact\n%s", lit, edgeDump(g))
	}
}

// TestDeterministicNodeOrder rebuilds the graph and requires identical node
// and edge enumeration — parmvet's own output must be deterministic.
func TestDeterministicNodeOrder(t *testing.T) {
	a := edgeDump(buildFixture(t))
	b := edgeDump(buildFixture(t))
	if a != b {
		t.Errorf("nondeterministic graph enumeration:\n--- first\n%s--- second\n%s", a, b)
	}
}
