// Package racecheck is the whole-program data-race lint: it runs the conc
// engine — spawn discovery, escape analysis, summary-based locksets with
// WaitGroup/channel happens-before joins — and reports every shared
// location with two accesses that may run concurrently, at least one a
// write, with no common lock ordering them. Each location gets one
// diagnostic: the lexicographically minimal two-site witness, anchored at
// the later access.
//
// An audited //parm:conc on either access line (or the location's
// declaration line) suppresses the report.
package racecheck

import (
	"go/token"
	"path/filepath"
	"strings"

	"parm/internal/analysis"
	"parm/internal/analysis/conc"
)

// Analyzer reports unsynchronized conflicting accesses to shared state.
var Analyzer = &analysis.Analyzer{
	Name: "racecheck",
	Doc: "reports write/write and read/write access pairs on package variables, " +
		"captured variables, and goroutine-escaped fields that may run " +
		"concurrently with no common lock; suppress with //parm:conc",
	RunProgram: run,
}

func run(pass *analysis.ProgramPass) error {
	res := conc.Analyze(pass, conc.Config{
		Suppress: func(pos token.Pos) bool { return pass.Suppressed(pos, "conc") },
	})
	for _, r := range res.Races {
		if !pass.Analyzable(r.Second.Pos) || pass.Suppressed(r.Second.Pos, "conc") || pass.Suppressed(r.First.Pos, "conc") {
			continue
		}
		first := pass.Fset.Position(r.First.Pos)
		pass.Reportf(r.Second.Pos,
			"unsynchronized %s of %s %s may race with the %s at %s:%d (in %s); hold one mutex on both sides, join the goroutine first, or annotate //parm:conc",
			accessWord(r.Second), r.Loc.Kind, r.Loc.Name,
			accessWord(r.First), filepath.Base(first.Filename), first.Line,
			strings.Join(r.Second.Path, " -> "))
	}
	return nil
}

func accessWord(a *conc.Access) string {
	if a.Write {
		return "write"
	}
	return "read"
}
