package racecheck_test

import (
	"path/filepath"
	"testing"

	"parm/internal/analysis/analysistest"
	"parm/internal/analysis/racecheck"
)

func TestRacecheck(t *testing.T) {
	analysistest.RunProgram(t, filepath.Join("testdata", "src"), racecheck.Analyzer)
}
