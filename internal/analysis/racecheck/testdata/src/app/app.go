// Package app exercises the racecheck analyzer: captured variables,
// package variables, lock discipline, and every join primitive.
package app

import (
	"sync"

	"app/worker"
)

var mu sync.Mutex
var rw sync.RWMutex

// CapturedRace writes a captured variable on both sides of a live spawn.
func CapturedRace() int {
	n := 0
	done := make(chan bool)
	go func() {
		n++
		done <- true
	}()
	n++ // want `unsynchronized write of captured variable n may race with the write`
	<-done
	return n // after the join receive: ordered, silent
}

// GuardedClean holds one mutex on both sides: no report.
func GuardedClean() int {
	v := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		mu.Lock()
		v++
		mu.Unlock()
		wg.Done()
	}()
	mu.Lock()
	v++
	mu.Unlock()
	wg.Wait()
	return v
}

// RWOk pairs a write under Lock with a read under RLock: exclusive, silent.
func RWOk() int {
	c := 0
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { rw.Lock(); c++; rw.Unlock(); wg.Done() }()
	go func() { rw.RLock(); _ = c; rw.RUnlock(); wg.Done() }()
	wg.Wait()
	return c
}

// RWBad writes under RLock on both sides: two readers may hold the lock at
// once, so the writes race.
func RWBad() int {
	c := 0
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { rw.RLock(); c++; rw.RUnlock(); wg.Done() }()
	go func() { rw.RLock(); c++; rw.RUnlock(); wg.Done() }() // want `unsynchronized write of captured variable c may race with the write`
	wg.Wait()
	return c
}

// JoinWindow reads in the window between the spawn and the Wait.
func JoinWindow() int {
	total := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { total++; wg.Done() }()
	t := total // want `unsynchronized read of captured variable total may race with the write`
	wg.Wait()
	total++ // after Wait: ordered, silent
	return t + total
}

// ChanJoin is clean: the close is a join, and the read follows the receive.
func ChanJoin() int {
	s := 0
	done := make(chan struct{})
	go func() {
		s = 1
		close(done)
	}()
	<-done
	return s
}

// ShardedClean is the sanctioned fan-out idiom: every worker writes its own
// element through a function-local index.
func ShardedClean() []int {
	results := make([]int, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(j int) {
			results[j] = j * j
			wg.Done()
		}(i)
	}
	wg.Wait()
	return results
}

// RunAsync is a spawn wrapper: calling it go-runs its argument.
func RunAsync(f func()) {
	go f()
}

// WrapperRace spawns through the wrapper and writes while the goroutine is
// live.
func WrapperRace() int {
	m := map[string]int{}
	done := make(chan struct{})
	RunAsync(func() {
		m["k"] = 1
		close(done)
	})
	m["k"] = 2 // want `unsynchronized write of captured variable m may race with the write`
	<-done
	return m["k"]
}

// addTo writes through a pointer parameter and signals a parameter channel.
func addTo(p *int, done chan struct{}) {
	*p += 1
	close(done)
}

// PtrArgRace aliases a local through a go-call argument.
func PtrArgRace() int {
	x := 0
	done := make(chan struct{})
	go addTo(&x, done)
	x++ // want `unsynchronized write of captured variable x may race with the write`
	<-done
	return x
}

// FieldRace reads an exported field while the goroutine owning the receiver
// writes it (the diagnostic anchors at the write in worker).
func FieldRace() int {
	b := &worker.Bad{}
	var wg sync.WaitGroup
	wg.Add(1)
	go b.Run(&wg)
	n := b.N
	wg.Wait()
	return n
}

// FieldGuarded spawns two instances of a mutex-guarded worker: clean.
func FieldGuarded() int {
	p := &worker.Pool{}
	var wg sync.WaitGroup
	wg.Add(2)
	go p.Run(&wg)
	go p.Run(&wg)
	wg.Wait()
	return p.Sum()
}

// CrossPkg races a package variable of another package against a read in
// the spawner's live window (anchored at the write in worker).
func CrossPkg() int {
	done := make(chan struct{})
	go func() {
		worker.Bump()
		close(done)
	}()
	sum := worker.Counter
	<-done
	return sum
}

var stats int

// SuppressedWrite carries an audited annotation on the goroutine side.
func SuppressedWrite() int {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		stats++ //parm:conc audited: test-only counter, torn values tolerated
		wg.Done()
	}()
	stats++
	wg.Wait()
	return stats
}
