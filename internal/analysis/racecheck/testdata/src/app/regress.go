// Regression distilled from a real repository finding: a sampler object
// whose read path runs under concurrent stress-test goroutines while a
// mutating method writes the same fields with no lock. In the repository
// (chip.AssignDomain vs chip.SamplePSN under the PSN pipeline stress test)
// the callers serialize the phases and the lines carry an audited
// //parm:conc; this fixture keeps the unannotated shape reported.
package app

import "sync"

// Meter is the distilled Chip: per-slot state read by samplers and written
// by an assignment phase.
type Meter struct {
	Slots []int
}

// Sample sums the slots; safe only while no assignment runs.
func (m *Meter) Sample() int {
	total := 0
	for _, s := range m.Slots {
		total += s
	}
	return total
}

// Assign writes one slot with no lock. Under StressReaders' goroutines the
// write races with Sample's reads — the engine cannot see any cross-phase
// ordering, and here there is none.
func (m *Meter) Assign(slot, v int) {
	m.Slots[slot] = v // want `unsynchronized write of field Meter.Slots may race with the read`
}

// StressReaders spawns concurrent samplers over the meter, then mutates
// while they run.
func StressReaders(m *Meter) int {
	var wg sync.WaitGroup
	last := 0
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last = m.Sample() // want `unsynchronized write of captured variable last may race with the write`
		}()
	}
	m.Assign(0, 7)
	wg.Wait()
	return last + m.Sample()
}
