// Package worker provides cross-package race scenarios for the racecheck
// fixtures: a shared package counter and spawned worker types.
package worker

import "sync"

// Counter is shared package state with no lock.
var Counter int

// Bump increments the package counter; racy when called from a goroutine
// while the spawner reads.
func Bump() {
	Counter++ // want `unsynchronized write of package variable Counter may race with the read`
}

// Pool guards its state with a mutex.
type Pool struct {
	mu  sync.Mutex
	sum int
}

// Run accumulates under the lock.
func (p *Pool) Run(wg *sync.WaitGroup) {
	p.mu.Lock()
	p.sum++
	p.mu.Unlock()
	wg.Done()
}

// Sum reads under the lock.
func (p *Pool) Sum() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sum
}

// Bad exposes an unguarded field.
type Bad struct {
	N int
}

// Run writes the field with no lock; the receiver escapes through the go
// statement, so the spawner's concurrent read races.
func (b *Bad) Run(wg *sync.WaitGroup) {
	b.N++ // want `unsynchronized write of field Bad.N may race with the read`
	wg.Done()
}
