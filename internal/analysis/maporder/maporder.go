// Package maporder is the source-side companion to detflow: it restricts
// the interprocedural taint engine to iteration-order sources (map range
// and sync.Map.Range) and anchors one diagnostic at each iteration whose
// element order can reach a determinism sink without an intervening sort.
//
// Where detflow points at the sink ("this output is nondeterministic"),
// maporder points at the loop to rewrite ("iterate sorted keys here").
// An audited //parm:det on the range line — or on the sink it feeds —
// suppresses the finding.
package maporder

import (
	"go/token"
	"path/filepath"

	"parm/internal/analysis"
	"parm/internal/analysis/callgraph"
	"parm/internal/analysis/taint"
)

// Analyzer flags map iterations whose order reaches a sink unsorted.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flags map and sync.Map iterations whose element order reaches a " +
		"determinism sink without an intervening sort; suppress with //parm:det",
	RunProgram: run,
}

func run(pass *analysis.ProgramPass) error {
	g := callgraph.Build(pass.Fset, pass.Packages)
	calls, fields := taint.ParmSinks()
	flows := taint.Run(g, taint.Spec{
		SinkCalls:  calls,
		SinkFields: fields,
		Kinds: map[taint.Kind]bool{
			taint.KindMapRange:     true,
			taint.KindSyncMapRange: true,
		},
		Suppress: func(pos token.Pos) bool { return pass.Suppressed(pos, "det") },
	})
	// One report per iteration site, at its first (position-ordered) sink.
	seen := make(map[token.Pos]bool)
	for _, f := range flows {
		if seen[f.Source.Pos] || !pass.Analyzable(f.Source.Pos) {
			continue
		}
		if pass.Suppressed(f.Sink.Pos, "det") {
			continue
		}
		seen[f.Source.Pos] = true
		sink := pass.Fset.Position(f.Sink.Pos)
		pass.Reportf(f.Source.Pos,
			"%s reaches %s (%s:%d) without an intervening sort via %s; iterate sorted keys or annotate //parm:det",
			f.Source.Desc, f.Sink.Desc, filepath.Base(sink.Filename), sink.Line,
			f.PathString())
	}
	return nil
}
