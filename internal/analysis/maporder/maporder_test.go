package maporder_test

import (
	"testing"

	"parm/internal/analysis/analysistest"
	"parm/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.RunProgram(t, "testdata/src", maporder.Analyzer)
}
