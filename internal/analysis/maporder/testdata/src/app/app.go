// Package app exercises maporder: the diagnostic anchors at the map
// iteration, not at the sink it feeds.
package app

import (
	"encoding/json"
	"math/rand"
	"sort"

	"parm/internal/core"
)

// Dump leaks map order into the json encoder; the loop is the finding.
func Dump(power map[string]float64) ([]byte, error) {
	var names []string
	for n := range power { // want `map iteration order .* reaches json encoding`
		names = append(names, n)
	}
	return json.Marshal(names)
}

// DumpSorted sorts between the walk and the sink: clean.
func DumpSorted(power map[string]float64) ([]byte, error) {
	var names []string
	for n := range power {
		names = append(names, n)
	}
	sort.Strings(names)
	return json.Marshal(names)
}

// Fill stores per-iteration into Metrics through a helper call.
func add(m *core.Metrics, name string, p float64) {
	m.Apps = append(m.Apps, core.AppOutcome{Name: name, IPC: p})
}

func Fill(power map[string]float64, m *core.Metrics) {
	for name, p := range power { // want `map iteration order .* reaches store to core.Metrics.Apps`
		add(m, name, p)
	}
}

// Audited carries the //parm:det escape hatch: clean.
func Audited(power map[string]float64) ([]byte, error) {
	var names []string
	for n := range power { //parm:det
		names = append(names, n)
	}
	return json.Marshal(names)
}

// Seeded draws global rand into the encoder — out of maporder's scope
// (detflow's business), so it must stay silent here.
func Seeded() ([]byte, error) {
	return json.Marshal(rand.Float64())
}
