// Package fixture exercises the floateq analyzer: exact float equality
// fires unless it is a zero check or an approved bit-exact helper.
package fixture

// equal compares floats exactly: fires.
func equal(a, b float64) bool {
	return a == b // want `exact floating-point == comparison`
}

// notEqual fires for != too.
func notEqual(a, b float64) bool {
	return a != b // want `exact floating-point != comparison`
}

// constCompare fires against a nonzero constant.
func constCompare(a float64) bool {
	return a == 0.05 // want `exact floating-point == comparison`
}

// zeroCheck is idiomatic and exact: no report.
func zeroCheck(a float64) bool {
	return a == 0
}

// zeroNeq is the not-set sentinel test: no report.
func zeroNeq(a float64) bool {
	return a != 0.0
}

// ordering comparisons are never flagged.
func ordering(a, b float64) bool {
	return a < b || a >= b
}

// intEqual is not floating point: no report.
func intEqual(a, b int) bool {
	return a == b
}

// bitExactEqual is an approved memo-key helper: suppressed per comparison.
func bitExactEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		//parm:floateq
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// trailing suppresses on the comparison's own line.
func trailing(a, b float64) bool {
	return a == b //parm:floateq
}

// float32Equal fires for any float kind.
func float32Equal(a, b float32) bool {
	return a == b // want `exact floating-point == comparison`
}
