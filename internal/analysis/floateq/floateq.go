// Package floateq flags == and != between floating-point operands.
// Exact float equality is almost always a bug in numerical code — values
// that are mathematically equal differ after independent rounding — and the
// few deliberate uses in this repository (bit-exact memo-key comparison,
// the solve-cache contract) must be explicit.
//
// Two forms are accepted without a report:
//
//   - comparison against an exact zero constant: zero is exactly
//     representable, and `x == 0` sentinel/empty checks are idiomatic;
//   - comparisons annotated //parm:floateq (same line or the line above),
//     the marker for approved bit-exact equality helpers.
//
// Ordering comparisons (<, <=, >, >=) are never flagged.
package floateq

import (
	"go/ast"
	"go/constant"
	"go/token"

	"parm/internal/analysis"
)

// Analyzer flags exact floating-point equality comparisons.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc: "flags ==/!= on floating-point operands outside approved bit-exact " +
		"helpers (//parm:floateq) and zero checks",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, xok := pass.TypesInfo.Types[be.X]
			yt, yok := pass.TypesInfo.Types[be.Y]
			if !xok || !yok || !analysis.IsFloat(xt.Type) || !analysis.IsFloat(yt.Type) {
				return true
			}
			if isZero(xt.Value) || isZero(yt.Value) {
				return true
			}
			if pass.Suppressed(f, be.OpPos, "floateq") {
				return true
			}
			pass.Reportf(be.OpPos, "exact floating-point %s comparison; use an epsilon "+
				"helper, restructure as an ordering, or annotate //parm:floateq", be.Op)
			return true
		})
	}
	return nil
}

// isZero reports whether v is a numeric constant exactly equal to zero.
func isZero(v constant.Value) bool {
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	}
	return false
}
