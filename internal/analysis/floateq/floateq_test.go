package floateq_test

import (
	"testing"

	"parm/internal/analysis/analysistest"
	"parm/internal/analysis/floateq"
)

func TestFloateq(t *testing.T) {
	analysistest.Run(t, "testdata", floateq.Analyzer)
}
