package atomicmix_test

import (
	"path/filepath"
	"testing"

	"parm/internal/analysis/analysistest"
	"parm/internal/analysis/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	analysistest.RunProgram(t, filepath.Join("testdata", "src"), atomicmix.Analyzer)
}
