// Package atomicmix is the whole-program atomic-discipline lint: it runs
// the conc engine and reports every shared location accessed both through
// sync/atomic (package calls or atomic-type methods) and through plain
// loads or stores that may run concurrently with the atomic side — a mixed
// protocol that forfeits atomicity. Copying an atomic value (s := counter)
// is a plain read and is caught too. A plain store ordered before any
// goroutine exists (pre-spawn initialization) stays silent.
//
// Diagnostics anchor at the plain access; an audited //parm:conc on the
// plain or atomic access line suppresses the report.
package atomicmix

import (
	"go/token"
	"path/filepath"

	"parm/internal/analysis"
	"parm/internal/analysis/conc"
)

// Analyzer reports locations mixing sync/atomic and plain access.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "reports shared locations accessed both via sync/atomic and via plain " +
		"loads/stores that may run concurrently; suppress with //parm:conc",
	RunProgram: run,
}

func run(pass *analysis.ProgramPass) error {
	res := conc.Analyze(pass, conc.Config{
		Suppress: func(pos token.Pos) bool { return pass.Suppressed(pos, "conc") },
	})
	for _, m := range res.Mixes {
		if !pass.Analyzable(m.Plain.Pos) || pass.Suppressed(m.Plain.Pos, "conc") || pass.Suppressed(m.Atomic.Pos, "conc") {
			continue
		}
		at := pass.Fset.Position(m.Atomic.Pos)
		pass.Reportf(m.Plain.Pos,
			"plain %s of %s %s mixes with the atomic access at %s:%d; use sync/atomic on every access or annotate //parm:conc",
			accessWord(m.Plain), m.Loc.Kind, m.Loc.Name,
			filepath.Base(at.Filename), at.Line)
	}
	return nil
}

func accessWord(a *conc.Access) string {
	if a.Write {
		return "write"
	}
	return "read"
}
