// Package app exercises the atomicmix analyzer: sync/atomic package calls,
// atomic-type methods, value copies, and the pre-spawn-store exemption.
package app

import (
	"sync"
	"sync/atomic"
)

var ops int64

// MixedCounter increments plainly while a goroutine increments atomically.
func MixedCounter() int64 {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		atomic.AddInt64(&ops, 1)
		wg.Done()
	}()
	ops++ // want `plain write of package variable ops mixes with the atomic access`
	wg.Wait()
	return atomic.LoadInt64(&ops)
}

var total int64

// InitThenAtomic stores before any goroutine exists: ordered, silent.
func InitThenAtomic() int64 {
	total = 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		atomic.AddInt64(&total, 1)
		wg.Done()
	}()
	wg.Wait()
	return atomic.LoadInt64(&total)
}

// AllAtomic keeps every access atomic: silent.
func AllAtomic() int64 {
	var n atomic.Int64
	done := make(chan struct{})
	go func() {
		n.Add(1)
		close(done)
	}()
	v := n.Load()
	<-done
	return v
}

var hits atomic.Int64

// CopyMix copies the atomic value while an Add is in flight: the copy is a
// plain read of the whole word.
func CopyMix() int64 {
	done := make(chan struct{})
	go func() {
		hits.Add(1)
		close(done)
	}()
	snap := hits // want `plain read of package variable hits mixes with the atomic access`
	<-done
	return snap.Load()
}

var flags uint32

// SuppressedMix carries an audited annotation on the plain access.
func SuppressedMix() uint32 {
	done := make(chan struct{})
	go func() {
		atomic.StoreUint32(&flags, 1)
		close(done)
	}()
	f := flags //parm:conc audited: stale read tolerated, monotonic flag
	<-done
	return f
}
