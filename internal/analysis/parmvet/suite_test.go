package parmvet_test

import (
	"testing"

	"parm/internal/analysis/parmvet"
)

// TestRepositoryIsClean runs the full parmvet suite over the module —
// the same invocation as `go run ./cmd/parmvet ./...` — and fails on any
// finding, so plain `go test ./...` keeps the repository green under its
// own linter.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	findings, err := parmvet.Check([]string{"parm/..."})
	if err != nil {
		t.Fatalf("parmvet: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
