// Package parmvet assembles the project's analyzer suite and scopes each
// analyzer to the packages whose invariants it guards (DESIGN.md §7):
//
//   - detrange and poolgo police the deterministic simulation pipeline
//     (core, chip, pdn, noc, mapping, sched);
//   - unitsafe polices the electrical boundaries (pdn, power, chip);
//   - floateq polices every internal package;
//   - hotalloc and lockhold (flow-sensitive, over internal/analysis/cfg)
//     police the whole module: hot-loop allocation-freedom and lock
//     discipline apply wherever //parm:hot functions or mutexes appear;
//   - errsink polices internal/ and cmd/ — library and binary code must
//     check or explicitly wave through errors;
//   - simclock polices the simulation pipeline plus the workload/experiment
//     layers, where wall-clock or global-rand reads break replayability;
//   - obsreg polices the whole module: telemetry registration must stay out
//     of //parm:hot loops and Timeline events must carry simulated, not
//     wall-clock, timestamps;
//   - detflow and maporder (whole-program, over internal/analysis/callgraph
//     and internal/analysis/taint) police the byte-identical contract
//     interprocedurally: no nondeterminism source — map or sync.Map
//     iteration order, channel arrival order, select choice, unseeded
//     global rand, %p formatting — may flow into a determinism sink (json
//     encoding, report tables, timeline records, core.Metrics stores),
//     through any chain of calls, closures, or struct fields;
//   - racecheck and atomicmix (whole-program, over internal/analysis/conc)
//     police shared-state discipline: no two concurrently reachable
//     accesses to a package variable, captured variable, or
//     goroutine-escaped field may conflict without a common lock or a
//     WaitGroup/channel join ordering them, and no location may mix
//     sync/atomic with plain loads and stores.
//
// cmd/parmvet is a thin wrapper around Check; the analysis driver test runs
// the same suite over ./... so `go test` alone keeps the repository green
// under its own linter.
package parmvet

import (
	"strings"

	"parm/internal/analysis/atomicmix"
	"parm/internal/analysis/detflow"
	"parm/internal/analysis/detrange"
	"parm/internal/analysis/driver"
	"parm/internal/analysis/errsink"
	"parm/internal/analysis/floateq"
	"parm/internal/analysis/hotalloc"
	"parm/internal/analysis/lockhold"
	"parm/internal/analysis/maporder"
	"parm/internal/analysis/obsreg"
	"parm/internal/analysis/poolgo"
	"parm/internal/analysis/racecheck"
	"parm/internal/analysis/simclock"
	"parm/internal/analysis/unitsafe"
)

// simulationPackages hold the deterministic measurement pipeline.
var simulationPackages = []string{
	"parm/internal/core",
	"parm/internal/chip",
	"parm/internal/pdn",
	"parm/internal/noc",
	"parm/internal/mapping",
	"parm/internal/sched",
}

// electricalPackages carry physical quantities across exported boundaries.
var electricalPackages = []string{
	"parm/internal/pdn",
	"parm/internal/power",
	"parm/internal/chip",
}

// replayablePackages must be deterministic under a fixed seed: the
// simulation pipeline plus the workload-model and experiment layers that
// feed it.
var replayablePackages = append(append([]string{}, simulationPackages...),
	"parm/internal/appmodel",
	"parm/internal/expr",
)

func matchAny(paths []string) func(string) bool {
	return func(p string) bool {
		for _, want := range paths {
			if p == want {
				return true
			}
		}
		return false
	}
}

func matchPrefix(prefix string) func(string) bool {
	return func(p string) bool { return strings.HasPrefix(p, prefix) }
}

// Rules returns the suite with its package scoping.
func Rules() []driver.Rule {
	return []driver.Rule{
		{Analyzer: detrange.Analyzer, Match: matchAny(simulationPackages)},
		{Analyzer: poolgo.Analyzer, Match: matchAny(simulationPackages)},
		{Analyzer: unitsafe.Analyzer, Match: matchAny(electricalPackages)},
		{Analyzer: floateq.Analyzer, Match: matchPrefix("parm/internal/")},
		{Analyzer: hotalloc.Analyzer, Match: matchPrefix("parm/")},
		{Analyzer: lockhold.Analyzer, Match: matchPrefix("parm/")},
		{Analyzer: errsink.Analyzer, Match: func(p string) bool {
			return strings.HasPrefix(p, "parm/internal/") || strings.HasPrefix(p, "parm/cmd/")
		}},
		{Analyzer: simclock.Analyzer, Match: matchAny(replayablePackages)},
		{Analyzer: obsreg.Analyzer, Match: matchPrefix("parm/")},
		// Whole-program rules: the engine always sees every loaded package
		// (flows cross package boundaries); Match scopes where findings may
		// anchor, and the module owns all of it.
		{Analyzer: detflow.Analyzer, Match: matchPrefix("parm/")},
		{Analyzer: maporder.Analyzer, Match: matchPrefix("parm/")},
		{Analyzer: racecheck.Analyzer, Match: matchPrefix("parm/")},
		{Analyzer: atomicmix.Analyzer, Match: matchPrefix("parm/")},
	}
}

// Check runs the suite over the packages named by patterns.
func Check(patterns []string) ([]driver.Finding, error) {
	return driver.Run(patterns, Rules())
}

// CheckOpts is Check with driver options (CI runs with Tests on).
func CheckOpts(patterns []string, opts driver.Options) ([]driver.Finding, error) {
	return driver.RunDirOpts("", patterns, Rules(), opts)
}
