// Package obsreg enforces the telemetry layer's two-phase contract
// (internal/obs): registration is a startup-time operation, updates are the
// only telemetry the hot paths may perform, and event timestamps carry
// simulated time.
//
// Flagged:
//
//   - Registry.Counter / Registry.Gauge / Registry.Histogram calls inside a
//     loop of a //parm:hot function. Registration takes the registry lock
//     and may allocate, which breaks the 0 allocs/op discipline hotalloc
//     guards; pre-register the metric at startup and update it in the loop.
//   - wall-clock reads (time.Now / time.Since / time.Until) anywhere in the
//     arguments of a Timeline.Record call. Timeline events must be stamped
//     with the engine's simulated clock, or replayed runs produce different
//     traces — the same determinism contract simclock enforces package-wide,
//     applied to the one API where a wall timestamp is most tempting.
//   - a Timeline.StartSpan result bound to a local variable that some path
//     to a function exit fails to pass to Timeline.EndSpan. A leaked span
//     stays open on the parent stack, mis-parenting every later span and
//     skewing the rollup; close it on every path (defer EndSpan right after
//     StartSpan is the sanctioned idiom). Locals that escape — stored in a
//     field, passed elsewhere, reassigned — are not tracked: the balance is
//     then someone else's responsibility by design (e.g. the engine's
//     windowSpan field rolls across samples).
//
// Receiver types are matched by name (Registry, Timeline): the analyzer
// also runs over fixture code that cannot import internal/obs, and no other
// type in the module uses those names.
//
// Suppression is //parm:obsreg on the flagged line or the line above it.
package obsreg

import (
	"go/ast"
	"go/token"
	"go/types"

	"parm/internal/analysis"
	"parm/internal/analysis/cfg"
)

// Analyzer flags telemetry registration in hot loops and wall-clock
// timestamps fed to the event timeline.
var Analyzer = &analysis.Analyzer{
	Name: "obsreg",
	Doc: "flags obs.Registry registration calls inside //parm:hot loops, " +
		"wall-clock timestamps in obs.Timeline.Record arguments, and " +
		"obs.Timeline.StartSpan locals not closed by EndSpan on every path",
	Run: run,
}

// registrationMethods are the Registry methods that allocate and lock.
var registrationMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.Suppressed(f, fd.Pos(), "hot") {
				checkHotBody(pass, f, fd.Body)
			}
			checkSpanBalance(pass, f, fd.Body)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isMethodOn(pass, call, "Timeline", "Record") {
				return true
			}
			checkRecordArgs(pass, f, call)
			return true
		})
	}
	return nil
}

// checkHotBody flags registration calls inside the loop blocks of one
// //parm:hot function body.
func checkHotBody(pass *analysis.Pass, f *ast.File, body *ast.BlockStmt) {
	g := cfg.New(body)
	loops := g.LoopBlocks()
	for _, b := range g.Blocks {
		if !loops[b] {
			continue
		}
		for _, node := range b.Nodes {
			cfg.Inspect(node, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !registrationMethods[sel.Sel.Name] {
					return true
				}
				if !isMethodOn(pass, call, "Registry", sel.Sel.Name) {
					return true
				}
				if !pass.Suppressed(f, call.Pos(), "obsreg") {
					pass.Reportf(call.Pos(), "Registry.%s registers a metric inside a hot loop; "+
						"pre-register at startup and update the stored handle here", sel.Sel.Name)
				}
				return true
			})
		}
	}
}

// checkRecordArgs flags wall-clock reads anywhere inside the arguments of a
// Timeline.Record call.
func checkRecordArgs(pass *analysis.Pass, f *ast.File, record *ast.CallExpr) {
	for _, arg := range record.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || pkg.Imported().Path() != "time" {
				return true
			}
			name := sel.Sel.Name
			if name == "Now" || name == "Since" || name == "Until" {
				if !pass.Suppressed(f, call.Pos(), "obsreg") {
					pass.Reportf(call.Pos(), "time.%s feeds a wall-clock timestamp into Timeline.Record; "+
						"stamp events with the simulated engine clock", name)
				}
			}
			return true
		})
	}
}

// checkSpanBalance verifies every tracked StartSpan local is passed to
// EndSpan on all control-flow paths to a function exit.
//
// Tracked means: bound by `sp := <Timeline>.StartSpan(...)` and used only as
// the first argument of <Timeline>.EndSpan calls. Any other use (field
// store, reassignment, argument passing) conservatively untracks the
// variable — ownership has escaped this function's CFG. A defer'd EndSpan
// closes the span on every path, so deferred closes exempt their variable
// from path analysis. Function literals are skipped throughout (cfg.Inspect
// semantics): a span opened in a closure is that closure's concern.
func checkSpanBalance(pass *analysis.Pass, f *ast.File, body *ast.BlockStmt) {
	// Pass 1: collect candidate span locals defined from StartSpan.
	type spanVar struct {
		def  *ast.Ident // the := binding
		call *ast.CallExpr
	}
	tracked := map[types.Object]spanVar{}
	cfg.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isMethodOn(pass, call, "Timeline", "StartSpan") {
			return true
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			tracked[obj] = spanVar{def: id, call: call}
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}

	// Pass 2: sanction the closing uses (EndSpan arg 0) and untrack
	// everything with any other use. Deferred EndSpans close on every path.
	sanctioned := map[token.Pos]bool{}
	deferClosed := map[types.Object]bool{}
	cfg.Inspect(body, func(n ast.Node) bool {
		var call *ast.CallExpr
		isDefer := false
		switch s := n.(type) {
		case *ast.DeferStmt:
			call, isDefer = s.Call, true
		case *ast.CallExpr:
			call = s
		default:
			return true
		}
		if !isMethodOn(pass, call, "Timeline", "EndSpan") || len(call.Args) == 0 {
			return true
		}
		id, ok := call.Args[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if _, isTracked := tracked[obj]; !isTracked {
			return true
		}
		sanctioned[id.Pos()] = true
		if isDefer {
			deferClosed[obj] = true
		}
		return true
	})
	cfg.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		sv, isTracked := tracked[obj]
		if !isTracked || id == sv.def || sanctioned[id.Pos()] {
			return true
		}
		delete(tracked, obj) // escaped: any non-EndSpan use
		return true
	})
	for obj := range deferClosed {
		delete(tracked, obj) // closed on every path by defer
	}
	if len(tracked) == 0 {
		return
	}

	// Pass 3: may-analysis over the CFG — a span open on ANY path reaching
	// a function exit is a leak on that path.
	g := cfg.New(body)
	step := func(b *cfg.Block, in cfg.Facts[types.Object]) cfg.Facts[types.Object] {
		out := in.Clone()
		for _, node := range b.Nodes {
			cfg.Inspect(node, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.AssignStmt:
					if s.Tok != token.DEFINE || len(s.Lhs) != 1 {
						return true
					}
					if id, ok := s.Lhs[0].(*ast.Ident); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							if _, isTracked := tracked[obj]; isTracked {
								out = out.Add(obj)
							}
						}
					}
				case *ast.CallExpr:
					if isMethodOn(pass, s, "Timeline", "EndSpan") && len(s.Args) > 0 {
						if id, ok := s.Args[0].(*ast.Ident); ok {
							out.Delete(pass.TypesInfo.Uses[id])
						}
					}
				}
				return true
			})
		}
		return out
	}
	in := cfg.Forward(g, step)
	reported := map[types.Object]bool{}
	for _, b := range g.Blocks {
		if len(b.Succs) != 0 {
			continue
		}
		// Forward returns fixpoint INPUT facts; re-run the transfer to get
		// what is still open when this exit block falls off the function.
		for obj := range step(b, in[b]) {
			sv, isTracked := tracked[obj]
			if !isTracked || reported[obj] {
				continue
			}
			reported[obj] = true
			if !pass.Suppressed(f, sv.call.Pos(), "obsreg") {
				pass.Reportf(sv.call.Pos(), "StartSpan result %q is not passed to EndSpan on every path; "+
					"defer Timeline.EndSpan right after StartSpan or close it before each return", sv.def.Name)
			}
		}
	}
}

// isMethodOn reports whether call is a method call named method whose
// receiver's (possibly pointer) named type is called typeName.
func isMethodOn(pass *analysis.Pass, call *ast.CallExpr, typeName, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == typeName
}
