// Package obsreg enforces the telemetry layer's two-phase contract
// (internal/obs): registration is a startup-time operation, updates are the
// only telemetry the hot paths may perform, and event timestamps carry
// simulated time.
//
// Flagged:
//
//   - Registry.Counter / Registry.Gauge / Registry.Histogram calls inside a
//     loop of a //parm:hot function. Registration takes the registry lock
//     and may allocate, which breaks the 0 allocs/op discipline hotalloc
//     guards; pre-register the metric at startup and update it in the loop.
//   - wall-clock reads (time.Now / time.Since / time.Until) anywhere in the
//     arguments of a Timeline.Record call. Timeline events must be stamped
//     with the engine's simulated clock, or replayed runs produce different
//     traces — the same determinism contract simclock enforces package-wide,
//     applied to the one API where a wall timestamp is most tempting.
//
// Receiver types are matched by name (Registry, Timeline): the analyzer
// also runs over fixture code that cannot import internal/obs, and no other
// type in the module uses those names.
//
// Suppression is //parm:obsreg on the flagged line or the line above it.
package obsreg

import (
	"go/ast"
	"go/types"

	"parm/internal/analysis"
	"parm/internal/analysis/cfg"
)

// Analyzer flags telemetry registration in hot loops and wall-clock
// timestamps fed to the event timeline.
var Analyzer = &analysis.Analyzer{
	Name: "obsreg",
	Doc: "flags obs.Registry registration calls inside //parm:hot loops and " +
		"wall-clock timestamps in obs.Timeline.Record arguments",
	Run: run,
}

// registrationMethods are the Registry methods that allocate and lock.
var registrationMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.Suppressed(f, fd.Pos(), "hot") {
				checkHotBody(pass, f, fd.Body)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isMethodOn(pass, call, "Timeline", "Record") {
				return true
			}
			checkRecordArgs(pass, f, call)
			return true
		})
	}
	return nil
}

// checkHotBody flags registration calls inside the loop blocks of one
// //parm:hot function body.
func checkHotBody(pass *analysis.Pass, f *ast.File, body *ast.BlockStmt) {
	g := cfg.New(body)
	loops := g.LoopBlocks()
	for _, b := range g.Blocks {
		if !loops[b] {
			continue
		}
		for _, node := range b.Nodes {
			cfg.Inspect(node, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !registrationMethods[sel.Sel.Name] {
					return true
				}
				if !isMethodOn(pass, call, "Registry", sel.Sel.Name) {
					return true
				}
				if !pass.Suppressed(f, call.Pos(), "obsreg") {
					pass.Reportf(call.Pos(), "Registry.%s registers a metric inside a hot loop; "+
						"pre-register at startup and update the stored handle here", sel.Sel.Name)
				}
				return true
			})
		}
	}
}

// checkRecordArgs flags wall-clock reads anywhere inside the arguments of a
// Timeline.Record call.
func checkRecordArgs(pass *analysis.Pass, f *ast.File, record *ast.CallExpr) {
	for _, arg := range record.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || pkg.Imported().Path() != "time" {
				return true
			}
			name := sel.Sel.Name
			if name == "Now" || name == "Since" || name == "Until" {
				if !pass.Suppressed(f, call.Pos(), "obsreg") {
					pass.Reportf(call.Pos(), "time.%s feeds a wall-clock timestamp into Timeline.Record; "+
						"stamp events with the simulated engine clock", name)
				}
			}
			return true
		})
	}
}

// isMethodOn reports whether call is a method call named method whose
// receiver's (possibly pointer) named type is called typeName.
func isMethodOn(pass *analysis.Pass, call *ast.CallExpr, typeName, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == typeName
}
