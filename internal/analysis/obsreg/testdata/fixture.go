// Fixture for the obsreg analyzer: registration inside hot loops and
// wall-clock timestamps into Timeline.Record fire; startup registration,
// hot-loop updates on pre-registered handles, sim-clock timestamps, and
// //parm:obsreg sites do not. The local Registry/Timeline stand-ins mirror
// internal/obs (fixtures type-check against the standard library alone, so
// the analyzer matches the receiver type names).
package fixture

import "time"

type Counter struct{ n uint64 }

func (c *Counter) Inc() { c.n++ }

type Registry struct{}

func (r *Registry) Counter(name string) *Counter                { return &Counter{} }
func (r *Registry) Gauge(name string) *Counter                  { return &Counter{} }
func (r *Registry) Histogram(name string, b []float64) *Counter { return &Counter{} }

type Event struct {
	Name string
	TS   float64
}

type Timeline struct{}

type SpanID uint64

func (t *Timeline) Record(ev Event)                                 {}
func (t *Timeline) StartSpan(name string, ts float64, app int) SpanID { return 1 }
func (t *Timeline) EndSpan(id SpanID, ts float64)                   {}

//parm:hot
func hotLoopRegistration(r *Registry, xs []float64) {
	for range xs {
		c := r.Counter("pdn/solves") // want `Registry.Counter registers a metric inside a hot loop`
		c.Inc()
		g := r.Gauge("pdn/depth") // want `Registry.Gauge registers a metric inside a hot loop`
		g.Inc()
		h := r.Histogram("pdn/dist", nil) // want `Registry.Histogram registers a metric inside a hot loop`
		h.Inc()
	}
}

//parm:hot
func hotLoopUpdateIsFine(r *Registry, xs []float64) {
	// Pre-registered outside the loop: the sanctioned two-phase pattern.
	c := r.Counter("noc/flits")
	for range xs {
		c.Inc()
	}
}

func coldLoopRegistrationIsFine(r *Registry, names []string) []*Counter {
	// Startup registration may loop (per-domain counters); only //parm:hot
	// functions are policed.
	out := make([]*Counter, 0, len(names))
	for _, n := range names {
		out = append(out, r.Counter(n))
	}
	return out
}

//parm:hot
func suppressedRegistration(r *Registry, xs []float64) {
	for range xs {
		//parm:obsreg
		c := r.Counter("justified")
		c.Inc()
	}
}

func wallClockTimestamp(t *Timeline) {
	t.Record(Event{Name: "map", TS: float64(time.Now().UnixNano())}) // want `time.Now feeds a wall-clock timestamp into Timeline.Record`
}

func wallClockDuration(t *Timeline, start time.Time) {
	t.Record(Event{Name: "app", TS: time.Since(start).Seconds()}) // want `time.Since feeds a wall-clock timestamp into Timeline.Record`
}

func simClockTimestampIsFine(t *Timeline, now float64) {
	t.Record(Event{Name: "map", TS: now})
}

func suppressedWallClock(t *Timeline) {
	//parm:obsreg
	t.Record(Event{Name: "debug", TS: float64(time.Now().UnixNano())})
}

func unrelatedRecordIsFine(now float64) {
	type logger struct{}
	_ = now
}

// Seeded regression for the span-balance check: the error path returns with
// the span still open.
func unmatchedOnErrorPath(tl *Timeline, now float64, work func() error) error {
	sp := tl.StartSpan("noc_measure", now, -1) // want `StartSpan result "sp" is not passed to EndSpan on every path`
	if err := work(); err != nil {
		return err // leaks sp
	}
	tl.EndSpan(sp, now)
	return nil
}

func balancedStraightLine(tl *Timeline, now float64) {
	sp := tl.StartSpan("domain_solve", now, -1)
	tl.EndSpan(sp, now)
}

func balancedByEndBeforeErrorCheck(tl *Timeline, now float64, work func() error) error {
	sp := tl.StartSpan("mapper_decide", now, 3)
	err := work()
	tl.EndSpan(sp, now)
	if err != nil {
		return err
	}
	return nil
}

func deferClosesEveryPath(tl *Timeline, now float64, work func() error) error {
	sp := tl.StartSpan("psn_sample", now, -1)
	defer tl.EndSpan(sp, now)
	if err := work(); err != nil {
		return err
	}
	return nil
}

type holder struct{ open SpanID }

func escapedToFieldIsUntracked(tl *Timeline, h *holder, now float64, fail bool) {
	// Stored in a field: ownership leaves this function (the engine's
	// windowSpan idiom), so the balance is not this CFG's to enforce.
	sp := tl.StartSpan("window", now, -1)
	h.open = sp
	if fail {
		return
	}
	tl.EndSpan(h.open, now)
}

func branchBalancedBothArms(tl *Timeline, now float64, fast bool) {
	sp := tl.StartSpan("noc_window", now, -1)
	if fast {
		tl.EndSpan(sp, now)
		return
	}
	tl.EndSpan(sp, now+1)
}

func loopLocalSpansAreFine(tl *Timeline, now float64, xs []float64) {
	for range xs {
		sp := tl.StartSpan("iter", now, -1)
		tl.EndSpan(sp, now)
	}
}

func suppressedLeak(tl *Timeline, now float64, fail bool) {
	//parm:obsreg
	sp := tl.StartSpan("debug", now, -1)
	if fail {
		return
	}
	tl.EndSpan(sp, now)
}
