// Fixture for the obsreg analyzer: registration inside hot loops and
// wall-clock timestamps into Timeline.Record fire; startup registration,
// hot-loop updates on pre-registered handles, sim-clock timestamps, and
// //parm:obsreg sites do not. The local Registry/Timeline stand-ins mirror
// internal/obs (fixtures type-check against the standard library alone, so
// the analyzer matches the receiver type names).
package fixture

import "time"

type Counter struct{ n uint64 }

func (c *Counter) Inc() { c.n++ }

type Registry struct{}

func (r *Registry) Counter(name string) *Counter                { return &Counter{} }
func (r *Registry) Gauge(name string) *Counter                  { return &Counter{} }
func (r *Registry) Histogram(name string, b []float64) *Counter { return &Counter{} }

type Event struct {
	Name string
	TS   float64
}

type Timeline struct{}

func (t *Timeline) Record(ev Event) {}

//parm:hot
func hotLoopRegistration(r *Registry, xs []float64) {
	for range xs {
		c := r.Counter("pdn/solves") // want `Registry.Counter registers a metric inside a hot loop`
		c.Inc()
		g := r.Gauge("pdn/depth") // want `Registry.Gauge registers a metric inside a hot loop`
		g.Inc()
		h := r.Histogram("pdn/dist", nil) // want `Registry.Histogram registers a metric inside a hot loop`
		h.Inc()
	}
}

//parm:hot
func hotLoopUpdateIsFine(r *Registry, xs []float64) {
	// Pre-registered outside the loop: the sanctioned two-phase pattern.
	c := r.Counter("noc/flits")
	for range xs {
		c.Inc()
	}
}

func coldLoopRegistrationIsFine(r *Registry, names []string) []*Counter {
	// Startup registration may loop (per-domain counters); only //parm:hot
	// functions are policed.
	out := make([]*Counter, 0, len(names))
	for _, n := range names {
		out = append(out, r.Counter(n))
	}
	return out
}

//parm:hot
func suppressedRegistration(r *Registry, xs []float64) {
	for range xs {
		//parm:obsreg
		c := r.Counter("justified")
		c.Inc()
	}
}

func wallClockTimestamp(t *Timeline) {
	t.Record(Event{Name: "map", TS: float64(time.Now().UnixNano())}) // want `time.Now feeds a wall-clock timestamp into Timeline.Record`
}

func wallClockDuration(t *Timeline, start time.Time) {
	t.Record(Event{Name: "app", TS: time.Since(start).Seconds()}) // want `time.Since feeds a wall-clock timestamp into Timeline.Record`
}

func simClockTimestampIsFine(t *Timeline, now float64) {
	t.Record(Event{Name: "map", TS: now})
}

func suppressedWallClock(t *Timeline) {
	//parm:obsreg
	t.Record(Event{Name: "debug", TS: float64(time.Now().UnixNano())})
}

func unrelatedRecordIsFine(now float64) {
	type logger struct{}
	_ = now
}
