package obsreg_test

import (
	"testing"

	"parm/internal/analysis/analysistest"
	"parm/internal/analysis/obsreg"
)

func TestObsreg(t *testing.T) {
	analysistest.Run(t, "testdata", obsreg.Analyzer)
}
