// Package analysistest runs an analyzer over a fixture directory and checks
// its diagnostics against `// want` expectations, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract on the standard
// library alone.
//
// Expectations are trailing comments on the line the diagnostic anchors to:
//
//	for k := range m { // want `range over map`
//
// The backquoted text is a regular expression matched against the
// diagnostic message. A line may carry several `// want` comments; every
// expectation must be matched by exactly one diagnostic and vice versa.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"parm/internal/analysis"
)

// wantRe extracts the expectation pattern from a `// want` comment.
var wantRe = regexp.MustCompile("// want `([^`]*)`")

// expectation is one `// want` pattern with match bookkeeping.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run parses every .go file directly under dir as one package, type-checks
// it, applies the analyzer, and diffs diagnostics against the `// want`
// comments. Failures are reported through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var expects []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		files = append(files, f)
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("analysistest: %s:%d: bad want pattern %q: %v", path, i+1, m[1], err)
				}
				expects = append(expects, &expectation{file: path, line: i + 1, pattern: re})
			}
		}
	}
	if len(files) == 0 {
		t.Fatalf("analysistest: no fixture files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(files[0].Name.Name, fset, files, info)
	if err != nil {
		t.Fatalf("analysistest: type-checking %s: %v", dir, err)
	}

	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { got = append(got, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: %s: %v", a.Name, err)
	}
	sort.Slice(got, func(i, j int) bool { return got[i].Pos < got[j].Pos })

	for _, d := range got {
		pos := fset.Position(d.Pos)
		ok := false
		for _, e := range expects {
			if e.matched || e.file != pos.Filename || e.line != pos.Line {
				continue
			}
			if e.pattern.MatchString(d.Message) {
				e.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.pattern)
		}
	}
}
