// Package analysistest runs an analyzer over a fixture directory and checks
// its diagnostics against `// want` expectations, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract on the standard
// library alone.
//
// Expectations are trailing comments on the line the diagnostic anchors to:
//
//	for k := range m { // want `range over map`
//
// The backquoted text is a regular expression matched against the
// diagnostic message. A line may carry several `// want` comments; every
// expectation must be matched by exactly one diagnostic and vice versa.
//
// Two fixture shapes are supported. Run loads every .go file directly under
// dir as one package, for single-package analyzers. RunProgram (and the
// LoadPackages helper under it) loads a fixture module rooted at dir: every
// directory below dir that holds .go files is one package, importable by
// its slash path relative to dir — so a tree like
//
//	testdata/src/parm/internal/core/metrics.go
//	testdata/src/parm/internal/report/report.go
//
// yields packages "parm/internal/core" and "parm/internal/report" with
// working cross-imports, letting whole-program analyzers exercise flows
// through the same import paths their production source/sink tables name.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"parm/internal/analysis"
)

// wantRe extracts the expectation pattern from a `// want` comment.
var wantRe = regexp.MustCompile("// want `([^`]*)`")

// expectation is one `// want` pattern with match bookkeeping.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// collectWants scans one file's source for `// want` comments.
func collectWants(t *testing.T, path string, src []byte) []*expectation {
	t.Helper()
	var expects []*expectation
	for i, line := range strings.Split(string(src), "\n") {
		for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("analysistest: %s:%d: bad want pattern %q: %v", path, i+1, m[1], err)
			}
			expects = append(expects, &expectation{file: path, line: i + 1, pattern: re})
		}
	}
	return expects
}

// diff matches diagnostics against expectations one-to-one, reporting
// unexpected diagnostics and unmatched expectations through t.
func diff(t *testing.T, fset *token.FileSet, got []analysis.Diagnostic, expects []*expectation) {
	t.Helper()
	sort.Slice(got, func(i, j int) bool { return got[i].Pos < got[j].Pos })
	for _, d := range got {
		pos := fset.Position(d.Pos)
		ok := false
		for _, e := range expects {
			if e.matched || e.file != pos.Filename || e.line != pos.Line {
				continue
			}
			if e.pattern.MatchString(d.Message) {
				e.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.pattern)
		}
	}
}

// Run parses every .go file directly under dir as one package, type-checks
// it, applies the analyzer, and diffs diagnostics against the `// want`
// comments. Failures are reported through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var expects []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		files = append(files, f)
		expects = append(expects, collectWants(t, path, src)...)
	}
	if len(files) == 0 {
		t.Fatalf("analysistest: no fixture files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(files[0].Name.Name, fset, files, info)
	if err != nil {
		t.Fatalf("analysistest: type-checking %s: %v", dir, err)
	}

	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { got = append(got, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: %s: %v", a.Name, err)
	}
	diff(t, fset, got, expects)
}

// LoadPackages loads the fixture module rooted at dir: every directory
// below dir holding .go files becomes one package whose import path is its
// slash-separated path relative to dir. Imports between fixture packages
// resolve inside the tree; everything else resolves from $GOROOT source.
// Packages come back in dependency order (imports before importers), with
// the fileset and every `// want` expectation found in the tree.
func LoadPackages(t *testing.T, dir string) (*token.FileSet, []*analysis.ProgramPackage) {
	t.Helper()
	fset, pkgs, _ := loadPackages(t, dir)
	return fset, pkgs
}

func loadPackages(t *testing.T, dir string) (*token.FileSet, []*analysis.ProgramPackage, []*expectation) {
	t.Helper()
	// Discover fixture packages: directories with .go files.
	pkgDirs := make(map[string]string) // import path -> directory
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".go") {
			return err
		}
		rel, err := filepath.Rel(dir, filepath.Dir(path))
		if err != nil {
			return err
		}
		pkgDirs[filepath.ToSlash(rel)] = filepath.Dir(path)
		return nil
	})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	if len(pkgDirs) == 0 {
		t.Fatalf("analysistest: no fixture packages under %s", dir)
	}

	fset := token.NewFileSet()
	var expects []*expectation
	var order []*analysis.ProgramPackage
	checked := make(map[string]*analysis.ProgramPackage)
	checking := make(map[string]bool)
	std := importer.ForCompiler(fset, "source", nil)

	var check func(path string) (*analysis.ProgramPackage, error)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if _, ok := pkgDirs[path]; ok {
			pkg, err := check(path)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
		return std.Import(path)
	})
	check = func(path string) (*analysis.ProgramPackage, error) {
		if pkg, ok := checked[path]; ok {
			return pkg, nil
		}
		if checking[path] {
			t.Fatalf("analysistest: import cycle through %s", path)
		}
		checking[path] = true
		defer delete(checking, path)

		pdir := pkgDirs[path]
		entries, err := os.ReadDir(pdir)
		if err != nil {
			return nil, err
		}
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			fpath := filepath.Join(pdir, e.Name())
			src, err := os.ReadFile(fpath)
			if err != nil {
				return nil, err
			}
			f, err := parser.ParseFile(fset, fpath, src, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
			expects = append(expects, collectWants(t, fpath, src)...)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, files, info)
		if err != nil {
			return nil, err
		}
		pkg := &analysis.ProgramPackage{
			Path: path, Files: files, Analyzable: files, Types: tpkg, Info: info,
		}
		checked[path] = pkg
		order = append(order, pkg)
		return pkg, nil
	}

	paths := make([]string, 0, len(pkgDirs))
	for p := range pkgDirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, err := check(p); err != nil {
			t.Fatalf("analysistest: type-checking %s: %v", p, err)
		}
	}
	return fset, order, expects
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// RunProgram loads the fixture module rooted at dir (see LoadPackages),
// applies a whole-program analyzer, and diffs its diagnostics against the
// `// want` comments anywhere in the tree.
func RunProgram(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	fset, pkgs, expects := loadPackages(t, dir)
	var got []analysis.Diagnostic
	pass := &analysis.ProgramPass{
		Analyzer: a,
		Fset:     fset,
		Packages: pkgs,
		Report:   func(d analysis.Diagnostic) { got = append(got, d) },
	}
	if err := a.RunProgram(pass); err != nil {
		t.Fatalf("analysistest: %s: %v", a.Name, err)
	}
	diff(t, fset, got, expects)
}
