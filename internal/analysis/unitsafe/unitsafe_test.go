package unitsafe_test

import (
	"testing"

	"parm/internal/analysis/analysistest"
	"parm/internal/analysis/unitsafe"
)

func TestUnitsafe(t *testing.T) {
	analysistest.Run(t, "testdata", unitsafe.Analyzer)
}
