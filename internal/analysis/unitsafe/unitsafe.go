// Package unitsafe flags exported API boundaries that pass physical
// quantities as bare float64. The electrical packages (power, pdn, chip)
// define named unit types — power.Volts, power.Watts, power.Seconds — so
// that a voltage cannot be handed to a watts parameter; this analyzer keeps
// new exported signatures from regressing to untyped floats.
//
// A parameter or exported struct field is considered a physical quantity
// when its name matches a unit vocabulary (vdd/volt..., watt/power-as-watts,
// dt/duration/seconds); it must then be declared with a named unit type,
// not float64 (or []float64). Intentional bare floats — e.g. a fraction of
// Vdd rather than an absolute voltage — are annotated //parm:unitless.
package unitsafe

import (
	"go/ast"
	"go/types"
	"strings"

	"parm/internal/analysis"
)

// Analyzer flags unit-suggesting names declared as bare float64.
var Analyzer = &analysis.Analyzer{
	Name: "unitsafe",
	Doc: "flags exported functions and struct fields that pass physical " +
		"quantities (volts, watts, seconds) as bare float64",
	Run: run,
}

// unitFor returns the unit type a name's vocabulary demands, or "" when the
// name suggests no physical quantity.
func unitFor(name string) string {
	n := strings.ToLower(name)
	switch {
	case strings.Contains(n, "vdd"), strings.Contains(n, "volt"):
		return "power.Volts"
	case strings.Contains(n, "watt"):
		return "power.Watts"
	case n == "dt", strings.Contains(n, "duration"), strings.Contains(n, "seconds"):
		return "power.Seconds"
	}
	return ""
}

// isBareFloat reports whether t is the predeclared float64 (directly, or as
// slice/array/pointer element), rather than a named unit type.
func isBareFloat(t types.Type) bool {
	switch tt := t.(type) {
	case *types.Basic:
		return tt.Kind() == types.Float64
	case *types.Slice:
		return isBareFloat(tt.Elem())
	case *types.Array:
		return isBareFloat(tt.Elem())
	case *types.Pointer:
		return isBareFloat(tt.Elem())
	}
	return false
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Type.Params == nil {
					return true
				}
				for _, field := range d.Type.Params.List {
					checkField(pass, f, d.Name.Name, field)
				}
				return true
			case *ast.TypeSpec:
				st, ok := d.Type.(*ast.StructType)
				if !ok || !d.Name.IsExported() {
					return true
				}
				for _, field := range st.Fields.List {
					exported := false
					for _, name := range field.Names {
						if name.IsExported() {
							exported = true
						}
					}
					if exported {
						checkField(pass, f, d.Name.Name, field)
					}
				}
				return true
			}
			return true
		})
	}
	return nil
}

// checkField reports every name of field that demands a unit type while the
// field is declared bare float64.
func checkField(pass *analysis.Pass, f *ast.File, owner string, field *ast.Field) {
	tv, ok := pass.TypesInfo.Types[field.Type]
	if !ok || !isBareFloat(tv.Type) {
		return
	}
	for _, name := range field.Names {
		unit := unitFor(name.Name)
		if unit == "" {
			continue
		}
		if pass.Suppressed(f, name.Pos(), "unitless") {
			continue
		}
		pass.Reportf(name.Pos(), "%s: parameter or field %q carries a physical quantity "+
			"as bare float64; use %s (or annotate //parm:unitless)", owner, name.Name, unit)
	}
}
