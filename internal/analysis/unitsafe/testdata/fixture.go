// Package fixture exercises the unitsafe analyzer: unit-suggesting names in
// exported signatures must use named unit types, not bare float64.
package fixture

// Volts stands in for the real power.Volts unit type.
type Volts float64

// Watts stands in for power.Watts.
type Watts float64

// Frequency passes a voltage as bare float64: fires.
func Frequency(vdd float64) float64 { // want `parameter or field "vdd" carries a physical quantity`
	return float64(vdd)
}

// FrequencyTyped uses the named unit: no report.
func FrequencyTyped(vdd Volts) float64 {
	return float64(vdd)
}

// NewBudget names its parameter in watts but types it float64: fires.
func NewBudget(limitWatts float64) Watts { // want `parameter or field "limitWatts" carries a physical quantity`
	return Watts(limitWatts)
}

// Wait covers the seconds vocabulary: fires on both.
func Wait(dt float64, warmupDuration float64) { // want `parameter or field "dt"` // want `parameter or field "warmupDuration"`
}

// Levels flags unit-suggesting slices of bare float64.
func Levels(vdds []float64) int { // want `parameter or field "vdds"`
	return len(vdds)
}

// frequency is unexported: boundary rule only, no report.
func frequency(vdd float64) float64 {
	return vdd
}

// Config's exported fields are API surface: Vdd fires, Ratio carries no
// unit vocabulary, and the unexported field is not a boundary.
type Config struct {
	Vdd float64 // want `parameter or field "Vdd"`
	// Ratio is dimensionless.
	Ratio      float64
	limitWatts float64
}

// TypedConfig uses unit types throughout: no report.
type TypedConfig struct {
	Vdd      Volts
	LimitWattsBudget Watts
}

// Droop is a fraction of Vdd, not an absolute voltage; the suppression
// documents the deliberate bare float.
//
//parm:unitless
func Droop(vddFraction float64) float64 {
	return vddFraction
}
