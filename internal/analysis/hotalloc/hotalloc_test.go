package hotalloc_test

import (
	"testing"

	"parm/internal/analysis/analysistest"
	"parm/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer)
}
