// Fixture for the hotalloc analyzer: allocations inside loops of functions
// marked //parm:hot fire; the same constructs outside loops, in unmarked
// functions, or under //parm:alloc do not.
package fixture

import "fmt"

type point struct{ x, y float64 }

// sink keeps values alive so the fixture type-checks without vet noise.
var sink interface{}

//parm:hot
func hotLoopAllocs(n int) {
	buf := make([]float64, n) // outside any loop: allowed
	for i := 0; i < n; i++ {
		s := make([]float64, 4) // want `make allocates in hot loop`
		p := new(point)         // want `new allocates in hot loop`
		buf = append(buf, 1)    // want `append in hot loop may grow`
		q := &point{x: 1}       // want `&composite literal allocates in hot loop`
		lit := []int{1, 2}      // want `slice literal allocates in hot loop`
		m := map[int]int{}      // want `map literal allocates in hot loop`
		f := func() int { return i } // want `closure allocated in hot loop`
		_ = s
		_ = p
		_ = q
		_ = lit
		_ = m
		_ = f
	}
	sink = buf
}

//parm:hot
func hotBoxing(vals []float64) {
	total := 0.0
	for _, v := range vals {
		fmt.Sprintf("%v", v) // want `argument boxes float64 into an interface in hot loop`
		sink = interface{}(v) // want `conversion to interface boxes float64 in hot loop`
		total += v
	}
	sink = total
}

//parm:hot
func hotStringConv(words []string) {
	for _, w := range words {
		b := []byte(w) // want `string/byte-slice conversion copies in hot loop`
		_ = b
	}
}

//parm:hot
func hotSuppressed(n int) {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		// Capacity preallocated above; growth cannot occur.
		//parm:alloc
		out = append(out, i)
	}
	sink = out
}

//parm:hot
func hotCleanLoop(vals []float64) float64 {
	// An allocation-free loop: arithmetic, indexing, pointer passing.
	total := 0.0
	for i := range vals {
		total += vals[i]
	}
	return total
}

// coldLoop is not marked //parm:hot: nothing fires.
func coldLoop(n int) {
	for i := 0; i < n; i++ {
		s := make([]float64, 4)
		_ = s
		sink = fmt.Sprintf("%d", i)
	}
}

//parm:hot
func hotVariadicSpread(args []interface{}) {
	for range args {
		// Spreading an existing []interface{} does not box per element.
		fmt.Sprint(args...)
	}
}
