// Package hotalloc enforces the allocation-free discipline of the
// measurement hot paths: inside any loop of a function marked //parm:hot
// (the PSN solver's RK4 stepping and the NoC ring-buffer cycle loop), no
// statement may allocate. The ROADMAP's "fast as the hardware allows" goal
// rests on these paths staying at 0 allocs/op — the companion
// BenchmarkPSNStepAllocs / BenchmarkNoCStepAllocs guards assert the same
// property dynamically with testing.AllocsPerRun.
//
// Loops are found flow-sensitively: the function body's control-flow graph
// is built (internal/analysis/cfg) and a node is "in a loop" when its basic
// block lies on a control-flow cycle, which covers for/range loops of any
// nesting as well as backward branches the syntax alone would miss.
//
// Flagged inside loop blocks of hot functions:
//
//   - make, new — direct allocations;
//   - append — the backing array may grow (suppress with //parm:alloc when
//     the capacity is provably preallocated);
//   - composite literals of slice or map type, and &T{...} — heap
//     allocations;
//   - function literals — closure allocation;
//   - string <-> []byte / []rune conversions — copying allocations;
//   - interface boxing: a concrete, non-pointer-sized value passed where an
//     interface is expected (call arguments, including variadic ...interface{},
//     and explicit conversions) allocates to box the value.
//
// Suppression is //parm:alloc on the flagged line or the line above it,
// asserting the allocation cannot occur at steady state (e.g. an append
// whose capacity was preallocated, or a first-call-only growth path).
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"parm/internal/analysis"
	"parm/internal/analysis/cfg"
)

// Analyzer flags allocations inside loops of //parm:hot functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flags allocations, append growth, closures, and interface boxing " +
		"inside loops of functions marked //parm:hot",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !pass.Suppressed(f, fd.Pos(), "hot") {
				continue // //parm:hot doubles as the marker directive
			}
			checkBody(pass, f, fd.Body)
		}
	}
	return nil
}

// checkBody flags allocation sites inside the loop blocks of one hot
// function body.
func checkBody(pass *analysis.Pass, f *ast.File, body *ast.BlockStmt) {
	g := cfg.New(body)
	loops := g.LoopBlocks()
	for _, b := range g.Blocks {
		if !loops[b] {
			continue
		}
		for _, n := range b.Nodes {
			checkNode(pass, f, n)
		}
	}
}

// checkNode walks one in-loop node, reporting allocation sites. Function
// literal bodies are not descended into (the literal itself is the finding;
// its body runs under its own CFG if the function is itself marked hot).
func checkNode(pass *analysis.Pass, f *ast.File, root ast.Node) {
	cfg.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(pass, f, n.Pos(), "closure allocated in hot loop; hoist the function literal out of the loop")
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(pass, f, n.Pos(), "&composite literal allocates in hot loop; reuse a scratch value")
				}
			}
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[n]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				report(pass, f, n.Pos(), "slice literal allocates in hot loop; hoist or reuse a scratch slice")
			case *types.Map:
				report(pass, f, n.Pos(), "map literal allocates in hot loop; hoist or reuse a scratch map")
			}
		case *ast.CallExpr:
			checkCall(pass, f, n)
		}
		return true
	})
}

// checkCall classifies one in-loop call: builtin allocators, allocating
// conversions, and interface-boxing arguments.
func checkCall(pass *analysis.Pass, f *ast.File, call *ast.CallExpr) {
	// Builtins make/new/append.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				report(pass, f, call.Pos(), "make allocates in hot loop; hoist or reuse a scratch buffer")
			case "new":
				report(pass, f, call.Pos(), "new allocates in hot loop; hoist or reuse a scratch value")
			case "append":
				report(pass, f, call.Pos(), "append in hot loop may grow its backing array; "+
					"preallocate capacity and annotate //parm:alloc, or reuse a scratch slice")
			}
			return
		}
	}

	// Conversions: T(x). A conversion allocates when it crosses the
	// string/byte-slice boundary or boxes into an interface.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := pass.TypesInfo.Types[call.Args[0]].Type
		if src != nil {
			if isStringByteConversion(dst, src) {
				report(pass, f, call.Pos(), "string/byte-slice conversion copies in hot loop; hoist it")
				return
			}
			if types.IsInterface(dst.Underlying()) && !types.IsInterface(src.Underlying()) {
				report(pass, f, call.Pos(), "conversion to interface boxes %s in hot loop; hoist it", src)
				return
			}
		}
		return
	}

	// Ordinary call: arguments passed to interface parameters box.
	sig := signatureOf(pass, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := pass.TypesInfo.Types[arg]
		if at.Type == nil || types.IsInterface(at.Type.Underlying()) {
			continue
		}
		if at.IsNil() || at.Value != nil {
			continue // untyped nil / constants: no runtime boxing of a hot value
		}
		if _, isPtr := at.Type.Underlying().(*types.Pointer); isPtr {
			continue // pointers box without copying the pointee; cheap enough
		}
		report(pass, f, arg.Pos(), "argument boxes %s into an interface in hot loop; hoist the call or avoid the interface", at.Type)
	}
}

// signatureOf resolves the static signature of a (non-builtin,
// non-conversion) call, or nil.
func signatureOf(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// isStringByteConversion reports whether dst(src) crosses the string <->
// []byte/[]rune boundary (an O(n) copying conversion).
func isStringByteConversion(dst, src types.Type) bool {
	isString := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

// report emits a diagnostic unless a //parm:alloc directive covers the line.
func report(pass *analysis.Pass, f *ast.File, pos token.Pos, format string, args ...interface{}) {
	if pass.Suppressed(f, pos, "alloc") {
		return
	}
	pass.Reportf(pos, format, args...)
}
