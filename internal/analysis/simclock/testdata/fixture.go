// Fixture for the simclock analyzer: wall-clock reads and global rand draws
// fire; injected generators, constructors, and //parm:wallclock sites do
// not.
package fixture

import (
	"math/rand"
	"time"
)

var sink interface{}

func wallClockReads(start time.Time) {
	now := time.Now()        // want `time.Now reads the wall clock`
	el := time.Since(start)  // want `time.Since reads the wall clock`
	du := time.Until(start)  // want `time.Until reads the wall clock`
	sink = []interface{}{now, el, du}
}

func globalRandDraws() {
	a := rand.Intn(10)    // want `rand.Intn draws from the global source`
	b := rand.Float64()   // want `rand.Float64 draws from the global source`
	rand.Shuffle(3, func(i, j int) {}) // want `rand.Shuffle draws from the global source`
	sink = a + int(b)
}

func injectedGeneratorIsFine(rng *rand.Rand) {
	// Drawing from an injected, seeded generator is the sanctioned pattern.
	a := rng.Intn(10)
	b := rng.Float64()
	sink = a + int(b)
}

func constructorsAreFine(seed int64) *rand.Rand {
	src := rand.NewSource(seed)
	return rand.New(src)
}

func nonClockTimeAPIIsFine(d time.Duration) time.Duration {
	// Duration arithmetic and formatting do not read the clock.
	return d * 2
}

func suppressedProgressLog() {
	// Progress reporting outside the measured path may read wall time.
	//parm:wallclock
	t := time.Now()
	sink = t
}
