// Package simclock keeps wall-clock time and global randomness out of the
// simulation packages. Simulated time advances only through the engine's
// event clock, and stochastic inputs (workload arrivals, mapping
// tie-breaks) must flow from an injected, seeded *rand.Rand so a Fig-6
// sweep replays bit-identically. A stray time.Now or global rand.Float64
// silently breaks run-to-run determinism — the same class of bug detrange
// guards against at the map-iteration level.
//
// Flagged:
//
//   - time.Now, time.Since, time.Until — wall-clock reads;
//   - package-level math/rand and math/rand/v2 calls (rand.Intn,
//     rand.Float64, rand.Shuffle, ...) — they draw from the shared global
//     source. Constructors (rand.New, rand.NewSource, rand.NewZipf,
//     rand/v2's NewPCG, NewChaCha8) are allowed: building an injected
//     generator is exactly the sanctioned pattern.
//
// Suppression is //parm:wallclock on the flagged line or the line above it,
// for code that genuinely needs wall time (e.g. a progress log outside the
// measured path).
package simclock

import (
	"go/ast"
	"go/types"

	"parm/internal/analysis"
)

// Analyzer flags wall-clock and global-randomness reads in simulation code.
var Analyzer = &analysis.Analyzer{
	Name: "simclock",
	Doc: "flags time.Now/Since/Until and global math/rand calls in " +
		"simulation packages; inject a clock or seeded *rand.Rand instead",
	Run: run,
}

// randConstructors are the math/rand(/v2) package-level functions that build
// a local generator rather than drawing from the global source.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"NewPCG":    true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch pkg.Imported().Path() {
			case "time":
				if name == "Now" || name == "Since" || name == "Until" {
					if !pass.Suppressed(f, call.Pos(), "wallclock") {
						pass.Reportf(call.Pos(), "time.%s reads the wall clock in simulation code; "+
							"use the engine's event clock or annotate //parm:wallclock", name)
					}
				}
			case "math/rand", "math/rand/v2":
				if randConstructors[name] {
					return true
				}
				if !pass.Suppressed(f, call.Pos(), "wallclock") {
					pass.Reportf(call.Pos(), "rand.%s draws from the global source in simulation code; "+
						"inject a seeded *rand.Rand or annotate //parm:wallclock", name)
				}
			}
			return true
		})
	}
	return nil
}
