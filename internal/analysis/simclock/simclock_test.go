package simclock_test

import (
	"testing"

	"parm/internal/analysis/analysistest"
	"parm/internal/analysis/simclock"
)

func TestSimclock(t *testing.T) {
	analysistest.Run(t, "testdata", simclock.Analyzer)
}
