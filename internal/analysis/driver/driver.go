// Package driver loads, type-checks, and analyzes the packages of this
// module without golang.org/x/tools: package metadata comes from
// `go list -json`, module packages are parsed and type-checked in
// dependency order, and standard-library imports are resolved from $GOROOT
// source via go/importer's "source" mode (fully offline).
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"parm/internal/analysis"
)

// listedPackage is the slice of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
}

// Options configures a load or run.
type Options struct {
	// Tests includes each package's _test.go files: in-package test files
	// join their package (type-checked as an augmented variant so importers
	// still see the pure package and test-only import cycles cannot form),
	// and external test packages load as "<path>_test".
	Tests bool
}

// Package is one loaded, type-checked module package.
type Package struct {
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Analyzable is the subset of Files analyzers run over: generated files
	// participate in type checking but are nobody's lint problem.
	Analyzable []*ast.File
}

// Rule binds an analyzer to the package import paths it applies to. A nil
// Match runs the analyzer on every loaded package.
type Rule struct {
	Analyzer *analysis.Analyzer
	Match    func(pkgPath string) bool
}

// Finding is one diagnostic with its origin resolved.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Load enumerates and type-checks the module packages named by patterns
// (e.g. "./..."), returning them in dependency order.
func Load(fset *token.FileSet, patterns []string) ([]*Package, error) {
	return LoadDir(fset, "", patterns)
}

// LoadDir is Load with the package patterns resolved relative to dir (the
// process working directory when dir is empty). Tests point it at throwaway
// modules.
func LoadDir(fset *token.FileSet, dir string, patterns []string) ([]*Package, error) {
	return LoadDirOpts(fset, dir, patterns, Options{})
}

// LoadDirOpts is LoadDir with explicit options.
func LoadDirOpts(fset *token.FileSet, dir string, patterns []string, opts Options) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*listedPackage, len(listed))
	for _, lp := range listed {
		byPath[lp.ImportPath] = lp
	}

	// Type-check in topological order so every module import is resolved
	// before its importers. Standard-library imports go to the source
	// importer, which parses $GOROOT/src on demand.
	checked := make(map[string]*Package, len(listed))
	std := importer.ForCompiler(fset, "source", nil)
	imp := &moduleImporter{module: checked, byPath: byPath, std: std, fset: fset}

	var order []string
	seen := make(map[string]bool, len(listed))
	var visit func(path string) error
	visit = func(path string) error {
		if seen[path] {
			return nil
		}
		seen[path] = true
		lp := byPath[path]
		for _, dep := range lp.Imports {
			if _, ok := byPath[dep]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		order = append(order, path)
		return nil
	}
	paths := make([]string, 0, len(listed))
	for _, lp := range listed {
		paths = append(paths, lp.ImportPath)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	var out []*Package
	for _, path := range order {
		pkg, err := imp.check(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	if !opts.Tests {
		return out, nil
	}

	// Second phase: augment packages with their test files. The base
	// packages above stay the import-resolution truth, so a test-only
	// dependency back onto an importer cannot cycle; the augmented variant
	// (and any external "<path>_test" package, checked against the augmented
	// types so export_test.go bridges resolve) replaces or follows the base
	// in the analysis list only.
	for i, path := range order {
		lp := byPath[path]
		base := out[i]
		aug := base
		if len(lp.TestGoFiles) > 0 {
			aug, err = imp.checkVariant(path, lp.Dir, base, lp.TestGoFiles, nil)
			if err != nil {
				return nil, err
			}
			out[i] = aug
		}
		if len(lp.XTestGoFiles) > 0 {
			xt, err := imp.checkVariant(path+"_test", lp.Dir, nil, lp.XTestGoFiles,
				map[string]*types.Package{path: aug.Types})
			if err != nil {
				return nil, err
			}
			out = append(out, xt)
		}
	}
	return out, nil
}

// moduleImporter resolves imports during type checking: module packages from
// the checked set, everything else from the standard library source tree.
type moduleImporter struct {
	module map[string]*Package
	byPath map[string]*listedPackage
	std    types.Importer
	fset   *token.FileSet
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.module[path]; ok {
		return pkg.Types, nil
	}
	if _, ok := m.byPath[path]; ok {
		// A module dependency outside the loaded pattern set: check it now.
		pkg, err := m.check(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}

// check parses and type-checks one listed module package.
func (m *moduleImporter) check(path string) (*Package, error) {
	if pkg, ok := m.module[path]; ok {
		return pkg, nil
	}
	lp, ok := m.byPath[path]
	if !ok {
		return nil, fmt.Errorf("driver: package %s not listed", path)
	}
	files := make([]*ast.File, 0, len(lp.GoFiles))
	analyzable := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		fullPath := filepath.Join(lp.Dir, name)
		src, err := os.ReadFile(fullPath)
		if err != nil {
			return nil, fmt.Errorf("driver: reading %s: %w", fullPath, err)
		}
		// Ignore-tagged files (helper scripts, codegen drivers) are not part
		// of the build; skip before parsing so a syntax error in one cannot
		// break the whole load.
		if hasIgnoreConstraint(src) {
			continue
		}
		f, err := parser.ParseFile(m.fset, fullPath, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		// Generated files still type-check (handwritten code may reference
		// their symbols) but are excluded from analysis.
		if !ast.IsGenerated(f) {
			analyzable = append(analyzable, f)
		}
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: m}
	tpkg, err := conf.Check(path, m.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("driver: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Files: files, Types: tpkg, Info: info, Analyzable: analyzable}
	m.module[path] = pkg
	return pkg, nil
}

// checkVariant type-checks a package variant: the base package's already
// parsed files (when base is non-nil) plus the named extra files from dir,
// under fresh type information, without touching the import-resolution
// state. overrides substitute specific import paths — an external test
// package imports its subject's augmented types so export_test.go bridges
// resolve.
func (m *moduleImporter) checkVariant(pkgPath, dir string, base *Package, names []string, overrides map[string]*types.Package) (*Package, error) {
	var files, analyzable []*ast.File
	if base != nil {
		files = append(files, base.Files...)
		analyzable = append(analyzable, base.Analyzable...)
	}
	for _, name := range names {
		fullPath := filepath.Join(dir, name)
		src, err := os.ReadFile(fullPath)
		if err != nil {
			return nil, fmt.Errorf("driver: reading %s: %w", fullPath, err)
		}
		if hasIgnoreConstraint(src) {
			continue
		}
		f, err := parser.ParseFile(m.fset, fullPath, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		if !ast.IsGenerated(f) {
			analyzable = append(analyzable, f)
		}
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	imp := types.Importer(m)
	if len(overrides) > 0 {
		imp = overrideImporter{m: m, overrides: overrides}
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, m.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("driver: type-checking %s: %w", pkgPath, err)
	}
	return &Package{Path: pkgPath, Files: files, Types: tpkg, Info: info, Analyzable: analyzable}, nil
}

// overrideImporter is a moduleImporter with a few import paths pinned to
// specific (variant) packages.
type overrideImporter struct {
	m         *moduleImporter
	overrides map[string]*types.Package
}

func (o overrideImporter) Import(path string) (*types.Package, error) {
	if p, ok := o.overrides[path]; ok {
		return p, nil
	}
	return o.m.Import(path)
}

// hasIgnoreConstraint reports whether the file header carries a build
// constraint that keeps it out of every ordinary build — the
// `//go:build ignore` idiom (or its legacy `// +build ignore` spelling).
// The scan is textual, restricted to the pre-package header, so it works on
// files that do not parse.
func hasIgnoreConstraint(src []byte) bool {
	for _, line := range bytes.Split(src, []byte("\n")) {
		text := string(bytes.TrimRight(line, "\r"))
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 && !bytes.HasPrefix(trimmed, []byte("//")) {
			// First non-comment, non-blank line: constraints can only appear
			// above it (the package clause or stray text).
			return false
		}
		if !constraint.IsGoBuild(text) && !constraint.IsPlusBuild(text) {
			continue
		}
		expr, err := constraint.Parse(text)
		if err != nil {
			continue
		}
		// Evaluate with every ordinary tag satisfied and only "ignore"
		// unset: false means the file exists solely behind the ignore tag.
		if !expr.Eval(func(tag string) bool { return tag != "ignore" }) {
			return true
		}
	}
	return false
}

// Run loads the packages named by patterns and applies every matching rule,
// returning all findings sorted by position.
func Run(patterns []string, rules []Rule) ([]Finding, error) {
	return RunDirOpts("", patterns, rules, Options{})
}

// RunDir is Run with the package patterns resolved relative to dir.
func RunDir(dir string, patterns []string, rules []Rule) ([]Finding, error) {
	return RunDirOpts(dir, patterns, rules, Options{})
}

// RunDirOpts is RunDir with explicit options. Per-package analyzers run on
// each package their rule matches; whole-program analyzers run once over
// every loaded package, with the rule's Match filtering findings by the
// package the diagnostic lands in.
func RunDirOpts(dir string, patterns []string, rules []Rule, opts Options) ([]Finding, error) {
	fset := token.NewFileSet()
	pkgs, err := LoadDirOpts(fset, dir, patterns, opts)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	var progRules []Rule
	for _, rule := range rules {
		if rule.Analyzer.RunProgram != nil {
			progRules = append(progRules, rule)
			continue
		}
		for _, pkg := range pkgs {
			if rule.Match != nil && !rule.Match(pkg.Path) {
				continue
			}
			a := rule.Analyzer
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Analyzable,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pos:      fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("driver: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	if len(progRules) > 0 {
		pps := make([]*analysis.ProgramPackage, len(pkgs))
		fileOf := make(map[string]string) // filename -> import path
		for i, pkg := range pkgs {
			pps[i] = &analysis.ProgramPackage{
				Path:       pkg.Path,
				Files:      pkg.Files,
				Analyzable: pkg.Analyzable,
				Types:      pkg.Types,
				Info:       pkg.Info,
			}
			for _, f := range pkg.Files {
				fileOf[fset.Position(f.Pos()).Filename] = pkg.Path
			}
		}
		for _, rule := range progRules {
			a := rule.Analyzer
			pass := &analysis.ProgramPass{
				Analyzer: a,
				Fset:     fset,
				Packages: pps,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := fset.Position(d.Pos)
				if rule.Match != nil && !rule.Match(fileOf[pos.Filename]) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if err := a.RunProgram(pass); err != nil {
				return nil, fmt.Errorf("driver: %s: %w", a.Name, err)
			}
		}
	}
	Sort(findings)
	return findings, nil
}

// Sort orders findings by (file, line, column, analyzer) — the emission
// order both the text and JSON outputs promise.
func Sort(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// goList shells out to `go list -json` for package metadata; the go
// toolchain is the one component the environment guarantees. A non-empty
// dir resolves the patterns inside that directory's module.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("driver: go list: %v: %s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("driver: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &lp)
	}
	return pkgs, nil
}
