package driver

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func baselineFindings() []Finding {
	return []Finding{
		{Analyzer: "racecheck", Pos: token.Position{Filename: "/x/chip/psn.go", Line: 10, Column: 2}, Message: "racy write"},
		{Analyzer: "racecheck", Pos: token.Position{Filename: "/x/chip/psn.go", Line: 20, Column: 2}, Message: "racy write"},
		{Analyzer: "atomicmix", Pos: token.Position{Filename: "/x/obs/reg.go", Line: 5, Column: 1}, Message: "mixed access"},
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, baselineFindings()); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	entries, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	// Two classes: psn.go/racecheck count 2, reg.go/atomicmix count 1,
	// sorted by file.
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2: %+v", len(entries), entries)
	}
	if entries[0].File != "psn.go" || entries[0].Count != 2 {
		t.Fatalf("entry 0 = %+v, want psn.go count 2", entries[0])
	}
	if entries[1].File != "reg.go" || entries[1].Analyzer != "atomicmix" {
		t.Fatalf("entry 1 = %+v, want reg.go atomicmix", entries[1])
	}
	kept, stale := ApplyBaseline(baselineFindings(), entries)
	if len(kept) != 0 || len(stale) != 0 {
		t.Fatalf("round trip kept %d, stale %d; want 0, 0", len(kept), len(stale))
	}
}

func TestBaselineEmptyRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, nil); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	entries, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("got %d entries, want 0", len(entries))
	}
}

func TestApplyBaselineKeepsNewFindings(t *testing.T) {
	entries := []BaselineEntry{{File: "psn.go", Analyzer: "racecheck", Message: "racy write", Count: 2}}
	extra := append(baselineFindings(), Finding{
		Analyzer: "racecheck",
		Pos:      token.Position{Filename: "/x/chip/psn.go", Line: 30, Column: 2},
		Message:  "racy write",
	})
	kept, stale := ApplyBaseline(extra, entries)
	if len(stale) != 0 {
		t.Fatalf("stale = %+v, want none", stale)
	}
	// The third psn.go finding exceeds the budget and the atomicmix one was
	// never accepted: both must survive.
	if len(kept) != 2 {
		t.Fatalf("kept %d findings, want 2: %+v", len(kept), kept)
	}
}

func TestApplyBaselineReportsStale(t *testing.T) {
	entries := []BaselineEntry{
		{File: "psn.go", Analyzer: "racecheck", Message: "racy write", Count: 5},
		{File: "gone.go", Analyzer: "floateq", Message: "== on float", Count: 1},
	}
	kept, stale := ApplyBaseline(baselineFindings(), entries)
	if len(kept) != 1 || kept[0].Analyzer != "atomicmix" {
		t.Fatalf("kept = %+v, want only the atomicmix finding", kept)
	}
	if len(stale) != 2 {
		t.Fatalf("stale = %+v, want 2 entries", stale)
	}
	for _, e := range stale {
		switch e.File {
		case "psn.go":
			if e.Count != 3 {
				t.Fatalf("psn.go stale count = %d, want 3", e.Count)
			}
		case "gone.go":
			if e.Count != 1 {
				t.Fatalf("gone.go stale count = %d, want 1", e.Count)
			}
		default:
			t.Fatalf("unexpected stale entry %+v", e)
		}
	}
}

func TestLoadBaselineRejectsMalformedEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, nil); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		`[{"file":"","analyzer":"x","message":"m","count":1}]`,
		`[{"file":"a.go","analyzer":"x","message":"m","count":0}]`,
		`{"not":"an array"}`,
	} {
		if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadBaseline(path); err == nil {
			t.Fatalf("LoadBaseline accepted malformed baseline %s", bad)
		}
	}
}
