package driver

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// BaselineEntry is one accepted pre-existing finding class in a lint
// baseline: Count findings with this (file, analyzer, message) are waved
// through. File is the base name only, so the baseline is stable across
// checkouts; line numbers are deliberately absent (they churn on every
// unrelated edit).
type BaselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// baselineKey identifies a finding class.
type baselineKey struct {
	file     string
	analyzer string
	message  string
}

func keyOf(f Finding) baselineKey {
	return baselineKey{file: filepath.Base(f.Pos.Filename), analyzer: f.Analyzer, message: f.Message}
}

// LoadBaseline reads a JSON baseline file (an array of entries).
func LoadBaseline(path string) ([]BaselineEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []BaselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	for i, e := range entries {
		if e.File == "" || e.Analyzer == "" || e.Count < 1 {
			return nil, fmt.Errorf("baseline %s: entry %d needs file, analyzer, and count >= 1", path, i)
		}
	}
	return entries, nil
}

// WriteBaseline aggregates the findings into entries and writes them as a
// sorted, indented JSON array (an empty slice writes "[]": the committed
// clean-repo baseline).
func WriteBaseline(path string, findings []Finding) error {
	counts := make(map[baselineKey]int)
	for _, f := range findings {
		counts[keyOf(f)]++
	}
	entries := make([]BaselineEntry, 0, len(counts))
	for k, n := range counts {
		entries = append(entries, BaselineEntry{File: k.file, Analyzer: k.analyzer, Message: k.message, Count: n})
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ApplyBaseline filters findings through the baseline: for each entry, up
// to Count matching findings are dropped. It returns the findings that
// remain and the stale entries — entries that matched fewer findings than
// they claim, meaning the underlying issue was fixed and the baseline must
// be regenerated (stale entries are an error at the CLI: a baseline may
// only shrink deliberately, never rot).
func ApplyBaseline(findings []Finding, entries []BaselineEntry) (kept []Finding, stale []BaselineEntry) {
	budget := make(map[baselineKey]int, len(entries))
	for _, e := range entries {
		budget[baselineKey{file: e.File, analyzer: e.Analyzer, message: e.Message}] += e.Count
	}
	for _, f := range findings {
		k := keyOf(f)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		kept = append(kept, f)
	}
	for _, e := range entries {
		k := baselineKey{file: e.File, analyzer: e.Analyzer, message: e.Message}
		if budget[k] > 0 {
			left := budget[k]
			budget[k] = 0 // report a multi-entry key once
			stale = append(stale, BaselineEntry{File: e.File, Analyzer: e.Analyzer, Message: e.Message, Count: left})
		}
	}
	return kept, stale
}
