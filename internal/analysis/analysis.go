// Package analysis is a self-contained, stdlib-only re-implementation of
// the golang.org/x/tools/go/analysis core: an Analyzer runs over one
// type-checked package at a time and reports position-anchored diagnostics.
//
// The build environment for this repository is hermetic (no module proxy),
// so the x/tools dependency is unavailable; this package provides the small
// slice of its API that the parmvet suite needs. The shapes intentionally
// mirror x/tools so the analyzers can migrate to the real framework by
// swapping imports if the dependency ever becomes available.
//
// Project-specific suppression comments are plain line comments of the form
//
//	//parm:<name>
//
// placed on the flagged line or the line directly above it (the directive
// style of //go:noinline). Directives(f) extracts them; analyzers consult
// Suppressed before reporting.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check. Exactly one of Run and RunProgram is
// set: Run analyzers see one package at a time, RunProgram analyzers see the
// whole loaded program at once (call graphs, cross-package flows).
type Analyzer struct {
	// Name is the short identifier used in diagnostics and suppression
	// documentation, e.g. "detrange".
	Name string
	// Doc is the one-paragraph description shown by `parmvet help`.
	Doc string
	// Run executes the check on one package, reporting findings through
	// pass.Report.
	Run func(*Pass) error
	// RunProgram executes a whole-program check over every loaded package
	// at once. The driver invokes it exactly once per load, after all
	// packages have type-checked.
	RunProgram func(*ProgramPass) error
}

// Pass carries one analyzed package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records one diagnostic. The driver supplies it.
	Report func(Diagnostic)

	// directives caches per-file suppression directives, built lazily.
	directives map[*ast.File]map[int][]string
}

// Diagnostic is one finding, anchored at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// DirectivePrefix introduces parm suppression comments.
const DirectivePrefix = "//parm:"

// Directives returns the suppression directives of file f keyed by the line
// they annotate: a directive on line n annotates both line n (trailing
// comment) and line n+1 (comment on its own line above the statement).
func (p *Pass) Directives(f *ast.File) map[int][]string {
	if p.directives == nil {
		p.directives = make(map[*ast.File]map[int][]string)
	}
	if d, ok := p.directives[f]; ok {
		return d
	}
	d := fileDirectives(p.Fset, f)
	p.directives[f] = d
	return d
}

// fileDirectives scans one file's comments for //parm: directives, keyed by
// annotated line (the directive's own line and the line below it).
func fileDirectives(fset *token.FileSet, f *ast.File) map[int][]string {
	d := make(map[int][]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, DirectivePrefix) {
				continue
			}
			name := strings.TrimPrefix(c.Text, DirectivePrefix)
			if i := strings.IndexAny(name, " \t"); i >= 0 {
				name = name[:i]
			}
			line := fset.Position(c.Pos()).Line
			d[line] = append(d[line], name)
			d[line+1] = append(d[line+1], name)
		}
	}
	return d
}

// Suppressed reports whether a //parm:<name> directive annotates the line of
// pos in file f.
func (p *Pass) Suppressed(f *ast.File, pos token.Pos, name string) bool {
	for _, n := range p.Directives(f)[p.Fset.Position(pos).Line] {
		if n == name {
			return true
		}
	}
	return false
}

// FileOf returns the *ast.File of the pass containing pos, or nil.
func (p *Pass) FileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// IsFloat reports whether t's underlying type has a floating-point or
// complex basic kind.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// ProgramPackage is one loaded package as a whole-program analyzer sees it.
// It mirrors the driver's package shape without importing the driver, so the
// analysis layer stays the dependency root.
type ProgramPackage struct {
	// Path is the import path (e.g. "parm/internal/core").
	Path string
	// Files holds every parsed file of the package.
	Files []*ast.File
	// Analyzable is the subset of Files findings may anchor in (generated
	// files type-check but are nobody's lint problem).
	Analyzable []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// ProgramPass carries the entire loaded program to an Analyzer's RunProgram
// function. Packages appear in dependency order (imports before importers).
type ProgramPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Packages []*ProgramPackage

	// Report records one diagnostic. The driver supplies it.
	Report func(Diagnostic)

	directives map[*ast.File]map[int][]string
}

// Reportf formats and records a diagnostic at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// FileOf returns the file containing pos and its package, or nils.
func (p *ProgramPass) FileOf(pos token.Pos) (*ast.File, *ProgramPackage) {
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			if f.FileStart <= pos && pos < f.FileEnd {
				return f, pkg
			}
		}
	}
	return nil, nil
}

// Analyzable reports whether pos falls in a file findings may anchor in.
func (p *ProgramPass) Analyzable(pos token.Pos) bool {
	f, pkg := p.FileOf(pos)
	if f == nil {
		return false
	}
	for _, a := range pkg.Analyzable {
		if a == f {
			return true
		}
	}
	return false
}

// Suppressed reports whether a //parm:<name> directive annotates the line of
// pos, wherever in the program it falls.
func (p *ProgramPass) Suppressed(pos token.Pos, name string) bool {
	f, _ := p.FileOf(pos)
	if f == nil {
		return false
	}
	if p.directives == nil {
		p.directives = make(map[*ast.File]map[int][]string)
	}
	d, ok := p.directives[f]
	if !ok {
		d = fileDirectives(p.Fset, f)
		p.directives[f] = d
	}
	for _, n := range d[p.Fset.Position(pos).Line] {
		if n == name {
			return true
		}
	}
	return false
}
