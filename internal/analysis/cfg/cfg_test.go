package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildGraph parses a function body and builds its CFG.
func buildGraph(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return New(fd.Body)
}

// nodeCount sums the nodes of every block.
func nodeCount(g *Graph) int {
	n := 0
	for _, b := range g.Blocks {
		n += len(b.Nodes)
	}
	return n
}

func TestStraightLineIsOneBlock(t *testing.T) {
	g := buildGraph(t, "x := 1\nx++\n_ = x")
	if len(g.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(g.Blocks))
	}
	if len(g.Blocks[0].Nodes) != 3 {
		t.Fatalf("entry nodes = %d, want 3", len(g.Blocks[0].Nodes))
	}
	if loops := g.LoopBlocks(); len(loops) != 0 {
		t.Fatalf("straight-line code reported %d loop blocks", len(loops))
	}
}

func TestIfElseJoins(t *testing.T) {
	g := buildGraph(t, "x := 1\nif x > 0 {\nx = 2\n} else {\nx = 3\n}\n_ = x")
	// entry(+cond), then, else, join.
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(g.Blocks))
	}
	entry := g.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("entry successors = %d, want 2 (then/else)", len(entry.Succs))
	}
	join := g.Blocks[len(g.Blocks)-1]
	if len(join.Preds) != 2 {
		t.Fatalf("join predecessors = %d, want 2", len(join.Preds))
	}
	if len(g.LoopBlocks()) != 0 {
		t.Fatal("if/else reported loop blocks")
	}
}

func TestIfWithoutElseFallsThrough(t *testing.T) {
	g := buildGraph(t, "x := 1\nif x > 0 {\nx = 2\n}\n_ = x")
	join := g.Blocks[len(g.Blocks)-1]
	if len(join.Preds) != 2 { // head (cond false) and then-end
		t.Fatalf("join predecessors = %d, want 2", len(join.Preds))
	}
}

func TestForLoopBlocksDetected(t *testing.T) {
	g := buildGraph(t, "s := 0\nfor i := 0; i < 10; i++ {\ns += i\n}\n_ = s")
	loops := g.LoopBlocks()
	if len(loops) == 0 {
		t.Fatal("for loop produced no loop blocks")
	}
	// The loop body (containing s += i) must be a loop block; the trailing
	// statement (_ = s) must not.
	var bodyBlk, tailBlk *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok.String() == "+=" {
					bodyBlk = b
				}
				if len(n.Lhs) == 1 {
					if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
						tailBlk = b
					}
				}
			}
		}
	}
	if bodyBlk == nil || tailBlk == nil {
		t.Fatal("could not locate body/tail blocks")
	}
	if !loops[bodyBlk] {
		t.Error("loop body not marked as a loop block")
	}
	if loops[tailBlk] {
		t.Error("post-loop block wrongly marked as a loop block")
	}
}

func TestRangeLoopBlocksDetected(t *testing.T) {
	g := buildGraph(t, "s := 0\nfor _, v := range []int{1, 2} {\ns += v\n}\n_ = s")
	if len(g.LoopBlocks()) == 0 {
		t.Fatal("range loop produced no loop blocks")
	}
}

func TestBreakLeavesLoop(t *testing.T) {
	g := buildGraph(t, "for {\nbreak\n}\nx := 1\n_ = x")
	// The statements after the loop must be reachable from the entry.
	var tail *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok && as.Tok.String() == ":=" {
				tail = b
			}
		}
	}
	if tail == nil {
		t.Fatal("tail block not found")
	}
	if !reaches(g.Blocks[0], tail) {
		t.Error("code after `for { break }` unreachable in graph")
	}
}

func TestLabeledBreakTargetsOuterLoop(t *testing.T) {
	g := buildGraph(t, "outer:\nfor {\nfor {\nbreak outer\n}\n}\nx := 1\n_ = x")
	var tail *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok && as.Tok.String() == ":=" {
				tail = b
			}
		}
	}
	if tail == nil {
		t.Fatal("tail block not found")
	}
	if !reaches(g.Blocks[0], tail) {
		t.Error("labeled break did not reach past the outer loop")
	}
}

func TestSwitchWithoutDefaultFallsThrough(t *testing.T) {
	g := buildGraph(t, "x := 1\nswitch x {\ncase 1:\nx = 2\ncase 2:\nx = 3\n}\n_ = x")
	var tail *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
					tail = b
				}
			}
		}
	}
	if tail == nil {
		t.Fatal("tail block not found")
	}
	// head -> join edge must exist (no default), so tail has >= 3 preds:
	// two case ends plus the head.
	if len(tail.Preds) != 3 {
		t.Fatalf("join predecessors = %d, want 3", len(tail.Preds))
	}
}

func TestReturnTerminatesBlock(t *testing.T) {
	g := buildGraph(t, "x := 1\nif x > 0 {\nreturn\n}\n_ = x")
	total := nodeCount(g)
	if total != 4 { // x := 1, cond, return, _ = x
		t.Fatalf("node count = %d, want 4", total)
	}
	// The then-block (return) must have no successors.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok && len(b.Succs) != 0 {
				t.Errorf("return block has %d successors, want 0", len(b.Succs))
			}
		}
	}
}

// TestForwardMayUnion checks the fixpoint engine: a fact generated in one
// branch of an if reaches the join (may-analysis), and a fact generated in a
// loop body reaches the loop head on the back edge.
func TestForwardMayUnion(t *testing.T) {
	g := buildGraph(t, "x := 1\nif x > 0 {\nx = 2\n} else {\nx = 3\n}\n_ = x")
	// Transfer: generate the fact "gen" in the block containing `x = 2`.
	in := Forward(g, func(b *Block, in Facts[string]) Facts[string] {
		out := in.Clone()
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok && as.Tok.String() == "=" {
				if bl, ok := as.Rhs[0].(*ast.BasicLit); ok && bl.Value == "2" {
					out = out.Add("gen")
				}
			}
		}
		return out
	})
	join := g.Blocks[len(g.Blocks)-1]
	if !in[join].Has("gen") {
		t.Error("fact from then-branch did not reach the join (may-union broken)")
	}
	// The else branch must not have the fact on entry.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok && as.Tok.String() == "=" {
				if bl, ok := as.Rhs[0].(*ast.BasicLit); ok && bl.Value == "3" {
					if in[b].Has("gen") {
						t.Error("fact leaked into the sibling branch")
					}
				}
			}
		}
	}
}

func TestForwardLoopFixpoint(t *testing.T) {
	g := buildGraph(t, "for i := 0; i < 10; i++ {\n_ = i\n}\n_ = 0")
	// Generate a fact in the loop body; it must flow around the back edge
	// into the head's input set.
	in := Forward(g, func(b *Block, in Facts[string]) Facts[string] {
		out := in.Clone()
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if id, ok := as.Rhs[0].(*ast.Ident); ok && id.Name == "i" {
					_ = id
					out = out.Add("body")
				}
			}
		}
		return out
	})
	loops := g.LoopBlocks()
	found := false
	for b := range loops {
		if in[b].Has("body") {
			found = true
		}
	}
	if !found {
		t.Error("loop-generated fact did not propagate around the back edge")
	}
}

// mustTransfer gens fact X at assignments to identifiers named "genX" and
// kills it at "killX", mirroring how the lockset analysis drives ForwardMust.
func mustTransfer(b *Block, in Facts[string]) Facts[string] {
	out := in.Clone()
	for _, n := range b.Nodes {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			continue
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			continue
		}
		if name, ok := cutPrefix(id.Name, "gen"); ok {
			out = out.Add(name)
		} else if name, ok := cutPrefix(id.Name, "kill"); ok {
			out.Delete(name)
		}
	}
	return out
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) > len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return "", false
}

// A fact generated on only one branch must not survive the join under the
// must-analysis, while the may-analysis over the same graph keeps it — the
// two disagree exactly there.
func TestForwardMustIntersectsAtJoin(t *testing.T) {
	g := buildGraph(t, "x := 1\nif x > 0 {\ngenL := 1\n_ = genL\n} else {\nx = 3\n}\n_ = x")
	join := g.Blocks[len(g.Blocks)-1]
	must := ForwardMust(g, []string{"L"}, mustTransfer)
	if must[join].Has("L") {
		t.Error("must-analysis kept a fact generated on only one branch")
	}
	may := Forward(g, mustTransfer)
	if !may[join].Has("L") {
		t.Error("may-analysis lost the branch fact")
	}
}

func TestForwardMustKeepsFactHeldOnAllPaths(t *testing.T) {
	g := buildGraph(t, "x := 1\nif x > 0 {\ngenL := 1\n_ = genL\n} else {\ngenL := 2\n_ = genL\n}\n_ = x")
	join := g.Blocks[len(g.Blocks)-1]
	in := ForwardMust(g, []string{"L"}, mustTransfer)
	if !in[join].Has("L") {
		t.Error("fact held on every path was dropped at the join")
	}
}

// TOP initialization: a fact established before a loop must survive the
// back-edge intersection when nothing in the body kills it, and must die
// when the body kills it (the zero-iteration and some-iterations paths
// disagree at the head).
func TestForwardMustLoopBackEdge(t *testing.T) {
	g := buildGraph(t, "genL := 1\nfor i := 0; i < 10; i++ {\n_ = i\n}\n_ = genL")
	tail := g.Blocks[len(g.Blocks)-1]
	if in := ForwardMust(g, []string{"L"}, mustTransfer); !in[tail].Has("L") {
		t.Error("fact dropped crossing a loop that never kills it")
	}

	g = buildGraph(t, "genL := 1\nfor i := 0; i < 10; i++ {\nkillL := 1\n_ = killL\n}\n_ = genL")
	tail = g.Blocks[len(g.Blocks)-1]
	if in := ForwardMust(g, []string{"L"}, mustTransfer); in[tail].Has("L") {
		t.Error("fact killed inside the loop survived to the exit")
	}
}
