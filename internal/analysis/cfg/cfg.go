// Package cfg builds per-function control-flow graphs over go/ast and runs
// forward-dataflow fixpoint analyses on them. It is the flow-analysis layer
// under the parmvet suite's flow-sensitive analyzers (hotalloc, lockhold),
// built — like the rest of internal/analysis — on the standard library
// alone.
//
// The graph is statement-granular: control-flow statements (if, for, range,
// switch, select, branch, return) are decomposed into basic blocks, and
// every other statement, plus branch conditions, lands in a block's Nodes
// list in execution order. Function literals are NOT descended into: a
// FuncLit appears as part of the node that creates it, and callers analyze
// its body as a separate function with its own graph.
//
// Known simplifications, acceptable for lint-time analysis of this module:
//
//   - goto is treated as terminating its block without a recorded edge
//     (the module bans goto by style; a missed edge only loses precision);
//   - panic/runtime.Goexit are ordinary calls (their non-return is not
//     modeled);
//   - short-circuit && / || are not split into separate blocks, so both
//     operand expressions sit in the enclosing block.
package cfg

import "go/ast"

// Block is one basic block: a maximal sequence of nodes executed in order.
type Block struct {
	// Index is the block's position in Graph.Blocks (0 is the entry).
	Index int
	// Nodes holds the block's statements and condition expressions in
	// execution order.
	Nodes []ast.Node
	// Succs and Preds are the control-flow edges.
	Succs []*Block
	Preds []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks lists every block; Blocks[0] is the entry.
	Blocks []*Block
}

// New builds the control-flow graph of one function body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.cur = b.newBlock()
	b.stmtList(body.List)
	return b.g
}

// loopFrame is one enclosing breakable/continuable construct.
type loopFrame struct {
	label     string
	breakTo   *Block
	continueTo *Block // nil for switch/select frames (break-only)
}

type builder struct {
	g   *Graph
	cur *Block // nil after a terminating statement (return, break, ...)
	// frames is the stack of enclosing break/continue targets, innermost
	// last.
	frames []loopFrame
	// pendingLabel names the label attached to the next loop/switch/select.
	pendingLabel string
	// fallthroughTo is the next case clause's entry block while building a
	// switch body; fallthrough statements link to it.
	fallthroughTo *Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func link(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a node to the current block, starting an (unreachable) block
// when control flow already terminated.
func (b *builder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.cur = nil
	default:
		// Assignments, expression statements, sends, inc/dec, defer, go,
		// declarations: straight-line nodes.
		b.add(s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	head := b.cur
	then := b.newBlock()
	link(head, then)
	b.cur = then
	b.stmtList(s.Body.List)
	thenEnd := b.cur

	var elseEnd *Block
	hasElse := s.Else != nil
	if hasElse {
		els := b.newBlock()
		link(head, els)
		b.cur = els
		b.stmt(s.Else)
		elseEnd = b.cur
	}

	join := b.newBlock()
	link(thenEnd, join)
	if hasElse {
		link(elseEnd, join)
	} else {
		link(head, join)
	}
	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock()
	link(b.cur, head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}
	exit := b.newBlock()
	if s.Cond != nil {
		link(head, exit)
	}
	contTo := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		post.Nodes = append(post.Nodes, s.Post)
		link(post, head)
		contTo = post
	}
	b.frames = append(b.frames, loopFrame{label: b.pendingLabel, breakTo: exit, continueTo: contTo})
	b.pendingLabel = ""
	body := b.newBlock()
	link(head, body)
	b.cur = body
	b.stmtList(s.Body.List)
	link(b.cur, contTo)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = exit
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	b.add(s.X)
	head := b.newBlock()
	// The RangeStmt node itself marks the per-iteration binding (and, for
	// channels, the blocking receive).
	head.Nodes = append(head.Nodes, s)
	link(b.cur, head)
	exit := b.newBlock()
	link(head, exit)
	b.frames = append(b.frames, loopFrame{label: b.pendingLabel, breakTo: exit, continueTo: head})
	b.pendingLabel = ""
	body := b.newBlock()
	link(head, body)
	b.cur = body
	b.stmtList(s.Body.List)
	link(b.cur, head)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = exit
}

// switchBody builds the clause blocks of a switch or type switch whose tag
// nodes are already in the current block.
func (b *builder) switchBody(body *ast.BlockStmt) {
	head := b.cur
	join := b.newBlock()
	b.frames = append(b.frames, loopFrame{label: b.pendingLabel, breakTo: join})
	b.pendingLabel = ""

	// Pre-create clause entry blocks so fallthrough can target the next one.
	var clauses []*ast.CaseClause
	var entries []*Block
	hasDefault := false
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		clauses = append(clauses, cc)
		blk := b.newBlock()
		link(head, blk)
		entries = append(entries, blk)
		if cc.List == nil {
			hasDefault = true
		}
	}
	for i, cc := range clauses {
		blk := entries[i]
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
		b.cur = blk
		b.fallthroughTo = nil
		if i+1 < len(entries) {
			b.fallthroughTo = entries[i+1]
		}
		b.stmtList(cc.Body)
		link(b.cur, join)
	}
	b.fallthroughTo = nil
	if !hasDefault {
		link(head, join)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = join
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	// The SelectStmt node stays in the head block so analyzers can see the
	// potentially-blocking select point itself.
	b.add(s)
	head := b.cur
	join := b.newBlock()
	b.frames = append(b.frames, loopFrame{label: b.pendingLabel, breakTo: join})
	b.pendingLabel = ""
	any := false
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		any = true
		blk := b.newBlock()
		link(head, blk)
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		b.cur = blk
		b.stmtList(cc.Body)
		link(b.cur, join)
	}
	if !any {
		// select {} blocks forever; still link so the graph stays connected.
		link(head, join)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = join
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	switch s.Tok.String() {
	case "break":
		if t := b.findFrame(s, false); t != nil {
			link(b.cur, t)
		}
	case "continue":
		if t := b.findFrame(s, true); t != nil {
			link(b.cur, t)
		}
	case "fallthrough":
		link(b.cur, b.fallthroughTo)
	case "goto":
		// Not modeled; treat as terminating (see package comment).
	}
	b.cur = nil
}

// findFrame resolves a break/continue target, honoring labels. needContinue
// selects frames that can be continued (loops).
func (b *builder) findFrame(s *ast.BranchStmt, needContinue bool) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		fr := b.frames[i]
		if needContinue && fr.continueTo == nil {
			continue
		}
		if s.Label != nil && fr.label != s.Label.Name {
			continue
		}
		if needContinue {
			return fr.continueTo
		}
		return fr.breakTo
	}
	return nil
}

// LoopBlocks returns the set of blocks that lie on a control-flow cycle —
// i.e. the bodies (and heads) of loops. A block is in a loop iff it can
// reach itself through at least one edge.
func (g *Graph) LoopBlocks() map[*Block]bool {
	in := make(map[*Block]bool)
	for _, b := range g.Blocks {
		// Every block on a cycle reaches itself; the quadratic walk is fine
		// at function-body graph sizes.
		if reaches(b, b) {
			in[b] = true
		}
	}
	return in
}

// Inspect walks one block node in execution order, calling fn exactly as
// ast.Inspect does — except that a RangeStmt root is visited shallowly
// (the statement itself plus its Key/Value bindings), because its X
// expression and Body statements live in other blocks and would otherwise
// be visited twice. Use this instead of ast.Inspect when walking
// Block.Nodes.
func Inspect(root ast.Node, fn func(ast.Node) bool) {
	if rs, ok := root.(*ast.RangeStmt); ok {
		if !fn(rs) {
			return
		}
		if rs.Key != nil {
			ast.Inspect(rs.Key, fn)
		}
		if rs.Value != nil {
			ast.Inspect(rs.Value, fn)
		}
		return
	}
	ast.Inspect(root, fn)
}

// reaches reports whether dst is reachable from src following at least one
// edge.
func reaches(src, dst *Block) bool {
	seen := make(map[*Block]bool)
	stack := append([]*Block(nil), src.Succs...)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == dst {
			return true
		}
		if seen[b] {
			continue
		}
		seen[b] = true
		stack = append(stack, b.Succs...)
	}
	return false
}
