package cfg

// Facts is a set of analyzer-defined dataflow facts (e.g. the locks held at
// a program point). The zero value is the empty set; nil is usable.
type Facts[F comparable] map[F]struct{}

// Has reports membership.
func (f Facts[F]) Has(k F) bool { _, ok := f[k]; return ok }

// Clone returns an independent copy.
func (f Facts[F]) Clone() Facts[F] {
	out := make(Facts[F], len(f))
	for k := range f {
		out[k] = struct{}{}
	}
	return out
}

// Add inserts k, allocating the set on first use, and returns the set.
func (f Facts[F]) Add(k F) Facts[F] {
	if f == nil {
		f = make(Facts[F])
	}
	f[k] = struct{}{}
	return f
}

// Delete removes k.
func (f Facts[F]) Delete(k F) { delete(f, k) }

func equal[F comparable](a, b Facts[F]) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b.Has(k) {
			return false
		}
	}
	return true
}

func union[F comparable](dst, src Facts[F]) Facts[F] {
	for k := range src {
		dst = dst.Add(k)
	}
	return dst
}

// ForwardMust runs a forward must-analysis to fixpoint: a block's input
// facts are the INTERSECTION of its predecessors' outputs (a fact holds at
// block entry only when it holds on every path), the entry block and
// unreachable blocks start empty, and transfer maps a block's input set to
// its output set. universe lists every fact the analysis can produce;
// non-entry block outputs are initialized to it so the intersection does
// not spuriously drop facts through not-yet-visited predecessors. It
// returns the fixpoint INPUT facts of every block.
//
// transfer has the same contract as Forward's: monotone, and it must not
// mutate the set it is given.
func ForwardMust[F comparable](g *Graph, universe []F, transfer func(*Block, Facts[F]) Facts[F]) map[*Block]Facts[F] {
	top := make(Facts[F], len(universe))
	for _, k := range universe {
		top = top.Add(k)
	}
	in := make(map[*Block]Facts[F], len(g.Blocks))
	out := make(map[*Block]Facts[F], len(g.Blocks))
	for i, b := range g.Blocks {
		if i == 0 {
			out[b] = transfer(b, nil)
		} else {
			out[b] = top.Clone()
		}
	}

	work := make([]*Block, len(g.Blocks))
	copy(work, g.Blocks)
	queued := make(map[*Block]bool, len(g.Blocks))
	for _, b := range work {
		queued[b] = true
	}

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		var newIn Facts[F]
		if b.Index != 0 && len(b.Preds) > 0 {
			newIn = out[b.Preds[0]].Clone()
			for _, p := range b.Preds[1:] {
				for k := range newIn {
					if !out[p].Has(k) {
						newIn.Delete(k)
					}
				}
			}
		}
		newOut := transfer(b, newIn)
		in[b] = newIn
		if equal(newOut, out[b]) {
			continue
		}
		out[b] = newOut
		for _, s := range b.Succs {
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// Forward runs a forward may-analysis to fixpoint: a block's input facts are
// the union of its predecessors' outputs (the entry block starts empty), and
// transfer maps a block's input set to its output set. It returns the
// fixpoint INPUT facts of every block.
//
// transfer must be monotone (it may add or remove facts, but its output must
// be a function of the block and the input set alone) and must not mutate
// the set it is given; return a modified Clone instead.
func Forward[F comparable](g *Graph, transfer func(*Block, Facts[F]) Facts[F]) map[*Block]Facts[F] {
	in := make(map[*Block]Facts[F], len(g.Blocks))
	out := make(map[*Block]Facts[F], len(g.Blocks))

	// Worklist seeded with every block in index order (entry first keeps
	// the common case converging in one pass over reducible graphs).
	work := make([]*Block, len(g.Blocks))
	copy(work, g.Blocks)
	queued := make(map[*Block]bool, len(g.Blocks))
	for _, b := range work {
		queued[b] = true
	}

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		var newIn Facts[F]
		for _, p := range b.Preds {
			newIn = union(newIn, out[p])
		}
		newOut := transfer(b, newIn)
		in[b] = newIn
		if equal(newOut, out[b]) {
			continue
		}
		out[b] = newOut
		for _, s := range b.Succs {
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}
