package detrange_test

import (
	"testing"

	"parm/internal/analysis/analysistest"
	"parm/internal/analysis/detrange"
)

func TestDetrange(t *testing.T) {
	analysistest.Run(t, "testdata", detrange.Analyzer)
}
