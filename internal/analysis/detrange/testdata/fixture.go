// Package fixture exercises the detrange analyzer: map ranges must either
// fire, match the collect-then-sort idiom, or be annotated order-free.
package fixture

import "sort"

// sumValues ranges a map directly: fires.
func sumValues(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map m has nondeterministic order`
		total += v
	}
	return total
}

// sortedKeys is the canonical collect-then-sort idiom: no report.
func sortedKeys(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// collectNoSort collects keys but never sorts them: fires.
func collectNoSort(m map[int]bool) []int {
	var keys []int
	for k := range m { // want `range over map m has nondeterministic order`
		keys = append(keys, k)
	}
	return keys
}

// sortOtherSlice sorts a different slice than the one collected: fires.
func sortOtherSlice(m map[int]bool, other []int) []int {
	var keys []int
	for k := range m { // want `range over map m has nondeterministic order`
		keys = append(keys, k)
	}
	sort.Ints(other)
	return keys
}

// annotatedMax is order-insensitive aggregation, asserted by directive.
func annotatedMax(m map[int]int) int {
	best := 0
	//parm:orderfree
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// trailingDirective suppresses on the same line as the for statement.
func trailingDirective(m map[int]int) int {
	n := 0
	for range m { //parm:orderfree
		n++
	}
	return n
}

// overSlice ranges a slice: maps only, no report.
func overSlice(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}

// namedMapType fires through a named map type.
type registry map[string]int

func overNamed(r registry) int {
	s := 0
	for _, v := range r { // want `range over map r has nondeterministic order`
		s += v
	}
	return s
}

// inSwitch covers statement lists that are not block statements.
func inSwitch(m map[int]int, mode int) int {
	s := 0
	switch mode {
	case 1:
		for _, v := range m { // want `range over map m has nondeterministic order`
			s += v
		}
	}
	return s
}
