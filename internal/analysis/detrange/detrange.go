// Package detrange flags `range` statements over maps in simulation
// packages. Go randomizes map iteration order, so any map walk on a path
// that feeds metrics breaks the engine's bit-identical-metrics contract
// (DESIGN.md §6); deterministic code must iterate sorted keys instead.
//
// Two forms are accepted without a report:
//
//   - the collect-then-sort idiom: a loop whose body only appends the map
//     key to a slice, immediately followed by a sort of that slice —
//     the canonical way to obtain sorted keys;
//   - loops annotated with //parm:orderfree (on the `for` line or the line
//     above), asserting the body is order-insensitive: it commutes for any
//     iteration order (pure aggregation such as sum/max, or per-key writes
//     to disjoint locations).
package detrange

import (
	"go/ast"
	"go/types"

	"parm/internal/analysis"
)

// Analyzer flags nondeterministic map iteration.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc: "flags range over a map unless the keys are collected and sorted " +
		"or the loop is annotated //parm:orderfree",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Walk statement lists so each range statement can see its
			// following sibling (the sort call of the idiom).
			var list []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				list = b.List
			case *ast.CaseClause:
				list = b.Body
			case *ast.CommClause:
				list = b.Body
			default:
				return true
			}
			for i, stmt := range list {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				tv, ok := pass.TypesInfo.Types[rs.X]
				if !ok {
					continue
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					continue
				}
				if pass.Suppressed(f, rs.Pos(), "orderfree") {
					continue
				}
				var next ast.Stmt
				if i+1 < len(list) {
					next = list[i+1]
				}
				if isCollectThenSort(pass, rs, next) {
					continue
				}
				pass.Reportf(rs.Pos(), "range over map %s has nondeterministic order; "+
					"iterate sorted keys or annotate //parm:orderfree", types.ExprString(rs.X))
			}
			return true
		})
	}
	return nil
}

// isCollectThenSort reports whether rs is the key-collection half of the
// sorted-iteration idiom:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Ints(keys) // or sort.Sort/Slice/SliceStable/Strings, slices.Sort*
//
// The loop must bind only the key, its body must be the single append shown,
// and the next statement must sort the same slice.
func isCollectThenSort(pass *analysis.Pass, rs *ast.RangeStmt, next ast.Stmt) bool {
	if rs.Value != nil || rs.Key == nil || len(rs.Body.List) != 1 {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	dst, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	src, ok := call.Args[0].(*ast.Ident)
	if !ok || src.Name != dst.Name {
		return false
	}
	if arg, ok := call.Args[1].(*ast.Ident); !ok || arg.Name != key.Name {
		return false
	}
	// The statement after the loop must sort the collected slice.
	es, ok := next.(*ast.ExprStmt)
	if !ok {
		return false
	}
	sortCall, ok := es.X.(*ast.CallExpr)
	if !ok || len(sortCall.Args) == 0 {
		return false
	}
	sel, ok := sortCall.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if obj, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName); !ok ||
		(obj.Imported().Path() != "sort" && obj.Imported().Path() != "slices") {
		return false
	}
	switch sel.Sel.Name {
	case "Ints", "Strings", "Float64s", "Sort", "Slice", "SliceStable", "SortFunc", "SortStableFunc":
	default:
		return false
	}
	sorted, ok := sortCall.Args[0].(*ast.Ident)
	return ok && sorted.Name == dst.Name
}
