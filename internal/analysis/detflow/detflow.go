// Package detflow is the whole-program determinism lint: it builds the
// cross-package call graph, runs the interprocedural taint engine over it,
// and reports every flow from a nondeterminism source (map or sync.Map
// iteration order, channel arrival order, select choice, unseeded global
// math/rand, %p pointer formatting) into a determinism sink (JSON encoding,
// report-table rows, timeline records, stores into core.Metrics or
// core.AppOutcome) — including flows through function calls, interface
// dispatch, closures, and struct fields.
//
// Diagnostics anchor at the sink, where the nondeterminism becomes
// observable, and name the source and the call chain between them. An
// audited //parm:det on either the source or the sink line suppresses the
// flow.
package detflow

import (
	"go/token"
	"path/filepath"

	"parm/internal/analysis"
	"parm/internal/analysis/callgraph"
	"parm/internal/analysis/taint"
)

// Analyzer reports nondeterminism flowing into determinism sinks.
var Analyzer = &analysis.Analyzer{
	Name: "detflow",
	Doc: "reports interprocedural flows from nondeterminism sources (map order, " +
		"chan/select order, global rand, %p) into determinism sinks (json, " +
		"report tables, timeline, core.Metrics); suppress with //parm:det",
	RunProgram: run,
}

func run(pass *analysis.ProgramPass) error {
	g := callgraph.Build(pass.Fset, pass.Packages)
	calls, fields := taint.ParmSinks()
	flows := taint.Run(g, taint.Spec{
		SinkCalls:  calls,
		SinkFields: fields,
		Suppress:   func(pos token.Pos) bool { return pass.Suppressed(pos, "det") },
	})
	for _, f := range flows {
		if !pass.Analyzable(f.Sink.Pos) || pass.Suppressed(f.Sink.Pos, "det") {
			continue
		}
		src := pass.Fset.Position(f.Source.Pos)
		pass.Reportf(f.Sink.Pos,
			"nondeterministic %s (%s, %s:%d) flows into %s via %s; sort or seed before the sink, or annotate //parm:det",
			f.Source.Kind, f.Source.Desc, filepath.Base(src.Filename), src.Line,
			f.Sink.Desc, f.PathString())
	}
	return nil
}
