// Package core mirrors the production metrics structs so the fixture
// exercises the exact sink-table entries detflow ships with
// ("parm/internal/core.Metrics", "parm/internal/core.AppOutcome").
package core

// AppOutcome is one application's result record.
type AppOutcome struct {
	Name string
	IPC  float64
}

// Metrics is the determinism-sensitive result document.
type Metrics struct {
	Energy float64
	Trace  string
	Apps   []AppOutcome
}
