// Package app seeds every detflow source kind against the production sink
// tables, alongside the sanitized forms that must stay silent.
package app

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"parm/internal/core"
)

// Collect is the seeded regression: an unsorted map walk feeding
// core.Metrics. A byte-identity test replaying one run cannot observe the
// order dependence; detflow must.
func Collect(power map[string]float64) core.Metrics {
	var m core.Metrics
	for name, p := range power {
		m.Apps = append(m.Apps, core.AppOutcome{Name: name, IPC: p}) // want `nondeterministic map-order .* store to core.Metrics.Apps`
	}
	return m
}

// keys leaks map order through its return value.
func keys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

// Dump reaches the json sink through the keys call: the flow is
// interprocedural and must carry the call chain.
func Dump(m map[string]int) ([]byte, error) {
	return json.Marshal(keys(m)) // want `nondeterministic map-order .* json encoding`
}

// DumpSorted sorts between the map walk and the sink: clean.
func DumpSorted(m map[string]int) ([]byte, error) {
	ks := keys(m)
	sort.Strings(ks)
	return json.Marshal(ks)
}

// Audited carries the //parm:det escape hatch on the source: clean.
func Audited(m map[string]int) ([]byte, error) {
	var ks []string
	for k := range m { //parm:det
		ks = append(ks, k)
	}
	return json.Marshal(ks)
}

// Annotate draws from the unseeded global generator straight into Metrics.
func Annotate(m *core.Metrics) {
	m.Energy = rand.Float64() // want `nondeterministic global-rand .* store to core.Metrics.Energy`
}

// Gather accumulates channel receives in arrival order into a string field.
func Gather(ch chan string, m *core.Metrics) {
	for i := 0; i < 3; i++ {
		m.Trace += <-ch // want `nondeterministic chan-order .* store to core.Metrics.Trace`
	}
}

type result struct {
	idx int
	val float64
}

// PoolSorted collects from a worker pool with content-keyed stores — the
// deterministic idiom — so nothing flows.
func PoolSorted(ch chan result, m *core.Metrics) {
	vals := make([]float64, 4)
	for i := 0; i < 4; i++ {
		r := <-ch
		vals[r.idx] = r.val
	}
	m.Apps = append(m.Apps, core.AppOutcome{Name: "pool", IPC: vals[0]})
}

// race returns whichever channel wins the select.
func race(a, b chan string) string {
	var got string
	select {
	case got = <-a:
	case got = <-b:
	}
	return got
}

// DumpRace encodes a select-order-dependent value.
func DumpRace(a, b chan string) ([]byte, error) {
	return json.Marshal(race(a, b)) // want `nondeterministic select-order .* json encoding`
}

// Label renders a pointer address into the trace.
func Label(m *core.Metrics, p *core.AppOutcome) {
	m.Trace = fmt.Sprintf("%p", p) // want `nondeterministic pointer-format .* store to core.Metrics.Trace`
}

// SyncWalk iterates a sync.Map inside the encode path.
func SyncWalk(sm *sync.Map) ([]byte, error) {
	var ks []string
	sm.Range(func(k, v any) bool {
		ks = append(ks, k.(string))
		return true
	})
	return json.Marshal(ks) // want `nondeterministic sync-map-order .* json encoding`
}
