package detflow_test

import (
	"testing"

	"parm/internal/analysis/analysistest"
	"parm/internal/analysis/detflow"
)

func TestDetflow(t *testing.T) {
	analysistest.RunProgram(t, "testdata/src", detflow.Analyzer)
}
