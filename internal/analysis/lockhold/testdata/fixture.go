// Fixture for the lockhold analyzer: blocking operations reached with a
// sync.Mutex/RWMutex held fire; the same operations after release, under a
// select with default, inside separate goroutine literals, or under
// //parm:hold do not.
package fixture

import (
	"sync"
	"time"
)

var (
	mu  sync.Mutex
	rw  sync.RWMutex
	mu2 sync.Mutex
	wg  sync.WaitGroup
	ch  = make(chan int)
)

func sendWhileHeld(v int) {
	mu.Lock()
	ch <- v // want `channel send while holding mu`
	mu.Unlock()
}

func recvWhileHeld() int {
	rw.RLock()
	v := <-ch // want `channel receive while holding rw`
	rw.RUnlock()
	return v
}

func waitWhileHeld() {
	mu.Lock()
	wg.Wait() // want `sync.WaitGroup.Wait while holding mu`
	mu.Unlock()
}

func sleepWhileHeld() {
	mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding mu`
	mu.Unlock()
}

func nestedAcquire() {
	mu.Lock()
	mu2.Lock() // want `acquiring mu2.Lock while holding mu`
	mu2.Unlock()
	mu.Unlock()
}

func selectNoDefaultWhileHeld() {
	mu.Lock()
	select { // want `select without default while holding mu`
	case v := <-ch:
		_ = v
	case ch <- 1:
	}
	mu.Unlock()
}

func rangeChanWhileHeld() int {
	total := 0
	mu.Lock()
	for v := range ch { // want `range over channel while holding mu`
		total += v
	}
	mu.Unlock()
	return total
}

func deferUnlockStillHeld(v int) {
	// The deferred release runs at return; the send still blocks under lock.
	mu.Lock()
	defer mu.Unlock()
	ch <- v // want `channel send while holding mu`
}

func branchAcquiredReachesJoin(c bool, v int) {
	// Flow-sensitivity: the lock is only held on one path, but the may-
	// analysis carries it to the join.
	if c {
		mu.Lock()
	}
	ch <- v // want `channel send while holding mu`
	if c {
		mu.Unlock()
	}
}

func sendAfterUnlock(v int) {
	mu.Lock()
	mu.Unlock()
	ch <- v // released: no finding
}

func branchReleasedBeforeJoin(c bool, v int) {
	if c {
		mu.Lock()
		mu.Unlock()
	}
	ch <- v // both paths reach here lock-free: no finding
}

func selectWithDefaultWhileHeld(v int) {
	mu.Lock()
	select {
	case ch <- v: // non-blocking under default: no finding
	default:
	}
	mu.Unlock()
}

func goroutineBodyIsSeparate(v int) {
	// The literal runs on its own goroutine; the outer lock is not "held
	// across" its send.
	mu.Lock()
	go func() {
		ch <- v
	}()
	mu.Unlock()
}

func suppressedBoundedSend(v int) {
	buffered := make(chan int, 1)
	mu.Lock()
	//parm:hold
	buffered <- v
	mu.Unlock()
	<-buffered
}

func lockFreeBlocking(v int) {
	// Blocking with nothing held is fine.
	wg.Wait()
	ch <- v
	<-ch
}
