// Package lockhold enforces the lock discipline of the measurement worker
// pools: a sync.Mutex or sync.RWMutex must never be held across an
// operation that can block indefinitely — a channel send or receive, a
// select without a default, sync.WaitGroup.Wait, sync.Cond.Wait, time.Sleep,
// or the acquisition of another (or the same) lock. A goroutine parked on a
// channel while holding the solve-cache lock wedges every worker behind it;
// flow analysis catches the pattern at lint time instead of as a hung Fig-6
// sweep.
//
// The analysis is flow-sensitive: each function body's control-flow graph
// (internal/analysis/cfg) is solved with a forward may-analysis whose facts
// are the lock objects possibly held at block entry (gen at Lock/RLock,
// kill at Unlock/RUnlock). A blocking operation reached with a non-empty
// held set is reported. `defer mu.Unlock()` releases at function exit, so
// it does NOT clear the held set for the statements that follow — blocking
// between Lock and the deferred release is still a finding, which is the
// point.
//
// Channel operations guarded by a select WITH a default clause are
// non-blocking and exempt. Function literals are analyzed as separate
// functions (their body runs on a different goroutine's schedule).
//
// Suppression is //parm:hold on the flagged line or the line above it, for
// a blocking operation that is provably bounded (e.g. a send on a buffered
// channel sized to the fan-out).
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"

	"parm/internal/analysis"
	"parm/internal/analysis/cfg"
)

// Analyzer flags locks held across potentially-blocking operations.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc: "flags sync.Mutex/RWMutex held across channel operations, " +
		"WaitGroup.Wait, time.Sleep, or another lock acquisition",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// Analyze every function body independently: declarations and
		// literals.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, f, n.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, f, n.Body)
			}
			return true
		})
	}
	return nil
}

// checkBody solves the held-locks dataflow over one function body and
// reports blocking operations reached with a lock held.
func checkBody(pass *analysis.Pass, f *ast.File, body *ast.BlockStmt) {
	nonBlocking := selectComms(body)
	g := cfg.New(body)
	transfer := func(b *cfg.Block, in cfg.Facts[types.Object]) cfg.Facts[types.Object] {
		out := in.Clone()
		for _, n := range b.Nodes {
			walkNode(pass, n, nonBlocking, &out, nil)
		}
		return out
	}
	in := cfg.Forward(g, transfer)
	// Reporting pass: replay each block once from its fixpoint input.
	for _, b := range g.Blocks {
		held := in[b].Clone()
		for _, n := range b.Nodes {
			walkNode(pass, n, nonBlocking, &held, func(pos token.Pos, what string) {
				if pass.Suppressed(f, pos, "hold") {
					return
				}
				pass.Reportf(pos, "%s while holding %s; release the lock first or bound the operation (//parm:hold)",
					what, heldNames(held))
			})
		}
	}
}

// walkNode applies one block node's lock effects to held, invoking report
// (when non-nil) at blocking operations reached with locks held. Function
// literals are not descended into.
func walkNode(pass *analysis.Pass, root ast.Node, nonBlocking map[ast.Node]bool,
	held *cfg.Facts[types.Object], report func(token.Pos, string)) {

	// Statements whose evaluation itself blocks.
	switch s := root.(type) {
	case *ast.SendStmt:
		if !nonBlocking[s] && report != nil && len(*held) > 0 {
			report(s.Arrow, "channel send")
		}
	case *ast.SelectStmt:
		if !hasDefault(s) && report != nil && len(*held) > 0 {
			report(s.Select, "select without default")
		}
		// Clause bodies live in their own blocks; nothing more to do here.
		return
	case *ast.RangeStmt:
		if tv, ok := pass.TypesInfo.Types[s.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				if report != nil && len(*held) > 0 {
					report(s.For, "range over channel")
				}
			}
		}
	}

	cfg.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate function, separate schedule
		case *ast.DeferStmt:
			// A deferred Unlock runs at return, not here: it must not kill
			// the held fact for the statements that follow.
			return false
		case *ast.GoStmt:
			return false // runs on another goroutine
		case *ast.SendStmt:
			if n != root && !nonBlocking[n] && report != nil && len(*held) > 0 {
				report(n.Arrow, "channel send")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !nonBlocking[n] && report != nil && len(*held) > 0 {
				report(n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			applyCall(pass, n, held, report)
		}
		return true
	})
}

// applyCall handles one call: lock gen/kill and known-blocking callees.
func applyCall(pass *analysis.Pass, call *ast.CallExpr, held *cfg.Facts[types.Object], report func(token.Pos, string)) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name

	// time.Sleep.
	if pkg, ok := pass.TypesInfo.Uses[baseIdent(sel.X)].(*types.PkgName); ok && baseIdent(sel.X) != nil {
		if pkg.Imported().Path() == "time" && name == "Sleep" {
			if report != nil && len(*held) > 0 {
				report(call.Pos(), "time.Sleep")
			}
			return
		}
	}

	recv := pass.TypesInfo.Types[sel.X].Type
	if recv == nil {
		return
	}
	switch {
	case isSyncType(recv, "Mutex"), isSyncType(recv, "RWMutex"):
		obj := lockObject(pass, sel.X)
		switch name {
		case "Lock", "RLock":
			// Acquiring while anything is held (including this lock) can
			// block or self-deadlock.
			if report != nil && len(*held) > 0 {
				report(call.Pos(), "acquiring "+exprString(sel.X)+"."+name)
			}
			if obj != nil {
				*held = held.Add(obj)
			}
		case "Unlock", "RUnlock":
			if obj != nil {
				held.Delete(obj)
			}
		case "TryLock", "TryRLock":
			// Non-blocking; on success the lock is held, so gen it.
			if obj != nil {
				*held = held.Add(obj)
			}
		}
	case isSyncType(recv, "WaitGroup") && name == "Wait",
		isSyncType(recv, "Cond") && name == "Wait":
		if report != nil && len(*held) > 0 {
			report(call.Pos(), "sync."+typeBase(recv)+".Wait")
		}
	}
}

// lockObject resolves the identity of a lock expression to a types.Object:
// a variable for `mu`, the field object for `c.mu` (one fact per field, not
// per instance — sound for the intra-procedural may-analysis).
func lockObject(pass *analysis.Pass, x ast.Expr) types.Object {
	switch x := x.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[x]
	case *ast.SelectorExpr:
		if s, ok := pass.TypesInfo.Selections[x]; ok {
			return s.Obj()
		}
		return pass.TypesInfo.Uses[x.Sel]
	case *ast.ParenExpr:
		return lockObject(pass, x.X)
	case *ast.UnaryExpr:
		return lockObject(pass, x.X)
	}
	return nil
}

// selectComms collects the channel operations serving as comm guards of any
// select. With a default clause they are non-blocking; without one the
// select statement itself is reported, so reporting the individual comm ops
// again would be noise.
func selectComms(body *ast.BlockStmt) map[ast.Node]bool {
	out := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cs := range sel.Body.List {
			cc, ok := cs.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			out[cc.Comm] = true
			// The comm statement wraps the underlying send/recv expr.
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.SendStmt:
					out[m] = true
				case *ast.UnaryExpr:
					if m.Op == token.ARROW {
						out[m] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

func hasDefault(s *ast.SelectStmt) bool {
	for _, cs := range s.Body.List {
		if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// isSyncType reports whether t (or *t) is sync.<name>.
func isSyncType(t types.Type, name string) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// typeBase returns the bare type name of t for diagnostics.
func typeBase(t types.Type) string {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// heldNames renders the held lock set for diagnostics, sorted for
// determinism.
func heldNames(held cfg.Facts[types.Object]) string {
	names := make([]string, 0, len(held))
	for o := range held {
		names = append(names, o.Name())
	}
	// Insertion sort: the set is tiny.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// baseIdent unwraps x to its base identifier, or nil.
func baseIdent(x ast.Expr) *ast.Ident {
	for {
		switch e := x.(type) {
		case *ast.Ident:
			return e
		case *ast.ParenExpr:
			x = e.X
		default:
			return nil
		}
	}
}

// exprString renders a short receiver expression for diagnostics.
func exprString(x ast.Expr) string {
	switch x := x.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.UnaryExpr:
		return exprString(x.X)
	}
	return "lock"
}
