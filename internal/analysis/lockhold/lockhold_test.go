package lockhold_test

import (
	"testing"

	"parm/internal/analysis/analysistest"
	"parm/internal/analysis/lockhold"
)

func TestLockhold(t *testing.T) {
	analysistest.Run(t, "testdata", lockhold.Analyzer)
}
