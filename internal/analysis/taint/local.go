package taint

import (
	"go/ast"
	"go/token"
	"go/types"

	"parm/internal/analysis"
	"parm/internal/analysis/callgraph"
	"parm/internal/analysis/cfg"
)

// unit is one declared function under analysis, together with every
// function literal it (transitively) creates: literals share the enclosing
// function's variables, which models closures and goroutine bodies
// directly.
type unit struct {
	e    *engine
	node *callgraph.Node
	pkg  *analysis.ProgramPackage
	info *types.Info
	name string

	// paramObjs lists receiver-then-parameters in signature order (nil for
	// unnamed entries); param(i) indexes into it.
	paramObjs []types.Object
	// namedResults back bare returns.
	namedResults []types.Object
	// graphs holds the CFG of the declared body and of each literal.
	graphs []*funcGraph
	// objT is the function-local taint state, monotone across iterations.
	objT map[types.Object]sset
	// spans are the ordering contexts (map-range bodies, channel ranges,
	// sync.Map.Range callbacks) with their canonical sources.
	spans []span
	// selectComm taints the bindings of multi-case select comm clauses.
	selectComm map[ast.Stmt]*Source
	// localChanged is set whenever the unit's state grew this pass.
	localChanged bool
}

// funcGraph is one body's CFG with its derived facts.
type funcGraph struct {
	g     *cfg.Graph
	loops map[*cfg.Block]bool
	// sortedIn is the flow-sensitive "this slice has been sorted" fact set
	// at each block entry, from the cfg forward-dataflow fixpoint.
	sortedIn map[*cfg.Block]cfg.Facts[types.Object]
}

// span is one ordering context: statements between from and to execute in
// an order the runtime does not fix.
type span struct {
	from, to token.Pos
	src      *Source
}

// evalCtx carries the position-dependent state of one walk step.
type evalCtx struct {
	fg *funcGraph
	// block is the CFG block being walked (nil during setup scans).
	block *cfg.Block
	// sorted is the sorted-slices fact set at the current statement.
	sorted cfg.Facts[types.Object]
}

// newUnit prepares one declared function for analysis.
func (e *engine) newUnit(n *callgraph.Node) *unit {
	u := &unit{
		e:          e,
		node:       n,
		pkg:        n.Pkg,
		info:       n.Pkg.Info,
		name:       n.Name(),
		objT:       make(map[types.Object]sset),
		selectComm: make(map[ast.Stmt]*Source),
	}
	// Receiver, then parameters, in declaration order.
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if len(f.Names) == 0 {
				u.paramObjs = append(u.paramObjs, nil)
				continue
			}
			for _, name := range f.Names {
				u.paramObjs = append(u.paramObjs, u.info.Defs[name])
			}
		}
	}
	collect(n.Decl.Recv)
	collect(n.Decl.Type.Params)
	if res := n.Decl.Type.Results; res != nil {
		for _, f := range res.List {
			for _, name := range f.Names {
				if obj := u.info.Defs[name]; obj != nil {
					u.namedResults = append(u.namedResults, obj)
				}
			}
		}
	}
	for i, obj := range u.paramObjs {
		if obj != nil {
			u.objT[obj], _ = u.objT[obj].add(param(i))
		}
	}

	// The declared body plus every literal reachable through Lit edges.
	bodies := []*ast.BlockStmt{n.Decl.Body}
	var addLits func(from *callgraph.Node)
	addLits = func(from *callgraph.Node) {
		for _, edge := range from.Out {
			if edge.Kind == callgraph.Lit && edge.Callee.Lit != nil {
				bodies = append(bodies, edge.Callee.Lit.Body)
				addLits(edge.Callee)
			}
		}
	}
	addLits(n)
	for _, body := range bodies {
		g := cfg.New(body)
		u.graphs = append(u.graphs, &funcGraph{
			g:        g,
			loops:    g.LoopBlocks(),
			sortedIn: cfg.Forward(g, u.sortedTransfer),
		})
	}

	u.setupContexts(n.Decl.Body)
	return u
}

// setupContexts scans the unit's AST once for ordering contexts: map and
// channel ranges, multi-case selects, and sync.Map.Range callbacks.
func (u *unit) setupContexts(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			tv, ok := u.info.Types[n.X]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				src := u.e.sourceAt(KindMapRange, n.Pos(),
					"map iteration order of range over "+types.ExprString(n.X), u.node)
				u.addSpan(n.Body, src)
			case *types.Chan:
				src := u.e.sourceAt(KindChanOrder, n.Pos(),
					"arrival order of range over channel "+types.ExprString(n.X), u.node)
				u.addSpan(n.Body, src)
			}
		case *ast.SelectStmt:
			var comms []*ast.CommClause
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					comms = append(comms, cc)
				}
			}
			if len(comms) < 2 {
				return true
			}
			for _, cc := range comms {
				src := u.e.sourceAt(KindSelectOrder, n.Pos(),
					"case choice of multi-ready select", u.node)
				if src != nil {
					u.selectComm[cc.Comm] = src
				}
			}
		case *ast.CallExpr:
			// sync.Map.Range(func(k, v any) bool { ... }) iterates in
			// unspecified order: the callback body is an ordering context
			// and its parameters are order-bound.
			fn := u.staticCallee(n)
			if fn == nil || fn.FullName() != "(*sync.Map).Range" || len(n.Args) != 1 {
				return true
			}
			lit, ok := ast.Unparen(n.Args[0]).(*ast.FuncLit)
			if !ok {
				return true
			}
			src := u.e.sourceAt(KindSyncMapRange, n.Pos(), "sync.Map.Range iteration order", u.node)
			u.addSpan(lit.Body, src)
			if src != nil {
				for _, f := range lit.Type.Params.List {
					for _, name := range f.Names {
						if obj := u.info.Defs[name]; obj != nil {
							u.taintObj(obj, sset{src: true})
						}
					}
				}
			}
		}
		return true
	})
}

func (u *unit) addSpan(body *ast.BlockStmt, src *Source) {
	if src == nil || body == nil {
		return
	}
	u.spans = append(u.spans, span{from: body.Pos(), to: body.End(), src: src})
}

// spanSources returns the ordering contexts enclosing pos.
func (u *unit) spanSources(pos token.Pos) []*Source {
	var out []*Source
	for _, s := range u.spans {
		if s.from <= pos && pos <= s.to {
			out = append(out, s.src)
		}
	}
	return out
}

// ---- sorted-slice dataflow (flow-sensitive, on the cfg fixpoint) ----

// sortedTransfer is the cfg.Forward transfer function: a sort call gens a
// "sorted" fact for its operand, any later write to the operand kills it.
func (u *unit) sortedTransfer(b *cfg.Block, in cfg.Facts[types.Object]) cfg.Facts[types.Object] {
	out := in.Clone()
	for _, n := range b.Nodes {
		u.sortedStep(n, out)
	}
	return out
}

// sortedStep applies one statement's effect to the sorted-fact set.
func (u *unit) sortedStep(n ast.Node, facts cfg.Facts[types.Object]) {
	inspectShallow(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			if obj := u.sortTarget(x); obj != nil {
				facts.Add(obj)
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if obj := u.rootObj(lhs); obj != nil {
					facts.Delete(obj)
				}
			}
		case *ast.RangeStmt:
			for _, bind := range []ast.Expr{x.Key, x.Value} {
				if bind == nil {
					continue
				}
				if obj := u.rootObj(bind); obj != nil {
					facts.Delete(obj)
				}
			}
		}
		return true
	})
}

// sortFuncs are the sort/slices entry points that order their first
// argument in place.
var sortFuncs = map[string]bool{
	"Ints": true, "Strings": true, "Float64s": true, "Sort": true,
	"Stable": true, "Slice": true, "SliceStable": true,
	"SortFunc": true, "SortStableFunc": true,
}

// sortTarget returns the object a call sorts, or nil.
func (u *unit) sortTarget(call *ast.CallExpr) types.Object {
	fn := u.staticCallee(call)
	if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
		return nil
	}
	if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
		return nil
	}
	if !sortFuncs[fn.Name()] {
		return nil
	}
	return u.rootObj(call.Args[0])
}

// ---- analysis driver ----

// analyze runs the unit's local fixpoint, updating the engine's summaries,
// field taint, and flows.
func (u *unit) analyze() {
	for pass := 0; pass < 32; pass++ {
		u.localChanged = false
		for _, fg := range u.graphs {
			for _, b := range fg.g.Blocks {
				ctx := &evalCtx{fg: fg, block: b, sorted: fg.sortedIn[b].Clone()}
				for _, n := range b.Nodes {
					u.process(ctx, n)
					u.sortedStep(n, ctx.sorted)
				}
			}
		}
		if !u.localChanged {
			break
		}
	}
}

// taintObj merges t into obj's taint set.
func (u *unit) taintObj(obj types.Object, t sset) {
	if obj == nil || obj.Name() == "_" {
		return
	}
	if v, ok := obj.(*types.Var); ok && !v.IsField() && isPackageLevel(v) {
		u.storeField(v, t, nil)
		return
	}
	cur := u.objT[obj]
	for el := range t {
		var added bool
		cur, added = cur.add(el)
		u.localChanged = u.localChanged || added
	}
	u.objT[obj] = cur
}

// storeField records a store into a struct field or package-level variable,
// keyed by declaration position so distinct type-check runs unify. Param
// taint becomes a summary obligation.
func (u *unit) storeField(v *types.Var, t sset, _ ast.Node) {
	sum := u.e.sums[u.node]
	for el := range t {
		switch el := el.(type) {
		case *Source:
			var added bool
			u.e.fieldT[v.Pos()], added = u.e.fieldT[v.Pos()].add(el)
			if added {
				u.localChanged, u.e.changed = true, true
			}
		case param:
			if !sum.paramFields[el][v.Pos()] {
				sum.paramFields[el][v.Pos()] = true
				u.localChanged, u.e.changed = true, true
			}
		}
	}
}

// process interprets one CFG node.
func (u *unit) process(ctx *evalCtx, n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		u.handleAssign(ctx, n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				for i, name := range vs.Names {
					var t sset
					if len(vs.Values) == len(vs.Names) {
						t = u.eval(ctx, vs.Values[i])
					} else {
						t = u.eval(ctx, vs.Values[0])
					}
					u.taintObj(u.info.Defs[name], t)
				}
			}
		}
	case *ast.ReturnStmt:
		u.handleReturn(ctx, n)
	case *ast.SendStmt:
		// A send taints the channel object; receives read it back.
		t := u.eval(ctx, n.Value)
		if obj := u.rootObj(n.Chan); obj != nil {
			u.taintObj(obj, t)
		}
	case *ast.RangeStmt:
		t := u.eval(ctx, n.X)
		if tv, ok := u.info.Types[n.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				if src := u.e.sourceAt(KindChanOrder, n.Pos(),
					"arrival order of range over channel "+types.ExprString(n.X), u.node); src != nil {
					t, _ = t.add(src)
				}
			}
		}
		for _, bind := range []ast.Expr{n.Key, n.Value} {
			if bind == nil {
				continue
			}
			if id, ok := bind.(*ast.Ident); ok {
				if obj := u.info.Defs[id]; obj != nil {
					u.taintObj(obj, t)
				} else if obj := u.info.Uses[id]; obj != nil {
					u.taintObj(obj, t)
				}
			}
		}
	case *ast.ExprStmt:
		u.scanCalls(ctx, n.X)
	default:
		// Conditions, send/receive in comm clauses, defer/go statements:
		// evaluate embedded calls for their sink and summary effects.
		u.scanCalls(ctx, n)
	}
	if stmt, ok := n.(ast.Stmt); ok {
		if src, ok2 := u.selectComm[stmt]; ok2 {
			u.taintSelectComm(ctx, stmt, src)
		}
	}
}

// taintSelectComm taints the bindings of one multi-case select comm clause.
func (u *unit) taintSelectComm(ctx *evalCtx, stmt ast.Stmt, src *Source) {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return
	}
	t := sset{src: true}
	for _, lhs := range as.Lhs {
		u.assignTo(ctx, lhs, t)
	}
}

// scanCalls evaluates every call in n (without descending into literals,
// whose bodies have their own CFGs).
func (u *unit) scanCalls(ctx *evalCtx, n ast.Node) {
	inspectShallow(n, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			u.eval(ctx, call)
			return false // eval recurses into the arguments itself
		}
		return true
	})
}

// handleAssign interprets one assignment, including the ordering-context
// accumulation rules and content-keyed stores.
func (u *unit) handleAssign(ctx *evalCtx, as *ast.AssignStmt) {
	switch {
	case as.Tok == token.ASSIGN || as.Tok == token.DEFINE:
		if len(as.Rhs) == len(as.Lhs) {
			for i := range as.Lhs {
				u.assignTo(ctx, as.Lhs[i], u.eval(ctx, as.Rhs[i]))
			}
			return
		}
		// Tuple assignment. A summarized call maps result positions onto
		// targets exactly; everything else (comma-ok, unresolved calls)
		// smears the combined taint over every target.
		t := u.eval(ctx, as.Rhs[0])
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			if multi := u.evalCallMulti(ctx, call, len(as.Lhs)); multi != nil {
				for i, lhs := range as.Lhs {
					u.assignTo(ctx, lhs, multi[i])
				}
				return
			}
		}
		for _, lhs := range as.Lhs {
			u.assignTo(ctx, lhs, t)
		}
	default:
		// Op-assign. String and floating-point accumulation inside an
		// ordering context is order-sensitive (concatenation order; float
		// addition does not commute bit-exactly).
		t := u.eval(ctx, as.Lhs[0])
		for el := range u.eval(ctx, as.Rhs[0]) {
			t, _ = t.add(el)
		}
		if tv, ok := u.info.Types[as.Lhs[0]]; ok && isOrderSensitiveAccum(tv.Type) {
			for _, src := range u.spanSources(as.Pos()) {
				t, _ = t.add(src)
			}
		}
		u.assignTo(ctx, as.Lhs[0], t)
	}
}

// isOrderSensitiveAccum reports whether accumulating values of type typ is
// sensitive to accumulation order (strings concatenate; float addition is
// not bit-exactly associative).
func isOrderSensitiveAccum(typ types.Type) bool {
	b, ok := typ.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsString|types.IsFloat|types.IsComplex) != 0
}

// assignTo merges taint t into an assignment target.
func (u *unit) assignTo(ctx *evalCtx, lhs ast.Expr, t sset) {
	if len(t) == 0 {
		return
	}
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := u.info.Defs[lhs]; obj != nil {
			u.taintObj(obj, t)
		} else if obj := u.info.Uses[lhs]; obj != nil {
			u.taintObj(obj, t)
		}
	case *ast.SelectorExpr:
		if sel, ok := u.info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
			fv, ok := sel.Obj().(*types.Var)
			if !ok {
				return
			}
			// A store into a designated sink struct is terminal: it is
			// reported as a sink and deliberately NOT recorded as field
			// taint — otherwise every store to the field would re-read (and
			// re-report) every other store's sources.
			if desc, ok := u.e.spec.SinkFields[namedTypeName(sel.Recv())]; ok {
				u.sinkHit(Sink{Pos: lhs.Pos(), Desc: "store to " + desc + "." + fv.Name()}, t, lhs.Pos())
				return
			}
			u.storeField(fv, t, lhs)
			return
		}
		if v, ok := u.info.Uses[lhs.Sel].(*types.Var); ok {
			u.storeField(v, t, lhs)
		}
	case *ast.IndexExpr:
		// Content-keyed stores (results[r.idx] = r) re-key arrival order
		// deterministically: ordering sources shared by index and value do
		// not propagate into the container.
		it := u.eval(ctx, lhs.Index)
		filtered := make(sset, len(t))
		for el := range t {
			if src, ok := el.(*Source); ok && src.Kind.Ordered() && it[el] {
				continue
			}
			filtered[el] = true
		}
		u.assignTo(ctx, lhs.X, filtered)
	case *ast.StarExpr:
		if obj := u.rootObj(lhs.X); obj != nil {
			u.taintObj(obj, t)
		}
	}
}

// sinkHit records flows and summary obligations for one sink consumption:
// every source in t flows, every tainted parameter becomes a caller
// obligation, and every enclosing ordering context flows positionally.
func (u *unit) sinkHit(sink Sink, t sset, pos token.Pos) {
	sum := u.e.sums[u.node]
	if _, ok := sum.allSinks[sink.Pos]; !ok {
		sum.allSinks[sink.Pos] = sinkRef{sink: sink}
		u.localChanged, u.e.changed = true, true
	}
	for el := range t {
		switch el := el.(type) {
		case *Source:
			u.e.addFlow(el, sink, []string{u.name})
		case param:
			if _, ok := sum.paramSinks[el][sink.Pos]; !ok {
				sum.paramSinks[el][sink.Pos] = sinkRef{sink: sink}
				u.localChanged, u.e.changed = true, true
			}
		}
	}
	for _, src := range u.spanSources(pos) {
		u.e.addFlow(src, sink, []string{u.name})
	}
}

// handleReturn folds returned taint into the function summary, per result
// position. Returns inside function literals are the literal's, not the
// declared function's — only the declared body (the unit's first graph)
// contributes.
func (u *unit) handleReturn(ctx *evalCtx, rs *ast.ReturnStmt) {
	if ctx.fg != u.graphs[0] {
		return
	}
	sum := u.e.sums[u.node]
	record := func(i int, t sset) {
		if i >= len(sum.results) {
			return
		}
		for el := range t {
			var added bool
			sum.results[i], added = sum.results[i].add(el)
			if added {
				u.localChanged, u.e.changed = true, true
			}
		}
	}
	switch {
	case len(rs.Results) == 0:
		for i, obj := range u.namedResults {
			record(i, u.objT[obj])
		}
	case len(rs.Results) == 1 && len(sum.results) > 1:
		// `return f()` forwarding a tuple: map the callee's results through.
		if call, ok := ast.Unparen(rs.Results[0]).(*ast.CallExpr); ok {
			if multi := u.evalCallMulti(ctx, call, len(sum.results)); multi != nil {
				for i, t := range multi {
					record(i, t)
				}
				return
			}
		}
		t := u.eval(ctx, rs.Results[0])
		for i := range sum.results {
			record(i, t)
		}
	default:
		for i, res := range rs.Results {
			record(i, u.eval(ctx, res))
		}
	}
}

// rootObj resolves the base object of an lvalue-ish expression, stripping
// unary, star, index, slice, and selector wrappers.
func (u *unit) rootObj(e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := u.info.Uses[x]; obj != nil {
				return obj
			}
			return u.info.Defs[x]
		case *ast.UnaryExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// staticCallee resolves a call's target function when it is syntactically
// direct (declared function, method, or qualified name), else nil.
func (u *unit) staticCallee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := u.info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := u.info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := u.info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPackageLevel reports whether v is a package-scope variable.
func isPackageLevel(v *types.Var) bool {
	return v.Parent() != nil && v.Parent().Parent() == types.Universe
}

// namedTypeName returns "pkgpath.Name" of a (possibly pointer-wrapped)
// named type, or "".
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// inspectShallow walks n like ast.Inspect but does not descend into
// function literal bodies (they have their own CFGs) and visits range
// statements shallowly, mirroring cfg.Inspect.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	if n == nil {
		return
	}
	cfg.Inspect(n, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok {
			fn(lit)
			return false
		}
		return fn(x)
	})
}
