package taint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// eval computes the taint set of one expression, applying call effects
// (sink checks, summary application, source introduction) along the way.
// Sets only grow across passes, so re-evaluation is safe.
func (u *unit) eval(ctx *evalCtx, e ast.Expr) sset {
	if e == nil {
		return nil
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := u.info.Uses[e]
		if obj == nil {
			obj = u.info.Defs[e]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return nil
		}
		var t sset
		if isPackageLevel(v) {
			t = u.e.fieldT[v.Pos()]
		} else {
			t = u.objT[obj]
		}
		if ctx != nil && ctx.sorted.Has(obj) {
			return dropOrdered(t)
		}
		return t
	case *ast.SelectorExpr:
		if sel, ok := u.info.Selections[e]; ok {
			switch sel.Kind() {
			case types.FieldVal:
				t := cloneSet(u.eval(ctx, e.X))
				if fv, ok := sel.Obj().(*types.Var); ok {
					for el := range u.e.fieldT[fv.Pos()] {
						t, _ = t.add(el)
					}
				}
				return t
			case types.MethodVal:
				return u.eval(ctx, e.X)
			}
			return nil
		}
		// Package-qualified name.
		if v, ok := u.info.Uses[e.Sel].(*types.Var); ok {
			return u.e.fieldT[v.Pos()]
		}
		return nil
	case *ast.CallExpr:
		return u.evalCall(ctx, e)
	case *ast.UnaryExpr:
		t := u.eval(ctx, e.X)
		if e.Op == token.ARROW {
			// A receive whose block lies on a CFG cycle sees arrival order:
			// which value lands i-th depends on goroutine completion order.
			inLoop := ctx != nil && ctx.fg != nil && ctx.fg.loops[ctx.block]
			if inLoop {
				if src := u.e.sourceAt(KindChanOrder, e.Pos(),
					"arrival order of channel receive in loop", u.node); src != nil {
					t = cloneSet(t)
					t, _ = t.add(src)
				}
			}
		}
		return t
	case *ast.BinaryExpr:
		return unionSets(u.eval(ctx, e.X), u.eval(ctx, e.Y))
	case *ast.StarExpr:
		return u.eval(ctx, e.X)
	case *ast.TypeAssertExpr:
		return u.eval(ctx, e.X)
	case *ast.IndexExpr:
		return unionSets(u.eval(ctx, e.X), u.eval(ctx, e.Index))
	case *ast.IndexListExpr:
		return u.eval(ctx, e.X)
	case *ast.SliceExpr:
		return u.eval(ctx, e.X)
	case *ast.CompositeLit:
		return u.evalComposite(ctx, e)
	}
	return nil
}

// evalComposite folds element taint and records stores into struct fields,
// including the sink-struct check for literals of designated types.
func (u *unit) evalComposite(ctx *evalCtx, lit *ast.CompositeLit) sset {
	var all sset
	tv, _ := u.info.Types[lit]
	var structType *types.Struct
	isSinkStruct := false
	if tv.Type != nil {
		structType, _ = tv.Type.Underlying().(*types.Struct)
		_, isSinkStruct = u.e.spec.SinkFields[namedTypeName(tv.Type)]
	}
	for i, elt := range lit.Elts {
		valExpr := elt
		var field *types.Var
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			valExpr = kv.Value
			if key, ok := kv.Key.(*ast.Ident); ok && structType != nil {
				field, _ = u.info.Uses[key].(*types.Var)
			} else {
				all = unionSets(all, u.eval(ctx, kv.Key))
			}
		} else if structType != nil && i < structType.NumFields() {
			field = structType.Field(i)
		}
		t := u.eval(ctx, valExpr)
		all = unionSets(all, t)
		// The literal value itself carries the element taint (flows through
		// assignments and encodings); for non-sink structs the field slot
		// additionally remembers it so later field reads see it. Sink-struct
		// slots stay clean — their stores are terminal (see assignTo).
		if field != nil && len(t) > 0 && !isSinkStruct {
			u.storeField(field, t, valExpr)
		}
	}
	return all
}

// evalCall interprets one call: builtins, source-introducing stdlib calls,
// sanitizers, sink calls, and summary application for program callees.
func (u *unit) evalCall(ctx *evalCtx, call *ast.CallExpr) sset {
	// Builtins first.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := u.info.Uses[id].(*types.Builtin); ok {
			return u.evalBuiltin(ctx, call, b.Name())
		}
		// A conversion T(x) preserves taint.
		if _, ok := u.info.Uses[id].(*types.TypeName); ok && len(call.Args) == 1 {
			return u.eval(ctx, call.Args[0])
		}
	}

	fn := u.staticCallee(call)
	if fn != nil {
		if t, handled := u.evalSpecialCall(ctx, call, fn); handled {
			return t
		}
		if desc, ok := u.e.spec.SinkCalls[fn.FullName()]; ok {
			sink := Sink{Pos: call.Pos(), Desc: desc}
			for _, arg := range call.Args {
				u.sinkHit(sink, u.eval(ctx, arg), call.Pos())
			}
			if len(call.Args) == 0 {
				u.sinkHit(sink, nil, call.Pos())
			}
			return nil
		}
	}

	// Program callees: apply their summaries (interface calls fan out).
	cands := u.e.g.CalleesAt(call)
	if len(cands) > 0 {
		var t sset
		applied := false
		for _, cand := range cands {
			sum := u.e.sums[cand]
			if sum == nil {
				continue
			}
			applied = true
			t = unionSets(t, u.applySummary(ctx, call, cand, sum))
		}
		if applied {
			return t
		}
	}
	// Unresolved or external: conservative pass-through of argument taint.
	var t sset
	for _, arg := range call.Args {
		t = unionSets(t, u.eval(ctx, arg))
	}
	return t
}

// evalBuiltin models the builtins that matter for taint.
func (u *unit) evalBuiltin(ctx *evalCtx, call *ast.CallExpr, name string) sset {
	switch name {
	case "append":
		var t sset
		for _, arg := range call.Args {
			t = unionSets(t, u.eval(ctx, arg))
		}
		// Appending inside an ordering context freezes the context's
		// iteration order into the slice.
		for _, src := range u.spanSources(call.Pos()) {
			t = cloneSet(t)
			t, _ = t.add(src)
		}
		return t
	case "copy":
		if len(call.Args) == 2 {
			if obj := u.rootObj(call.Args[0]); obj != nil {
				u.taintObj(obj, u.eval(ctx, call.Args[1]))
			}
		}
		return nil
	case "len", "cap", "make", "new", "delete", "clear":
		// Cardinality and allocation are order-insensitive.
		return nil
	}
	var t sset
	for _, arg := range call.Args {
		t = unionSets(t, u.eval(ctx, arg))
	}
	return t
}

// randConstructors build local generators; everything else package-level in
// math/rand draws from the shared, unseeded global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// fmtFormatters are the fmt functions whose result carries their operands
// (and, with %p, a nondeterministic address rendering).
var fmtFormatters = map[string]int{
	// name -> index of the format-string argument (-1: no format string)
	"Sprintf": 0, "Appendf": 1, "Errorf": 0, "Sprint": -1, "Sprintln": -1,
}

// evalSpecialCall models stdlib calls with source or sanitizer semantics.
// handled reports whether the call was fully interpreted.
func (u *unit) evalSpecialCall(ctx *evalCtx, call *ast.CallExpr, fn *types.Func) (sset, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return nil, false
	}
	switch pkg.Path() {
	case "math/rand", "math/rand/v2":
		if sigOf(fn).Recv() != nil || randConstructors[fn.Name()] {
			return nil, false
		}
		src := u.e.sourceAt(KindGlobalRand, call.Pos(),
			"unseeded global "+pkg.Name()+"."+fn.Name(), u.node)
		if src == nil {
			return nil, true
		}
		return sset{src: true}, true
	case "fmt":
		fmtIdx, ok := fmtFormatters[fn.Name()]
		if !ok {
			return nil, false
		}
		var t sset
		for _, arg := range call.Args {
			t = unionSets(t, u.eval(ctx, arg))
		}
		if fmtIdx >= 0 && fmtIdx < len(call.Args) {
			if lit, ok := ast.Unparen(call.Args[fmtIdx]).(*ast.BasicLit); ok &&
				lit.Kind == token.STRING && strings.Contains(lit.Value, "%p") {
				if src := u.e.sourceAt(KindPtrFormat, call.Pos(),
					"pointer address formatting (%p)", u.node); src != nil {
					t = cloneSet(t)
					t, _ = t.add(src)
				}
			}
		}
		return t, true
	case "sort", "slices":
		if !sortFuncs[fn.Name()] && fn.Name() != "Sorted" && fn.Name() != "SortedFunc" {
			return nil, false
		}
		// Sorting erases ordering taint; the flow-sensitive sorted-facts
		// analysis additionally cleans the in-place operand downstream.
		var t sset
		for _, arg := range call.Args {
			t = unionSets(t, u.eval(ctx, arg))
		}
		return dropOrdered(t), true
	}
	return nil, false
}

// applySummary instantiates a callee summary at one call site.
func (u *unit) applySummary(ctx *evalCtx, call *ast.CallExpr, callee interface{ Name() string }, sum *summary) sset {
	argT := func(i int) sset { return u.argTaint(ctx, call, i, sum.nparams) }

	// Sinks the callee reaches regardless of arguments: calling it from
	// inside an ordering context runs the sink once per iteration, and the
	// caller inherits them into its own unconditional-sink set.
	mySum := u.e.sums[u.node]
	// Audited: every write below is keyed by ref.sink.Pos and addFlow keeps
	// the lexicographically smallest path, so iteration order is immaterial.
	//parm:det
	for _, ref := range sum.allSinks {
		path := append([]string{callee.Name()}, ref.path...)
		for _, src := range u.spanSources(call.Pos()) {
			u.e.addFlow(src, ref.sink, append([]string{u.name}, path...))
		}
		if _, ok := mySum.allSinks[ref.sink.Pos]; !ok {
			mySum.allSinks[ref.sink.Pos] = sinkRef{sink: ref.sink, path: path}
			u.localChanged, u.e.changed = true, true
		}
	}

	for i := 0; i < sum.nparams; i++ {
		hasSinks := len(sum.paramSinks[i]) > 0
		hasFields := len(sum.paramFields[i]) > 0
		if !hasSinks && !hasFields {
			continue
		}
		at := argT(i)
		if len(at) == 0 {
			continue
		}
		if hasSinks {
			u.propagateSinks(callee.Name(), sum.paramSinks[i], at)
		}
		if hasFields {
			for fpos := range sum.paramFields[i] {
				u.storeFieldPos(fpos, at)
			}
		}
	}
	// Combined result taint, for single-value contexts; tuple assignments
	// go through evalCallMulti for per-position precision.
	var ret sset
	for _, rset := range sum.results {
		ret = unionSets(ret, u.instantiate(ctx, call, rset, sum.nparams))
	}
	return ret
}

// instantiate maps a summary taint set onto one call site: param elements
// become the corresponding argument's taint, sources pass through.
func (u *unit) instantiate(ctx *evalCtx, call *ast.CallExpr, t sset, nparams int) sset {
	var out sset
	for el := range t {
		switch el := el.(type) {
		case *Source:
			out, _ = out.add(el)
		case param:
			out = unionSets(out, u.argTaint(ctx, call, int(el), nparams))
		}
	}
	return out
}

// evalCallMulti returns per-result taint for an n-valued call resolved
// through program summaries, or nil when no callee summary matches (the
// caller then smears the combined taint over every target). Sink and field
// side effects are eval's job; this only maps result positions.
func (u *unit) evalCallMulti(ctx *evalCtx, call *ast.CallExpr, n int) []sset {
	rets := make([]sset, n)
	found := false
	for _, cand := range u.e.g.CalleesAt(call) {
		sum := u.e.sums[cand]
		if sum == nil || len(sum.results) != n {
			continue
		}
		found = true
		for j, rset := range sum.results {
			rets[j] = unionSets(rets[j], u.instantiate(ctx, call, rset, sum.nparams))
		}
	}
	if !found {
		return nil
	}
	return rets
}

// propagateSinks turns a callee's parameter-sink obligations into flows (for
// concrete sources) or into this function's own obligations (for parameter
// taint).
func (u *unit) propagateSinks(calleeName string, refs map[token.Pos]sinkRef, at sset) {
	sum := u.e.sums[u.node]
	// Audited: writes are keyed by ref.sink.Pos and addFlow selects the
	// smallest path, so the order this map is walked in is immaterial.
	//parm:det
	for _, ref := range refs {
		path := append([]string{calleeName}, ref.path...)
		for el := range at {
			switch el := el.(type) {
			case *Source:
				u.e.addFlow(el, ref.sink, append([]string{u.name}, path...))
			case param:
				if _, ok := sum.paramSinks[el][ref.sink.Pos]; !ok {
					sum.paramSinks[el][ref.sink.Pos] = sinkRef{sink: ref.sink, path: path}
					u.localChanged, u.e.changed = true, true
				}
			}
		}
	}
}

// storeFieldPos merges taint into a field slot by declaration position.
func (u *unit) storeFieldPos(fpos token.Pos, t sset) {
	sum := u.e.sums[u.node]
	for el := range t {
		switch el := el.(type) {
		case *Source:
			var added bool
			u.e.fieldT[fpos], added = u.e.fieldT[fpos].add(el)
			if added {
				u.localChanged, u.e.changed = true, true
			}
		case param:
			if !sum.paramFields[el][fpos] {
				sum.paramFields[el][fpos] = true
				u.localChanged, u.e.changed = true, true
			}
		}
	}
}

// argTaint maps a callee parameter index (receiver first) to the taint of
// the corresponding call-site expression.
func (u *unit) argTaint(ctx *evalCtx, call *ast.CallExpr, i, nparams int) sset {
	args := call.Args
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := u.info.Selections[sel]; ok && s.Kind() == types.MethodVal && sigOf(s.Obj().(*types.Func)).Recv() != nil {
			// Method call: the receiver is parameter 0 only when the callee
			// summary indexes it (its signature has a receiver).
			if hasRecv(u, call) {
				if i == 0 {
					return u.eval(ctx, sel.X)
				}
				i--
			}
		}
	}
	if i < len(args) {
		// For the final (possibly variadic) parameter fold the tail.
		if i == nparams-1 && len(args) > nparams {
			var t sset
			for _, a := range args[i:] {
				t = unionSets(t, u.eval(ctx, a))
			}
			return t
		}
		return u.eval(ctx, args[i])
	}
	if nparams > 0 && i == nparams-1 && len(args) >= nparams {
		var t sset
		for _, a := range args[nparams-1:] {
			t = unionSets(t, u.eval(ctx, a))
		}
		return t
	}
	return nil
}

// sigOf is (*types.Func).Signature without the go1.23 API requirement.
func sigOf(fn *types.Func) *types.Signature {
	return fn.Type().(*types.Signature)
}

// hasRecv reports whether the call's resolved callee carries a receiver
// parameter (true for method-value calls).
func hasRecv(u *unit, call *ast.CallExpr) bool {
	fn := u.staticCallee(call)
	return fn != nil && sigOf(fn).Recv() != nil
}

// dropOrdered strips iteration/arrival-ordering sources from a set.
func dropOrdered(t sset) sset {
	var out sset
	for el := range t {
		if src, ok := el.(*Source); ok && src.Kind.Ordered() {
			continue
		}
		out, _ = out.add(el)
	}
	return out
}

// cloneSet copies a set so shared state is never mutated in place.
func cloneSet(t sset) sset {
	out := make(sset, len(t))
	for el := range t {
		out[el] = true
	}
	return out
}

// unionSets returns the union of two sets without mutating either.
func unionSets(a, b sset) sset {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := cloneSet(a)
	for el := range b {
		out[el] = true
	}
	return out
}
