// Package taint is a summary-based interprocedural taint engine over the
// callgraph layer, built to prove (statically, and over-approximately) the
// repository's byte-identical determinism contract: no nondeterminism
// source may flow into a determinism sink.
//
// Sources (Kind):
//
//   - map-order / sync-map-order — iteration order of a Go map or
//     sync.Map.Range; order-sensitive accumulations inside the loop body
//     (append, string or float accumulation) become tainted, and any sink
//     call issued per-iteration is order-dependent regardless of its
//     arguments;
//   - chan-order — arrival order of channel receives inside a loop
//     (identified with the CFG's cycle detection) and of `range ch`;
//   - select-order — values bound in a select with two or more comm
//     clauses, whose choice among ready cases is randomized;
//   - global-rand — package-level math/rand and math/rand/v2 draws
//     (unseeded, process-global);
//   - pointer-format — fmt verbs that render addresses (%p).
//
// Sinks come from a Spec: calls (JSON encoders, report-table rows,
// timeline records) and stores to fields of designated structs
// (core.Metrics, core.AppOutcome).
//
// Per function, taint propagates flow-insensitively over an
// assignment-event fixpoint, refined by a flow-sensitive "sorted" analysis
// run on the internal/analysis/cfg forward-dataflow fixpoint: a sort call
// kills ordering taint downstream of it (so collect-keys-then-sort reads
// clean), and an assignment or append to the sorted slice revives it.
// Stores whose index is derived from the stored value itself
// (results[r.idx] = r) are recognized as content-keyed and do not
// propagate ordering taint — the deterministic way to collect from a
// worker pool.
//
// Across functions, each declared function gets a summary — which
// parameters flow to its results, which nondeterminism sources its results
// carry, which parameters reach a sink or a struct field inside it or its
// callees — and summaries propagate over the call graph (interface calls
// fan out to every implementing type) until fixpoint. Function literals
// are analyzed inside their enclosing declaration, sharing its variables,
// so closures and goroutine bodies need no special casing. Struct-field
// and package-variable taint is field-based: a tainted store anywhere
// taints every read, keyed by declaration position so repeated type-check
// runs of one file unify.
//
// Known, deliberate approximations (this is a lint, with //parm:det as
// the audited escape hatch): calls through plain func-typed variables are
// not resolved; a sink reached before the sort that later cleans its
// operand is missed; channels are tracked within one function only.
package taint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"parm/internal/analysis/callgraph"
)

// Kind classifies a nondeterminism source.
type Kind string

// The source kinds detflow hunts.
const (
	KindMapRange     Kind = "map-order"
	KindSyncMapRange Kind = "sync-map-order"
	KindChanOrder    Kind = "chan-order"
	KindSelectOrder  Kind = "select-order"
	KindGlobalRand   Kind = "global-rand"
	KindPtrFormat    Kind = "pointer-format"
)

// Ordered reports whether the kind is an iteration/arrival-ordering source,
// which sorting sanitizes and content-keyed stores neutralize. Value
// sources (global-rand, pointer-format) survive both.
func (k Kind) Ordered() bool {
	switch k {
	case KindMapRange, KindSyncMapRange, KindChanOrder, KindSelectOrder:
		return true
	}
	return false
}

// Source is one nondeterminism origin, canonical per (kind, position).
type Source struct {
	Kind Kind
	Pos  token.Pos
	// Desc names the construct, e.g. `range over map "m"`.
	Desc string
	// Fn is the function the source occurs in.
	Fn *callgraph.Node
}

// Sink is one determinism-sensitive consumption point.
type Sink struct {
	Pos token.Pos
	// Desc names the sink, e.g. "json encoding" or "store to core.Metrics.Apps".
	Desc string
}

// Flow is one source-to-sink witness.
type Flow struct {
	Source *Source
	Sink   Sink
	// Path lists the call chain from the function containing the flow's
	// entry to the one containing the sink (single element when local).
	Path []string
}

// Spec configures the engine's sink tables and source filtering.
type Spec struct {
	// SinkCalls maps canonical function names (types.Func.FullName, e.g.
	// "(*encoding/json.Encoder).Encode") to a sink description. Tainted
	// arguments, or issuing the call inside an ordering context, flow.
	SinkCalls map[string]string
	// SinkFields maps struct type names ("pkgpath.Name") to a description;
	// stores into any field of such a struct are sinks.
	SinkFields map[string]string
	// Kinds restricts the source kinds considered; nil enables all.
	Kinds map[Kind]bool
	// Suppress, when set, drops sources at audited positions (//parm:det).
	Suppress func(token.Pos) bool
}

// enabled reports whether kind participates in this run.
func (s *Spec) enabled(k Kind) bool { return s.Kinds == nil || s.Kinds[k] }

// ParmSinks returns the repository's determinism-sink tables (DESIGN.md
// §7.4): the JSON encoders every result document leaves through, report
// tables, timeline records, and the Metrics structs themselves.
func ParmSinks() (calls, fields map[string]string) {
	calls = map[string]string{
		"encoding/json.Marshal":                "json encoding",
		"encoding/json.MarshalIndent":          "json encoding",
		"(*encoding/json.Encoder).Encode":      "json encoding",
		"(*parm/internal/report.Table).AddRow": "report table row",
		"(*parm/internal/obs.Timeline).Record": "timeline record",
	}
	fields = map[string]string{
		"parm/internal/core.Metrics":    "core.Metrics",
		"parm/internal/core.AppOutcome": "core.AppOutcome",
	}
	return calls, fields
}

// elem is one taint-set element: *Source, or param (incoming parameter
// taint, for summaries).
type elem interface{}

// param is the symbolic taint of parameter i (receiver first for methods).
type param int

// sset is a small taint set.
type sset map[elem]bool

func (s sset) add(e elem) (sset, bool) {
	if s[e] {
		return s, false
	}
	if s == nil {
		s = make(sset)
	}
	s[e] = true
	return s, true
}

// sinkRef is a sink reachable from inside a function, with the call chain
// from that function (inclusive) down to the sink.
type sinkRef struct {
	sink Sink
	path []string
}

// summary is one declared function's interprocedural behavior.
type summary struct {
	nparams int
	// results holds, per result position, the taint the result carries:
	// *Source elements are concrete nondeterminism, param elements mean
	// "whatever taint the i-th argument brings". Per-position tracking keeps
	// `ms, err := f(...)` from smearing an order-dependent error onto ms.
	results []sset
	// paramSinks lists, per parameter, the sinks a tainted argument reaches,
	// keyed by sink position.
	paramSinks []map[token.Pos]sinkRef
	// paramFields lists, per parameter, the field/global declaration
	// positions a tainted argument is stored into.
	paramFields []map[token.Pos]bool
	// allSinks lists every sink the function reaches at all, tainted or
	// not: a call to such a function from inside an ordering context
	// executes the sink once per iteration, which is itself a flow.
	allSinks map[token.Pos]sinkRef
}

func newSummary(nparams, nresults int) *summary {
	s := &summary{
		nparams:     nparams,
		results:     make([]sset, nresults),
		paramSinks:  make([]map[token.Pos]sinkRef, nparams),
		paramFields: make([]map[token.Pos]bool, nparams),
		allSinks:    make(map[token.Pos]sinkRef),
	}
	for i := range s.paramSinks {
		s.paramSinks[i] = make(map[token.Pos]sinkRef)
		s.paramFields[i] = make(map[token.Pos]bool)
	}
	return s
}

// engine is one whole-program run.
type engine struct {
	g    *callgraph.Graph
	spec *Spec

	units []*unit
	sums  map[*callgraph.Node]*summary
	// fieldT is field-based taint: declaration position of a struct field
	// or package-level variable -> sources stored into it anywhere.
	fieldT map[token.Pos]sset
	// sources canonicalizes Source values per (kind, pos) so the fixpoint
	// terminates.
	sources map[token.Pos]*Source
	flows   map[[2]token.Pos]*Flow
	changed bool
}

// Run executes the engine and returns the discovered flows sorted by
// (source position, sink position).
func Run(g *callgraph.Graph, spec Spec) []*Flow {
	e := &engine{
		g:       g,
		spec:    &spec,
		sums:    make(map[*callgraph.Node]*summary),
		fieldT:  make(map[token.Pos]sset),
		sources: make(map[token.Pos]*Source),
		flows:   make(map[[2]token.Pos]*Flow),
	}
	for _, n := range g.Nodes {
		if n.Fn != nil && n.Body() != nil {
			u := e.newUnit(n)
			e.units = append(e.units, u)
			e.sums[n] = newSummary(len(u.paramObjs), sigOf(n.Fn).Results().Len())
		}
	}
	// Interprocedural fixpoint: summaries, field taint, and flows only
	// grow, so iteration terminates; the cap is a defensive backstop.
	for iter := 0; iter < 64; iter++ {
		e.changed = false
		for _, u := range e.units {
			u.analyze()
		}
		if !e.changed {
			break
		}
	}
	out := make([]*Flow, 0, len(e.flows))
	for _, f := range e.flows {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Source.Pos != out[j].Source.Pos {
			return out[i].Source.Pos < out[j].Source.Pos
		}
		return out[i].Sink.Pos < out[j].Sink.Pos
	})
	return out
}

// sourceAt returns the canonical source at pos, or nil when the kind is
// disabled or the position carries an audited //parm:det.
func (e *engine) sourceAt(k Kind, pos token.Pos, desc string, fn *callgraph.Node) *Source {
	if !e.spec.enabled(k) {
		return nil
	}
	if e.spec.Suppress != nil && e.spec.Suppress(pos) {
		return nil
	}
	if s, ok := e.sources[pos]; ok {
		return s
	}
	s := &Source{Kind: k, Pos: pos, Desc: desc, Fn: fn}
	e.sources[pos] = s
	return s
}

// addFlow records one deduplicated source-to-sink witness. When several
// call chains reach the same pair, the lexicographically smallest path wins
// — a total order, so the reported chain is independent of the map
// iteration orders inside this engine.
func (e *engine) addFlow(src *Source, sink Sink, path []string) {
	if src == nil {
		return
	}
	key := [2]token.Pos{src.Pos, sink.Pos}
	if old, ok := e.flows[key]; ok {
		if !lessPath(path, old.Path) {
			return
		}
		old.Path = append([]string(nil), path...)
		e.changed = true
		return
	}
	e.flows[key] = &Flow{Source: src, Sink: sink, Path: append([]string(nil), path...)}
	e.changed = true
}

// lessPath orders call chains: shorter first, then lexicographic.
// Strictly decreasing replacement in addFlow terminates.
func lessPath(a, b []string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// funcDisplay shortens a canonical function name for diagnostics:
// "(*parm/internal/report.Table).AddRow" -> "(*report.Table).AddRow".
func funcDisplay(full string) string {
	trim := func(s string) string {
		if i := strings.LastIndex(s, "/"); i >= 0 {
			return s[i+1:]
		}
		return s
	}
	if strings.HasPrefix(full, "(") {
		if i := strings.Index(full, ")"); i > 0 {
			return "(" + trim(full[1:i]) + full[i:]
		}
	}
	return trim(full)
}

// PathString renders a flow's call chain for diagnostics.
func (f *Flow) PathString() string {
	parts := make([]string, len(f.Path))
	for i, p := range f.Path {
		parts[i] = funcDisplay(p)
	}
	return strings.Join(parts, " -> ")
}

// String renders a flow for debugging.
func (f *Flow) String() string {
	return fmt.Sprintf("%s -> %s via %s", f.Source.Desc, f.Sink.Desc, f.PathString())
}
