package poolgo_test

import (
	"testing"

	"parm/internal/analysis/analysistest"
	"parm/internal/analysis/poolgo"
)

func TestPoolgo(t *testing.T) {
	analysistest.Run(t, "testdata", poolgo.Analyzer)
}
