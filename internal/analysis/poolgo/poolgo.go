// Package poolgo enforces the concurrency discipline of the simulation
// packages: goroutine fan-out happens only inside the sanctioned bounded
// worker pools (chip's PSN pool, expr's experiment pool), never ad hoc.
//
// It reports two things:
//
//   - a `go` statement not annotated //parm:pool — unbounded spawning
//     bypasses the pool sizing (Config.PSNWorkers) and can reorder the
//     aggregation that keeps metrics bit-identical;
//   - a WaitGroup.Add call lexically inside a goroutine's function literal —
//     the classic race where Wait may return before Add runs; Add must
//     precede the `go` statement.
package poolgo

import (
	"go/ast"
	"go/types"

	"parm/internal/analysis"
)

// Analyzer flags bare go statements and misplaced WaitGroup.Add calls.
var Analyzer = &analysis.Analyzer{
	Name: "poolgo",
	Doc: "flags go statements outside sanctioned worker pools (//parm:pool) " +
		"and WaitGroup.Add calls inside the spawned goroutine",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !pass.Suppressed(f, gs.Pos(), "pool") {
				pass.Reportf(gs.Pos(), "bare go statement bypasses the bounded worker pools; "+
					"route the work through a pool or annotate the sanctioned pool //parm:pool")
			}
			// Whether sanctioned or not, Add inside the spawned body races.
			if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				checkAddInside(pass, lit)
			}
			return true
		})
	}
	return nil
}

// checkAddInside reports WaitGroup.Add calls within the goroutine body.
// Nested go statements are not descended into; the outer Inspect visits
// them as their own GoStmt.
func checkAddInside(pass *analysis.Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		if !isWaitGroup(pass, sel.X) {
			return true
		}
		pass.Reportf(call.Pos(), "WaitGroup.Add inside the spawned goroutine races with Wait; "+
			"call Add before the go statement")
		return true
	})
}

// isWaitGroup reports whether expr's type is sync.WaitGroup (or a pointer
// to it).
func isWaitGroup(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
