// Package fixture exercises the poolgo analyzer: goroutines outside
// sanctioned pools fire, as does WaitGroup.Add inside the spawned body.
package fixture

import "sync"

func work() {}

// bare spawns ad hoc: fires.
func bare() {
	go work() // want `bare go statement bypasses the bounded worker pools`
}

// boundedPool is the sanctioned shape: Add before spawn, directive on the
// go statement. No report.
func boundedPool(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		//parm:pool
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// addInsidePool is sanctioned but still races: Add fires.
func addInsidePool() {
	var wg sync.WaitGroup
	//parm:pool
	go func() {
		wg.Add(1) // want `WaitGroup.Add inside the spawned goroutine races with Wait`
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// addInsideBare fires twice: bare spawn and misplaced Add.
func addInsideBare() {
	wg := &sync.WaitGroup{}
	go func() { // want `bare go statement bypasses the bounded worker pools`
		wg.Add(1) // want `WaitGroup.Add inside the spawned goroutine races with Wait`
		defer wg.Done()
	}()
	wg.Wait()
}

// otherAdd is not a WaitGroup: no Add report (the spawn still fires).
type counter struct{}

func (counter) Add(int) {}

func otherAdd() {
	var c counter
	go func() { // want `bare go statement bypasses the bounded worker pools`
		c.Add(1)
	}()
}
