package core

import (
	"testing"

	"parm/internal/appmodel"
)

func TestExplainSelectionMatchesEngine(t *testing.T) {
	w := genWorkload(t, appmodel.WorkloadMixed, 1, 0.1, 31)
	app := w.Apps[0]

	eng, err := NewEngine(Config{}, MustCombo("PARM", "PANR"))
	if err != nil {
		t.Fatal(err)
	}
	steps := eng.ExplainSelection(app)
	chosen := ChosenStep(steps)
	if chosen == nil {
		t.Fatal("no combination selected on an empty chip")
	}

	// Running the engine must commit the same operating point.
	m, err := eng.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	o := m.Apps[0]
	if o.Vdd != chosen.Vdd || o.DoP != chosen.DoP {
		t.Errorf("engine chose (%.1f, %d), explanation said (%.1f, %d)",
			o.Vdd, o.DoP, chosen.Vdd, chosen.DoP)
	}
}

func TestExplainSelectionStructure(t *testing.T) {
	w := genWorkload(t, appmodel.WorkloadCompute, 1, 0.1, 32)
	steps, err := ExplainOnEmptyChip(Config{}, MustCombo("PARM", "XY"), w.Apps[0])
	if err != nil {
		t.Fatal(err)
	}
	// Full PARM search space: 5 voltages x 8 DoPs.
	if len(steps) != 40 {
		t.Fatalf("%d steps, want 40", len(steps))
	}
	chosenCount := 0
	for i, st := range steps {
		if st.Chosen {
			chosenCount++
			if !st.DeadlineOK || !st.PowerOK || !st.MappingOK {
				t.Errorf("step %d chosen without passing all gates: %+v", i, st)
			}
		}
		if st.Skipped && (st.DeadlineOK || st.MappingTried) {
			t.Errorf("step %d skipped but evaluated: %+v", i, st)
		}
		if st.WCET <= 0 {
			t.Errorf("step %d has no WCET", i)
		}
	}
	if chosenCount != 1 {
		t.Errorf("%d chosen steps, want exactly 1", chosenCount)
	}
	// Search order: voltages ascending, DoP descending within a voltage.
	for i := 1; i < len(steps); i++ {
		prev, cur := steps[i-1], steps[i]
		if cur.Vdd == prev.Vdd && cur.DoP >= prev.DoP {
			t.Fatalf("DoP not descending at step %d", i)
		}
		if cur.Vdd < prev.Vdd {
			t.Fatalf("Vdd not ascending at step %d", i)
		}
	}
}

func TestExplainHMSearchSpace(t *testing.T) {
	w := genWorkload(t, appmodel.WorkloadCompute, 1, 0.1, 33)
	steps, err := ExplainOnEmptyChip(Config{}, MustCombo("HM", "XY"), w.Apps[0])
	if err != nil {
		t.Fatal(err)
	}
	// HM: 5 voltages x the single fixed DoP.
	if len(steps) != 5 {
		t.Fatalf("%d steps, want 5", len(steps))
	}
	for _, st := range steps {
		if st.DoP != 16 {
			t.Errorf("HM explored DoP %d", st.DoP)
		}
	}
}

func TestChosenStepNil(t *testing.T) {
	if ChosenStep(nil) != nil {
		t.Error("nil steps produced a chosen step")
	}
	if ChosenStep([]SelectionStep{{Vdd: 0.4}}) != nil {
		t.Error("unchosen step returned")
	}
}

// The explanation is read-only: the chip must stay untouched.
func TestExplainSelectionReadOnly(t *testing.T) {
	w := genWorkload(t, appmodel.WorkloadMixed, 1, 0.1, 34)
	eng, err := NewEngine(Config{}, MustCombo("PARM", "PANR"))
	if err != nil {
		t.Fatal(err)
	}
	_ = eng.ExplainSelection(w.Apps[0])
	if len(eng.Chip().FreeDomains()) != eng.Chip().NumDomains() {
		t.Error("explanation occupied domains")
	}
	if eng.Chip().Budget.Used() != 0 {
		t.Error("explanation reserved power")
	}
}
