package core

import (
	"bytes"
	"strings"
	"testing"

	"parm/internal/appmodel"
	"parm/internal/obs"
)

// Telemetry must be strictly observational: a run with the full registry and
// timeline attached serializes byte-identically to one with both disabled.
func TestEngineRunsByteIdenticalWithTelemetry(t *testing.T) {
	run := func(enable bool) []byte {
		cfg := Config{}
		cfg.Chip.PSNWorkers = 1
		w := genWorkload(t, appmodel.WorkloadMixed, 6, 0.06, 14)
		eng, err := NewEngine(cfg, MustCombo("PARM", "PANR"))
		if err != nil {
			t.Fatal(err)
		}
		if enable {
			eng.EnableTelemetry(obs.NewRegistry())
			eng.AttachTimeline(obs.NewTimeline(1 << 12))
			eng.AttachDecisions(obs.NewDecisionLog(1 << 10))
		}
		m, err := eng.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	off, on := run(false), run(true)
	if !bytes.Equal(off, on) {
		t.Error("telemetry-enabled run diverged from the telemetry-off reference")
	}
}

// A telemetered run populates every layer's counters and the timeline.
func TestTelemetryCountersPopulated(t *testing.T) {
	r := obs.NewRegistry()
	tl := obs.NewTimeline(1 << 12)
	eng, err := NewEngine(Config{}, MustCombo("PARM", "PANR"))
	if err != nil {
		t.Fatal(err)
	}
	eng.EnableTelemetry(r)
	eng.AttachTimeline(tl)
	w := genWorkload(t, appmodel.WorkloadMixed, 6, 0.06, 14)
	m, err := eng.Run(w)
	if err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{
		"pdn/cache/hits", "pdn/cache/misses", "pdn/solve/phasor",
		"pdn/lti/factor_hits", "chip/psn/samples", "chip/psn/domain_solves",
		"chip/sensor/samples", "noc/memo/misses", "noc/windows",
		"noc/warmup_cycles", "noc/flits_delivered/PANR",
		"mapper/candidates", "mapper/mapped",
	} {
		if got := r.Counter(name).Value(); got == 0 {
			t.Errorf("counter %s = 0 after a full run", name)
		}
	}
	if got := r.Counter("mapper/mapped").Value(); int(got) != m.Completed+m.Unfinished {
		// Every completed or still-running app was mapped exactly once.
		t.Errorf("mapper/mapped = %d, want %d", got, m.Completed+m.Unfinished)
	}
	if int(r.Counter("engine/ves").Value()) != m.TotalVEs {
		t.Errorf("engine/ves = %d, want %d", r.Counter("engine/ves").Value(), m.TotalVEs)
	}
	if tl.Len() == 0 {
		t.Fatal("timeline recorded no events")
	}
	seen := map[string]bool{}
	for _, ev := range tl.Events() {
		seen[ev.Name] = true
		if ev.TS < 0 || ev.TS > m.TotalTime+1e-9 {
			t.Errorf("event %q timestamp %g outside simulated run [0, %g]", ev.Name, ev.TS, m.TotalTime)
		}
	}
	for _, name := range []string{"map", "unmap", "app", "sample"} {
		if !seen[name] {
			t.Errorf("timeline missing %q events", name)
		}
	}
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents"`) {
		t.Error("trace output missing traceEvents")
	}
}

// A full run populates the hierarchical spans with the engine's phase names,
// proper nesting under the window span, and a rollup; the registry surfaces
// the timeline's self-accounting and the liveness gauges.
func TestSpansAndProgressPopulated(t *testing.T) {
	r := obs.NewRegistry()
	tl := obs.NewTimeline(1 << 12)
	eng, err := NewEngine(Config{}, MustCombo("PARM", "PANR"))
	if err != nil {
		t.Fatal(err)
	}
	eng.EnableTelemetry(r)
	eng.AttachTimeline(tl)
	w := genWorkload(t, appmodel.WorkloadMixed, 6, 0.06, 14)
	m, err := eng.Run(w)
	if err != nil {
		t.Fatal(err)
	}

	spans := tl.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	byID := map[obs.SpanID]obs.Span{}
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	names := map[string]bool{}
	for _, sp := range spans {
		names[sp.Name] = true
		if sp.Open {
			t.Errorf("span %s (%d) still open after Run", sp.Name, sp.ID)
		}
		// Non-window spans nest under a window (unless the parent was
		// evicted from the ring, which a 4096-entry ring on this workload
		// never hits — assert it stays that way).
		if sp.Name != "window" && sp.Parent == 0 {
			t.Errorf("span %s (%d) has no parent", sp.Name, sp.ID)
		}
		if p, ok := byID[sp.Parent]; ok {
			if sp.Start < p.Start-1e-12 || sp.End > p.End+1e-12 {
				t.Errorf("span %s [%g,%g] outside parent %s [%g,%g]",
					sp.Name, sp.Start, sp.End, p.Name, p.Start, p.End)
			}
		}
	}
	for _, want := range []string{"window", "psn_sample", "domain_solve", "mapper_decide", "noc_measure", "noc_window"} {
		if !names[want] {
			t.Errorf("no %q spans recorded", want)
		}
	}

	stats := tl.SpanStats()
	if len(stats) < 5 {
		t.Errorf("span rollup has %d names, want at least 5", len(stats))
	}
	for _, st := range stats {
		if st.Count == 0 {
			t.Errorf("rollup %s has zero count", st.Name)
		}
	}

	// Liveness gauges track the event loop.
	if got := r.Counter("engine/events").Value(); got == 0 {
		t.Error("engine/events = 0 after a run")
	}
	// The gauge can run slightly past TotalTime: trailing sample events
	// process after the last app completes.
	if got := r.FloatGauge("engine/sim_time_s").Value(); got < m.TotalTime-1e-9 {
		t.Errorf("engine/sim_time_s = %g, want at least TotalTime %g", got, m.TotalTime)
	}

	// The snapshot carries the attached timeline self-accounting.
	snap := r.Snapshot()
	obsTree, ok := snap["obs"].(map[string]interface{})
	if !ok {
		t.Fatalf("snapshot missing obs subtree: %v", snap)
	}
	if _, ok := obsTree["timeline_dropped"]; !ok {
		t.Error("snapshot missing obs/timeline_dropped")
	}
	if _, ok := obsTree["span_dropped"]; !ok {
		t.Error("snapshot missing obs/span_dropped")
	}
	spansTree, ok := obsTree["spans"].(map[string]interface{})
	if !ok || len(spansTree) == 0 {
		t.Fatalf("snapshot obs/spans = %v, want per-name rollup", obsTree["spans"])
	}
	if _, ok := spansTree["window"].(map[string]interface{}); !ok {
		t.Errorf("obs/spans missing window rollup: %v", spansTree)
	}
}

// Decision provenance covers every mapper outcome with a consistent
// rejection breakdown.
func TestDecisionLogPopulated(t *testing.T) {
	dl := obs.NewDecisionLog(1 << 10)
	eng, err := NewEngine(Config{}, MustCombo("PARM", "PANR"))
	if err != nil {
		t.Fatal(err)
	}
	eng.AttachDecisions(dl)
	// A tight arrival gap forces contention so stalls/drops appear too.
	w := genWorkload(t, appmodel.WorkloadMixed, 8, 0.01, 11)
	m, err := eng.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	ds := dl.Decisions()
	if len(ds) == 0 {
		t.Fatal("no decisions recorded")
	}
	mapped := 0
	for _, d := range ds {
		switch d.Outcome {
		case "mapped":
			mapped++
			if d.Vdd <= 0 || d.DoP <= 0 || len(d.Domains) == 0 {
				t.Errorf("mapped decision missing operating point: %+v", d)
			}
		case "stalled", "dropped":
			if d.Vdd != 0 || d.DoP != 0 || d.Domains != nil {
				t.Errorf("%s decision carries an operating point: %+v", d.Outcome, d)
			}
		default:
			t.Errorf("unknown outcome %q", d.Outcome)
		}
		if d.Candidates == 0 {
			t.Errorf("decision with zero candidates scanned: %+v", d)
		}
		if d.Bench == "" {
			t.Errorf("decision missing bench name: %+v", d)
		}
		if d.WaitS < 0 {
			t.Errorf("negative queue wait: %+v", d)
		}
	}
	if want := m.Completed + m.Unfinished; mapped != want {
		t.Errorf("%d mapped decisions, want %d (completed+unfinished)", mapped, want)
	}
}

// CollectCacheStats attaches the measurement-cache counters and they appear
// in the JSON; without it the keys stay absent so default output is
// unchanged.
func TestCollectCacheStatsJSON(t *testing.T) {
	eng, err := NewEngine(Config{}, MustCombo("PARM", "PANR"))
	if err != nil {
		t.Fatal(err)
	}
	w := genWorkload(t, appmodel.WorkloadMixed, 4, 0.08, 15)
	m, err := eng.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	var without bytes.Buffer
	if err := m.WriteJSON(&without); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(without.String(), "pdn_cache") || strings.Contains(without.String(), "noc_memo") {
		t.Error("cache stats serialized without CollectCacheStats")
	}

	eng.CollectCacheStats(m)
	if m.PDNCache == nil || m.PDNCache.Hits+m.PDNCache.Misses == 0 {
		t.Fatalf("PDNCache = %+v, want populated", m.PDNCache)
	}
	if m.NoCMemo == nil || m.NoCMemo.Misses == 0 {
		t.Fatalf("NoCMemo = %+v, want at least one measured window", m.NoCMemo)
	}
	var with bytes.Buffer
	if err := m.WriteJSON(&with); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"pdn_cache"`, `"noc_memo"`, `"evicted"`, `"clears"`} {
		if !strings.Contains(with.String(), key) {
			t.Errorf("collected JSON missing %s", key)
		}
	}
}

// The CSV schema must not depend on whether any samples were recorded
// (downstream consumers parse the header once).
func TestTraceCSVSchemaStable(t *testing.T) {
	eng, err := NewEngine(Config{}, MustCombo("PARM", "PANR"))
	if err != nil {
		t.Fatal(err)
	}
	empty := eng.EnableTrace()
	var emptyCSV bytes.Buffer
	if err := empty.WriteCSV(&emptyCSV); err != nil {
		t.Fatal(err)
	}

	w := genWorkload(t, appmodel.WorkloadCompute, 1, 0.1, 2)
	if _, err := eng.Run(w); err != nil {
		t.Fatal(err)
	}
	if len(empty.Points) == 0 {
		t.Fatal("trace did not record")
	}
	var fullCSV bytes.Buffer
	if err := empty.WriteCSV(&fullCSV); err != nil {
		t.Fatal(err)
	}
	emptyHeader := strings.SplitN(emptyCSV.String(), "\n", 2)[0]
	fullHeader := strings.SplitN(fullCSV.String(), "\n", 2)[0]
	if emptyHeader != fullHeader {
		t.Errorf("empty-trace header %q != populated header %q", emptyHeader, fullHeader)
	}
	if !strings.Contains(emptyHeader, ",dom0") || !strings.Contains(emptyHeader, ",dom14") {
		t.Errorf("empty-trace header missing per-domain columns: %q", emptyHeader)
	}
}
