package core

import (
	"encoding/json"
	"io"
)

// metricsJSON is the machine-readable form of a run's metrics
// (cmd/parmsim -json).
type metricsJSON struct {
	Framework         string        `json:"framework"`
	Workload          string        `json:"workload"`
	TotalTimeS        float64       `json:"total_time_s"`
	PeakPSN           float64       `json:"peak_psn"`
	AvgPSN            float64       `json:"avg_psn"`
	Completed         int           `json:"completed"`
	Dropped           int           `json:"dropped"`
	Unfinished        int           `json:"unfinished"`
	TotalVEs          int           `json:"total_ves"`
	TotalEnergyJ      float64       `json:"total_energy_j"`
	MeanPacketLatency float64       `json:"mean_packet_latency_cycles"`
	// Explicit rollback totals (VERollback mode); omitted under VELegacy so
	// legacy output stays byte-identical.
	TotalRollbacks      int     `json:"total_rollbacks,omitempty"`
	TotalRollbackDelayS float64 `json:"total_rollback_delay_s,omitempty"`
	Apps                []outcomeJSON `json:"apps"`
	// Measurement-cache counters, present only when the run collected them
	// (Engine.CollectCacheStats) so default output stays unchanged.
	PDNCache *pdnCacheJSON `json:"pdn_cache,omitempty"`
	NoCMemo  *nocMemoJSON  `json:"noc_memo,omitempty"`
	// Packet-fault totals, present only under Config.NoCFaultInjection.
	NoCFaults *nocFaultsJSON `json:"noc_faults,omitempty"`
}

type nocFaultsJSON struct {
	Delivered     int `json:"delivered"`
	Dropped       int `json:"dropped"`
	Retransmitted int `json:"retransmitted"`
	Recovered     int `json:"recovered"`
	Lost          int `json:"lost"`
}

type pdnCacheJSON struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Clears  uint64 `json:"clears"`
	Evicted uint64 `json:"evicted"`
	Entries int    `json:"entries"`
}

type nocMemoJSON struct {
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
}

type outcomeJSON struct {
	ID          int     `json:"id"`
	Bench       string  `json:"bench"`
	State       string  `json:"state"`
	Vdd         float64 `json:"vdd"`
	DoP         int     `json:"dop"`
	WaitS       float64 `json:"wait_s"`
	TurnaroundS float64 `json:"turnaround_s"`
	VEs         int     `json:"ves"`
	EnergyJ     float64 `json:"energy_j"`
	DeadlineMet bool    `json:"deadline_met"`
	// Rollback-mode fields, omitted when zero (always zero under VELegacy).
	Rollbacks      int     `json:"rollbacks,omitempty"`
	Checkpoints    int     `json:"checkpoints,omitempty"`
	RollbackDelayS float64 `json:"rollback_delay_s,omitempty"`
}

// WriteJSON emits the metrics as indented JSON.
func (m *Metrics) WriteJSON(w io.Writer) error {
	doc := metricsJSON{
		Framework:         m.Framework,
		Workload:          m.Workload,
		TotalTimeS:        m.TotalTime,
		PeakPSN:           m.PeakPSN,
		AvgPSN:            m.AvgPSN,
		Completed:         m.Completed,
		Dropped:           m.Dropped,
		Unfinished:        m.Unfinished,
		TotalVEs:          m.TotalVEs,
		TotalEnergyJ:      m.TotalEnergyJ,
		MeanPacketLatency: m.MeanPacketLatency,

		TotalRollbacks:      m.TotalRollbacks,
		TotalRollbackDelayS: m.TotalRollbackDelayS,
	}
	if m.PDNCache != nil {
		doc.PDNCache = &pdnCacheJSON{
			Hits:    m.PDNCache.Hits,
			Misses:  m.PDNCache.Misses,
			Clears:  m.PDNCache.Clears,
			Evicted: m.PDNCache.Evicted,
			Entries: m.PDNCache.Entries,
		}
	}
	if m.NoCMemo != nil {
		doc.NoCMemo = &nocMemoJSON{Hits: m.NoCMemo.Hits, Misses: m.NoCMemo.Misses}
	}
	if m.NoCFaults != nil {
		doc.NoCFaults = &nocFaultsJSON{
			Delivered:     m.NoCFaults.Delivered,
			Dropped:       m.NoCFaults.Dropped,
			Retransmitted: m.NoCFaults.Retransmitted,
			Recovered:     m.NoCFaults.Recovered,
			Lost:          m.NoCFaults.Lost,
		}
	}
	for _, o := range m.Apps {
		oj := outcomeJSON{
			ID:          o.App.ID,
			Bench:       o.App.Bench.Name,
			State:       o.State.String(),
			Vdd:         float64(o.Vdd),
			DoP:         o.DoP,
			WaitS:       o.WaitTime,
			VEs:         o.VEs,
			EnergyJ:     o.EnergyJ,
			DeadlineMet: o.DeadlineMet,

			Rollbacks:      o.Rollbacks,
			Checkpoints:    o.Checkpoints,
			RollbackDelayS: o.RollbackDelayS,
		}
		if o.State == StateCompleted {
			oj.TurnaroundS = o.CompletedAt - o.App.Arrival
		}
		doc.Apps = append(doc.Apps, oj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
