package core

import (
	"fmt"

	"parm/internal/obs"
)

// telemetry is the engine's pre-registered metric set. It lives by value in
// the Engine so an untelemetered run carries nil metric pointers whose
// updates are no-ops — the event loop needs no enabled/disabled branches.
// Registration happens once in EnableTelemetry; the event-loop updates are
// single atomic operations on these pointers.
type telemetry struct {
	// Algorithm 1 / scheduler (internal/mapping + internal/sched view).
	candidates  *obs.Counter   // mapper/candidates: (Vdd, DoP) points scanned
	mapped      *obs.Counter   // mapper/mapped
	dropped     *obs.Counter   // mapper/dropped
	stalls      *obs.Counter   // mapper/stalls: full scans that ended in a stall
	rejDeadline *obs.Counter   // mapper/reject/deadline: WCET >= time remaining
	rejBudget   *obs.Counter   // mapper/reject/budget: dark-silicon power check
	rejRegion   *obs.Counter   // mapper/reject/region: mapping heuristic found no region
	queueDepth  *obs.Gauge     // mapper/queue_depth
	waitS       *obs.Histogram // mapper/wait_s: queue time at mapping, seconds

	// NoC measurement path (engine-side).
	nocHits     *obs.Counter // noc/memo/hits
	nocMisses   *obs.Counter // noc/memo/misses
	nocWindows  *obs.Counter // noc/windows: measurements actually produced
	nocAnalytic *obs.Counter // noc/analytic_windows: windows answered by the closed form
	nocFallback *obs.Counter // noc/analytic_fallbacks: saturated windows sent back to cycle sim
	warmupCyc   *obs.Counter // noc/warmup_cycles
	measuredCyc *obs.Counter // noc/measured_cycles
	flitsInj    *obs.Counter // noc/flits_injected/<scheme>
	flitsDel    *obs.Counter // noc/flits_delivered/<scheme>

	// Event-loop progress, the /healthz liveness signal: events counts loop
	// iterations and simTime carries the engine clock, so a frozen simTime
	// across scrapes distinguishes a stalled run from a slow one.
	events  *obs.Counter    // engine/events
	simTime *obs.FloatGauge // engine/sim_time_s

	// PSN / voltage-emergency accounting.
	ves           *obs.Counter   // engine/ves: VE rollbacks charged
	rollbacks     *obs.Counter   // engine/rollbacks: explicit executor rollbacks (VERollback)
	sensorSamples *obs.Counter   // chip/sensor/samples: per-tile sensor records
	domainVEs     []*obs.Counter // chip/domain/NN/ves: samples with the domain over threshold

	// NoC fault injection (NoCFaultInjection runs only).
	nocDropped   *obs.Counter // noc/faults/dropped
	nocRecovered *obs.Counter // noc/faults/recovered
}

// init registers every engine metric in r. scheme names the routing
// algorithm (per-scheme flit totals); numDomains sizes the per-domain VE
// counter set.
func (t *telemetry) init(r *obs.Registry, scheme string, numDomains int) {
	t.candidates = r.Counter("mapper/candidates")
	t.mapped = r.Counter("mapper/mapped")
	t.dropped = r.Counter("mapper/dropped")
	t.stalls = r.Counter("mapper/stalls")
	t.rejDeadline = r.Counter("mapper/reject/deadline")
	t.rejBudget = r.Counter("mapper/reject/budget")
	t.rejRegion = r.Counter("mapper/reject/region")
	t.queueDepth = r.Gauge("mapper/queue_depth")
	t.waitS = r.Histogram("mapper/wait_s", []float64{0.01, 0.05, 0.1, 0.5, 1, 5})

	t.nocHits = r.Counter("noc/memo/hits")
	t.nocMisses = r.Counter("noc/memo/misses")
	t.nocWindows = r.Counter("noc/windows")
	t.nocAnalytic = r.Counter("noc/analytic_windows")
	t.nocFallback = r.Counter("noc/analytic_fallbacks")
	t.warmupCyc = r.Counter("noc/warmup_cycles")
	t.measuredCyc = r.Counter("noc/measured_cycles")
	t.flitsInj = r.Counter("noc/flits_injected/" + scheme)
	t.flitsDel = r.Counter("noc/flits_delivered/" + scheme)

	t.events = r.Counter("engine/events")
	t.simTime = r.FloatGauge("engine/sim_time_s")
	t.ves = r.Counter("engine/ves")
	t.rollbacks = r.Counter("engine/rollbacks")
	t.sensorSamples = r.Counter("chip/sensor/samples")
	t.nocDropped = r.Counter("noc/faults/dropped")
	t.nocRecovered = r.Counter("noc/faults/recovered")
	t.domainVEs = make([]*obs.Counter, numDomains)
	for d := range t.domainVEs {
		t.domainVEs[d] = r.Counter(fmt.Sprintf("chip/domain/%02d/ves", d))
	}
}

// domainVE returns the VE counter of domain d (nil when telemetry is off).
func (t *telemetry) domainVE(d int) *obs.Counter {
	if d < len(t.domainVEs) {
		return t.domainVEs[d]
	}
	return nil
}

// EnableTelemetry registers the engine's metrics in r and instruments the
// chip and pdn layers beneath it. Call it once, after NewEngine and before
// Run; a nil registry is a no-op. Telemetry is strictly observational: a
// run's Metrics, trace, and outcomes are byte-identical with it on or off.
func (e *Engine) EnableTelemetry(r *obs.Registry) {
	if r == nil {
		return
	}
	e.reg = r
	e.tel.init(r, e.fw.Routing.Name(), e.chip.NumDomains())
	e.chip.Instrument(r)
	e.linkObs()
}

// AttachTimeline directs the engine's event timeline (map/unmap/app-span/
// drop/sample/VE events) into tl. Every timestamp is simulated time from
// the engine clock, never wall clock, so timelines replay deterministically.
// A nil timeline (the default) records nothing.
func (e *Engine) AttachTimeline(tl *obs.Timeline) {
	e.timeline = tl
	e.linkObs()
}

// AttachDecisions directs the mapper's Algorithm 1 decision provenance into
// dl: one record per scheduling attempt with the candidate count, the
// rejection breakdown, and the chosen operating point. A nil log (the
// default) records nothing.
func (e *Engine) AttachDecisions(dl *obs.DecisionLog) {
	e.decisions = dl
}

// linkObs attaches the timeline's self-accounting — event and span drop
// counts plus the per-name span rollup — to the registry as snapshot-time
// collectors, once both sides are present. The collectors only read, so the
// observational contract holds.
func (e *Engine) linkObs() {
	if e.reg == nil || e.timeline == nil {
		return
	}
	tl := e.timeline
	e.reg.Attach("obs/timeline_dropped", func() interface{} { return tl.Dropped() })
	e.reg.Attach("obs/span_dropped", func() interface{} { return tl.SpanDropped() })
	e.reg.Attach("obs/spans", func() interface{} {
		stats := tl.SpanStats()
		m := make(map[string]interface{}, len(stats))
		for _, st := range stats {
			m[st.Name] = map[string]interface{}{
				"count": st.Count, "total_s": st.TotalS, "max_s": st.MaxS,
			}
		}
		return m
	})
}
