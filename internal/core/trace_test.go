package core

import (
	"strings"
	"testing"

	"parm/internal/appmodel"
)

func TestTraceRecording(t *testing.T) {
	w := genWorkload(t, appmodel.WorkloadMixed, 3, 0.08, 21)
	eng, err := NewEngine(Config{}, MustCombo("PARM", "PANR"))
	if err != nil {
		t.Fatal(err)
	}
	tr := eng.EnableTrace()
	m, err := eng.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Points) == 0 {
		t.Fatal("trace recorded nothing")
	}
	prev := -1.0
	for i, p := range tr.Points {
		if p.T < prev {
			t.Fatalf("point %d goes back in time", i)
		}
		prev = p.T
		if len(p.DomainPeak) != eng.Chip().NumDomains() {
			t.Fatalf("point %d has %d domain peaks", i, len(p.DomainPeak))
		}
		if p.ChipPeak < 0 || p.BudgetUsed < 0 {
			t.Fatalf("point %d has negative fields", i)
		}
	}
	// The trace maximum agrees with the run's peak PSN metric.
	if tr.MaxPeak() != m.PeakPSN {
		t.Errorf("trace max %g != metrics peak %g", tr.MaxPeak(), m.PeakPSN)
	}
}

func TestTraceCSV(t *testing.T) {
	w := genWorkload(t, appmodel.WorkloadCompute, 2, 0.05, 22)
	eng, err := NewEngine(Config{}, MustCombo("PARM", "XY"))
	if err != nil {
		t.Fatal(err)
	}
	tr := eng.EnableTrace()
	if _, err := eng.Run(w); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tr.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != len(tr.Points)+1 {
		t.Fatalf("%d CSV lines for %d points", len(lines), len(tr.Points))
	}
	if !strings.HasPrefix(lines[0], "t_s,chipPeak,activeAvg,running,queued,budgetW,dom0") {
		t.Errorf("header = %q", lines[0])
	}
	wantCols := strings.Count(lines[0], ",") + 1
	for i, l := range lines[1:] {
		if strings.Count(l, ",")+1 != wantCols {
			t.Fatalf("row %d has wrong arity: %q", i, l)
		}
	}
	// Empty trace still writes a header.
	var empty Trace
	var eb strings.Builder
	if err := empty.WriteCSV(&eb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(eb.String(), "t_s,") {
		t.Error("empty trace missing header")
	}
}

func TestMetricsJSON(t *testing.T) {
	w := genWorkload(t, appmodel.WorkloadMixed, 2, 0.1, 23)
	m := runOne(t, Config{}, MustCombo("PARM", "PANR"), w)
	var b strings.Builder
	if err := m.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`"framework": "PARM+PANR"`,
		`"workload": "mixed"`,
		`"total_energy_j"`,
		`"apps"`,
		`"deadline_met"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %s:\n%s", want, out)
		}
	}
}

func TestEnergyAccounting(t *testing.T) {
	w := genWorkload(t, appmodel.WorkloadCompute, 2, 0.1, 24)
	m := runOne(t, Config{}, MustCombo("PARM", "XY"), w)
	sum := 0.0
	for _, o := range m.Apps {
		if o.State == StateCompleted {
			if o.EnergyJ <= 0 {
				t.Errorf("%s completed with no energy", o.App)
			}
			// Energy is bounded by power budget times residence time.
			if o.EnergyJ > 65*(o.CompletedAt-o.MappedAt)+1e-9 {
				t.Errorf("%s energy %g exceeds budget bound", o.App, o.EnergyJ)
			}
			sum += o.EnergyJ
		}
	}
	if m.TotalEnergyJ != sum {
		t.Errorf("total energy %g != per-app sum %g", m.TotalEnergyJ, sum)
	}
}

// PARM's low-Vdd preference saves energy relative to the greedy
// highest-Vdd-first ablation.
func TestLowVddFirstSavesEnergy(t *testing.T) {
	run := func(highFirst bool) *Metrics {
		fw := MustCombo("PARM", "XY")
		fw.HighVddFirst = highFirst
		w := genWorkload(t, appmodel.WorkloadCompute, 4, 0.1, 25)
		return runOne(t, Config{SoftDeadlines: true}, fw, w)
	}
	low, high := run(false), run(true)
	if low.Completed != 4 || high.Completed != 4 {
		t.Fatalf("incomplete runs: %d, %d", low.Completed, high.Completed)
	}
	if low.TotalEnergyJ >= high.TotalEnergyJ {
		t.Errorf("low-Vdd-first energy %g not below high-Vdd-first %g",
			low.TotalEnergyJ, high.TotalEnergyJ)
	}
}
