// Package core implements the PARM runtime resource-management framework
// (paper §4): the Vdd and DoP selection of Algorithm 1, the service queue
// with FCFS admission, drop-on-stagnation semantics, dark-silicon power
// budgeting, and the event-driven simulation engine that executes workload
// sequences on the modeled CMP while sampling PSN and charging voltage-
// emergency rollbacks.
package core

import (
	"fmt"

	"parm/internal/mapping"
	"parm/internal/noc"
	"parm/internal/power"
)

// Framework is one evaluated combination of mapping scheme, voltage/DoP
// policy, and NoC routing (paper §5.2 evaluates six: {HM, PARM} x {XY,
// ICON, PANR}).
type Framework struct {
	// Name labels the combination in reports, e.g. "PARM+PANR".
	Name string
	// Mapper selects task placement.
	Mapper mapping.Mapper
	// Routing selects the NoC routing scheme.
	Routing noc.Algorithm
	// AdaptiveVddDoP enables Algorithm 1's joint (Vdd, DoP) search. When
	// false the framework uses FixedDoP and FixedVdd — the policy of the HM
	// baseline, which adapts neither voltage nor parallelism (ref [21] and
	// §5.2: HM's "increased power consumption (due to high Vdd)").
	AdaptiveVddDoP bool
	// FixedDoP is the DoP used when AdaptiveVddDoP is false.
	FixedDoP int
	// FixedVdd is the supply voltage used when AdaptiveVddDoP is false.
	// Zero selects the node's nominal voltage.
	FixedVdd power.Volts
	// HighVddFirst reverses Algorithm 1's voltage search order — the
	// ablation that shows why lowest-Vdd-first matters for PSN and power
	// (DESIGN.md §5).
	HighVddFirst bool
}

// Combo builds the framework combining the given mapper policy and routing
// scheme, named like the paper ("HM+XY"). mapperName must be "PARM" or
// "HM"; routingName one of "XY", "ICON", "PANR", "WestFirst".
func Combo(mapperName, routingName string) (Framework, error) {
	alg, ok := noc.AlgorithmByName(routingName)
	if !ok {
		return Framework{}, fmt.Errorf("core: unknown routing %q", routingName)
	}
	switch mapperName {
	case "PARM":
		return Framework{
			Name:           "PARM+" + routingName,
			Mapper:         mapping.PARM{},
			Routing:        alg,
			AdaptiveVddDoP: true,
		}, nil
	case "HM":
		// HM scales voltage to meet deadlines (like any runtime manager)
		// but adapts neither DoP nor placement to PSN; under load its
		// deadline pressure drives Vdd — and hence power and noise — up
		// (§5.2: "increased power consumption (due to high Vdd)").
		return Framework{
			Name:     "HM+" + routingName,
			Mapper:   mapping.HM{},
			Routing:  alg,
			FixedDoP: 16,
		}, nil
	default:
		return Framework{}, fmt.Errorf("core: unknown mapper %q", mapperName)
	}
}

// MustCombo is Combo for statically known names; it panics on error.
func MustCombo(mapperName, routingName string) Framework {
	f, err := Combo(mapperName, routingName)
	if err != nil {
		panic(err)
	}
	return f
}

// EvaluationFrameworks returns the six combinations of §5.2 in the paper's
// order: HM+XY, HM+ICON, HM+PANR, PARM+XY, PARM+ICON, PARM+PANR.
func EvaluationFrameworks() []Framework {
	return []Framework{
		MustCombo("HM", "XY"),
		MustCombo("HM", "ICON"),
		MustCombo("HM", "PANR"),
		MustCombo("PARM", "XY"),
		MustCombo("PARM", "ICON"),
		MustCombo("PARM", "PANR"),
	}
}
