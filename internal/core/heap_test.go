package core

import (
	"math/rand"
	"sort"
	"testing"
)

// The typed event heap must drain in (time, seq) order — the property the
// container/heap implementation it replaced guaranteed.
func TestEventHeapDrainsInOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h eventHeap
	const n = 500
	events := make([]event, n)
	for i := range events {
		// Coarse times force plenty of ties so the seq tie-break is exercised.
		events[i] = event{t: float64(rng.Intn(20)), kind: i % 3, app: i, seq: i}
	}
	for _, ev := range rng.Perm(n) {
		h.push(events[ev])
	}

	want := make([]event, n)
	copy(want, events)
	sort.Slice(want, func(i, j int) bool {
		if want[i].t != want[j].t {
			return want[i].t < want[j].t
		}
		return want[i].seq < want[j].seq
	})

	for i := 0; i < n; i++ {
		got := h.pop()
		if got != want[i] {
			t.Fatalf("pop %d = %+v, want %+v", i, got, want[i])
		}
	}
	if h.Len() != 0 {
		t.Fatalf("heap not empty after draining: %d left", h.Len())
	}
}

func TestEventHeapSingleElement(t *testing.T) {
	var h eventHeap
	ev := event{t: 1.5, kind: 2, app: 3, seq: 4}
	h.push(ev)
	if got := h.pop(); got != ev {
		t.Fatalf("pop = %+v, want %+v", got, ev)
	}
}
