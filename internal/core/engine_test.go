package core

import (
	"bytes"
	"math"
	"testing"

	"parm/internal/appmodel"
	"parm/internal/obs"
	"parm/internal/pdn"
	"parm/internal/power"
)

func node7() power.NodeParams { return power.MustParams(power.Node7) }

func genWorkload(t *testing.T, kind appmodel.WorkloadKind, n int, gap float64, seed int64) *appmodel.Workload {
	t.Helper()
	w, err := appmodel.Generate(appmodel.WorkloadConfig{
		Kind: kind, NumApps: n, ArrivalGap: gap, Node: node7(), Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func runOne(t *testing.T, cfg Config, fw Framework, w *appmodel.Workload) *Metrics {
	t.Helper()
	eng, err := NewEngine(cfg, fw)
	if err != nil {
		t.Fatal(err)
	}
	m, err := eng.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestComboValidation(t *testing.T) {
	fw, err := Combo("PARM", "PANR")
	if err != nil || fw.Name != "PARM+PANR" || !fw.AdaptiveVddDoP {
		t.Errorf("Combo(PARM,PANR) = %+v, %v", fw, err)
	}
	fw, err = Combo("HM", "XY")
	if err != nil || fw.Name != "HM+XY" || fw.AdaptiveVddDoP || fw.FixedDoP != 16 {
		t.Errorf("Combo(HM,XY) = %+v, %v", fw, err)
	}
	if _, err := Combo("BOGUS", "XY"); err == nil {
		t.Error("unknown mapper accepted")
	}
	if _, err := Combo("PARM", "BOGUS"); err == nil {
		t.Error("unknown routing accepted")
	}
}

func TestEvaluationFrameworks(t *testing.T) {
	fws := EvaluationFrameworks()
	want := []string{"HM+XY", "HM+ICON", "HM+PANR", "PARM+XY", "PARM+ICON", "PARM+PANR"}
	if len(fws) != len(want) {
		t.Fatalf("%d frameworks", len(fws))
	}
	for i, fw := range fws {
		if fw.Name != want[i] {
			t.Errorf("framework %d = %s, want %s", i, fw.Name, want[i])
		}
	}
}

func TestEngineRejectsBadInput(t *testing.T) {
	eng, err := NewEngine(Config{}, MustCombo("PARM", "XY"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(nil); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := eng.Run(&appmodel.Workload{}); err == nil {
		t.Error("empty workload accepted")
	}
	w := genWorkload(t, appmodel.WorkloadMixed, 2, 0.1, 1)
	w.Apps[1].ID = w.Apps[0].ID
	eng2, _ := NewEngine(Config{}, MustCombo("PARM", "XY"))
	if _, err := eng2.Run(w); err == nil {
		t.Error("duplicate app IDs accepted")
	}
	if _, err := NewEngine(Config{}, Framework{Name: "broken"}); err == nil {
		t.Error("framework without mapper accepted")
	}
}

func TestSingleAppCompletes(t *testing.T) {
	w := genWorkload(t, appmodel.WorkloadCompute, 1, 0.1, 2)
	m := runOne(t, Config{}, MustCombo("PARM", "PANR"), w)
	if m.Completed != 1 || m.Dropped != 0 {
		t.Fatalf("completed=%d dropped=%d", m.Completed, m.Dropped)
	}
	o := m.Apps[0]
	if o.State != StateCompleted {
		t.Fatalf("state = %v", o.State)
	}
	if o.Vdd < 0.4 || o.Vdd > 0.8 {
		t.Errorf("Vdd = %g outside platform range", o.Vdd)
	}
	if o.DoP%4 != 0 || o.DoP < 4 || o.DoP > 32 {
		t.Errorf("DoP = %d not a platform value", o.DoP)
	}
	if o.CompletedAt <= o.MappedAt {
		t.Error("completion not after mapping")
	}
	if m.TotalTime != o.CompletedAt {
		t.Errorf("TotalTime %g != completion %g", m.TotalTime, o.CompletedAt)
	}
	if m.PeakPSN <= 0 || m.AvgPSN <= 0 {
		t.Error("no PSN recorded")
	}
	if m.Samples == 0 {
		t.Error("no PSN samples taken")
	}
}

// On an empty chip, PARM picks the lowest Vdd with the highest feasible DoP
// (Algorithm 1's search order).
func TestPARMPrefersLowVddHighDoP(t *testing.T) {
	w := genWorkload(t, appmodel.WorkloadCompute, 1, 0.1, 2)
	m := runOne(t, Config{}, MustCombo("PARM", "XY"), w)
	o := m.Apps[0]
	p := node7()
	// Verify no lower Vdd would meet the deadline at any DoP >= chosen.
	for _, v := range p.VddLevels(0.1) {
		if v >= o.Vdd {
			break
		}
		if o.App.Bench.WCETEstimate(p, v, 32) < o.App.RelDeadline {
			t.Errorf("lower Vdd %.1f was feasible at DoP 32 but %.1f chosen", v, o.Vdd)
		}
	}
	if o.DoP != 32 {
		// 32 must have been infeasible at the chosen Vdd for this to be OK.
		if o.App.Bench.WCETEstimate(p, o.Vdd, 32) < o.App.RelDeadline {
			t.Errorf("DoP 32 feasible at %.1fV but %d chosen", o.Vdd, o.DoP)
		}
	}
}

// HM never adapts DoP.
func TestHMFixedDoP(t *testing.T) {
	w := genWorkload(t, appmodel.WorkloadMixed, 6, 0.15, 3)
	m := runOne(t, Config{SoftDeadlines: true}, MustCombo("HM", "XY"), w)
	for _, o := range m.Apps {
		if o.State == StateCompleted && o.DoP != 16 {
			t.Errorf("%s ran at DoP %d under HM", o.App, o.DoP)
		}
	}
}

// The chip and budget are fully restored once everything finishes.
func TestResourcesRestoredAfterRun(t *testing.T) {
	w := genWorkload(t, appmodel.WorkloadMixed, 5, 0.08, 4)
	eng, err := NewEngine(Config{SoftDeadlines: true}, MustCombo("PARM", "PANR"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(w); err != nil {
		t.Fatal(err)
	}
	c := eng.Chip()
	if used := c.Budget.Used(); math.Abs(float64(used)) > 1e-9 {
		t.Errorf("budget still holds %g W", used)
	}
	if free := len(c.FreeDomains()); free != c.NumDomains() {
		t.Errorf("%d domains still occupied", c.NumDomains()-free)
	}
}

// Deterministic: identical runs give identical metrics.
func TestEngineDeterministic(t *testing.T) {
	run := func() *Metrics {
		w := genWorkload(t, appmodel.WorkloadComm, 6, 0.06, 5)
		return runOne(t, Config{}, MustCombo("PARM", "PANR"), w)
	}
	m1, m2 := run(), run()
	if m1.TotalTime != m2.TotalTime || m1.PeakPSN != m2.PeakPSN ||
		m1.Completed != m2.Completed || m1.TotalVEs != m2.TotalVEs {
		t.Errorf("runs differ: %+v vs %+v", m1, m2)
	}
	for i := range m1.Apps {
		a, b := m1.Apps[i], m2.Apps[i]
		if a.Vdd != b.Vdd || a.DoP != b.DoP || a.CompletedAt != b.CompletedAt {
			t.Errorf("app %d differs", i)
		}
	}
}

// Byte-identical determinism: the fully serialized metrics of repeated
// identical runs must match byte for byte, including across PSN worker
// counts — the contract the sorted-iteration discipline (and the detrange
// and poolgo analyzers that enforce it) protects. Stricter than
// TestEngineDeterministic: every field of every outcome is covered.
// Exercised per solver mode: the exact paths (expm, phasor) must be just as
// reproducible as the RK4 reference, and auto must coincide with phasor.
func TestEngineRunsByteIdentical(t *testing.T) {
	run := func(workers int, mode pdn.Mode) []byte {
		cfg := Config{}
		cfg.Chip.PSNWorkers = workers
		cfg.Chip.PSNMode = mode
		w := genWorkload(t, appmodel.WorkloadMixed, 6, 0.06, 14)
		m := runOne(t, cfg, MustCombo("PARM", "PANR"), w)
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	var autoBase []byte
	for _, mode := range []pdn.Mode{pdn.ModeAuto, pdn.ModeRK4, pdn.ModeExpm, pdn.ModePhasor} {
		t.Run(mode.String(), func(t *testing.T) {
			base := run(1, mode)
			if len(base) == 0 {
				t.Fatal("empty metrics JSON")
			}
			if rerun := run(1, mode); !bytes.Equal(rerun, base) {
				t.Error("two serial runs diverged")
			}
			if parallel := run(4, mode); !bytes.Equal(parallel, base) {
				t.Error("4-worker run diverged from the serial reference")
			}
			switch mode {
			case pdn.ModeAuto:
				autoBase = base
			case pdn.ModePhasor:
				if !bytes.Equal(base, autoBase) {
					t.Error("phasor run diverged from the auto default")
				}
			}
		})
	}
}

// An unmeetable deadline drops the app rather than wedging the queue.
func TestImpossibleDeadlineDropped(t *testing.T) {
	w := genWorkload(t, appmodel.WorkloadCompute, 2, 0.05, 6)
	w.Apps[0].RelDeadline = 1e-6 // one microsecond: impossible
	m := runOne(t, Config{}, MustCombo("PARM", "XY"), w)
	if m.Apps[0].State != StateDropped {
		t.Errorf("impossible app state = %v", m.Apps[0].State)
	}
	if m.Apps[1].State != StateCompleted {
		t.Errorf("follow-up app state = %v; queue wedged?", m.Apps[1].State)
	}
}

// Soft deadlines never drop.
func TestSoftDeadlinesNeverDrop(t *testing.T) {
	w := genWorkload(t, appmodel.WorkloadCompute, 10, 0.03, 7)
	m := runOne(t, Config{SoftDeadlines: true}, MustCombo("HM", "XY"), w)
	if m.Dropped != 0 {
		t.Errorf("%d apps dropped under soft deadlines", m.Dropped)
	}
	if m.Completed != 10 {
		t.Errorf("only %d/10 completed", m.Completed)
	}
}

// Oversubscription causes drops with hard deadlines, and a slower arrival
// rate completes at least as many apps (the Fig. 8 relationship).
func TestOversubscriptionDropsMonotone(t *testing.T) {
	done := map[float64]int{}
	for _, gap := range []float64{0.2, 0.05} {
		w := genWorkload(t, appmodel.WorkloadComm, 12, gap, 8)
		m := runOne(t, Config{}, MustCombo("HM", "XY"), w)
		done[gap] = m.Completed
		if m.Completed+m.Dropped+m.Unfinished != 12 {
			t.Errorf("gap %g: outcomes do not sum: %+v", gap, m)
		}
	}
	if done[0.2] < done[0.05] {
		t.Errorf("slower arrivals completed fewer apps: %v", done)
	}
	if done[0.05] == 12 {
		t.Error("no oversubscription pressure on HM at 0.05s gap")
	}
}

// PARM completes at least as many applications as HM under pressure — the
// headline claim of Fig. 8.
func TestPARMBeatsHMUnderPressure(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	// A Fig. 8 operating point: 20 communication-intensive apps at 0.1 s.
	w1 := genWorkload(t, appmodel.WorkloadComm, 20, 0.1, 42)
	hm := runOne(t, Config{}, MustCombo("HM", "XY"), w1)
	w2 := genWorkload(t, appmodel.WorkloadComm, 20, 0.1, 42)
	parm := runOne(t, Config{}, MustCombo("PARM", "PANR"), w2)
	if parm.Completed <= hm.Completed {
		t.Errorf("PARM completed %d, HM %d; Fig 8 shape broken", parm.Completed, hm.Completed)
	}
}

// PARM's peak PSN stays below HM's — the headline claim of Fig. 7.
func TestPARMLowerPSNThanHM(t *testing.T) {
	w1 := genWorkload(t, appmodel.WorkloadCompute, 8, 0.08, 10)
	hm := runOne(t, Config{SoftDeadlines: true}, MustCombo("HM", "XY"), w1)
	w2 := genWorkload(t, appmodel.WorkloadCompute, 8, 0.08, 10)
	parm := runOne(t, Config{SoftDeadlines: true}, MustCombo("PARM", "PANR"), w2)
	if parm.PeakPSN >= hm.PeakPSN {
		t.Errorf("PARM peak %g not below HM %g", parm.PeakPSN, hm.PeakPSN)
	}
	if parm.AvgPSN >= hm.AvgPSN {
		t.Errorf("PARM avg %g not below HM %g", parm.AvgPSN, hm.AvgPSN)
	}
	if parm.TotalVEs > hm.TotalVEs {
		t.Errorf("PARM VEs %d above HM %d", parm.TotalVEs, hm.TotalVEs)
	}
}

// FCFS: applications are mapped in arrival order.
func TestFCFSMappingOrder(t *testing.T) {
	w := genWorkload(t, appmodel.WorkloadMixed, 8, 0.04, 11)
	m := runOne(t, Config{SoftDeadlines: true}, MustCombo("PARM", "XY"), w)
	prev := -1.0
	for _, o := range m.Apps {
		if o.State != StateCompleted {
			continue
		}
		if o.MappedAt < prev-1e-12 {
			t.Errorf("%s mapped at %g before its predecessor at %g", o.App, o.MappedAt, prev)
		}
		prev = o.MappedAt
	}
}

// Voltage emergencies charge rollback penalties: an HM run at high load has
// VEs, and apps with VEs take longer than their VE-free makespan.
func TestVEPenaltiesCharged(t *testing.T) {
	w := genWorkload(t, appmodel.WorkloadCompute, 6, 0.04, 12)
	m := runOne(t, Config{SoftDeadlines: true}, MustCombo("HM", "XY"), w)
	if m.TotalVEs == 0 {
		t.Skip("no VEs at this seed; penalty path not exercised")
	}
	sum := 0
	for _, o := range m.Apps {
		sum += o.VEs
	}
	if sum != m.TotalVEs {
		t.Errorf("per-app VEs %d != total %d", sum, m.TotalVEs)
	}
}

func TestMetricsAggregation(t *testing.T) {
	w := genWorkload(t, appmodel.WorkloadMixed, 6, 0.1, 13)
	m := runOne(t, Config{}, MustCombo("PARM", "PANR"), w)
	if len(m.Apps) != 6 {
		t.Fatalf("%d outcomes", len(m.Apps))
	}
	if m.Completed+m.Dropped+m.Unfinished != 6 {
		t.Error("outcome counts do not sum")
	}
	if m.SuccessRate() != float64(m.Completed)/6 {
		t.Error("SuccessRate wrong")
	}
	if m.Framework != "PARM+PANR" || m.Workload != "mixed" {
		t.Errorf("labels: %s / %s", m.Framework, m.Workload)
	}
}

func TestAppStateString(t *testing.T) {
	if StateCompleted.String() != "completed" || StateDropped.String() != "dropped" ||
		StateUnfinished.String() != "unfinished" {
		t.Error("AppState.String wrong")
	}
}

func TestLegacyVECount(t *testing.T) {
	th := pdn.VEThreshold
	for _, tc := range []struct {
		peak float64
		want int
	}{
		{th * 1.001, 1}, // barely over: one emergency
		{th * 1.13, 2},  // exceedance 0.13 -> 1 + int(1.04)
		{th * 1.5, 5},   // exceedance 0.5 -> 1 + 4
		{th * 2.0, 8},   // exceedance 1.0 -> 9, clamped
		{th * 10, 8},    // deep noise stays clamped
	} {
		if got := legacyVECount(tc.peak); got != tc.want {
			t.Errorf("legacyVECount(%g) = %d, want %d", tc.peak, got, tc.want)
		}
	}
}

// veHeavyConfig reproduces the TestVEPenaltiesCharged setup: an HM run at
// high load whose domains exceed the VE threshold.
func veHeavyWorkload(t *testing.T) *appmodel.Workload {
	t.Helper()
	return genWorkload(t, appmodel.WorkloadCompute, 6, 0.04, 12)
}

// runWithTimeline runs cfg over w capturing the event timeline.
func runWithTimeline(t *testing.T, cfg Config, w *appmodel.Workload) (*Metrics, *obs.Timeline) {
	t.Helper()
	eng, err := NewEngine(cfg, MustCombo("HM", "XY"))
	if err != nil {
		t.Fatal(err)
	}
	tl := obs.NewTimeline(1 << 14)
	eng.AttachTimeline(tl)
	m, err := eng.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	return m, tl
}

// Each application must close exactly one residency span: the stale-event
// guard (engine.go, case evCompletion) discards completion events whose app
// was pushed back by VE penalties, so a double completion — which would
// record a second "app" span and corrupt resource accounting — never
// happens even when every VE reschedules the completion.
func TestStaleCompletionGuardSingleSpan(t *testing.T) {
	m, tl := runWithTimeline(t, Config{SoftDeadlines: true}, veHeavyWorkload(t))
	if m.TotalVEs == 0 {
		t.Skip("no VEs at this seed; guard not exercised")
	}
	spans := map[int]int{}
	for _, ev := range tl.Events() {
		if ev.Name == "app" {
			spans[ev.App]++
		}
	}
	for _, o := range m.Apps {
		want := 0
		if o.State == StateCompleted {
			want = 1
		}
		if got := spans[o.App.ID]; got != want {
			t.Errorf("app %d closed %d residency spans, want %d", o.App.ID, got, want)
		}
	}
}

// Outcomes stay current for applications the time cap leaves unfinished:
// VEs charged before the cap must be visible in the final metrics even
// though complete() never ran for the app.
func TestUnfinishedOutcomesStayCurrent(t *testing.T) {
	// Locate the first VE of the untruncated run, then rerun with the
	// safety cap just after it so the victim app cannot finish.
	_, tl := runWithTimeline(t, Config{SoftDeadlines: true}, veHeavyWorkload(t))
	var veT float64
	var veApp int = -1
	for _, ev := range tl.Events() {
		if ev.Name == "ve" {
			veT, veApp = ev.TS, ev.App
			break
		}
	}
	if veApp < 0 {
		t.Skip("no VEs at this seed")
	}
	cfg := Config{SoftDeadlines: true, MaxSimTime: veT + 1e-6}
	m, _ := runWithTimeline(t, cfg, veHeavyWorkload(t))
	var o *AppOutcome
	for i := range m.Apps {
		if m.Apps[i].App.ID == veApp {
			o = &m.Apps[i]
		}
	}
	if o == nil {
		t.Fatalf("app %d missing from outcomes", veApp)
	}
	if o.State == StateCompleted {
		t.Fatalf("app %d completed despite the cap at %g", veApp, cfg.MaxSimTime)
	}
	if o.VEs == 0 {
		t.Errorf("unfinished app %d lost its VE count", veApp)
	}
	if m.TotalVEs == 0 {
		t.Error("truncated run reports zero total VEs")
	}
}

// VERollback accounting: per-app rollbacks match VEs (each drawn emergency
// is one rollback), totals aggregate, and the explicit delay is visible.
func TestRollbackModeAccounting(t *testing.T) {
	cfg := Config{SoftDeadlines: true, VEModel: VERollback, FaultSeed: 3}
	m := runOne(t, cfg, MustCombo("HM", "XY"), veHeavyWorkload(t))
	if m.TotalRollbacks == 0 {
		t.Skip("no rollbacks at this seed; accounting not exercised")
	}
	sumR, sumD := 0, 0.0
	for _, o := range m.Apps {
		if o.Rollbacks != o.VEs {
			t.Errorf("app %d rollbacks %d != VEs %d", o.App.ID, o.Rollbacks, o.VEs)
		}
		if o.Rollbacks > 0 && o.RollbackDelayS <= 0 {
			t.Errorf("app %d has %d rollbacks but zero delay", o.App.ID, o.Rollbacks)
		}
		if o.State == StateCompleted && o.Checkpoints == 0 {
			t.Errorf("completed app %d committed no checkpoints", o.App.ID)
		}
		sumR += o.Rollbacks
		sumD += o.RollbackDelayS
	}
	if sumR != m.TotalRollbacks {
		t.Errorf("per-app rollbacks %d != total %d", sumR, m.TotalRollbacks)
	}
	if math.Abs(sumD-m.TotalRollbackDelayS) > 1e-12 {
		t.Errorf("per-app delay %g != total %g", sumD, m.TotalRollbackDelayS)
	}
	if m.TotalVEs != m.TotalRollbacks {
		t.Errorf("VEs %d != rollbacks %d in rollback mode", m.TotalVEs, m.TotalRollbacks)
	}
}

// VELegacy stays the zero value: the recorded experiment tables depend on
// the default model staying byte-compatible.
func TestVELegacyIsDefault(t *testing.T) {
	if VELegacy != 0 {
		t.Fatal("VELegacy is not the zero VEMode")
	}
	var cfg Config
	if cfg.VEModel != VELegacy {
		t.Fatal("zero config does not select VELegacy")
	}
}

// The rollback fault plan is part of the determinism contract: a fixed
// FaultSeed replays bit-identically across reruns and PSN worker counts,
// with NoC fault injection enabled too.
func TestRollbackModeByteIdentical(t *testing.T) {
	run := func(workers int) []byte {
		cfg := Config{
			SoftDeadlines:     true,
			VEModel:           VERollback,
			FaultSeed:         9,
			NoCFaultInjection: true,
		}
		cfg.Chip.PSNWorkers = workers
		w := genWorkload(t, appmodel.WorkloadCompute, 6, 0.04, 12)
		m := runOne(t, cfg, MustCombo("HM", "XY"), w)
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := run(1)
	if rerun := run(1); !bytes.Equal(rerun, base) {
		t.Error("two serial rollback-mode runs diverged")
	}
	if parallel := run(4); !bytes.Equal(parallel, base) {
		t.Error("4-worker rollback-mode run diverged from the serial reference")
	}
}

// NoC fault injection populates the aggregate counters and keeps the
// internal bookkeeping consistent: every drop is either retransmitted or
// lost, and recoveries never exceed retransmissions.
func TestNoCFaultInjectionAccounting(t *testing.T) {
	cfg := Config{SoftDeadlines: true, NoCFaultInjection: true, FaultSeed: 5}
	m := runOne(t, cfg, MustCombo("HM", "XY"), veHeavyWorkload(t))
	if m.NoCFaults == nil {
		t.Fatal("NoCFaults nil with fault injection enabled")
	}
	f := m.NoCFaults
	if f.Retransmitted+f.Lost != f.Dropped {
		t.Errorf("retransmitted %d + lost %d != dropped %d", f.Retransmitted, f.Lost, f.Dropped)
	}
	if f.Recovered > f.Retransmitted {
		t.Errorf("recovered %d > retransmitted %d", f.Recovered, f.Retransmitted)
	}
	// Without fault injection the section is absent.
	m2 := runOne(t, Config{SoftDeadlines: true}, MustCombo("HM", "XY"), veHeavyWorkload(t))
	if m2.NoCFaults != nil {
		t.Error("NoCFaults populated without fault injection")
	}
}
