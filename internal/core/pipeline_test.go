package core

import (
	"testing"

	"parm/internal/appmodel"
	"parm/internal/chip"
	"parm/internal/noc"
)

// kneeBench is a synthetic communication-intensive benchmark whose WCET
// minimum (the sync knee, DESIGN.md §2) sits well below DoP 32: the heavy
// synchronization term makes WCET(32) > WCET(16) at every Vdd. The name is
// unique so the package-level WCET cache cannot collide with pool benchmarks.
func kneeBench() appmodel.Benchmark {
	return appmodel.Benchmark{
		Name:               "synthetic-knee",
		Kind:               appmodel.CommIntensive,
		Shape:              appmodel.ShapeForkJoin,
		WorkGCycles:        2.0,
		SerialFrac:         0.02,
		SyncKCyclesPerTask: 60000,
		CommMBTotal:        2000,
		HighTaskFrac:       0.4,
	}
}

// Regression test for the Algorithm 1 DoP scan: a deadline miss at a high
// DoP must not abandon the Vdd level while WCET is still falling toward the
// sync knee. With the old first-miss break, this app's DoP-32 miss at 0.4 V
// escalated straight to 0.5 V even though a mid DoP met the deadline at
// 0.4 V — PARM's "lowest Vdd first" guarantee silently broke for
// communication-intensive benchmarks whose knee sits below DoP 32.
func TestAlgorithm1ScansPastSyncKnee(t *testing.T) {
	b := kneeBench()
	p := node7()
	vddLow := p.VddLevels(0.1)[0]

	// Establish the knee shape this test depends on, so a profile-model
	// change fails loudly here instead of silently weakening the test.
	w32 := b.WCETEstimate(p, vddLow, 32)
	minW, minDoP := w32, 32
	for _, dop := range appmodel.DoPValues() {
		if w := b.WCETEstimate(p, vddLow, dop); w < minW {
			minW, minDoP = w, dop
		}
	}
	if minDoP >= 32 || minW >= w32 {
		t.Fatalf("benchmark lost its knee: min WCET %.3f at DoP %d, WCET(32)=%.3f",
			minW, minDoP, w32)
	}

	// A deadline between the knee WCET and the DoP-32 WCET: infeasible at
	// DoP 32, feasible at the knee, all at the lowest Vdd.
	deadline := (minW + w32) / 2
	w := &appmodel.Workload{
		Kind: appmodel.WorkloadComm,
		Apps: []*appmodel.App{{ID: 1, Bench: b, Arrival: 0, RelDeadline: deadline}},
	}
	m := runOne(t, Config{}, MustCombo("PARM", "PANR"), w)
	o := m.Apps[0]
	if o.MappedAt == 0 && o.State == StateDropped {
		t.Fatal("app dropped; scan never reached a feasible DoP")
	}
	if o.Vdd != vddLow {
		t.Errorf("mapped at %.1f V, want %.1f V: DoP scan bailed before the sync knee", o.Vdd, vddLow)
	}
	if got := b.WCETEstimate(p, o.Vdd, o.DoP); got >= deadline {
		t.Errorf("chosen DoP %d has WCET %.3f >= deadline %.3f", o.DoP, got, deadline)
	}
}

// The parallel, cached measurement pipeline must produce bit-identical
// metrics to the serial, uncached reference on the same workload — the
// tentpole determinism contract (quantization is applied in both paths, the
// caches key on exact inputs, and aggregation is ordered by domain index).
func TestPipelineSerialParallelDeterministic(t *testing.T) {
	serial := Config{
		SoftDeadlines:   true,
		DisableNoCCache: true,
		Chip:            chip.Config{PSNWorkers: 1, DisablePSNCache: true},
	}
	parallel := Config{SoftDeadlines: true} // default: pooled workers + caches

	run := func(cfg Config) (*Metrics, *Engine) {
		w := genWorkload(t, appmodel.WorkloadMixed, 6, 0.05, 42)
		eng, err := NewEngine(cfg, MustCombo("PARM", "PANR"))
		if err != nil {
			t.Fatal(err)
		}
		m, err := eng.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		return m, eng
	}
	want, _ := run(serial)
	got, eng := run(parallel)

	if got.TotalTime != want.TotalTime || got.PeakPSN != want.PeakPSN ||
		got.AvgPSN != want.AvgPSN || got.MeanPacketLatency != want.MeanPacketLatency ||
		got.TotalVEs != want.TotalVEs || got.TotalEnergyJ != want.TotalEnergyJ ||
		got.Completed != want.Completed || got.Samples != want.Samples {
		t.Errorf("aggregate metrics diverged:\n got %+v\nwant %+v", got, want)
	}
	if len(got.Apps) != len(want.Apps) {
		t.Fatalf("app counts differ: %d vs %d", len(got.Apps), len(want.Apps))
	}
	for i := range want.Apps {
		a, b := got.Apps[i], want.Apps[i]
		if a.Vdd != b.Vdd || a.DoP != b.DoP || a.MappedAt != b.MappedAt ||
			a.CompletedAt != b.CompletedAt || a.WaitTime != b.WaitTime ||
			a.VEs != b.VEs || a.AvgPacketLatency != b.AvgPacketLatency ||
			a.EnergyJ != b.EnergyJ {
			t.Errorf("app %d outcomes diverged:\n got %+v\nwant %+v", i, a, b)
		}
	}

	// The fast path must actually have been exercised, or this test proves
	// nothing about the caches. NoC memo hits need the exact (flows, PSN)
	// pair to recur, which is workload-dependent, so only population is
	// asserted here; hit semantics are covered by TestNoCMeasurementMemo.
	if eng.Chip().PSNCacheStats().Hits == 0 {
		t.Error("PSN solve cache never hit")
	}
	if _, misses := eng.NoCCacheStats(); misses == 0 {
		t.Error("NoC memo never populated")
	}
}

// The NoC measurement memo returns the stored result exactly when both the
// flow list and the sensor PSN environment recur, re-simulates otherwise,
// and forgets entries once the bounded history evicts them.
func TestNoCMeasurementMemo(t *testing.T) {
	eng, err := NewEngine(Config{}, MustCombo("PARM", "PANR"))
	if err != nil {
		t.Fatal(err)
	}
	flows := []noc.Flow{
		{App: 1, Src: 0, Dst: 5, Rate: 0.05},
		{App: 1, Src: 5, Dst: 12, Rate: 0.02},
	}
	r1, err := eng.measurementFor(flows)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng.measurementFor(flows)
	if err != nil {
		t.Fatal(err)
	}
	if r2 != r1 {
		t.Error("identical inputs re-simulated")
	}
	if eng.nocHits != 1 || eng.nocMisses != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1/1", eng.nocHits, eng.nocMisses)
	}

	// A changed sensor environment is a different measurement (PANR routing
	// reads env.PSN), even with the same flows.
	eng.env.PSN[3] += 0.01
	if _, err := eng.measurementFor(flows); err != nil {
		t.Fatal(err)
	}
	if eng.nocMisses != 2 {
		t.Error("changed PSN environment served from memo")
	}
	// Restoring the environment finds the original entry again.
	eng.env.PSN[3] -= 0.01
	if _, err := eng.measurementFor(flows); err != nil {
		t.Fatal(err)
	}
	if eng.nocHits != 2 {
		t.Error("restored (flows, PSN) state missed the memo")
	}

	// Flood the bounded history: the oldest entries are evicted and
	// re-simulated on their next appearance.
	for i := 0; i < nocMemoCap; i++ {
		other := []noc.Flow{{App: 2 + i, Src: 1, Dst: 8, Rate: 0.01}}
		if _, err := eng.measurementFor(other); err != nil {
			t.Fatal(err)
		}
	}
	misses := eng.nocMisses
	if _, err := eng.measurementFor(flows); err != nil {
		t.Fatal(err)
	}
	if eng.nocMisses != misses+1 {
		t.Error("evicted entry still served from memo")
	}

	// DisableNoCCache keeps the serial reference path memo-free.
	ref, err := NewEngine(Config{DisableNoCCache: true}, MustCombo("PARM", "PANR"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := ref.measurementFor(flows); err != nil {
			t.Fatal(err)
		}
	}
	if ref.nocHits != 0 || ref.nocMisses != 2 || len(ref.nocMemo) != 0 {
		t.Errorf("disabled memo still active: hits=%d misses=%d entries=%d",
			ref.nocHits, ref.nocMisses, len(ref.nocMemo))
	}
}
