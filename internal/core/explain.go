package core

import (
	"parm/internal/appmodel"
	"parm/internal/power"
)

// SelectionStep records one (Vdd, DoP) combination considered by
// Algorithm 1 for an application, with the outcome of each gate: deadline
// feasibility (line 6), dark-silicon power (Algorithm 2 line 1), and
// mapping-region availability (lines 10-11).
type SelectionStep struct {
	Vdd  power.Volts
	DoP  int
	WCET float64
	// DeadlineOK is the line-6 check against the remaining deadline.
	DeadlineOK bool
	// Skipped marks combinations Algorithm 1 never evaluates (after a
	// deadline failure it jumps to the next voltage).
	Skipped bool
	// PowerW is the estimated application power; PowerOK the DsPB check.
	PowerW  power.Watts
	PowerOK bool
	// MappingTried reports whether the mapper was invoked (Algorithm 1
	// stops at the first success, so later combinations are not tried);
	// MappingOK whether it found a region.
	MappingTried bool
	MappingOK    bool
	// Chosen marks the combination Algorithm 1 would commit.
	Chosen bool
}

// ExplainSelection replays Algorithm 1's search for app against the
// engine's *current* chip state without committing anything, returning one
// step per combination in search order. Use it to understand why the
// runtime picked — or failed to pick — an operating point.
func (e *Engine) ExplainSelection(app *appmodel.App) []SelectionStep {
	vdds, dops := e.vddDoPLists()
	remaining := app.AbsDeadline() - e.now
	if e.cfg.SoftDeadlines {
		remaining = app.RelDeadline
	}
	var steps []SelectionStep
	chosen := false
	for _, vdd := range vdds {
		deadlineFailed := false
		for _, dop := range dops {
			st := SelectionStep{Vdd: vdd, DoP: dop}
			st.WCET = app.Bench.WCETEstimate(e.chip.Node, vdd, dop)
			if deadlineFailed {
				st.Skipped = true
				steps = append(steps, st)
				continue
			}
			st.DeadlineOK = st.WCET < remaining
			if !st.DeadlineOK {
				deadlineFailed = true
				steps = append(steps, st)
				continue
			}
			st.PowerW = app.Bench.PowerEstimate(e.chip.Node, vdd, dop)
			st.PowerOK = st.PowerW <= e.chip.Budget.Available()
			if st.PowerOK && !chosen {
				st.MappingTried = true
				_, st.MappingOK = e.fw.Mapper.Map(e.chip, app.Graph(dop))
				if st.MappingOK {
					st.Chosen = true
					chosen = true
				}
			}
			steps = append(steps, st)
		}
	}
	return steps
}

// ChosenStep returns the step Algorithm 1 would commit, or nil when the
// application cannot currently be mapped.
func ChosenStep(steps []SelectionStep) *SelectionStep {
	for i := range steps {
		if steps[i].Chosen {
			return &steps[i]
		}
	}
	return nil
}

// explainFor builds a fresh engine around the framework and explains the
// app on an empty chip — the cmd/parmsim -explain entry point.
func ExplainOnEmptyChip(cfg Config, fw Framework, app *appmodel.App) ([]SelectionStep, error) {
	eng, err := NewEngine(cfg, fw)
	if err != nil {
		return nil, err
	}
	return eng.ExplainSelection(app), nil
}
