package core

import (
	"fmt"
	"math"
	"sort"

	"parm/internal/appmodel"
	"parm/internal/chip"
	"parm/internal/mapping"
	"parm/internal/noc"
	"parm/internal/obs"
	"parm/internal/pdn"
	"parm/internal/power"
	"parm/internal/sched"
)

// Config parameterizes a simulation run.
type Config struct {
	// Chip configures the CMP platform (defaults: 10x6 mesh, 7nm, 65 W).
	Chip chip.Config
	// NoC configures the network simulator.
	NoC noc.Config
	// SamplePeriod is the PSN sampling interval in seconds (paper §5.1
	// samples periodically and at map/unmap events). Zero selects 10 ms.
	SamplePeriod float64
	// WindowCycles is the NoC measurement window length. Zero selects 8000.
	WindowCycles int
	// WarmupCycles precede each measurement window. Zero selects 1500.
	WarmupCycles int
	// RouterHz is the NoC clock for cycle-to-seconds conversion (paper
	// §4.4: hop selection at 1 GHz). Zero selects 1 GHz.
	RouterHz float64
	// MaxSimTime is a safety cap on simulated time. Zero selects 300 s.
	MaxSimTime float64
	// SensorBits is the PSN sensor quantization. Zero selects 6 bits.
	SensorBits uint
	// SoftDeadlines makes deadlines advisory: the (Vdd, DoP) selection
	// still targets the application's relative deadline, but applications
	// are never dropped — an exhausted search restarts at the next exit
	// event. Used for throughput experiments where every application must
	// execute (paper Fig. 6/7); the oversubscription study (Fig. 8) keeps
	// hard deadlines.
	SoftDeadlines bool
	// DisableNoCCache forces a full NoC warmup+measurement on every
	// map/unmap event even when the active flow set and the sensor PSN
	// environment are unchanged since the last measurement (serial
	// reference mode for determinism tests and benchmarks). The chip-side
	// measurement knobs live in Chip (PSNWorkers, DisablePSNCache, and
	// PSNMode, which selects the domain transient solver algorithm).
	DisableNoCCache bool
	// VEModel selects how voltage emergencies become completion-time
	// penalties. The zero value VELegacy keeps the closed-form expected
	// penalty every recorded experiment table was produced with; VERollback
	// replays a seeded fault plan through an explicit checkpoint/rollback
	// executor (DESIGN.md §10).
	VEModel VEMode
	// FaultSeed seeds the VERollback fault plan and, when NoCFaultInjection
	// is set, the NoC packet-drop model. Zero selects 1. Runs with the same
	// seed replay bit-identically regardless of PSN worker count.
	FaultSeed int64
	// NoCFaultInjection installs a seeded noise-proportional packet-drop
	// model in every NoC measurement, populating the per-flow drop,
	// retransmission, recovery and loss counters aggregated in
	// Metrics.NoCFaults. It forces DisableNoCCache: a memoized measurement
	// would skip the drop model's random draws and desynchronize the
	// stream.
	NoCFaultInjection bool
	// NoCDropScale and NoCDropCap parameterize the drop model: probability
	// scale per unit of threshold exceedance and its cap. Zero selects the
	// noc.NewNoiseDropModel defaults (0.5 and 0.75).
	NoCDropScale, NoCDropCap float64
	// NoCMode selects the NoC measurement strategy (DESIGN.md §11). The
	// zero value NoCModeCycle keeps cycle-accurate simulation with
	// exact-input memoization — metrics stay byte-identical to the recorded
	// experiments. NoCModeAuto quantizes the memo key so near-repeat mapper
	// states hit the cache and answers uncongested windows with the
	// closed-form analytic model, falling back to cycle simulation when any
	// link's offered load exceeds NoC.SatLinkLoad; fault injection always
	// forces the cycle path. NoCModeAnalytic answers every window with the
	// closed form, congested or not — for model studies only.
	NoCMode NoCMode
}

// NoCMode selects how NoC measurement windows are produced.
type NoCMode int

const (
	// NoCModeCycle is the exact default: cycle simulation, exact memo keys.
	NoCModeCycle NoCMode = iota
	// NoCModeAuto uses the quantized memo plus the analytic fast path for
	// uncongested windows, cycle simulation otherwise.
	NoCModeAuto
	// NoCModeAnalytic answers every window with the closed form.
	NoCModeAnalytic
)

// String returns the CLI name of the mode.
func (m NoCMode) String() string {
	switch m {
	case NoCModeCycle:
		return "cycle"
	case NoCModeAuto:
		return "auto"
	case NoCModeAnalytic:
		return "analytic"
	default:
		return fmt.Sprintf("NoCMode(%d)", int(m))
	}
}

// ParseNoCMode maps a CLI name ("cycle", "auto", "analytic") to its mode.
func ParseNoCMode(s string) (NoCMode, error) {
	switch s {
	case "cycle":
		return NoCModeCycle, nil
	case "auto":
		return NoCModeAuto, nil
	case "analytic":
		return NoCModeAnalytic, nil
	default:
		return 0, fmt.Errorf("core: unknown NoC mode %q (want cycle, auto, or analytic)", s)
	}
}

// VEMode selects the engine's voltage-emergency penalty model.
type VEMode int

const (
	// VELegacy charges the closed-form penalty: an exceedance-proportional
	// VE count clamped at 8 (legacyVECount), each costing the expected
	// sched.RollbackPenalty. Deterministic given the PSN trajectory.
	VELegacy VEMode = iota
	// VERollback draws per-sample VE counts from a seeded sched.FaultPlan
	// and charges the actual lost work through a per-app sched.Executor:
	// rollback to the last checkpoint watermark plus restart overhead.
	VERollback
)

func (c Config) withDefaults() Config {
	if c.SamplePeriod <= 0 {
		c.SamplePeriod = 0.01
	}
	if c.WindowCycles <= 0 {
		c.WindowCycles = 8000
	}
	if c.WarmupCycles <= 0 {
		c.WarmupCycles = 1500
	}
	if c.RouterHz <= 0 {
		c.RouterHz = 1e9
	}
	if c.MaxSimTime <= 0 {
		c.MaxSimTime = 300
	}
	if c.SensorBits == 0 {
		c.SensorBits = 6
	}
	if c.FaultSeed == 0 {
		c.FaultSeed = 1
	}
	if c.NoCFaultInjection {
		c.DisableNoCCache = true
	}
	return c
}

// event kinds.
const (
	evArrival = iota
	evCompletion
	evSample
)

type event struct {
	t    float64
	kind int
	app  int
	seq  int // insertion order, for deterministic tie-breaking
}

// eventHeap is a typed binary min-heap ordered by (time, insertion seq).
// Typed push/pop avoid the interface{} boxing of container/heap, which
// allocated one escape per scheduled event on the engine's hottest path.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].t < h[j].t {
		return true
	}
	if h[i].t > h[j].t {
		return false
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Len() int { return len(h) }

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	// Sift up.
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	// Sift down.
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && s.less(right, left) {
			child = right
		}
		if !s.less(child, i) {
			break
		}
		s[i], s[child] = s[child], s[i]
		i = child
	}
	return top
}

// runningApp is the engine's record of a mapped application.
type runningApp struct {
	app       *appmodel.App
	graph     *appmodel.APG
	placement *mapping.Placement
	vdd       power.Volts
	dop       int
	freq      float64
	power     power.Watts
	flows     []noc.Flow
	// flowEdges parallels flows with the APG edge each flow realizes.
	flowEdges []appmodel.Edge

	mappedAt       float64
	completionTime float64
	ves            int
	avgLat         float64
	// exec tracks checkpointed progress in VERollback mode; nil in VELegacy.
	exec *sched.Executor
}

// Engine simulates one framework executing one workload on one chip.
type Engine struct {
	cfg Config
	fw  Framework

	chip    *chip.Chip
	now     float64
	events  eventHeap
	seq     int
	queue   []*queueEntry
	running map[int]*runningApp

	arrivalsLeft int

	env        noc.Env
	sensor     *pdn.Sensor
	routerUtil []float64

	// nocMemo holds recent NoC measurements with the exact inputs each was
	// taken under. A measurement is a deterministic function of (config,
	// routing, flow list, sensor PSN environment), so when those inputs
	// recur the cycle-level warmup+measure is skipped and the stored
	// result reused. Measurements happen at map/unmap events, which always
	// change the flow set, so recurrence means returning to an *earlier*
	// state — e.g. an app maps and completes, restoring the previous flow
	// set under an unchanged quantized sensor environment — hence a small
	// bounded history rather than a single entry.
	nocMemo   []nocMemoEntry
	nocHits   int
	nocMisses int
	// flowsBuf and idsBuf are reused across activeFlows calls to avoid
	// rebuilding the flow list allocation on every event; quantBuf holds the
	// quantized memo key in the non-cycle NoC modes.
	flowsBuf []noc.Flow
	idsBuf   []int
	quantBuf []noc.Flow

	// faultPlan supplies VERollback emergencies; nocFaults, when non-nil,
	// is installed in every NoC measurement (NoCFaultInjection) and
	// nocFaultAgg accumulates its per-flow counters across measurements.
	faultPlan   *sched.FaultPlan
	nocFaults   noc.FaultModel
	nocFaultAgg NoCFaultStats

	outcomes map[int]*AppOutcome
	metrics  Metrics

	psnTimeIntegral float64
	psnActiveTime   float64
	lastSampleT     float64
	nextSampleDue   float64

	trace *Trace

	// tel holds the pre-registered metrics (EnableTelemetry); its nil
	// pointers make every update a no-op when telemetry is off. timeline
	// receives the event records (AttachTimeline), nil when disabled. reg
	// keeps the registry so linkObs can attach timeline self-accounting;
	// decisions receives mapper provenance (AttachDecisions). windowSpan is
	// the open top-level span covering the current inter-sample window —
	// every other span nests under it.
	tel        telemetry
	timeline   *obs.Timeline
	reg        *obs.Registry
	decisions  *obs.DecisionLog
	windowSpan obs.SpanID
}

// NewEngine builds an engine for the framework under cfg.
func NewEngine(cfg Config, fw Framework) (*Engine, error) {
	cfg = cfg.withDefaults()
	c, err := chip.New(cfg.Chip)
	if err != nil {
		return nil, err
	}
	if fw.Mapper == nil || fw.Routing == nil {
		return nil, fmt.Errorf("core: framework %q missing mapper or routing", fw.Name)
	}
	n := c.Mesh.NumTiles()
	e := &Engine{
		cfg:        cfg,
		fw:         fw,
		chip:       c,
		running:    make(map[int]*runningApp),
		env:        noc.Env{PSN: make([]float64, n)},
		sensor:     pdn.NewSensor(n, cfg.SensorBits, 0.20),
		routerUtil: make([]float64, n),
		outcomes:   make(map[int]*AppOutcome),
	}
	e.cfg.NoC.Width = cfg.Chip.Width
	e.cfg.NoC.Height = cfg.Chip.Height
	if e.cfg.NoC.Width == 0 {
		e.cfg.NoC.Width, e.cfg.NoC.Height = c.Mesh.Width, c.Mesh.Height
	}
	if cfg.VEModel == VERollback {
		e.faultPlan = sched.NewFaultPlan(cfg.FaultSeed)
	}
	if cfg.NoCFaultInjection {
		// Offset the seed so the two fault streams are independent even
		// though they share one configuration knob.
		e.nocFaults = noc.NewNoiseDropModel(cfg.FaultSeed+1, pdn.VEThreshold,
			cfg.NoCDropScale, cfg.NoCDropCap)
	}
	return e, nil
}

// Chip exposes the platform for inspection (examples, tests).
func (e *Engine) Chip() *chip.Chip { return e.chip }

// NoCCacheStats reports how many NoC measurements were served from the memo
// versus simulated cycle by cycle.
func (e *Engine) NoCCacheStats() (hits, misses int) { return e.nocHits, e.nocMisses }

// CollectCacheStats attaches the run's measurement-cache counters (the pdn
// domain-solve cache and the NoC measurement memo) to m. Opt-in because the
// pdn hit/miss split varies with the PSN worker count; see Metrics.PDNCache.
func (e *Engine) CollectCacheStats(m *Metrics) {
	cs := e.chip.PSNCacheStats()
	m.PDNCache = &cs
	m.NoCMemo = &NoCMemoStats{Hits: e.nocHits, Misses: e.nocMisses}
}

func (e *Engine) push(t float64, kind, app int) {
	e.seq++
	e.events.push(event{t: t, kind: kind, app: app, seq: e.seq})
}

// Run executes the workload to completion (or the safety cap) and returns
// the run metrics.
func (e *Engine) Run(w *appmodel.Workload) (*Metrics, error) {
	if w == nil || len(w.Apps) == 0 {
		return nil, fmt.Errorf("core: empty workload")
	}
	e.metrics = Metrics{Framework: e.fw.Name, Workload: w.Kind.String()}
	e.nocFaultAgg = NoCFaultStats{}
	e.arrivalsLeft = len(w.Apps)
	apps := make(map[int]*appmodel.App, len(w.Apps))
	for _, a := range w.Apps {
		if _, dup := apps[a.ID]; dup {
			return nil, fmt.Errorf("core: duplicate app ID %d", a.ID)
		}
		apps[a.ID] = a
		e.outcomes[a.ID] = &AppOutcome{App: a, State: StateUnfinished}
		e.push(a.Arrival, evArrival, a.ID)
	}
	e.scheduleSample(0)
	e.windowSpan = e.timeline.StartSpan("window", 0, -1)

	for e.events.Len() > 0 {
		ev := e.events.pop()
		if ev.t > e.cfg.MaxSimTime {
			break
		}
		e.now = ev.t
		e.tel.events.Inc()
		e.tel.simTime.Set(e.now)
		switch ev.kind {
		case evArrival:
			e.arrivalsLeft--
			e.queue = append(e.queue, &queueEntry{app: apps[ev.app]})
			if err := e.trySchedule(false); err != nil {
				return nil, err
			}
		case evCompletion:
			ra, ok := e.running[ev.app]
			if !ok || ra.completionTime > e.now+1e-12 {
				continue // stale event (completion was pushed back by VEs)
			}
			if err := e.complete(ra); err != nil {
				return nil, err
			}
			if err := e.trySchedule(true); err != nil {
				return nil, err
			}
		case evSample:
			if err := e.periodicSample(); err != nil {
				return nil, err
			}
		}
	}
	e.timeline.EndSpan(e.windowSpan, e.now)
	e.windowSpan = 0

	// Final accounting.
	for _, a := range w.Apps {
		o := e.outcomes[a.ID]
		switch o.State {
		case StateCompleted:
			e.metrics.Completed++
		case StateDropped:
			e.metrics.Dropped++
		default:
			e.metrics.Unfinished++
		}
		e.metrics.TotalVEs += o.VEs
		e.metrics.TotalRollbacks += o.Rollbacks
		e.metrics.TotalRollbackDelayS += o.RollbackDelayS
		e.metrics.TotalEnergyJ += o.EnergyJ
		e.metrics.Apps = append(e.metrics.Apps, *o)
	}
	if e.cfg.NoCFaultInjection {
		agg := e.nocFaultAgg
		e.metrics.NoCFaults = &agg
	}
	if e.psnActiveTime > 0 {
		e.metrics.AvgPSN = e.psnTimeIntegral / e.psnActiveTime
	}
	lat, nlat := 0.0, 0
	for _, o := range e.metrics.Apps {
		if o.State == StateCompleted && o.AvgPacketLatency > 0 {
			lat += o.AvgPacketLatency
			nlat++
		}
	}
	if nlat > 0 {
		e.metrics.MeanPacketLatency = lat / float64(nlat)
	}
	return &e.metrics, nil
}

// scheduleSample queues the next periodic PSN sample if work remains.
func (e *Engine) scheduleSample(t float64) {
	if e.arrivalsLeft == 0 && len(e.running) == 0 && len(e.queue) == 0 {
		return
	}
	e.nextSampleDue = t
	e.push(t, evSample, -1)
}

// queueEntry is one waiting application with its Algorithm 1 stall state.
type queueEntry struct {
	app *appmodel.App
	// stalled marks that a full (Vdd, DoP) scan already failed and the app
	// is waiting for an app-exit event before rescanning (Algorithm 1
	// line 9: "stall till an app exit event on CMP").
	stalled bool
}

// trySchedule services the queue head FCFS (paper §3.2): the head either
// maps, stalls for an exit event, or is dropped once every (Vdd, DoP)
// combination has been exhausted (Algorithm 1's anti-stagnation drop).
// resume is true when an app-exit event just occurred, permitting a stalled
// combination its retry.
func (e *Engine) trySchedule(resume bool) error {
	defer func() { e.tel.queueDepth.Set(int64(len(e.queue))) }()
	for len(e.queue) > 0 {
		entry := e.queue[0]
		if entry.stalled && !resume {
			return nil // still waiting for an app exit event
		}
		sp := e.timeline.StartSpan("mapper_decide", e.now, entry.app.ID)
		decision, err := e.algorithm1(entry)
		e.timeline.EndSpan(sp, e.now)
		if err != nil {
			return err
		}
		switch decision {
		case decMapped:
			e.queue = e.queue[1:]
			resume = false // mapping consumed resources, not freed them
		case decDropped:
			e.queue = e.queue[1:]
			o := e.outcomes[entry.app.ID]
			o.State = StateDropped
			e.tel.dropped.Inc()
			e.timeline.Record(obs.TimelineEvent{Name: "drop", TS: e.now, App: entry.app.ID})
			if e.now > e.metrics.TotalTime {
				e.metrics.TotalTime = e.now
			}
		case decWait:
			return nil // head-of-line blocks until the next exit event
		}
	}
	return nil
}

type decision int

const (
	decMapped decision = iota
	decWait
	decDropped
)

// vddDoPLists returns the framework's search axes: PARM searches voltages
// in increasing order and DoP in decreasing order (Algorithm 1 lines 1-4);
// the HM baseline fixes DoP (and optionally Vdd) and only scales voltage to
// meet the deadline.
func (e *Engine) vddDoPLists() (vdds []power.Volts, dops []int) {
	vdds = e.chip.Vdds
	if e.fw.HighVddFirst {
		rev := make([]power.Volts, len(vdds))
		for i, v := range vdds {
			rev[len(vdds)-1-i] = v
		}
		vdds = rev
	}
	if e.fw.AdaptiveVddDoP {
		all := appmodel.DoPValues()
		for i := len(all) - 1; i >= 0; i-- { // descending (line 2)
			dops = append(dops, all[i])
		}
		return vdds, dops
	}
	dops = []int{e.fw.FixedDoP}
	if e.fw.FixedVdd > 0 {
		vdds = []power.Volts{e.fw.FixedVdd}
	}
	return vdds, dops
}

// algorithm1 runs the paper's Vdd and DoP selection for the queue head:
// voltages in increasing order, DoP in decreasing order; a combination that
// meets the deadline but cannot be mapped (power or region) falls through
// to the next lower DoP, which needs fewer tiles and less power (the paper:
// "Selecting a lower DoP would resolve both of these concerns").
//
// WCET is non-monotonic in DoP: synchronization overhead grows with DoP, so
// past the sync knee (DESIGN.md §2) a *lower* DoP is faster. A deadline
// miss therefore only abandons the remaining lower DoPs (paper line 13,
// "lower DoPs are no faster") once the scan is past this Vdd's WCET
// minimum — while WCET is still non-increasing, a lower DoP can still meet
// the deadline and the scan continues.
//
// When the whole scan finds deadline-feasible combinations but no region,
// the application stalls until an app exit frees resources (line 9) and
// rescans; when no combination can meet the deadline any more, it is
// dropped to avoid queue stagnation.
func (e *Engine) algorithm1(entry *queueEntry) (decision, error) {
	app := entry.app
	vdds, dops := e.vddDoPLists()
	remaining := app.AbsDeadline() - e.now
	if e.cfg.SoftDeadlines {
		remaining = app.RelDeadline
	}

	feasible := false
	var att mapAttempt
	bestVdd, bestDoP, bestWCET := power.Volts(0), 0, inf
	for _, vdd := range vdds {
		minWCET := inf // per-Vdd WCET minimum seen so far in the DoP scan
		for _, dop := range dops {
			e.tel.candidates.Inc()
			att.candidates++
			wcet := app.Bench.WCETEstimate(e.chip.Node, vdd, dop)
			if wcet < bestWCET {
				bestVdd, bestDoP, bestWCET = vdd, dop, wcet
			}
			if wcet >= remaining {
				e.tel.rejDeadline.Inc()
				att.rejDeadline++
				if wcet > minWCET {
					// Past the sync knee: WCET is rising as DoP falls, so
					// lower DoPs are no faster; next (higher) Vdd (line 13).
					break
				}
				minWCET = wcet
				continue
			}
			if wcet < minWCET {
				minWCET = wcet
			}
			feasible = true
			ok, err := e.tryMapAt(app, vdd, dop, wcet, &att)
			if err != nil {
				return 0, err
			}
			if ok {
				return decMapped, nil
			}
		}
	}
	if e.cfg.SoftDeadlines && !feasible && bestDoP > 0 {
		// Advisory deadlines: no operating point can meet this one, so run
		// best-effort at the fastest point rather than starving the queue.
		ok, err := e.tryMapAt(app, bestVdd, bestDoP, bestWCET, &att)
		if err != nil {
			return 0, err
		}
		if ok {
			return decMapped, nil
		}
	}
	if feasible || e.cfg.SoftDeadlines {
		entry.stalled = true
		e.tel.stalls.Inc()
		e.recordDecision(app, "stalled", &att, 0, 0, nil)
		return decWait, nil
	}
	e.recordDecision(app, "dropped", &att, 0, 0, nil)
	return decDropped, nil
}

// mapAttempt accumulates one algorithm1 scan's provenance: how many
// (Vdd, DoP) candidates were examined and why each was rejected. It feeds
// the DecisionLog; the telemetry counters keep their own running totals.
type mapAttempt struct {
	candidates  int
	rejDeadline int
	rejBudget   int
	rejRegion   int
}

// recordDecision logs one scheduling attempt's outcome with its rejection
// breakdown. vdd/dop/domains describe the chosen operating point and region
// for mapped outcomes (zero values otherwise). Nil-guarded so disabled runs
// skip even the record construction.
func (e *Engine) recordDecision(app *appmodel.App, outcome string, att *mapAttempt, vdd power.Volts, dop int, domains []chip.DomainID) {
	if e.decisions == nil {
		return
	}
	d := obs.Decision{
		TS:          e.now,
		App:         app.ID,
		Bench:       app.Bench.Name,
		Outcome:     outcome,
		Candidates:  att.candidates,
		RejDeadline: att.rejDeadline,
		RejBudget:   att.rejBudget,
		RejRegion:   att.rejRegion,
		WaitS:       e.now - app.Arrival,
	}
	if outcome == "mapped" {
		d.Vdd = float64(vdd)
		d.DoP = dop
		d.Domains = make([]int, len(domains))
		for i, dom := range domains {
			d.Domains[i] = int(dom)
		}
	}
	e.decisions.Record(d)
}

// inf is a time that no real estimate reaches.
const inf = 1e308

// tryMapAt attempts to admit the app at one (Vdd, DoP) point: dark-silicon
// power check (Algorithm 2 line 1), then the framework's mapping heuristic.
func (e *Engine) tryMapAt(app *appmodel.App, vdd power.Volts, dop int, wcet float64, att *mapAttempt) (bool, error) {
	pw := app.Bench.PowerEstimate(e.chip.Node, vdd, dop)
	if pw > e.chip.Budget.Available() {
		e.tel.rejBudget.Inc()
		att.rejBudget++
		return false, nil
	}
	placement, ok := e.fw.Mapper.Map(e.chip, app.Graph(dop))
	if !ok {
		e.tel.rejRegion.Inc()
		att.rejRegion++
		return false, nil
	}
	if err := e.commit(app, vdd, dop, placement, pw, wcet); err != nil {
		return false, err
	}
	e.recordDecision(app, "mapped", att, vdd, dop, placement.Domains)
	return true, nil
}

// commit maps the application: reserves power, claims domains and tiles,
// measures the NoC with the new flow set, schedules the completion event,
// and takes the map-event PSN sample.
func (e *Engine) commit(app *appmodel.App, vdd power.Volts, dop int, p *mapping.Placement, pw power.Watts, wcet float64) error {
	if !e.chip.Budget.Reserve(pw) {
		return fmt.Errorf("core: budget reservation raced for %s", app)
	}
	for _, d := range p.Domains {
		if err := e.chip.AssignDomain(d, app.ID, vdd); err != nil {
			return err
		}
	}
	g := app.Graph(dop)
	// Walk the placement in task order, not map order: PlaceTask errors must
	// surface identically on every run (bit-identical metrics contract).
	tasks := make([]appmodel.TaskID, 0, len(p.TaskTile))
	for task := range p.TaskTile {
		tasks = append(tasks, task)
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i] < tasks[j] })
	for _, task := range tasks {
		if err := e.chip.PlaceTask(p.TaskTile[task], app.ID, int(task), g.Tasks[task].Activity); err != nil {
			return err
		}
	}

	ra := &runningApp{
		app:       app,
		graph:     g,
		placement: p,
		vdd:       vdd,
		dop:       dop,
		freq:      e.chip.Node.Frequency(vdd),
		power:     pw,
		mappedAt:  e.now,
	}
	// Build the app's NoC flows: one per APG edge between distinct tiles,
	// at the demand rate that ships the edge volume over the app's
	// estimated execution time.
	for _, edge := range g.Edges {
		src, dst := p.TaskTile[edge.Src], p.TaskTile[edge.Dst]
		if src == dst || edge.Volume <= 0 {
			continue
		}
		rate := edge.Volume / appmodel.FlitBytes / (wcet * e.cfg.RouterHz)
		ra.flows = append(ra.flows, noc.Flow{App: app.ID, Src: src, Dst: dst, Rate: rate})
		ra.flowEdges = append(ra.flowEdges, edge)
	}
	e.running[app.ID] = ra

	// Measure the network with all active flows and compute this app's
	// communication delays and makespan.
	delays, avgLat, err := e.measureNoC(ra)
	if err != nil {
		return err
	}
	ra.avgLat = avgLat
	makespan, err := sched.SPMDMakespan(g, sched.Config{
		Freq:              ra.freq,
		Delay:             delays,
		Checkpointing:     true,
		SyncCyclesPerTask: app.Bench.SyncCyclesPerTask(dop),
	})
	if err != nil {
		return err
	}
	if e.cfg.VEModel == VERollback {
		ra.exec = sched.NewExecutor(ra.freq, makespan, e.now)
		ra.completionTime = ra.exec.CompletionTime()
	} else {
		ra.completionTime = e.now + makespan
	}
	e.push(ra.completionTime, evCompletion, app.ID)

	o := e.outcomes[app.ID]
	o.Vdd = vdd
	o.DoP = dop
	o.MappedAt = e.now
	o.WaitTime = e.now - app.Arrival
	o.AvgPacketLatency = avgLat

	e.tel.mapped.Inc()
	e.tel.waitS.Observe(o.WaitTime)
	e.timeline.Record(obs.TimelineEvent{Name: "map", TS: e.now, App: app.ID, Arg: int64(dop)})

	// Paper §5.1: PSN is sampled when an application begins execution.
	return e.eventSample()
}

// complete finishes a running application.
func (e *Engine) complete(ra *runningApp) error {
	delete(e.running, ra.app.ID)
	e.chip.ReleaseApp(ra.app.ID)
	e.chip.Budget.Release(ra.power)

	o := e.outcomes[ra.app.ID]
	o.State = StateCompleted
	o.CompletedAt = e.now
	o.VEs = ra.ves
	o.EnergyJ = float64(ra.power) * (e.now - ra.mappedAt)
	o.DeadlineMet = e.now <= ra.app.AbsDeadline()+1e-9
	if ra.exec != nil {
		o.Rollbacks = ra.exec.Rollbacks()
		o.Checkpoints = ra.exec.Checkpoints()
		o.RollbackDelayS = ra.exec.DelayS()
	}
	if e.now > e.metrics.TotalTime {
		e.metrics.TotalTime = e.now
	}

	// The app's residency as one span, plus the unmap instant.
	e.timeline.Record(obs.TimelineEvent{Name: "app", TS: ra.mappedAt, Dur: e.now - ra.mappedAt, App: ra.app.ID, Arg: int64(ra.ves)})
	e.timeline.Record(obs.TimelineEvent{Name: "unmap", TS: e.now, App: ra.app.ID})

	// Re-measure the network for the remaining apps' router activity and
	// take the unmap-event PSN sample (paper §5.1).
	if _, _, err := e.measureNoC(nil); err != nil {
		return err
	}
	return e.eventSample()
}

// activeFlows gathers all running apps' flows in deterministic order and
// returns the flow list plus, for the requested app, the index range of its
// flows. The returned slice aliases e.flowsBuf and is only valid until the
// next activeFlows call; measurementFor copies it before memoizing.
func (e *Engine) activeFlows(forApp *runningApp) ([]noc.Flow, int, int) {
	ids := e.idsBuf[:0]
	for id := range e.running {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	e.idsBuf = ids
	flows := e.flowsBuf[:0]
	start, end := -1, -1
	for _, id := range ids {
		ra := e.running[id]
		if forApp != nil && ra == forApp {
			start = len(flows)
		}
		flows = append(flows, ra.flows...)
		if forApp != nil && ra == forApp {
			end = len(flows)
		}
	}
	e.flowsBuf = flows
	return flows, start, end
}

// flowsEqual reports whether two flow lists are element-wise identical.
func flowsEqual(a, b []noc.Flow) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// floatsEqual reports whether two float slices are bit-wise identical. This
// is a memo-key comparison, not a numeric tolerance check: the NoC memo must
// only hit when the sensor environment recurs exactly.
func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		//parm:floateq
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// nocMemoEntry is one remembered NoC measurement with its exact inputs.
type nocMemoEntry struct {
	flows []noc.Flow
	psn   []float64
	res   *noc.Result
}

// nocMemoCap bounds the measurement history. Recurrence comes from the
// running set oscillating through recent states, so a short history
// suffices; the linear key scan (flowsEqual on a handful of entries) is
// negligible next to a warmup+measure cycle simulation.
const nocMemoCap = 16

// nocRateQuantum is the flow-rate grid of the quantized memo key used by
// NoCModeAuto and NoCModeAnalytic: rates are snapped to multiples of 1/4096
// flit/cycle before the memo lookup, so mapper states whose flow rates differ
// by less than half a quantum share one measurement. The induced measurement
// error is bounded by the drift tests (see DESIGN.md §11); NoCModeCycle keys
// on exact rates and is unaffected.
const nocRateQuantum = 1.0 / 4096

// quantizedFlows returns flows with every rate snapped to the memo grid. The
// result aliases e.quantBuf and is valid until the next call; measurementFor
// copies it before memoizing.
func (e *Engine) quantizedFlows(flows []noc.Flow) []noc.Flow {
	q := append(e.quantBuf[:0], flows...)
	for i := range q {
		q[i].Rate = math.Round(q[i].Rate/nocRateQuantum) * nocRateQuantum
	}
	e.quantBuf = q
	return q
}

// measurementFor returns the NoC measurement for the given non-empty flow
// list: the memoized result when both the flow list and the sensor PSN
// environment match a remembered measurement (the simulation is a
// deterministic function of the two), a fresh window otherwise. In
// NoCModeCycle the memo key is the exact flow list; the other modes key on
// quantized rates so near-identical mapper states share a window.
func (e *Engine) measurementFor(flows []noc.Flow) (*noc.Result, error) {
	key := flows
	if e.cfg.NoCMode != NoCModeCycle {
		key = e.quantizedFlows(flows)
	}
	if !e.cfg.DisableNoCCache {
		for i := range e.nocMemo {
			m := &e.nocMemo[i]
			if flowsEqual(m.flows, key) && floatsEqual(m.psn, e.env.PSN) {
				e.nocHits++
				e.tel.nocHits.Inc()
				return m.res, nil
			}
		}
	}
	sp := e.timeline.StartSpan("noc_window", e.now, -1)
	res, err := e.simulateWindow(key)
	e.timeline.EndSpan(sp, e.now)
	if err != nil {
		return nil, err
	}
	e.nocMisses++
	e.tel.nocMisses.Inc()
	var inj, del uint64
	for i := range res.Flows {
		inj += uint64(res.Flows[i].InjectedFlits)
		del += uint64(res.Flows[i].DeliveredFlits)
	}
	e.tel.flitsInj.Add(inj)
	e.tel.flitsDel.Add(del)
	if e.cfg.DisableNoCCache {
		return res, nil
	}
	// Copy the inputs: key aliases a reusable buffer and env.PSN is
	// overwritten by the next PSN sample. Evict the oldest entry once full,
	// recycling its slices.
	var entry nocMemoEntry
	if len(e.nocMemo) >= nocMemoCap {
		entry = e.nocMemo[0]
		e.nocMemo = append(e.nocMemo[:0], e.nocMemo[1:]...)
	}
	entry.flows = append(entry.flows[:0], key...)
	entry.psn = append(entry.psn[:0], e.env.PSN...)
	entry.res = res
	e.nocMemo = append(e.nocMemo, entry)
	return res, nil
}

// simulateWindow produces one measurement window for the flow list. In the
// non-cycle modes with no fault model installed it first tries the analytic
// closed form; NoCModeAuto only accepts that answer for uncongested windows
// (no resource's offered load above NoC.SatLinkLoad), while NoCModeAnalytic
// accepts it unconditionally. Everything else — NoCModeCycle, fault
// injection, and saturated windows under NoCModeAuto — runs the
// cycle-accurate warmup+measure.
func (e *Engine) simulateWindow(flows []noc.Flow) (*noc.Result, error) {
	if e.cfg.NoCMode != NoCModeCycle && e.nocFaults == nil {
		res, rep, err := noc.AnalyticMeasure(e.cfg.NoC, e.fw.Routing, flows, &e.env, e.cfg.WindowCycles)
		if err != nil {
			return nil, err
		}
		if !rep.Saturated || e.cfg.NoCMode == NoCModeAnalytic {
			e.tel.nocAnalytic.Inc()
			e.tel.nocWindows.Inc()
			e.tel.measuredCyc.Add(uint64(res.Cycles))
			return res, nil
		}
		e.tel.nocFallback.Inc()
	}
	net, err := noc.NewNetwork(e.cfg.NoC, e.fw.Routing, flows, &e.env)
	if err != nil {
		return nil, err
	}
	if e.nocFaults != nil {
		net.SetFaultModel(e.nocFaults)
	}
	net.Run(e.cfg.WarmupCycles)
	res := net.Measure(e.cfg.WindowCycles)
	if e.nocFaults != nil {
		for i := range res.Flows {
			fs := &res.Flows[i]
			e.nocFaultAgg.Delivered += fs.DeliveredPackets
			e.nocFaultAgg.Dropped += fs.DroppedPackets
			e.nocFaultAgg.Retransmitted += fs.RetransmittedPackets
			e.nocFaultAgg.Recovered += fs.RecoveredPackets
			e.nocFaultAgg.Lost += fs.LostPackets
			e.tel.nocDropped.Add(uint64(fs.DroppedPackets))
			e.tel.nocRecovered.Add(uint64(fs.RecoveredPackets))
		}
	}
	e.tel.nocWindows.Inc()
	e.tel.warmupCyc.Add(uint64(e.cfg.WarmupCycles))
	e.tel.measuredCyc.Add(uint64(res.Cycles))
	return res, nil
}

// measureNoC measures the network with all active flows (reusing the last
// measurement when its inputs recur, see measurementFor), refreshes the
// chip-wide router utilization, and — if forApp is non-nil — returns its
// per-edge communication delay function and average packet latency in
// cycles.
func (e *Engine) measureNoC(forApp *runningApp) (sched.CommDelay, float64, error) {
	appID := -1
	if forApp != nil {
		appID = forApp.app.ID
	}
	sp := e.timeline.StartSpan("noc_measure", e.now, appID)
	defer e.timeline.EndSpan(sp, e.now)
	flows, start, end := e.activeFlows(forApp)
	for i := range e.routerUtil {
		e.routerUtil[i] = 0
	}
	if len(flows) == 0 {
		return nil, 0, nil
	}
	res, err := e.measurementFor(flows)
	if err != nil {
		return nil, 0, err
	}
	copy(e.routerUtil, res.RouterUtil)

	if forApp == nil {
		return nil, 0, nil
	}

	// Per-edge delay: flit count times achieved cycles-per-flit (>= 1, the
	// link rate), plus the measured packet latency for the first packet.
	type edgeKey struct{ src, dst appmodel.TaskID }
	delays := make(map[edgeKey]float64, end-start)
	totLat, nLat := 0.0, 0
	for i := start; i < end; i++ {
		fs := res.Flows[i]
		edge := forApp.flowEdges[i-start]
		flow := flows[i]
		flits := edge.Volume / appmodel.FlitBytes
		cpf := 1.0
		if fs.DeliveredFlits > 0 {
			achieved := float64(fs.DeliveredFlits) / float64(res.Cycles)
			if achieved < flow.Rate {
				// The flow sustained less than its demand: congestion
				// stretches the transfer proportionally.
				cpf = flow.Rate / achieved
			}
		} else if flow.Rate > 0 {
			cpf = 10 // starved flow: heavily penalized
		}
		lat := fs.AvgPacketLatency()
		if lat == 0 {
			// No packet completed in the window; approximate with the
			// zero-load hop latency. The chip mesh and the NoC mesh have
			// identical geometry (NewEngine copies the dimensions).
			lat = float64(e.chip.Mesh.ManhattanDist(flow.Src, flow.Dst) + e.cfg.NoC.FlitsPerPacket)
		}
		totLat += lat
		nLat++
		delays[edgeKey{edge.Src, edge.Dst}] = (flits*cpf + lat) / e.cfg.RouterHz
	}
	delayFn := func(edge appmodel.Edge) float64 {
		return delays[edgeKey{edge.Src, edge.Dst}]
	}
	avg := 0.0
	if nLat > 0 {
		avg = totLat / float64(nLat)
	}
	return delayFn, avg, nil
}

// eventSample takes a PSN sample at a map/unmap event: it refreshes sensors
// and metrics but does not charge VE penalties (those accrue at the
// periodic rate).
func (e *Engine) eventSample() error {
	_, err := e.samplePSN()
	return err
}

// periodicSample takes the scheduled PSN sample, charges voltage-emergency
// rollbacks to apps whose domains exceeded the threshold, and reschedules.
func (e *Engine) periodicSample() error {
	// Roll the top-level window span: one span per inter-sample period, so
	// every psn_sample/mapper_decide/noc_measure span nests under the window
	// it happened in.
	e.timeline.EndSpan(e.windowSpan, e.now)
	e.windowSpan = e.timeline.StartSpan("window", e.now, -1)
	s, err := e.samplePSN()
	if err != nil {
		return err
	}
	if s != nil {
		if e.tel.domainVEs != nil {
			for d, p := range s.DomainPeak {
				if p > pdn.VEThreshold {
					e.tel.domainVE(d).Inc()
				}
			}
		}
		ids := make([]int, 0, len(e.running))
		for id := range e.running {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			ra := e.running[id]
			peak := 0.0
			for _, d := range ra.placement.Domains {
				if s.DomainPeak[d] > peak {
					peak = s.DomainPeak[d]
				}
			}
			if peak <= pdn.VEThreshold {
				continue
			}
			if e.cfg.VEModel == VERollback {
				e.injectRollbackVEs(id, ra, peak)
				continue
			}
			n := legacyVECount(peak)
			e.tel.ves.Add(uint64(n))
			e.timeline.Record(obs.TimelineEvent{Name: "ve", TS: e.now, App: id, Arg: int64(n)})
			ra.ves += n
			e.outcomes[id].VEs = ra.ves // keep outcomes current for apps that never finish
			penalty := float64(n) * sched.RollbackPenalty(ra.freq)
			ra.completionTime += penalty
			e.push(ra.completionTime, evCompletion, id)
		}
	}
	e.scheduleSample(e.now + e.cfg.SamplePeriod)
	return nil
}

// legacyVECount is the closed-form VE count charged per over-threshold
// sample: exceedance-proportional — deeper noise crosses the margin on more
// switching events per interval — and clamped at 8. Callers only invoke it
// for peaks above pdn.VEThreshold, so the count is at least 1.
func legacyVECount(peak float64) int {
	n := 1 + int((peak/pdn.VEThreshold-1)*8)
	if n > 8 {
		n = 8
	}
	return n
}

// injectRollbackVEs runs one application's VERollback path for an
// over-threshold sample: draw the emergency count from the fault plan
// (consuming randomness exactly once per over-threshold app, in the
// caller's sorted-ID order), roll the executor back, and reschedule the
// completion. A zero draw is a residual VE that corrupted nothing; the
// plan's randomness is still consumed so later draws stay aligned.
func (e *Engine) injectRollbackVEs(id int, ra *runningApp, peak float64) {
	n := e.faultPlan.Draw(peak/pdn.VEThreshold - 1)
	if n == 0 {
		return
	}
	e.tel.ves.Add(uint64(n))
	e.tel.rollbacks.Add(uint64(n))
	e.timeline.Record(obs.TimelineEvent{Name: "ve", TS: e.now, App: id, Arg: int64(n)})
	ra.ves += n
	ra.completionTime = ra.exec.InjectVEs(e.now, n)
	e.push(ra.completionTime, evCompletion, id)
	// Keep outcomes current for apps that never finish.
	o := e.outcomes[id]
	o.VEs = ra.ves
	o.Rollbacks = ra.exec.Rollbacks()
	o.Checkpoints = ra.exec.Checkpoints()
	o.RollbackDelayS = ra.exec.DelayS()
}

// samplePSN solves the PDN for all active domains, updates sensors and
// aggregates. It returns nil when nothing is running.
func (e *Engine) samplePSN() (*chip.PSNSample, error) {
	if len(e.running) == 0 {
		e.lastSampleT = e.now
		return nil, nil
	}
	sp := e.timeline.StartSpan("psn_sample", e.now, -1)
	defer e.timeline.EndSpan(sp, e.now)
	ds := e.timeline.StartSpan("domain_solve", e.now, -1)
	s, err := e.chip.SamplePSN(e.routerUtil)
	e.timeline.EndSpan(ds, e.now)
	if err != nil {
		return nil, err
	}
	for t := range s.TilePeak {
		e.sensor.Record(t, s.TilePeak[t])
		e.env.PSN[t] = e.sensor.Read(t)
	}
	e.tel.sensorSamples.Add(uint64(len(s.TilePeak)))
	e.timeline.Record(obs.TimelineEvent{Name: "sample", TS: e.now, App: -1, Arg: int64(len(e.running))})
	if p := s.ChipPeak(); p > e.metrics.PeakPSN {
		e.metrics.PeakPSN = p
	}
	dt := e.now - e.lastSampleT
	if dt > 0 {
		e.psnTimeIntegral += s.ActiveAvg() * dt
		e.psnActiveTime += dt
	}
	e.lastSampleT = e.now
	e.metrics.Samples++
	e.recordTrace(s.ChipPeak(), s.ActiveAvg(), s.DomainPeak)
	return s, nil
}
