package core

import (
	"fmt"
	"io"
)

// TracePoint is one PSN sample in a run's time series.
type TracePoint struct {
	// T is the simulation time in seconds.
	T float64
	// ChipPeak is the maximum tile PSN fraction at this sample.
	ChipPeak float64
	// ActiveAvg is the mean PSN over active domains.
	ActiveAvg float64
	// Running is the number of mapped applications.
	Running int
	// Queued is the service-queue length.
	Queued int
	// BudgetUsed is the reserved dark-silicon power in watts.
	BudgetUsed float64
	// DomainPeak holds the per-domain peak PSN fractions.
	DomainPeak []float64
}

// Trace records the PSN/occupancy time series of a run when enabled via
// Engine.EnableTrace.
type Trace struct {
	Points []TracePoint
	// NumDomains fixes the per-domain column count of the CSV schema, so an
	// empty trace emits the same header a populated one would.
	// Engine.EnableTrace sets it from the chip.
	NumDomains int
}

// WriteCSV dumps the trace in CSV form: one row per sample with the
// chip-level aggregates followed by per-domain peaks. The header schema is
// identical whether or not any samples were recorded.
func (tr *Trace) WriteCSV(w io.Writer) error {
	domains := tr.NumDomains
	if len(tr.Points) > 0 {
		domains = len(tr.Points[0].DomainPeak)
	}
	header := "t_s,chipPeak,activeAvg,running,queued,budgetW"
	for d := 0; d < domains; d++ {
		header += fmt.Sprintf(",dom%d", d)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, p := range tr.Points {
		if _, err := fmt.Fprintf(w, "%.6f,%.5f,%.5f,%d,%d,%.2f",
			p.T, p.ChipPeak, p.ActiveAvg, p.Running, p.Queued, p.BudgetUsed); err != nil {
			return err
		}
		for _, dp := range p.DomainPeak {
			if _, err := fmt.Fprintf(w, ",%.5f", dp); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// MaxPeak returns the largest chip peak in the trace.
func (tr *Trace) MaxPeak() float64 {
	m := 0.0
	for _, p := range tr.Points {
		if p.ChipPeak > m {
			m = p.ChipPeak
		}
	}
	return m
}

// EnableTrace turns on time-series recording for the next Run. The returned
// trace is filled in as the simulation progresses.
func (e *Engine) EnableTrace() *Trace {
	e.trace = &Trace{NumDomains: e.chip.NumDomains()}
	return e.trace
}

// recordTrace appends a sample to the enabled trace.
func (e *Engine) recordTrace(chipPeak, activeAvg float64, domainPeak []float64) {
	if e.trace == nil {
		return
	}
	dp := make([]float64, len(domainPeak))
	copy(dp, domainPeak)
	e.trace.Points = append(e.trace.Points, TracePoint{
		T:          e.now,
		ChipPeak:   chipPeak,
		ActiveAvg:  activeAvg,
		Running:    len(e.running),
		Queued:     len(e.queue),
		BudgetUsed: float64(e.chip.Budget.Used()),
		DomainPeak: dp,
	})
}
