package core

import (
	"parm/internal/appmodel"
	"parm/internal/pdn"
	"parm/internal/power"
)

// AppState is the final disposition of an application.
type AppState int

// Application outcomes.
const (
	// StateCompleted means the app ran to completion on the CMP.
	StateCompleted AppState = iota
	// StateDropped means Algorithm 1 dropped the app (deadline infeasible
	// or unmappable before its deadline), paper §4.1.
	StateDropped
	// StateUnfinished means the simulation hit its safety time cap first.
	StateUnfinished
)

// String returns "completed", "dropped" or "unfinished".
func (s AppState) String() string {
	switch s {
	case StateCompleted:
		return "completed"
	case StateDropped:
		return "dropped"
	default:
		return "unfinished"
	}
}

// AppOutcome records how one application fared.
type AppOutcome struct {
	App   *appmodel.App
	State AppState
	// Vdd and DoP are the operating point chosen at mapping (zero when
	// never mapped).
	Vdd power.Volts
	DoP int
	// MappedAt and CompletedAt are absolute times in seconds.
	MappedAt, CompletedAt float64
	// WaitTime is the queue time before mapping.
	WaitTime float64
	// VEs counts voltage emergencies charged to the app.
	VEs int
	// DeadlineMet reports whether completion beat the absolute deadline.
	DeadlineMet bool
	// AvgPacketLatency is the mean NoC packet latency in cycles measured
	// for the app's flows at mapping time.
	AvgPacketLatency float64
	// Rollbacks, Checkpoints and RollbackDelayS report the explicit
	// checkpoint/rollback accounting: emergencies absorbed, checkpoints
	// committed, and the completion-time delay (lost work plus restart
	// overhead) in seconds. Populated only in VERollback mode; zero under
	// VELegacy, where the penalty is the closed form and VEs is the whole
	// story.
	Rollbacks      int
	Checkpoints    int
	RollbackDelayS float64
	// EnergyJ is the energy the app consumed in joules (reserved power
	// times residence time; zero when never mapped).
	EnergyJ float64
}

// Metrics aggregates one simulation run, providing the quantities of the
// paper's Figs. 6-8.
type Metrics struct {
	Framework string
	Workload  string

	// TotalTime is when the last application left the system (Fig. 6).
	TotalTime float64
	// PeakPSN is the maximum PSN fraction observed at any tile (Fig. 7).
	PeakPSN float64
	// AvgPSN is the time-average of the active domains' average PSN
	// (Fig. 7).
	AvgPSN float64
	// Completed and Dropped count final app states (Fig. 8).
	Completed, Dropped, Unfinished int
	// TotalVEs counts voltage emergencies across the run.
	TotalVEs int
	// TotalRollbacks and TotalRollbackDelayS aggregate the per-app explicit
	// rollback accounting (VERollback mode only; zero under VELegacy).
	TotalRollbacks      int
	TotalRollbackDelayS float64
	// Samples is the number of PSN samples taken.
	Samples int
	// MeanPacketLatency averages the per-app NoC packet latency over
	// mapped apps.
	MeanPacketLatency float64
	// TotalEnergyJ sums the energy consumed by completed applications.
	TotalEnergyJ float64

	Apps []AppOutcome

	// PDNCache and NoCMemo optionally carry the run's measurement-cache
	// counters (Engine.CollectCacheStats). They stay nil unless the caller
	// asks for them: cache hit/miss splits depend on the PSN worker count
	// (concurrent misses on one key race), so they are kept out of the
	// simulation results that the bit-identical determinism contract covers
	// and serialized only when present.
	PDNCache *pdn.CacheStats
	NoCMemo  *NoCMemoStats

	// NoCFaults aggregates the packet-fault counters of every NoC
	// measurement window in the run. Nil unless Config.NoCFaultInjection is
	// set, so default output is unchanged.
	NoCFaults *NoCFaultStats
}

// NoCFaultStats sums, across the run's NoC measurement windows, the packets
// delivered intact, dropped to supply-noise corruption, retransmitted by
// the source NIC, recovered (a delivery repaying a retransmission debt),
// and lost for good.
type NoCFaultStats struct {
	Delivered, Dropped, Retransmitted, Recovered, Lost int
}

// NoCMemoStats counts NoC measurements served from the engine's measurement
// memo versus simulated cycle by cycle.
type NoCMemoStats struct {
	Hits, Misses int
}

// SuccessRate returns the fraction of applications completed.
func (m *Metrics) SuccessRate() float64 {
	if len(m.Apps) == 0 {
		return 0
	}
	return float64(m.Completed) / float64(len(m.Apps))
}
