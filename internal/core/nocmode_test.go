package core

import (
	"math"
	"testing"

	"parm/internal/appmodel"
	"parm/internal/geom"
	"parm/internal/noc"
	"parm/internal/obs"
)

// TestConfigDefaults pins the withDefaults values the documentation promises,
// so doc comments and code cannot drift apart (the WarmupCycles comment once
// claimed 2000 while the code selected 1500).
func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.WindowCycles != 8000 {
		t.Errorf("WindowCycles = %d, want 8000", c.WindowCycles)
	}
	if c.WarmupCycles != 1500 {
		t.Errorf("WarmupCycles = %d, want 1500", c.WarmupCycles)
	}
	if c.SamplePeriod != 0.01 {
		t.Errorf("SamplePeriod = %g, want 0.01", c.SamplePeriod)
	}
	if c.RouterHz != 1e9 {
		t.Errorf("RouterHz = %g, want 1e9", c.RouterHz)
	}
	if c.MaxSimTime != 300 {
		t.Errorf("MaxSimTime = %g, want 300", c.MaxSimTime)
	}
	if c.SensorBits != 6 {
		t.Errorf("SensorBits = %d, want 6", c.SensorBits)
	}
	if c.FaultSeed != 1 {
		t.Errorf("FaultSeed = %d, want 1", c.FaultSeed)
	}
	if c.NoCMode != NoCModeCycle {
		t.Errorf("NoCMode = %v, want cycle", c.NoCMode)
	}
}

func TestParseNoCMode(t *testing.T) {
	for _, tc := range []struct {
		s    string
		want NoCMode
	}{{"cycle", NoCModeCycle}, {"auto", NoCModeAuto}, {"analytic", NoCModeAnalytic}} {
		got, err := ParseNoCMode(tc.s)
		if err != nil || got != tc.want {
			t.Errorf("ParseNoCMode(%q) = %v, %v", tc.s, got, err)
		}
		if got.String() != tc.s {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), tc.s)
		}
	}
	if _, err := ParseNoCMode("fast"); err == nil {
		t.Error("unknown mode accepted")
	}
}

// TestNoCModesAgree runs one workload under all three NoC modes and bounds
// the drift the fast paths may introduce. The cycle mode is the exact
// reference; auto answers uncongested windows analytically and quantizes the
// memo key; analytic answers every window with the closed form. The bounds
// here are the engine-level drift contract documented in DESIGN.md §11.
func TestNoCModesAgree(t *testing.T) {
	w := genWorkload(t, appmodel.WorkloadMixed, 12, 0.05, 7)
	fw, err := Combo("PARM", "PANR")
	if err != nil {
		t.Fatal(err)
	}
	run := func(mode NoCMode) *Metrics {
		return runOne(t, Config{NoCMode: mode}, fw, w)
	}
	ref := run(NoCModeCycle)
	if ref.Completed == 0 {
		t.Fatal("reference run completed nothing")
	}
	// Per-mode drift bounds. Auto falls back to cycle simulation on every
	// saturated window, so its drift comes only from sub-saturation model
	// error plus memo quantization. Analytic answers saturated windows with
	// the clamped closed form too — out of the model's validity range — so
	// its contract is looser, dominated by the clamped M/D/1 waiting terms.
	for _, tc := range []struct {
		mode                    NoCMode
		timeTol, latTol, psnTol float64
	}{
		{NoCModeAuto, 0.05, 0.35, 0.10},
		{NoCModeAnalytic, 0.10, 1.50, 0.15},
	} {
		m := run(tc.mode)
		if m.Completed+m.Dropped != ref.Completed+ref.Dropped {
			t.Errorf("%v: %d apps finished, want %d", tc.mode, m.Completed+m.Dropped, ref.Completed+ref.Dropped)
		}
		// Drop decisions are discrete; allow at most one app to flip.
		if d := m.Dropped - ref.Dropped; d < -1 || d > 1 {
			t.Errorf("%v: Dropped = %d, cycle = %d (allowed drift 1)", tc.mode, m.Dropped, ref.Dropped)
		}
		if rel := math.Abs(m.TotalTime-ref.TotalTime) / ref.TotalTime; rel > tc.timeTol {
			t.Errorf("%v: TotalTime = %g, cycle = %g (rel drift %.3f > %g)", tc.mode, m.TotalTime, ref.TotalTime, rel, tc.timeTol)
		}
		// The closed form misses phase-locked worm collisions below
		// saturation and overestimates waits above it, so latency carries
		// the loosest bounds of the contract.
		if rel := math.Abs(m.MeanPacketLatency-ref.MeanPacketLatency) / ref.MeanPacketLatency; rel > tc.latTol {
			t.Errorf("%v: MeanPacketLatency = %g, cycle = %g (rel drift %.3f > %g)", tc.mode, m.MeanPacketLatency, ref.MeanPacketLatency, rel, tc.latTol)
		}
		if rel := math.Abs(m.AvgPSN-ref.AvgPSN) / ref.AvgPSN; rel > tc.psnTol {
			t.Errorf("%v: AvgPSN = %g, cycle = %g (rel drift %.3f > %g)", tc.mode, m.AvgPSN, ref.AvgPSN, rel, tc.psnTol)
		}
	}
}

// TestCycleModeUnaffectedByModeField double-checks the determinism contract:
// the zero Config and an explicit NoCModeCycle produce byte-identical
// metrics (the mode field must not perturb the exact path).
func TestCycleModeUnaffectedByModeField(t *testing.T) {
	w := genWorkload(t, appmodel.WorkloadMixed, 8, 0.05, 3)
	fw, err := Combo("PARM", "ICON")
	if err != nil {
		t.Fatal(err)
	}
	a := runOne(t, Config{}, fw, w)
	b := runOne(t, Config{NoCMode: NoCModeCycle}, fw, w)
	if a.TotalTime != b.TotalTime || a.AvgPSN != b.AvgPSN || a.PeakPSN != b.PeakPSN ||
		a.Completed != b.Completed || a.MeanPacketLatency != b.MeanPacketLatency {
		t.Errorf("explicit NoCModeCycle diverged from zero config:\n %+v\n %+v", a, b)
	}
}

// TestQuantizedMemoHits exercises the quantized memo key directly: two flow
// lists whose rates differ by less than half a quantum must share one
// measurement in the non-cycle modes, and must not in cycle mode.
func TestQuantizedMemoHits(t *testing.T) {
	fw, err := Combo("PARM", "XY")
	if err != nil {
		t.Fatal(err)
	}
	// Base rates sit exactly on the quantization grid, so a perturbation
	// below quantum/2 snaps back to the same point and a full quantum moves
	// to the neighboring one.
	mkFlows := func(eps float64) []noc.Flow {
		return []noc.Flow{
			{App: 1, Src: geom.TileID(3), Dst: geom.TileID(27), Rate: 82*nocRateQuantum + eps},
			{App: 1, Src: geom.TileID(27), Dst: geom.TileID(41), Rate: 20*nocRateQuantum + eps},
		}
	}
	const eps = nocRateQuantum / 4
	for _, tc := range []struct {
		mode     NoCMode
		wantHits int
	}{{NoCModeCycle, 0}, {NoCModeAuto, 1}, {NoCModeAnalytic, 1}} {
		e, err := NewEngine(Config{NoCMode: tc.mode}, fw)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.measurementFor(mkFlows(0)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.measurementFor(mkFlows(eps)); err != nil {
			t.Fatal(err)
		}
		if e.nocHits != tc.wantHits {
			t.Errorf("%v: memo hits = %d, want %d", tc.mode, e.nocHits, tc.wantHits)
		}
		// A perturbation beyond half a quantum must miss in every mode.
		if _, err := e.measurementFor(mkFlows(nocRateQuantum)); err != nil {
			t.Fatal(err)
		}
		if e.nocHits != tc.wantHits {
			t.Errorf("%v: full-quantum perturbation hit the memo", tc.mode)
		}
	}
}

// TestAnalyticTelemetryCounters checks the instrumentation split: auto mode
// counts analytic windows and saturated fallbacks separately.
func TestAnalyticTelemetryCounters(t *testing.T) {
	fw, err := Combo("PARM", "XY")
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Config{NoCMode: NoCModeAuto}, fw)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	e.EnableTelemetry(reg)
	// Sparse flow: far below saturation, answered analytically.
	if _, err := e.measurementFor([]noc.Flow{{Src: 0, Dst: 9, Rate: 0.01}}); err != nil {
		t.Fatal(err)
	}
	// Hotspot: many flows converging on one tile saturate its ejection port.
	hot := make([]noc.Flow, 0, 8)
	for i := 1; i <= 8; i++ {
		hot = append(hot, noc.Flow{Src: geom.TileID(i), Dst: 30, Rate: 0.2})
	}
	if _, err := e.measurementFor(hot); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("noc/analytic_windows").Value(); got != 1 {
		t.Errorf("noc/analytic_windows = %d, want 1", got)
	}
	if got := reg.Counter("noc/analytic_fallbacks").Value(); got != 1 {
		t.Errorf("noc/analytic_fallbacks = %d, want 1", got)
	}
}
