package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNodeTableComplete(t *testing.T) {
	if len(Nodes) != 6 {
		t.Fatalf("Nodes has %d entries, want 6", len(Nodes))
	}
	for _, n := range Nodes {
		p, ok := Params(n)
		if !ok {
			t.Fatalf("Params(%v) missing", n)
		}
		if p.Node != n {
			t.Errorf("%v: Node field = %v", n, p.Node)
		}
		if p.VNTC <= p.VTh {
			t.Errorf("%v: VNTC %.2f not above threshold %.2f", n, p.VNTC, p.VTh)
		}
		if p.VNominal <= p.VNTC {
			t.Errorf("%v: VNominal %.2f not above VNTC %.2f", n, p.VNominal, p.VNTC)
		}
		if p.RBump <= 0 || p.LBump <= 0 || p.RGrid <= 0 || p.CDecap <= 0 {
			t.Errorf("%v: non-physical PDN params %+v", n, p)
		}
		if p.CEffCore <= 0 || p.CEffRouter <= 0 || p.FMax <= 0 {
			t.Errorf("%v: non-physical power params", n)
		}
	}
}

func TestParamsUnknownNode(t *testing.T) {
	if _, ok := Params(Node(14)); ok {
		t.Error("Params(14) succeeded for unknown node")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParams(14) did not panic")
		}
	}()
	MustParams(Node(14))
}

func TestNodeString(t *testing.T) {
	if Node7.String() != "7nm" || Node45.String() != "45nm" {
		t.Errorf("Node.String wrong: %s %s", Node7, Node45)
	}
}

// Technology scaling trends that drive the paper's Fig. 1: grid resistance
// rises and decap falls toward newer nodes.
func TestScalingTrends(t *testing.T) {
	for i := 1; i < len(Nodes); i++ {
		older := MustParams(Nodes[i-1])
		newer := MustParams(Nodes[i])
		if newer.RGrid <= older.RGrid {
			t.Errorf("RGrid not increasing from %v to %v", older.Node, newer.Node)
		}
		if newer.CDecap >= older.CDecap {
			t.Errorf("CDecap not decreasing from %v to %v", older.Node, newer.Node)
		}
		if newer.VNominal >= older.VNominal {
			t.Errorf("VNominal not decreasing from %v to %v", older.Node, newer.Node)
		}
	}
}

func TestFrequencyAtNominal(t *testing.T) {
	for _, n := range Nodes {
		p := MustParams(n)
		if got := p.Frequency(p.VNominal); math.Abs(got-p.FMax)/p.FMax > 1e-12 {
			t.Errorf("%v: Frequency(VNominal) = %g, want FMax %g", n, got, p.FMax)
		}
	}
}

func TestFrequencyBelowThreshold(t *testing.T) {
	p := MustParams(Node7)
	if p.Frequency(p.VTh) != 0 {
		t.Error("frequency at threshold not zero")
	}
	if p.Frequency(0.1) != 0 {
		t.Error("frequency below threshold not zero")
	}
	if p.Frequency(-1) != 0 {
		t.Error("frequency at negative vdd not zero")
	}
}

func TestFrequencyMonotonic(t *testing.T) {
	p := MustParams(Node7)
	prev := 0.0
	for v := p.VTh + 0.01; v <= p.VNominal; v += 0.01 {
		f := p.Frequency(v)
		if f <= prev {
			t.Fatalf("frequency not strictly increasing at %.2fV", v)
		}
		prev = f
	}
}

func TestDynamicPowerScaling(t *testing.T) {
	p := MustParams(Node7)
	// P = C V^2 f: doubling activity doubles dynamic power.
	p1 := p.DynamicCorePower(0.6, 0.4)
	p2 := p.DynamicCorePower(0.6, 0.8)
	if math.Abs(float64(p2-2*p1)) > 1e-12 {
		t.Errorf("dynamic power not linear in activity: %g vs %g", p1, p2)
	}
	// Activity is clamped to [0,1].
	if p.DynamicCorePower(0.6, 1.5) != p.DynamicCorePower(0.6, 1.0) {
		t.Error("activity above 1 not clamped")
	}
	if p.DynamicCorePower(0.6, -0.5) != 0 {
		t.Error("negative activity not clamped to zero")
	}
	// Power grows with Vdd (V^2 and f both increase).
	if p.DynamicCorePower(0.8, 0.5) <= p.DynamicCorePower(0.4, 0.5) {
		t.Error("dynamic power not increasing in Vdd")
	}
}

func TestLeakageBehavior(t *testing.T) {
	p := MustParams(Node7)
	want := float64(p.VNominal) * p.LeakCore
	if got := p.LeakagePower(p.VNominal, p.LeakCore); math.Abs(float64(got)-want) > 1e-12 {
		t.Errorf("leakage at nominal = %g, want %g", got, want)
	}
	if p.CoreLeakage(0.4) >= p.CoreLeakage(0.8) {
		t.Error("leakage not increasing in Vdd")
	}
	if p.RouterLeakage(0.6) >= p.CoreLeakage(0.6) {
		t.Error("router leaks more than core")
	}
}

func TestTilePowerComposition(t *testing.T) {
	p := MustParams(Node7)
	v := Volts(0.6)
	sum := p.DynamicCorePower(v, 0.9) + p.CoreLeakage(v) +
		p.DynamicRouterPower(v, 0.3) + p.RouterLeakage(v)
	if got := p.TilePower(v, 0.9, 0.3); math.Abs(float64(got-sum)) > 1e-12 {
		t.Errorf("TilePower = %g, want %g", got, sum)
	}
}

func TestTileCurrent(t *testing.T) {
	p := MustParams(Node7)
	v := Volts(0.5)
	want := float64(p.TilePower(v, 0.5, 0.2)) / float64(v)
	if got := p.TileCurrent(v, 0.5, 0.2); math.Abs(got-want) > 1e-12 {
		t.Errorf("TileCurrent = %g, want %g", got, want)
	}
	if p.TileCurrent(0, 0.5, 0.2) != 0 {
		t.Error("TileCurrent at zero Vdd not zero")
	}
}

// Dark silicon: at nominal voltage a fully lit 60-tile chip must exceed the
// 65 W budget, while at NTC it must fit — the premise of the paper.
func TestDarkSiliconPremise(t *testing.T) {
	p := MustParams(Node7)
	chipNominal := 60 * p.TilePower(p.VNominal, 0.9, 0.4)
	chipNTC := 60 * p.TilePower(p.VNTC, 0.9, 0.4)
	if chipNominal < 65*1.3 {
		t.Errorf("chip at nominal = %.1f W; dark silicon premise needs well above 65 W", chipNominal)
	}
	if chipNTC > 65*0.5 {
		t.Errorf("chip at NTC = %.1f W; NTC should fit comfortably under 65 W", chipNTC)
	}
}

// NoC power share: at full router utilization the router should consume
// roughly 18-30% of tile power for communication-heavy operation (§1: NoCs
// consume a significant share of chip power).
func TestRouterPowerShare(t *testing.T) {
	p := MustParams(Node7)
	v := p.VNTC
	router := p.DynamicRouterPower(v, 1.0) + p.RouterLeakage(v)
	tile := p.TilePower(v, 0.9, 1.0)
	share := router / tile
	if share < 0.15 || share > 0.40 {
		t.Errorf("router power share = %.2f, want 0.15-0.40", share)
	}
}

func TestVddLevels(t *testing.T) {
	p := MustParams(Node7)
	levels := p.VddLevels(0.1)
	want := []float64{0.4, 0.5, 0.6, 0.7, 0.8}
	if len(levels) != len(want) {
		t.Fatalf("VddLevels = %v, want %v", levels, want)
	}
	for i := range want {
		if math.Abs(float64(levels[i])-want[i]) > 1e-9 {
			t.Errorf("level %d = %g, want %g", i, levels[i], want[i])
		}
	}
	// Zero step defaults to 0.1.
	if got := p.VddLevels(0); len(got) != 5 {
		t.Errorf("VddLevels(0) = %v", got)
	}
}

func TestBudgetBasics(t *testing.T) {
	b := NewBudget(65)
	if b.Limit() != 65 || b.Used() != 0 || b.Available() != 65 {
		t.Fatal("fresh budget wrong")
	}
	if !b.Reserve(30) {
		t.Fatal("reserve 30 failed")
	}
	if !b.Reserve(35) {
		t.Fatal("reserve 35 failed")
	}
	if b.Reserve(0.1) {
		t.Fatal("over-reservation succeeded")
	}
	if b.Reserve(-5) {
		t.Fatal("negative reservation succeeded")
	}
	b.Release(35)
	if math.Abs(float64(b.Available()-35)) > 1e-9 {
		t.Errorf("available = %g, want 35", b.Available())
	}
	// Over-release clamps at zero used.
	b.Release(1000)
	if b.Used() != 0 {
		t.Errorf("used after over-release = %g", b.Used())
	}
}

func TestBudgetPanicsOnBadLimit(t *testing.T) {
	for _, w := range []Watts{0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBudget(%g) did not panic", float64(w))
				}
			}()
			NewBudget(w)
		}()
	}
}

// Property: any sequence of successful reservations keeps used <= limit.
func TestBudgetNeverExceedsLimit(t *testing.T) {
	f := func(amounts []float64) bool {
		b := NewBudget(100)
		for _, a := range amounts {
			a = math.Mod(math.Abs(a), 60)
			b.Reserve(Watts(a))
			if b.Used() > b.Limit()+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: reserve followed by release restores the ledger.
func TestBudgetReserveReleaseRoundTrip(t *testing.T) {
	f := func(a float64) bool {
		a = math.Mod(math.Abs(a), 65)
		b := NewBudget(65)
		if !b.Reserve(Watts(a)) {
			return false
		}
		b.Release(Watts(a))
		return math.Abs(float64(b.Used())) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
