// Package power models supply voltage, clock frequency, and core/router
// power consumption for FinFET technology nodes from 45nm down to 7nm.
//
// The paper profiles applications with McPAT and ITRS data at a 7nm FinFET
// node; this package is the analytic substitute (see DESIGN.md). It captures
// the relationships the PARM heuristics depend on:
//
//   - maximum clock frequency grows with Vdd (alpha-power law above Vth);
//   - dynamic power grows as C*V^2*f, leakage grows superlinearly with V;
//   - switching activity of a tile is proportional to its power draw;
//   - per-node parameters (current density, wire resistance, decoupling
//     capacitance) trend so that peak PSN grows as technology scales,
//     reproducing Fig. 1 of the paper.
package power

import "fmt"

// Node identifies a fabrication process technology node.
type Node int

// Technology nodes covered by the model, matching Fig. 1 of the paper.
const (
	Node45 Node = 45
	Node32 Node = 32
	Node22 Node = 22
	Node16 Node = 16
	Node10 Node = 10
	Node7  Node = 7
)

// Nodes lists all supported technology nodes from oldest to newest.
var Nodes = []Node{Node45, Node32, Node22, Node16, Node10, Node7}

// String returns the conventional name of the node, e.g. "7nm".
func (n Node) String() string { return fmt.Sprintf("%dnm", int(n)) }

// NodeParams holds the per-technology-node electrical constants consumed by
// the frequency, power, and PDN models. Values are representative, derived
// from ITRS-style scaling trends rather than a proprietary PDK: each
// generation roughly doubles transistor density, increases current density,
// thins power-grid wires (raising Rc), and leaves less area for decap.
type NodeParams struct {
	Node Node

	// VNominal is the nominal (maximum) supply voltage.
	VNominal Volts
	// VNTC is the near-threshold operating voltage.
	VNTC Volts
	// VTh is the device threshold voltage.
	VTh Volts
	// Alpha is the velocity-saturation exponent of the alpha-power law.
	Alpha float64
	// FMax is the maximum clock frequency in Hz at VNominal.
	FMax float64

	// CEffCore is the effective switched capacitance of one core in farads.
	CEffCore float64
	// CEffRouter is the effective switched capacitance of one NoC router in
	// farads (per-cycle at full utilization).
	CEffRouter float64
	// LeakCore is the core leakage current in amperes at VNominal; leakage
	// scales superlinearly with voltage (see LeakagePower).
	LeakCore float64
	// LeakRouter is the router leakage current in amperes at VNominal.
	LeakRouter float64

	// PDN lumped-element parameters for one 4-tile power supply domain
	// (see package pdn and Fig. 2 of the paper).

	// RBump is the series resistance of the C4 bump + package in ohms.
	RBump float64
	// LBump is the series inductance of the bump + package in henries.
	LBump float64
	// RGrid is the on-chip power-grid resistance between the bump node and a
	// tile, per hop of grid distance, in ohms.
	RGrid float64
	// CDecap is the decoupling capacitance at each tile node in farads.
	CDecap float64
}

// nodeTable holds the calibrated per-node constants. Trends across nodes:
// density and current density rise, wire resistance rises, decap per tile
// falls — together these push peak PSN up at newer nodes (paper Fig. 1).
var nodeTable = map[Node]NodeParams{
	Node45: {
		Node: Node45, VNominal: 1.1, VNTC: 0.55, VTh: 0.40, Alpha: 1.5, FMax: 2.0e9,
		CEffCore: 1.8e-09, CEffRouter: 4.8e-10, LeakCore: 0.18, LeakRouter: 0.045,
		RBump: 0.0012, LBump: 2e-12, RGrid: 0.00225, CDecap: 2.4e-08,
	},
	Node32: {
		Node: Node32, VNominal: 1.0, VNTC: 0.50, VTh: 0.36, Alpha: 1.45, FMax: 2.2e9,
		CEffCore: 1.52e-09, CEffRouter: 4.2e-10, LeakCore: 0.20, LeakRouter: 0.050,
		RBump: 0.00135, LBump: 2.2e-12, RGrid: 0.00315, CDecap: 1.9e-08,
	},
	Node22: {
		Node: Node22, VNominal: 0.95, VNTC: 0.48, VTh: 0.34, Alpha: 1.4, FMax: 2.4e9,
		CEffCore: 1.28e-09, CEffRouter: 3.6e-10, LeakCore: 0.22, LeakRouter: 0.055,
		RBump: 0.0015, LBump: 2.4e-12, RGrid: 0.004275, CDecap: 1.5e-08,
	},
	Node16: {
		Node: Node16, VNominal: 0.90, VNTC: 0.45, VTh: 0.32, Alpha: 1.35, FMax: 2.6e9,
		CEffCore: 1.08e-09, CEffRouter: 3.2e-10, LeakCore: 0.24, LeakRouter: 0.060,
		RBump: 0.00165, LBump: 2.6e-12, RGrid: 0.00585, CDecap: 1.2e-08,
	},
	Node10: {
		Node: Node10, VNominal: 0.85, VNTC: 0.42, VTh: 0.30, Alpha: 1.32, FMax: 2.8e9,
		CEffCore: 9.2e-10, CEffRouter: 2.8e-10, LeakCore: 0.26, LeakRouter: 0.066,
		RBump: 0.0018, LBump: 2.8e-12, RGrid: 0.007875, CDecap: 9.5e-09,
	},
	Node7: {
		Node: Node7, VNominal: 0.80, VNTC: 0.40, VTh: 0.25, Alpha: 1.30, FMax: 3.0e9,
		CEffCore: 8e-10, CEffRouter: 2.4e-10, LeakCore: 0.28, LeakRouter: 0.072,
		RBump: 0.00195, LBump: 3e-12, RGrid: 0.01035, CDecap: 7.5e-09,
	},
}

// Params returns the electrical constants of node n and true, or a zero
// value and false when the node is not in the model.
func Params(n Node) (NodeParams, bool) {
	p, ok := nodeTable[n]
	return p, ok
}

// MustParams returns the electrical constants of node n, panicking for an
// unknown node. Unknown nodes are static misconfiguration, not runtime input.
func MustParams(n Node) NodeParams {
	p, ok := nodeTable[n]
	if !ok {
		panic(fmt.Sprintf("power: unknown technology node %d", int(n)))
	}
	return p
}

// VddLevels returns the permissible supply voltages of node n in increasing
// order: VNTC up to VNominal in the given step (paper: 0.4–0.8 V, 0.1 V
// steps at 7nm).
func (p NodeParams) VddLevels(step Volts) []Volts {
	if step <= 0 {
		step = 0.1
	}
	var out []Volts
	for v := p.VNTC; v <= p.VNominal+1e-9; v += step {
		out = append(out, round3(v))
	}
	return out
}

func round3(v Volts) Volts {
	return Volts(int64(v*1000+0.5)) / 1000
}
