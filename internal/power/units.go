package power

// Named unit types for the physical quantities that cross package
// boundaries. They are plain float64 underneath — zero-cost, printf- and
// JSON-transparent — but the type checker (and the unitsafe analyzer,
// DESIGN.md §7) keeps volts, watts, and seconds from being interchanged
// silently. Untyped constants convert implicitly, so call sites like
// VddLevels(0.1) read naturally; converting between quantities requires an
// explicit float64(...) round-trip at the point of the physics.

// Volts is a supply or threshold voltage.
type Volts float64

// Watts is a power draw or power budget.
type Watts float64

// Seconds is a duration of simulated time.
type Seconds float64
