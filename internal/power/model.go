package power

import (
	"fmt"
	"math"
)

// Frequency returns the maximum stable clock frequency in Hz at supply
// voltage vdd for node parameters p, using the alpha-power law
//
//	f(V) ∝ (V - Vth)^alpha / V
//
// normalized so that f(VNominal) == FMax. Voltages at or below threshold
// yield 0.
func (p NodeParams) Frequency(vdd Volts) float64 {
	if vdd <= p.VTh {
		return 0
	}
	shape := func(v Volts) float64 {
		return math.Pow(float64(v-p.VTh), p.Alpha) / float64(v)
	}
	return p.FMax * shape(vdd) / shape(p.VNominal)
}

// DynamicCorePower returns the dynamic power in watts of one core running at
// vdd with the given switching activity factor in [0,1]. The core clock is
// Frequency(vdd).
func (p NodeParams) DynamicCorePower(vdd Volts, activity float64) Watts {
	v := float64(vdd)
	return Watts(p.CEffCore * v * v * p.Frequency(vdd) * clamp01(activity))
}

// DynamicRouterPower returns the dynamic power in watts of one NoC router at
// vdd with the given utilization (forwarded flits per cycle, per port,
// averaged) in [0,1].
func (p NodeParams) DynamicRouterPower(vdd Volts, utilization float64) Watts {
	v := float64(vdd)
	return Watts(p.CEffRouter * v * v * p.Frequency(vdd) * clamp01(utilization))
}

// LeakagePower returns the leakage power in watts at vdd of a block whose
// leakage current at VNominal is ileakNominal. Leakage current is modeled
// with an exponential voltage dependence (DIBL), roughly halving for each
// 0.15 V below nominal.
func (p NodeParams) LeakagePower(vdd Volts, ileakNominal float64) Watts {
	const diblScale = 0.15 / math.Ln2
	i := ileakNominal * math.Exp(float64(vdd-p.VNominal)/diblScale)
	return Watts(float64(vdd) * i)
}

// CoreLeakage returns the core leakage power in watts at vdd.
func (p NodeParams) CoreLeakage(vdd Volts) Watts {
	return p.LeakagePower(vdd, p.LeakCore)
}

// RouterLeakage returns the router leakage power in watts at vdd.
func (p NodeParams) RouterLeakage(vdd Volts) Watts {
	return p.LeakagePower(vdd, p.LeakRouter)
}

// TilePower returns the total power in watts of one tile (core + router) at
// vdd, given the core switching activity and router utilization factors.
func (p NodeParams) TilePower(vdd Volts, coreActivity, routerUtil float64) Watts {
	return p.DynamicCorePower(vdd, coreActivity) + p.CoreLeakage(vdd) +
		p.DynamicRouterPower(vdd, routerUtil) + p.RouterLeakage(vdd)
}

// TileCurrent returns the average supply current in amperes drawn by one
// tile at vdd with the given activity factors. The PDN solver models each
// tile's workload as a current source of this magnitude (paper §3.4).
func (p NodeParams) TileCurrent(vdd Volts, coreActivity, routerUtil float64) float64 {
	if vdd <= 0 {
		return 0
	}
	return float64(p.TilePower(vdd, coreActivity, routerUtil)) / float64(vdd)
}

// Budget describes a dark-silicon power budget (DsPB) ledger: a thermally
// safe chip power limit with reserve/release accounting, used by the runtime
// manager to admit applications.
type Budget struct {
	limit Watts
	used  Watts
}

// NewBudget returns a ledger with the given limit in watts. It panics for a
// non-positive limit, which is static misconfiguration.
func NewBudget(limit Watts) *Budget {
	if limit <= 0 {
		panic(fmt.Sprintf("power: non-positive DsPB limit %g", float64(limit)))
	}
	return &Budget{limit: limit}
}

// Limit returns the budget limit in watts.
func (b *Budget) Limit() Watts { return b.limit }

// Used returns the currently reserved power in watts.
func (b *Budget) Used() Watts { return b.used }

// Available returns the remaining headroom in watts.
func (b *Budget) Available() Watts { return b.limit - b.used }

// Reserve attempts to reserve w watts, returning false (and reserving
// nothing) if the budget would be exceeded. Negative reservations are
// rejected.
func (b *Budget) Reserve(w Watts) bool {
	if w < 0 || b.used+w > b.limit+1e-12 {
		return false
	}
	b.used += w
	return true
}

// Release returns w watts to the budget. Releasing more than is reserved
// clamps the ledger at zero; the caller's accounting bug should not drive
// the ledger negative and mask later over-subscription.
func (b *Budget) Release(w Watts) {
	b.used -= w
	if b.used < 0 {
		b.used = 0
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
