package pdn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveLinearKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("solution = %v, want [1 3]", x)
	}
}

func TestSolveLinearIdentity(t *testing.T) {
	a := [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	b := []float64{4, -2, 7}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{4, -2, 7} {
		if math.Abs(x[i]-want) > 1e-12 {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want)
		}
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Zero on the diagonal requires partial pivoting.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("solution = %v, want [3 2]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := SolveLinear(a, b); err == nil {
		t.Error("singular system solved without error")
	}
}

// A badly scaled but well-conditioned system (entries around 1e-20, the
// magnitudes produced by pico-Farad decaps and nano-Henry bumps) must solve;
// an absolute pivot threshold would reject it as singular.
func TestSolveLinearTinyMagnitude(t *testing.T) {
	const s = 1e-20
	a := [][]float64{{2 * s, 1 * s}, {1 * s, 3 * s}}
	b := []float64{5 * s, 10 * s}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatalf("tiny well-conditioned system rejected: %v", err)
	}
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Errorf("solution = %v, want [1 3]", x)
	}
}

// The relative test also catches rank deficiency at huge magnitudes, where
// elimination round-off dwarfs any absolute threshold.
func TestSolveLinearSingularLargeScale(t *testing.T) {
	a := [][]float64{{1e20, 2e20}, {2e20, 4e20}}
	b := []float64{1e20, 2e20}
	if _, err := SolveLinear(a, b); err == nil {
		t.Error("rank-deficient large-scale system solved without error")
	}
}

func TestSolveLinearZeroMatrix(t *testing.T) {
	a := [][]float64{{0, 0}, {0, 0}}
	b := []float64{1, 2}
	if _, err := SolveLinear(a, b); err == nil {
		t.Error("zero matrix solved without error")
	}
}

func TestSolveLinearShapeErrors(t *testing.T) {
	if _, err := SolveLinear(nil, nil); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := SolveLinear([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("non-square matrix accepted")
	}
	if _, err := SolveLinear([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched rhs accepted")
	}
}

// Property: for random diagonally dominant systems, the residual a*x - b is
// tiny. Such systems always have a unique solution.
func TestSolveLinearResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := make([][]float64, n)
		orig := make([][]float64, n)
		b := make([]float64, n)
		borig := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = make([]float64, n)
			orig[i] = make([]float64, n)
			sum := 0.0
			for j := 0; j < n; j++ {
				if i != j {
					a[i][j] = rng.Float64()*2 - 1
					sum += math.Abs(a[i][j])
				}
			}
			a[i][i] = sum + 1 + rng.Float64()
			copy(orig[i], a[i])
			b[i] = rng.Float64()*10 - 5
			borig[i] = b[i]
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			r := -borig[i]
			for j := 0; j < n; j++ {
				r += orig[i][j] * x[j]
			}
			if math.Abs(r) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
