package pdn

import (
	"math"
	"sync"
	"testing"

	"parm/internal/power"
)

func solverLoads(p power.NodeParams, vdd power.Volts) [DomainTiles]TileLoad {
	var occ [DomainTiles]TileOccupant
	for i := range occ {
		class := High
		if i%2 == 1 {
			class = Low
		}
		occ[i] = TileOccupant{
			IAvg:      p.TileCurrent(vdd, 0.9, 0.3),
			Class:     class,
			Staggered: true,
		}
	}
	return BuildLoads(occ)
}

// A cached solve must be bit-identical to the same solver's uncached solve:
// the cache key is the exact (quantized) input the integrator sees.
func TestSolverCachedMatchesUncached(t *testing.T) {
	p := power.MustParams(power.Node7)
	cfg := Config{Params: p, Vdd: 0.5}
	loads := solverLoads(p, 0.5)

	uncached := NewSolver(nil)
	want, err := uncached.SimulateDomain(cfg, loads)
	if err != nil {
		t.Fatal(err)
	}
	cached := NewSolver(NewSolveCache())
	for trial := 0; trial < 3; trial++ {
		got, err := cached.SimulateDomain(cfg, loads)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: cached result differs:\n got %+v\nwant %+v", trial, got, want)
		}
	}
	st := cached.cache.Stats()
	if st.Misses != 1 || st.Hits != 2 || st.Entries != 1 {
		t.Errorf("cache stats hits=%d misses=%d entries=%d, want 2/1/1", st.Hits, st.Misses, st.Entries)
	}
}

// Inputs that differ only below the quantization grid hit the same cache
// entry; inputs that differ above it do not.
func TestSolverQuantizationHits(t *testing.T) {
	p := power.MustParams(power.Node7)
	cfg := Config{Params: p, Vdd: 0.5}
	base := solverLoads(p, 0.5)

	s := NewSolver(NewSolveCache())
	if _, err := s.SimulateDomain(cfg, base); err != nil {
		t.Fatal(err)
	}
	jittered := base
	jittered[0].IAvg += iavgQuantum / 8 // below half a grid step: same key
	if _, err := s.SimulateDomain(cfg, jittered); err != nil {
		t.Fatal(err)
	}
	if hits := s.cache.Stats().Hits; hits != 1 {
		t.Errorf("sub-quantum jitter missed the cache (hits=%d)", hits)
	}
	moved := base
	moved[0].IAvg *= 1.05 // 5% load change: distinct key
	if _, err := s.SimulateDomain(cfg, moved); err != nil {
		t.Fatal(err)
	}
	if st := s.cache.Stats(); st.Misses != 2 || st.Entries != 2 {
		t.Errorf("distinct load reused a stale entry (misses=%d entries=%d)", st.Misses, st.Entries)
	}
}

// Quantization perturbs the solution far below the model's fidelity.
func TestSolverCloseToExactPath(t *testing.T) {
	p := power.MustParams(power.Node7)
	cfg := Config{Params: p, Vdd: 0.5}
	loads := solverLoads(p, 0.5)

	exact, err := SimulateDomain(cfg, loads)
	if err != nil {
		t.Fatal(err)
	}
	quant, err := NewSolver(nil).SimulateDomain(cfg, loads)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < DomainTiles; i++ {
		if math.Abs(exact.PeakPSN[i]-quant.PeakPSN[i]) > 1e-4 {
			t.Errorf("tile %d peak: exact %g vs quantized %g", i, exact.PeakPSN[i], quant.PeakPSN[i])
		}
	}
}

// The solver validates like the package-level path.
func TestSolverRejectsBadInput(t *testing.T) {
	p := power.MustParams(power.Node7)
	s := NewSolver(NewSolveCache())
	if _, err := s.SimulateDomain(Config{Params: p, Vdd: -1}, [DomainTiles]TileLoad{}); err == nil {
		t.Error("negative Vdd accepted")
	}
	bad := [DomainTiles]TileLoad{{IAvg: -3}}
	if _, err := s.SimulateDomain(Config{Params: p, Vdd: 0.5}, bad); err == nil {
		t.Error("negative load accepted")
	}
	if s.cache.Stats().Entries != 0 {
		t.Error("invalid inputs were cached")
	}
}

// Scratch buffers must not leak state between solves: interleaving
// different load vectors through one Solver gives the same results as
// fresh solvers.
func TestSolverScratchIsolation(t *testing.T) {
	p := power.MustParams(power.Node7)
	cfg := Config{Params: p, Vdd: 0.5}
	a := solverLoads(p, 0.5)
	var b [DomainTiles]TileLoad // idle domain: zero currents
	b[2] = TileLoad{IAvg: 1.0, Activity: 0.9, BurstHz: HighBurstHz}

	shared := NewSolver(nil)
	ra1, err := shared.SimulateDomain(cfg, a)
	if err != nil {
		t.Fatal(err)
	}
	rb1, err := shared.SimulateDomain(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	ra2, err := NewSolver(nil).SimulateDomain(cfg, a)
	if err != nil {
		t.Fatal(err)
	}
	rb2, err := NewSolver(nil).SimulateDomain(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	if ra1 != ra2 || rb1 != rb2 {
		t.Error("scratch reuse changed results")
	}
}

// A shared SolveCache is safe under concurrent solvers (run with -race).
func TestSolveCacheConcurrent(t *testing.T) {
	p := power.MustParams(power.Node7)
	cache := NewSolveCache()
	vdds := []power.Volts{0.4, 0.5, 0.6, 0.7, 0.8}
	var wg sync.WaitGroup
	results := make([][]Result, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := NewSolver(cache)
			results[w] = make([]Result, len(vdds))
			for rep := 0; rep < 3; rep++ {
				for i, v := range vdds {
					r, err := s.SimulateDomain(Config{Params: p, Vdd: v}, solverLoads(p, v))
					if err != nil {
						t.Error(err)
						return
					}
					results[w][i] = r
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < 8; w++ {
		for i := range vdds {
			if results[w][i] != results[0][i] {
				t.Errorf("worker %d vdd %g diverged", w, vdds[i])
			}
		}
	}
	if st := cache.Stats(); st.Hits+st.Misses != 8*3*uint64(len(vdds)) {
		t.Errorf("stats lost updates: hits=%d misses=%d", st.Hits, st.Misses)
	}
}

// BenchmarkSolverCached measures the memoized hot path against the full
// integration.
func BenchmarkSolverCached(b *testing.B) {
	p := power.MustParams(power.Node7)
	cfg := Config{Params: p, Vdd: 0.5}
	loads := solverLoads(p, 0.5)
	b.Run("miss", func(b *testing.B) {
		s := NewSolver(nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.SimulateDomain(cfg, loads); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		s := NewSolver(NewSolveCache())
		if _, err := s.SimulateDomain(cfg, loads); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.SimulateDomain(cfg, loads); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Driving the cache past maxCacheEntries triggers a wholesale clear, and the
// Stats counters expose it: one clear, maxCacheEntries entries evicted, and
// the population restarted from the overflowing insert.
func TestSolveCacheOverflow(t *testing.T) {
	c := NewSolveCache()
	var k solveKey
	for i := 0; i <= maxCacheEntries; i++ {
		// Distinct keys: vary the quantized average current of tile 0.
		k.loads[0].IAvg = float64(i) * iavgQuantum
		c.store(k, Result{})
	}
	st := c.Stats()
	if st.Clears != 1 {
		t.Errorf("Clears = %d, want 1", st.Clears)
	}
	if st.Evicted != maxCacheEntries {
		t.Errorf("Evicted = %d, want %d", st.Evicted, maxCacheEntries)
	}
	if st.Entries != 1 {
		t.Errorf("Entries = %d, want 1 (the overflowing insert)", st.Entries)
	}
	// The cache still works after the reset.
	if _, ok := c.lookup(k); !ok {
		t.Error("overflowing insert not retrievable after clear")
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Errorf("Hits = %d, want 1", st.Hits)
	}
}
