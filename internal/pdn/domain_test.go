package pdn

import (
	"math"
	"testing"
	"testing/quick"

	"parm/internal/power"
)

func node7() power.NodeParams { return power.MustParams(power.Node7) }

func highOcc(p power.NodeParams, vdd power.Volts, staggered bool) [DomainTiles]TileOccupant {
	var occ [DomainTiles]TileOccupant
	for i := range occ {
		occ[i] = TileOccupant{IAvg: p.TileCurrent(vdd, 0.9, 0.4), Class: High, Staggered: staggered}
	}
	return occ
}

func TestDomainDistance(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 2, 1}, {0, 3, 2}, {1, 2, 2}, {1, 3, 1}, {2, 3, 1},
	}
	for _, c := range cases {
		if got := DomainDistance(c.a, c.b); got != c.want {
			t.Errorf("DomainDistance(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := DomainDistance(c.b, c.a); got != c.want {
			t.Errorf("DomainDistance(%d,%d) not symmetric", c.b, c.a)
		}
	}
}

func TestSimulateDomainIdle(t *testing.T) {
	var loads [DomainTiles]TileLoad
	res, err := SimulateDomain(Config{Params: node7(), Vdd: 0.5}, loads)
	if err != nil {
		t.Fatal(err)
	}
	if peak := res.DomainPeak(); peak > 1e-9 {
		t.Errorf("idle domain peak PSN = %g, want ~0", peak)
	}
	for i, v := range res.MinVoltage {
		if math.Abs(float64(v)-0.5) > 1e-9 {
			t.Errorf("idle tile %d min voltage %g, want 0.5", i, v)
		}
	}
}

func TestSimulateDomainConfigErrors(t *testing.T) {
	var loads [DomainTiles]TileLoad
	if _, err := SimulateDomain(Config{Params: node7(), Vdd: 0}, loads); err == nil {
		t.Error("zero Vdd accepted")
	}
	if _, err := SimulateDomain(Config{Vdd: 0.5}, loads); err == nil {
		t.Error("zero node params accepted")
	}
	bad := loads
	bad[0] = TileLoad{IAvg: -1}
	if _, err := SimulateDomain(Config{Params: node7(), Vdd: 0.5}, bad); err == nil {
		t.Error("negative current accepted")
	}
	bad = loads
	bad[1] = TileLoad{IAvg: 0.1, Activity: 1.5}
	if _, err := SimulateDomain(Config{Params: node7(), Vdd: 0.5}, bad); err == nil {
		t.Error("activity > 1 accepted")
	}
}

func TestSimulateDomainBasicPhysics(t *testing.T) {
	p := node7()
	res, err := SimulateDomain(Config{Params: p, Vdd: 0.5}, BuildLoads(highOcc(p, 0.5, false)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < DomainTiles; i++ {
		if res.PeakPSN[i] <= 0 {
			t.Errorf("tile %d peak PSN not positive", i)
		}
		if res.AvgPSN[i] <= 0 || res.AvgPSN[i] > res.PeakPSN[i] {
			t.Errorf("tile %d avg PSN %g inconsistent with peak %g", i, res.AvgPSN[i], res.PeakPSN[i])
		}
		if res.MinVoltage[i] >= 0.5 || res.MinVoltage[i] <= 0 {
			t.Errorf("tile %d min voltage %g out of range", i, res.MinVoltage[i])
		}
		// Peak PSN and min voltage must agree.
		droop := float64(0.5-res.MinVoltage[i]) / 0.5
		if math.Abs(droop-res.PeakPSN[i]) > 1e-9 {
			t.Errorf("tile %d droop %g != peak %g", i, droop, res.PeakPSN[i])
		}
	}
	if res.Steps <= 0 {
		t.Error("no integration steps recorded")
	}
}

// Peak PSN grows with Vdd (paper Fig. 3a).
func TestPSNIncreasesWithVdd(t *testing.T) {
	p := node7()
	prev := 0.0
	for _, v := range p.VddLevels(0.1) {
		res, err := SimulateDomain(Config{Params: p, Vdd: v}, BuildLoads(highOcc(p, v, false)))
		if err != nil {
			t.Fatal(err)
		}
		if res.DomainPeak() <= prev {
			t.Fatalf("peak PSN not increasing at %.1fV: %g <= %g", v, res.DomainPeak(), prev)
		}
		prev = res.DomainPeak()
	}
}

// Peak PSN at NTC grows toward newer technology nodes (paper Fig. 1), and
// only sub-10nm nodes cross the 5% VE margin.
func TestPSNIncreasesWithTechScaling(t *testing.T) {
	prev := 0.0
	for _, n := range power.Nodes {
		p := power.MustParams(n)
		res, err := SimulateDomain(Config{Params: p, Vdd: p.VNTC}, BuildLoads(highOcc(p, p.VNTC, false)))
		if err != nil {
			t.Fatal(err)
		}
		peak := res.DomainPeak()
		if peak <= prev {
			t.Fatalf("peak PSN not increasing at %v: %g <= %g", n, peak, prev)
		}
		if n == power.Node45 && peak > VEThreshold {
			t.Errorf("45nm peak %g already above the VE margin", peak)
		}
		if n == power.Node7 && peak < VEThreshold {
			t.Errorf("7nm peak %g below the VE margin; Fig 1 premise broken", peak)
		}
		prev = peak
	}
}

// Staggering same-class threads cancels common-mode droop (the lever behind
// the PARM clustering heuristic).
func TestStaggeringReducesPeak(t *testing.T) {
	p := node7()
	for _, v := range []power.Volts{0.4, 0.6, 0.8} {
		aligned, err := SimulateDomain(Config{Params: p, Vdd: v}, BuildLoads(highOcc(p, v, false)))
		if err != nil {
			t.Fatal(err)
		}
		staggered, err := SimulateDomain(Config{Params: p, Vdd: v}, BuildLoads(highOcc(p, v, true)))
		if err != nil {
			t.Fatal(err)
		}
		if staggered.DomainPeak() >= aligned.DomainPeak()*0.8 {
			t.Errorf("at %.1fV staggering saved too little: %g vs %g",
				v, staggered.DomainPeak(), aligned.DomainPeak())
		}
	}
}

func pairOcc(p power.NodeParams, vdd power.Volts, a, b Class, sa, sb int) [DomainTiles]TileOccupant {
	var occ [DomainTiles]TileOccupant
	mk := func(c Class) TileOccupant {
		act := 0.9
		if c == Low {
			act = 0.35
		}
		return TileOccupant{IAvg: p.TileCurrent(vdd, act, 0.3), Class: c}
	}
	occ[sa], occ[sb] = mk(a), mk(b)
	return occ
}

// relInterference returns the maximum relative increase of a tile's peak
// PSN over running alone — the Fig. 3b quantity.
func relInterference(t *testing.T, a, b Class, sa, sb int) float64 {
	t.Helper()
	p := node7()
	cfg := Config{Params: p, Vdd: 0.5}
	pair, err := SimulateDomain(cfg, BuildLoads(pairOcc(p, 0.5, a, b, sa, sb)))
	if err != nil {
		t.Fatal(err)
	}
	solo := func(c Class, s int) float64 {
		var occ [DomainTiles]TileOccupant
		po := pairOcc(p, 0.5, c, c, s, s)
		occ[s] = po[s]
		r, err := SimulateDomain(cfg, BuildLoads(occ))
		if err != nil {
			t.Fatal(err)
		}
		return r.PeakPSN[s]
	}
	ra := (pair.PeakPSN[sa] - solo(a, sa)) / solo(a, sa)
	rb := (pair.PeakPSN[sb] - solo(b, sb)) / solo(b, sb)
	return math.Max(ra, rb)
}

// The Fig. 3b orderings: High-Low interferes more than High-High and
// Low-Low, and 2-hop separation interferes less than 1-hop.
func TestInterferenceOrdering(t *testing.T) {
	hl1 := relInterference(t, High, Low, 0, 1)
	hh1 := relInterference(t, High, High, 0, 1)
	ll1 := relInterference(t, Low, Low, 0, 1)
	hl2 := relInterference(t, High, Low, 0, 3)
	if hl1 <= hh1 {
		t.Errorf("High-Low interference %g not above High-High %g", hl1, hh1)
	}
	if hl1 <= ll1 {
		t.Errorf("High-Low interference %g not above Low-Low %g", hl1, ll1)
	}
	if hl2 >= hl1 {
		t.Errorf("2-hop interference %g not below 1-hop %g", hl2, hl1)
	}
	// The paper quantifies the distance effect as "up to 10% less".
	if (hl1-hl2)/hl1 < 0.03 {
		t.Errorf("distance effect too weak: 1hop %g vs 2hop %g", hl1, hl2)
	}
}

// DC sanity: with constant loads (activity 0) the solution settles to the
// resistive operating point, with droop proportional to current.
func TestDCOperatingPoint(t *testing.T) {
	p := node7()
	var loads [DomainTiles]TileLoad
	for i := range loads {
		loads[i] = TileLoad{IAvg: 0.3} // no switching component
	}
	res, err := SimulateDomain(Config{Params: p, Vdd: 0.5}, loads)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-computed DC droop: symmetric load means no grid current; drop =
	// Itotal*Rb + I*Rv.
	wantDrop := 4*0.3*p.RBump + 0.3*p.RGrid*1.5
	for i := 0; i < DomainTiles; i++ {
		gotDrop := float64(0.5 - res.MinVoltage[i])
		if math.Abs(gotDrop-wantDrop)/wantDrop > 0.02 {
			t.Errorf("tile %d DC drop %g, want %g", i, gotDrop, wantDrop)
		}
		// Peak and average coincide in steady state.
		if math.Abs(res.PeakPSN[i]-res.AvgPSN[i]) > 1e-6 {
			t.Errorf("tile %d DC peak %g != avg %g", i, res.PeakPSN[i], res.AvgPSN[i])
		}
	}
}

// Property: PSN grows monotonically with uniform load current.
func TestPSNMonotonicInCurrent(t *testing.T) {
	p := node7()
	f := func(scaleRaw uint8) bool {
		s := 0.1 + float64(scaleRaw)/255*0.8
		var small, large [DomainTiles]TileLoad
		for i := range small {
			small[i] = TileLoad{IAvg: 0.2 * s, Activity: 0.8}
			large[i] = TileLoad{IAvg: 0.2 * s * 1.5, Activity: 0.8}
		}
		rs, err1 := SimulateDomain(Config{Params: p, Vdd: 0.5}, small)
		rl, err2 := SimulateDomain(Config{Params: p, Vdd: 0.5}, large)
		return err1 == nil && err2 == nil && rl.DomainPeak() > rs.DomainPeak()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// The tabulated fast-path current waveform must match the analytic one.
func TestCurrentTableMatchesAnalytic(t *testing.T) {
	p := node7()
	loads := BuildLoads(highOcc(p, 0.5, true))
	c := newCircuit(Config{Params: p, Vdd: 0.5, BurstHz: 125e6}.withDefaults(), loads)
	h := 20e-12
	table := c.currentTable(h, 100, &solverScratch{})
	for k := 0; k <= 200; k++ {
		tm := float64(k) * h / 2
		for i := 0; i < DomainTiles; i++ {
			want := c.current(i, tm)
			got := table[i][k]
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("table[%d][%d] = %g, want %g", i, k, got, want)
			}
		}
	}
}

// The tabulated RK4 derivative path equals derivAt.
func TestDerivConsistency(t *testing.T) {
	p := node7()
	loads := BuildLoads(highOcc(p, 0.5, false))
	c := newCircuit(Config{Params: p, Vdd: 0.5, BurstHz: 125e6}.withDefaults(), loads)
	st, err := c.dcOperatingPoint(&solverScratch{})
	if err != nil {
		t.Fatal(err)
	}
	var cur [DomainTiles]float64
	for i := range cur {
		cur[i] = c.current(i, 3e-9)
	}
	d1 := c.deriv(st, &cur)
	d2 := c.derivAt(st, 3e-9)
	if math.Abs(d1.il-d2.il) > 1e-6*math.Abs(d2.il) || math.Abs(d1.vb-d2.vb) > 1e-6 {
		t.Error("deriv and derivAt disagree")
	}
}

// Determinism: identical inputs give bitwise identical results.
func TestSimulateDomainDeterministic(t *testing.T) {
	p := node7()
	loads := BuildLoads(highOcc(p, 0.6, true))
	r1, err1 := SimulateDomain(Config{Params: p, Vdd: 0.6}, loads)
	r2, err2 := SimulateDomain(Config{Params: p, Vdd: 0.6}, loads)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1 != *(&r2) {
		t.Error("repeated simulation differs")
	}
}

func TestResultAggregates(t *testing.T) {
	r := Result{PeakPSN: [DomainTiles]float64{0.01, 0.04, 0.02, 0.03},
		AvgPSN: [DomainTiles]float64{0.01, 0.02, 0.03, 0.04}}
	if r.DomainPeak() != 0.04 {
		t.Errorf("DomainPeak = %g", r.DomainPeak())
	}
	if math.Abs(r.DomainAvg()-0.025) > 1e-12 {
		t.Errorf("DomainAvg = %g", r.DomainAvg())
	}
}
