package pdn

import (
	"encoding/binary"
	"math"
	"testing"

	"parm/internal/power"
)

// FuzzSolveLinear pins the solver's output contract: for any finite 3x3
// system, a nil error means every solution component is finite. Singular and
// ill-conditioned systems must be rejected with an error, never answered
// with NaN/Inf voltages — a non-finite DC operating point would poison an
// entire transient solve silently.
func FuzzSolveLinear(f *testing.F) {
	// Seed corpus: identity, a well-conditioned dense system, a singular
	// system (duplicate rows), a near-singular one, and wide dynamic range.
	f.Add(1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 1.0, 2.0, 3.0)
	f.Add(4.0, 1.0, 2.0, 1.0, 5.0, 1.0, 2.0, 1.0, 6.0, 7.0, 8.0, 9.0)
	f.Add(1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 1.0, 1.0, 1.0)
	f.Add(1.0, 1.0, 1.0, 1.0, 1.0, 1.0+1e-15, 1.0, 1.0, 2.0, 1.0, 1.0, 1.0)
	f.Add(1e-300, 0.0, 0.0, 0.0, 1e300, 0.0, 0.0, 0.0, 1.0, 1e-300, 1e300, 1.0)

	f.Fuzz(func(t *testing.T,
		a00, a01, a02, a10, a11, a12, a20, a21, a22, b0, b1, b2 float64) {
		vals := []float64{a00, a01, a02, a10, a11, a12, a20, a21, a22, b0, b1, b2}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip("contract covers finite inputs only")
			}
		}
		a := [][]float64{
			{a00, a01, a02},
			{a10, a11, a12},
			{a20, a21, a22},
		}
		b := []float64{b0, b1, b2}
		x, err := SolveLinear(a, b)
		if err != nil {
			return // rejection is always acceptable
		}
		for i, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("SolveLinear returned non-finite x[%d]=%g with nil error", i, v)
			}
		}
	})
}

// FuzzExpm pins the matrix exponential's finiteness contract: for any finite
// 6x6 input, a nil error means every entry of Φ is finite. Overflowing or
// non-finite cases must be rejected with an error, never answered with
// NaN/Inf — a poisoned step propagator would corrupt every subsequent expm
// solve served from the Solver's Φ cache.
func FuzzExpm(f *testing.F) {
	seed := func(vals ...float64) {
		var m [ltiStates][ltiStates]float64
		for k, v := range vals {
			m[k/ltiStates][k%ltiStates] = v
		}
		buf := make([]byte, 8*ltiStates*ltiStates)
		for i := 0; i < ltiStates; i++ {
			for j := 0; j < ltiStates; j++ {
				binary.LittleEndian.PutUint64(buf[8*(i*ltiStates+j):], math.Float64bits(m[i][j]))
			}
		}
		f.Add(buf)
	}
	// Zero matrix, identity-ish, and the real A·h of the default 7nm solve
	// (huge off-diagonal dynamic range: 1/lb ~ 3e11 against gv/cb ~ 1e9).
	seed()
	seed(1, 0, 0, 0, 0, 0, 0, 1)
	{
		cfg := Config{Params: power.MustParams(power.Node7), Vdd: 0.5}.withDefaults()
		c := newCircuit(cfg, [DomainTiles]TileLoad{})
		a := c.ltiMatrix()
		h := float64(cfg.Dt)
		flat := make([]float64, 0, ltiStates*ltiStates)
		for i := range a {
			for j := range a[i] {
				flat = append(flat, a[i][j]*h)
			}
		}
		seed(flat...)
	}
	seed(709, 0, 0, 0, 0, 0, 0, 710) // exp near the float64 overflow edge

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8*ltiStates*ltiStates {
			t.Skip("short input")
		}
		var m [ltiStates][ltiStates]float64
		for i := 0; i < ltiStates; i++ {
			for j := 0; j < ltiStates; j++ {
				v := math.Float64frombits(binary.LittleEndian.Uint64(data[8*(i*ltiStates+j):]))
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Skip("contract covers finite inputs only")
				}
				m[i][j] = v
			}
		}
		phi, err := expm6(&m)
		if err != nil {
			return // rejection is always acceptable
		}
		for i := range phi {
			for j := range phi[i] {
				if math.IsNaN(phi[i][j]) || math.IsInf(phi[i][j], 0) {
					t.Fatalf("expm6 returned non-finite Φ[%d][%d]=%g with nil error", i, j, phi[i][j])
				}
			}
		}
	})
}
