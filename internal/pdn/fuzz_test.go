package pdn

import (
	"math"
	"testing"
)

// FuzzSolveLinear pins the solver's output contract: for any finite 3x3
// system, a nil error means every solution component is finite. Singular and
// ill-conditioned systems must be rejected with an error, never answered
// with NaN/Inf voltages — a non-finite DC operating point would poison an
// entire transient solve silently.
func FuzzSolveLinear(f *testing.F) {
	// Seed corpus: identity, a well-conditioned dense system, a singular
	// system (duplicate rows), a near-singular one, and wide dynamic range.
	f.Add(1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 1.0, 2.0, 3.0)
	f.Add(4.0, 1.0, 2.0, 1.0, 5.0, 1.0, 2.0, 1.0, 6.0, 7.0, 8.0, 9.0)
	f.Add(1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 1.0, 1.0, 1.0)
	f.Add(1.0, 1.0, 1.0, 1.0, 1.0, 1.0+1e-15, 1.0, 1.0, 2.0, 1.0, 1.0, 1.0)
	f.Add(1e-300, 0.0, 0.0, 0.0, 1e300, 0.0, 0.0, 0.0, 1.0, 1e-300, 1e300, 1.0)

	f.Fuzz(func(t *testing.T,
		a00, a01, a02, a10, a11, a12, a20, a21, a22, b0, b1, b2 float64) {
		vals := []float64{a00, a01, a02, a10, a11, a12, a20, a21, a22, b0, b1, b2}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip("contract covers finite inputs only")
			}
		}
		a := [][]float64{
			{a00, a01, a02},
			{a10, a11, a12},
			{a20, a21, a22},
		}
		b := []float64{b0, b1, b2}
		x, err := SolveLinear(a, b)
		if err != nil {
			return // rejection is always acceptable
		}
		for i, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("SolveLinear returned non-finite x[%d]=%g with nil error", i, v)
			}
		}
	})
}
