package pdn

import "fmt"

// Sensor models the on-die digital voltage-noise sensor network of the paper
// (§3.3, [16]): it quantizes instantaneous PSN readings to a fixed number of
// bits and exposes the most recent sample per tile. The routing and mapping
// logic read quantized values, never the analog waveform, mirroring what
// real hardware provides.
type Sensor struct {
	bits      uint
	fullScale float64
	levels    float64
	readings  []float64
}

// NewSensor returns a sensor bank covering numTiles tiles, quantizing PSN
// fractions in [0, fullScale] to the given number of bits. The paper's VE
// threshold is 5%, so a fullScale of ~0.2 with 6 bits gives sub-0.5%
// resolution. It panics on non-positive sizing, which is static
// misconfiguration.
func NewSensor(numTiles int, bits uint, fullScale float64) *Sensor {
	if numTiles <= 0 || bits == 0 || bits > 16 || fullScale <= 0 {
		panic(fmt.Sprintf("pdn: invalid sensor config tiles=%d bits=%d fs=%g",
			numTiles, bits, fullScale))
	}
	return &Sensor{
		bits:      bits,
		fullScale: fullScale,
		levels:    float64(int(1)<<bits - 1),
		readings:  make([]float64, numTiles),
	}
}

// Record quantizes and stores a PSN sample (fraction of Vdd) for tile i.
// Values outside [0, fullScale] are clamped, as a saturating ADC would.
// Out-of-range tile indices are ignored, matching Read's "unpopulated
// sensor" semantics: a write to a tile without a sensor is dropped rather
// than panicking.
func (s *Sensor) Record(i int, psn float64) {
	if i < 0 || i >= len(s.readings) {
		return
	}
	if psn < 0 {
		psn = 0
	}
	if psn > s.fullScale {
		psn = s.fullScale
	}
	code := float64(int(psn/s.fullScale*s.levels + 0.5))
	s.readings[i] = code / s.levels * s.fullScale
}

// Read returns the last quantized PSN sample of tile i, or 0 when the tile
// index is out of range (an unpopulated sensor reads as quiet).
func (s *Sensor) Read(i int) float64 {
	if i < 0 || i >= len(s.readings) {
		return 0
	}
	return s.readings[i]
}

// Resolution returns the quantization step of the sensor in PSN fraction.
func (s *Sensor) Resolution() float64 { return s.fullScale / s.levels }

// NumTiles returns the number of tiles covered by the sensor bank.
func (s *Sensor) NumTiles() int { return len(s.readings) }
