package pdn

import (
	"math"
	"testing"

	"parm/internal/power"
)

// ltiTestLoads is a grid of load signatures spanning the shapes the runtime
// produces: idle, DC-only, single-tile, aligned same-class, staggered
// same-class, mixed-class, and an asymmetric worst case.
func ltiTestLoads(p power.NodeParams, vdd power.Volts) map[string][DomainTiles]TileLoad {
	i := p.TileCurrent(vdd, 0.9, 0.4)
	occ := func(classes [DomainTiles]Class, staggered bool) [DomainTiles]TileLoad {
		var o [DomainTiles]TileOccupant
		for k, cl := range classes {
			if cl == Idle {
				continue
			}
			o[k] = TileOccupant{IAvg: i, Class: cl, Staggered: staggered}
		}
		return BuildLoads(o)
	}
	return map[string][DomainTiles]TileLoad{
		"idle":      {},
		"dcOnly":    {{IAvg: i}, {IAvg: i / 2}, {IAvg: i / 3}, {IAvg: i / 4}},
		"single":    occ([DomainTiles]Class{High, Idle, Idle, Idle}, false),
		"aligned":   occ([DomainTiles]Class{High, High, High, High}, false),
		"staggered": occ([DomainTiles]Class{High, High, High, High}, true),
		"mixed":     occ([DomainTiles]Class{High, Low, High, Low}, true),
		"lopsided":  occ([DomainTiles]Class{High, High, Low, Idle}, false),
	}
}

// Cross-check of the exact solver modes against the RK4 reference, across
// every technology node and the load-signature grid. The expm mode solves
// the same initial-value problem as RK4 exactly, so it must agree to the
// integrator's truncation error; the phasor mode drops the decaying
// start-up transient, so it is held to the looser steady-state bound the
// acceptance criterion names (1e-3 absolute on PeakPSN).
func TestModesAgree(t *testing.T) {
	const (
		expmTol       = 1e-6 // rk4 truncation at h=20ps
		steadyPeakTol = 1e-3 // residual transient in the measured window
		steadyAvgTol  = 1e-3
	)
	for _, n := range power.Nodes {
		p := power.MustParams(n)
		for _, vdd := range []power.Volts{p.VNTC, p.VNominal} {
			loads := ltiTestLoads(p, vdd)
			for _, name := range []string{"idle", "dcOnly", "single", "aligned", "staggered", "mixed", "lopsided"} {
				ld := loads[name]
				run := func(m Mode) Result {
					r, err := SimulateDomain(Config{Params: p, Vdd: vdd, Mode: m}, ld)
					if err != nil {
						t.Fatalf("%v %s %v: %v", n, name, m, err)
					}
					return r
				}
				rk4, expm, ph := run(ModeRK4), run(ModeExpm), run(ModePhasor)
				for i := 0; i < DomainTiles; i++ {
					if d := math.Abs(rk4.PeakPSN[i] - expm.PeakPSN[i]); d > expmTol {
						t.Errorf("%v %s vdd=%.2f tile %d: |rk4-expm| peak dev %.3g > %g",
							n, name, float64(vdd), i, d, expmTol)
					}
					if d := math.Abs(rk4.AvgPSN[i] - expm.AvgPSN[i]); d > expmTol {
						t.Errorf("%v %s vdd=%.2f tile %d: |rk4-expm| avg dev %.3g > %g",
							n, name, float64(vdd), i, d, expmTol)
					}
					if d := math.Abs(rk4.PeakPSN[i] - ph.PeakPSN[i]); d > steadyPeakTol {
						t.Errorf("%v %s vdd=%.2f tile %d: |rk4-phasor| peak dev %.3g > %g",
							n, name, float64(vdd), i, d, steadyPeakTol)
					}
					if d := math.Abs(rk4.AvgPSN[i] - ph.AvgPSN[i]); d > steadyAvgTol {
						t.Errorf("%v %s vdd=%.2f tile %d: |rk4-phasor| avg dev %.3g > %g",
							n, name, float64(vdd), i, d, steadyAvgTol)
					}
				}
			}
		}
	}
}

// Every mode is individually deterministic: repeated identical solves are
// bit-identical, through a Solver (cached and uncached) and the one-shot
// path alike.
func TestModesDeterministic(t *testing.T) {
	p := power.MustParams(power.Node7)
	loads := ltiTestLoads(p, 0.5)["mixed"]
	for _, m := range []Mode{ModeRK4, ModeExpm, ModePhasor} {
		cfg := Config{Params: p, Vdd: 0.5, Mode: m}
		ref, err := SimulateDomain(cfg, loads)
		if err != nil {
			t.Fatal(err)
		}
		again, err := SimulateDomain(cfg, loads)
		if err != nil {
			t.Fatal(err)
		}
		if ref != again {
			t.Errorf("%v: repeated one-shot solves differ", m)
		}
		// The Solver path quantizes the load signature before solving, so it
		// is compared against itself (cache hit vs miss), not the one-shot.
		s := NewSolver(NewSolveCache())
		sref, err := s.SimulateDomain(cfg, loads)
		if err != nil {
			t.Fatal(err)
		}
		uncached := NewSolver(nil)
		for rep := 0; rep < 3; rep++ {
			r, err := s.SimulateDomain(cfg, loads)
			if err != nil {
				t.Fatal(err)
			}
			if r != sref {
				t.Errorf("%v rep %d: cached solver result drifted", m, rep)
			}
			if r2, err := uncached.SimulateDomain(cfg, loads); err != nil || r2 != sref {
				t.Errorf("%v rep %d: uncached solver differs from cached (%v)", m, rep, err)
			}
		}
	}
}

// ModeAuto resolves to the phasor fast path and shares its cache entries.
func TestModeAutoIsPhasor(t *testing.T) {
	p := power.MustParams(power.Node7)
	loads := ltiTestLoads(p, 0.5)["aligned"]
	auto, err := SimulateDomain(Config{Params: p, Vdd: 0.5}, loads)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := SimulateDomain(Config{Params: p, Vdd: 0.5, Mode: ModePhasor}, loads)
	if err != nil {
		t.Fatal(err)
	}
	if auto != ph {
		t.Error("ModeAuto result differs from ModePhasor")
	}
	s := NewSolver(NewSolveCache())
	if _, err := s.SimulateDomain(Config{Params: p, Vdd: 0.5}, loads); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SimulateDomain(Config{Params: p, Vdd: 0.5, Mode: ModePhasor}, loads); err != nil {
		t.Fatal(err)
	}
	if st := s.cache.Stats(); st.Hits != 1 || st.Entries != 1 {
		t.Errorf("auto and phasor use distinct cache entries: %+v", st)
	}
	if ModeRK4.resolved() != ModeRK4 {
		t.Error("resolved() rewrote an explicit mode")
	}
}

// Unknown mode values are rejected, not silently defaulted.
func TestUnknownModeRejected(t *testing.T) {
	p := power.MustParams(power.Node7)
	if _, err := SimulateDomain(Config{Params: p, Vdd: 0.5, Mode: Mode(99)}, [DomainTiles]TileLoad{}); err == nil {
		t.Error("Mode(99) accepted")
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeAuto: "auto", ModeRK4: "rk4", ModeExpm: "expm", ModePhasor: "phasor",
	} {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", m, got, want)
		}
	}
}

// A DC-only signature (no switching activity) has no harmonics: the phasor
// solution is exactly the DC operating point, with peak == avg droop.
func TestPhasorDCOnly(t *testing.T) {
	p := power.MustParams(power.Node7)
	loads := [DomainTiles]TileLoad{{IAvg: 0.3}, {IAvg: 0.3}, {IAvg: 0.3}, {IAvg: 0.3}}
	res, err := SimulateDomain(Config{Params: p, Vdd: 0.5, Mode: ModePhasor}, loads)
	if err != nil {
		t.Fatal(err)
	}
	wantDrop := 4*0.3*p.RBump + 0.3*p.RGrid*1.5
	for i := 0; i < DomainTiles; i++ {
		if math.Abs(res.PeakPSN[i]-res.AvgPSN[i]) > 1e-12 {
			t.Errorf("tile %d: DC peak %g != avg %g", i, res.PeakPSN[i], res.AvgPSN[i])
		}
		gotDrop := float64(0.5 - res.MinVoltage[i])
		if math.Abs(gotDrop-wantDrop)/wantDrop > 0.02 {
			t.Errorf("tile %d DC drop %g, want %g", i, gotDrop, wantDrop)
		}
	}
}

// mulVec6 multiplies a 6x6 matrix by a 6-vector (test helper).
func mulVec6(m *[ltiStates][ltiStates]float64, v [ltiStates]float64) [ltiStates]float64 {
	var out [ltiStates]float64
	for i := 0; i < ltiStates; i++ {
		for j := 0; j < ltiStates; j++ {
			out[i] += m[i][j] * v[j]
		}
	}
	return out
}

// The state matrix must reproduce deriv: A·x + u(t) == deriv(x, I(t)) for
// arbitrary states, with u the source term plus the tile currents.
func TestLTIMatrixMatchesDeriv(t *testing.T) {
	p := power.MustParams(power.Node7)
	loads := ltiTestLoads(p, 0.5)["mixed"]
	c := newCircuit(Config{Params: p, Vdd: 0.5}.withDefaults(), loads)
	a := c.ltiMatrix()
	st := state{il: 0.7, vb: 0.48, vt: [DomainTiles]float64{0.47, 0.46, 0.45, 0.44}}
	tm := 2.3e-9
	want := c.derivAt(st, tm)

	x := [ltiStates]float64{st.il, st.vb, st.vt[0], st.vt[1], st.vt[2], st.vt[3]}
	got := mulVec6(&a, x)
	got[0] += c.vs / c.lb
	for i := 0; i < DomainTiles; i++ {
		got[2+i] -= c.current(i, tm) / c.cd
	}
	wantVec := [ltiStates]float64{want.il, want.vb, want.vt[0], want.vt[1], want.vt[2], want.vt[3]}
	for i := range got {
		if math.Abs(got[i]-wantVec[i]) > 1e-6*(1+math.Abs(wantVec[i])) {
			t.Errorf("component %d: A·x+u = %g, deriv = %g", i, got[i], wantVec[i])
		}
	}
}

// expm6 unit checks: exp(0) = I, exp of a diagonal matrix, the semigroup
// property exp(2A) = exp(A)², and rejection of non-finite input.
func TestExpm6(t *testing.T) {
	var zero [ltiStates][ltiStates]float64
	phi, err := expm6(&zero)
	if err != nil {
		t.Fatal(err)
	}
	for i := range phi {
		for j := range phi[i] {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(phi[i][j]-want) > 1e-14 {
				t.Errorf("exp(0)[%d][%d] = %g", i, j, phi[i][j])
			}
		}
	}

	var diag [ltiStates][ltiStates]float64
	d := [ltiStates]float64{-1, 0.5, 2, -3, 0, 7}
	for i, v := range d {
		diag[i][i] = v
	}
	phi, err = expm6(&diag)
	if err != nil {
		t.Fatal(err)
	}
	for i := range phi {
		for j := range phi[i] {
			want := 0.0
			if i == j {
				want = math.Exp(d[i])
			}
			if math.Abs(phi[i][j]-want) > 1e-12*(1+want) {
				t.Errorf("exp(diag)[%d][%d] = %g, want %g", i, j, phi[i][j], want)
			}
		}
	}

	p := power.MustParams(power.Node7)
	c := newCircuit(Config{Params: p, Vdd: 0.5}.withDefaults(), [DomainTiles]TileLoad{})
	a := c.ltiMatrix()
	h := 20e-12
	var ah, a2h [ltiStates][ltiStates]float64
	for i := range a {
		for j := range a[i] {
			ah[i][j] = a[i][j] * h
			a2h[i][j] = a[i][j] * 2 * h
		}
	}
	phiH, err := expm6(&ah)
	if err != nil {
		t.Fatal(err)
	}
	phi2H, err := expm6(&a2h)
	if err != nil {
		t.Fatal(err)
	}
	sq := mul6(&phiH, &phiH)
	for i := range sq {
		for j := range sq[i] {
			if math.Abs(sq[i][j]-phi2H[i][j]) > 1e-9*(1+math.Abs(phi2H[i][j])) {
				t.Errorf("semigroup violated at [%d][%d]: %g vs %g", i, j, sq[i][j], phi2H[i][j])
			}
		}
	}

	bad := zero
	bad[3][4] = math.NaN()
	if _, err := expm6(&bad); err == nil {
		t.Error("NaN input accepted")
	}
	bad[3][4] = math.Inf(1)
	if _, err := expm6(&bad); err == nil {
		t.Error("Inf input accepted")
	}
}

// The admittance factorization solves (jωI - A)X = F: multiply back and
// compare.
func TestAdmittanceFactorization(t *testing.T) {
	p := power.MustParams(power.Node7)
	c := newCircuit(Config{Params: p, Vdd: 0.5}.withDefaults(), [DomainTiles]TileLoad{})
	a := c.ltiMatrix()
	omega := 2 * math.Pi * 125e6
	var fac cluFactor
	if err := factorAdmittance(&a, omega, &fac); err != nil {
		t.Fatal(err)
	}
	rhs := [ltiStates]complex128{0, 0, complex(1e9, -2e8), 0, complex(-3e8, 0), 0}
	x := rhs
	fac.solve(&x)
	for i := 0; i < ltiStates; i++ {
		got := complex(0, omega) * x[i]
		scale := omega * cabs1(x[i])
		for j := 0; j < ltiStates; j++ {
			got -= complex(a[i][j], 0) * x[j]
			scale += math.Abs(a[i][j]) * cabs1(x[j])
		}
		if cabs1(got-rhs[i]) > 1e-12*(scale+cabs1(rhs[i])) {
			t.Errorf("row %d: (jωI-A)x = %g, want %g", i, got, rhs[i])
		}
	}
}

// The per-solver electrical caches hit across load signatures and Vdd: a
// second solve at a different Vdd and load reuses the factorizations.
func TestLTICacheReuse(t *testing.T) {
	p := power.MustParams(power.Node7)
	s := NewSolver(nil)
	if _, err := s.SimulateDomain(Config{Params: p, Vdd: 0.5, Mode: ModeExpm}, ltiTestLoads(p, 0.5)["mixed"]); err != nil {
		t.Fatal(err)
	}
	nPhi, nFac := len(s.lti.phi), len(s.lti.factor)
	if nPhi != 1 {
		t.Fatalf("expected one cached propagator, got %d", nPhi)
	}
	if nFac == 0 {
		t.Fatal("no cached admittance factorizations")
	}
	if _, err := s.SimulateDomain(Config{Params: p, Vdd: 0.7, Mode: ModeExpm}, ltiTestLoads(p, 0.7)["staggered"]); err != nil {
		t.Fatal(err)
	}
	if len(s.lti.phi) != nPhi {
		t.Errorf("Vdd change grew the propagator cache: %d -> %d", nPhi, len(s.lti.phi))
	}
	// staggered High tiles burst at the same two harmonic frequencies the
	// mixed signature already used, so no new factorizations either.
	if len(s.lti.factor) != nFac {
		t.Errorf("same-frequency solve grew the factor cache: %d -> %d", nFac, len(s.lti.factor))
	}
}
