package pdn

import (
	"math"
	"sync"
	"sync/atomic"

	"parm/internal/obs"
	"parm/internal/power"
)

// Load-signature quantization grids. The runtime measurement pipeline
// (chip.SamplePSN) solves the same handful of load vectors over and over:
// occupants change only at map/unmap events and router utilization is a
// coarse measured ratio, so consecutive samples repeat the same electrical
// inputs almost exactly. Snapping the inputs to these grids before solving
// makes the repeats *bit*-exact, which is what lets the solve cache hit,
// while perturbing the physics far below the model's own fidelity (the
// sensor path later quantizes PSN readings to 6 bits anyway).
const (
	// iavgQuantum snaps average tile current to 0.1 mA (tile currents are
	// in the ampere range: ~1e-5 relative).
	iavgQuantum = 1e-4
	// activityQuantum snaps the modulation depth to 1/1024.
	activityQuantum = 1.0 / 1024
	// phaseQuantum snaps the burst phase to 2*pi/4096 radians.
	phaseQuantum = 2 * math.Pi / 4096
	// burstQuantum snaps the burst frequency to 1 kHz (burst frequencies
	// are tens-to-hundreds of MHz).
	burstQuantum = 1e3
)

func quantize(v, q float64) float64 { return math.Round(v/q) * q }

// QuantizeLoads snaps a 4-tile load signature to the solver's input grids.
// Solver.SimulateDomain applies it before every solve, cached or not, so a
// cached result is always the exact transient solution of the inputs the
// serial path would integrate.
func QuantizeLoads(loads [DomainTiles]TileLoad) [DomainTiles]TileLoad {
	for i := range loads {
		loads[i].IAvg = quantize(loads[i].IAvg, iavgQuantum)
		loads[i].Activity = quantize(loads[i].Activity, activityQuantum)
		loads[i].Phase = quantize(loads[i].Phase, phaseQuantum)
		loads[i].BurstHz = quantize(loads[i].BurstHz, burstQuantum)
	}
	return loads
}

// solveKey identifies one memoizable domain solve: the full electrical
// configuration plus the quantized load signature. All fields are scalar,
// so the struct is directly usable as a map key.
type solveKey struct {
	params   power.NodeParams
	vdd      power.Volts
	dt       power.Seconds
	duration power.Seconds
	burstHz  float64
	mode     Mode // resolved (never ModeAuto), so auto and phasor share entries
	loads    [DomainTiles]TileLoad
}

// maxCacheEntries bounds a SolveCache. Real runs see a few hundred distinct
// keys (occupant sets x Vdd levels x router-utilization grid points); the
// bound only guards against pathological churn. On overflow the cache is
// cleared wholesale — eviction order is irrelevant at this hit rate and a
// plain map stays cheap.
const maxCacheEntries = 1 << 15

// SolveCache memoizes domain transient solves across Solvers. It is safe
// for concurrent use; chip.SamplePSN shares one cache across its worker
// pool, so a load signature solved by any worker is reused by all.
type SolveCache struct {
	mu     sync.RWMutex
	m      map[solveKey]Result
	hits   atomic.Uint64
	misses atomic.Uint64
	// clears counts wholesale resets on overflow; evicted totals the
	// entries those resets dropped. Both are guarded by mu (they only
	// change under the write lock store already holds).
	clears  uint64
	evicted uint64
	// Telemetry mirrors, set once by Instrument before the first lookup.
	// Nil (uninstrumented) counters discard updates.
	obsHits, obsMisses, obsClears, obsEvicted *obs.Counter
}

// NewSolveCache returns an empty cache.
func NewSolveCache() *SolveCache {
	return &SolveCache{m: make(map[solveKey]Result)}
}

func (c *SolveCache) lookup(k solveKey) (Result, bool) {
	c.mu.RLock()
	r, ok := c.m[k]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		c.obsHits.Inc()
	} else {
		c.misses.Add(1)
		c.obsMisses.Inc()
	}
	return r, ok
}

func (c *SolveCache) store(k solveKey, r Result) {
	c.mu.Lock()
	if len(c.m) >= maxCacheEntries {
		c.clears++
		c.evicted += uint64(len(c.m))
		c.obsClears.Inc()
		c.obsEvicted.Add(uint64(len(c.m)))
		c.m = make(map[solveKey]Result)
	}
	c.m[k] = r
	c.mu.Unlock()
}

// CacheStats is a point-in-time snapshot of a SolveCache's lifetime
// counters and current size.
type CacheStats struct {
	// Hits and Misses count lookups since creation.
	Hits, Misses uint64
	// Clears counts wholesale overflow resets (the cache drops everything
	// when it exceeds its entry bound); Evicted totals the entries those
	// resets dropped. A nonzero Clears on a real run means the workload's
	// key population outgrew maxCacheEntries — pathological churn the
	// previous Stats form silently hid.
	Clears, Evicted uint64
	// Entries is the current population.
	Entries int
}

// Stats reports the cache's hit/miss/eviction counters and current entry
// count.
func (c *SolveCache) Stats() CacheStats {
	c.mu.RLock()
	s := CacheStats{
		Clears:  c.clears,
		Evicted: c.evicted,
		Entries: len(c.m),
	}
	c.mu.RUnlock()
	s.Hits = c.hits.Load()
	s.Misses = c.misses.Load()
	return s
}

// Solver runs domain transient simulations with reusable scratch buffers
// and an optional shared solve cache. A Solver is NOT safe for concurrent
// use (the scratch is per-solve state); give each worker its own Solver and
// share the SolveCache between them.
type Solver struct {
	cache   *SolveCache
	scratch solverScratch
	// lti memoizes the load-independent electrical factorizations (step
	// propagators, admittance LUs) the exact solver modes reuse across
	// solves — these hit even when the solve cache misses on a new load
	// signature.
	lti ltiCaches
	// modeObs counts solves per resolved mode (index by cfg.Mode after
	// withDefaults); nil entries discard updates.
	modeObs [ModePhasor + 1]*obs.Counter
}

// NewSolver returns a Solver backed by cache. A nil cache disables
// memoization (every call integrates) but keeps the scratch-buffer reuse
// and the input quantization, so cached and uncached solvers produce
// bit-identical results for the same inputs.
func NewSolver(cache *SolveCache) *Solver {
	return &Solver{cache: cache}
}

// SimulateDomain is the memoizing counterpart of the package-level
// SimulateDomain: it quantizes the load signature (QuantizeLoads), then
// returns the cached transient result for the (node params, Vdd, window,
// loads) key, integrating only on a miss.
func (s *Solver) SimulateDomain(cfg Config, loads [DomainTiles]TileLoad) (Result, error) {
	cfg = cfg.withDefaults()
	if err := validate(cfg, loads); err != nil {
		return Result{}, err
	}
	loads = QuantizeLoads(loads)
	s.modeObs[cfg.Mode].Inc()
	if s.cache == nil {
		return simulate(cfg, loads, &s.scratch, &s.lti)
	}
	key := solveKey{
		params:   cfg.Params,
		vdd:      cfg.Vdd,
		dt:       cfg.Dt,
		duration: cfg.Duration,
		burstHz:  cfg.BurstHz,
		mode:     cfg.Mode,
		loads:    loads,
	}
	if r, ok := s.cache.lookup(key); ok {
		return r, nil
	}
	r, err := simulate(cfg, loads, &s.scratch, &s.lti)
	if err != nil {
		return Result{}, err
	}
	// Concurrent workers may race to compute the same key; both integrate
	// the identical inputs, so last-write-wins stores the identical value.
	s.cache.store(key, r)
	return r, nil
}
