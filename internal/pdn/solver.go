package pdn

import (
	"math"
	"sync"
	"sync/atomic"

	"parm/internal/power"
)

// Load-signature quantization grids. The runtime measurement pipeline
// (chip.SamplePSN) solves the same handful of load vectors over and over:
// occupants change only at map/unmap events and router utilization is a
// coarse measured ratio, so consecutive samples repeat the same electrical
// inputs almost exactly. Snapping the inputs to these grids before solving
// makes the repeats *bit*-exact, which is what lets the solve cache hit,
// while perturbing the physics far below the model's own fidelity (the
// sensor path later quantizes PSN readings to 6 bits anyway).
const (
	// iavgQuantum snaps average tile current to 0.1 mA (tile currents are
	// in the ampere range: ~1e-5 relative).
	iavgQuantum = 1e-4
	// activityQuantum snaps the modulation depth to 1/1024.
	activityQuantum = 1.0 / 1024
	// phaseQuantum snaps the burst phase to 2*pi/4096 radians.
	phaseQuantum = 2 * math.Pi / 4096
	// burstQuantum snaps the burst frequency to 1 kHz (burst frequencies
	// are tens-to-hundreds of MHz).
	burstQuantum = 1e3
)

func quantize(v, q float64) float64 { return math.Round(v/q) * q }

// QuantizeLoads snaps a 4-tile load signature to the solver's input grids.
// Solver.SimulateDomain applies it before every solve, cached or not, so a
// cached result is always the exact transient solution of the inputs the
// serial path would integrate.
func QuantizeLoads(loads [DomainTiles]TileLoad) [DomainTiles]TileLoad {
	for i := range loads {
		loads[i].IAvg = quantize(loads[i].IAvg, iavgQuantum)
		loads[i].Activity = quantize(loads[i].Activity, activityQuantum)
		loads[i].Phase = quantize(loads[i].Phase, phaseQuantum)
		loads[i].BurstHz = quantize(loads[i].BurstHz, burstQuantum)
	}
	return loads
}

// solveKey identifies one memoizable domain solve: the full electrical
// configuration plus the quantized load signature. All fields are scalar,
// so the struct is directly usable as a map key.
type solveKey struct {
	params   power.NodeParams
	vdd      power.Volts
	dt       power.Seconds
	duration power.Seconds
	burstHz  float64
	loads    [DomainTiles]TileLoad
}

// maxCacheEntries bounds a SolveCache. Real runs see a few hundred distinct
// keys (occupant sets x Vdd levels x router-utilization grid points); the
// bound only guards against pathological churn. On overflow the cache is
// cleared wholesale — eviction order is irrelevant at this hit rate and a
// plain map stays cheap.
const maxCacheEntries = 1 << 15

// SolveCache memoizes domain transient solves across Solvers. It is safe
// for concurrent use; chip.SamplePSN shares one cache across its worker
// pool, so a load signature solved by any worker is reused by all.
type SolveCache struct {
	mu     sync.RWMutex
	m      map[solveKey]Result
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewSolveCache returns an empty cache.
func NewSolveCache() *SolveCache {
	return &SolveCache{m: make(map[solveKey]Result)}
}

func (c *SolveCache) lookup(k solveKey) (Result, bool) {
	c.mu.RLock()
	r, ok := c.m[k]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return r, ok
}

func (c *SolveCache) store(k solveKey, r Result) {
	c.mu.Lock()
	if len(c.m) >= maxCacheEntries {
		c.m = make(map[solveKey]Result)
	}
	c.m[k] = r
	c.mu.Unlock()
}

// Stats reports cache hits, misses, and current entry count.
func (c *SolveCache) Stats() (hits, misses uint64, entries int) {
	c.mu.RLock()
	n := len(c.m)
	c.mu.RUnlock()
	return c.hits.Load(), c.misses.Load(), n
}

// Solver runs domain transient simulations with reusable scratch buffers
// and an optional shared solve cache. A Solver is NOT safe for concurrent
// use (the scratch is per-solve state); give each worker its own Solver and
// share the SolveCache between them.
type Solver struct {
	cache   *SolveCache
	scratch solverScratch
}

// NewSolver returns a Solver backed by cache. A nil cache disables
// memoization (every call integrates) but keeps the scratch-buffer reuse
// and the input quantization, so cached and uncached solvers produce
// bit-identical results for the same inputs.
func NewSolver(cache *SolveCache) *Solver {
	return &Solver{cache: cache}
}

// SimulateDomain is the memoizing counterpart of the package-level
// SimulateDomain: it quantizes the load signature (QuantizeLoads), then
// returns the cached transient result for the (node params, Vdd, window,
// loads) key, integrating only on a miss.
func (s *Solver) SimulateDomain(cfg Config, loads [DomainTiles]TileLoad) (Result, error) {
	cfg = cfg.withDefaults()
	if err := validate(cfg, loads); err != nil {
		return Result{}, err
	}
	loads = QuantizeLoads(loads)
	if s.cache == nil {
		return simulate(cfg, loads, &s.scratch)
	}
	key := solveKey{
		params:   cfg.Params,
		vdd:      cfg.Vdd,
		dt:       cfg.Dt,
		duration: cfg.Duration,
		burstHz:  cfg.BurstHz,
		loads:    loads,
	}
	if r, ok := s.cache.lookup(key); ok {
		return r, nil
	}
	r, err := simulate(cfg, loads, &s.scratch)
	if err != nil {
		return Result{}, err
	}
	// Concurrent workers may race to compute the same key; both integrate
	// the identical inputs, so last-write-wins stores the identical value.
	s.cache.store(key, r)
	return r, nil
}
