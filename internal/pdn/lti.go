// Linear time-invariant view of the domain circuit. The transient system of
// domain.go is linear in the state x = (iL, vB, vT0..vT3) with a forcing
// term that is a DC component plus a handful of sinusoidal harmonics per
// tile, so it admits an exact solution: the homogeneous part evolves by the
// matrix exponential Φ = exp(A·h) per step, and each sinusoid contributes a
// particular solution obtained from one complex phasor solve. lti.go holds
// the numerical kernels (state matrix assembly, dense 6x6 matrix
// exponential, complex LU); phasor.go builds the harmonic decomposition and
// runs the exact stepping / steady-state measurement loops.
package pdn

import (
	"fmt"
	"math"
)

// ltiStates is the order of the domain state vector: inductor current, bump
// node voltage, and one voltage per tile node.
const ltiStates = 2 + DomainTiles

// ltiMatrix assembles the constant state matrix A of dx/dt = A·x + u(t)
// from the circuit element values. Rows follow the state order (iL, vB,
// vT0..vT3); the forcing term u carries the source voltage (row 0) and the
// tile current draws (rows 2..5) and is handled by the callers.
func (c *circuit) ltiMatrix() [ltiStates][ltiStates]float64 {
	var a [ltiStates][ltiStates]float64
	// L di/dt = Vs - Rb*iL - vB
	a[0][0] = -c.rb / c.lb
	a[0][1] = -1 / c.lb
	// Cb dvB/dt = iL - sum_i (vB - vTi)/Rv
	a[1][0] = 1 / c.cb
	a[1][1] = -DomainTiles * c.gv / c.cb
	for i := 0; i < DomainTiles; i++ {
		a[1][2+i] = c.gv / c.cb
	}
	// Cd dvTi/dt = (vB-vTi)/Rv + sum_adj (vTj-vTi)/Rg - Ii(t)
	for i := 0; i < DomainTiles; i++ {
		r := 2 + i
		a[r][1] = c.gv / c.cd
		a[r][r] = -c.gv / c.cd
		for j := 0; j < DomainTiles; j++ {
			if domainAdjacency[i][j] {
				a[r][r] -= c.gg / c.cd
				a[r][2+j] += c.gg / c.cd
			}
		}
	}
	return a
}

// Padé [13/13] numerator coefficients for the matrix exponential
// (Higham, "The scaling and squaring method for the matrix exponential
// revisited", 2005).
var padeCoef = [14]float64{
	64764752532480000, 32382376266240000, 7771770303897600, 1187353796428800,
	129060195264000, 10559470521600, 670442572800, 33522128640,
	1323241920, 40840800, 960960, 16380, 182, 1,
}

// expmTheta13 is the 1-norm bound under which the [13/13] Padé approximant
// reaches double-precision accuracy without scaling.
const expmTheta13 = 5.371920351148152

// expm6 computes Φ = exp(M) for a dense 6x6 matrix by scaling-and-squaring
// with a [13/13] Padé approximant. It shares SolveLinear's finiteness
// contract: a nil error implies every entry of Φ is finite; non-finite
// inputs, a singular Padé denominator, or overflow during squaring are
// rejected with an error instead of handing back NaN/Inf silently
// (FuzzExpm pins the property).
func expm6(m *[ltiStates][ltiStates]float64) ([ltiStates][ltiStates]float64, error) {
	var phi [ltiStates][ltiStates]float64
	norm := 0.0 // 1-norm: max column sum of absolute values
	for col := 0; col < ltiStates; col++ {
		sum := 0.0
		for row := 0; row < ltiStates; row++ {
			v := m[row][col]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return phi, fmt.Errorf("pdn: non-finite state matrix entry [%d][%d]", row, col)
			}
			sum += abs(v)
		}
		if sum > norm {
			norm = sum
		}
	}
	// Scale M by 2^-s so the Padé approximant is accurate, then square s
	// times. exp of any finite matrix is finite mathematically, but the
	// squaring can overflow float64 when exp(M) itself exceeds its range;
	// the final finiteness check below rejects that case.
	s := 0
	if norm > expmTheta13 {
		s = int(math.Ceil(math.Log2(norm / expmTheta13)))
	}
	a := *m
	if s > 0 {
		inv := math.Ldexp(1, -s)
		for i := range a {
			for j := range a[i] {
				a[i][j] *= inv
			}
		}
	}

	// Powers of the scaled matrix.
	a2 := mul6(&a, &a)
	a4 := mul6(&a2, &a2)
	a6 := mul6(&a2, &a4)

	// U = A·(A6·(b13·A6 + b11·A4 + b9·A2) + b7·A6 + b5·A4 + b3·A2 + b1·I)
	// V =    A6·(b12·A6 + b10·A4 + b8·A2) + b6·A6 + b4·A4 + b2·A2 + b0·I
	var w, v [ltiStates][ltiStates]float64
	for i := 0; i < ltiStates; i++ {
		for j := 0; j < ltiStates; j++ {
			w[i][j] = padeCoef[13]*a6[i][j] + padeCoef[11]*a4[i][j] + padeCoef[9]*a2[i][j]
			v[i][j] = padeCoef[12]*a6[i][j] + padeCoef[10]*a4[i][j] + padeCoef[8]*a2[i][j]
		}
	}
	w = mul6(&a6, &w)
	v = mul6(&a6, &v)
	for i := 0; i < ltiStates; i++ {
		for j := 0; j < ltiStates; j++ {
			w[i][j] += padeCoef[7]*a6[i][j] + padeCoef[5]*a4[i][j] + padeCoef[3]*a2[i][j]
			v[i][j] += padeCoef[6]*a6[i][j] + padeCoef[4]*a4[i][j] + padeCoef[2]*a2[i][j]
		}
		w[i][i] += padeCoef[1]
		v[i][i] += padeCoef[0]
	}
	u := mul6(&a, &w)

	// Φ = (V - U)^-1 (V + U), solved column by column.
	var den, num [ltiStates][ltiStates]float64
	for i := 0; i < ltiStates; i++ {
		for j := 0; j < ltiStates; j++ {
			den[i][j] = v[i][j] - u[i][j]
			num[i][j] = v[i][j] + u[i][j]
		}
	}
	if err := solve6(&den, &num, &phi); err != nil {
		return phi, fmt.Errorf("pdn: Padé denominator: %w", err)
	}
	for k := 0; k < s; k++ {
		phi = mul6(&phi, &phi)
	}
	for i := range phi {
		for j := range phi[i] {
			if math.IsNaN(phi[i][j]) || math.IsInf(phi[i][j], 0) {
				return phi, fmt.Errorf("pdn: matrix exponential overflow (1-norm %g)", norm)
			}
		}
	}
	return phi, nil
}

// mul6 returns the 6x6 matrix product a·b.
func mul6(a, b *[ltiStates][ltiStates]float64) [ltiStates][ltiStates]float64 {
	var out [ltiStates][ltiStates]float64
	for i := 0; i < ltiStates; i++ {
		for k := 0; k < ltiStates; k++ {
			f := a[i][k]
			if f == 0 {
				continue
			}
			for j := 0; j < ltiStates; j++ {
				out[i][j] += f * b[k][j]
			}
		}
	}
	return out
}

// solve6 solves a·x = b for the 6x6 unknown matrix x by Gaussian
// elimination with partial pivoting. a and b are consumed as workspace.
func solve6(a, b, x *[ltiStates][ltiStates]float64) error {
	n := ltiStates
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if abs(a[r][col]) > abs(a[pivot][col]) {
				pivot = r
			}
		}
		if a[pivot][col] == 0 {
			return ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			for c := 0; c < n; c++ {
				b[r][c] -= f * b[col][c]
			}
		}
	}
	for r := n - 1; r >= 0; r-- {
		for c := 0; c < n; c++ {
			sum := b[r][c]
			for k := r + 1; k < n; k++ {
				sum -= a[r][k] * x[k][c]
			}
			x[r][c] = sum / a[r][r]
		}
	}
	return nil
}

// cluFactor is the pivoted LU factorization of the complex admittance
// system (jωI - A) of one harmonic frequency. One factorization serves
// every load signature at that frequency: the forcing vector changes per
// solve, the matrix does not.
type cluFactor struct {
	lu  [ltiStates][ltiStates]complex128
	piv [ltiStates]int8
}

// factorAdmittance builds and LU-factors (jωI - A). A is Hurwitz (the
// circuit dissipates), so jω on the imaginary axis is never an eigenvalue
// and the system is nonsingular for every real ω; the pivot check guards
// the contract anyway.
func factorAdmittance(a *[ltiStates][ltiStates]float64, omega float64, f *cluFactor) error {
	for i := 0; i < ltiStates; i++ {
		for j := 0; j < ltiStates; j++ {
			f.lu[i][j] = complex(-a[i][j], 0)
		}
		f.lu[i][i] += complex(0, omega)
	}
	n := ltiStates
	for col := 0; col < n; col++ {
		pivot := col
		best := cabs1(f.lu[col][col])
		for r := col + 1; r < n; r++ {
			if m := cabs1(f.lu[r][col]); m > best {
				pivot, best = r, m
			}
		}
		if best == 0 {
			return ErrSingular
		}
		f.lu[col], f.lu[pivot] = f.lu[pivot], f.lu[col]
		f.piv[col] = int8(pivot)
		inv := 1 / f.lu[col][col]
		for r := col + 1; r < n; r++ {
			m := f.lu[r][col] * inv
			f.lu[r][col] = m
			for c := col + 1; c < n; c++ {
				f.lu[r][c] -= m * f.lu[col][c]
			}
		}
	}
	return nil
}

// solve solves (jωI - A)·x = b in place using the stored factorization.
func (f *cluFactor) solve(b *[ltiStates]complex128) {
	n := ltiStates
	for col := 0; col < n; col++ {
		if p := int(f.piv[col]); p != col {
			b[col], b[p] = b[p], b[col]
		}
		for r := col + 1; r < n; r++ {
			b[r] -= f.lu[r][col] * b[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		for c := r + 1; c < n; c++ {
			b[r] -= f.lu[r][c] * b[c]
		}
		b[r] /= f.lu[r][r]
	}
}

// cabs1 is the |re|+|im| magnitude used for pivot selection (cheaper than
// the Euclidean modulus, same pivoting quality).
func cabs1(v complex128) float64 { return abs(real(v)) + abs(imag(v)) }
