// Exact solvers for the domain transient: matrix-exponential stepping
// (ModeExpm) and the phasor steady-state fast path (ModePhasor). Both rest
// on the same decomposition: the forcing of the LTI system dx/dt = A·x +
// u(t) is a DC term plus at most two sinusoidal harmonics per tile, so the
// solution splits into a particular part x_p(t) — the DC operating point
// plus one complex phasor response per distinct harmonic frequency — and a
// homogeneous part that evolves exactly as w(t+h) = Φ·w(t) with Φ =
// exp(A·h). ModeExpm steps the full decomposition from the DC initial
// condition; ModePhasor drops the decaying homogeneous part and evaluates
// the periodic steady state directly on the sampling grid, which is
// legitimate because the measurement window already discards a settle
// prefix and targets steady switching noise (DESIGN.md §8 derives both).
package pdn

import (
	"fmt"
	"math"

	"parm/internal/obs"
	"parm/internal/power"
)

// maxHarmonics bounds the distinct harmonic frequencies of one load
// signature: each of the four tiles contributes a fundamental and a 3rd
// harmonic at most.
const maxHarmonics = 2 * DomainTiles

// harmonicSet is the harmonic decomposition of one load signature: the
// distinct angular frequencies, the complex forcing amplitude per state row
// (forcing f(t) = Re(force·e^{jωt})), and after solvePhasors the complex
// response X per frequency (particular solution x_p contribution
// Re(X·e^{jωt})).
type harmonicSet struct {
	n     int
	omega [maxHarmonics]float64
	force [maxHarmonics][ltiStates]complex128
	resp  [maxHarmonics][ltiStates]complex128
}

// harmonics builds the harmonic decomposition of the circuit's switching
// currents. The smoothed square wave of tile i contributes amplitude
// IAvg·Activity/1.155 at ω_i and a third of that at 3ω_i (matching
// circuit.current exactly); tiles sharing a frequency accumulate into one
// complex forcing vector.
func (c *circuit) harmonics(hs *harmonicSet) {
	hs.n = 0
	for i, ld := range c.loads {
		if ld.IAvg <= 0 || ld.Activity <= 0 {
			continue
		}
		amp := ld.IAvg * ld.Activity / 1.155
		c.addHarmonic(hs, c.burstW[i], amp, ld.Phase, i)
		if c.harm3rd {
			c.addHarmonic(hs, 3*c.burstW[i], amp/3, 3*ld.Phase, i)
		}
	}
}

// addHarmonic merges one tile sinusoid I = amp·sin(ωt+ψ) into the set. The
// tile current enters row 2+tile of dx/dt as -I/Cd, and sin(θ) =
// Re(-j·e^{jθ}), so the complex forcing coefficient is (amp/Cd)·j·e^{jψ}.
func (c *circuit) addHarmonic(hs *harmonicSet, omega, amp, phase float64, tile int) {
	idx := -1
	for k := 0; k < hs.n; k++ {
		// Burst frequencies are quantized on the solver input grid, so equal
		// frequencies are bit-equal — this is the memo-key kind of equality.
		//parm:floateq
		if hs.omega[k] == omega {
			idx = k
			break
		}
	}
	if idx < 0 {
		idx = hs.n
		hs.n++
		hs.omega[idx] = omega
		hs.force[idx] = [ltiStates]complex128{}
	}
	s, co := math.Sincos(phase)
	hs.force[idx][2+tile] += complex(-amp/c.cd*s, amp/c.cd*co)
}

// phiKey identifies one cached step propagator Φ = exp(A·h): the state
// matrix depends only on the technology node's element values, and h is the
// integration step. Vdd and the load signature never enter A.
type phiKey struct {
	params power.NodeParams
	dt     power.Seconds
}

// facKey identifies one cached admittance factorization (jωI - A).
type facKey struct {
	params power.NodeParams
	omega  float64
}

// ltiCaches memoizes the load-independent electrical factorizations a
// Solver reuses across solves: the step propagator per (node, h) and the
// complex LU per (node, ω). Algorithm 1's candidate scan revisits the same
// technology node and the same two class burst frequencies for every
// (Vdd, DoP, mapping) candidate, so after the first few solves every entry
// hits and the exact solver's setup cost amortizes to near-free. The maps
// are per-Solver (Solvers are single-threaded) and bounded by the handful
// of distinct nodes and burst frequencies a run can see.
type ltiCaches struct {
	phi    map[phiKey]*[ltiStates][ltiStates]float64
	factor map[facKey]*cluFactor
	// Telemetry counters set by Solver.Instrument; nil discards updates.
	phiHits, phiMisses, facHits, facMisses *obs.Counter
}

// phiFor returns the cached Φ = exp(A·dt) for the circuit, computing and
// memoizing it on first use. A nil receiver (the uncached package-level
// path) computes without storing.
func (lc *ltiCaches) phiFor(c *circuit, params power.NodeParams, dt power.Seconds) (*[ltiStates][ltiStates]float64, error) {
	if lc != nil {
		if phi, ok := lc.phi[phiKey{params, dt}]; ok {
			lc.phiHits.Inc()
			return phi, nil
		}
		lc.phiMisses.Inc()
	}
	a := c.ltiMatrix()
	h := float64(dt)
	for i := range a {
		for j := range a[i] {
			a[i][j] *= h
		}
	}
	phi, err := expm6(&a)
	if err != nil {
		return nil, err
	}
	if lc != nil {
		if lc.phi == nil {
			lc.phi = make(map[phiKey]*[ltiStates][ltiStates]float64)
		}
		lc.phi[phiKey{params, dt}] = &phi
		return lc.phi[phiKey{params, dt}], nil
	}
	out := phi
	return &out, nil
}

// factorFor returns the cached LU of (jωI - A), computing and memoizing it
// on first use. A nil receiver computes without storing.
func (lc *ltiCaches) factorFor(c *circuit, params power.NodeParams, omega float64) (*cluFactor, error) {
	if lc != nil {
		if f, ok := lc.factor[facKey{params, omega}]; ok {
			lc.facHits.Inc()
			return f, nil
		}
		lc.facMisses.Inc()
	}
	a := c.ltiMatrix()
	f := &cluFactor{}
	if err := factorAdmittance(&a, omega, f); err != nil {
		return nil, fmt.Errorf("pdn: admittance at ω=%g: %w", omega, err)
	}
	if lc != nil {
		if lc.factor == nil {
			lc.factor = make(map[facKey]*cluFactor)
		}
		lc.factor[facKey{params, omega}] = f
	}
	return f, nil
}

// solvePhasors fills hs.resp with the phasor response X_k of every harmonic:
// (jω_k·I - A)·X_k = force_k.
func (c *circuit) solvePhasors(cfg Config, hs *harmonicSet, caches *ltiCaches) error {
	for k := 0; k < hs.n; k++ {
		fac, err := caches.factorFor(c, cfg.Params, hs.omega[k])
		if err != nil {
			return err
		}
		hs.resp[k] = hs.force[k]
		fac.solve(&hs.resp[k])
	}
	return nil
}

// psnAccum accumulates the droop statistics of one tile-voltage sample,
// with the same semantics as the RK4 recording loop: droop is clamped at
// zero (overshoot above Vdd is not supply droop), peak and sum track the
// recorded grid only.
type psnAccum struct {
	vdd    float64
	minV   [DomainTiles]float64
	peak   [DomainTiles]float64
	sum    [DomainTiles]float64
	points int
}

func newPSNAccum(vdd float64) psnAccum {
	a := psnAccum{vdd: vdd}
	for i := range a.minV {
		a.minV[i] = vdd
	}
	return a
}

//parm:hot
func (a *psnAccum) record(i int, v float64) {
	if v < a.minV[i] {
		a.minV[i] = v
	}
	droop := (a.vdd - v) / a.vdd
	if droop < 0 {
		droop = 0
	}
	a.sum[i] += droop
	if droop > a.peak[i] {
		a.peak[i] = droop
	}
}

func (a *psnAccum) result(steps int) Result {
	var res Result
	for i := 0; i < DomainTiles; i++ {
		res.PeakPSN[i] = a.peak[i]
		res.MinVoltage[i] = power.Volts(a.minV[i])
		if a.points > 0 {
			res.AvgPSN[i] = a.sum[i] / float64(a.points)
		}
	}
	res.Steps = steps
	return res
}

// simulatePhasor measures the periodic steady state directly on the RK4
// sampling grid, with no time stepping: tile voltages are vDC_i +
// Σ_k Re(X_k[2+i]·e^{jω_k t}) at the same instants t = (n+1)·h, n ∈
// [settle, steps), that the RK4 loop records. The homogeneous start-up
// transient (which the settle window exists to shed) is dropped entirely.
//
//parm:hot
func simulatePhasor(cfg Config, loads [DomainTiles]TileLoad, scratch *solverScratch, caches *ltiCaches) (Result, error) {
	c := newCircuit(cfg, loads)
	st0, err := c.dcOperatingPoint(scratch)
	if err != nil {
		return Result{}, err
	}
	var hs harmonicSet
	c.harmonics(&hs)
	if err := c.solvePhasors(cfg, &hs, caches); err != nil {
		return Result{}, err
	}

	steps := int(cfg.Duration / cfg.Dt)
	if steps < 1 {
		steps = 1
	}
	settle := steps / 8
	h := float64(cfg.Dt)

	// Per-harmonic oscillators z_k = e^{jω_k t}, advanced by one complex
	// rotation per grid point; per-tile response coefficients split into
	// real/imaginary parts so the inner loop is four multiplies per
	// (tile, harmonic) pair with no complex arithmetic.
	var zr, zi, rr, ri [maxHarmonics]float64
	var cr, ci [maxHarmonics][DomainTiles]float64
	for k := 0; k < hs.n; k++ {
		s, co := math.Sincos(hs.omega[k] * h * float64(settle+1))
		zr[k], zi[k] = co, s
		s, co = math.Sincos(hs.omega[k] * h)
		rr[k], ri[k] = co, s
		for i := 0; i < DomainTiles; i++ {
			cr[k][i] = real(hs.resp[k][2+i])
			ci[k][i] = imag(hs.resp[k][2+i])
		}
	}
	acc := newPSNAccum(float64(cfg.Vdd))
	nh := hs.n
	for n := settle; n < steps; n++ {
		for i := 0; i < DomainTiles; i++ {
			v := st0.vt[i]
			for k := 0; k < nh; k++ {
				v += cr[k][i]*zr[k] - ci[k][i]*zi[k]
			}
			acc.record(i, v)
		}
		acc.points++
		for k := 0; k < nh; k++ {
			zr[k], zi[k] = zr[k]*rr[k]-zi[k]*ri[k], zr[k]*ri[k]+zi[k]*rr[k]
		}
	}
	return acc.result(steps), nil
}

// simulateExpm steps the exact discrete-time solution from the DC operating
// point: x(t) = x_p(t) + w(t) with w advanced by one 6x6 multiply with Φ =
// exp(A·h) per step. It is the RK4 trajectory with the truncation error
// removed — including the start-up transient the phasor path drops — and
// serves as the bridge between the two (TestModesAgree pins all three
// pairwise).
//
//parm:hot
func simulateExpm(cfg Config, loads [DomainTiles]TileLoad, scratch *solverScratch, caches *ltiCaches) (Result, error) {
	c := newCircuit(cfg, loads)
	st0, err := c.dcOperatingPoint(scratch)
	if err != nil {
		return Result{}, err
	}
	var hs harmonicSet
	c.harmonics(&hs)
	if err := c.solvePhasors(cfg, &hs, caches); err != nil {
		return Result{}, err
	}
	phi, err := caches.phiFor(&c, cfg.Params, cfg.Dt)
	if err != nil {
		return Result{}, err
	}

	steps := int(cfg.Duration / cfg.Dt)
	if steps < 1 {
		steps = 1
	}
	settle := steps / 8
	h := float64(cfg.Dt)

	// Homogeneous state w(0) = x(0) - x_p(0): the DC initial condition
	// minus the particular solution at t=0 leaves -Σ_k Re(X_k).
	var w [ltiStates]float64
	for k := 0; k < hs.n; k++ {
		for j := 0; j < ltiStates; j++ {
			w[j] -= real(hs.resp[k][j])
		}
	}
	var zr, zi, rr, ri [maxHarmonics]float64
	var cr, ci [maxHarmonics][DomainTiles]float64
	for k := 0; k < hs.n; k++ {
		zr[k], zi[k] = 1, 0
		s, co := math.Sincos(hs.omega[k] * h)
		rr[k], ri[k] = co, s
		for i := 0; i < DomainTiles; i++ {
			cr[k][i] = real(hs.resp[k][2+i])
			ci[k][i] = imag(hs.resp[k][2+i])
		}
	}
	acc := newPSNAccum(float64(cfg.Vdd))
	nh := hs.n
	for n := 0; n < steps; n++ {
		// Advance to t = (n+1)h: w by the propagator, the oscillators by
		// one rotation.
		var wn [ltiStates]float64
		for i := 0; i < ltiStates; i++ {
			s := 0.0
			for j := 0; j < ltiStates; j++ {
				s += phi[i][j] * w[j]
			}
			wn[i] = s
		}
		w = wn
		for k := 0; k < nh; k++ {
			zr[k], zi[k] = zr[k]*rr[k]-zi[k]*ri[k], zr[k]*ri[k]+zi[k]*rr[k]
		}
		if n < settle {
			continue
		}
		for i := 0; i < DomainTiles; i++ {
			v := st0.vt[i] + w[2+i]
			for k := 0; k < nh; k++ {
				v += cr[k][i]*zr[k] - ci[k][i]*zi[k]
			}
			acc.record(i, v)
		}
		acc.points++
	}
	return acc.result(steps), nil
}
