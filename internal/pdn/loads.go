package pdn

import "math"

// VEThreshold is the PSN fraction beyond which a voltage emergency occurs
// at near-threshold voltages (paper §3.4, 5% as in ref [12]).
const VEThreshold = 0.05

// Class is a tile's switching-activity class. The paper bins application
// tasks into High and Low switching activity from offline profiling (§3.5).
type Class int

// Switching-activity classes. Idle marks an unoccupied tile.
const (
	Idle Class = iota
	Low
	High
)

// String returns "idle", "low" or "high".
func (c Class) String() string {
	switch c {
	case Low:
		return "low"
	case High:
		return "high"
	default:
		return "idle"
	}
}

// Burst frequencies per activity class. High-activity (compute-bound) tasks
// burst near the package LC resonance; low-activity (stall-heavy) tasks
// burst slower. The incommensurate frequencies make cross-class waveforms
// beat and periodically align — the High-Low interference of Fig. 3(b).
const (
	HighBurstHz = 125e6
	LowBurstHz  = 75e6
)

// Modulation depth per class: the fraction of average current that swings
// with workload bursts.
const (
	HighModulation = 0.90
	LowModulation  = 0.35
)

// TileOccupant describes what is running on one tile slot of a domain, the
// input to BuildLoads.
type TileOccupant struct {
	// IAvg is the tile's average supply current in amperes (0 if idle).
	IAvg float64
	// Class is the switching-activity class of the occupying task.
	Class Class
	// Staggered marks the task as phase-controllable by the runtime:
	// same-class threads of one barrier-synchronized application can be
	// activated staggered (paper ref [11]). Threads that are not staggered
	// burst at phase 0 (worst-case aligned).
	Staggered bool
}

// BuildLoads converts the four tile occupants of a domain into PDN current
// loads, applying the phase-staggering policy: within each activity class,
// staggered tasks get evenly spaced phases (cancelling their common-mode
// swing at the shared bump), while non-staggered tasks stay aligned.
// Cross-class pairs always interfere because their burst frequencies differ.
func BuildLoads(occ [DomainTiles]TileOccupant) [DomainTiles]TileLoad {
	var loads [DomainTiles]TileLoad
	// Count staggered members per class to spread phases evenly.
	counts := map[Class]int{}
	for _, o := range occ {
		if o.Class != Idle && o.Staggered {
			counts[o.Class]++
		}
	}
	idx := map[Class]int{}
	for i, o := range occ {
		if o.Class == Idle || o.IAvg <= 0 {
			continue
		}
		ld := TileLoad{IAvg: o.IAvg}
		switch o.Class {
		case High:
			ld.Activity = HighModulation
			ld.BurstHz = HighBurstHz
		case Low:
			ld.Activity = LowModulation
			ld.BurstHz = LowBurstHz
		}
		if o.Staggered && counts[o.Class] > 1 {
			ld.Phase = 2 * math.Pi * float64(idx[o.Class]) / float64(counts[o.Class])
			idx[o.Class]++
		}
		loads[i] = ld
	}
	return loads
}
