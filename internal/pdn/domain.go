package pdn

import (
	"fmt"
	"math"

	"parm/internal/power"
)

// DomainTiles is the number of tiles in one power supply domain (a 2x2
// block with its own voltage regulator, paper §3.3).
const DomainTiles = 4

// Tile indices within a domain, laid out as a 2x2 block:
//
//	2 3      (y=1)
//	0 1      (y=0)
//
// Tiles 0-1, 0-2, 1-3, 2-3 are adjacent (Manhattan distance 1); pairs 0-3
// and 1-2 are diagonal (distance 2).
var domainAdjacency = [DomainTiles][DomainTiles]bool{
	0: {1: true, 2: true},
	1: {0: true, 3: true},
	2: {0: true, 3: true},
	3: {1: true, 2: true},
}

// DomainDistance returns the Manhattan distance between two tile slots of a
// 2x2 domain (0 for identical slots, 1 for adjacent, 2 for diagonal).
func DomainDistance(a, b int) int {
	if a == b {
		return 0
	}
	if domainAdjacency[a][b] {
		return 1
	}
	return 2
}

// TileLoad describes the workload current drawn by one tile, modeled as a
// current source (paper §3.4): a DC component from average power plus a
// switching component whose amplitude tracks the tile's switching activity.
//
// Same-class threads of an SPMD application are barrier-synchronized, so
// the runtime can stagger their burst phases (staggered core activation,
// paper ref [11]); threads of different activity classes burst at different
// fundamental frequencies, so their waveforms beat and periodically align
// in the worst case. This is what makes High-Low adjacency noisier than
// High-High or Low-Low (paper Fig. 3b) and is the physical lever behind the
// PARM clustering heuristic.
type TileLoad struct {
	// IAvg is the average current in amperes (tile power / Vdd).
	IAvg float64
	// Activity is the switching modulation depth in [0,1]: the fraction of
	// IAvg that swings with workload bursts. High-activity tasks have large
	// Activity; idle tiles have 0.
	Activity float64
	// Phase offsets this tile's switching waveform, in radians. Aligned
	// phases (synchronized bursts) produce the worst-case droop; the
	// staggering of same-class threads is expressed by spreading phases.
	Phase float64
	// BurstHz overrides the fundamental switching frequency for this tile.
	// Zero uses Config.BurstHz. Different activity classes burst at
	// different frequencies.
	BurstHz float64
}

// Mode selects the transient solver algorithm. The domain circuit is
// linear time-invariant, so ModeExpm and ModePhasor solve it exactly;
// ModeRK4 is the numerical-integration reference they are cross-checked
// against (TestModesAgree). All modes measure the same sampling grid and
// are individually deterministic (bit-identical results for identical
// inputs).
type Mode uint8

const (
	// ModeAuto resolves to ModePhasor, the fastest exact path.
	ModeAuto Mode = iota
	// ModeRK4 integrates the transient with classic Runge-Kutta 4.
	ModeRK4
	// ModeExpm steps the exact discrete solution x_{k+1} = Φ·x_k + forced
	// response, with Φ = exp(A·h) from scaling-and-squaring + Padé.
	ModeExpm
	// ModePhasor evaluates the periodic steady state directly on the
	// sampling grid from per-harmonic complex admittance solves, with no
	// time stepping at all.
	ModePhasor
)

// String returns "auto", "rk4", "expm" or "phasor".
func (m Mode) String() string {
	switch m {
	case ModeRK4:
		return "rk4"
	case ModeExpm:
		return "expm"
	case ModePhasor:
		return "phasor"
	default:
		return "auto"
	}
}

// resolved maps ModeAuto to the concrete default algorithm. Solve-cache
// keys store the resolved mode, so auto and its target share cache entries.
func (m Mode) resolved() Mode {
	if m == ModeAuto {
		return ModePhasor
	}
	return m
}

// Config parameterizes one transient domain simulation.
type Config struct {
	// Params supplies the per-technology-node electrical constants.
	Params power.NodeParams
	// Vdd is the regulator output voltage.
	Vdd power.Volts
	// Dt is the integration step. Zero selects 20 ps.
	Dt power.Seconds
	// Duration is the simulated window. Zero selects 60 ns.
	Duration power.Seconds
	// BurstHz is the fundamental frequency of the workload switching
	// waveform. Zero selects 125 MHz, near the package LC resonance where
	// droop is worst.
	BurstHz float64
	// Mode selects the solver algorithm. The zero value (ModeAuto) selects
	// the phasor steady-state fast path.
	Mode Mode
}

func (c Config) withDefaults() Config {
	if c.Dt <= 0 {
		c.Dt = 20e-12
	}
	if c.Duration <= 0 {
		c.Duration = 60e-9
	}
	if c.BurstHz <= 0 {
		c.BurstHz = 125e6
	}
	c.Mode = c.Mode.resolved()
	return c
}

// Result reports the PSN observed at each tile of the domain over the
// simulated window. PSN values are fractions of Vdd (0.05 == 5 %).
type Result struct {
	// PeakPSN is the maximum instantaneous supply droop per tile.
	PeakPSN [DomainTiles]float64
	// AvgPSN is the time-averaged supply droop per tile.
	AvgPSN [DomainTiles]float64
	// MinVoltage is the lowest instantaneous voltage per tile.
	MinVoltage [DomainTiles]power.Volts
	// Steps is the number of integration steps taken.
	Steps int
}

// DomainPeak returns the largest per-tile peak PSN in the domain.
func (r Result) DomainPeak() float64 {
	m := 0.0
	for _, v := range r.PeakPSN {
		if v > m {
			m = v
		}
	}
	return m
}

// DomainAvg returns the mean of the per-tile average PSN values.
func (r Result) DomainAvg() float64 {
	s := 0.0
	for _, v := range r.AvgPSN {
		s += v
	}
	return s / DomainTiles
}

// circuit holds the assembled element values for one domain simulation.
type circuit struct {
	rb, lb  float64              // bump branch
	cb      float64              // package-side decap at bump node
	rv      float64              // via resistance bump node -> each tile node
	rg      float64              // grid resistance between adjacent tile nodes
	cd      float64              // decap at each tile node
	vs      float64              // source voltage
	gv, gg  float64              // conductances 1/rv, 1/rg
	burstW  [DomainTiles]float64 // per-tile burst angular frequency
	loads   [DomainTiles]TileLoad
	harm3rd bool // include 3rd harmonic in the burst waveform
}

func newCircuit(cfg Config, loads [DomainTiles]TileLoad) circuit {
	p := cfg.Params
	c := circuit{
		rb:      p.RBump,
		lb:      p.LBump,
		cb:      p.CDecap * 2, // package decap is lumped, larger than tile decap
		rv:      p.RGrid * 1.5,
		rg:      p.RGrid,
		cd:      p.CDecap,
		vs:      float64(cfg.Vdd),
		gv:      1 / (p.RGrid * 1.5),
		gg:      1 / p.RGrid,
		loads:   loads,
		harm3rd: true,
	}
	for i, ld := range loads {
		hz := ld.BurstHz
		if hz <= 0 {
			hz = cfg.BurstHz
		}
		c.burstW[i] = 2 * math.Pi * hz
	}
	return c
}

// current returns tile slot i's instantaneous current draw at time t. The
// switching waveform is a smoothed square wave (fundamental + optional 3rd
// harmonic), which has the sharp di/dt edges that excite inductive droop.
func (c *circuit) current(i int, t float64) float64 {
	ld := c.loads[i]
	if ld.IAvg <= 0 {
		return 0
	}
	ph := c.burstW[i]*t + ld.Phase
	s := math.Sin(ph)
	if c.harm3rd {
		s += math.Sin(3*ph) / 3
	}
	// Normalize so the swing stays within ±1 (max of sin + sin3/3 ≈ 1.155).
	s /= 1.155
	return ld.IAvg * (1 + ld.Activity*s)
}

// dcUnknowns is the DC operating-point system size: the bump node voltage
// plus one voltage per tile node.
const dcUnknowns = 1 + DomainTiles

// solverScratch holds every buffer one domain solve reuses across calls:
// the per-tile current tables and the DC operating-point system. A Solver
// threads one scratch through consecutive solves so the warm path performs
// no allocation at all (BenchmarkPSNStepAllocs pins 0 allocs/op).
type solverScratch struct {
	// table holds the per-tile current waveforms; rows grow once to the
	// longest window seen and are reused thereafter.
	table [DomainTiles][]float64
	// dcRows backs the DC conductance matrix; dcA holds the row slices the
	// pivoting solver permutes in place.
	dcRows [dcUnknowns][dcUnknowns]float64
	dcA    [dcUnknowns][]float64
	dcB    [dcUnknowns]float64
	dcX    [dcUnknowns]float64
}

// currentTable precomputes every tile's current waveform on the half-step
// grid the RK4 integrator samples (t, t+h/2, t+h), using a sine rotation
// recurrence so the hot loop performs no trig calls. Entry [i][k] is tile
// i's current at time k*h/2. The scratch rows are reused (and grown only
// when the window lengthens) instead of allocating fresh tables.
//
//parm:hot
func (c *circuit) currentTable(h float64, steps int, scratch *solverScratch) [DomainTiles][]float64 {
	var out [DomainTiles][]float64
	n := 2*steps + 2
	for i := 0; i < DomainTiles; i++ {
		if cap(scratch.table[i]) >= n {
			out[i] = scratch.table[i][:n]
			for k := range out[i] {
				out[i][k] = 0
			}
		} else {
			// First call (or a longer window): grow once, reuse forever.
			//parm:alloc
			out[i] = make([]float64, n)
			scratch.table[i] = out[i]
		}
		ld := c.loads[i]
		if ld.IAvg <= 0 {
			continue
		}
		// Oscillator states for the fundamental and (optionally) the 3rd
		// harmonic, advanced by rotation: sin/cos(θ+Δ) from sin/cos(θ).
		d1 := c.burstW[i] * h / 2
		s1, c1 := math.Sin(ld.Phase), math.Cos(ld.Phase)
		sd1, cd1 := math.Sin(d1), math.Cos(d1)
		s3, c3 := math.Sin(3*ld.Phase), math.Cos(3*ld.Phase)
		sd3, cd3 := math.Sin(3*d1), math.Cos(3*d1)
		for k := 0; k < n; k++ {
			s := s1
			if c.harm3rd {
				s += s3 / 3
			}
			out[i][k] = ld.IAvg * (1 + ld.Activity*s/1.155)
			s1, c1 = s1*cd1+c1*sd1, c1*cd1-s1*sd1
			s3, c3 = s3*cd3+c3*sd3, c3*cd3-s3*sd3
		}
	}
	return out
}

// state is the circuit state vector: inductor current, bump node voltage,
// and the four tile node voltages.
type state struct {
	il float64
	vb float64
	vt [DomainTiles]float64
}

// deriv computes the time derivative of the state, with tile currents given
// by cur (one value per tile, already evaluated at the step's time point).
//
//parm:hot
func (c *circuit) deriv(s state, cur *[DomainTiles]float64) state {
	var d state
	// Inductor: L di/dt = Vs - Rb*iL - vB
	d.il = (c.vs - c.rb*s.il - s.vb) / c.lb
	// Bump node: Cb dvB/dt = iL - sum_i (vB - vTi)/Rv
	sumV := 0.0
	for i := 0; i < DomainTiles; i++ {
		sumV += (s.vb - s.vt[i]) * c.gv
	}
	d.vb = (s.il - sumV) / c.cb
	// Tile nodes: Cd dvTi/dt = (vB-vTi)/Rv + sum_adj (vTj-vTi)/Rg - Ii(t)
	for i := 0; i < DomainTiles; i++ {
		sum := (s.vb - s.vt[i]) * c.gv
		for j := 0; j < DomainTiles; j++ {
			if domainAdjacency[i][j] {
				sum += (s.vt[j] - s.vt[i]) * c.gg
			}
		}
		sum -= cur[i]
		d.vt[i] = sum / c.cd
	}
	return d
}

// derivAt evaluates deriv with currents taken analytically at time t; used
// by tests to cross-check the tabulated fast path.
func (c *circuit) derivAt(s state, t float64) state {
	var cur [DomainTiles]float64
	for i := range cur {
		cur[i] = c.current(i, t)
	}
	return c.deriv(s, &cur)
}

//parm:hot
func addScaled(a state, b state, h float64) state {
	var out state
	out.il = a.il + h*b.il
	out.vb = a.vb + h*b.vb
	for i := range a.vt {
		out.vt[i] = a.vt[i] + h*b.vt[i]
	}
	return out
}

// dcOperatingPoint solves the resistive DC network with the average tile
// currents, giving an initial condition free of artificial start-up droop.
// The system lives entirely in scratch: matrix, right-hand side, and
// solution are reused buffers, so the warm path allocates nothing.
//
//parm:hot
func (c *circuit) dcOperatingPoint(scr *solverScratch) (state, error) {
	// Unknowns: x[0]=vB, x[1..4]=vT0..vT3. iL = total current.
	if scr.dcA[0] == nil {
		for i := range scr.dcA {
			scr.dcA[i] = scr.dcRows[i][:]
		}
	}
	a := scr.dcA[:]
	for i := range a {
		row := a[i]
		for j := range row {
			row[j] = 0
		}
	}
	b := scr.dcB[:]
	for i := range b {
		b[i] = 0
	}
	total := 0.0
	for i := 0; i < DomainTiles; i++ {
		total += c.loads[i].IAvg
	}
	// Bump node KCL: (Vs - vB)/Rb = sum_i (vB - vTi)/Rv
	a[0][0] = 1/c.rb + DomainTiles*c.gv
	for i := 0; i < DomainTiles; i++ {
		a[0][1+i] = -c.gv
	}
	b[0] = c.vs / c.rb
	// Tile node KCL.
	for i := 0; i < DomainTiles; i++ {
		r := 1 + i
		a[r][0] = -c.gv
		a[r][r] = c.gv
		for j := 0; j < DomainTiles; j++ {
			if domainAdjacency[i][j] {
				a[r][r] += c.gg
				a[r][1+j] -= c.gg
			}
		}
		b[r] = -c.loads[i].IAvg
	}
	x := scr.dcX[:]
	if err := solveLinearInto(x, a, b); err != nil {
		return state{}, err
	}
	st := state{il: total, vb: x[0]}
	for i := 0; i < DomainTiles; i++ {
		st.vt[i] = x[1+i]
	}
	return st, nil
}

// validate rejects non-physical configurations (non-positive Vdd or element
// values, out-of-range loads). cfg must already have defaults applied.
func validate(cfg Config, loads [DomainTiles]TileLoad) error {
	if cfg.Vdd <= 0 {
		return fmt.Errorf("pdn: non-positive Vdd %g", float64(cfg.Vdd))
	}
	p := cfg.Params
	if p.RBump <= 0 || p.LBump <= 0 || p.RGrid <= 0 || p.CDecap <= 0 {
		return fmt.Errorf("pdn: non-physical node parameters %+v", p)
	}
	if cfg.Mode > ModePhasor {
		return fmt.Errorf("pdn: unknown solver mode %d", cfg.Mode)
	}
	for i, ld := range loads {
		if ld.IAvg < 0 || ld.Activity < 0 || ld.Activity > 1 {
			return fmt.Errorf("pdn: invalid load %d: %+v", i, ld)
		}
	}
	return nil
}

// SimulateDomain runs a transient simulation of one 4-tile domain and
// returns the observed PSN. It returns an error for non-physical
// configurations (non-positive Vdd or element values).
//
// This is the exact-input path used by the figure experiments; the runtime
// measurement pipeline goes through Solver.SimulateDomain, which quantizes
// the load signature and memoizes repeated solves.
func SimulateDomain(cfg Config, loads [DomainTiles]TileLoad) (Result, error) {
	cfg = cfg.withDefaults()
	if err := validate(cfg, loads); err != nil {
		return Result{}, err
	}
	return simulate(cfg, loads, &solverScratch{}, nil)
}

// simulate dispatches one validated, defaulted solve to the algorithm
// selected by cfg.Mode. scratch supplies the reusable buffers; caches (nil
// for the one-shot path) memoizes the load-independent electrical
// factorizations the exact modes reuse across solves.
func simulate(cfg Config, loads [DomainTiles]TileLoad, scratch *solverScratch, caches *ltiCaches) (Result, error) {
	switch cfg.Mode {
	case ModeExpm:
		return simulateExpm(cfg, loads, scratch, caches)
	case ModePhasor:
		return simulatePhasor(cfg, loads, scratch, caches)
	default:
		return simulateRK4(cfg, loads, scratch)
	}
}

// simulateRK4 is the numerical-integration reference path: classic RK4
// over the tabulated current waveforms. The exact modes are cross-checked
// against it. cfg must have defaults applied and inputs validated.
//
//parm:hot
func simulateRK4(cfg Config, loads [DomainTiles]TileLoad, scratch *solverScratch) (Result, error) {
	c := newCircuit(cfg, loads)
	st, err := c.dcOperatingPoint(scratch)
	if err != nil {
		return Result{}, err
	}

	vdd := float64(cfg.Vdd)
	var res Result
	for i := range res.MinVoltage {
		res.MinVoltage[i] = cfg.Vdd
	}
	steps := int(cfg.Duration / cfg.Dt)
	if steps < 1 {
		steps = 1
	}
	// Skip a short settle window before recording, so the measurement
	// reflects steady switching noise rather than the modulation turn-on.
	settle := steps / 8
	var sumPSN [DomainTiles]float64
	recorded := 0

	h := float64(cfg.Dt)
	table := c.currentTable(h, steps, scratch)
	var cur0, curH, cur1 [DomainTiles]float64
	for n := 0; n < steps; n++ {
		for i := 0; i < DomainTiles; i++ {
			cur0[i] = table[i][2*n]
			curH[i] = table[i][2*n+1]
			cur1[i] = table[i][2*n+2]
		}
		// Classic RK4 step.
		k1 := c.deriv(st, &cur0)
		k2 := c.deriv(addScaled(st, k1, h/2), &curH)
		k3 := c.deriv(addScaled(st, k2, h/2), &curH)
		k4 := c.deriv(addScaled(st, k3, h), &cur1)
		st.il += h / 6 * (k1.il + 2*k2.il + 2*k3.il + k4.il)
		st.vb += h / 6 * (k1.vb + 2*k2.vb + 2*k3.vb + k4.vb)
		for i := range st.vt {
			st.vt[i] += h / 6 * (k1.vt[i] + 2*k2.vt[i] + 2*k3.vt[i] + k4.vt[i])
		}
		if n < settle {
			continue
		}
		recorded++
		for i := range st.vt {
			v := st.vt[i]
			if power.Volts(v) < res.MinVoltage[i] {
				res.MinVoltage[i] = power.Volts(v)
			}
			droop := (vdd - v) / vdd
			if droop < 0 {
				droop = 0 // overshoot above Vdd is not supply droop
			}
			sumPSN[i] += droop
			if droop > res.PeakPSN[i] {
				res.PeakPSN[i] = droop
			}
		}
	}
	for i := range sumPSN {
		if recorded > 0 {
			res.AvgPSN[i] = sumPSN[i] / float64(recorded)
		}
	}
	res.Steps = steps
	return res, nil
}
