// Telemetry hooks for the solver layer. Instrumentation is opt-in and
// behavior-neutral: registration happens once at startup (Instrument /
// NewSolverObs), the hot solve paths then update pre-registered nil-safe
// counters with single atomic increments, and an uninstrumented solver
// carries nil counters whose updates are no-ops.
package pdn

import "parm/internal/obs"

// SolverObs holds the pre-registered pdn telemetry counters shared by every
// Solver of one run: per-mode solve counts and the Φ/admittance
// factorization-cache hit rates. A nil *SolverObs disables instrumentation.
type SolverObs struct {
	modes              [ModePhasor + 1]*obs.Counter
	phiHits, phiMisses *obs.Counter
	facHits, facMisses *obs.Counter
}

// NewSolverObs registers the pdn solver metrics in r and returns the
// counter set to hand to each Solver via Instrument. A nil registry returns
// nil (telemetry off).
func NewSolverObs(r *obs.Registry) *SolverObs {
	if r == nil {
		return nil
	}
	return &SolverObs{
		modes: [ModePhasor + 1]*obs.Counter{
			ModeRK4:    r.Counter("pdn/solve/rk4"),
			ModeExpm:   r.Counter("pdn/solve/expm"),
			ModePhasor: r.Counter("pdn/solve/phasor"),
		},
		phiHits:   r.Counter("pdn/lti/phi_hits"),
		phiMisses: r.Counter("pdn/lti/phi_misses"),
		facHits:   r.Counter("pdn/lti/factor_hits"),
		facMisses: r.Counter("pdn/lti/factor_misses"),
	}
}

// Instrument attaches the shared counter set to this Solver. Call it right
// after NewSolver, before the first solve; a nil o leaves the Solver
// uninstrumented.
func (s *Solver) Instrument(o *SolverObs) {
	if o == nil {
		return
	}
	s.modeObs = o.modes
	s.lti.phiHits = o.phiHits
	s.lti.phiMisses = o.phiMisses
	s.lti.facHits = o.facHits
	s.lti.facMisses = o.facMisses
}

// Instrument mirrors the cache's lifetime counters into pre-registered
// telemetry counters under pdn/cache/. Call it once at startup; a nil
// registry leaves the cache uninstrumented. The obs mirrors are cumulative
// event counts — the authoritative point-in-time view remains Stats().
func (c *SolveCache) Instrument(r *obs.Registry) {
	c.obsHits = r.Counter("pdn/cache/hits")
	c.obsMisses = r.Counter("pdn/cache/misses")
	c.obsClears = r.Counter("pdn/cache/clears")
	c.obsEvicted = r.Counter("pdn/cache/evicted")
}
