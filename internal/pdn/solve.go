// Package pdn models the on-chip power delivery network of a 4-tile power
// supply domain and estimates power supply noise (PSN) by transient
// simulation, replacing the SPICE model of the paper (§3.4, Fig. 2).
//
// The lumped circuit per domain:
//
//	Vs ──Rb──Lb──● B (bump node, package decap Cb)
//	             │ Rv (via) to each tile node
//	      T0 ──Rg── T1
//	       │         │ Rg    (2x2 on-chip grid; diagonal tiles couple
//	      T2 ──Rg── T3        only through two grid resistances)
//
// with decoupling capacitance Cdecap and a workload current source at every
// tile node. The two PSN mechanisms of the paper emerge directly: resistive
// IR drop from average current, and inductive di/dt droop from switching
// activity through Lb. Tiles at Manhattan distance 1 inside the domain share
// one grid resistance and interfere more than diagonal (distance-2) tiles,
// reproducing Fig. 3(b).
package pdn

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("pdn: singular linear system")

// ErrIllConditioned is returned when elimination survives the pivot test but
// the computed solution overflows or degenerates to NaN/Inf — the system is
// too ill-conditioned for the result to mean anything. With this guard,
// SolveLinear never hands back a non-finite voltage with a nil error
// (FuzzSolveLinear pins the property).
var ErrIllConditioned = errors.New("pdn: ill-conditioned linear system")

// SolveLinear solves the dense linear system a·x = b in place using Gaussian
// elimination with partial pivoting and returns x. Both a and b are
// modified. It returns ErrSingular when no unique solution exists.
//
// The systems in this package are tiny (≤ 8 unknowns: DC operating points of
// a domain), so a dense direct solve is the right tool.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	if len(a) == 0 || len(b) != len(a) {
		return nil, fmt.Errorf("pdn: bad system shape %dx%d vs %d", len(a), len(a), len(b))
	}
	x := make([]float64, len(a))
	if err := solveLinearInto(x, a, b); err != nil {
		return nil, err
	}
	return x, nil
}

// solveLinearInto is the allocation-free core of SolveLinear: it eliminates
// in place and writes the solution to x, which must have length len(a). The
// DC operating-point path threads a scratch x through it every solve.
//
//parm:hot
func solveLinearInto(x []float64, a [][]float64, b []float64) error {
	n := len(a)
	// Singularity is judged relative to the matrix's own scale: conductance
	// matrices built from nano-Henry bumps or pico-Farad decaps can be
	// well-conditioned while every entry is far below any fixed absolute
	// threshold (and, symmetrically, huge entries can hide a rank deficiency
	// an absolute test would miss).
	scale := 0.0
	for _, row := range a {
		if len(row) != n {
			return fmt.Errorf("pdn: non-square matrix row of length %d", len(row))
		}
		for _, v := range row {
			if abs(v) > scale {
				scale = abs(v)
			}
		}
	}
	if scale == 0 {
		return ErrSingular
	}
	// Pivots below scale*pivotRelTol are indistinguishable from elimination
	// round-off (~n*machine-epsilon per step for these tiny systems).
	const pivotRelTol = 1e-12
	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in this column.
		pivot := col
		for r := col + 1; r < n; r++ {
			if abs(a[r][col]) > abs(a[pivot][col]) {
				pivot = r
			}
		}
		if abs(a[pivot][col]) < scale*pivotRelTol {
			return ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return ErrIllConditioned
		}
	}
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
