package pdn

import (
	"testing"

	"parm/internal/power"
)

// BenchmarkSimulateDomain times one transient solve of a fully loaded
// domain — the inner loop of chip-wide PSN sampling.
func BenchmarkSimulateDomain(b *testing.B) {
	p := power.MustParams(power.Node7)
	loads := BuildLoads(occupantsForBench(p))
	cfg := Config{Params: p, Vdd: 0.5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateDomain(cfg, loads); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDCOperatingPoint times the linear solve used to initialize the
// transient.
func BenchmarkDCOperatingPoint(b *testing.B) {
	p := power.MustParams(power.Node7)
	loads := BuildLoads(occupantsForBench(p))
	c := newCircuit(Config{Params: p, Vdd: 0.5}.withDefaults(), loads)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.dcOperatingPoint(); err != nil {
			b.Fatal(err)
		}
	}
}

func occupantsForBench(p power.NodeParams) [DomainTiles]TileOccupant {
	var occ [DomainTiles]TileOccupant
	for i := range occ {
		class := High
		if i%2 == 1 {
			class = Low
		}
		occ[i] = TileOccupant{IAvg: p.TileCurrent(0.5, 0.9, 0.4), Class: class, Staggered: true}
	}
	return occ
}
