package pdn

import (
	"testing"

	"parm/internal/power"
)

// BenchmarkSimulateDomain times one transient solve of a fully loaded
// domain — the inner loop of chip-wide PSN sampling.
func BenchmarkSimulateDomain(b *testing.B) {
	p := power.MustParams(power.Node7)
	loads := BuildLoads(occupantsForBench(p))
	cfg := Config{Params: p, Vdd: 0.5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateDomain(cfg, loads); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDomainSolve times the cache-miss solve path of every solver mode
// over the default measurement window, through a Solver with warm scratch
// and electrical caches (the steady state of the runtime pipeline when a
// load signature misses the solve cache). The acceptance bar for the exact
// fast path is phasor >= 5x faster than rk4 here.
func BenchmarkDomainSolve(b *testing.B) {
	p := power.MustParams(power.Node7)
	loads := BuildLoads(occupantsForBench(p))
	for _, m := range []Mode{ModeRK4, ModeExpm, ModePhasor} {
		b.Run(m.String(), func(b *testing.B) {
			cfg := Config{Params: p, Vdd: 0.5, Mode: m}
			s := NewSolver(nil) // uncached: every iteration solves in full
			if _, err := s.SimulateDomain(cfg, loads); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.SimulateDomain(cfg, loads); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDCOperatingPoint times the linear solve used to initialize the
// transient.
func BenchmarkDCOperatingPoint(b *testing.B) {
	p := power.MustParams(power.Node7)
	loads := BuildLoads(occupantsForBench(p))
	c := newCircuit(Config{Params: p, Vdd: 0.5}.withDefaults(), loads)
	var scratch solverScratch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.dcOperatingPoint(&scratch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPSNStepAllocs pins the //parm:hot contract dynamically: after one
// warm-up solve grows the scratch buffers, a Solver's transient solve must
// run allocation-free. hotalloc enforces the same property statically.
func BenchmarkPSNStepAllocs(b *testing.B) {
	p := power.MustParams(power.Node7)
	loads := BuildLoads(occupantsForBench(p))
	cfg := Config{Params: p, Vdd: 0.5}
	s := NewSolver(nil) // uncached: every call takes the full integration path
	if _, err := s.SimulateDomain(cfg, loads); err != nil {
		b.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := s.SimulateDomain(cfg, loads); err != nil {
			b.Fatal(err)
		}
	})
	if allocs != 0 {
		b.Fatalf("warm PSN solve allocates %.1f times per run, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SimulateDomain(cfg, loads); err != nil {
			b.Fatal(err)
		}
	}
}

func occupantsForBench(p power.NodeParams) [DomainTiles]TileOccupant {
	var occ [DomainTiles]TileOccupant
	for i := range occ {
		class := High
		if i%2 == 1 {
			class = Low
		}
		occ[i] = TileOccupant{IAvg: p.TileCurrent(0.5, 0.9, 0.4), Class: class, Staggered: true}
	}
	return occ
}
