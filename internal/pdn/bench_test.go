package pdn

import (
	"testing"

	"parm/internal/power"
)

// BenchmarkSimulateDomain times one transient solve of a fully loaded
// domain — the inner loop of chip-wide PSN sampling.
func BenchmarkSimulateDomain(b *testing.B) {
	p := power.MustParams(power.Node7)
	loads := BuildLoads(occupantsForBench(p))
	cfg := Config{Params: p, Vdd: 0.5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateDomain(cfg, loads); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDCOperatingPoint times the linear solve used to initialize the
// transient.
func BenchmarkDCOperatingPoint(b *testing.B) {
	p := power.MustParams(power.Node7)
	loads := BuildLoads(occupantsForBench(p))
	c := newCircuit(Config{Params: p, Vdd: 0.5}.withDefaults(), loads)
	var scratch solverScratch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.dcOperatingPoint(&scratch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPSNStepAllocs pins the //parm:hot contract dynamically: after one
// warm-up solve grows the scratch buffers, a Solver's transient solve must
// run allocation-free. hotalloc enforces the same property statically.
func BenchmarkPSNStepAllocs(b *testing.B) {
	p := power.MustParams(power.Node7)
	loads := BuildLoads(occupantsForBench(p))
	cfg := Config{Params: p, Vdd: 0.5}
	s := NewSolver(nil) // uncached: every call takes the full integration path
	if _, err := s.SimulateDomain(cfg, loads); err != nil {
		b.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := s.SimulateDomain(cfg, loads); err != nil {
			b.Fatal(err)
		}
	})
	if allocs != 0 {
		b.Fatalf("warm PSN solve allocates %.1f times per run, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SimulateDomain(cfg, loads); err != nil {
			b.Fatal(err)
		}
	}
}

func occupantsForBench(p power.NodeParams) [DomainTiles]TileOccupant {
	var occ [DomainTiles]TileOccupant
	for i := range occ {
		class := High
		if i%2 == 1 {
			class = Low
		}
		occ[i] = TileOccupant{IAvg: p.TileCurrent(0.5, 0.9, 0.4), Class: class, Staggered: true}
	}
	return occ
}
