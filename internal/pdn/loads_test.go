package pdn

import (
	"math"
	"testing"
)

func TestClassString(t *testing.T) {
	if Idle.String() != "idle" || Low.String() != "low" || High.String() != "high" {
		t.Error("Class.String wrong")
	}
}

func TestBuildLoadsClassParameters(t *testing.T) {
	occ := [DomainTiles]TileOccupant{
		{IAvg: 0.2, Class: High},
		{IAvg: 0.1, Class: Low},
		{}, // idle
		{IAvg: 0.15, Class: High},
	}
	loads := BuildLoads(occ)
	if loads[0].Activity != HighModulation || loads[0].BurstHz != HighBurstHz {
		t.Errorf("High load params wrong: %+v", loads[0])
	}
	if loads[1].Activity != LowModulation || loads[1].BurstHz != LowBurstHz {
		t.Errorf("Low load params wrong: %+v", loads[1])
	}
	if loads[2].IAvg != 0 || loads[2].Activity != 0 {
		t.Errorf("idle tile got a load: %+v", loads[2])
	}
	if loads[0].IAvg != 0.2 || loads[3].IAvg != 0.15 {
		t.Error("currents not preserved")
	}
}

func TestBuildLoadsStaggering(t *testing.T) {
	occ := [DomainTiles]TileOccupant{
		{IAvg: 0.2, Class: High, Staggered: true},
		{IAvg: 0.2, Class: High, Staggered: true},
		{IAvg: 0.2, Class: High, Staggered: true},
		{IAvg: 0.2, Class: High, Staggered: true},
	}
	loads := BuildLoads(occ)
	seen := map[float64]bool{}
	for i, ld := range loads {
		if seen[ld.Phase] {
			t.Errorf("tile %d repeats phase %g", i, ld.Phase)
		}
		seen[ld.Phase] = true
	}
	// Four staggered threads get evenly spaced phases 0, pi/2, pi, 3pi/2.
	for _, want := range []float64{0, math.Pi / 2, math.Pi, 3 * math.Pi / 2} {
		if !seen[want] {
			t.Errorf("phase %g missing from staggered set", want)
		}
	}
}

func TestBuildLoadsNoStaggerWhenAligned(t *testing.T) {
	occ := [DomainTiles]TileOccupant{
		{IAvg: 0.2, Class: High},
		{IAvg: 0.2, Class: High},
		{IAvg: 0.2, Class: High},
		{IAvg: 0.2, Class: High},
	}
	for i, ld := range BuildLoads(occ) {
		if ld.Phase != 0 {
			t.Errorf("non-staggered tile %d has phase %g", i, ld.Phase)
		}
	}
}

func TestBuildLoadsPerClassStagger(t *testing.T) {
	// Two High + two Low, all staggered: phases spread within each class
	// independently (0 and pi each).
	occ := [DomainTiles]TileOccupant{
		{IAvg: 0.2, Class: High, Staggered: true},
		{IAvg: 0.2, Class: High, Staggered: true},
		{IAvg: 0.1, Class: Low, Staggered: true},
		{IAvg: 0.1, Class: Low, Staggered: true},
	}
	loads := BuildLoads(occ)
	if !(loads[0].Phase == 0 && math.Abs(loads[1].Phase-math.Pi) < 1e-12) {
		t.Errorf("High phases = %g, %g", loads[0].Phase, loads[1].Phase)
	}
	if !(loads[2].Phase == 0 && math.Abs(loads[3].Phase-math.Pi) < 1e-12) {
		t.Errorf("Low phases = %g, %g", loads[2].Phase, loads[3].Phase)
	}
}

func TestBuildLoadsSingleStaggeredKeepsPhaseZero(t *testing.T) {
	occ := [DomainTiles]TileOccupant{
		{IAvg: 0.2, Class: High, Staggered: true},
	}
	if ph := BuildLoads(occ)[0].Phase; ph != 0 {
		t.Errorf("lone staggered thread phase = %g, want 0", ph)
	}
}

func TestSensorQuantization(t *testing.T) {
	s := NewSensor(4, 6, 0.20)
	if s.NumTiles() != 4 {
		t.Fatalf("NumTiles = %d", s.NumTiles())
	}
	s.Record(0, 0.05)
	got := s.Read(0)
	if math.Abs(got-0.05) > s.Resolution() {
		t.Errorf("quantized 0.05 to %g (resolution %g)", got, s.Resolution())
	}
	// Quantization is idempotent: re-recording a read value returns it.
	s.Record(1, got)
	if s.Read(1) != got {
		t.Error("quantization not idempotent")
	}
}

func TestSensorClamping(t *testing.T) {
	s := NewSensor(2, 6, 0.20)
	s.Record(0, -0.3)
	if s.Read(0) != 0 {
		t.Errorf("negative PSN read as %g", s.Read(0))
	}
	s.Record(1, 0.9)
	if s.Read(1) != 0.20 {
		t.Errorf("overrange PSN read as %g, want full scale", s.Read(1))
	}
}

func TestSensorOutOfRangeReads(t *testing.T) {
	s := NewSensor(2, 6, 0.20)
	if s.Read(-1) != 0 || s.Read(5) != 0 {
		t.Error("out-of-range tile did not read as quiet")
	}
}

// Record must mirror Read's out-of-range semantics: a write to a tile
// without a sensor is silently dropped, never a panic, and leaves the
// populated tiles untouched. (Record once indexed unchecked while Read
// bounds-checked, so the same bad index panicked on write but read as 0.)
func TestSensorOutOfRangeRecords(t *testing.T) {
	s := NewSensor(2, 6, 0.20)
	s.Record(0, 0.10)
	before := s.Read(0)
	s.Record(-1, 0.15)
	s.Record(2, 0.15)
	s.Record(1000, 0.15)
	if got := s.Read(0); got != before {
		t.Errorf("out-of-range Record disturbed tile 0: %g -> %g", before, got)
	}
	if s.Read(2) != 0 || s.Read(-1) != 0 {
		t.Error("out-of-range tile no longer reads as quiet")
	}
}

func TestSensorResolutionScalesWithBits(t *testing.T) {
	coarse := NewSensor(1, 4, 0.20)
	fine := NewSensor(1, 8, 0.20)
	if fine.Resolution() >= coarse.Resolution() {
		t.Error("more bits did not improve resolution")
	}
}

func TestNewSensorPanics(t *testing.T) {
	for _, tc := range []struct {
		tiles int
		bits  uint
		fs    float64
	}{{0, 6, 0.2}, {4, 0, 0.2}, {4, 20, 0.2}, {4, 6, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSensor(%d,%d,%g) did not panic", tc.tiles, tc.bits, tc.fs)
				}
			}()
			NewSensor(tc.tiles, tc.bits, tc.fs)
		}()
	}
}
