package appmodel

import (
	"math"
	"testing"
	"testing/quick"

	"parm/internal/pdn"
	"parm/internal/power"
)

func np7() power.NodeParams { return power.MustParams(power.Node7) }

func TestActivityFactor(t *testing.T) {
	if ActivityFactor(pdn.High) != HighCoreActivity {
		t.Error("High activity factor wrong")
	}
	if ActivityFactor(pdn.Low) != LowCoreActivity {
		t.Error("Low activity factor wrong")
	}
	if ActivityFactor(pdn.Idle) != 0 {
		t.Error("Idle activity factor not zero")
	}
}

// WCET decreases as Vdd rises (higher clock).
func TestWCETMonotonicInVdd(t *testing.T) {
	p := np7()
	for _, b := range Benchmarks() {
		prev := math.Inf(1)
		for _, v := range p.VddLevels(0.1) {
			w := b.WCETEstimate(p, v, 16)
			if w >= prev {
				t.Errorf("%s: WCET not decreasing at %.1fV", b.Name, v)
			}
			prev = w
		}
	}
}

// WCET decreases from DoP 4 to DoP 32 at fixed Vdd: the parallelism lever
// Algorithm 1 exploits (§3.5).
func TestWCETImprovesWithDoP(t *testing.T) {
	p := np7()
	for _, b := range Benchmarks() {
		w4 := b.WCETEstimate(p, 0.5, 4)
		w32 := b.WCETEstimate(p, 0.5, 32)
		if w32 >= w4 {
			t.Errorf("%s: WCET(32)=%g not below WCET(4)=%g", b.Name, w32, w4)
		}
		// The gain must be material (at least 1.5x) for the low-Vdd
		// high-DoP strategy to work.
		if w4/w32 < 1.5 {
			t.Errorf("%s: DoP speedup only %.2fx", b.Name, w4/w32)
		}
	}
}

func TestWCETInfiniteBelowThreshold(t *testing.T) {
	p := np7()
	b := Benchmarks()[0]
	if w := b.WCETEstimate(p, p.VTh, 16); w < 1e100 {
		t.Errorf("WCET at threshold voltage = %g, want effectively infinite", w)
	}
}

func TestWCETCacheConsistency(t *testing.T) {
	p := np7()
	b := Benchmarks()[1]
	w1 := b.WCETEstimate(p, 0.6, 20)
	w2 := b.WCETEstimate(p, 0.6, 20)
	if w1 != w2 {
		t.Error("cached WCET differs from first computation")
	}
}

// The SPMD estimate lower-bounds at the slowest thread's compute time.
func TestSPMDTimeEstimateBounds(t *testing.T) {
	b := Benchmarks()[0]
	g := b.Graph(16)
	f := 2e9
	est := g.SPMDTimeEstimate(f, 0)
	maxWork := 0.0
	for _, task := range g.Tasks {
		if task.WorkCycles > maxWork {
			maxWork = task.WorkCycles
		}
	}
	if est < maxWork/f {
		t.Errorf("estimate %g below slowest thread %g", est, maxWork/f)
	}
	// Adding sync overhead increases the estimate.
	if g.SPMDTimeEstimate(f, 1e6) <= est {
		t.Error("sync overhead did not increase estimate")
	}
}

func TestCriticalPathCycles(t *testing.T) {
	g := &APG{
		Bench: "t",
		Tasks: []Task{
			{ID: 0, Activity: pdn.High, WorkCycles: 100},
			{ID: 1, Activity: pdn.High, WorkCycles: 50},
			{ID: 2, Activity: pdn.Low, WorkCycles: 80},
		},
		Edges: []Edge{{Src: 0, Dst: 1, Volume: 0}, {Src: 1, Dst: 2, Volume: 0}},
	}
	// Chain with zero comm: 100 + 50 + 80.
	if got := g.CriticalPathCycles(0, nil); got != 230 {
		t.Errorf("critical path = %g, want 230", got)
	}
	// Per-task sync adds 3x10.
	if got := g.CriticalPathCycles(10, nil); got != 260 {
		t.Errorf("critical path with sync = %g, want 260", got)
	}
	// Comm delay on each edge adds 2x5.
	comm := func(Edge) float64 { return 5 }
	if got := g.CriticalPathCycles(0, comm); got != 240 {
		t.Errorf("critical path with comm = %g, want 240", got)
	}
}

func TestEdgeCommCycles(t *testing.T) {
	e := Edge{Volume: 1600}
	want := 1600.0 / FlitBytes / estFlitsPerCycle
	if got := EdgeCommCycles(e); math.Abs(got-want) > 1e-9 {
		t.Errorf("EdgeCommCycles = %g, want %g", got, want)
	}
}

func TestPowerEstimateTrends(t *testing.T) {
	p := np7()
	b := Benchmarks()[0]
	// Grows with Vdd and with DoP.
	if b.PowerEstimate(p, 0.8, 16) <= b.PowerEstimate(p, 0.4, 16) {
		t.Error("power not increasing in Vdd")
	}
	if b.PowerEstimate(p, 0.5, 32) <= b.PowerEstimate(p, 0.5, 16) {
		t.Error("power not increasing in DoP")
	}
	// The paper's core trade-off: NTC at DoP 32 consumes less power than a
	// mid-high voltage at DoP 16.
	if b.PowerEstimate(p, p.VNTC, 32) >= b.PowerEstimate(p, 0.7, 16) {
		t.Error("NTC wide parallelism not cheaper than 0.7V at DoP 16")
	}
}

func TestAppGraphCaching(t *testing.T) {
	b := Benchmarks()[2]
	app := &App{ID: 1, Bench: b}
	g1 := app.Graph(16)
	g2 := app.Graph(16)
	if g1 != g2 {
		t.Error("App.Graph did not cache")
	}
	if app.Graph(8) == g1 {
		t.Error("different DoP returned the same graph")
	}
}

func TestAppStringAndDeadline(t *testing.T) {
	app := &App{ID: 3, Bench: Benchmarks()[1], Arrival: 1.5, RelDeadline: 0.25}
	if app.String() != "app3(fft)" {
		t.Errorf("String = %q", app.String())
	}
	if math.Abs(app.AbsDeadline()-1.75) > 1e-12 {
		t.Errorf("AbsDeadline = %g", app.AbsDeadline())
	}
}

func TestSyncCyclesPerTaskGrowsWithDoP(t *testing.T) {
	b := Benchmarks()[0]
	if b.SyncCyclesPerTask(32) <= b.SyncCyclesPerTask(4) {
		t.Error("sync overhead not growing with DoP")
	}
}

// Property: WCET is positive and finite for every valid operating point.
func TestWCETAlwaysPositive(t *testing.T) {
	p := np7()
	bs := Benchmarks()
	f := func(bi, vi, di uint8) bool {
		b := bs[int(bi)%len(bs)]
		v := p.VddLevels(0.1)[int(vi)%5]
		d := DoPValues()[int(di)%8]
		w := b.WCETEstimate(p, v, d)
		return w > 0 && w < 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
