package appmodel

import (
	"fmt"
	"math"
	"sort"

	"parm/internal/pdn"
)

// TaskID indexes a task (thread) within one application's APG.
type TaskID int

// Task is one vertex of an application graph: a thread with a switching
// activity class and a share of the application's computational work.
type Task struct {
	ID TaskID
	// Activity is the switching activity bin from offline profiling
	// (paper §3.5): High or Low.
	Activity pdn.Class
	// WorkCycles is the task's computational work in clock cycles.
	WorkCycles float64
}

// Edge is a directed APG edge: communication of Volume bytes from Src to
// Dst (paper §3.2: edge weights are communication volumes).
type Edge struct {
	Src, Dst TaskID
	// Volume is the total communication volume in bytes.
	Volume float64
}

// APG is an application graph: a directed acyclic graph of tasks, the unit
// the PARM mapping heuristic operates on.
type APG struct {
	Bench string
	Tasks []Task
	Edges []Edge
}

// NumTasks returns the number of tasks (the DoP the graph was built for).
func (g *APG) NumTasks() int { return len(g.Tasks) }

// EdgesBySortedVolume returns the edges in decreasing volume order, the
// order Algorithm 2 consumes them in. Ties break by (Src, Dst) for
// determinism. The receiver is not modified.
func (g *APG) EdgesBySortedVolume() []Edge {
	out := make([]Edge, len(g.Edges))
	copy(out, g.Edges)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Volume > out[j].Volume {
			return true
		}
		if out[i].Volume < out[j].Volume {
			return false
		}
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// TotalVolume returns the sum of all edge volumes in bytes.
func (g *APG) TotalVolume() float64 {
	s := 0.0
	for _, e := range g.Edges {
		s += e.Volume
	}
	return s
}

// Validate checks APG structural invariants: task IDs are 0..n-1 in order,
// edges reference valid tasks, no self-loops, and the graph is acyclic with
// all edges pointing from lower to higher stage (Src < Dst by
// construction).
func (g *APG) Validate() error {
	for i, t := range g.Tasks {
		if int(t.ID) != i {
			return fmt.Errorf("appmodel: task %d has ID %d", i, t.ID)
		}
		if t.Activity != pdn.High && t.Activity != pdn.Low {
			return fmt.Errorf("appmodel: task %d has activity %v", i, t.Activity)
		}
		if t.WorkCycles < 0 {
			return fmt.Errorf("appmodel: task %d has negative work", i)
		}
	}
	n := TaskID(len(g.Tasks))
	for _, e := range g.Edges {
		if e.Src < 0 || e.Src >= n || e.Dst < 0 || e.Dst >= n {
			return fmt.Errorf("appmodel: edge %d->%d out of range", e.Src, e.Dst)
		}
		if e.Src == e.Dst {
			return fmt.Errorf("appmodel: self-loop on task %d", e.Src)
		}
		if e.Src > e.Dst {
			return fmt.Errorf("appmodel: edge %d->%d violates topological order", e.Src, e.Dst)
		}
		if e.Volume < 0 {
			return fmt.Errorf("appmodel: edge %d->%d has negative volume", e.Src, e.Dst)
		}
	}
	return nil
}

// Graph generates the APG of benchmark b at the given DoP. The topology
// follows b.Shape, edge volumes are drawn deterministically around
// b.CommMBPerEdge, task work is the parallel share of b.WorkGCycles with a
// mild imbalance, and ceil(HighTaskFrac*dop) tasks are High activity.
// It panics if dop is not a positive multiple of 4 within [MinDoP, MaxDoP];
// DoP values come from DoPValues and anything else is a programming error.
func (b Benchmark) Graph(dop int) *APG {
	if dop < MinDoP || dop > MaxDoP || dop%4 != 0 {
		panic(fmt.Sprintf("appmodel: invalid DoP %d for %s", dop, b.Name))
	}
	rng := seededRand(b.Name, fmt.Sprintf("graph-%d", dop))

	g := &APG{Bench: b.Name, Tasks: make([]Task, dop)}

	// Work split: serial work is attributed to task 0; parallel work is
	// divided evenly with up to ±15% deterministic imbalance.
	total := b.WorkGCycles * 1e9
	serial := total * b.SerialFrac
	parallel := total - serial
	for i := range g.Tasks {
		imb := 1 + 0.15*(2*rng.Float64()-1)
		g.Tasks[i] = Task{ID: TaskID(i), WorkCycles: parallel / float64(dop) * imb}
	}
	g.Tasks[0].WorkCycles += serial

	// Activity classes: the HighTaskFrac highest-work tasks are High; real
	// profiles show switching activity tracks useful work per cycle.
	numHigh := int(math.Ceil(b.HighTaskFrac * float64(dop)))
	if numHigh > dop {
		numHigh = dop
	}
	order := make([]int, dop)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return g.Tasks[order[i]].WorkCycles > g.Tasks[order[j]].WorkCycles
	})
	for i := range g.Tasks {
		g.Tasks[i].Activity = pdn.Low
	}
	for _, idx := range order[:numHigh] {
		g.Tasks[idx].Activity = pdn.High
	}

	// First pass records the topology with relative edge weights; volumes
	// are assigned afterwards so the application's total communication is
	// CommMBTotal regardless of DoP (wider parallelism partitions the same
	// data across more, lighter edges).
	type protoEdge struct {
		src, dst int
		weight   float64
	}
	var proto []protoEdge
	addWeighted := func(src, dst int, w float64) {
		if src > dst {
			src, dst = dst, src
		}
		if src == dst {
			return
		}
		proto = append(proto, protoEdge{src: src, dst: dst, weight: w})
	}
	addEdge := func(src, dst int) { addWeighted(src, dst, 1) }

	switch b.Shape {
	case ShapeForkJoin:
		// Task 0 forks to all, all join to last task; the join edges are
		// lighter (results are smaller than inputs).
		for i := 1; i < dop; i++ {
			addEdge(0, i)
		}
		for i := 1; i < dop-1; i++ {
			addWeighted(i, dop-1, 0.4)
		}
	case ShapePipeline:
		// ~4 stages; consecutive stages connect stage-to-stage with a
		// couple of cross links.
		stages := 4
		if dop < 8 {
			stages = 2
		}
		per := dop / stages
		for s := 0; s < stages-1; s++ {
			for i := 0; i < per; i++ {
				src := s*per + i
				addEdge(src, (s+1)*per+i)
				if i+1 < per {
					addEdge(src, (s+1)*per+i+1)
				}
			}
		}
		// Attach any remainder tasks to the last full stage.
		for i := stages * per; i < dop; i++ {
			addEdge((stages-1)*per, i)
		}
	case ShapeButterfly:
		// log2 stages of stride-doubling exchanges over the same task set.
		for stride := 1; stride < dop; stride *= 2 {
			for i := 0; i < dop; i++ {
				j := i ^ stride
				if j > i && j < dop {
					addEdge(i, j)
				}
			}
		}
	case ShapeTree:
		// Binary reduction tree: child i feeds parent (i-1)/2.
		for i := 1; i < dop; i++ {
			addEdge((i-1)/2, i)
		}
		// A few sibling exchanges for realism.
		for i := 1; i+1 < dop; i += 2 {
			addEdge(i, i+1)
		}
	case ShapeStencil:
		// Tasks on a near-square grid exchange with E and N neighbors.
		w := int(math.Sqrt(float64(dop)))
		if w < 2 {
			w = 2
		}
		for i := 0; i < dop; i++ {
			x, y := i%w, i/w
			if x+1 < w && i+1 < dop {
				addEdge(i, i+1)
			}
			if (y+1)*w+x < dop {
				addEdge(i, (y+1)*w+x)
			}
		}
	default:
		panic(fmt.Sprintf("appmodel: unknown shape %d", b.Shape))
	}

	// Second pass: split the application total across the edges, weighted
	// by topology role with ±50% deterministic jitter.
	totalW := 0.0
	jitter := make([]float64, len(proto))
	for i, pe := range proto {
		jitter[i] = pe.weight * (0.5 + rng.Float64())
		totalW += jitter[i]
	}
	if totalW > 0 {
		totalBytes := b.CommMBTotal * 1e6
		for i, pe := range proto {
			g.Edges = append(g.Edges, Edge{
				Src:    TaskID(pe.src),
				Dst:    TaskID(pe.dst),
				Volume: totalBytes * jitter[i] / totalW,
			})
		}
	}
	return g
}
