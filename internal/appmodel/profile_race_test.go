package appmodel

import (
	"sync"
	"testing"

	"parm/internal/power"
)

// WCETEstimate is served from a package-level sync.Map shared by every
// engine goroutine (the expr worker pool runs simulations concurrently).
// Hammering the same key grid from many goroutines must race-cleanly return
// the same values the serial path computes.
func TestWCETEstimateConcurrent(t *testing.T) {
	p := power.MustParams(power.Node7)
	benches := Benchmarks()[:4]
	vdds := p.VddLevels(0.1)
	dops := DoPValues()

	// Serial reference, also warming part of the cache so concurrent
	// callers mix loads against stores.
	want := make(map[wcetKey]float64)
	for _, b := range benches[:2] {
		for _, v := range vdds {
			for _, d := range dops {
				want[wcetKey{bench: b.Name, node: p.Node, vdd: v, dop: d}] = b.WCETEstimate(p, v, d)
			}
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, b := range benches {
				for _, v := range vdds {
					for _, d := range dops {
						got := b.WCETEstimate(p, v, d)
						key := wcetKey{bench: b.Name, node: p.Node, vdd: v, dop: d}
						if ref, ok := want[key]; ok && got != ref {
							t.Errorf("%s vdd=%g dop=%d: concurrent %g != serial %g",
								b.Name, v, d, got, ref)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()

	// Values computed under contention must now be stable.
	for _, b := range benches {
		for _, v := range vdds {
			for _, d := range dops {
				if first, second := b.WCETEstimate(p, v, d), b.WCETEstimate(p, v, d); first != second {
					t.Fatalf("%s vdd=%g dop=%d unstable: %g then %g", b.Name, v, d, first, second)
				}
			}
		}
	}
}
