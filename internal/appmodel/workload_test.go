package appmodel

import (
	"math/rand"
	"testing"
)

func TestGenerateBasics(t *testing.T) {
	w, err := Generate(WorkloadConfig{
		Kind: WorkloadMixed, NumApps: 20, ArrivalGap: 0.1, Node: np7(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Apps) != 20 {
		t.Fatalf("got %d apps", len(w.Apps))
	}
	prev := -1.0
	for i, a := range w.Apps {
		if a.ID != i {
			t.Errorf("app %d has ID %d", i, a.ID)
		}
		if a.Arrival <= prev && i > 0 {
			t.Errorf("arrivals not strictly increasing at %d", i)
		}
		prev = a.Arrival
		if a.RelDeadline <= 0 {
			t.Errorf("app %d has non-positive deadline", i)
		}
	}
	if w.Apps[0].Arrival != 0 {
		t.Errorf("first arrival at %g, want 0", w.Apps[0].Arrival)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := WorkloadConfig{Kind: WorkloadComm, NumApps: 10, ArrivalGap: 0.05, Node: np7(), Seed: 9}
	w1, err1 := Generate(cfg)
	w2, err2 := Generate(cfg)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range w1.Apps {
		a, b := w1.Apps[i], w2.Apps[i]
		if a.Bench.Name != b.Bench.Name || a.Arrival != b.Arrival || a.RelDeadline != b.RelDeadline {
			t.Fatalf("app %d differs between identical seeds", i)
		}
	}
}

// An injected Rand seeded with s must reproduce Seed: s exactly, and must
// take precedence over any Seed also set — the injection contract callers
// rely on to share one stream across several generators.
func TestGenerateInjectedRand(t *testing.T) {
	base := WorkloadConfig{Kind: WorkloadMixed, NumApps: 15, ArrivalGap: 0.1, Node: np7(), Seed: 11}
	bySeed, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}

	injected := base
	injected.Seed = 999 // must be ignored when Rand is set
	injected.Rand = rand.New(rand.NewSource(11))
	byRand, err := Generate(injected)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bySeed.Apps {
		a, b := bySeed.Apps[i], byRand.Apps[i]
		if a.Bench.Name != b.Bench.Name || a.Arrival != b.Arrival || a.RelDeadline != b.RelDeadline {
			t.Fatalf("app %d: injected rand(11) diverges from Seed: 11", i)
		}
	}

	// The stream advances: a second workload drawn from the same injected
	// Rand must differ from the first (fresh draws, not a reset).
	again := base
	again.Rand = injected.Rand
	w2, err := Generate(again)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range bySeed.Apps {
		if bySeed.Apps[i].Bench.Name != w2.Apps[i].Bench.Name || bySeed.Apps[i].Arrival != w2.Apps[i].Arrival {
			same = false
		}
	}
	if same {
		t.Error("second workload from a shared Rand repeated the first; stream did not advance")
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	mk := func(seed int64) *Workload {
		w, err := Generate(WorkloadConfig{Kind: WorkloadMixed, NumApps: 10, ArrivalGap: 0.1, Node: np7(), Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	w1, w2 := mk(1), mk(2)
	same := true
	for i := range w1.Apps {
		if w1.Apps[i].Bench.Name != w2.Apps[i].Bench.Name || w1.Apps[i].Arrival != w2.Apps[i].Arrival {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestGeneratePoolMembership(t *testing.T) {
	inKind := func(k Kind, name string) bool {
		for _, b := range BenchmarksOfKind(k) {
			if b.Name == name {
				return true
			}
		}
		return false
	}
	w, err := Generate(WorkloadConfig{Kind: WorkloadComm, NumApps: 30, ArrivalGap: 0.1, Node: np7(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range w.Apps {
		if !inKind(CommIntensive, a.Bench.Name) {
			t.Errorf("comm workload contains %s", a.Bench.Name)
		}
	}
	w, err = Generate(WorkloadConfig{Kind: WorkloadCompute, NumApps: 30, ArrivalGap: 0.1, Node: np7(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range w.Apps {
		if !inKind(ComputeIntensive, a.Bench.Name) {
			t.Errorf("compute workload contains %s", a.Bench.Name)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(WorkloadConfig{Kind: WorkloadMixed, NumApps: 0, ArrivalGap: 0.1, Node: np7()}); err == nil {
		t.Error("zero apps accepted")
	}
	if _, err := Generate(WorkloadConfig{Kind: WorkloadMixed, NumApps: 5, ArrivalGap: 0, Node: np7()}); err == nil {
		t.Error("zero gap accepted")
	}
	if _, err := Generate(WorkloadConfig{Kind: WorkloadKind(42), NumApps: 5, ArrivalGap: 0.1, Node: np7()}); err == nil {
		t.Error("unknown kind accepted")
	}
}

// Deadlines must be achievable at some (Vdd, DoP): otherwise every app is
// dropped on arrival and the evaluation is vacuous.
func TestDeadlinesAchievable(t *testing.T) {
	p := np7()
	for _, kind := range WorkloadKinds {
		w, err := Generate(WorkloadConfig{Kind: kind, NumApps: 20, ArrivalGap: 0.1, Node: p, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range w.Apps {
			ok := false
			for _, v := range p.VddLevels(0.1) {
				for _, d := range DoPValues() {
					if a.Bench.WCETEstimate(p, v, d) < a.RelDeadline {
						ok = true
					}
				}
			}
			if !ok {
				t.Errorf("%s deadline %g unachievable at any operating point", a, a.RelDeadline)
			}
		}
	}
}

// The deadlines must also embody the paper's trade-off: achievable at NTC
// with wide parallelism for most apps, but not at NTC with the baseline's
// fixed DoP 16.
func TestDeadlinesForceTheTradeoff(t *testing.T) {
	p := np7()
	w, err := Generate(WorkloadConfig{Kind: WorkloadMixed, NumApps: 40, ArrivalGap: 0.1, Node: p, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	lowVddWideOK, lowVddFixedOK := 0, 0
	for _, a := range w.Apps {
		if a.Bench.WCETEstimate(p, 0.5, 32) < a.RelDeadline {
			lowVddWideOK++
		}
		if a.Bench.WCETEstimate(p, p.VNTC, 16) < a.RelDeadline {
			lowVddFixedOK++
		}
	}
	if lowVddWideOK < len(w.Apps)*3/4 {
		t.Errorf("only %d/%d apps meet deadlines at 0.5V DoP 32", lowVddWideOK, len(w.Apps))
	}
	if lowVddFixedOK > len(w.Apps)/2 {
		t.Errorf("%d/%d apps meet deadlines at NTC DoP 16; baseline pressure missing", lowVddFixedOK, len(w.Apps))
	}
}

func TestWorkloadKindString(t *testing.T) {
	if WorkloadCompute.String() != "compute-intensive" ||
		WorkloadComm.String() != "communication-intensive" ||
		WorkloadMixed.String() != "mixed" {
		t.Error("WorkloadKind.String wrong")
	}
}
