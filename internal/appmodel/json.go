package appmodel

import (
	"encoding/json"
	"fmt"
	"io"
)

// workloadJSON is the on-disk form of a workload: enough to regenerate the
// exact sequence (benchmark names, arrivals, deadlines). Graphs and
// profiles are re-derived deterministically from the benchmark names.
type workloadJSON struct {
	Kind string    `json:"kind"`
	Apps []appJSON `json:"apps"`
}

type appJSON struct {
	ID          int     `json:"id"`
	Bench       string  `json:"bench"`
	Arrival     float64 `json:"arrival_s"`
	RelDeadline float64 `json:"deadline_s"`
}

// WriteJSON serializes the workload so a run can be archived and replayed
// exactly (cmd/parmsim -save/-load).
func (w *Workload) WriteJSON(out io.Writer) error {
	doc := workloadJSON{Kind: w.Kind.String()}
	for _, a := range w.Apps {
		doc.Apps = append(doc.Apps, appJSON{
			ID: a.ID, Bench: a.Bench.Name, Arrival: a.Arrival, RelDeadline: a.RelDeadline,
		})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadWorkloadJSON reconstructs a workload written by WriteJSON. It
// validates benchmark names, ID uniqueness, and timing fields.
func ReadWorkloadJSON(in io.Reader) (*Workload, error) {
	var doc workloadJSON
	if err := json.NewDecoder(in).Decode(&doc); err != nil {
		return nil, fmt.Errorf("appmodel: decoding workload: %w", err)
	}
	w := &Workload{}
	switch doc.Kind {
	case WorkloadCompute.String():
		w.Kind = WorkloadCompute
	case WorkloadComm.String():
		w.Kind = WorkloadComm
	case WorkloadMixed.String():
		w.Kind = WorkloadMixed
	default:
		return nil, fmt.Errorf("appmodel: unknown workload kind %q", doc.Kind)
	}
	if len(doc.Apps) == 0 {
		return nil, fmt.Errorf("appmodel: workload has no applications")
	}
	seen := map[int]bool{}
	for _, aj := range doc.Apps {
		if seen[aj.ID] {
			return nil, fmt.Errorf("appmodel: duplicate app ID %d", aj.ID)
		}
		seen[aj.ID] = true
		b, err := BenchmarkByName(aj.Bench)
		if err != nil {
			return nil, err
		}
		if aj.Arrival < 0 || aj.RelDeadline <= 0 {
			return nil, fmt.Errorf("appmodel: app %d has invalid timing (arrival %g, deadline %g)",
				aj.ID, aj.Arrival, aj.RelDeadline)
		}
		w.Apps = append(w.Apps, &App{
			ID: aj.ID, Bench: b, Arrival: aj.Arrival, RelDeadline: aj.RelDeadline,
		})
	}
	return w, nil
}
