package appmodel

import (
	"fmt"
	"math/rand"

	"parm/internal/power"
)

// WorkloadKind selects which benchmark pool a workload sequence draws from
// (paper §5.1: compute-intensive, communication-intensive, and mixed
// sequences of up to 20 applications).
type WorkloadKind int

// Workload kinds.
const (
	WorkloadCompute WorkloadKind = iota
	WorkloadComm
	WorkloadMixed
)

// String returns the sequence name used in the paper's figures.
func (k WorkloadKind) String() string {
	switch k {
	case WorkloadCompute:
		return "compute-intensive"
	case WorkloadComm:
		return "communication-intensive"
	default:
		return "mixed"
	}
}

// WorkloadKinds lists the three sequence types of the evaluation.
var WorkloadKinds = []WorkloadKind{WorkloadCompute, WorkloadComm, WorkloadMixed}

// WorkloadConfig parameterizes workload sequence generation.
type WorkloadConfig struct {
	// Kind selects the benchmark pool.
	Kind WorkloadKind
	// NumApps is the sequence length (paper: up to 20).
	NumApps int
	// ArrivalGap is the inter-application arrival gap in seconds
	// (paper: 0.2, 0.1, or 0.05 s).
	ArrivalGap float64
	// Node provides the frequency model used to size deadlines.
	Node power.NodeParams
	// DeadlineSlack scales deadlines relative to the reference WCET.
	// Zero selects the default of 1.45.
	DeadlineSlack float64
	// Seed makes the sequence reproducible.
	Seed int64
	// Rand, when non-nil, supplies the random stream instead of Seed. The
	// caller owns its synchronization; Generate consumes it single-threaded.
	// Passing rand.New(rand.NewSource(s)) is equivalent to Seed: s.
	Rand *rand.Rand
}

// Workload is a deterministic sequence of application arrivals.
type Workload struct {
	Kind WorkloadKind
	Apps []*App
}

// Generate builds a workload sequence: NumApps applications drawn uniformly
// from the configured pool, arriving every ArrivalGap seconds (with ±20%
// jitter), each with a deadline of DeadlineSlack times its reference WCET
// (the profiled time at mid Vdd and DoP 16, with per-app jitter). It
// returns an error for a non-positive app count or arrival gap.
func Generate(cfg WorkloadConfig) (*Workload, error) {
	if cfg.NumApps <= 0 {
		return nil, fmt.Errorf("appmodel: non-positive NumApps %d", cfg.NumApps)
	}
	if cfg.ArrivalGap <= 0 {
		return nil, fmt.Errorf("appmodel: non-positive ArrivalGap %g", cfg.ArrivalGap)
	}
	slack := cfg.DeadlineSlack
	if slack <= 0 {
		slack = 0.95
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}

	var pool []Benchmark
	switch cfg.Kind {
	case WorkloadCompute:
		pool = BenchmarksOfKind(ComputeIntensive)
	case WorkloadComm:
		pool = BenchmarksOfKind(CommIntensive)
	case WorkloadMixed:
		pool = Benchmarks()
	default:
		return nil, fmt.Errorf("appmodel: unknown workload kind %d", cfg.Kind)
	}

	// Deadline reference point: the profiled time at DoP 16 and an upper-
	// mid voltage. Deadlines this tight force a fixed-DoP manager toward
	// nominal Vdd, while a manager that widens parallelism can meet them
	// near threshold — the trade-off PARM exploits (paper §3.5).
	refVdd := cfg.Node.VNTC + 0.75*(cfg.Node.VNominal-cfg.Node.VNTC)

	w := &Workload{Kind: cfg.Kind, Apps: make([]*App, 0, cfg.NumApps)}
	t := 0.0
	for i := 0; i < cfg.NumApps; i++ {
		b := pool[rng.Intn(len(pool))]
		ref := b.WCETEstimate(cfg.Node, refVdd, 16)
		jitter := 0.93 + 0.14*rng.Float64()
		app := &App{
			ID:          i,
			Bench:       b,
			Arrival:     t,
			RelDeadline: slack * ref * jitter,
		}
		w.Apps = append(w.Apps, app)
		t += cfg.ArrivalGap * (0.8 + 0.4*rng.Float64())
	}
	return w, nil
}
