package appmodel

import (
	"testing"

	"parm/internal/pdn"
)

func TestThirteenBenchmarks(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 13 {
		t.Fatalf("got %d benchmarks, want 13", len(bs))
	}
	seen := map[string]bool{}
	for _, b := range bs {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
	}
}

// The two groups of §5.1, with radix appearing in both.
func TestBenchmarkGroups(t *testing.T) {
	comm := BenchmarksOfKind(CommIntensive)
	compute := BenchmarksOfKind(ComputeIntensive)
	if len(comm) != 7 {
		t.Errorf("comm group has %d benchmarks, want 7", len(comm))
	}
	if len(compute) != 7 {
		t.Errorf("compute group has %d benchmarks, want 7", len(compute))
	}
	inGroup := func(g []Benchmark, name string) bool {
		for _, b := range g {
			if b.Name == name {
				return true
			}
		}
		return false
	}
	for _, name := range []string{"cholesky", "fft", "radix", "raytrace", "dedup", "canneal", "vips"} {
		if !inGroup(comm, name) {
			t.Errorf("%s missing from comm group", name)
		}
	}
	for _, name := range []string{"swaptions", "fluidanimate", "streamcluster", "blackscholes", "radix", "bodytrack", "radiosity"} {
		if !inGroup(compute, name) {
			t.Errorf("%s missing from compute group", name)
		}
	}
}

func TestBenchmarkByName(t *testing.T) {
	b, err := BenchmarkByName("fft")
	if err != nil || b.Name != "fft" {
		t.Errorf("BenchmarkByName(fft) = %v, %v", b, err)
	}
	if _, err := BenchmarkByName("doom"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestBenchmarkParameterSanity(t *testing.T) {
	for _, b := range Benchmarks() {
		if b.WorkGCycles <= 0 {
			t.Errorf("%s: non-positive work", b.Name)
		}
		if b.SerialFrac < 0 || b.SerialFrac >= 0.5 {
			t.Errorf("%s: implausible serial fraction %g", b.Name, b.SerialFrac)
		}
		if b.HighTaskFrac <= 0 || b.HighTaskFrac > 1 {
			t.Errorf("%s: bad HighTaskFrac %g", b.Name, b.HighTaskFrac)
		}
		if b.CommMBTotal <= 0 {
			t.Errorf("%s: non-positive comm volume", b.Name)
		}
	}
}

// Communication-intensive benchmarks carry an order of magnitude more
// traffic than compute-intensive ones (the §5.1 workload split).
func TestCommVolumeSplit(t *testing.T) {
	minComm, maxCompute := 1e18, 0.0
	for _, b := range Benchmarks() {
		if b.Kind == CommIntensive && b.CommMBTotal < minComm {
			minComm = b.CommMBTotal
		}
		if b.Kind == ComputeIntensive && b.CommMBTotal > maxCompute {
			maxCompute = b.CommMBTotal
		}
	}
	if minComm < 3*maxCompute {
		t.Errorf("groups not separated: min comm %g vs max compute %g", minComm, maxCompute)
	}
}

func TestDoPValues(t *testing.T) {
	vals := DoPValues()
	if len(vals) != 8 {
		t.Fatalf("DoPValues = %v", vals)
	}
	for i, v := range vals {
		if v != 4*(i+1) {
			t.Errorf("DoPValues[%d] = %d, want %d", i, v, 4*(i+1))
		}
	}
	if vals[0] != MinDoP || vals[len(vals)-1] != MaxDoP {
		t.Error("DoP bounds inconsistent")
	}
}

func TestKindString(t *testing.T) {
	if ComputeIntensive.String() != "compute" || CommIntensive.String() != "comm" {
		t.Error("Kind.String wrong")
	}
}

func TestGraphValidAllBenchmarksAllDoPs(t *testing.T) {
	for _, b := range Benchmarks() {
		for _, dop := range DoPValues() {
			g := b.Graph(dop)
			if g.NumTasks() != dop {
				t.Fatalf("%s dop=%d: %d tasks", b.Name, dop, g.NumTasks())
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("%s dop=%d: %v", b.Name, dop, err)
			}
			if len(g.Edges) == 0 {
				t.Fatalf("%s dop=%d: no edges", b.Name, dop)
			}
		}
	}
}

func TestGraphDeterministic(t *testing.T) {
	for _, b := range Benchmarks()[:3] {
		g1, g2 := b.Graph(16), b.Graph(16)
		if len(g1.Edges) != len(g2.Edges) {
			t.Fatalf("%s: edge counts differ", b.Name)
		}
		for i := range g1.Edges {
			if g1.Edges[i] != g2.Edges[i] {
				t.Fatalf("%s: edge %d differs", b.Name, i)
			}
		}
		for i := range g1.Tasks {
			if g1.Tasks[i] != g2.Tasks[i] {
				t.Fatalf("%s: task %d differs", b.Name, i)
			}
		}
	}
}

func TestGraphPanicsOnBadDoP(t *testing.T) {
	b := Benchmarks()[0]
	for _, dop := range []int{0, 3, 5, 36, -4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Graph(%d) did not panic", dop)
				}
			}()
			b.Graph(dop)
		}()
	}
}

// Total edge volume equals the benchmark's CommMBTotal at every DoP: wider
// parallelism partitions the same data.
func TestVolumeConservedAcrossDoP(t *testing.T) {
	for _, b := range Benchmarks() {
		for _, dop := range []int{4, 16, 32} {
			g := b.Graph(dop)
			got := g.TotalVolume()
			want := b.CommMBTotal * 1e6
			if got < want*0.999 || got > want*1.001 {
				t.Errorf("%s dop=%d: total volume %g, want %g", b.Name, dop, got, want)
			}
		}
	}
}

func TestHighTaskCount(t *testing.T) {
	for _, b := range Benchmarks() {
		for _, dop := range []int{8, 32} {
			g := b.Graph(dop)
			high := 0
			for _, task := range g.Tasks {
				if task.Activity == pdn.High {
					high++
				}
			}
			want := int(b.HighTaskFrac*float64(dop) + 0.999999)
			if high != want {
				t.Errorf("%s dop=%d: %d high tasks, want %d", b.Name, dop, high, want)
			}
		}
	}
}

// Work is conserved: task work sums to the benchmark total (within the
// deterministic imbalance jitter, which redistributes but keeps each task's
// share bounded).
func TestWorkDistribution(t *testing.T) {
	for _, b := range Benchmarks() {
		g := b.Graph(16)
		sum := 0.0
		for _, task := range g.Tasks {
			sum += task.WorkCycles
			if task.WorkCycles <= 0 {
				t.Errorf("%s: task %d has no work", b.Name, task.ID)
			}
		}
		total := b.WorkGCycles * 1e9
		if sum < total*0.8 || sum > total*1.25 {
			t.Errorf("%s: work sum %g far from total %g", b.Name, sum, total)
		}
	}
}

func TestEdgesBySortedVolume(t *testing.T) {
	g := Benchmarks()[0].Graph(16)
	sorted := g.EdgesBySortedVolume()
	if len(sorted) != len(g.Edges) {
		t.Fatal("sorted edge count differs")
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Volume > sorted[i-1].Volume {
			t.Fatalf("edges not sorted at %d", i)
		}
	}
	// Original must be untouched (no aliasing).
	before := append([]Edge(nil), g.Edges...)
	_ = g.EdgesBySortedVolume()
	for i := range before {
		if g.Edges[i] != before[i] {
			t.Fatal("EdgesBySortedVolume mutated the receiver")
		}
	}
}

func TestValidateRejectsBadGraphs(t *testing.T) {
	mk := func() *APG {
		return &APG{
			Bench: "x",
			Tasks: []Task{{ID: 0, Activity: pdn.High, WorkCycles: 1}, {ID: 1, Activity: pdn.Low, WorkCycles: 1}},
			Edges: []Edge{{Src: 0, Dst: 1, Volume: 10}},
		}
	}
	if err := mk().Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	g := mk()
	g.Tasks[1].ID = 5
	if g.Validate() == nil {
		t.Error("misnumbered task accepted")
	}
	g = mk()
	g.Edges[0].Dst = 9
	if g.Validate() == nil {
		t.Error("out-of-range edge accepted")
	}
	g = mk()
	g.Edges[0] = Edge{Src: 1, Dst: 1}
	if g.Validate() == nil {
		t.Error("self-loop accepted")
	}
	g = mk()
	g.Edges[0] = Edge{Src: 1, Dst: 0}
	if g.Validate() == nil {
		t.Error("anti-topological edge accepted")
	}
	g = mk()
	g.Edges[0].Volume = -1
	if g.Validate() == nil {
		t.Error("negative volume accepted")
	}
	g = mk()
	g.Tasks[0].Activity = pdn.Idle
	if g.Validate() == nil {
		t.Error("idle-activity task accepted")
	}
	g = mk()
	g.Tasks[0].WorkCycles = -5
	if g.Validate() == nil {
		t.Error("negative work accepted")
	}
}
