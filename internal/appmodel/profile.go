package appmodel

import (
	"fmt"
	"sync"

	"parm/internal/pdn"
	"parm/internal/power"
)

// Core and router switching-activity factors per task activity class, used
// for power estimation. High-activity (compute-bound) tasks keep the core
// pipeline busy; low-activity (stall-bound) tasks mostly wait on memory or
// synchronization.
const (
	HighCoreActivity = 0.90
	LowCoreActivity  = 0.35
)

// FlitBytes is the payload of one NoC flit in bytes (128-bit links).
const FlitBytes = 16

// estFlitsPerCycle is the effective per-flow NoC throughput in flits/cycle
// assumed by the offline WCET estimate (the real value comes from the NoC
// simulation at runtime; the estimate only has to be in the right ballpark
// for Algorithm 1's deadline feasibility check).
const estFlitsPerCycle = 1.0

// ActivityFactor returns the core activity factor of class c.
func ActivityFactor(c pdn.Class) float64 {
	switch c {
	case pdn.High:
		return HighCoreActivity
	case pdn.Low:
		return LowCoreActivity
	default:
		return 0
	}
}

// routerUtilEstimate is the profiled average router utilization per kind,
// used only in offline power estimates.
func routerUtilEstimate(k Kind) float64 {
	if k == CommIntensive {
		return 0.40
	}
	return 0.15
}

// ComputeCycles returns an aggregate cycle count of benchmark b at the
// given DoP under a flat Amdahl model: serial + parallel share of the
// slowest task + synchronization overhead growing with DoP. The runtime
// WCET estimate uses the APG critical path (CriticalPathCycles), which this
// lower-bounds.
func (b Benchmark) ComputeCycles(dop int) float64 {
	total := b.WorkGCycles * 1e9
	serial := total * b.SerialFrac
	parallel := total - serial
	sync := b.SyncKCyclesPerTask * 1e3 * float64(dop)
	// The slowest task carries up to +15% imbalance (see Graph).
	return serial + parallel/float64(dop)*1.15 + sync
}

// EdgeCommCycles returns the profile-time estimate of one edge's serialized
// transfer in cycles: its flit count at the assumed effective per-flow NoC
// throughput. The runtime replaces this with NoC-measured values.
func EdgeCommCycles(e Edge) float64 {
	return e.Volume / FlitBytes / estFlitsPerCycle
}

// CriticalPathCycles returns the longest path through g in cycles, where
// each task contributes its work plus syncCycles of barrier overhead and
// each edge contributes commCycles(e). With one dedicated core per task
// (the platform's mapping model) this equals the schedule makespan. A nil
// commCycles means zero-cost communication.
func (g *APG) CriticalPathCycles(syncCycles float64, commCycles func(Edge) float64) float64 {
	n := g.NumTasks()
	ready := make([]float64, n)
	best := 0.0
	// Edges satisfy Src < Dst, so one forward sweep over tasks suffices.
	succ := make([][]Edge, n)
	for _, e := range g.Edges {
		succ[e.Src] = append(succ[e.Src], e)
	}
	for i := 0; i < n; i++ {
		finish := ready[i] + g.Tasks[i].WorkCycles + syncCycles
		if finish > best {
			best = finish
		}
		for _, e := range succ[i] {
			c := 0.0
			if commCycles != nil {
				c = commCycles(e)
			}
			if arr := finish + c; arr > ready[e.Dst] {
				ready[e.Dst] = arr
			}
		}
	}
	return best
}

// SyncCyclesPerTask returns the per-task barrier/synchronization overhead
// in cycles at the given DoP. It is sized so a typical critical path
// accumulates roughly SyncKCyclesPerTask * dop kilocycles in total, making
// speedup roll off at high DoP as the paper observes.
func (b Benchmark) SyncCyclesPerTask(dop int) float64 {
	return b.SyncKCyclesPerTask * 1e3 * float64(dop) / 8
}

// RouterHz is the NoC clock used to convert communication cycles to
// seconds in profile estimates (paper §4.4: routers at 1 GHz).
const RouterHz = 1e9

// SPMDTimeEstimate returns the per-thread SPMD execution-time estimate of
// graph g in seconds: compute (work + barrier overhead at the given core
// frequency) plus half of every incident edge's serialized transfer at the
// profile-time NoC throughput. The slowest thread bounds the application
// (paper §3.2: threads run concurrently on dedicated cores; edges are
// communication volumes).
func (g *APG) SPMDTimeEstimate(coreHz, syncCycles float64) float64 {
	n := g.NumTasks()
	t := make([]float64, n)
	for i, task := range g.Tasks {
		t[i] = (task.WorkCycles + syncCycles) / coreHz
	}
	for _, e := range g.Edges {
		d := EdgeCommCycles(e) / RouterHz
		t[e.Src] += d / 2
		t[e.Dst] += d / 2
	}
	m := 0.0
	for _, v := range t {
		if v > m {
			m = v
		}
	}
	return m
}

// wcetCache memoizes WCETEstimate: Algorithm 1 evaluates it for every
// (Vdd, DoP) combination on every scheduling attempt. Profiles are
// deterministic, so caching is safe.
var wcetCache sync.Map // key wcetKey -> float64

type wcetKey struct {
	bench string
	node  power.Node
	vdd   power.Volts
	dop   int
}

// WCETEstimate returns the profiled worst-case execution time in seconds of
// benchmark b at supply voltage vdd and parallelism dop on node p (paper
// Algorithm 1, line 5): the SPMD makespan estimate with profile-time
// communication throughput. It returns +Inf when vdd cannot clock the core
// (at or below threshold).
func (b Benchmark) WCETEstimate(p power.NodeParams, vdd power.Volts, dop int) float64 {
	key := wcetKey{bench: b.Name, node: p.Node, vdd: vdd, dop: dop}
	if v, ok := wcetCache.Load(key); ok {
		return v.(float64)
	}
	f := p.Frequency(vdd)
	var est float64
	if f <= 0 {
		est = inf()
	} else {
		est = b.Graph(dop).SPMDTimeEstimate(f, b.SyncCyclesPerTask(dop))
	}
	wcetCache.Store(key, est)
	return est
}

// PowerEstimate returns the profiled total power of benchmark b mapped at
// vdd with parallelism dop: the sum of its tasks' tile powers (paper
// Algorithm 2, line 1 input).
func (b Benchmark) PowerEstimate(p power.NodeParams, vdd power.Volts, dop int) power.Watts {
	g := b.Graph(dop)
	ru := routerUtilEstimate(b.Kind)
	total := power.Watts(0)
	for _, t := range g.Tasks {
		total += p.TilePower(vdd, ActivityFactor(t.Activity), ru)
	}
	return total
}

// App is one arriving application instance: a benchmark plus its arrival
// time and deadline. Apps are what the PARM service queue holds.
type App struct {
	// ID is unique within a workload.
	ID int
	// Bench is the profiled benchmark this instance runs.
	Bench Benchmark
	// Arrival is the arrival time in seconds from workload start.
	Arrival float64
	// RelDeadline is the deadline in seconds, relative to arrival.
	RelDeadline float64

	graphs map[int]*APG
}

// AbsDeadline returns the absolute deadline in seconds from workload start.
func (a *App) AbsDeadline() float64 { return a.Arrival + a.RelDeadline }

// Graph returns (and caches) the APG of this app at the given DoP.
func (a *App) Graph(dop int) *APG {
	if a.graphs == nil {
		a.graphs = make(map[int]*APG)
	}
	if g, ok := a.graphs[dop]; ok {
		return g
	}
	g := a.Bench.Graph(dop)
	a.graphs[dop] = g
	return g
}

// String identifies the app for logs: "app3(fft)".
func (a *App) String() string { return fmt.Sprintf("app%d(%s)", a.ID, a.Bench.Name) }

func inf() float64 { return 1e308 }
