package appmodel

import (
	"strings"
	"testing"
)

func TestWorkloadJSONRoundTrip(t *testing.T) {
	w, err := Generate(WorkloadConfig{
		Kind: WorkloadComm, NumApps: 6, ArrivalGap: 0.1, Node: np7(), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := w.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWorkloadJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != w.Kind || len(got.Apps) != len(w.Apps) {
		t.Fatalf("round trip lost structure: %v/%d", got.Kind, len(got.Apps))
	}
	for i := range w.Apps {
		a, b := w.Apps[i], got.Apps[i]
		if a.ID != b.ID || a.Bench.Name != b.Bench.Name ||
			a.Arrival != b.Arrival || a.RelDeadline != b.RelDeadline {
			t.Errorf("app %d differs after round trip", i)
		}
	}
}

func TestReadWorkloadJSONValidation(t *testing.T) {
	cases := map[string]string{
		"bad json":      `{`,
		"unknown kind":  `{"kind":"sideways","apps":[{"id":0,"bench":"fft","arrival_s":0,"deadline_s":0.1}]}`,
		"no apps":       `{"kind":"mixed","apps":[]}`,
		"unknown bench": `{"kind":"mixed","apps":[{"id":0,"bench":"doom","arrival_s":0,"deadline_s":0.1}]}`,
		"duplicate id":  `{"kind":"mixed","apps":[{"id":0,"bench":"fft","arrival_s":0,"deadline_s":0.1},{"id":0,"bench":"fft","arrival_s":0.1,"deadline_s":0.1}]}`,
		"bad deadline":  `{"kind":"mixed","apps":[{"id":0,"bench":"fft","arrival_s":0,"deadline_s":0}]}`,
		"negative time": `{"kind":"mixed","apps":[{"id":0,"bench":"fft","arrival_s":-1,"deadline_s":0.1}]}`,
	}
	for name, doc := range cases {
		if _, err := ReadWorkloadJSON(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// A loaded workload drives the same deterministic graphs as a generated
// one: deadlines and names are sufficient state.
func TestLoadedWorkloadEquivalentGraphs(t *testing.T) {
	w, err := Generate(WorkloadConfig{
		Kind: WorkloadMixed, NumApps: 3, ArrivalGap: 0.1, Node: np7(), Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := w.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWorkloadJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Apps {
		g1, g2 := w.Apps[i].Graph(16), got.Apps[i].Graph(16)
		if len(g1.Edges) != len(g2.Edges) {
			t.Fatalf("app %d: graphs differ after load", i)
		}
		for k := range g1.Edges {
			if g1.Edges[k] != g2.Edges[k] {
				t.Fatalf("app %d edge %d differs", i, k)
			}
		}
	}
}
