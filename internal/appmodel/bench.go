// Package appmodel provides the application workload model consumed by the
// PARM runtime: the 13 SPLASH-2 / PARSEC benchmarks of the paper's
// evaluation, their task graphs (APGs), and the offline profile data
// (worst-case execution time, power, switching activity, communication
// volume) that the paper collects with GEM5 and McPAT.
//
// Profiles here are generated from a parametric analytic model (see
// DESIGN.md, substitution table): execution time follows an Amdahl
// serial/parallel split plus a synchronization overhead that grows with the
// degree of parallelism (DoP), so that most applications stop scaling past
// DoP 32 exactly as the paper observes; communication-intensive benchmarks
// carry heavy APG edges and more Low-activity (stall-bound) tasks, while
// compute-intensive benchmarks have mostly High-activity tasks. Everything
// is deterministic given the benchmark name.
package appmodel

import (
	"fmt"
	"hash/fnv"
	"math/rand"
)

// Kind classifies a benchmark as in §5.1 of the paper.
type Kind int

// Benchmark kinds.
const (
	ComputeIntensive Kind = iota
	CommIntensive
)

// String returns "compute" or "comm".
func (k Kind) String() string {
	if k == CommIntensive {
		return "comm"
	}
	return "compute"
}

// Shape selects the APG topology generated for a benchmark.
type Shape int

// APG shapes, chosen to reflect the real benchmark's parallel structure.
const (
	// ShapeForkJoin is a root task fanning out to workers that join at a
	// sink (embarrassingly parallel financial/physics kernels).
	ShapeForkJoin Shape = iota
	// ShapePipeline is a linear chain of stages, each stage a group of
	// tasks, with all-to-all edges between consecutive stages (streaming
	// apps like dedup and vips).
	ShapePipeline
	// ShapeButterfly has log2(n) stages with stride-doubling exchanges
	// (FFT, radix sort).
	ShapeButterfly
	// ShapeTree is a binary reduction tree (elimination trees, radiosity
	// gather).
	ShapeTree
	// ShapeStencil connects each task to its mesh neighbors (particle and
	// streaming-cluster codes).
	ShapeStencil
)

// Benchmark describes one application of the evaluation workload and the
// parameters of its analytic profile.
type Benchmark struct {
	// Name is the SPLASH-2 / PARSEC benchmark name.
	Name string
	// Kind is the paper's classification (radix appears in both groups; it
	// is modeled once with intermediate parameters and listed in both).
	Kind Kind
	// Shape selects the APG generator.
	Shape Shape

	// WorkGCycles is the total computational work in giga-clock-cycles.
	WorkGCycles float64
	// SerialFrac is the Amdahl serial fraction in [0,1).
	SerialFrac float64
	// SyncKCyclesPerTask is the per-task synchronization overhead in
	// kilo-cycles added for every unit of DoP; it makes speedup roll off
	// beyond DoP ~32.
	SyncKCyclesPerTask float64
	// CommMBTotal is the application's total communication volume in
	// megabytes over its life, split across the APG edges (so per-edge
	// volume shrinks as DoP grows and the data is partitioned wider).
	CommMBTotal float64
	// HighTaskFrac is the fraction of tasks with High switching activity.
	HighTaskFrac float64
}

// benchTable lists the 13 benchmarks of §5.1. Communication-intensive:
// cholesky, fft, radix, raytrace, dedup, canneal, vips. Compute-intensive:
// swaptions, fluidanimate, streamcluster, blackscholes, radix, bodytrack,
// radiosity. Work and volume values are representative magnitudes that put
// a 20-application sequence in the paper's tens-of-seconds range.
var benchTable = []Benchmark{
	{Name: "cholesky", Kind: CommIntensive, Shape: ShapeTree,
		WorkGCycles: 1.4, SerialFrac: 0.03, SyncKCyclesPerTask: 220, CommMBTotal: 5400, HighTaskFrac: 0.40},
	{Name: "fft", Kind: CommIntensive, Shape: ShapeButterfly,
		WorkGCycles: 1.1, SerialFrac: 0.02, SyncKCyclesPerTask: 180, CommMBTotal: 7200, HighTaskFrac: 0.35},
	{Name: "radix", Kind: CommIntensive, Shape: ShapeButterfly,
		WorkGCycles: 1.6, SerialFrac: 0.025, SyncKCyclesPerTask: 200, CommMBTotal: 6300, HighTaskFrac: 0.55},
	{Name: "raytrace", Kind: CommIntensive, Shape: ShapeForkJoin,
		WorkGCycles: 2.2, SerialFrac: 0.04, SyncKCyclesPerTask: 160, CommMBTotal: 6000, HighTaskFrac: 0.45},
	{Name: "dedup", Kind: CommIntensive, Shape: ShapePipeline,
		WorkGCycles: 1.8, SerialFrac: 0.035, SyncKCyclesPerTask: 240, CommMBTotal: 7800, HighTaskFrac: 0.30},
	{Name: "canneal", Kind: CommIntensive, Shape: ShapeStencil,
		WorkGCycles: 2.0, SerialFrac: 0.045, SyncKCyclesPerTask: 260, CommMBTotal: 6600, HighTaskFrac: 0.35},
	{Name: "vips", Kind: CommIntensive, Shape: ShapePipeline,
		WorkGCycles: 1.7, SerialFrac: 0.025, SyncKCyclesPerTask: 210, CommMBTotal: 6300, HighTaskFrac: 0.40},
	{Name: "swaptions", Kind: ComputeIntensive, Shape: ShapeForkJoin,
		WorkGCycles: 2.6, SerialFrac: 0.01, SyncKCyclesPerTask: 90, CommMBTotal: 120, HighTaskFrac: 0.85},
	{Name: "fluidanimate", Kind: ComputeIntensive, Shape: ShapeStencil,
		WorkGCycles: 2.4, SerialFrac: 0.02, SyncKCyclesPerTask: 130, CommMBTotal: 260, HighTaskFrac: 0.75},
	{Name: "streamcluster", Kind: ComputeIntensive, Shape: ShapeStencil,
		WorkGCycles: 2.8, SerialFrac: 0.025, SyncKCyclesPerTask: 140, CommMBTotal: 280, HighTaskFrac: 0.70},
	{Name: "blackscholes", Kind: ComputeIntensive, Shape: ShapeForkJoin,
		WorkGCycles: 2.0, SerialFrac: 0.008, SyncKCyclesPerTask: 70, CommMBTotal: 90, HighTaskFrac: 0.90},
	{Name: "bodytrack", Kind: ComputeIntensive, Shape: ShapeForkJoin,
		WorkGCycles: 2.3, SerialFrac: 0.03, SyncKCyclesPerTask: 150, CommMBTotal: 220, HighTaskFrac: 0.80},
	{Name: "radiosity", Kind: ComputeIntensive, Shape: ShapeTree,
		WorkGCycles: 2.5, SerialFrac: 0.025, SyncKCyclesPerTask: 120, CommMBTotal: 180, HighTaskFrac: 0.80},
}

// Benchmarks returns all 13 modeled benchmarks.
func Benchmarks() []Benchmark {
	out := make([]Benchmark, len(benchTable))
	copy(out, benchTable)
	return out
}

// BenchmarkByName returns the named benchmark, or an error for an unknown
// name.
func BenchmarkByName(name string) (Benchmark, error) {
	for _, b := range benchTable {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("appmodel: unknown benchmark %q", name)
}

// BenchmarksOfKind returns the benchmark group of §5.1 for the given kind.
// radix, which the paper places in both groups, is included in both.
func BenchmarksOfKind(k Kind) []Benchmark {
	var out []Benchmark
	for _, b := range benchTable {
		if b.Kind == k || b.Name == "radix" {
			out = append(out, b)
		}
	}
	return out
}

// DoPValues lists the permitted degrees of parallelism: multiples of 4 from
// 4 to 32 (paper §3.3 and §5.1).
func DoPValues() []int { return []int{4, 8, 12, 16, 20, 24, 28, 32} }

// MinDoP and MaxDoP bound the permitted degree of parallelism.
const (
	MinDoP = 4
	MaxDoP = 32
)

// seededRand returns a deterministic RNG for the given benchmark name and
// stream label, so profile generation is reproducible across runs. Every
// call constructs a fresh *rand.Rand — never the global math/rand source —
// so concurrent profile generation (the expr worker pool builds graphs from
// many goroutines) is race-free without locking.
func seededRand(name, stream string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(stream))
	return rand.New(rand.NewSource(int64(h.Sum64())))
}
