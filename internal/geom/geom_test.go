package geom

import (
	"testing"
	"testing/quick"
)

func TestDirString(t *testing.T) {
	cases := map[Dir]string{
		East: "E", West: "W", North: "N", South: "S", Local: "L", DirInvalid: "?",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("Dir(%d).String() = %q, want %q", d, got, want)
		}
	}
}

func TestDirOpposite(t *testing.T) {
	pairs := [][2]Dir{{East, West}, {North, South}}
	for _, p := range pairs {
		if p[0].Opposite() != p[1] || p[1].Opposite() != p[0] {
			t.Errorf("%v and %v are not mutual opposites", p[0], p[1])
		}
	}
	if Local.Opposite() != Local {
		t.Errorf("Local.Opposite() = %v, want Local", Local.Opposite())
	}
	if DirInvalid.Opposite() != DirInvalid {
		t.Errorf("DirInvalid.Opposite() = %v, want DirInvalid", DirInvalid.Opposite())
	}
}

func TestOppositeIsInvolution(t *testing.T) {
	for _, d := range CardinalDirs {
		if d.Opposite().Opposite() != d {
			t.Errorf("Opposite(Opposite(%v)) != %v", d, d)
		}
	}
}

func TestDirDelta(t *testing.T) {
	for _, d := range CardinalDirs {
		dx, dy := d.Delta()
		if dx == 0 && dy == 0 {
			t.Errorf("%v.Delta() = (0,0)", d)
		}
		ox, oy := d.Opposite().Delta()
		if ox != -dx || oy != -dy {
			t.Errorf("%v delta not negated by opposite", d)
		}
	}
	if dx, dy := Local.Delta(); dx != 0 || dy != 0 {
		t.Errorf("Local.Delta() = (%d,%d), want (0,0)", dx, dy)
	}
}

func TestNewMeshPanics(t *testing.T) {
	for _, dims := range [][2]int{{0, 5}, {5, 0}, {-1, 3}, {3, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMesh(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			NewMesh(dims[0], dims[1])
		}()
	}
}

func TestMeshCoordRoundTrip(t *testing.T) {
	m := NewMesh(10, 6)
	if m.NumTiles() != 60 {
		t.Fatalf("NumTiles = %d, want 60", m.NumTiles())
	}
	for id := TileID(0); int(id) < m.NumTiles(); id++ {
		c := m.CoordOf(id)
		if !m.Contains(c) {
			t.Errorf("coord %v of tile %d outside mesh", c, id)
		}
		if got := m.TileAt(c); got != id {
			t.Errorf("TileAt(CoordOf(%d)) = %d", id, got)
		}
	}
}

func TestMeshRowMajorLayout(t *testing.T) {
	m := NewMesh(10, 6)
	if got := m.CoordOf(0); got != (Coord{0, 0}) {
		t.Errorf("tile 0 at %v", got)
	}
	if got := m.CoordOf(9); got != (Coord{9, 0}) {
		t.Errorf("tile 9 at %v", got)
	}
	if got := m.CoordOf(10); got != (Coord{0, 1}) {
		t.Errorf("tile 10 at %v", got)
	}
	if got := m.CoordOf(59); got != (Coord{9, 5}) {
		t.Errorf("tile 59 at %v", got)
	}
}

func TestValidTile(t *testing.T) {
	m := NewMesh(4, 4)
	if m.ValidTile(-1) || m.ValidTile(16) {
		t.Error("out-of-range tile reported valid")
	}
	if !m.ValidTile(0) || !m.ValidTile(15) {
		t.Error("in-range tile reported invalid")
	}
}

func TestNeighborEdges(t *testing.T) {
	m := NewMesh(10, 6)
	// South-west corner.
	if _, ok := m.Neighbor(0, West); ok {
		t.Error("tile 0 has a west neighbor")
	}
	if _, ok := m.Neighbor(0, South); ok {
		t.Error("tile 0 has a south neighbor")
	}
	if n, ok := m.Neighbor(0, East); !ok || n != 1 {
		t.Errorf("east of 0 = %d,%v", n, ok)
	}
	if n, ok := m.Neighbor(0, North); !ok || n != 10 {
		t.Errorf("north of 0 = %d,%v", n, ok)
	}
	// North-east corner.
	last := TileID(59)
	if _, ok := m.Neighbor(last, East); ok {
		t.Error("tile 59 has an east neighbor")
	}
	if _, ok := m.Neighbor(last, North); ok {
		t.Error("tile 59 has a north neighbor")
	}
}

func TestNeighborReciprocity(t *testing.T) {
	m := NewMesh(7, 5)
	for id := TileID(0); int(id) < m.NumTiles(); id++ {
		for _, d := range CardinalDirs {
			n, ok := m.Neighbor(id, d)
			if !ok {
				continue
			}
			back, ok := m.Neighbor(n, d.Opposite())
			if !ok || back != id {
				t.Fatalf("neighbor reciprocity broken at %d dir %v", id, d)
			}
		}
	}
}

func TestNeighborsCountByPosition(t *testing.T) {
	m := NewMesh(10, 6)
	counts := map[int]int{}
	for id := TileID(0); int(id) < m.NumTiles(); id++ {
		counts[len(m.Neighbors(id))]++
	}
	// 4 corners with 2 neighbors, 2*(8+4)=24 edge tiles with 3, rest 4.
	if counts[2] != 4 || counts[3] != 24 || counts[4] != 32 {
		t.Errorf("neighbor degree histogram = %v", counts)
	}
}

func TestManhattanDist(t *testing.T) {
	m := NewMesh(10, 6)
	cases := []struct {
		a, b TileID
		want int
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 10, 1}, {0, 11, 2}, {0, 59, 14}, {9, 50, 14},
	}
	for _, c := range cases {
		if got := m.ManhattanDist(c.a, c.b); got != c.want {
			t.Errorf("dist(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestManhattanProperties(t *testing.T) {
	m := NewMesh(10, 6)
	norm := func(v int) TileID { return TileID(((v % 60) + 60) % 60) }
	symmetric := func(a, b int) bool {
		x, y := norm(a), norm(b)
		return m.ManhattanDist(x, y) == m.ManhattanDist(y, x)
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error(err)
	}
	triangle := func(a, b, c int) bool {
		x, y, z := norm(a), norm(b), norm(c)
		return m.ManhattanDist(x, z) <= m.ManhattanDist(x, y)+m.ManhattanDist(y, z)
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Error(err)
	}
	identity := func(a int) bool {
		return m.ManhattanDist(norm(a), norm(a)) == 0
	}
	if err := quick.Check(identity, nil); err != nil {
		t.Error(err)
	}
}

func TestDirsToward(t *testing.T) {
	m := NewMesh(10, 6)
	if dirs := m.DirsToward(0, 0); dirs != nil {
		t.Errorf("DirsToward(0,0) = %v, want nil", dirs)
	}
	// Every returned direction must strictly reduce the distance.
	reduces := func(a, b int) bool {
		src := TileID(((a % 60) + 60) % 60)
		dst := TileID(((b % 60) + 60) % 60)
		d0 := m.ManhattanDist(src, dst)
		for _, d := range m.DirsToward(src, dst) {
			n, ok := m.Neighbor(src, d)
			if !ok || m.ManhattanDist(n, dst) != d0-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(reduces, nil); err != nil {
		t.Error(err)
	}
	// Number of productive directions is 0, 1, or 2.
	if got := len(m.DirsToward(0, 59)); got != 2 {
		t.Errorf("DirsToward(0,59) count = %d, want 2", got)
	}
	if got := len(m.DirsToward(0, 9)); got != 1 {
		t.Errorf("DirsToward(0,9) count = %d, want 1", got)
	}
}

func TestManhattanCoord(t *testing.T) {
	if d := ManhattanCoord(Coord{1, 2}, Coord{4, 0}); d != 5 {
		t.Errorf("ManhattanCoord = %d, want 5", d)
	}
	if d := ManhattanCoord(Coord{-2, 3}, Coord{2, -3}); d != 10 {
		t.Errorf("ManhattanCoord = %d, want 10", d)
	}
}
