// Package geom provides the 2D mesh geometry primitives used throughout the
// PARM simulator: tile coordinates, cardinal directions, Manhattan distance,
// and the row-major tile indexing shared by the chip, NoC, and mapping
// packages.
//
// The CMP in the paper is a 10x6 mesh of tiles. Tiles are identified either
// by a Coord (X in [0,W), Y in [0,H)) or by a TileID, the row-major index
// Y*W + X. X grows eastward and Y grows northward, matching the turn-model
// conventions used by the routing algorithms in package noc.
package geom

import "fmt"

// TileID is the row-major index of a tile in the mesh: Y*Width + X.
type TileID int

// Coord is a 2D mesh coordinate. X grows to the east, Y to the north.
type Coord struct {
	X, Y int
}

// Dir is a cardinal hop direction in the mesh, plus Local for the
// tile-internal (ejection) port.
type Dir int

// Hop directions. The zero value is DirInvalid so that an unset direction is
// never mistaken for a real one.
const (
	DirInvalid Dir = iota
	East
	West
	North
	South
	Local
)

// NumPorts is the number of router ports (4 cardinal + local).
const NumPorts = 5

// String returns the conventional single-letter name of the direction.
func (d Dir) String() string {
	switch d {
	case East:
		return "E"
	case West:
		return "W"
	case North:
		return "N"
	case South:
		return "S"
	case Local:
		return "L"
	default:
		return "?"
	}
}

// Opposite returns the direction that reverses d. Local and invalid
// directions map to themselves.
func (d Dir) Opposite() Dir {
	switch d {
	case East:
		return West
	case West:
		return East
	case North:
		return South
	case South:
		return North
	default:
		return d
	}
}

// Delta returns the coordinate change of one hop in direction d.
func (d Dir) Delta() (dx, dy int) {
	switch d {
	case East:
		return 1, 0
	case West:
		return -1, 0
	case North:
		return 0, 1
	case South:
		return 0, -1
	default:
		return 0, 0
	}
}

// CardinalDirs lists the four hop directions in a fixed, deterministic order.
var CardinalDirs = [4]Dir{East, West, North, South}

// Mesh describes a W x H 2D mesh and converts between TileIDs and Coords.
type Mesh struct {
	Width, Height int
}

// NewMesh returns a mesh of the given dimensions. It panics if either
// dimension is not positive; mesh dimensions are static configuration and a
// non-positive value is a programming error.
func NewMesh(w, h int) Mesh {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("geom: invalid mesh dimensions %dx%d", w, h))
	}
	return Mesh{Width: w, Height: h}
}

// NumTiles returns the total number of tiles in the mesh.
func (m Mesh) NumTiles() int { return m.Width * m.Height }

// Contains reports whether c lies inside the mesh.
func (m Mesh) Contains(c Coord) bool {
	return c.X >= 0 && c.X < m.Width && c.Y >= 0 && c.Y < m.Height
}

// ValidTile reports whether id is a valid tile index for this mesh.
func (m Mesh) ValidTile(id TileID) bool {
	return id >= 0 && int(id) < m.NumTiles()
}

// CoordOf returns the coordinate of tile id.
func (m Mesh) CoordOf(id TileID) Coord {
	return Coord{X: int(id) % m.Width, Y: int(id) / m.Width}
}

// TileAt returns the TileID at coordinate c.
func (m Mesh) TileAt(c Coord) TileID {
	return TileID(c.Y*m.Width + c.X)
}

// Neighbor returns the tile one hop from id in direction d and true, or
// (0, false) when the hop leaves the mesh.
func (m Mesh) Neighbor(id TileID, d Dir) (TileID, bool) {
	c := m.CoordOf(id)
	dx, dy := d.Delta()
	n := Coord{X: c.X + dx, Y: c.Y + dy}
	if !m.Contains(n) {
		return 0, false
	}
	return m.TileAt(n), true
}

// Neighbors returns the in-mesh neighbors of id in CardinalDirs order.
func (m Mesh) Neighbors(id TileID) []TileID {
	out := make([]TileID, 0, 4)
	for _, d := range CardinalDirs {
		if n, ok := m.Neighbor(id, d); ok {
			out = append(out, n)
		}
	}
	return out
}

// ManhattanDist returns the Manhattan (hop) distance between tiles a and b.
func (m Mesh) ManhattanDist(a, b TileID) int {
	ca, cb := m.CoordOf(a), m.CoordOf(b)
	return abs(ca.X-cb.X) + abs(ca.Y-cb.Y)
}

// ManhattanCoord returns the Manhattan distance between coordinates a and b.
func ManhattanCoord(a, b Coord) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

// DirsToward returns the (1 or 2) cardinal directions that reduce the
// Manhattan distance from src to dst, in deterministic E,W,N,S order.
// It returns nil when src == dst.
func (m Mesh) DirsToward(src, dst TileID) []Dir {
	cs, cd := m.CoordOf(src), m.CoordOf(dst)
	var out []Dir
	if cd.X > cs.X {
		out = append(out, East)
	}
	if cd.X < cs.X {
		out = append(out, West)
	}
	if cd.Y > cs.Y {
		out = append(out, North)
	}
	if cd.Y < cs.Y {
		out = append(out, South)
	}
	return out
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
