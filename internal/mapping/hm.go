package mapping

import (
	"parm/internal/appmodel"
	"parm/internal/chip"
	"parm/internal/geom"
	"parm/internal/pdn"
)

// HM is the harmonic-mapping baseline of ref [21] (§5.2): it maps tasks
// with high switching activity at long Manhattan distances from each other
// to decorrelate their noise, scattering the application across the chip in
// non-contiguous regions. It is agnostic of the High-Low adjacency
// interference (Fig. 3b) and of NoC router activity.
//
// Like every scheme on this platform, HM allocates whole power-supply
// domains (tasks of different applications may not share a domain, §3.3).
type HM struct{}

// Name implements Mapper.
func (HM) Name() string { return "HM" }

// Map implements Mapper.
func (HM) Map(c *chip.Chip, g *appmodel.APG) (*Placement, bool) {
	need := (g.NumTasks() + pdn.DomainTiles - 1) / pdn.DomainTiles
	free := c.FreeDomains()
	if len(free) < need {
		return nil, false
	}

	// Pick `need` free domains spread as far apart as possible (greedy
	// max-min dispersion): harmonic mapping wants distance between active
	// regions.
	selected := []chip.DomainID{free[0]}
	taken := map[chip.DomainID]bool{free[0]: true}
	for len(selected) < need {
		best := chip.DomainID(-1)
		bestMin := -1
		for _, d := range free {
			if taken[d] {
				continue
			}
			minD := 1 << 30
			for _, s := range selected {
				if dd := domainDist(c, d, s); dd < minD {
					minD = dd
				}
			}
			if minD > bestMin {
				bestMin = minD
				best = d
			}
		}
		if best < 0 {
			return nil, false
		}
		taken[best] = true
		selected = append(selected, best)
	}

	// Collect the candidate tiles of the selected domains.
	var tiles []geom.TileID
	for _, d := range selected {
		for _, t := range c.Domain(d).Tiles {
			tiles = append(tiles, t)
		}
	}

	// Place High-activity tasks first, each on the free tile maximizing
	// the minimum distance to already-placed High tasks; Low tasks then
	// fill the remaining tiles in order.
	p := &Placement{Domains: selected, TaskTile: make(map[appmodel.TaskID]geom.TileID, g.NumTasks())}
	usedTile := map[geom.TileID]bool{}
	var highPlaced []geom.TileID
	for _, t := range g.Tasks {
		if t.Activity != pdn.High {
			continue
		}
		best := geom.TileID(-1)
		bestMin := -1
		for _, tile := range tiles {
			if usedTile[tile] {
				continue
			}
			if len(highPlaced) == 0 {
				// Deterministic seed: the first High task takes the first
				// free tile of the selected set.
				best = tile
				break
			}
			minD := 1 << 30
			for _, hp := range highPlaced {
				if d := c.Mesh.ManhattanDist(tile, hp); d < minD {
					minD = d
				}
			}
			if minD > bestMin {
				bestMin = minD
				best = tile
			}
		}
		if best < 0 {
			return nil, false
		}
		usedTile[best] = true
		highPlaced = append(highPlaced, best)
		p.TaskTile[t.ID] = best
	}
	for _, t := range g.Tasks {
		if t.Activity == pdn.High {
			continue
		}
		placed := false
		for _, tile := range tiles {
			if !usedTile[tile] {
				usedTile[tile] = true
				p.TaskTile[t.ID] = tile
				placed = true
				break
			}
		}
		if !placed {
			return nil, false
		}
	}
	return p, true
}
