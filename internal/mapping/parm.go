package mapping

import (
	"sort"

	"parm/internal/appmodel"
	"parm/internal/chip"
	"parm/internal/geom"
	"parm/internal/pdn"
)

// PARM is the paper's PSN-aware mapping heuristic (Algorithm 2): it walks
// the APG edges in decreasing communication volume, bins the touched tasks
// into High- and Low-activity lists, chunks each list into clusters of 4
// (one power-supply domain each, so most domains hold tasks of a single
// switching class), places clusters onto free domains minimizing the
// volume-weighted hop distance between communicating clusters, and — inside
// a mixed cluster — puts same-class tasks on adjacent tiles (Fig. 5).
type PARM struct {
	// IgnoreActivity disables the High/Low split and clusters purely by
	// communication order — the ablation that isolates how much of PARM's
	// PSN benefit comes from same-activity grouping (DESIGN.md §5).
	IgnoreActivity bool
}

// Name implements Mapper.
func (p PARM) Name() string {
	if p.IgnoreActivity {
		return "PARM-commOnly"
	}
	return "PARM"
}

// Map implements Mapper.
func (p PARM) Map(c *chip.Chip, g *appmodel.APG) (*Placement, bool) {
	var clusters []Cluster
	if p.IgnoreActivity {
		clusters = clustersByCommOnly(g)
	} else {
		clusters = Clusters(g)
	}
	free := c.FreeDomains()
	if len(free) < len(clusters) {
		return nil, false // Algorithm 2 line 10-11
	}
	return placeClusters(c, g, clusters, free)
}

// clustersByCommOnly chunks tasks into clusters of four purely in sorted
// edge order, ignoring switching activity (the ablation baseline).
func clustersByCommOnly(g *appmodel.APG) []Cluster {
	inList := make([]bool, g.NumTasks())
	var all []appmodel.TaskID
	push := func(t appmodel.TaskID) {
		if !inList[t] {
			inList[t] = true
			all = append(all, t)
		}
	}
	for _, e := range g.EdgesBySortedVolume() {
		push(e.Src)
		push(e.Dst)
	}
	for i := range g.Tasks {
		push(appmodel.TaskID(i))
	}
	var out []Cluster
	for len(all) > 0 {
		n := pdn.DomainTiles
		if len(all) < n {
			n = len(all)
		}
		out = append(out, Cluster{Tasks: append([]appmodel.TaskID(nil), all[:n]...), Mixed: true})
		all = all[n:]
	}
	return out
}

// Cluster is a group of at most 4 tasks destined for one domain.
type Cluster struct {
	Tasks []appmodel.TaskID
	// Mixed marks the single leftover cluster that may hold both classes.
	Mixed bool
}

// Clusters performs the task clustering of Algorithm 2 (lines 3-9): tasks
// enter the High or Low list in the order their heaviest edges appear, each
// list is chunked into clusters of four, and the leftovers of both lists
// form one final mixed cluster. Tasks untouched by any edge are appended to
// their class list last (they have no communication to co-locate for).
func Clusters(g *appmodel.APG) []Cluster {
	inList := make([]bool, g.NumTasks())
	var hi, lo []appmodel.TaskID
	push := func(t appmodel.TaskID) {
		if inList[t] {
			return
		}
		inList[t] = true
		if g.Tasks[t].Activity == pdn.High {
			hi = append(hi, t)
		} else {
			lo = append(lo, t)
		}
	}
	for _, e := range g.EdgesBySortedVolume() {
		push(e.Src)
		push(e.Dst)
	}
	for i := range g.Tasks {
		push(appmodel.TaskID(i))
	}

	var out []Cluster
	chunk := func(list []appmodel.TaskID) []appmodel.TaskID {
		for len(list) >= pdn.DomainTiles {
			cl := Cluster{Tasks: append([]appmodel.TaskID(nil), list[:pdn.DomainTiles]...)}
			out = append(out, cl)
			list = list[pdn.DomainTiles:]
		}
		return list
	}
	hiRest := chunk(hi)
	loRest := chunk(lo)
	rest := append(append([]appmodel.TaskID(nil), hiRest...), loRest...)
	if len(rest) > 0 {
		out = append(out, Cluster{Tasks: rest, Mixed: len(hiRest) > 0 && len(loRest) > 0})
	}
	return out
}

// interClusterVolume builds the symmetric communication volume matrix
// between clusters.
func interClusterVolume(g *appmodel.APG, clusters []Cluster) [][]float64 {
	clusterOf := make([]int, g.NumTasks())
	for ci, cl := range clusters {
		for _, t := range cl.Tasks {
			clusterOf[t] = ci
		}
	}
	vol := make([][]float64, len(clusters))
	for i := range vol {
		vol[i] = make([]float64, len(clusters))
	}
	for _, e := range g.Edges {
		a, b := clusterOf[e.Src], clusterOf[e.Dst]
		if a == b {
			continue
		}
		vol[a][b] += e.Volume
		vol[b][a] += e.Volume
	}
	return vol
}

// placeClusters implements task-cluster-to-domain-mapping (Algorithm 2 line
// 13): clusters are placed in decreasing order of external communication,
// each onto the free domain minimizing volume-weighted distance to already
// placed clusters (the first goes to the most central free domain so its
// neighbors are available for the rest).
func placeClusters(c *chip.Chip, g *appmodel.APG, clusters []Cluster, free []chip.DomainID) (*Placement, bool) {
	vol := interClusterVolume(g, clusters)

	order := make([]int, len(clusters))
	for i := range order {
		order[i] = i
	}
	ext := make([]float64, len(clusters))
	for i := range clusters {
		for j := range clusters {
			ext[i] += vol[i][j]
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return ext[order[a]] > ext[order[b]] })

	used := make(map[chip.DomainID]bool)
	clusterDomain := make([]chip.DomainID, len(clusters))
	for rank, ci := range order {
		best := chip.DomainID(-1)
		bestScore := 0.0
		for _, d := range free {
			if used[d] {
				continue
			}
			var score float64
			if rank == 0 {
				// Centrality among free domains: prefer a seed whose free
				// neighborhood can host the rest nearby.
				for _, o := range free {
					if o != d && !used[o] {
						score += float64(domainDist(c, d, o))
					}
				}
			} else {
				for pr := 0; pr < rank; pr++ {
					pc := order[pr]
					w := vol[ci][pc]
					if w == 0 {
						w = 1 // still prefer compact regions
					}
					score += w * float64(domainDist(c, d, clusterDomain[pc]))
				}
			}
			if best < 0 || score < bestScore {
				best = d
				bestScore = score
			}
		}
		if best < 0 {
			return nil, false
		}
		used[best] = true
		clusterDomain[ci] = best
	}

	p := &Placement{TaskTile: make(map[appmodel.TaskID]geom.TileID, g.NumTasks())}
	for ci, cl := range clusters {
		d := clusterDomain[ci]
		p.Domains = append(p.Domains, d)
		assignSlots(c, g, cl, d, p)
	}
	return p, true
}

// assignSlots places a cluster's tasks on the four tiles of its domain.
// Same-class tasks go on adjacent slots (Fig. 5): slots (0,1) and (2,3)
// are the adjacent pairs of the 2x2 block. Within a class, tasks keep
// their list order (which is decreasing communication weight).
func assignSlots(c *chip.Chip, g *appmodel.APG, cl Cluster, d chip.DomainID, p *Placement) {
	dom := c.Domain(d)
	var hi, lo []appmodel.TaskID
	for _, t := range cl.Tasks {
		if g.Tasks[t].Activity == pdn.High {
			hi = append(hi, t)
		} else {
			lo = append(lo, t)
		}
	}
	// Slot order keeps each class contiguous on an adjacent pair: High
	// tasks fill 0,1 then 2,3; Low tasks fill from the other end 3,2 then
	// 1,0. With 2+2 this yields High on (0,1) and Low on (2,3) — the
	// same-level-adjacent arrangement of Fig. 5.
	hiSlots := []int{0, 1, 2, 3}
	loSlots := []int{3, 2, 1, 0}
	usedSlot := [pdn.DomainTiles]bool{}
	for i, t := range hi {
		s := hiSlots[i]
		usedSlot[s] = true
		p.TaskTile[t] = dom.Tiles[s]
	}
	li := 0
	for _, t := range lo {
		for usedSlot[loSlots[li]] {
			li++
		}
		s := loSlots[li]
		usedSlot[s] = true
		p.TaskTile[t] = dom.Tiles[s]
	}
}
