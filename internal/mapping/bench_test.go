package mapping

import (
	"testing"

	"parm/internal/appmodel"
	"parm/internal/chip"
)

// BenchmarkPARMMap times Algorithm 2 end to end at the largest DoP — the
// per-application mapping cost inside Algorithm 1's search loop.
func BenchmarkPARMMap(b *testing.B) {
	g := appmodel.Benchmarks()[1].Graph(32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := chip.New(chip.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := (PARM{}).Map(c, g); !ok {
			b.Fatal("mapping failed")
		}
	}
}

// BenchmarkHMMap times the harmonic-mapping baseline.
func BenchmarkHMMap(b *testing.B) {
	g := appmodel.Benchmarks()[1].Graph(32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := chip.New(chip.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := (HM{}).Map(c, g); !ok {
			b.Fatal("mapping failed")
		}
	}
}

// BenchmarkClusters times the task-clustering step alone (the O(T^2)
// component of the paper's complexity analysis, §4.3).
func BenchmarkClusters(b *testing.B) {
	g := appmodel.Benchmarks()[1].Graph(32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := Clusters(g); len(got) != 8 {
			b.Fatal("unexpected clustering")
		}
	}
}
