package mapping

import (
	"testing"

	"parm/internal/appmodel"
	"parm/internal/chip"
	"parm/internal/geom"
	"parm/internal/pdn"
)

func mkChip(t *testing.T) *chip.Chip {
	t.Helper()
	c, err := chip.New(chip.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClustersInvariants(t *testing.T) {
	for _, b := range appmodel.Benchmarks() {
		for _, dop := range appmodel.DoPValues() {
			g := b.Graph(dop)
			clusters := Clusters(g)

			// Every task appears exactly once.
			seen := map[appmodel.TaskID]bool{}
			for _, cl := range clusters {
				if len(cl.Tasks) == 0 || len(cl.Tasks) > pdn.DomainTiles {
					t.Fatalf("%s dop=%d: cluster size %d", b.Name, dop, len(cl.Tasks))
				}
				for _, task := range cl.Tasks {
					if seen[task] {
						t.Fatalf("%s dop=%d: task %d in two clusters", b.Name, dop, task)
					}
					seen[task] = true
				}
			}
			if len(seen) != dop {
				t.Fatalf("%s dop=%d: %d tasks clustered", b.Name, dop, len(seen))
			}

			// At most one cluster mixes activity classes (Algorithm 2's
			// single leftover cluster).
			mixed := 0
			for _, cl := range clusters {
				classes := map[pdn.Class]bool{}
				for _, task := range cl.Tasks {
					classes[g.Tasks[task].Activity] = true
				}
				if len(classes) > 1 {
					mixed++
					if !cl.Mixed {
						t.Errorf("%s dop=%d: mixed cluster not flagged", b.Name, dop)
					}
				}
			}
			if mixed > 1 {
				t.Errorf("%s dop=%d: %d mixed clusters, want at most 1", b.Name, dop, mixed)
			}

			// DoP is a multiple of 4, so clusters fill domains exactly.
			if len(clusters) != dop/4 {
				t.Errorf("%s dop=%d: %d clusters, want %d", b.Name, dop, len(clusters), dop/4)
			}
		}
	}
}

// Tasks joined by the heaviest edges land in the same cluster when their
// activity classes match (the communication objective of Algorithm 2).
func TestClustersKeepHeavyEdgesTogether(t *testing.T) {
	g := &appmodel.APG{
		Bench: "synthetic",
		Tasks: []appmodel.Task{
			{ID: 0, Activity: pdn.High, WorkCycles: 1},
			{ID: 1, Activity: pdn.High, WorkCycles: 1},
			{ID: 2, Activity: pdn.High, WorkCycles: 1},
			{ID: 3, Activity: pdn.High, WorkCycles: 1},
			{ID: 4, Activity: pdn.High, WorkCycles: 1},
			{ID: 5, Activity: pdn.High, WorkCycles: 1},
			{ID: 6, Activity: pdn.High, WorkCycles: 1},
			{ID: 7, Activity: pdn.High, WorkCycles: 1},
		},
		Edges: []appmodel.Edge{
			{Src: 0, Dst: 5, Volume: 1000},
			{Src: 1, Dst: 6, Volume: 900},
			{Src: 2, Dst: 3, Volume: 10},
			{Src: 4, Dst: 7, Volume: 5},
		},
	}
	clusters := Clusters(g)
	if len(clusters) != 2 {
		t.Fatalf("%d clusters", len(clusters))
	}
	// The first cluster holds the endpoints of the two heaviest edges.
	first := map[appmodel.TaskID]bool{}
	for _, task := range clusters[0].Tasks {
		first[task] = true
	}
	for _, want := range []appmodel.TaskID{0, 5, 1, 6} {
		if !first[want] {
			t.Errorf("task %d not in the first cluster %v", want, clusters[0].Tasks)
		}
	}
}

func TestPARMMapValid(t *testing.T) {
	c := mkChip(t)
	for _, b := range appmodel.Benchmarks()[:5] {
		for _, dop := range []int{4, 16, 32} {
			g := b.Graph(dop)
			p, ok := PARM{}.Map(c, g)
			if !ok {
				t.Fatalf("%s dop=%d: mapping failed on an empty chip", b.Name, dop)
			}
			if err := p.Validate(c, g); err != nil {
				t.Fatalf("%s dop=%d: %v", b.Name, dop, err)
			}
			if len(p.Domains) != dop/4 {
				t.Errorf("%s dop=%d: claimed %d domains", b.Name, dop, len(p.Domains))
			}
		}
	}
}

func TestPARMMapFailsWhenFull(t *testing.T) {
	c := mkChip(t)
	// Occupy 14 of 15 domains.
	for d := 0; d < 14; d++ {
		if err := c.AssignDomain(chip.DomainID(d), 1, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	g := appmodel.Benchmarks()[0].Graph(8) // needs 2 domains
	if _, ok := (PARM{}).Map(c, g); ok {
		t.Error("mapping succeeded with insufficient domains")
	}
	g4 := appmodel.Benchmarks()[0].Graph(4) // needs 1 domain
	if _, ok := (PARM{}).Map(c, g4); !ok {
		t.Error("mapping failed although one domain is free")
	}
}

// Same-class tasks sit on adjacent slots in a 2H+2L mixed cluster (Fig. 5).
func TestPARMMixedClusterPlacement(t *testing.T) {
	c := mkChip(t)
	g := &appmodel.APG{
		Bench: "mix",
		Tasks: []appmodel.Task{
			{ID: 0, Activity: pdn.High, WorkCycles: 1},
			{ID: 1, Activity: pdn.High, WorkCycles: 1},
			{ID: 2, Activity: pdn.Low, WorkCycles: 1},
			{ID: 3, Activity: pdn.Low, WorkCycles: 1},
		},
		Edges: []appmodel.Edge{
			{Src: 0, Dst: 1, Volume: 100},
			{Src: 2, Dst: 3, Volume: 90},
			{Src: 1, Dst: 2, Volume: 10},
		},
	}
	p, ok := (PARM{}).Map(c, g)
	if !ok {
		t.Fatal("mapping failed")
	}
	if err := p.Validate(c, g); err != nil {
		t.Fatal(err)
	}
	// High pair adjacent, Low pair adjacent.
	if c.Mesh.ManhattanDist(p.TaskTile[0], p.TaskTile[1]) != 1 {
		t.Errorf("High tasks at distance %d", c.Mesh.ManhattanDist(p.TaskTile[0], p.TaskTile[1]))
	}
	if c.Mesh.ManhattanDist(p.TaskTile[2], p.TaskTile[3]) != 1 {
		t.Errorf("Low tasks at distance %d", c.Mesh.ManhattanDist(p.TaskTile[2], p.TaskTile[3]))
	}
}

func TestPARMMapDeterministic(t *testing.T) {
	g := appmodel.Benchmarks()[1].Graph(16)
	c1, c2 := mkChip(t), mkChip(t)
	p1, ok1 := (PARM{}).Map(c1, g)
	p2, ok2 := (PARM{}).Map(c2, g)
	if !ok1 || !ok2 {
		t.Fatal("mapping failed")
	}
	for task, tile := range p1.TaskTile {
		if p2.TaskTile[task] != tile {
			t.Fatalf("task %d mapped to %d then %d", task, tile, p2.TaskTile[task])
		}
	}
}

func TestHMMapValid(t *testing.T) {
	c := mkChip(t)
	for _, b := range appmodel.Benchmarks()[:5] {
		g := b.Graph(16)
		p, ok := (HM{}).Map(c, g)
		if !ok {
			t.Fatalf("%s: HM mapping failed on an empty chip", b.Name)
		}
		if err := p.Validate(c, g); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
	}
}

func TestHMMapFailsWhenFull(t *testing.T) {
	c := mkChip(t)
	for d := 0; d < 13; d++ {
		if err := c.AssignDomain(chip.DomainID(d), 1, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := (HM{}).Map(c, appmodel.Benchmarks()[0].Graph(16)); ok {
		t.Error("HM mapped 16 tasks into 2 free domains")
	}
}

// HM scatters: the domains it selects are spread across the chip, while
// PARM's are compact. Measured as the mean pairwise domain distance.
func TestHMScattersPARMClusters(t *testing.T) {
	g := appmodel.Benchmarks()[7].Graph(16) // swaptions: mostly High tasks

	meanDomainDist := func(p *Placement, c *chip.Chip) float64 {
		sum, n := 0.0, 0
		for i := 0; i < len(p.Domains); i++ {
			for j := i + 1; j < len(p.Domains); j++ {
				ci := c.Domain(p.Domains[i]).Center()
				cj := c.Domain(p.Domains[j]).Center()
				sum += float64(geom.ManhattanCoord(ci, cj)) / 2
				n++
			}
		}
		return sum / float64(n)
	}

	cHM := mkChip(t)
	pHM, ok := (HM{}).Map(cHM, g)
	if !ok {
		t.Fatal("HM failed")
	}
	cP := mkChip(t)
	pP, ok := (PARM{}).Map(cP, g)
	if !ok {
		t.Fatal("PARM failed")
	}
	if meanDomainDist(pHM, cHM) <= meanDomainDist(pP, cP) {
		t.Errorf("HM domains (%g) not more spread than PARM's (%g)",
			meanDomainDist(pHM, cHM), meanDomainDist(pP, cP))
	}
}

// HM maximizes spacing between High-activity tasks.
func TestHMSpreadsHighTasks(t *testing.T) {
	g := appmodel.Benchmarks()[7].Graph(16)
	c := mkChip(t)
	p, ok := (HM{}).Map(c, g)
	if !ok {
		t.Fatal("HM failed")
	}
	var highTiles []geom.TileID
	for _, task := range g.Tasks {
		if task.Activity == pdn.High {
			highTiles = append(highTiles, p.TaskTile[task.ID])
		}
	}
	if len(highTiles) < 2 {
		t.Skip("not enough high tasks")
	}
	// With >= 2 High tasks spread over scattered domains, no two should be
	// directly adjacent unless forced by capacity.
	adjacent := 0
	for i := 0; i < len(highTiles); i++ {
		for j := i + 1; j < len(highTiles); j++ {
			if c.Mesh.ManhattanDist(highTiles[i], highTiles[j]) == 1 {
				adjacent++
			}
		}
	}
	// swaptions at DoP 16 has 14 High tasks on 16 tiles: some adjacency is
	// unavoidable, but far fewer than a compact packing's ~2 per tile.
	if adjacent > len(highTiles) {
		t.Errorf("%d adjacent High pairs for %d High tasks", adjacent, len(highTiles))
	}
}

// PARM's placement has lower communication cost than HM's: the second
// objective of the heuristic.
func TestPARMCommCostBeatsHM(t *testing.T) {
	for _, b := range []int{0, 1, 4} { // comm-heavy benchmarks
		g := appmodel.Benchmarks()[b].Graph(16)
		cHM := mkChip(t)
		pHM, ok := (HM{}).Map(cHM, g)
		if !ok {
			t.Fatal("HM failed")
		}
		cP := mkChip(t)
		pP, ok := (PARM{}).Map(cP, g)
		if !ok {
			t.Fatal("PARM failed")
		}
		costHM := CommCost(cHM.Mesh, g, pHM)
		costP := CommCost(cP.Mesh, g, pP)
		if costP >= costHM {
			t.Errorf("%s: PARM comm cost %g not below HM %g",
				appmodel.Benchmarks()[b].Name, costP, costHM)
		}
	}
}

func TestPlacementValidateCatchesErrors(t *testing.T) {
	c := mkChip(t)
	g := appmodel.Benchmarks()[0].Graph(4)
	p, ok := (PARM{}).Map(c, g)
	if !ok {
		t.Fatal("mapping failed")
	}
	// Missing task.
	bad := &Placement{Domains: p.Domains, TaskTile: map[appmodel.TaskID]geom.TileID{}}
	if bad.Validate(c, g) == nil {
		t.Error("empty placement accepted")
	}
	// Tile outside claimed domains.
	bad = &Placement{Domains: nil, TaskTile: p.TaskTile}
	if bad.Validate(c, g) == nil {
		t.Error("placement outside domains accepted")
	}
	// Duplicate tile.
	dup := map[appmodel.TaskID]geom.TileID{}
	for task := range p.TaskTile {
		dup[task] = p.TaskTile[0]
	}
	bad = &Placement{Domains: p.Domains, TaskTile: dup}
	if bad.Validate(c, g) == nil {
		t.Error("duplicate tile accepted")
	}
}

func TestMapperNames(t *testing.T) {
	if (PARM{}).Name() != "PARM" || (HM{}).Name() != "HM" {
		t.Error("mapper names wrong")
	}
}

// Mapping onto a partially occupied chip never touches occupied domains.
func TestMapAvoidsOccupiedDomains(t *testing.T) {
	for _, m := range []Mapper{PARM{}, HM{}} {
		c := mkChip(t)
		occupied := map[chip.DomainID]bool{}
		for d := 0; d < 7; d++ {
			if err := c.AssignDomain(chip.DomainID(d), 99, 0.5); err != nil {
				t.Fatal(err)
			}
			occupied[chip.DomainID(d)] = true
		}
		g := appmodel.Benchmarks()[0].Graph(16)
		p, ok := m.Map(c, g)
		if !ok {
			t.Fatalf("%s failed with 8 free domains", m.Name())
		}
		for _, d := range p.Domains {
			if occupied[d] {
				t.Errorf("%s claimed occupied domain %d", m.Name(), d)
			}
		}
	}
}

func TestCommOnlyAblationMapper(t *testing.T) {
	if (PARM{IgnoreActivity: true}).Name() != "PARM-commOnly" {
		t.Error("ablation mapper name wrong")
	}
	c := mkChip(t)
	g := appmodel.Benchmarks()[1].Graph(16)
	p, ok := (PARM{IgnoreActivity: true}).Map(c, g)
	if !ok {
		t.Fatal("comm-only mapping failed")
	}
	if err := p.Validate(c, g); err != nil {
		t.Fatal(err)
	}
	// Comm-only clustering mixes activity classes in more than one cluster
	// for a benchmark with interleaved High/Low communication.
	mixed := 0
	for _, d := range p.Domains {
		classes := map[pdn.Class]bool{}
		for _, tile := range c.Domain(d).Tiles {
			for task, tt := range p.TaskTile {
				if tt == tile {
					classes[g.Tasks[task].Activity] = true
				}
			}
		}
		if len(classes) > 1 {
			mixed++
		}
	}
	if mixed <= 1 {
		t.Errorf("comm-only clustering produced only %d mixed domains; ablation has no contrast", mixed)
	}
}
