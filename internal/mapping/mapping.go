// Package mapping implements task-to-core mapping for NoC-based CMPs with
// 2x2 power-supply domains: the paper's PSN-aware clustering heuristic
// (Algorithm 2, package type PARM) and the harmonic-mapping baseline of
// ref [21] (type HM), which scatters high-activity tasks far apart.
//
// A mapper only decides placement onto currently free domains; voltage,
// parallelism, and power-budget admission are the runtime's job (package
// core, Algorithm 1).
package mapping

import (
	"fmt"

	"parm/internal/appmodel"
	"parm/internal/chip"
	"parm/internal/geom"
)

// Placement is a successful mapping of one application.
type Placement struct {
	// Domains lists the power-supply domains the application occupies.
	Domains []chip.DomainID
	// TaskTile maps each APG task to its tile.
	TaskTile map[appmodel.TaskID]geom.TileID
}

// Mapper finds a placement for an application graph on the chip's free
// domains. It returns (nil, false) when no viable placement exists under
// the scheme's rules (paper: "unable to find viable mapping").
type Mapper interface {
	// Name identifies the scheme in reports ("PARM", "HM").
	Name() string
	Map(c *chip.Chip, g *appmodel.APG) (*Placement, bool)
}

// CommCost returns the total communication cost of a placement: the sum of
// edge volume times Manhattan distance, the second objective the paper's
// heuristic minimizes.
func CommCost(m geom.Mesh, g *appmodel.APG, p *Placement) float64 {
	cost := 0.0
	for _, e := range g.Edges {
		src, ok1 := p.TaskTile[e.Src]
		dst, ok2 := p.TaskTile[e.Dst]
		if !ok1 || !ok2 {
			continue
		}
		cost += e.Volume * float64(m.ManhattanDist(src, dst))
	}
	return cost
}

// Validate checks placement invariants against the graph: every task placed
// exactly once, no tile reused, and every tile inside a listed domain.
func (p *Placement) Validate(c *chip.Chip, g *appmodel.APG) error {
	if len(p.TaskTile) != g.NumTasks() {
		return fmt.Errorf("mapping: placed %d of %d tasks", len(p.TaskTile), g.NumTasks())
	}
	inDomains := map[geom.TileID]bool{}
	for _, d := range p.Domains {
		for _, t := range c.Domain(d).Tiles {
			inDomains[t] = true
		}
	}
	seen := map[geom.TileID]bool{}
	// Order only decides which of several violations is reported first; the
	// accept/reject verdict is order-independent.
	//parm:orderfree
	for task, tile := range p.TaskTile {
		if task < 0 || int(task) >= g.NumTasks() {
			return fmt.Errorf("mapping: unknown task %d", task)
		}
		if seen[tile] {
			return fmt.Errorf("mapping: tile %d used twice", tile)
		}
		seen[tile] = true
		if !inDomains[tile] {
			return fmt.Errorf("mapping: tile %d outside claimed domains", tile)
		}
	}
	return nil
}

// domainDist returns the Manhattan distance between two domains' centers in
// tile units (halved center-grid units).
func domainDist(c *chip.Chip, a, b chip.DomainID) int {
	ca, cb := c.Domain(a).Center(), c.Domain(b).Center()
	return (abs(ca.X-cb.X) + abs(ca.Y-cb.Y)) / 2
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
