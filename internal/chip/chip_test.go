package chip

import (
	"testing"

	"parm/internal/geom"
	"parm/internal/pdn"
	"parm/internal/power"
)

func mkChip(t *testing.T) *Chip {
	t.Helper()
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDefaultsMatchPaperPlatform(t *testing.T) {
	c := mkChip(t)
	if c.Mesh.Width != 10 || c.Mesh.Height != 6 {
		t.Errorf("mesh %dx%d, want 10x6", c.Mesh.Width, c.Mesh.Height)
	}
	if c.NumDomains() != 15 {
		t.Errorf("%d domains, want 15", c.NumDomains())
	}
	if c.Budget.Limit() != 65 {
		t.Errorf("DsPB %g, want 65", c.Budget.Limit())
	}
	if c.Node.Node != power.Node7 {
		t.Errorf("node %v, want 7nm", c.Node.Node)
	}
	if len(c.Vdds) != 5 || c.Vdds[0] != 0.4 || c.Vdds[4] != 0.8 {
		t.Errorf("Vdds = %v", c.Vdds)
	}
}

func TestNewRejectsOddDimensions(t *testing.T) {
	for _, dims := range [][2]int{{9, 6}, {10, 5}, {0, 6}, {-2, 4}} {
		if _, err := New(Config{Width: dims[0], Height: dims[1]}); err == nil {
			t.Errorf("New(%dx%d) accepted", dims[0], dims[1])
		}
	}
}

// Every tile belongs to exactly one domain, and the domain's tile list is
// consistent with tileDomain and pdn slot geometry.
func TestDomainTiling(t *testing.T) {
	c := mkChip(t)
	seen := map[geom.TileID]DomainID{}
	for d := 0; d < c.NumDomains(); d++ {
		dom := c.Domain(DomainID(d))
		if dom.Occupied() {
			t.Errorf("fresh domain %d occupied", d)
		}
		for slot, tile := range dom.Tiles {
			if prev, dup := seen[tile]; dup {
				t.Errorf("tile %d in domains %d and %d", tile, prev, d)
			}
			seen[tile] = DomainID(d)
			if c.DomainOf(tile) != DomainID(d) {
				t.Errorf("DomainOf(%d) = %d, want %d", tile, c.DomainOf(tile), d)
			}
			if c.SlotOf(tile) != slot {
				t.Errorf("SlotOf(%d) = %d, want %d", tile, c.SlotOf(tile), slot)
			}
		}
		// Slot geometry matches pdn.DomainDistance: slots 0-1 adjacent,
		// 0-3 diagonal.
		m := c.Mesh
		if m.ManhattanDist(dom.Tiles[0], dom.Tiles[1]) != 1 ||
			m.ManhattanDist(dom.Tiles[0], dom.Tiles[2]) != 1 ||
			m.ManhattanDist(dom.Tiles[0], dom.Tiles[3]) != 2 {
			t.Errorf("domain %d slot geometry wrong: %v", d, dom.Tiles)
		}
	}
	if len(seen) != c.Mesh.NumTiles() {
		t.Errorf("%d tiles covered, want %d", len(seen), c.Mesh.NumTiles())
	}
}

func TestSlotGeometryMatchesPDNModel(t *testing.T) {
	c := mkChip(t)
	dom := c.Domain(0)
	for a := 0; a < pdn.DomainTiles; a++ {
		for b := 0; b < pdn.DomainTiles; b++ {
			want := pdn.DomainDistance(a, b)
			got := c.Mesh.ManhattanDist(dom.Tiles[a], dom.Tiles[b])
			if got != want {
				t.Errorf("slots %d-%d: mesh dist %d, pdn dist %d", a, b, got, want)
			}
		}
	}
}

func TestAssignPlaceReleaseLifecycle(t *testing.T) {
	c := mkChip(t)
	if err := c.AssignDomain(3, 42, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignDomain(3, 43, 0.5); err == nil {
		t.Error("double assignment accepted")
	}
	dom := c.Domain(3)
	if !dom.Occupied() || dom.App != 42 || dom.Vdd != 0.5 {
		t.Errorf("domain state wrong: %+v", dom)
	}
	tile := dom.Tiles[0]
	if err := c.PlaceTask(tile, 42, 0, pdn.High); err != nil {
		t.Fatal(err)
	}
	if err := c.PlaceTask(tile, 42, 1, pdn.Low); err == nil {
		t.Error("double placement accepted")
	}
	if err := c.PlaceTask(dom.Tiles[1], 99, 0, pdn.High); err == nil {
		t.Error("placement by non-owner accepted")
	}
	occ := c.Occupant(tile)
	if occ.App != 42 || occ.Task != 0 || occ.Class != pdn.High || occ.CoreActivity != 0.9 {
		t.Errorf("occupant = %+v", occ)
	}
	if got := c.AppTiles(42); len(got) != 1 || got[0] != tile {
		t.Errorf("AppTiles = %v", got)
	}
	if got := len(c.FreeDomains()); got != 14 {
		t.Errorf("FreeDomains = %d, want 14", got)
	}
	if got := c.ActiveDomains(); len(got) != 1 || got[0] != 3 {
		t.Errorf("ActiveDomains = %v", got)
	}

	if n := c.ReleaseApp(42); n != 1 {
		t.Errorf("released %d domains, want 1", n)
	}
	if c.Domain(3).Occupied() {
		t.Error("domain still occupied after release")
	}
	if c.Occupant(tile).App != NoApp {
		t.Error("tile still occupied after release")
	}
	if len(c.FreeDomains()) != 15 {
		t.Error("not all domains free after release")
	}
}

func TestReleaseUnknownApp(t *testing.T) {
	c := mkChip(t)
	if n := c.ReleaseApp(7); n != 0 {
		t.Errorf("released %d domains for unknown app", n)
	}
}

func TestSamplePSNIdleChip(t *testing.T) {
	c := mkChip(t)
	s, err := c.SamplePSN(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.ChipPeak() != 0 || s.ActiveAvg() != 0 {
		t.Errorf("idle chip peak=%g avg=%g", s.ChipPeak(), s.ActiveAvg())
	}
}

func TestSamplePSNActiveDomain(t *testing.T) {
	c := mkChip(t)
	if err := c.AssignDomain(5, 1, 0.6); err != nil {
		t.Fatal(err)
	}
	dom := c.Domain(5)
	for slot, tile := range dom.Tiles {
		if err := c.PlaceTask(tile, 1, slot, pdn.High); err != nil {
			t.Fatal(err)
		}
	}
	s, err := c.SamplePSN(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.DomainPeak[5] <= 0 {
		t.Error("active domain shows no PSN")
	}
	if s.ChipPeak() != s.DomainPeak[5] {
		t.Error("chip peak differs from only active domain")
	}
	for _, tile := range dom.Tiles {
		if s.TilePeak[tile] <= 0 {
			t.Errorf("tile %d shows no PSN", tile)
		}
	}
	// Inactive domains stay at zero.
	if s.DomainPeak[0] != 0 {
		t.Error("inactive domain shows PSN")
	}
}

// Router activity adds to tile current and therefore PSN.
func TestSamplePSNRouterContribution(t *testing.T) {
	c := mkChip(t)
	if err := c.AssignDomain(5, 1, 0.6); err != nil {
		t.Fatal(err)
	}
	dom := c.Domain(5)
	for slot, tile := range dom.Tiles {
		if err := c.PlaceTask(tile, 1, slot, pdn.High); err != nil {
			t.Fatal(err)
		}
	}
	quiet, err := c.SamplePSN(nil)
	if err != nil {
		t.Fatal(err)
	}
	util := make([]float64, c.Mesh.NumTiles())
	for _, tile := range dom.Tiles {
		util[tile] = 0.5
	}
	busy, err := c.SamplePSN(util)
	if err != nil {
		t.Fatal(err)
	}
	if busy.DomainPeak[5] <= quiet.DomainPeak[5] {
		t.Errorf("router activity did not raise PSN: %g vs %g",
			busy.DomainPeak[5], quiet.DomainPeak[5])
	}
}

func TestSamplePSNBadUtilLength(t *testing.T) {
	c := mkChip(t)
	if _, err := c.SamplePSN(make([]float64, 3)); err == nil {
		t.Error("short routerUtil accepted")
	}
}

func TestDomainCenter(t *testing.T) {
	c := mkChip(t)
	// Domain 0 spans tiles (0,0)..(1,1): center grid coord (1,1).
	if got := c.Domain(0).Center(); got != (geom.Coord{X: 1, Y: 1}) {
		t.Errorf("domain 0 center = %v", got)
	}
}
