package chip

import (
	"fmt"
	"strings"

	"parm/internal/geom"
	"parm/internal/pdn"
)

// View renders the chip occupancy as an ASCII map: one cell per tile
// showing the occupying application (letters cycle a-z by app ID) and the
// task's activity class (uppercase = High, lowercase = Low, '.' = idle).
// Rows are printed north to south so the output matches the mesh drawing
// convention used in the paper's figures.
func (c *Chip) View() string {
	var b strings.Builder
	for y := c.Mesh.Height - 1; y >= 0; y-- {
		for x := 0; x < c.Mesh.Width; x++ {
			t := c.Mesh.TileAt(geom.Coord{X: x, Y: y})
			o := c.occupants[t]
			if x > 0 {
				b.WriteByte(' ')
			}
			if o.App == NoApp {
				b.WriteString(" .")
				continue
			}
			letter := byte('a' + o.App%26)
			if o.Class == pdn.High {
				letter = byte('A' + o.App%26)
			}
			b.WriteByte(letter)
			b.WriteByte(activityMark(o))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// PSNView renders a per-tile PSN heatmap: digits 0-9 scale linearly up to
// 2x the VE threshold, '*' marks tiles at or beyond it. psn holds one
// fraction per tile; rows print north to south.
func (c *Chip) PSNView(psn []float64) string {
	var b strings.Builder
	if len(psn) != c.Mesh.NumTiles() {
		return fmt.Sprintf("psn view: want %d samples, got %d\n", c.Mesh.NumTiles(), len(psn))
	}
	const threshold = 0.05
	for y := c.Mesh.Height - 1; y >= 0; y-- {
		for x := 0; x < c.Mesh.Width; x++ {
			t := c.Mesh.TileAt(geom.Coord{X: x, Y: y})
			if x > 0 {
				b.WriteByte(' ')
			}
			v := psn[t]
			switch {
			case v >= threshold:
				b.WriteByte('*')
			case v <= 0:
				b.WriteByte('.')
			default:
				d := int(v / (2 * threshold) * 10)
				if d > 9 {
					d = 9
				}
				b.WriteByte(byte('0' + d))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DomainView summarizes each domain row by row: the owning app and Vdd.
func (c *Chip) DomainView() string {
	var b strings.Builder
	dw := c.Mesh.Width / 2
	dh := c.Mesh.Height / 2
	for dy := dh - 1; dy >= 0; dy-- {
		for dx := 0; dx < dw; dx++ {
			d := &c.domains[dy*dw+dx]
			if dx > 0 {
				b.WriteString("  ")
			}
			if !d.Occupied() {
				b.WriteString("[ free  ]")
				continue
			}
			fmt.Fprintf(&b, "[a%02d %.1fV]", d.App%100, d.Vdd)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// activityMark returns '+' for High occupants and '-' for Low.
func activityMark(o Occupant) byte {
	if o.Class == pdn.High {
		return '+'
	}
	return '-'
}
