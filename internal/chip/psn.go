package chip

import (
	"fmt"

	"parm/internal/pdn"
)

// PSNSample is one chip-wide PSN measurement: the result of transient
// simulation of every active domain at a sampling instant (paper §5.1:
// PSN is sampled at periodic intervals and at application map/unmap
// events).
type PSNSample struct {
	// TilePeak is the peak PSN fraction observed at each tile during the
	// sampling window (0 for tiles in inactive domains).
	TilePeak []float64
	// TileAvg is the time-averaged PSN fraction per tile.
	TileAvg []float64
	// DomainPeak and DomainAvg summarize each domain (0 when inactive).
	DomainPeak []float64
	DomainAvg  []float64
}

// ChipPeak returns the largest per-tile peak PSN in the sample.
func (s *PSNSample) ChipPeak() float64 {
	m := 0.0
	for _, v := range s.TilePeak {
		if v > m {
			m = v
		}
	}
	return m
}

// ActiveAvg returns the mean of per-domain average PSN over active domains
// (domains with a nonzero average). It returns 0 when nothing is active.
func (s *PSNSample) ActiveAvg() float64 {
	sum, n := 0.0, 0
	for _, v := range s.DomainAvg {
		if v > 0 {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// SamplePSN transient-simulates every active domain and returns the chip's
// PSN sample. routerUtil gives the measured NoC router utilization per tile
// in [0,1] (flits forwarded per cycle, normalized); it may be nil when no
// traffic information is available. Same-class tasks of the app owning a
// domain are phase-staggered (see pdn.BuildLoads).
func (c *Chip) SamplePSN(routerUtil []float64) (*PSNSample, error) {
	if routerUtil != nil && len(routerUtil) != c.Mesh.NumTiles() {
		return nil, fmt.Errorf("chip: routerUtil length %d, want %d", len(routerUtil), c.Mesh.NumTiles())
	}
	s := &PSNSample{
		TilePeak:   make([]float64, c.Mesh.NumTiles()),
		TileAvg:    make([]float64, c.Mesh.NumTiles()),
		DomainPeak: make([]float64, len(c.domains)),
		DomainAvg:  make([]float64, len(c.domains)),
	}
	for i := range c.domains {
		d := &c.domains[i]
		if !d.Occupied() {
			continue
		}
		var occ [pdn.DomainTiles]pdn.TileOccupant
		for slot, t := range d.Tiles {
			o := c.occupants[t]
			if o.App == NoApp {
				continue
			}
			ru := 0.0
			if routerUtil != nil {
				// routerUtil is per-port utilization (flits/cycle/port); a
				// router's switching activity saturates around 2-2.5
				// concurrent traversals, so scale accordingly for power.
				ru = routerUtil[t] * 2.5
				if ru > 1 {
					ru = 1
				}
			}
			occ[slot] = pdn.TileOccupant{
				IAvg:      c.Node.TileCurrent(d.Vdd, o.CoreActivity, ru),
				Class:     o.Class,
				Staggered: true, // same-app threads are barrier-synchronized
			}
		}
		res, err := pdn.SimulateDomain(pdn.Config{Params: c.Node, Vdd: d.Vdd}, pdn.BuildLoads(occ))
		if err != nil {
			return nil, fmt.Errorf("chip: domain %d: %w", i, err)
		}
		s.DomainPeak[i] = res.DomainPeak()
		s.DomainAvg[i] = res.DomainAvg()
		for slot, t := range d.Tiles {
			s.TilePeak[t] = res.PeakPSN[slot]
			s.TileAvg[t] = res.AvgPSN[slot]
		}
	}
	return s, nil
}
