package chip

import (
	"fmt"
	"sync"
	"sync/atomic"

	"parm/internal/pdn"
)

// PSNSample is one chip-wide PSN measurement: the result of transient
// simulation of every active domain at a sampling instant (paper §5.1:
// PSN is sampled at periodic intervals and at application map/unmap
// events).
type PSNSample struct {
	// TilePeak is the peak PSN fraction observed at each tile during the
	// sampling window (0 for tiles in inactive domains).
	TilePeak []float64
	// TileAvg is the time-averaged PSN fraction per tile.
	TileAvg []float64
	// DomainPeak and DomainAvg summarize each domain (0 when inactive).
	DomainPeak []float64
	DomainAvg  []float64
}

// ChipPeak returns the largest per-tile peak PSN in the sample.
func (s *PSNSample) ChipPeak() float64 {
	m := 0.0
	for _, v := range s.TilePeak {
		if v > m {
			m = v
		}
	}
	return m
}

// ActiveAvg returns the mean of per-domain average PSN over active domains
// (domains with a nonzero average). It returns 0 when nothing is active.
func (s *PSNSample) ActiveAvg() float64 {
	sum, n := 0.0, 0
	for _, v := range s.DomainAvg {
		if v > 0 {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// psnJob is one active domain's solve input in a SamplePSN fan-out.
type psnJob struct {
	domain int
	cfg    pdn.Config
	loads  [pdn.DomainTiles]pdn.TileLoad
}

// SamplePSN transient-simulates every active domain and returns the chip's
// PSN sample. routerUtil gives the measured NoC router utilization per tile
// in [0,1] (flits forwarded per cycle, normalized); it may be nil when no
// traffic information is available. Same-class tasks of the app owning a
// domain are phase-staggered (see pdn.BuildLoads).
//
// The per-domain solves are independent, so they are fanned out over a
// worker pool bounded by Config.PSNWorkers and aggregated in domain order;
// repeated load signatures are served from the chip's solve cache (see
// pdn.Solver). The sample is bit-identical for any worker count and with
// the cache on or off.
func (c *Chip) SamplePSN(routerUtil []float64) (*PSNSample, error) {
	if routerUtil != nil && len(routerUtil) != c.Mesh.NumTiles() {
		return nil, fmt.Errorf("chip: routerUtil length %d, want %d", len(routerUtil), c.Mesh.NumTiles())
	}
	s := &PSNSample{
		TilePeak:   make([]float64, c.Mesh.NumTiles()),
		TileAvg:    make([]float64, c.Mesh.NumTiles()),
		DomainPeak: make([]float64, len(c.domains)),
		DomainAvg:  make([]float64, len(c.domains)),
	}
	// Phase 1 (serial): gather the occupant state of every active domain
	// into solve jobs. This touches chip state, so it stays on the caller.
	jobs := make([]psnJob, 0, len(c.domains))
	for i := range c.domains {
		d := &c.domains[i]
		if !d.Occupied() {
			continue
		}
		var occ [pdn.DomainTiles]pdn.TileOccupant
		for slot, t := range d.Tiles {
			o := c.occupants[t]
			if o.App == NoApp {
				continue
			}
			ru := 0.0
			if routerUtil != nil {
				// routerUtil is per-port utilization (flits/cycle/port); a
				// router's switching activity saturates around 2-2.5
				// concurrent traversals, so scale accordingly for power.
				ru = routerUtil[t] * 2.5
				if ru > 1 {
					ru = 1
				}
			}
			occ[slot] = pdn.TileOccupant{
				IAvg:      c.Node.TileCurrent(d.Vdd, o.CoreActivity, ru),
				Class:     o.Class,
				Staggered: true, // same-app threads are barrier-synchronized
			}
		}
		jobs = append(jobs, psnJob{
			domain: i,
			cfg:    pdn.Config{Params: c.Node, Vdd: d.Vdd, Mode: c.psnMode},
			loads:  pdn.BuildLoads(occ),
		})
	}
	if len(jobs) == 0 {
		return s, nil
	}
	c.obsSamples.Inc()
	c.obsDomainSolves.Add(uint64(len(jobs)))
	c.obsActiveDomains.Observe(float64(len(jobs)))

	// Phase 2 (parallel): solve the independent domains over the pool.
	results := make([]pdn.Result, len(jobs))
	errs := make([]error, len(jobs))
	workers := c.psnWorkers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	// Workers engaged this sample (the serial path runs on the caller).
	c.obsWorkerLaunch.Add(uint64(workers))
	if workers <= 1 {
		solver := c.solverPool.Get().(*pdn.Solver)
		for j := range jobs {
			results[j], errs[j] = solver.SimulateDomain(jobs[j].cfg, jobs[j].loads)
		}
		c.solverPool.Put(solver)
	} else {
		var wg sync.WaitGroup
		var next atomic.Int64
		next.Store(-1)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			// This is the sanctioned bounded pool the poolgo analyzer steers
			// everything else toward: Add precedes the spawn, the pool size is
			// capped by Config.PSNWorkers, and aggregation is order-independent.
			//parm:pool
			go func() {
				defer wg.Done()
				solver := c.solverPool.Get().(*pdn.Solver)
				defer c.solverPool.Put(solver)
				for {
					j := int(next.Add(1))
					if j >= len(jobs) {
						return
					}
					results[j], errs[j] = solver.SimulateDomain(jobs[j].cfg, jobs[j].loads)
				}
			}()
		}
		wg.Wait()
	}

	// Phase 3 (serial): aggregate in domain order — deterministic
	// regardless of which worker solved which domain.
	for j, job := range jobs {
		if errs[j] != nil {
			return nil, fmt.Errorf("chip: domain %d: %w", job.domain, errs[j])
		}
		res := results[j]
		s.DomainPeak[job.domain] = res.DomainPeak()
		s.DomainAvg[job.domain] = res.DomainAvg()
		for slot, t := range c.domains[job.domain].Tiles {
			s.TilePeak[t] = res.PeakPSN[slot]
			s.TileAvg[t] = res.AvgPSN[slot]
		}
	}
	return s, nil
}

// PSNCacheStats reports the chip's domain-solve cache counters (hits,
// misses, overflow clears/evictions) and entry count. All zeros when the
// cache is disabled.
func (c *Chip) PSNCacheStats() pdn.CacheStats {
	if c.solveCache == nil {
		return pdn.CacheStats{}
	}
	return c.solveCache.Stats()
}
