package chip

import (
	"sync"
	"testing"

	"parm/internal/pdn"
)

// utilBatch returns a distinct router-utilization ramp per batch index, so
// concurrent samplers exercise different load signatures and cache keys.
func utilBatch(c *Chip, b int) []float64 {
	util := make([]float64, c.Mesh.NumTiles())
	for i := range util {
		util[i] = float64((i+3*b)%11) / 25
	}
	return util
}

// churn is one serialized mutation phase between sampling windows: it evicts
// whatever occupies domain 0 and reassigns it to a fresh app at a different
// Vdd with a different activity mix. Applied identically to the reference
// and the stressed chip.
func churn(t testing.TB, c *Chip, epoch int) {
	t.Helper()
	dom := c.Domain(0)
	if occ := c.Occupant(dom.Tiles[0]); occ.App != NoApp {
		c.ReleaseApp(occ.App)
	}
	app := 1000 + epoch
	if err := c.AssignDomain(0, app, c.Vdds[epoch%len(c.Vdds)]); err != nil {
		t.Fatal(err)
	}
	for slot, tile := range dom.Tiles {
		class := pdn.High
		if (slot+epoch)%2 == 0 {
			class = pdn.Low
		}
		if err := c.PlaceTask(tile, app, slot, class); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSamplePSNRaceStress drives the PSN worker pool the way the engine
// does over a run, under -race: serialized mutation phases (the audited
// Chip contract racecheck cannot see across functions) alternate with
// windows where many goroutines each sample several utilization batches
// concurrently. Every concurrent sample must be bit-identical to the
// serial, uncached reference chip mutated in lockstep.
func TestSamplePSNRaceStress(t *testing.T) {
	ref, err := New(Config{PSNWorkers: 1, DisablePSNCache: true})
	if err != nil {
		t.Fatal(err)
	}
	stressed, err := New(Config{PSNWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	populate(t, ref)
	populate(t, stressed)

	const (
		goroutines = 8
		batches    = 5
		epochs     = 3
	)
	for epoch := 0; epoch < epochs; epoch++ {
		if epoch > 0 {
			// Mutation phase: no sampler is live (the previous window was
			// joined), matching the contract audited in chip.go.
			churn(t, ref, epoch)
			churn(t, stressed, epoch)
		}
		want := make([]*PSNSample, batches)
		for b := range want {
			w, err := ref.SamplePSN(utilBatch(ref, b))
			if err != nil {
				t.Fatal(err)
			}
			want[b] = w
		}
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for rep := 0; rep < 2; rep++ {
					b := (g + rep) % batches
					for n := 0; n < batches; n++ {
						got, err := stressed.SamplePSN(utilBatch(stressed, b))
						if err != nil {
							t.Error(err)
							return
						}
						if !sameSample(got, want[b]) {
							t.Errorf("epoch=%d goroutine=%d batch=%d: concurrent sample differs from serial reference", epoch, g, b)
							return
						}
						b = (b + 1) % batches
					}
				}
			}(g)
		}
		wg.Wait()
	}
	if st := stressed.PSNCacheStats(); st.Hits == 0 || st.Misses == 0 {
		t.Errorf("stress run did not exercise the solve cache (hits=%d misses=%d)", st.Hits, st.Misses)
	}
}
