// Package chip models the CMP platform of the paper (§3.1, §3.3): a 2D
// mesh of tiles (core + router + L1), grouped into 2x2 power-supply domains
// each fed by its own voltage regulator, under a chip-wide dark-silicon
// power budget (DsPB). It tracks which application occupies which domain,
// the per-domain supply voltage, and per-tile task occupancy, and it
// samples PSN for all active domains through the pdn solver.
package chip

import (
	"fmt"
	"runtime"
	"sync"

	"parm/internal/geom"
	"parm/internal/obs"
	"parm/internal/pdn"
	"parm/internal/power"
)

// DomainID indexes a power-supply domain (a 2x2 tile block with one VRM).
type DomainID int

// NoApp marks an unoccupied domain.
const NoApp = -1

// Domain is one 2x2 power-supply domain. Tiles are stored in pdn slot
// order: (0,0), (1,0), (0,1), (1,1) relative to the domain origin, matching
// pdn.DomainDistance semantics.
type Domain struct {
	ID DomainID
	// Origin is the south-west tile coordinate of the domain.
	Origin geom.Coord
	// Tiles lists the four member tiles in pdn slot order.
	Tiles [pdn.DomainTiles]geom.TileID
	// Vdd is the regulator output; meaningful only when occupied.
	Vdd power.Volts
	// App is the occupying application ID, or NoApp.
	App int
}

// Occupied reports whether the domain currently hosts an application.
func (d *Domain) Occupied() bool { return d.App != NoApp }

// Center returns the domain's center coordinate (at half-tile resolution,
// scaled by 2 to stay integral): used for distance heuristics.
func (d *Domain) Center() geom.Coord {
	return geom.Coord{X: 2*d.Origin.X + 1, Y: 2*d.Origin.Y + 1}
}

// Occupant describes the task running on one tile.
type Occupant struct {
	// App is the owning application ID, or NoApp for an idle tile.
	App int
	// Task is the task index within the app's APG.
	Task int
	// Class is the task's switching-activity class.
	Class pdn.Class
	// CoreActivity is the core switching-activity factor in [0,1].
	CoreActivity float64
}

// Config parameterizes the chip.
type Config struct {
	// Width and Height are the mesh dimensions in tiles; both must be even
	// so the 2x2 domains tile the mesh exactly. Zero selects the paper's
	// 10x6 layout.
	Width, Height int
	// Node supplies the technology-node electrical constants. A zero value
	// selects 7nm.
	Node power.NodeParams
	// DsPB is the dark-silicon power budget. Zero selects 65 W.
	DsPB power.Watts
	// VddStep is the supply voltage granularity. Zero selects 0.1 V.
	VddStep power.Volts
	// PSNWorkers bounds the worker pool SamplePSN fans the per-domain
	// transient solves out over. Zero selects GOMAXPROCS; 1 forces the
	// serial reference path. Results are bit-identical for any value.
	PSNWorkers int
	// DisablePSNCache turns off the domain-solve memoization, forcing
	// every sample to integrate every active domain (serial reference
	// mode for determinism tests and benchmarks).
	DisablePSNCache bool
	// PSNMode selects the domain transient solver algorithm (the zero
	// value, pdn.ModeAuto, selects the exact phasor steady-state fast
	// path; pdn.ModeRK4 is the numerical reference). Samples are
	// bit-identical across runs for any fixed mode.
	PSNMode pdn.Mode
}

func (c Config) withDefaults() Config {
	if c.Width == 0 && c.Height == 0 {
		c.Width, c.Height = 10, 6
	}
	if c.Node.Node == 0 {
		c.Node = power.MustParams(power.Node7)
	}
	if c.DsPB == 0 {
		c.DsPB = 65
	}
	if c.VddStep == 0 {
		c.VddStep = 0.1
	}
	return c
}

// Chip is the CMP platform state.
type Chip struct {
	Mesh geom.Mesh
	Node power.NodeParams
	// Budget is the dark-silicon power budget ledger.
	Budget *power.Budget
	// Vdds lists the permissible supply voltages in increasing order.
	Vdds []power.Volts

	domains    []Domain
	tileDomain []DomainID
	occupants  []Occupant

	// psnWorkers is the resolved SamplePSN pool bound (>= 1).
	psnWorkers int
	// psnMode is the domain-solve algorithm every sample uses.
	psnMode pdn.Mode
	// solveCache memoizes domain solves across samples and workers; nil
	// when caching is disabled.
	solveCache *pdn.SolveCache
	// solverPool recycles pdn.Solver scratch buffers across samples (one
	// solver is checked out per worker per sample).
	solverPool sync.Pool

	// Telemetry, pre-registered by Instrument; nil metrics discard updates.
	obsSamples       *obs.Counter   // chip/psn/samples
	obsDomainSolves  *obs.Counter   // chip/psn/domain_solves
	obsWorkerLaunch  *obs.Counter   // chip/psn/worker_launches
	obsActiveDomains *obs.Histogram // chip/psn/active_domains
	solverObs        *pdn.SolverObs
}

// New builds a chip from cfg. It returns an error when the mesh dimensions
// are not positive and even.
func New(cfg Config) (*Chip, error) {
	cfg = cfg.withDefaults()
	if cfg.Width <= 0 || cfg.Height <= 0 || cfg.Width%2 != 0 || cfg.Height%2 != 0 {
		return nil, fmt.Errorf("chip: dimensions must be positive and even, got %dx%d", cfg.Width, cfg.Height)
	}
	m := geom.NewMesh(cfg.Width, cfg.Height)
	c := &Chip{
		Mesh:       m,
		Node:       cfg.Node,
		Budget:     power.NewBudget(cfg.DsPB),
		Vdds:       cfg.Node.VddLevels(cfg.VddStep),
		tileDomain: make([]DomainID, m.NumTiles()),
		occupants:  make([]Occupant, m.NumTiles()),
	}
	c.psnWorkers = cfg.PSNWorkers
	if c.psnWorkers <= 0 {
		c.psnWorkers = runtime.GOMAXPROCS(0)
	}
	c.psnMode = cfg.PSNMode
	if !cfg.DisablePSNCache {
		c.solveCache = pdn.NewSolveCache()
	}
	c.solverPool.New = func() interface{} {
		s := pdn.NewSolver(c.solveCache)
		s.Instrument(c.solverObs)
		return s
	}
	for i := range c.occupants {
		c.occupants[i].App = NoApp
	}
	dw, dh := cfg.Width/2, cfg.Height/2
	for dy := 0; dy < dh; dy++ {
		for dx := 0; dx < dw; dx++ {
			id := DomainID(dy*dw + dx)
			origin := geom.Coord{X: 2 * dx, Y: 2 * dy}
			d := Domain{ID: id, Origin: origin, App: NoApp}
			// pdn slot order: (0,0), (1,0), (0,1), (1,1).
			slots := [pdn.DomainTiles]geom.Coord{
				{X: origin.X, Y: origin.Y},
				{X: origin.X + 1, Y: origin.Y},
				{X: origin.X, Y: origin.Y + 1},
				{X: origin.X + 1, Y: origin.Y + 1},
			}
			for s, sc := range slots {
				t := m.TileAt(sc)
				d.Tiles[s] = t
				c.tileDomain[t] = id
			}
			c.domains = append(c.domains, d)
		}
	}
	return c, nil
}

// NumDomains returns the number of power-supply domains.
func (c *Chip) NumDomains() int { return len(c.domains) }

// Domain returns a pointer to domain d. It panics on an invalid ID, which
// is a programming error (IDs come from the chip itself).
func (c *Chip) Domain(d DomainID) *Domain {
	return &c.domains[d]
}

// DomainOf returns the domain containing tile t.
func (c *Chip) DomainOf(t geom.TileID) DomainID { return c.tileDomain[t] }

// SlotOf returns the pdn slot index (0..3) of tile t within its domain.
func (c *Chip) SlotOf(t geom.TileID) int {
	d := &c.domains[c.tileDomain[t]]
	for s, dt := range d.Tiles {
		if dt == t {
			return s
		}
	}
	panic(fmt.Sprintf("chip: tile %d not in its own domain", t)) // unreachable
}

// FreeDomains returns the IDs of all unoccupied domains in ascending order.
func (c *Chip) FreeDomains() []DomainID {
	var out []DomainID
	for i := range c.domains {
		if !c.domains[i].Occupied() {
			out = append(out, DomainID(i))
		}
	}
	return out
}

// Occupant returns the occupant of tile t.
func (c *Chip) Occupant(t geom.TileID) Occupant { return c.occupants[t] }

// AssignDomain marks domain d as owned by app at the given Vdd. It returns
// an error if the domain is already occupied.
func (c *Chip) AssignDomain(d DomainID, app int, vdd power.Volts) error {
	dom := &c.domains[d]
	if dom.Occupied() {
		return fmt.Errorf("chip: domain %d already occupied by app %d", d, dom.App)
	}
	// The racecheck engine sees SamplePSN's concurrent readers (the PSN
	// pipeline stress test) but not the cross-function ordering that keeps
	// them safe: the Chip contract is that mutation (Assign/Place/Release)
	// is serialized by the caller and never overlaps sampling.
	dom.App = app //parm:conc audited: mutation phase, callers serialize against SamplePSN readers
	dom.Vdd = vdd //parm:conc audited: mutation phase, callers serialize against SamplePSN readers
	return nil
}

// PlaceTask records that task (app, task) of the given activity class runs
// on tile t. The tile's domain must already be assigned to the same app.
func (c *Chip) PlaceTask(t geom.TileID, app, task int, class pdn.Class) error {
	dom := &c.domains[c.tileDomain[t]]
	if dom.App != app {
		return fmt.Errorf("chip: tile %d domain owned by app %d, not %d", t, dom.App, app)
	}
	if c.occupants[t].App != NoApp {
		return fmt.Errorf("chip: tile %d already occupied", t)
	}
	c.occupants[t] = Occupant{
		App:          app,
		Task:         task,
		Class:        class,
		CoreActivity: activityFactor(class),
	}
	return nil
}

// ReleaseApp frees every domain and tile owned by app and returns the
// number of domains released.
func (c *Chip) ReleaseApp(app int) int {
	n := 0
	// Same audited contract as AssignDomain above: mutation is serialized by
	// the caller against SamplePSN readers, and the expr cell workers each
	// own a private Chip the field-based engine conflates.
	for i := range c.domains {
		if c.domains[i].App == app {
			c.domains[i].App = NoApp //parm:conc audited: mutation phase, callers serialize against SamplePSN readers
			c.domains[i].Vdd = 0     //parm:conc audited: mutation phase, callers serialize against SamplePSN readers
			n++
		}
	}
	for t := range c.occupants { //parm:conc audited: mutation phase, callers serialize against SamplePSN readers
		if c.occupants[t].App == app {
			c.occupants[t] = Occupant{App: NoApp}
		}
	}
	return n
}

// ActiveDomains returns the IDs of occupied domains in ascending order.
func (c *Chip) ActiveDomains() []DomainID {
	var out []DomainID
	for i := range c.domains {
		if c.domains[i].Occupied() {
			out = append(out, DomainID(i))
		}
	}
	return out
}

// AppTiles returns the tiles occupied by app in ascending tile order.
func (c *Chip) AppTiles(app int) []geom.TileID {
	var out []geom.TileID
	for t := range c.occupants {
		if c.occupants[t].App == app {
			out = append(out, geom.TileID(t))
		}
	}
	return out
}

// activityFactor mirrors appmodel.ActivityFactor without importing it
// (chip is below appmodel in the dependency order).
func activityFactor(c pdn.Class) float64 {
	switch c {
	case pdn.High:
		return 0.90
	case pdn.Low:
		return 0.35
	default:
		return 0
	}
}
