package chip

import (
	"sync"
	"testing"

	"parm/internal/pdn"
)

// populate fills every domain of the chip with a distinct app at cycling
// Vdd levels and mixed activity classes, so a sample exercises varied load
// signatures.
func populate(t testing.TB, c *Chip) {
	t.Helper()
	vdds := c.Vdds
	for d := 0; d < c.NumDomains(); d++ {
		vdd := vdds[d%len(vdds)]
		if err := c.AssignDomain(DomainID(d), d+1, vdd); err != nil {
			t.Fatal(err)
		}
		dom := c.Domain(DomainID(d))
		for slot, tile := range dom.Tiles {
			class := pdn.High
			if (d+slot)%3 == 0 {
				class = pdn.Low
			}
			if err := c.PlaceTask(tile, d+1, slot, class); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func utilRamp(c *Chip) []float64 {
	util := make([]float64, c.Mesh.NumTiles())
	for i := range util {
		util[i] = float64(i%7) / 20
	}
	return util
}

func sameSample(a, b *PSNSample) bool {
	eq := func(x, y []float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	return eq(a.TilePeak, b.TilePeak) && eq(a.TileAvg, b.TileAvg) &&
		eq(a.DomainPeak, b.DomainPeak) && eq(a.DomainAvg, b.DomainAvg)
}

// The parallel, cached sampling path must be bit-identical to the serial,
// uncached reference for any worker count.
func TestSamplePSNParallelMatchesSerial(t *testing.T) {
	ref, err := New(Config{PSNWorkers: 1, DisablePSNCache: true})
	if err != nil {
		t.Fatal(err)
	}
	populate(t, ref)
	util := utilRamp(ref)
	want, err := ref.SamplePSN(util)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 16} {
		c, err := New(Config{PSNWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		populate(t, c)
		for rep := 0; rep < 2; rep++ { // second rep runs fully from cache
			got, err := c.SamplePSN(util)
			if err != nil {
				t.Fatal(err)
			}
			if !sameSample(got, want) {
				t.Fatalf("workers=%d rep=%d: sample differs from serial reference", workers, rep)
			}
		}
		if st := c.PSNCacheStats(); st.Hits == 0 || st.Misses == 0 {
			t.Errorf("workers=%d: cache not exercised (hits=%d misses=%d)", workers, st.Hits, st.Misses)
		}
	}
}

// Repeated samples with an unchanged occupant set are served from the
// solve cache: the second sample adds no misses.
func TestSamplePSNCacheHitsOnRepeat(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	populate(t, c)
	util := utilRamp(c)
	if _, err := c.SamplePSN(util); err != nil {
		t.Fatal(err)
	}
	missesAfterFirst := c.PSNCacheStats().Misses
	if _, err := c.SamplePSN(util); err != nil {
		t.Fatal(err)
	}
	st := c.PSNCacheStats()
	if st.Misses != missesAfterFirst {
		t.Errorf("repeat sample integrated again: misses %d -> %d", missesAfterFirst, st.Misses)
	}
	if st.Hits < uint64(c.NumDomains()) {
		t.Errorf("repeat sample hit only %d times, want >= %d", st.Hits, c.NumDomains())
	}
}

// Concurrent SamplePSN calls on one chip are safe (run with -race): the
// sampler only reads chip state and synchronizes on the solver pool and
// cache.
func TestSamplePSNConcurrentCallers(t *testing.T) {
	c, err := New(Config{PSNWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	populate(t, c)
	util := utilRamp(c)
	want, err := c.SamplePSN(util)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				got, err := c.SamplePSN(util)
				if err != nil {
					t.Error(err)
					return
				}
				if !sameSample(got, want) {
					t.Error("concurrent sample diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkSamplePSNParallel measures a full-chip PSN sample: the serial
// uncached reference, the parallel uncached pool, and the steady-state
// cached path (the hot path of every simulated second).
func BenchmarkSamplePSNParallel(b *testing.B) {
	bench := func(b *testing.B, cfg Config, util []float64) {
		c, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		populate(b, c)
		if util == nil {
			util = utilRamp(c)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.SamplePSN(util); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("serial-nocache", func(b *testing.B) {
		bench(b, Config{PSNWorkers: 1, DisablePSNCache: true}, nil)
	})
	b.Run("parallel-nocache", func(b *testing.B) {
		bench(b, Config{DisablePSNCache: true}, nil)
	})
	b.Run("parallel-cached", func(b *testing.B) {
		bench(b, Config{}, nil)
	})
}
