package chip

import (
	"strings"
	"testing"

	"parm/internal/pdn"
)

func TestViewIdleChip(t *testing.T) {
	c := mkChip(t)
	v := c.View()
	lines := strings.Split(strings.TrimRight(v, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("%d rows, want 6", len(lines))
	}
	if strings.ContainsAny(v, "ABab") {
		t.Error("idle chip shows occupants")
	}
}

func TestViewShowsOccupants(t *testing.T) {
	c := mkChip(t)
	if err := c.AssignDomain(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	dom := c.Domain(0)
	if err := c.PlaceTask(dom.Tiles[0], 1, 0, pdn.High); err != nil {
		t.Fatal(err)
	}
	if err := c.PlaceTask(dom.Tiles[1], 1, 1, pdn.Low); err != nil {
		t.Fatal(err)
	}
	v := c.View()
	if !strings.Contains(v, "B+") {
		t.Errorf("High task of app 1 not shown as B+:\n%s", v)
	}
	if !strings.Contains(v, "b-") {
		t.Errorf("Low task of app 1 not shown as b-:\n%s", v)
	}
	// Domain 0 is at the south-west corner: occupants on the LAST line.
	lines := strings.Split(strings.TrimRight(v, "\n"), "\n")
	if !strings.Contains(lines[len(lines)-1], "B+") {
		t.Error("south row not printed last")
	}
}

func TestDomainView(t *testing.T) {
	c := mkChip(t)
	if err := c.AssignDomain(3, 7, 0.6); err != nil {
		t.Fatal(err)
	}
	v := c.DomainView()
	if !strings.Contains(v, "[a07 0.6V]") {
		t.Errorf("occupied domain not rendered:\n%s", v)
	}
	if strings.Count(v, "[ free  ]") != 14 {
		t.Errorf("expected 14 free domains:\n%s", v)
	}
}

func TestPSNView(t *testing.T) {
	c := mkChip(t)
	psn := make([]float64, c.Mesh.NumTiles())
	psn[0] = 0.06  // emergency
	psn[1] = 0.025 // digit 2
	psn[2] = 0.049 // digit 4
	v := c.PSNView(psn)
	lines := strings.Split(strings.TrimRight(v, "\n"), "\n")
	bottom := lines[len(lines)-1]
	if bottom[0] != '*' {
		t.Errorf("emergency tile not starred: %q", bottom)
	}
	if !strings.HasPrefix(bottom, "* 2 4") {
		t.Errorf("heatmap digits wrong: %q", bottom)
	}
	// Wrong-length input degrades gracefully.
	if !strings.Contains(c.PSNView([]float64{1}), "want 60") {
		t.Error("short input not reported")
	}
}
