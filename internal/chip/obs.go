package chip

import (
	"parm/internal/obs"
	"parm/internal/pdn"
)

// Instrument registers the chip's telemetry in r and threads the counter
// sets down into the pdn layer (solve cache, pooled solvers). Call it once
// at startup, before the first SamplePSN: solvers already sitting in the
// pool are not retro-instrumented. A nil registry leaves the chip
// uninstrumented; telemetry never alters sampling behavior or results.
func (c *Chip) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	c.obsSamples = r.Counter("chip/psn/samples")
	c.obsDomainSolves = r.Counter("chip/psn/domain_solves")
	c.obsWorkerLaunch = r.Counter("chip/psn/worker_launches")
	// Active-domain population per sample; the chip has NumDomains() pool
	// slots, so bucket on the occupancy range of the paper's 10x6 mesh.
	c.obsActiveDomains = r.Histogram("chip/psn/active_domains", []float64{1, 2, 4, 8, 12, 15})
	c.solverObs = pdn.NewSolverObs(r)
	if c.solveCache != nil {
		c.solveCache.Instrument(r)
	}
}
