package sched

import (
	"testing"

	"parm/internal/appmodel"
)

// BenchmarkSchedule times the EDF list scheduler on a DoP-32 graph.
func BenchmarkSchedule(b *testing.B) {
	g := appmodel.Benchmarks()[0].Graph(32)
	cfg := Config{Freq: 2e9, Checkpointing: true, AppDeadline: 0.1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Schedule(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSPMDMakespan times the SPMD execution-time model used per
// mapping decision in the runtime engine.
func BenchmarkSPMDMakespan(b *testing.B) {
	g := appmodel.Benchmarks()[0].Graph(32)
	cfg := Config{Freq: 2e9, Checkpointing: true, SyncCyclesPerTask: 1e5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SPMDMakespan(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
